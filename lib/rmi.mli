(** The RMI runtime, behind one door.

    Applications, examples and the experiment binaries program against
    this facade instead of the internal [Rmi_runtime]/[Rmi_serial]/...
    libraries.  It re-exports the stable surface — configurations,
    fabrics, nodes, futures, metrics, tracing, the experiment driver —
    and narrows {!Node} to the caller-facing operations: the fabric's
    wiring hooks ([set_pump], [serve_loop], [send_shutdown], [create])
    are deliberately absent; {!Fabric.create} and {!Fabric.run} are the
    only way to stand a cluster up.

    A minimal remote call:
    {[
      let fabric = Rmi.Fabric.create ~n:2 ~meta ~config ~plans ~metrics () in
      Rmi.Fabric.run fabric @@ fun fabric ->
        Rmi.Node.export (Rmi.Fabric.node fabric 1) ~obj:0 ~meth ~has_ret:true
          (fun args -> Some args.(0));
        Rmi.Node.call (Rmi.Fabric.node fabric 0)
          ~dest:(Rmi.Remote_ref.make ~machine:1 ~obj:0)
          ~meth ~callsite ~has_ret:true [| v |]
    ]}

    and its pipelined form replaces the tail call with
    {!Node.call_async} + {!Future.await}. *)

module Config = Rmi_runtime.Config
module Remote_ref = Rmi_runtime.Remote_ref
module Value = Rmi_serial.Value

(** One machine of the cluster, narrowed to the application surface.
    Obtain instances from {!Fabric.node}. *)
module Node : sig
  type t = Rmi_runtime.Node.t

  type handler = Value.t array -> Value.t option

  exception Remote_exception of string
  exception No_such_method of string
  exception Deadlock of string
  exception Rpc_timeout of string
  exception Peer_down of string

  val id : t -> int
  val config : t -> Config.t

  (** [export t ~obj ~meth ~has_ret handler] registers a remotely
      invokable method.  [has_ret] must match the method's signature on
      every machine. *)
  val export : t -> obj:int -> meth:int -> has_ret:bool -> handler -> unit

  (** Promises for asynchronous calls; every failure surfaces at
      {!Future.await}, not at issue time. *)
  module Future : sig
    type t = Rmi_runtime.Node.Future.t

    val await : t -> Value.t option
    val peek : t -> Value.t option option
    val all : t list -> Value.t option list
  end

  (** Issue a call without waiting; any number may be in flight.  With
      {!Config.with_batching}, bursts of requests coalesce into single
      wire envelopes.  [deadline] (seconds, default
      [Config.failover.call_deadline]) bounds the call end to end: the
      future always settles — with the reply, [Rpc_timeout] or
      [Peer_down] — rather than hang. *)
  val call_async :
    ?deadline:float ->
    t ->
    dest:Remote_ref.t ->
    meth:int ->
    callsite:int ->
    has_ret:bool ->
    Value.t array ->
    Future.t

  (** [call_async ... |> Future.await].
      @raise Remote_exception when the remote handler raised
      @raise Deadlock when no progress is possible (raw transport)
      @raise Rpc_timeout when the reliable transport gives up
      @raise Peer_down when retries/failover were exhausted or the
      peer's circuit breaker is open *)
  val call :
    ?deadline:float ->
    t ->
    dest:Remote_ref.t ->
    meth:int ->
    callsite:int ->
    has_ret:bool ->
    Value.t array ->
    Value.t option

  (** Register a (primary -> replica) failover mapping on this node;
      normally done for every node by {!Registry.new_replicated}. *)
  val set_replica : t -> primary:int -> replica:int -> unit

  (** Drop all reuse caches (between benchmark configurations). *)
  val reset_caches : t -> unit

  (** Attach a trace collector: every call this node makes and every
      request it serves is recorded. *)
  val set_trace : t -> Rmi_runtime.Trace.t -> unit
end

module Future = Rmi_runtime.Node.Future
module Fabric = Rmi_runtime.Fabric
module Registry = Rmi_runtime.Registry
module Distributed = Rmi_runtime.Distributed
module Trace = Rmi_runtime.Trace
module Metrics = Rmi_stats.Metrics
module Ascii_table = Rmi_stats.Ascii_table
module Costmodel = Rmi_net.Costmodel
module Fault_sim = Rmi_net.Fault_sim

(** The first-class transport interface ({!Rmi_net.Transport.S}) behind
    {!Fabric}'s [backend] parameter; {!Fabric.net} exposes a fabric's
    instance. *)
module Transport = Rmi_net.Transport

module Experiment = Rmi_harness.Experiment
module Paper_data = Rmi_harness.Paper_data
module Cli = Rmi_harness.Cli

(** Escape hatch for benchmarks and tests that poke below the facade:
    the wire format, the raw codec layers and the simulated
    interconnect.  Applications should not need anything in here. *)
module Internals : sig
  module Cluster = Rmi_net.Cluster
  module Sim = Rmi_net.Sim
  module Sock = Rmi_net.Sock
  module Protocol = Rmi_wire.Protocol
  module Msgbuf = Rmi_wire.Msgbuf
  module Codec = Rmi_serial.Codec
  module Introspect = Rmi_serial.Introspect
  module Class_meta = Rmi_serial.Class_meta
  module Plan = Rmi_core.Plan
  module Plan_store = Rmi_core.Plan_store
  module Pass_manager = Rmi_core.Pass_manager
  module Optimizer = Rmi_core.Optimizer
end
