module Config = Rmi_runtime.Config
module Remote_ref = Rmi_runtime.Remote_ref
module Value = Rmi_serial.Value
module Node = Rmi_runtime.Node
module Future = Rmi_runtime.Node.Future
module Fabric = Rmi_runtime.Fabric
module Registry = Rmi_runtime.Registry
module Distributed = Rmi_runtime.Distributed
module Trace = Rmi_runtime.Trace
module Metrics = Rmi_stats.Metrics
module Ascii_table = Rmi_stats.Ascii_table
module Costmodel = Rmi_net.Costmodel
module Fault_sim = Rmi_net.Fault_sim
module Experiment = Rmi_harness.Experiment
module Paper_data = Rmi_harness.Paper_data
module Cli = Rmi_harness.Cli

module Internals = struct
  module Cluster = Rmi_net.Cluster
  module Protocol = Rmi_wire.Protocol
  module Msgbuf = Rmi_wire.Msgbuf
  module Codec = Rmi_serial.Codec
  module Introspect = Rmi_serial.Introspect
  module Class_meta = Rmi_serial.Class_meta
  module Plan = Rmi_core.Plan
end
