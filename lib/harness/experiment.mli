(** Experiment driver reproducing the paper's Tables 1-8.

    Each timing table runs its application under the five optimization
    configurations and reports, per row: measured wall-clock seconds,
    {e modeled} seconds (event counters x the Myrinet-era cost model,
    see {!Rmi_net.Costmodel}), the gain over ["class"], and the paper's
    published seconds and gain for comparison.  Statistics tables
    (4/6/8) report the same counters the paper prints.

    Workload sizes default to values that finish in seconds on a
    laptop; [scale] switches to the paper's sizes. *)

type scale = Small | Paper

type row = {
  config : Rmi_runtime.Config.t;
  wall_seconds : float;
  modeled_seconds : float;
  stats : Rmi_stats.Metrics.snapshot;
}

type timing_table = {
  id : string;  (** "table1" .. "table7" *)
  title : string;
  unit_label : string;  (** "s" or "us/page" *)
  rows : row list;
  paper : (string * float) list;  (** the paper's numbers, row order *)
  per_unit : float -> float;  (** wall seconds -> reported unit *)
}

(** Gain over the ["class"] row, percent, by modeled seconds. *)
val modeled_gain : timing_table -> row -> float

val wall_gain : timing_table -> row -> float

(** Run an application under all five configs. *)

val table1 :
  ?scale:scale ->
  ?mode:Rmi_runtime.Fabric.mode ->
  ?backend:Rmi_runtime.Fabric.backend ->
  unit ->
  timing_table
val table2 :
  ?scale:scale ->
  ?mode:Rmi_runtime.Fabric.mode ->
  ?backend:Rmi_runtime.Fabric.backend ->
  unit ->
  timing_table
val table3 :
  ?scale:scale ->
  ?mode:Rmi_runtime.Fabric.mode ->
  ?backend:Rmi_runtime.Fabric.backend ->
  unit ->
  timing_table
val table5 :
  ?scale:scale ->
  ?mode:Rmi_runtime.Fabric.mode ->
  ?backend:Rmi_runtime.Fabric.backend ->
  unit ->
  timing_table
val table7 :
  ?scale:scale ->
  ?mode:Rmi_runtime.Fabric.mode ->
  ?backend:Rmi_runtime.Fabric.backend ->
  unit ->
  timing_table

(** The statistics tables reuse the timing runs of their sibling:
    table4 = stats of table3's rows, etc. *)

val stats_table :
  id:string -> title:string -> timing_table -> Paper_data.stats_row list ->
  string
(** Rendered paper-vs-measured statistics table. *)

(** One variant of the pipelining comparison: the same workload run
    synchronously, through futures, or through futures + batching. *)
type pipeline_row = {
  variant : string;  (** "sequential" / "pipelined" / "pipelined + batch" *)
  p_stats : Rmi_stats.Metrics.snapshot;
  p_modeled : float;
  p_wall : float;
  checksum : float;  (** must be identical across the three variants *)
}

type pipeline_report = { p_title : string; p_rows : pipeline_row list }

(** Run the two transmission microbenchmarks (Tables 1/2 workloads)
    under [site + reuse + cycle] in all three issue disciplines.
    [window] asynchronous calls are in flight per burst (default 16).
    Batching shrinks [msgs_sent] — and with it the cost model's
    per-message latency charges — while every checksum stays equal.
    [faults] (a seed and a link-fault profile) additionally runs every
    variant over the reliable transport with a seeded lossy schedule:
    the wire counters change, the checksums must not. *)
val pipeline_compare :
  ?scale:scale ->
  ?mode:Rmi_runtime.Fabric.mode ->
  ?window:int ->
  ?faults:int * Rmi_net.Fault_sim.profile ->
  unit ->
  pipeline_report list

val render_pipeline : pipeline_report -> string

(** One variant of the crash/failover comparison. *)
type crash_row = {
  c_variant : string;  (** "fault-free" / "durable crash" / "amnesia crash" *)
  c_stats : Rmi_stats.Metrics.snapshot;
  c_checksum : int;  (** sum of all echo replies *)
  c_executions : int;  (** how often the server handler actually ran *)
  c_failed : int;  (** calls that failed despite retries *)
  c_ok : bool;  (** checksum matches fault-free and nothing failed *)
}

type crash_report = {
  c_title : string;
  c_rows : crash_row list;
  c_digest : string;  (** the durable run's full fault-decision log *)
  c_replay_equal : bool;
      (** replaying the durable run from its seed reproduced the digest
          and checksum byte-for-byte *)
}

(** Run a pipelined echo workload fault-free, under a seeded durable
    crash/restart of the server, and under the same schedule with an
    amnesiac server (its reply cache dies with it).  The durable row
    must match the fault-free row in checksum {e and} handler execution
    count (exactly-once across the crash); the amnesia row is where
    re-execution shows up.  The durable schedule is run twice to prove
    seeded replay. *)
val crash_compare :
  ?seed:int -> ?crashes:int -> ?calls:int -> ?window:int -> unit ->
  crash_report

val render_crash : crash_report -> string

(** The crash comparison lifted onto real sockets (PR 8): the same
    echo workload over the loopback TCP mesh with the {!Rmi_net.Chaos}
    injector and the {!Rmi_net.Reliable} adapter. *)
type chaos_report = {
  h_title : string;
  h_rows : crash_row list;
      (** "fault-free" / "durable chaos" / "amnesia chaos" *)
  h_digest : string;  (** issue-order reply digest of the durable run *)
  h_replay_equal : bool;
      (** the same-seed durable rerun produced the byte-identical
          issue-order reply stream and checksum *)
  h_parity_equal : bool;
      (** {!Rmi_net.Chaos.sim_parity}: the injector's frame schedule is
          byte-identical to the bare [Fault_sim] schedule *)
  h_sweep_seeds : int;
  h_sweep_failed : int list;  (** seeds that broke exactly-once *)
}

(** The durable exactly-once property over loopback TCP for one seed:
    a seeded chaos injector (lossy links, one durable kill/restart,
    TCP severs, endpoint stalls) under which no call fails, the
    checksum matches the closed form and the handler runs exactly once
    per boxed value.  [test/test_chaos.ml] drives this as a QCheck
    property; the chaos gate sweeps it over a seed range. *)
val chaos_exactly_once : ?calls:int -> ?window:int -> seed:int -> unit -> bool

(** The [rmi-experiments chaos] gate: fault-free baseline, durable and
    amnesiac chaos runs, the same-seed replay, the chaos/sim schedule
    parity check and a [sweep]-seed {!chaos_exactly_once} sweep
    (default 300, the CI matrix width). *)
val chaos_compare :
  ?seed:int -> ?calls:int -> ?window:int -> ?sweep:int -> unit -> chaos_report

(** Every gate in the report holds: all rows ok, durable executions
    equal the baseline's, replay and parity byte-identical, no sweep
    failures. *)
val chaos_ok : chaos_report -> bool

val render_chaos : chaos_report -> string

(** The CI socket-chaos JSON artifact: gate verdicts, per-variant rows
    and the durable run's reply digest. *)
val chaos_json : chaos_report -> string

(** One warmup window of the tier comparison: how many calls it covers
    and what they cost on the wire. *)
type tier_window = { w_calls : int; w_bytes : int; w_msgs : int }

(** One variant of the tier comparison. *)
type tier_row = {
  t_variant : string;  (** "generic" / "aot" / "adaptive" *)
  t_stats : Rmi_stats.Metrics.snapshot;
  t_digest : string;  (** hex digest over every reply, in call order *)
  t_windows : tier_window list;  (** the warmup curve, oldest first *)
}

type tier_report = {
  t_title : string;
  t_rows : tier_row list;
  t_equal : bool;  (** all three reply digests identical *)
  t_converged : bool;
      (** the adaptive run promoted at least one site and its final
          window costs exactly the AOT bytes and messages per call *)
}

(** Run the same swap workload three ways: all-generic marshaling
    ([class]), the specialized plan from call one ([site + reuse +
    cycle], the paper's static model), and the adaptive tier (generic
    until [hot_threshold] calls, specialized after).  Per-window wire
    deltas give the warmup curve; the replies must be byte-identical
    across all three, and the adaptive run must end on AOT's per-call
    wire cost — the CI tiers gate checks both. *)
val tiers_compare :
  ?calls:int -> ?window:int -> ?hot_threshold:int -> unit -> tier_report

val render_tiers : tier_report -> string

(** One framing mode of one wirecost variant (PR 5). *)
type wire_run = {
  u_digest : string;
      (** chained MD5 over every physical frame, in transmit order,
          taken before the fault-simulator stage *)
  u_checksum : float;  (** fold of all replies *)
  u_copied_per_call : float;  (** [bytes_copied] per RMI *)
  u_minor_per_call : float;  (** GC minor words per RMI *)
  u_pool_hits : int;
  u_pool_misses : int;
  u_us_per_call : float;
}

(** One (workload, transport variant) pair, run under both framings. *)
type wire_row = {
  wr_workload : string;  (** "chain100" / "matrix16x16" *)
  wr_variant : string;
      (** "raw" / "reliable" / "reliable+batch" / "reliable+faults" *)
  wr_legacy : wire_run;
  wr_zc : wire_run;
  wr_gated : bool;
      (** enveloped variant: the >=50% copy-reduction gate applies *)
}

type wire_report = {
  u_title : string;
  u_rows : wire_row list;
  u_frames_ok : bool;  (** every row's frame digests identical *)
  u_results_ok : bool;  (** every row's checksums identical *)
  u_gate_ok : bool;  (** every gated row cut copied bytes >= 50% *)
}

(** Percent reduction in copied bytes per call, legacy -> zero-copy. *)
val wire_reduction : wire_row -> float

(** Run the paper-table message shapes (Table 1's 100-cell chain,
    Table 2's 16x16 double matrix) over raw, reliable, batched-reliable
    and seeded-lossy-reliable links, each under the legacy copy-based
    framing and the zero-copy framing.  Every physical frame is
    digested on its way out (before the fault simulator), so
    [u_frames_ok] proves the two framings byte-identical on the wire —
    including under retransmission and batching — while
    [u_copied_per_call] shows what the substitution saves. *)
val wirecost_compare :
  ?calls:int -> ?window:int -> ?seed:int -> unit -> wire_report

val render_wirecost : wire_report -> string

(** One allocator mode of one alloc variant (PR 10). *)
type alloc_run = {
  al_digest : string;
      (** chained MD5 over every post-warmup physical frame, in
          transmit order, taken before the fault-simulator stage *)
  al_checksum : float;  (** fold of all post-warmup replies *)
  al_minor_per_call : float;  (** GC minor words per RMI, post-warmup *)
  al_arena_allocs : int;
  al_arena_resets : int;
  al_arena_fallbacks : int;
}

(** One (workload, variant) pair, run under both allocators. *)
type alloc_row = {
  al_workload : string;  (** "chain100" / "matrix16x16" *)
  al_variant : string;
      (** "raw site" / "reliable site" / "reliable site+faults" /
          "reliable site+reuse+cycle" *)
  al_heap : alloc_run;  (** [Config.legacy_heap] *)
  al_arena : alloc_run;
  al_gated : bool;
      (** the row measured against the checked-in BENCH_wire baseline *)
  al_arena_active : bool;
      (** no-reuse row: the arena is licensed to engage and must *)
}

type alloc_report = {
  al_title : string;
  al_rows : alloc_row list;
  al_frames_ok : bool;  (** every row's frame digests identical *)
  al_results_ok : bool;  (** every row's checksums identical *)
  al_gate_ok : bool;
      (** gated row's arena minor words <= 50% of the baseline *)
  al_arena_ok : bool;
      (** arena-active rows recycle: allocs and wholesale resets
          counted, <= 10% heap fallbacks, fewer minor words than the
          heap run *)
}

(** The checked-in pre-PR minor-words-per-call baseline for the gated
    row (matrix16x16, reliable, site+reuse+cycle) from BENCH_wire.json. *)
val alloc_baseline_minor : float

(** Run the paper-table message shapes through their site-specialized
    plans (the matrix through the flat struct-of-arrays step) over raw,
    reliable, seeded-lossy-reliable and reliable-with-reuse links, each
    under GC-heap decoding ([Config.legacy_heap]) and arena decoding.
    Frames and reply checksums must be byte-identical between the two
    allocator modes — the arena substitutes the allocator, never the
    bytes. *)
val alloc_compare :
  ?calls:int -> ?window:int -> ?seed:int -> unit -> alloc_report

val render_alloc : alloc_report -> string

(** Machine-readable report for the CI alloc gate. *)
val alloc_json : alloc_report -> string

(** Render a timing table (paper vs modeled vs wall). *)
val render_timing : timing_table -> string

(** Sanity: do measured gains order configurations like the paper's? *)
val shape_summary : timing_table -> string

(** One domain count of one load variant (PR 6). *)
type load_run = {
  l_domains : int;
  l_throughput : float;  (** completed calls per second *)
  l_p50_us : float;  (** latency quantiles of the client-observed RTT
                         histogram, in microseconds *)
  l_p99_us : float;
  l_p999_us : float;
  l_digest : string;
      (** structural digest over every reply in issue order —
          independent of how the pool interleaved execution, so equal
          digests across domain counts prove the parallel runtime
          computed the serial answers *)
  l_dispatches : int;
  l_steals : int;
  l_rejects : int;
  l_queue_hwm : int;
}

(** One (workload, transport variant) pair across domain counts. *)
type load_row = {
  lr_workload : string;  (** "chain100" / "matrix16x16" *)
  lr_variant : string;
      (** "reliable" / "reliable+batch" / "reliable+faults" *)
  lr_runs : load_run list;  (** ascending domain count *)
}

type load_report = {
  l_title : string;
  l_rows : load_row list;
  l_servers : int;
  l_calls : int;
  l_hi_domains : int;
  l_digest_ok : bool;  (** every row digest-identical across domains *)
  l_speedup : float;
      (** matrix16x16/reliable throughput, hi-domain over 1-domain *)
  l_speedup_floor : float;
  l_tail_ratio : float;  (** p999 hi-domain over 1-domain *)
  l_tail_tol : float;
  l_cores_ok : bool;
      (** the host recommends at least [hi_domains + 1] domains, so the
          throughput/tail verdicts are enforced; on smaller hosts they
          are reported but cannot gate — one core cannot exhibit
          parallel speedup *)
  l_gate_ok : bool;
}

(** Drive [calls] pipelined RMIs from one client round-robin across
    [servers] machines — chain100 and matrix16x16, each over reliable,
    batched and seeded-lossy links — once on the serial runtime
    ([domains = 1]) and once on the work-stealing pool ([domains]
    workers, [queue_depth]-bounded per-node queues).  [spin] re-folds
    the argument in the handler so servers are CPU-bound.  The gate:
    digests must match across domain counts everywhere, and (when the
    host has the cores) matrix16x16/reliable must reach
    [speedup_floor]x throughput with p999 within [tail_tol]x. *)
val load_compare :
  ?calls:int ->
  ?window:int ->
  ?servers:int ->
  ?domains:int ->
  ?queue_depth:int ->
  ?spin:int ->
  ?seed:int ->
  ?speedup_floor:float ->
  ?tail_tol:float ->
  unit ->
  load_report

val render_load : load_report -> string

(** BENCH_load.json: rows plus gate verdicts, for the CI artifact. *)
val load_json : load_report -> string

(** One backend of one (workload, variant) pair of the transport
    substitution gate (PR 7). *)
type transport_run = {
  x_digest : string;
      (** hex digest over the structurally rendered replies, awaited in
          issue order — deterministic whatever the backend's scheduling
          did *)
  x_checksum : float;  (** fold of all replies *)
  x_msgs : int;  (** [msgs_sent] *)
  x_bytes : int;  (** [bytes_sent] *)
  x_modeled : float;  (** Myrinet-era modeled seconds from the counters *)
  x_wall : float;  (** measured wall-clock seconds *)
}

type transport_row = {
  xr_workload : string;  (** "chain100" / "matrix16x16" *)
  xr_variant : string;
      (** "sequential" / "pipelined" / "pipelined+batch" *)
  xr_sim : transport_run;
  xr_sock : transport_run;
}

type transport_report = {
  x_title : string;
  x_rows : transport_row list;
  x_digest_ok : bool;
      (** every row's issue-order reply digests and checksums identical
          between Sim and Sock *)
  x_model_ok : bool;
      (** every row's [msgs_sent]/[bytes_sent] — and therefore modeled
          seconds — identical between the backends: the cost accounting
          survives the transport substitution *)
}

(** Run the paper-table message shapes (chain100, matrix16x16) over the
    simulated interconnect and over a real TCP loopback mesh
    ({!Rmi_runtime.Fabric.backend}), sequentially, pipelined, and
    pipelined+batched, under the parallel fabric.  The gate demands
    byte-identical issue-order reply digests and identical wire
    counters between the backends; the report carries each backend's
    modeled-vs-wall-clock delta per workload. *)
val transport_compare :
  ?calls:int -> ?window:int -> ?seed:int -> unit -> transport_report

val render_transport : transport_report -> string

(** BENCH_transport.json: per-backend modeled-vs-wall rows plus the
    gate verdicts, for the CI socket-smoke artifact. *)
val transport_json : transport_report -> string

(** One workload of a multi-process client run. *)
type proc_run = {
  pr_workload : string;
  pr_calls : int;
  pr_digest : string;  (** issue-order reply digest *)
  pr_checksum : float;
  pr_wall : float;
}

(** [transport_proc ~self ~addrs ()] runs machine [self] of a TCP
    cluster spread over real OS processes ([addrs.(i)] is machine [i]'s
    [(host, port)]; [?listen] overrides the bind address).  Servers
    ([self > 0]) export the wire workloads and block serving until
    machine 0 shuts them down, returning [None]; the client ([self =
    0]) drives [calls] pipelined RMIs per workload round-robin across
    the servers and returns the per-workload digests.  Blocks until the
    full mesh is connected.

    [?reliable] stacks the {!Rmi_net.Reliable} adapter over the
    sockets (every process must agree) and arms the RPC retry budget,
    so the cluster rides through a server kill/restart; [?epoch] is
    the incarnation number a restarted server must bump (see
    {!Rmi_net.Sock.create_process}). *)
val transport_proc :
  ?calls:int ->
  ?window:int ->
  ?reliable:bool ->
  ?epoch:int ->
  ?listen:string * int ->
  self:int ->
  addrs:(string * int) array ->
  unit ->
  proc_run list option

val render_proc : proc_run list -> string
