module Config = Rmi_runtime.Config
module Fabric = Rmi_runtime.Fabric
module Metrics = Rmi_stats.Metrics
module Costmodel = Rmi_net.Costmodel

type scale = Small | Paper

type row = {
  config : Config.t;
  wall_seconds : float;
  modeled_seconds : float;
  stats : Metrics.snapshot;
}

type timing_table = {
  id : string;
  title : string;
  unit_label : string;
  rows : row list;
  paper : (string * float) list;
  per_unit : float -> float;
}

let model = Costmodel.myrinet_2003

let run_all_configs run_one =
  List.map
    (fun config ->
      let wall, stats = run_one config in
      {
        config;
        wall_seconds = wall;
        modeled_seconds = Costmodel.modeled_seconds model stats;
        stats;
      })
    Config.all

let find_class_row t =
  match List.find_opt (fun r -> r.config.Config.name = "class") t.rows with
  | Some r -> r
  | None -> invalid_arg "timing table without a class row"

let modeled_gain t row =
  let base = (find_class_row t).modeled_seconds in
  if base = 0.0 then 0.0 else 100.0 *. (base -. row.modeled_seconds) /. base

let wall_gain t row =
  let base = (find_class_row t).wall_seconds in
  if base = 0.0 then 0.0 else 100.0 *. (base -. row.wall_seconds) /. base

(* ------------------------------------------------------------------ *)
(* the five timing tables                                              *)
(* ------------------------------------------------------------------ *)

let table1 ?(scale = Small) ?(mode = Fabric.Sync) () =
  let params =
    match scale with
    | Small -> { Rmi_apps.Linked_list.elements = 100; repetitions = 200 }
    | Paper -> { Rmi_apps.Linked_list.elements = 100; repetitions = 2000 }
  in
  let rows =
    run_all_configs (fun config ->
        let r = Rmi_apps.Linked_list.run ~config ~mode params in
        (r.Rmi_apps.Linked_list.wall_seconds, r.Rmi_apps.Linked_list.stats))
  in
  {
    id = "table1";
    title =
      Printf.sprintf "Table 1: LinkedList, %d elements, %d repetitions, 2 CPUs"
        params.elements params.repetitions;
    unit_label = "s";
    rows;
    paper = Paper_data.table1_seconds;
    per_unit = Fun.id;
  }

let table2 ?(scale = Small) ?(mode = Fabric.Sync) () =
  let params =
    match scale with
    | Small -> { Rmi_apps.Array_bench.n = 16; repetitions = 200 }
    | Paper -> { Rmi_apps.Array_bench.n = 16; repetitions = 2000 }
  in
  let rows =
    run_all_configs (fun config ->
        let r = Rmi_apps.Array_bench.run ~config ~mode params in
        (r.Rmi_apps.Array_bench.wall_seconds, r.Rmi_apps.Array_bench.stats))
  in
  {
    id = "table2";
    title =
      Printf.sprintf "Table 2: 2D array transmission, %dx%d, %d repetitions, 2 CPUs"
        params.n params.n params.repetitions;
    unit_label = "s";
    rows;
    paper = Paper_data.table2_seconds;
    per_unit = Fun.id;
  }

let table3 ?(scale = Small) ?(mode = Fabric.Sync) () =
  let params =
    match scale with
    | Small -> { Rmi_apps.Lu.n = 256; block_size = 16 }
    | Paper -> { Rmi_apps.Lu.n = 1024; block_size = 16 }
  in
  let rows =
    run_all_configs (fun config ->
        let r = Rmi_apps.Lu.run ~config ~mode params in
        if r.Rmi_apps.Lu.residual > 1e-6 then
          failwith
            (Printf.sprintf "LU diverged under %s: residual %g"
               config.Config.name r.Rmi_apps.Lu.residual);
        (r.Rmi_apps.Lu.wall_seconds, r.Rmi_apps.Lu.stats))
  in
  {
    id = "table3";
    title =
      Printf.sprintf "Table 3: LU runtime, %dx%d matrix (block %d), 2 CPUs"
        params.n params.n params.block_size;
    unit_label = "s";
    rows;
    paper = Paper_data.table3_seconds;
    per_unit = Fun.id;
  }

let table5 ?(scale = Small) ?(mode = Fabric.Sync) () =
  let params =
    match scale with
    | Small ->
        { Rmi_apps.Superopt.default_params with max_len = 2; max_candidates = 20_000 }
    | Paper ->
        (* the paper tests 10.5M sequences of up to three instructions *)
        { Rmi_apps.Superopt.default_params with max_len = 3;
          max_candidates = 10_500_000 }
  in
  let rows =
    run_all_configs (fun config ->
        let r = Rmi_apps.Superopt.run ~config ~mode params in
        (r.Rmi_apps.Superopt.wall_seconds, r.Rmi_apps.Superopt.stats))
  in
  {
    id = "table5";
    title = "Table 5: Superoptimizer exhaustive search, 2 CPUs";
    unit_label = "s";
    rows;
    paper = Paper_data.table5_seconds;
    per_unit = Fun.id;
  }

let table7 ?(scale = Small) ?(mode = Fabric.Sync) () =
  let params =
    match scale with
    | Small -> { Rmi_apps.Webserver.pages = 64; page_bytes = 2048; requests = 5000 }
    | Paper -> { Rmi_apps.Webserver.pages = 64; page_bytes = 2048; requests = 100_000 }
  in
  let requests = params.requests in
  let rows =
    run_all_configs (fun config ->
        let r = Rmi_apps.Webserver.run ~config ~mode params in
        (r.Rmi_apps.Webserver.wall_seconds, r.Rmi_apps.Webserver.stats))
  in
  {
    id = "table7";
    title =
      Printf.sprintf "Table 7: Webserver, us per webpage retrieval (%d requests), 2 CPUs"
        requests;
    unit_label = "us/page";
    rows;
    paper = Paper_data.table7_us_per_page;
    per_unit = (fun wall -> wall *. 1e6 /. float_of_int requests);
  }

(* ------------------------------------------------------------------ *)
(* pipelining / batching comparison                                    *)
(* ------------------------------------------------------------------ *)

type pipeline_row = {
  variant : string;
  p_stats : Metrics.snapshot;
  p_modeled : float;
  p_wall : float;
  checksum : float;
}

type pipeline_report = { p_title : string; p_rows : pipeline_row list }

let pipeline_row variant (wall, stats, checksum) =
  {
    variant;
    p_stats = stats;
    p_modeled = Costmodel.modeled_seconds model stats;
    p_wall = wall;
    checksum;
  }

(* the same N-RMI workload three ways: synchronous, pipelined futures,
   pipelined futures over coalescing envelopes.  The checksum column
   proves all three computed the same thing; msgs_sent x the cost
   model's per-message latency is where batching pays. *)
let pipeline_compare ?(scale = Small) ?(mode = Fabric.Sync) ?(window = 16) () =
  let config = Config.site_reuse_cycle in
  let batched = Config.with_batching config in
  let array_report =
    let params =
      match scale with
      | Small -> { Rmi_apps.Array_bench.n = 16; repetitions = 200 }
      | Paper -> { Rmi_apps.Array_bench.n = 16; repetitions = 2000 }
    in
    let of_result (r : Rmi_apps.Array_bench.result) =
      (r.wall_seconds, r.stats, r.sum_received)
    in
    {
      p_title =
        Printf.sprintf
          "2D array transmission, %dx%d, %d repetitions, window %d"
          params.n params.n params.repetitions window;
      p_rows =
        [
          pipeline_row "sequential"
            (of_result (Rmi_apps.Array_bench.run ~config ~mode params));
          pipeline_row "pipelined"
            (of_result
               (Rmi_apps.Array_bench.run_pipelined ~window ~config ~mode params));
          pipeline_row "pipelined + batch"
            (of_result
               (Rmi_apps.Array_bench.run_pipelined ~window ~config:batched
                  ~mode params));
        ];
    }
  in
  let list_report =
    let params =
      match scale with
      | Small -> { Rmi_apps.Linked_list.elements = 100; repetitions = 200 }
      | Paper -> { Rmi_apps.Linked_list.elements = 100; repetitions = 2000 }
    in
    let of_result (r : Rmi_apps.Linked_list.result) =
      (r.wall_seconds, r.stats, float_of_int r.cells_received)
    in
    {
      p_title =
        Printf.sprintf "LinkedList, %d elements, %d repetitions, window %d"
          params.elements params.repetitions window;
      p_rows =
        [
          pipeline_row "sequential"
            (of_result (Rmi_apps.Linked_list.run ~config ~mode params));
          pipeline_row "pipelined"
            (of_result
               (Rmi_apps.Linked_list.run_pipelined ~window ~config ~mode params));
          pipeline_row "pipelined + batch"
            (of_result
               (Rmi_apps.Linked_list.run_pipelined ~window ~config:batched
                  ~mode params));
        ];
    }
  in
  [ array_report; list_report ]

let render_pipeline (r : pipeline_report) =
  let headers =
    [
      "variant"; "msgs"; "batches"; "max inflight"; "bytes"; "model s";
      "wall s"; "checksum";
    ]
  in
  let base =
    match r.p_rows with row :: _ -> Some row.checksum | [] -> None
  in
  let rows =
    List.map
      (fun row ->
        let ok =
          match base with
          | Some c -> if Float.equal c row.checksum then "" else "  MISMATCH"
          | None -> ""
        in
        [
          row.variant;
          string_of_int row.p_stats.Metrics.msgs_sent;
          string_of_int row.p_stats.Metrics.batches_sent;
          string_of_int row.p_stats.Metrics.outstanding_hwm;
          string_of_int row.p_stats.Metrics.bytes_sent;
          Printf.sprintf "%.4f" row.p_modeled;
          Printf.sprintf "%.4f" row.p_wall;
          Printf.sprintf "%.0f%s" row.checksum ok;
        ])
      r.p_rows
  in
  r.p_title ^ "\n" ^ Rmi_stats.Ascii_table.render ~headers rows

(* ------------------------------------------------------------------ *)
(* rendering                                                           *)
(* ------------------------------------------------------------------ *)

let f2 v = Printf.sprintf "%.2f" v
let f1pct v = Printf.sprintf "%.1f%%" v

let render_timing t =
  let headers =
    [
      "Compiler Optimization"; "paper " ^ t.unit_label; "paper gain";
      "model s"; "model gain"; "wall " ^ t.unit_label; "wall gain";
    ]
  in
  let rows =
    List.map
      (fun r ->
        let name = r.config.Config.name in
        let paper_v =
          match Paper_data.seconds_for t.paper name with
          | Some v -> f2 v
          | None -> "-"
        in
        let paper_g =
          match Paper_data.gain_over_class t.paper name with
          | Some g -> f1pct g
          | None -> "-"
        in
        [
          name; paper_v; paper_g;
          Printf.sprintf "%.4f" r.modeled_seconds;
          f1pct (modeled_gain t r);
          Printf.sprintf "%.4f" (t.per_unit r.wall_seconds);
          f1pct (wall_gain t r);
        ])
      t.rows
  in
  t.title ^ "\n" ^ Rmi_stats.Ascii_table.render ~headers rows

let stats_table ~id ~title (t : timing_table) (paper : Paper_data.stats_row list) =
  let headers =
    [
      "Optimization"; "reused objs"; "(paper)"; "local rpcs"; "(paper)";
      "remote rpcs"; "(paper)"; "new MBytes"; "(paper)"; "cycle lookups";
      "(paper)"; "ser calls";
    ]
  in
  let rows =
    List.map
      (fun r ->
        let name = r.config.Config.name in
        let p =
          List.find_opt (fun (pr : Paper_data.stats_row) -> pr.cfg = name) paper
        in
        let pi f = match p with Some p -> string_of_int (f p) | None -> "-" in
        let pf f = match p with Some p -> f2 (f p) | None -> "-" in
        [
          name;
          string_of_int r.stats.Metrics.reused_objs;
          pi (fun p -> p.Paper_data.reused_objs);
          string_of_int r.stats.Metrics.local_rpcs;
          pi (fun p -> p.Paper_data.local_rpcs);
          string_of_int r.stats.Metrics.remote_rpcs;
          pi (fun p -> p.Paper_data.remote_rpcs);
          f2 (float_of_int r.stats.Metrics.new_bytes /. 1048576.0);
          pf (fun p -> p.Paper_data.new_mbytes);
          string_of_int r.stats.Metrics.cycle_lookups;
          pi (fun p -> p.Paper_data.cycle_lookups);
          (* the paper reports the serializer-invocation reduction in
             prose ("a notable reduction ... due to method inlining") *)
          string_of_int r.stats.Metrics.ser_invocations;
        ])
      t.rows
  in
  ignore id;
  title ^ "\n" ^ Rmi_stats.Ascii_table.render ~headers rows

let shape_summary t =
  let checks = ref [] in
  let note ok what =
    checks := (Printf.sprintf "  [%s] %s" (if ok then "ok" else "MISMATCH") what) :: !checks
  in
  let by name = List.find_opt (fun r -> r.config.Config.name = name) t.rows in
  (match (by "class", by "site") with
  | Some c, Some s ->
      note (s.modeled_seconds < c.modeled_seconds) "site beats class (modeled)"
  | _ -> ());
  (match (by "site", by "site + reuse + cycle") with
  | Some s, Some f ->
      note
        (f.modeled_seconds <= s.modeled_seconds)
        "all optimizations beat site alone (modeled)"
  | _ -> ());
  (* does the measured winner match the paper's winner? *)
  let winner rows value =
    List.fold_left
      (fun acc r -> match acc with
        | None -> Some r
        | Some best -> if value r < value best then Some r else acc)
      None rows
  in
  (match
     ( winner t.rows (fun r -> r.modeled_seconds),
       List.fold_left
         (fun acc (name, v) ->
           match acc with
           | None -> Some (name, v)
           | Some (_, best) -> if v < best then Some (name, v) else acc)
         None t.paper )
   with
  | Some r, Some (pname, _) ->
      note
        (String.equal r.config.Config.name pname
        ||
        (* ties in the paper: reuse rows equal within noise *)
        match Paper_data.seconds_for t.paper r.config.Config.name with
        | Some v ->
            Float.abs
              (v -. (match Paper_data.seconds_for t.paper pname with Some b -> b | None -> v))
            /. v
            < 0.02
        | None -> false)
        (Printf.sprintf "winner matches paper (%s)" pname)
  | _ -> ());
  String.concat "\n" (List.rev !checks)
