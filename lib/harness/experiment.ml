module Config = Rmi_runtime.Config
module Fabric = Rmi_runtime.Fabric
module Node = Rmi_runtime.Node
module Remote_ref = Rmi_runtime.Remote_ref
module Metrics = Rmi_stats.Metrics
module Costmodel = Rmi_net.Costmodel
module Fault_sim = Rmi_net.Fault_sim
module Chaos = Rmi_net.Chaos
module Value = Rmi_serial.Value
module Plan = Rmi_core.Plan

type scale = Small | Paper

type row = {
  config : Config.t;
  wall_seconds : float;
  modeled_seconds : float;
  stats : Metrics.snapshot;
}

type timing_table = {
  id : string;
  title : string;
  unit_label : string;
  rows : row list;
  paper : (string * float) list;
  per_unit : float -> float;
}

let model = Costmodel.myrinet_2003

let run_all_configs run_one =
  List.map
    (fun config ->
      let wall, stats = run_one config in
      {
        config;
        wall_seconds = wall;
        modeled_seconds = Costmodel.modeled_seconds model stats;
        stats;
      })
    Config.all

let find_class_row t =
  match List.find_opt (fun r -> r.config.Config.name = "class") t.rows with
  | Some r -> r
  | None -> invalid_arg "timing table without a class row"

let modeled_gain t row =
  let base = (find_class_row t).modeled_seconds in
  if base = 0.0 then 0.0 else 100.0 *. (base -. row.modeled_seconds) /. base

let wall_gain t row =
  let base = (find_class_row t).wall_seconds in
  if base = 0.0 then 0.0 else 100.0 *. (base -. row.wall_seconds) /. base

(* ------------------------------------------------------------------ *)
(* the five timing tables                                              *)
(* ------------------------------------------------------------------ *)

let table1 ?(scale = Small) ?(mode = Fabric.Sync) ?backend () =
  let params =
    match scale with
    | Small -> { Rmi_apps.Linked_list.elements = 100; repetitions = 200 }
    | Paper -> { Rmi_apps.Linked_list.elements = 100; repetitions = 2000 }
  in
  let rows =
    run_all_configs (fun config ->
        let r = Rmi_apps.Linked_list.run ?backend ~config ~mode params in
        (r.Rmi_apps.Linked_list.wall_seconds, r.Rmi_apps.Linked_list.stats))
  in
  {
    id = "table1";
    title =
      Printf.sprintf "Table 1: LinkedList, %d elements, %d repetitions, 2 CPUs"
        params.elements params.repetitions;
    unit_label = "s";
    rows;
    paper = Paper_data.table1_seconds;
    per_unit = Fun.id;
  }

let table2 ?(scale = Small) ?(mode = Fabric.Sync) ?backend () =
  let params =
    match scale with
    | Small -> { Rmi_apps.Array_bench.n = 16; repetitions = 200 }
    | Paper -> { Rmi_apps.Array_bench.n = 16; repetitions = 2000 }
  in
  let rows =
    run_all_configs (fun config ->
        let r = Rmi_apps.Array_bench.run ?backend ~config ~mode params in
        (r.Rmi_apps.Array_bench.wall_seconds, r.Rmi_apps.Array_bench.stats))
  in
  {
    id = "table2";
    title =
      Printf.sprintf "Table 2: 2D array transmission, %dx%d, %d repetitions, 2 CPUs"
        params.n params.n params.repetitions;
    unit_label = "s";
    rows;
    paper = Paper_data.table2_seconds;
    per_unit = Fun.id;
  }

let table3 ?(scale = Small) ?(mode = Fabric.Sync) ?backend () =
  let params =
    match scale with
    | Small -> { Rmi_apps.Lu.n = 256; block_size = 16 }
    | Paper -> { Rmi_apps.Lu.n = 1024; block_size = 16 }
  in
  let rows =
    run_all_configs (fun config ->
        let r = Rmi_apps.Lu.run ?backend ~config ~mode params in
        if r.Rmi_apps.Lu.residual > 1e-6 then
          failwith
            (Printf.sprintf "LU diverged under %s: residual %g"
               config.Config.name r.Rmi_apps.Lu.residual);
        (r.Rmi_apps.Lu.wall_seconds, r.Rmi_apps.Lu.stats))
  in
  {
    id = "table3";
    title =
      Printf.sprintf "Table 3: LU runtime, %dx%d matrix (block %d), 2 CPUs"
        params.n params.n params.block_size;
    unit_label = "s";
    rows;
    paper = Paper_data.table3_seconds;
    per_unit = Fun.id;
  }

let table5 ?(scale = Small) ?(mode = Fabric.Sync) ?backend () =
  let params =
    match scale with
    | Small ->
        { Rmi_apps.Superopt.default_params with max_len = 2; max_candidates = 20_000 }
    | Paper ->
        (* the paper tests 10.5M sequences of up to three instructions *)
        { Rmi_apps.Superopt.default_params with max_len = 3;
          max_candidates = 10_500_000 }
  in
  let rows =
    run_all_configs (fun config ->
        let r = Rmi_apps.Superopt.run ?backend ~config ~mode params in
        (r.Rmi_apps.Superopt.wall_seconds, r.Rmi_apps.Superopt.stats))
  in
  {
    id = "table5";
    title = "Table 5: Superoptimizer exhaustive search, 2 CPUs";
    unit_label = "s";
    rows;
    paper = Paper_data.table5_seconds;
    per_unit = Fun.id;
  }

let table7 ?(scale = Small) ?(mode = Fabric.Sync) ?backend () =
  let params =
    match scale with
    | Small -> { Rmi_apps.Webserver.pages = 64; page_bytes = 2048; requests = 5000 }
    | Paper -> { Rmi_apps.Webserver.pages = 64; page_bytes = 2048; requests = 100_000 }
  in
  let requests = params.requests in
  let rows =
    run_all_configs (fun config ->
        let r = Rmi_apps.Webserver.run ?backend ~config ~mode params in
        (r.Rmi_apps.Webserver.wall_seconds, r.Rmi_apps.Webserver.stats))
  in
  {
    id = "table7";
    title =
      Printf.sprintf "Table 7: Webserver, us per webpage retrieval (%d requests), 2 CPUs"
        requests;
    unit_label = "us/page";
    rows;
    paper = Paper_data.table7_us_per_page;
    per_unit = (fun wall -> wall *. 1e6 /. float_of_int requests);
  }

(* ------------------------------------------------------------------ *)
(* pipelining / batching comparison                                    *)
(* ------------------------------------------------------------------ *)

type pipeline_row = {
  variant : string;
  p_stats : Metrics.snapshot;
  p_modeled : float;
  p_wall : float;
  checksum : float;
}

type pipeline_report = { p_title : string; p_rows : pipeline_row list }

let pipeline_row variant (wall, stats, checksum) =
  {
    variant;
    p_stats = stats;
    p_modeled = Costmodel.modeled_seconds model stats;
    p_wall = wall;
    checksum;
  }

(* the same N-RMI workload three ways: synchronous, pipelined futures,
   pipelined futures over coalescing envelopes.  The checksum column
   proves all three computed the same thing; msgs_sent x the cost
   model's per-message latency is where batching pays.

   [faults] composes the comparison with a seeded lossy network: every
   variant switches to the reliable transport and gets a {e fresh}
   simulator from the same seed (the schedules diverge with the
   traffic, the checksums must not). *)
let pipeline_compare ?(scale = Small) ?(mode = Fabric.Sync) ?(window = 16)
    ?faults () =
  let config =
    match faults with
    | None -> Config.site_reuse_cycle
    | Some _ -> Config.with_reliable Config.site_reuse_cycle
  in
  let batched = Config.with_batching config in
  let sim () =
    match faults with
    | None -> None
    | Some (seed, profile) -> Some (Fault_sim.create ~seed ~n:2 profile)
  in
  let fault_suffix =
    match faults with
    | None -> ""
    | Some (seed, _) -> Printf.sprintf ", faults seed=%d" seed
  in
  let array_report =
    let params =
      match scale with
      | Small -> { Rmi_apps.Array_bench.n = 16; repetitions = 200 }
      | Paper -> { Rmi_apps.Array_bench.n = 16; repetitions = 2000 }
    in
    let of_result (r : Rmi_apps.Array_bench.result) =
      (r.wall_seconds, r.stats, r.sum_received)
    in
    {
      p_title =
        Printf.sprintf
          "2D array transmission, %dx%d, %d repetitions, window %d%s"
          params.n params.n params.repetitions window fault_suffix;
      p_rows =
        [
          pipeline_row "sequential"
            (of_result
               (Rmi_apps.Array_bench.run ?faults:(sim ()) ~config ~mode params));
          pipeline_row "pipelined"
            (of_result
               (Rmi_apps.Array_bench.run_pipelined ~window ?faults:(sim ())
                  ~config ~mode params));
          pipeline_row "pipelined + batch"
            (of_result
               (Rmi_apps.Array_bench.run_pipelined ~window ?faults:(sim ())
                  ~config:batched ~mode params));
        ];
    }
  in
  let list_report =
    let params =
      match scale with
      | Small -> { Rmi_apps.Linked_list.elements = 100; repetitions = 200 }
      | Paper -> { Rmi_apps.Linked_list.elements = 100; repetitions = 2000 }
    in
    let of_result (r : Rmi_apps.Linked_list.result) =
      (r.wall_seconds, r.stats, float_of_int r.cells_received)
    in
    {
      p_title =
        Printf.sprintf "LinkedList, %d elements, %d repetitions, window %d%s"
          params.elements params.repetitions window fault_suffix;
      p_rows =
        [
          pipeline_row "sequential"
            (of_result
               (Rmi_apps.Linked_list.run ?faults:(sim ()) ~config ~mode params));
          pipeline_row "pipelined"
            (of_result
               (Rmi_apps.Linked_list.run_pipelined ~window ?faults:(sim ())
                  ~config ~mode params));
          pipeline_row "pipelined + batch"
            (of_result
               (Rmi_apps.Linked_list.run_pipelined ~window ?faults:(sim ())
                  ~config:batched ~mode params));
        ];
    }
  in
  [ array_report; list_report ]

let render_pipeline (r : pipeline_report) =
  let headers =
    [
      "variant"; "msgs"; "batches"; "max inflight"; "bytes"; "model s";
      "wall s"; "checksum";
    ]
  in
  let base =
    match r.p_rows with row :: _ -> Some row.checksum | [] -> None
  in
  let rows =
    List.map
      (fun row ->
        let ok =
          match base with
          | Some c -> if Float.equal c row.checksum then "" else "  MISMATCH"
          | None -> ""
        in
        [
          row.variant;
          string_of_int row.p_stats.Metrics.msgs_sent;
          string_of_int row.p_stats.Metrics.batches_sent;
          string_of_int row.p_stats.Metrics.outstanding_hwm;
          string_of_int row.p_stats.Metrics.bytes_sent;
          Printf.sprintf "%.4f" row.p_modeled;
          Printf.sprintf "%.4f" row.p_wall;
          Printf.sprintf "%.0f%s" row.checksum ok;
        ])
      r.p_rows
  in
  r.p_title ^ "\n" ^ Rmi_stats.Ascii_table.render ~headers rows

(* ------------------------------------------------------------------ *)
(* crash / restart / failover comparison                               *)
(* ------------------------------------------------------------------ *)

type crash_row = {
  c_variant : string;
  c_stats : Metrics.snapshot;
  c_checksum : int;
  c_executions : int;
  c_failed : int;
  c_ok : bool;
}

type crash_report = {
  c_title : string;
  c_rows : crash_row list;
  c_digest : string;
  c_replay_equal : bool;
}

let crash_meta =
  lazy (Rmi_serial.Class_meta.make [ ("Box", [ ("v", Jir.Types.Tint) ]) ])

let crash_box v =
  let b = Value.new_obj ~cls:0 ~nfields:1 in
  b.Value.fields.(0) <- Value.Int v;
  Value.Obj b

let m_echo = 1

(* [calls] pipelined echo RMIs from machine 0 to machine 1 over the
   reliable transport, optionally under a crash schedule ([?sim] on
   the simulated backend, [?chaos] over real sockets).  Returns the
   reply checksum, how often the handler actually ran (exactly-once
   evidence) and how many calls failed despite retries.  [?record] is
   called with the boxed value on every handler execution (per-value
   exactly-once evidence — the checksum alone cannot distinguish a
   re-execution of an idempotent echo); [?replies] accumulates the
   issue-order reply stream for byte-identical replay comparison. *)
let run_crash_variant ?sim ?chaos ?(backend = Fabric.Sim)
    ?(record = fun _ -> ()) ?replies ~calls ~window () =
  let metrics = Metrics.create () in
  let config =
    (* a restart outage can outlast one transport budget; give the RPC
       layer enough resends to ride through it *)
    Config.with_failover
      { Config.default_failover with Config.max_call_retries = 4 }
      (Config.with_reliable Config.class_)
  in
  let fabric =
    Fabric.create ~mode:Fabric.Sync ~backend ?faults:sim ?chaos ~n:2
      ~meta:(Lazy.force crash_meta) ~config ~plans:(Hashtbl.create 4) ~metrics
      ()
  in
  let execs = ref 0 in
  Node.export (Fabric.node fabric 1) ~obj:0 ~meth:m_echo ~has_ret:true
    (fun args ->
      incr execs;
      match args.(0) with
      | Value.Obj o -> (
          match o.Value.fields.(0) with
          | Value.Int v ->
              record v;
              Some (Value.Int (v + 1))
          | _ -> failwith "bad box")
      | _ -> failwith "bad arg");
  let caller = Fabric.node fabric 0 in
  let dest = Remote_ref.make ~machine:1 ~obj:0 in
  let sum = ref 0 and failed = ref 0 in
  Fabric.run fabric (fun _ ->
      let i = ref 1 in
      while !i <= calls do
        let k = min window (calls - !i + 1) in
        let futures =
          List.init k (fun j ->
              Node.call_async caller ~dest ~meth:m_echo ~callsite:1
                ~has_ret:true [| crash_box (!i + j) |])
        in
        List.iteri
          (fun j f ->
            let note s =
              Option.iter
                (fun b ->
                  Buffer.add_string b (Printf.sprintf "%d:%s;" (!i + j) s))
                replies
            in
            match Node.Future.await f with
            | Some (Value.Int v) ->
                sum := !sum + v;
                note (string_of_int v)
            | Some _ | None ->
                incr failed;
                note "fail"
            | exception (Node.Rpc_timeout _ | Node.Peer_down _) ->
                incr failed;
                note "fail")
          futures;
        i := !i + k
      done);
  Fabric.shutdown_net fabric;
  (Metrics.snapshot metrics, !sum, !execs, !failed)

(* the same workload three ways: fault-free, under a seeded durable
   crash/restart schedule (results and execution counts must match the
   baseline exactly — the reply cache survives), and under the same
   schedule with an amnesiac victim (retried calls may re-execute).
   The durable run is replayed from its seed to pin determinism. *)
let crash_compare ?(seed = 42) ?(crashes = 1) ?(calls = 80) ?(window = 8) () =
  let sim durability =
    let s = Fault_sim.create ~seed ~n:2 Fault_sim.lossless in
    Fault_sim.set_crash_plan s
      (Fault_sim.seeded_crash_plan ~seed ~n:2 ~crashes ~durability ());
    s
  in
  let base_stats, base_sum, base_execs, base_failed =
    run_crash_variant ~calls ~window ()
  in
  let dsim = sim Fault_sim.Durable in
  let d_stats, d_sum, d_execs, d_failed =
    run_crash_variant ~sim:dsim ~calls ~window ()
  in
  let dsim2 = sim Fault_sim.Durable in
  let _, d_sum2, _, _ = run_crash_variant ~sim:dsim2 ~calls ~window () in
  let asim = sim Fault_sim.Amnesia in
  let a_stats, a_sum, a_execs, a_failed =
    run_crash_variant ~sim:asim ~calls ~window ()
  in
  let row variant (stats, sum, execs, failed) =
    {
      c_variant = variant;
      c_stats = stats;
      c_checksum = sum;
      c_executions = execs;
      c_failed = failed;
      c_ok = sum = base_sum && failed = 0;
    }
  in
  {
    c_title =
      Printf.sprintf
        "crash/restart: %d echo calls, window %d, seed %d, %d crash(es)" calls
        window seed crashes;
    c_rows =
      [
        row "fault-free" (base_stats, base_sum, base_execs, base_failed);
        row "durable crash" (d_stats, d_sum, d_execs, d_failed);
        row "amnesia crash" (a_stats, a_sum, a_execs, a_failed);
      ];
    c_digest = Fault_sim.digest dsim;
    c_replay_equal =
      String.equal (Fault_sim.digest dsim) (Fault_sim.digest dsim2)
      && d_sum = d_sum2;
  }

let render_crash (r : crash_report) =
  let headers =
    [
      "variant"; "checksum"; "failed"; "handler execs"; "crashes"; "restarts";
      "rpc retries"; "cache hits"; "stale drops";
    ]
  in
  let base =
    match r.c_rows with row :: _ -> Some row.c_checksum | [] -> None
  in
  let rows =
    List.map
      (fun row ->
        let ok =
          match base with
          | Some c -> if c = row.c_checksum then "" else "  MISMATCH"
          | None -> ""
        in
        [
          row.c_variant;
          Printf.sprintf "%d%s" row.c_checksum ok;
          string_of_int row.c_failed;
          string_of_int row.c_executions;
          string_of_int row.c_stats.Metrics.crashes;
          string_of_int row.c_stats.Metrics.restarts;
          string_of_int row.c_stats.Metrics.call_retries;
          string_of_int row.c_stats.Metrics.reply_cache_hits;
          string_of_int row.c_stats.Metrics.stale_drops;
        ])
      r.c_rows
  in
  Printf.sprintf "%s\n%s\nseeded replay byte-identical: %s" r.c_title
    (Rmi_stats.Ascii_table.render ~headers rows)
    (if r.c_replay_equal then "yes" else "NO")

(* ------------------------------------------------------------------ *)
(* chaos: the crash workloads over real TCP (PR 8)                     *)
(* ------------------------------------------------------------------ *)

type chaos_report = {
  h_title : string;
  h_rows : crash_row list;
  h_digest : string;
  h_replay_equal : bool;
  h_parity_equal : bool;
  h_sweep_seeds : int;
  h_sweep_failed : int list;
}

(* the full injector one seed buys: a moderately lossy link schedule, a
   seeded durable (or amnesiac) kill/restart and a seeded connection
   plan of TCP severs and endpoint stalls, all on one frame clock *)
let chaos_injector ~seed durability =
  let n = 2 in
  let fs = Fault_sim.create ~seed ~n Fault_sim.default_lossy in
  Fault_sim.set_crash_plan fs
    (Fault_sim.seeded_crash_plan ~seed ~n ~crashes:1 ~durability ());
  Chaos.of_fault_sim ~n ~plan:(Chaos.seeded_plan ~seed ~n ()) fs

(* the durable exactly-once property over real sockets, one seed: no
   call failed, the reply checksum is the closed form
   [calls * (calls + 3) / 2], the handler ran exactly [calls] times
   and no boxed value executed twice.  The chaos gate sweeps this over
   a seed range; test/test_chaos.ml drives it as a QCheck property. *)
let chaos_exactly_once ?(calls = 24) ?(window = 6) ~seed () =
  let counts = Hashtbl.create 64 in
  let record v =
    Hashtbl.replace counts v
      (1 + Option.value ~default:0 (Hashtbl.find_opt counts v))
  in
  let _, sum, execs, failed =
    run_crash_variant ~backend:Fabric.Sock
      ~chaos:(chaos_injector ~seed Fault_sim.Durable)
      ~record ~calls ~window ()
  in
  failed = 0
  && sum = calls * (calls + 3) / 2
  && execs = calls
  && Hashtbl.length counts = calls
  && Hashtbl.fold (fun _ c ok -> ok && c = 1) counts true

(* the PR 3 crash comparison lifted onto the socket transport: the
   echo workload fault-free over loopback TCP, under a seeded chaos
   injector with a durable victim (exactly-once must survive injected
   loss, severed connections, stalls and the kill/restart), under the
   same schedule with an amnesiac victim (checksum must still match —
   the echo is idempotent), plus the determinism gates: the durable
   run replayed from its seed must produce the identical issue-order
   reply stream, the chaos frame schedule must be byte-identical to
   the bare [Fault_sim] schedule on a synthetic parity run, and every
   seed of [sweep] must pass {!chaos_exactly_once}. *)
let chaos_compare ?(seed = 42) ?(calls = 80) ?(window = 8) ?(sweep = 300) () =
  let base_stats, base_sum, base_execs, base_failed =
    run_crash_variant ~backend:Fabric.Sock ~calls ~window ()
  in
  let rep1 = Buffer.create 1024 and rep2 = Buffer.create 1024 in
  let d_stats, d_sum, d_execs, d_failed =
    run_crash_variant ~backend:Fabric.Sock
      ~chaos:(chaos_injector ~seed Fault_sim.Durable)
      ~replies:rep1 ~calls ~window ()
  in
  let _, d_sum2, _, _ =
    run_crash_variant ~backend:Fabric.Sock
      ~chaos:(chaos_injector ~seed Fault_sim.Durable)
      ~replies:rep2 ~calls ~window ()
  in
  let a_stats, a_sum, a_execs, a_failed =
    run_crash_variant ~backend:Fabric.Sock
      ~chaos:(chaos_injector ~seed Fault_sim.Amnesia)
      ~calls ~window ()
  in
  let parity_equal =
    let chaos_digest, bare_digest =
      Chaos.sim_parity ~seed ~n:2 ~frames:400 ()
    in
    String.equal chaos_digest bare_digest
  in
  let sweep_failed = ref [] in
  for i = 0 to sweep - 1 do
    let s = (seed * 1000) + i in
    if not (chaos_exactly_once ~seed:s ()) then
      sweep_failed := s :: !sweep_failed
  done;
  let row variant (stats, sum, execs, failed) =
    {
      c_variant = variant;
      c_stats = stats;
      c_checksum = sum;
      c_executions = execs;
      c_failed = failed;
      c_ok = sum = base_sum && failed = 0;
    }
  in
  {
    h_title =
      Printf.sprintf
        "chaos over loopback TCP: %d echo calls, window %d, seed %d, %d-seed \
         sweep"
        calls window seed sweep;
    h_rows =
      [
        row "fault-free" (base_stats, base_sum, base_execs, base_failed);
        row "durable chaos" (d_stats, d_sum, d_execs, d_failed);
        row "amnesia chaos" (a_stats, a_sum, a_execs, a_failed);
      ];
    h_digest = Digest.to_hex (Digest.string (Buffer.contents rep1));
    h_replay_equal =
      String.equal (Buffer.contents rep1) (Buffer.contents rep2)
      && d_sum = d_sum2;
    h_parity_equal = parity_equal;
    h_sweep_seeds = sweep;
    h_sweep_failed = List.rev !sweep_failed;
  }

let chaos_ok (r : chaos_report) =
  match r.h_rows with
  | base :: (durable :: _ as faulted) ->
      List.for_all (fun row -> row.c_ok) (base :: faulted)
      (* exactly-once under the durable injector: the handler ran
         precisely as often as in the fault-free baseline *)
      && durable.c_executions = base.c_executions
      && r.h_replay_equal && r.h_parity_equal && r.h_sweep_failed = []
  | _ -> false

let render_chaos (r : chaos_report) =
  let headers =
    [
      "variant"; "checksum"; "failed"; "handler execs"; "crashes"; "restarts";
      "rpc retries"; "arq retries"; "dup drops"; "stale drops";
    ]
  in
  let base =
    match r.h_rows with row :: _ -> Some row.c_checksum | [] -> None
  in
  let rows =
    List.map
      (fun row ->
        let ok =
          match base with
          | Some c -> if c = row.c_checksum then "" else "  MISMATCH"
          | None -> ""
        in
        [
          row.c_variant;
          Printf.sprintf "%d%s" row.c_checksum ok;
          string_of_int row.c_failed;
          string_of_int row.c_executions;
          string_of_int row.c_stats.Metrics.crashes;
          string_of_int row.c_stats.Metrics.restarts;
          string_of_int row.c_stats.Metrics.call_retries;
          string_of_int row.c_stats.Metrics.retries;
          string_of_int row.c_stats.Metrics.dup_drops;
          string_of_int row.c_stats.Metrics.stale_drops;
        ])
      r.h_rows
  in
  Printf.sprintf
    "%s\n%s\nsame-seed replay byte-identical: %s\nchaos/sim schedule parity: \
     %s\nexactly-once sweep: %d/%d seeds%s"
    r.h_title
    (Rmi_stats.Ascii_table.render ~headers rows)
    (if r.h_replay_equal then "yes" else "NO")
    (if r.h_parity_equal then "identical" else "DIVERGED")
    (r.h_sweep_seeds - List.length r.h_sweep_failed)
    r.h_sweep_seeds
    (match r.h_sweep_failed with
    | [] -> ""
    | l ->
        "  FAILED: "
        ^ String.concat "," (List.map string_of_int l))

(* the CI socket-chaos artifact: gate verdicts plus the per-variant
   rows and the durable run's reply digest *)
let chaos_json (r : chaos_report) =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Buffer.add_string b
    (Printf.sprintf
       "  \"title\": %S,\n  \"ok\": %b,\n  \"replay_equal\": %b,\n  \
        \"parity_equal\": %b,\n  \"digest\": %S,\n  \"sweep_seeds\": %d,\n  \
        \"sweep_failed\": [%s],\n"
       r.h_title (chaos_ok r) r.h_replay_equal r.h_parity_equal r.h_digest
       r.h_sweep_seeds
       (String.concat ", " (List.map string_of_int r.h_sweep_failed)));
  Buffer.add_string b "  \"rows\": [\n";
  List.iteri
    (fun i row ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b
        (Printf.sprintf
           "    {\"variant\": %S, \"checksum\": %d, \"failed\": %d, \
            \"executions\": %d, \"crashes\": %d, \"restarts\": %d, \
            \"arq_retries\": %d, \"dup_drops\": %d, \"stale_drops\": %d, \
            \"ok\": %b}"
           row.c_variant row.c_checksum row.c_failed row.c_executions
           row.c_stats.Metrics.crashes row.c_stats.Metrics.restarts
           row.c_stats.Metrics.retries row.c_stats.Metrics.dup_drops
           row.c_stats.Metrics.stale_drops row.c_ok))
    r.h_rows;
  Buffer.add_string b "\n  ]\n}\n";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* tier comparison: generic vs AOT vs adaptive                         *)
(* ------------------------------------------------------------------ *)

type tier_window = { w_calls : int; w_bytes : int; w_msgs : int }

type tier_row = {
  t_variant : string;
  t_stats : Metrics.snapshot;
  t_digest : string;
  t_windows : tier_window list;
}

type tier_report = {
  t_title : string;
  t_rows : tier_row list;
  t_equal : bool;
  t_converged : bool;
}

let tier_meta =
  lazy
    (Rmi_serial.Class_meta.make
       [ ("Pair", [ ("a", Jir.Types.Tint); ("b", Jir.Types.Tint) ]) ])

let m_swap = 1
let tier_site = 1

(* the compiled plan an AOT run would install for the swap site: both
   the argument and the return are a statically-known Pair *)
let tier_plan =
  let pair = Plan.S_obj { cls = 0; fields = [| Plan.S_int; Plan.S_int |] } in
  {
    Plan.callsite = tier_site;
    defs = [||];
    args = [| pair |];
    ret = Some pair;
    cycle_args = false;
    cycle_ret = false;
    reuse_args = [| false |];
    reuse_ret = false;
    non_escaping = false;
    version = 1;
    polluted = false;
  }

let tier_pair a b =
  let p = Value.new_obj ~cls:0 ~nfields:2 in
  p.Value.fields.(0) <- Value.Int a;
  p.Value.fields.(1) <- Value.Int b;
  Value.Obj p

(* structural rendering for the reply digest: [Value.pp] prints global
   allocation ids, which differ between variants even for equal values *)
let rec tier_render buf v =
  match v with
  | Value.Null -> Buffer.add_string buf "null"
  | Value.Bool b -> Buffer.add_string buf (string_of_bool b)
  | Value.Int i -> Buffer.add_string buf (string_of_int i)
  | Value.Double f -> Buffer.add_string buf (string_of_float f)
  | Value.Str s -> Buffer.add_string buf s
  | Value.Obj o ->
      Buffer.add_string buf (Printf.sprintf "obj(%d){" o.Value.cls);
      Array.iter
        (fun f ->
          tier_render buf f;
          Buffer.add_char buf ';')
        o.Value.fields;
      Buffer.add_char buf '}'
  | Value.Darr a ->
      Buffer.add_string buf "d[";
      Array.iter (fun x -> Buffer.add_string buf (string_of_float x ^ ";")) a.Value.d;
      Buffer.add_char buf ']'
  | Value.Iarr a ->
      Buffer.add_string buf "i[";
      Array.iter (fun x -> Buffer.add_string buf (string_of_int x ^ ";")) a.Value.ia;
      Buffer.add_char buf ']'
  | Value.Rarr a ->
      Buffer.add_string buf "r[";
      Array.iter
        (fun x ->
          tier_render buf x;
          Buffer.add_char buf ';')
        a.Value.ra;
      Buffer.add_char buf ']'

(* [calls] swap RMIs from machine 0 to machine 1, snapshotting the wire
   counters every [window] calls: the per-window byte deltas are the
   warmup curve.  Replies are folded into an order-sensitive digest so
   the three variants can be compared byte for byte. *)
let run_tier_variant ~config ~calls ~window =
  let metrics = Metrics.create () in
  let plans = Hashtbl.create 4 in
  Hashtbl.replace plans tier_site tier_plan;
  let fabric =
    Fabric.create ~mode:Fabric.Sync ~n:2 ~meta:(Lazy.force tier_meta) ~config
      ~plans ~metrics ()
  in
  Node.export (Fabric.node fabric 1) ~obj:0 ~meth:m_swap ~has_ret:true
    (fun args ->
      match args.(0) with
      | Value.Obj o ->
          let a = o.Value.fields.(0) and b = o.Value.fields.(1) in
          let r = Value.new_obj ~cls:0 ~nfields:2 in
          r.Value.fields.(0) <- b;
          r.Value.fields.(1) <- a;
          Some (Value.Obj r)
      | _ -> failwith "bad pair");
  let caller = Fabric.node fabric 0 in
  let dest = Remote_ref.make ~machine:1 ~obj:0 in
  let buf = Buffer.create 256 in
  let windows = ref [] in
  let last_bytes = ref 0 and last_msgs = ref 0 in
  Fabric.run fabric (fun _ ->
      for i = 1 to calls do
        (match
           Node.call caller ~dest ~meth:m_swap ~callsite:tier_site
             ~has_ret:true
             [| tier_pair i (i * 3) |]
         with
        | Some v ->
            tier_render buf v;
            Buffer.add_char buf ';'
        | None -> Buffer.add_string buf "none;");
        if i mod window = 0 || i = calls then begin
          let s = Metrics.snapshot metrics in
          windows :=
            {
              w_calls = (if i mod window = 0 then window else i mod window);
              w_bytes = s.Metrics.bytes_sent - !last_bytes;
              w_msgs = s.Metrics.msgs_sent - !last_msgs;
            }
            :: !windows;
          last_bytes := s.Metrics.bytes_sent;
          last_msgs := s.Metrics.msgs_sent
        end
      done);
  {
    t_variant = config.Config.name;
    t_stats = Metrics.snapshot metrics;
    t_digest = Digest.to_hex (Digest.string (Buffer.contents buf));
    t_windows = List.rev !windows;
  }

let tiers_compare ?(calls = 64) ?(window = 8) ?hot_threshold () =
  let hot =
    match hot_threshold with
    | Some h -> h
    | None -> Config.default_hot_threshold
  in
  let generic = { Config.class_ with Config.name = "generic" } in
  let aot = { Config.site_reuse_cycle with Config.name = "aot" } in
  let adaptive =
    {
      (Config.with_adaptive ~hot_threshold:hot Config.site_reuse_cycle) with
      Config.name = "adaptive";
    }
  in
  let rows =
    List.map
      (fun config -> run_tier_variant ~config ~calls ~window)
      [ generic; aot; adaptive ]
  in
  let t_equal =
    match rows with
    | first :: rest ->
        List.for_all (fun r -> String.equal r.t_digest first.t_digest) rest
    | [] -> true
  in
  (* post-warmup the adaptive tier must spend exactly the AOT bytes per
     window (same plan, same wire encoding) *)
  let t_converged =
    match rows with
    | [ _; aot_row; ad_row ] -> (
        match (List.rev aot_row.t_windows, List.rev ad_row.t_windows) with
        | aw :: _, dw :: _ ->
            aw.w_bytes = dw.w_bytes
            && aw.w_msgs = dw.w_msgs
            && ad_row.t_stats.Metrics.tier_promotions > 0
        | _ -> false)
    | _ -> false
  in
  {
    t_title =
      Printf.sprintf
        "tiers: %d swap calls, warmup window %d, hot threshold %d" calls
        window hot;
    t_rows = rows;
    t_equal;
    t_converged;
  }

let render_tiers (r : tier_report) =
  let headers =
    [
      "variant"; "bytes"; "msgs"; "promoted"; "deopts"; "cache h/m";
      "digest";
    ]
  in
  let rows =
    List.map
      (fun row ->
        [
          row.t_variant;
          string_of_int row.t_stats.Metrics.bytes_sent;
          string_of_int row.t_stats.Metrics.msgs_sent;
          string_of_int row.t_stats.Metrics.tier_promotions;
          string_of_int row.t_stats.Metrics.tier_deopts;
          Printf.sprintf "%d/%d" row.t_stats.Metrics.plan_cache_hits
            row.t_stats.Metrics.plan_cache_misses;
          String.sub row.t_digest 0 12;
        ])
      r.t_rows
  in
  let curve =
    let windows_of v =
      match List.find_opt (fun row -> String.equal row.t_variant v) r.t_rows with
      | Some row -> row.t_windows
      | None -> []
    in
    let gw = windows_of "generic"
    and aw = windows_of "aot"
    and dw = windows_of "adaptive" in
    let n = List.length dw in
    let cell ws i =
      match List.nth_opt ws i with
      | Some w when w.w_calls > 0 ->
          Printf.sprintf "%.1f" (float_of_int w.w_bytes /. float_of_int w.w_calls)
      | _ -> "-"
    in
    Rmi_stats.Ascii_table.render
      ~headers:[ "window"; "generic B/call"; "aot B/call"; "adaptive B/call" ]
      (List.init n (fun i ->
           [ string_of_int (i + 1); cell gw i; cell aw i; cell dw i ]))
  in
  Printf.sprintf
    "%s\n%s\nwarmup curve (wire bytes per call, per window):\n%s\nreplies byte-identical: %s\nadaptive converged to aot: %s"
    r.t_title
    (Rmi_stats.Ascii_table.render ~headers rows)
    curve
    (if r.t_equal then "yes" else "NO")
    (if r.t_converged then "yes" else "NO")

(* ------------------------------------------------------------------ *)
(* wirecost: legacy copy-based framing vs the zero-copy wire path      *)
(* ------------------------------------------------------------------ *)

type wire_run = {
  u_digest : string;
  u_checksum : float;
  u_copied_per_call : float;
  u_minor_per_call : float;
  u_pool_hits : int;
  u_pool_misses : int;
  u_us_per_call : float;
}

type wire_row = {
  wr_workload : string;
  wr_variant : string;
  wr_legacy : wire_run;
  wr_zc : wire_run;
  wr_gated : bool;
}

type wire_report = {
  u_title : string;
  u_rows : wire_row list;
  u_frames_ok : bool;
  u_results_ok : bool;
  u_gate_ok : bool;
}

let wire_reduction r =
  if r.wr_legacy.u_copied_per_call <= 0.0 then 0.0
  else
    100.0
    *. (r.wr_legacy.u_copied_per_call -. r.wr_zc.u_copied_per_call)
    /. r.wr_legacy.u_copied_per_call

(* the paper-table message shapes: Table 1's linked chain and Table 2's
   2D double matrix, sent through the generic serializer so the
   comparison isolates the wire path from plan specialization *)
let wire_meta =
  lazy
    (Rmi_serial.Class_meta.make
       [ ("Cell", [ ("v", Jir.Types.Tint); ("next", Jir.Types.Tobject 0) ]) ])

let wire_chain n =
  let rec go acc k =
    if k = 0 then acc
    else begin
      let c = Value.new_obj ~cls:0 ~nfields:2 in
      c.Value.fields.(0) <- Value.Int k;
      c.Value.fields.(1) <- acc;
      go (Value.Obj c) (k - 1)
    end
  in
  go Value.Null n

let rec wire_chain_sum = function
  | Value.Null -> 0
  | Value.Obj o ->
      (match o.Value.fields.(0) with Value.Int v -> v | _ -> 0)
      + wire_chain_sum o.Value.fields.(1)
  | _ -> 0

let wire_matrix n =
  let outer = Value.new_rarr (Jir.Types.Tarray Jir.Types.Tdouble) n in
  for i = 0 to n - 1 do
    let inner = Value.new_darr n in
    for j = 0 to n - 1 do
      inner.Value.d.(j) <- float_of_int ((i * n) + j)
    done;
    outer.Value.ra.(i) <- Value.Darr inner
  done;
  Value.Rarr outer

let wire_matrix_sum = function
  | Value.Rarr outer ->
      Array.fold_left
        (fun acc row ->
          match row with
          | Value.Darr inner -> acc +. Array.fold_left ( +. ) 0.0 inner.Value.d
          | _ -> acc)
        0.0 outer.Value.ra
  | _ -> 0.0

type wire_workload = {
  ww_name : string;
  ww_arg : Value.t lazy_t;
  ww_fold : Value.t option -> float;
  ww_handler : Value.t array -> Value.t option;
}

let wire_workloads =
  [
    {
      ww_name = "chain100";
      ww_arg = lazy (wire_chain 100);
      ww_fold = (function Some (Value.Int v) -> float_of_int v | _ -> nan);
      ww_handler =
        (fun args -> Some (Value.Int (wire_chain_sum args.(0))));
    };
    {
      ww_name = "matrix16x16";
      ww_arg = lazy (wire_matrix 16);
      ww_fold = (function Some (Value.Double v) -> v | _ -> nan);
      ww_handler = (fun args -> Some (Value.Double (wire_matrix_sum args.(0))));
    };
  ]

let m_wire = 1
let wire_site = 1

(* one framing mode of one variant: run [calls] RMIs, digest every
   physical frame leaving the transmit path (the hook runs before the
   fault-simulator stage, so legacy and zero-copy runs see the same
   deterministic pre-fault frame stream) and report the per-call copy,
   allocation and pool telemetry *)
let run_wire_run ~config ?faults ~window ~calls (ww : wire_workload) =
  let metrics = Metrics.create () in
  let sim =
    Option.map
      (fun (seed, profile) -> Fault_sim.create ~seed ~n:2 profile)
      faults
  in
  let fabric =
    Fabric.create ~mode:Fabric.Sync ?faults:sim ~n:2
      ~meta:(Lazy.force wire_meta) ~config ~plans:(Hashtbl.create 4) ~metrics
      ()
  in
  let digest = ref "" in
  Rmi_net.Transport.set_fault_hook (Fabric.net fabric)
    (fun ~src:_ ~dest:_ frame ->
      digest := Digest.string (!digest ^ Digest.bytes frame);
      [ frame ]);
  Node.export (Fabric.node fabric 1) ~obj:0 ~meth:m_wire ~has_ret:true
    ww.ww_handler;
  let caller = Fabric.node fabric 0 in
  let dest = Remote_ref.make ~machine:1 ~obj:0 in
  let arg = Lazy.force ww.ww_arg in
  let checksum = ref 0.0 in
  let minor0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  Fabric.run fabric (fun _ ->
      let i = ref 0 in
      while !i < calls do
        let k = min window (calls - !i) in
        let futures =
          List.init k (fun _ ->
              Node.call_async caller ~dest ~meth:m_wire ~callsite:wire_site
                ~has_ret:true [| arg |])
        in
        List.iter
          (fun f -> checksum := !checksum +. ww.ww_fold (Node.Future.await f))
          futures;
        i := !i + k
      done);
  let wall = Unix.gettimeofday () -. t0 in
  let minor = Gc.minor_words () -. minor0 in
  let s = Metrics.snapshot metrics in
  let per c = float_of_int c /. float_of_int calls in
  {
    u_digest =
      (if String.length !digest = 0 then "-" else Digest.to_hex !digest);
    u_checksum = !checksum;
    u_copied_per_call = per s.Metrics.bytes_copied;
    u_minor_per_call = minor /. float_of_int calls;
    u_pool_hits = s.Metrics.pool_hits;
    u_pool_misses = s.Metrics.pool_misses;
    u_us_per_call = wall *. 1e6 /. float_of_int calls;
  }

(* every paper-table message shape x every transport variant, each run
   under both framing modes.  The report's three verdicts are the
   [wirecost] gate: byte-identical frame streams, byte-identical
   results, and — on the enveloped variants, where the legacy path
   snapshots the payload several times per frame — at least a 50% cut
   in copied bytes per call *)
let wirecost_compare ?(calls = 48) ?(window = 8) ?(seed = 42) () =
  let base = Config.class_ in
  let variants =
    [
      ("raw", base, None, 1, false);
      ("reliable", Config.with_reliable base, None, 1, true);
      ( "reliable+batch",
        Config.with_batching (Config.with_reliable base),
        None, window, true );
      ( "reliable+faults",
        Config.with_reliable base,
        Some (seed, Fault_sim.default_lossy),
        1, true );
    ]
  in
  let rows =
    List.concat_map
      (fun ww ->
        List.map
          (fun (vname, config, faults, win, gated) ->
            let legacy =
              run_wire_run ~config:(Config.legacy_copy config) ?faults
                ~window:win ~calls ww
            in
            let zc =
              run_wire_run ~config:(Config.with_zero_copy true config) ?faults
                ~window:win ~calls ww
            in
            {
              wr_workload = ww.ww_name;
              wr_variant = vname;
              wr_legacy = legacy;
              wr_zc = zc;
              wr_gated = gated;
            })
          variants)
      wire_workloads
  in
  {
    u_title =
      Printf.sprintf
        "wirecost: legacy copy framing vs zero-copy, %d calls, batch window \
         %d, fault seed %d"
        calls window seed;
    u_rows = rows;
    u_frames_ok =
      List.for_all
        (fun r -> String.equal r.wr_legacy.u_digest r.wr_zc.u_digest)
        rows;
    u_results_ok =
      List.for_all
        (fun r -> Float.equal r.wr_legacy.u_checksum r.wr_zc.u_checksum)
        rows;
    u_gate_ok =
      List.for_all (fun r -> (not r.wr_gated) || wire_reduction r >= 50.0) rows;
  }

let render_wirecost (r : wire_report) =
  let headers =
    [
      "workload"; "variant"; "copied B/call old"; "zc"; "cut";
      "minor w/call old"; "zc"; "zc pool h/m"; "us/call old"; "zc"; "frames";
    ]
  in
  let rows =
    List.map
      (fun row ->
        let cut = wire_reduction row in
        let gate_note =
          if row.wr_gated && cut < 50.0 then "  BELOW GATE" else ""
        in
        [
          row.wr_workload;
          row.wr_variant;
          Printf.sprintf "%.1f" row.wr_legacy.u_copied_per_call;
          Printf.sprintf "%.1f" row.wr_zc.u_copied_per_call;
          Printf.sprintf "%.1f%%%s" cut gate_note;
          Printf.sprintf "%.0f" row.wr_legacy.u_minor_per_call;
          Printf.sprintf "%.0f" row.wr_zc.u_minor_per_call;
          Printf.sprintf "%d/%d" row.wr_zc.u_pool_hits row.wr_zc.u_pool_misses;
          Printf.sprintf "%.1f" row.wr_legacy.u_us_per_call;
          Printf.sprintf "%.1f" row.wr_zc.u_us_per_call;
          (if String.equal row.wr_legacy.u_digest row.wr_zc.u_digest then
             "identical"
           else "MISMATCH");
        ])
      r.u_rows
  in
  Printf.sprintf
    "%s\n%s\nframe streams byte-identical: %s\nresults identical: %s\n>=50%% \
     fewer copied bytes per call (enveloped variants): %s"
    r.u_title
    (Rmi_stats.Ascii_table.render ~headers rows)
    (if r.u_frames_ok then "yes" else "NO")
    (if r.u_results_ok then "yes" else "NO")
    (if r.u_gate_ok then "yes" else "NO")

(* ------------------------------------------------------------------ *)
(* alloc: GC-heap decoding vs arena decoding (PR 10)                   *)
(* ------------------------------------------------------------------ *)

type alloc_run = {
  al_digest : string;
  al_checksum : float;
  al_minor_per_call : float;
  al_arena_allocs : int;
  al_arena_resets : int;
  al_arena_fallbacks : int;
}

type alloc_row = {
  al_workload : string;
  al_variant : string;
  al_heap : alloc_run;
  al_arena : alloc_run;
  al_gated : bool;
  al_arena_active : bool;
}

type alloc_report = {
  al_title : string;
  al_rows : alloc_row list;
  al_frames_ok : bool;
  al_results_ok : bool;
  al_gate_ok : bool;
  al_arena_ok : bool;
}

(* The checked-in BENCH_wire.json baseline for the gated row — minor
   words per call of matrix16x16 over the reliable transport under
   site+reuse+cycle, measured before this PR's allocation work.  The
   [alloc] gate requires at least a 50% cut against it. *)
let alloc_baseline_minor = 14_457.4

(* Site-specialized plans for the two paper-table message shapes.  Both
   carry the escape analysis verdict ([reuse_args] all true, hence
   [non_escaping]): the handlers fold their argument and return a
   scalar, so nothing outlives the dispatch. *)
let alloc_chain_plan =
  {
    Plan.callsite = wire_site;
    defs = [| Plan.S_obj { cls = 0; fields = [| Plan.S_int; Plan.S_ref 0 |] } |];
    args = [| Plan.S_ref 0 |];
    ret = Some Plan.S_int;
    cycle_args = false;
    cycle_ret = false;
    reuse_args = [| true |];
    reuse_ret = false;
    non_escaping = true;
    version = 1;
    polluted = false;
  }

let alloc_matrix_plan =
  {
    Plan.callsite = wire_site;
    defs = [||];
    args = [| Plan.S_flat_array { felem = Plan.F_darr } |];
    ret = Some Plan.S_double;
    cycle_args = false;
    cycle_ret = false;
    reuse_args = [| true |];
    reuse_ret = false;
    non_escaping = true;
    version = 1;
    polluted = false;
  }

let alloc_workloads =
  match wire_workloads with
  | [ chain; matrix ] -> [ (chain, alloc_chain_plan); (matrix, alloc_matrix_plan) ]
  | _ -> assert false

(* one allocator mode of one variant: [calls] specialized RMIs after a
   warmup quarter, digesting every pre-fault frame; minor words are
   measured over the post-warmup phase only, so one-time plan/context
   setup is excluded — the same discipline as the bench harness *)
let run_alloc_run ~config ?faults ~window ~calls (ww : wire_workload) plan =
  let metrics = Metrics.create () in
  let plans = Hashtbl.create 4 in
  Hashtbl.replace plans wire_site plan;
  let sim =
    Option.map
      (fun (seed, profile) -> Fault_sim.create ~seed ~n:2 profile)
      faults
  in
  let fabric =
    Fabric.create ~mode:Fabric.Sync ?faults:sim ~n:2
      ~meta:(Lazy.force wire_meta) ~config ~plans ~metrics ()
  in
  let digest = ref "" in
  Rmi_net.Transport.set_fault_hook (Fabric.net fabric)
    (fun ~src:_ ~dest:_ frame ->
      digest := Digest.string (!digest ^ Digest.bytes frame);
      [ frame ]);
  Node.export (Fabric.node fabric 1) ~obj:0 ~meth:m_wire ~has_ret:true
    ww.ww_handler;
  let caller = Fabric.node fabric 0 in
  let dest = Remote_ref.make ~machine:1 ~obj:0 in
  let arg = Lazy.force ww.ww_arg in
  let checksum = ref 0.0 in
  let minor = ref 0.0 in
  let warmup = max window (calls / 4) in
  Fabric.run fabric (fun _ ->
      let batch k =
        let futures =
          List.init k (fun _ ->
              Node.call_async caller ~dest ~meth:m_wire ~callsite:wire_site
                ~has_ret:true [| arg |])
        in
        List.iter
          (fun f -> checksum := !checksum +. ww.ww_fold (Node.Future.await f))
          futures
      in
      let run n =
        let i = ref 0 in
        while !i < n do
          let k = min window (n - !i) in
          batch k;
          i := !i + k
        done
      in
      run warmup;
      checksum := 0.0;
      let minor0 = Gc.minor_words () in
      run calls;
      minor := Gc.minor_words () -. minor0);
  let s = Metrics.snapshot metrics in
  {
    al_digest =
      (if String.length !digest = 0 then "-" else Digest.to_hex !digest);
    al_checksum = !checksum;
    al_minor_per_call = !minor /. float_of_int calls;
    al_arena_allocs = s.Metrics.arena_allocs;
    al_arena_resets = s.Metrics.arena_resets;
    al_arena_fallbacks = s.Metrics.arena_fallbacks;
  }

(* Every paper-table message shape x three transport/optimization
   variants, each run under both allocator modes.  The verdicts are the
   [alloc] gate: byte-identical frame streams and results between the
   GC-heap and arena runs; at least a 50% cut in minor words per call
   on the gated row against the checked-in pre-PR baseline; and, on the
   no-reuse rows where the arena is licensed to engage, the arena
   actually recycling (allocs counted, wholesale resets happening,
   steady state off the GC heap). *)
let alloc_compare ?(calls = 192) ?(window = 8) ?(seed = 42) () =
  let site = Config.site in
  let variants =
    [
      ("raw site", site, None, false, true);
      ("reliable site", Config.with_reliable site, None, false, true);
      ( "reliable site+faults",
        Config.with_reliable site,
        Some (seed, Fault_sim.default_lossy),
        false, true );
      ( "reliable site+reuse+cycle",
        Config.with_reliable Config.site_reuse_cycle,
        None, true, false );
    ]
  in
  let rows =
    List.concat_map
      (fun (ww, plan) ->
        List.map
          (fun (vname, config, faults, gated, arena_active) ->
            let heap =
              run_alloc_run ~config:(Config.legacy_heap config) ?faults ~window
                ~calls ww plan
            in
            let arena =
              run_alloc_run ~config:(Config.with_arena true config) ?faults
                ~window ~calls ww plan
            in
            {
              al_workload = ww.ww_name;
              al_variant = vname;
              al_heap = heap;
              al_arena = arena;
              al_gated = gated && String.equal ww.ww_name "matrix16x16";
              al_arena_active = arena_active;
            })
          variants)
      alloc_workloads
  in
  {
    al_title =
      Printf.sprintf
        "alloc: GC-heap decoding vs arena decoding, %d calls per row, window \
         %d, fault seed %d (baseline %.1f minor w/call)"
        calls window seed alloc_baseline_minor;
    al_rows = rows;
    al_frames_ok =
      List.for_all
        (fun r -> String.equal r.al_heap.al_digest r.al_arena.al_digest)
        rows;
    al_results_ok =
      List.for_all
        (fun r -> Float.equal r.al_heap.al_checksum r.al_arena.al_checksum)
        rows;
    al_gate_ok =
      List.for_all
        (fun r ->
          (not r.al_gated)
          || r.al_arena.al_minor_per_call <= 0.5 *. alloc_baseline_minor)
        rows;
    al_arena_ok =
      List.for_all
        (fun r ->
          (not r.al_arena_active)
          || r.al_arena.al_arena_allocs > 0
             && r.al_arena.al_arena_resets > 0
             && r.al_arena.al_arena_fallbacks * 10
                <= r.al_arena.al_arena_allocs
             && r.al_arena.al_minor_per_call < r.al_heap.al_minor_per_call)
        rows;
  }

let render_alloc (r : alloc_report) =
  let headers =
    [
      "workload"; "variant"; "minor w/call heap"; "arena"; "cut";
      "arena allocs"; "resets"; "fallbacks"; "frames";
    ]
  in
  let rows =
    List.map
      (fun row ->
        let cut =
          if row.al_heap.al_minor_per_call <= 0.0 then 0.0
          else
            100.0
            *. (row.al_heap.al_minor_per_call
               -. row.al_arena.al_minor_per_call)
            /. row.al_heap.al_minor_per_call
        in
        [
          row.al_workload;
          row.al_variant;
          Printf.sprintf "%.1f" row.al_heap.al_minor_per_call;
          Printf.sprintf "%.1f" row.al_arena.al_minor_per_call;
          Printf.sprintf "%.1f%%%s" cut
            (if row.al_gated then "  (gate row)" else "");
          string_of_int row.al_arena.al_arena_allocs;
          string_of_int row.al_arena.al_arena_resets;
          string_of_int row.al_arena.al_arena_fallbacks;
          (if String.equal row.al_heap.al_digest row.al_arena.al_digest then
             "identical"
           else "MISMATCH");
        ])
      r.al_rows
  in
  Printf.sprintf
    "%s\n%s\nframe streams byte-identical: %s\nresults identical: %s\ngate \
     row <= 50%% of %.1f minor w/call baseline: %s\narena engaged on \
     no-reuse rows: %s"
    r.al_title
    (Rmi_stats.Ascii_table.render ~headers rows)
    (if r.al_frames_ok then "yes" else "NO")
    (if r.al_results_ok then "yes" else "NO")
    alloc_baseline_minor
    (if r.al_gate_ok then "yes" else "NO")
    (if r.al_arena_ok then "yes" else "NO")

let alloc_json (r : alloc_report) =
  let b = Buffer.create 2048 in
  Buffer.add_string b "{\n";
  Buffer.add_string b (Printf.sprintf "  \"title\": %S,\n" r.al_title);
  Buffer.add_string b
    (Printf.sprintf
       "  \"baseline_minor_words_per_call\": %.1f,\n  \"frames_ok\": %b,\n  \
        \"results_ok\": %b,\n  \"gate_ok\": %b,\n  \"arena_ok\": %b,\n"
       alloc_baseline_minor r.al_frames_ok r.al_results_ok r.al_gate_ok
       r.al_arena_ok);
  Buffer.add_string b "  \"rows\": [\n";
  let first = ref true in
  List.iter
    (fun row ->
      if not !first then Buffer.add_string b ",\n";
      first := false;
      Buffer.add_string b
        (Printf.sprintf
           "    {\"workload\": %S, \"variant\": %S, \
            \"minor_words_per_call_heap\": %.1f, \
            \"minor_words_per_call_arena\": %.1f, \"arena_allocs\": %d, \
            \"arena_resets\": %d, \"arena_fallbacks\": %d, \"gated\": %b, \
            \"digest\": %S}"
           row.al_workload row.al_variant row.al_heap.al_minor_per_call
           row.al_arena.al_minor_per_call row.al_arena.al_arena_allocs
           row.al_arena.al_arena_resets row.al_arena.al_arena_fallbacks
           row.al_gated row.al_arena.al_digest))
    r.al_rows;
  Buffer.add_string b "\n  ]\n}\n";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* rendering                                                           *)
(* ------------------------------------------------------------------ *)

let f2 v = Printf.sprintf "%.2f" v
let f1pct v = Printf.sprintf "%.1f%%" v

let render_timing t =
  let headers =
    [
      "Compiler Optimization"; "paper " ^ t.unit_label; "paper gain";
      "model s"; "model gain"; "wall " ^ t.unit_label; "wall gain";
    ]
  in
  let rows =
    List.map
      (fun r ->
        let name = r.config.Config.name in
        let paper_v =
          match Paper_data.seconds_for t.paper name with
          | Some v -> f2 v
          | None -> "-"
        in
        let paper_g =
          match Paper_data.gain_over_class t.paper name with
          | Some g -> f1pct g
          | None -> "-"
        in
        [
          name; paper_v; paper_g;
          Printf.sprintf "%.4f" r.modeled_seconds;
          f1pct (modeled_gain t r);
          Printf.sprintf "%.4f" (t.per_unit r.wall_seconds);
          f1pct (wall_gain t r);
        ])
      t.rows
  in
  t.title ^ "\n" ^ Rmi_stats.Ascii_table.render ~headers rows

let stats_table ~id ~title (t : timing_table) (paper : Paper_data.stats_row list) =
  let headers =
    [
      "Optimization"; "reused objs"; "(paper)"; "local rpcs"; "(paper)";
      "remote rpcs"; "(paper)"; "new MBytes"; "(paper)"; "cycle lookups";
      "(paper)"; "ser calls";
    ]
  in
  let rows =
    List.map
      (fun r ->
        let name = r.config.Config.name in
        let p =
          List.find_opt (fun (pr : Paper_data.stats_row) -> pr.cfg = name) paper
        in
        let pi f = match p with Some p -> string_of_int (f p) | None -> "-" in
        let pf f = match p with Some p -> f2 (f p) | None -> "-" in
        [
          name;
          string_of_int r.stats.Metrics.reused_objs;
          pi (fun p -> p.Paper_data.reused_objs);
          string_of_int r.stats.Metrics.local_rpcs;
          pi (fun p -> p.Paper_data.local_rpcs);
          string_of_int r.stats.Metrics.remote_rpcs;
          pi (fun p -> p.Paper_data.remote_rpcs);
          f2 (float_of_int r.stats.Metrics.new_bytes /. 1048576.0);
          pf (fun p -> p.Paper_data.new_mbytes);
          string_of_int r.stats.Metrics.cycle_lookups;
          pi (fun p -> p.Paper_data.cycle_lookups);
          (* the paper reports the serializer-invocation reduction in
             prose ("a notable reduction ... due to method inlining") *)
          string_of_int r.stats.Metrics.ser_invocations;
        ])
      t.rows
  in
  ignore id;
  title ^ "\n" ^ Rmi_stats.Ascii_table.render ~headers rows

let shape_summary t =
  let checks = ref [] in
  let note ok what =
    checks := (Printf.sprintf "  [%s] %s" (if ok then "ok" else "MISMATCH") what) :: !checks
  in
  let by name = List.find_opt (fun r -> r.config.Config.name = name) t.rows in
  (match (by "class", by "site") with
  | Some c, Some s ->
      note (s.modeled_seconds < c.modeled_seconds) "site beats class (modeled)"
  | _ -> ());
  (match (by "site", by "site + reuse + cycle") with
  | Some s, Some f ->
      note
        (f.modeled_seconds <= s.modeled_seconds)
        "all optimizations beat site alone (modeled)"
  | _ -> ());
  (* does the measured winner match the paper's winner? *)
  let winner rows value =
    List.fold_left
      (fun acc r -> match acc with
        | None -> Some r
        | Some best -> if value r < value best then Some r else acc)
      None rows
  in
  (match
     ( winner t.rows (fun r -> r.modeled_seconds),
       List.fold_left
         (fun acc (name, v) ->
           match acc with
           | None -> Some (name, v)
           | Some (_, best) -> if v < best then Some (name, v) else acc)
         None t.paper )
   with
  | Some r, Some (pname, _) ->
      note
        (String.equal r.config.Config.name pname
        ||
        (* ties in the paper: reuse rows equal within noise *)
        match Paper_data.seconds_for t.paper r.config.Config.name with
        | Some v ->
            Float.abs
              (v -. (match Paper_data.seconds_for t.paper pname with Some b -> b | None -> v))
            /. v
            < 0.02
        | None -> false)
        (Printf.sprintf "winner matches paper (%s)" pname)
  | _ -> ());
  String.concat "\n" (List.rev !checks)

(* ------------------------------------------------------------------ *)
(* load: multi-domain dispatch throughput and tail latency (PR 6)      *)
(* ------------------------------------------------------------------ *)

type load_run = {
  l_domains : int;
  l_throughput : float;  (* completed calls per second *)
  l_p50_us : float;
  l_p99_us : float;
  l_p999_us : float;
  l_digest : string;  (* structural reply digest, issue order *)
  l_dispatches : int;
  l_steals : int;
  l_rejects : int;
  l_queue_hwm : int;
}

type load_row = {
  lr_workload : string;
  lr_variant : string;
  lr_runs : load_run list;  (* ascending domain count *)
}

type load_report = {
  l_title : string;
  l_rows : load_row list;
  l_servers : int;
  l_calls : int;
  l_hi_domains : int;
  l_digest_ok : bool;
  l_speedup : float;  (* matrix16x16/reliable: hi-domain vs 1-domain *)
  l_speedup_floor : float;
  l_tail_ratio : float;  (* p999 hi-domain / p999 1-domain *)
  l_tail_tol : float;
  l_cores_ok : bool;  (* host can actually run hi_domains + client *)
  l_gate_ok : bool;
}

(* One cluster under load: one client (machine 0) drives [calls]
   pipelined RMIs round-robin across [servers] served machines, every
   reply folded into the structural digest in ISSUE order — so the
   digest is independent of how the dispatch pool interleaved execution
   and comparable across domain counts.  The handler re-folds its
   argument [spin] times to give the servers a CPU-bound body: without
   it the single client domain is the bottleneck and no worker count
   could change throughput. *)
let run_load_run ~config ?faults ~servers ~calls ~window ~spin
    (ww : wire_workload) =
  let metrics = Metrics.create () in
  let n = servers + 1 in
  let sim =
    Option.map
      (fun (seed, profile) -> Fault_sim.create ~seed ~n profile)
      faults
  in
  let fabric =
    Fabric.create ~mode:Fabric.Parallel ?faults:sim ~n
      ~meta:(Lazy.force wire_meta) ~config ~plans:(Hashtbl.create 4) ~metrics
      ()
  in
  for s = 1 to servers do
    Node.export (Fabric.node fabric s) ~obj:0 ~meth:m_wire ~has_ret:true
      (fun args ->
        let r = ref (ww.ww_handler args) in
        for _ = 2 to spin do
          r := ww.ww_handler args
        done;
        !r)
  done;
  let caller = Fabric.node fabric 0 in
  let arg = Lazy.force ww.ww_arg in
  let buf = Buffer.create 4096 in
  let wall = ref 0.0 in
  Fabric.run fabric (fun _ ->
      let t0 = Unix.gettimeofday () in
      let i = ref 0 in
      while !i < calls do
        let k = min window (calls - !i) in
        let futures =
          List.init k (fun j ->
              let dest =
                Remote_ref.make ~machine:(1 + ((!i + j) mod servers)) ~obj:0
              in
              Node.call_async caller ~dest ~meth:m_wire ~callsite:wire_site
                ~has_ret:true [| arg |])
        in
        List.iter
          (fun f ->
            match Node.Future.await f with
            | Some v ->
                tier_render buf v;
                Buffer.add_char buf ';'
            | None -> Buffer.add_string buf "none;")
          futures;
        i := !i + k
      done;
      wall := Unix.gettimeofday () -. t0);
  let s = Metrics.snapshot metrics in
  let q p = Metrics.lat_quantile s.Metrics.lat_hist p /. 1e3 in
  {
    l_domains = config.Config.domains;
    l_throughput =
      (if !wall > 0.0 then float_of_int calls /. !wall else 0.0);
    l_p50_us = q 0.5;
    l_p99_us = q 0.99;
    l_p999_us = q 0.999;
    l_digest = Digest.to_hex (Digest.string (Buffer.contents buf));
    l_dispatches = s.Metrics.dispatches;
    l_steals = s.Metrics.steals;
    l_rejects = s.Metrics.queue_rejects;
    l_queue_hwm = s.Metrics.queue_depth_hwm;
  }

(* chain100/matrix16x16 x reliable/batched/faulty, each at one domain
   and at [domains] domains.  Verdicts:
   - digests byte-identical across domain counts on every row (always
     enforced — this is the correctness substitution argument);
   - on matrix16x16/reliable, hi-domain throughput >= [speedup_floor] x
     single-domain and p999 within [tail_tol] x — enforced only when
     the host has cores for client + [domains] workers
     ([Domain.recommended_domain_count]); on smaller hosts the numbers
     are reported but the perf verdict is recorded as skipped, since no
     scheduler can extract parallel speedup from one core. *)
let load_compare ?(calls = 600) ?(window = 32) ?(servers = 8)
    ?(domains = 4) ?queue_depth ?(spin = 24) ?(seed = 42)
    ?(speedup_floor = 2.0) ?(tail_tol = 8.0) () =
  if servers < 1 then invalid_arg "load_compare: servers < 1";
  if domains < 1 then invalid_arg "load_compare: domains < 1";
  (* overload is expected under a bounded queue: a breaker tripping on
     rejects mid-run would divert calls and fork the digest, so the
     load runs raise the threshold out of reach *)
  let failover =
    { Config.default_failover with Config.breaker_threshold = max_int / 2 }
  in
  let base = Config.with_failover failover Config.class_ in
  let variants =
    [
      ("reliable", Config.with_reliable base, None);
      ("reliable+batch", Config.with_batching (Config.with_reliable base), None);
      ( "reliable+faults",
        Config.with_reliable base,
        Some (seed, Fault_sim.default_lossy) );
    ]
  in
  let domain_counts = if domains = 1 then [ 1 ] else [ 1; domains ] in
  let rows =
    List.concat_map
      (fun ww ->
        List.map
          (fun (vname, config, faults) ->
            let runs =
              List.map
                (fun d ->
                  run_load_run
                    ~config:(Config.with_domains ?queue_depth d config)
                    ?faults ~servers ~calls ~window ~spin ww)
                domain_counts
            in
            { lr_workload = ww.ww_name; lr_variant = vname; lr_runs = runs })
          variants)
      wire_workloads
  in
  let l_digest_ok =
    List.for_all
      (fun row ->
        match row.lr_runs with
        | first :: rest ->
            List.for_all (fun r -> String.equal r.l_digest first.l_digest) rest
        | [] -> true)
      rows
  in
  let perf_row =
    List.find_opt
      (fun r ->
        String.equal r.lr_workload "matrix16x16"
        && String.equal r.lr_variant "reliable")
      rows
  in
  let speedup, tail_ratio =
    match perf_row with
    | Some { lr_runs = base :: rest; _ } when rest <> [] ->
        let hi = List.nth rest (List.length rest - 1) in
        ( (if base.l_throughput > 0.0 then hi.l_throughput /. base.l_throughput
           else 0.0),
          if base.l_p999_us > 0.0 then hi.l_p999_us /. base.l_p999_us else 0.0
        )
    | _ -> (0.0, 0.0)
  in
  let cores_ok =
    domains = 1 || Domain.recommended_domain_count () >= domains + 1
  in
  let perf_ok =
    domains = 1
    || (speedup >= speedup_floor && tail_ratio <= tail_tol)
  in
  {
    l_title =
      Printf.sprintf
        "load: %d calls, window %d, %d servers, domains 1 vs %d, spin %d, \
         fault seed %d"
        calls window servers domains spin seed;
    l_rows = rows;
    l_servers = servers;
    l_calls = calls;
    l_hi_domains = domains;
    l_digest_ok;
    l_speedup = speedup;
    l_speedup_floor = speedup_floor;
    l_tail_ratio = tail_ratio;
    l_tail_tol = tail_tol;
    l_cores_ok = cores_ok;
    l_gate_ok = l_digest_ok && ((not cores_ok) || perf_ok);
  }

let render_load (r : load_report) =
  let headers =
    [
      "workload"; "variant"; "domains"; "rps"; "p50 us"; "p99 us";
      "p999 us"; "dispatched"; "stolen"; "rejected"; "q hwm"; "digest";
    ]
  in
  let rows =
    List.concat_map
      (fun row ->
        List.map
          (fun run ->
            [
              row.lr_workload;
              row.lr_variant;
              string_of_int run.l_domains;
              Printf.sprintf "%.0f" run.l_throughput;
              Printf.sprintf "%.0f" run.l_p50_us;
              Printf.sprintf "%.0f" run.l_p99_us;
              Printf.sprintf "%.0f" run.l_p999_us;
              string_of_int run.l_dispatches;
              string_of_int run.l_steals;
              string_of_int run.l_rejects;
              string_of_int run.l_queue_hwm;
              String.sub run.l_digest 0 12;
            ])
          row.lr_runs)
      r.l_rows
  in
  let perf_note =
    if r.l_hi_domains = 1 then "skipped (single-domain run)"
    else if not r.l_cores_ok then
      Printf.sprintf
        "reported only; not enforced (host recommends %d domains, run needs \
         %d)"
        (Domain.recommended_domain_count ())
        (r.l_hi_domains + 1)
    else "enforced"
  in
  Printf.sprintf
    "%s\n%s\nreply digests identical across domain counts: %s\nmatrix16x16 \
     speedup at %d domains: %.2fx (floor %.1fx)\np999 ratio: %.2fx \
     (tolerance %.1fx)\nperf gate: %s\ngate: %s"
    r.l_title
    (Rmi_stats.Ascii_table.render ~headers rows)
    (if r.l_digest_ok then "yes" else "NO")
    r.l_hi_domains r.l_speedup r.l_speedup_floor r.l_tail_ratio r.l_tail_tol
    perf_note
    (if r.l_gate_ok then "PASS" else "FAIL")

(* BENCH_load.json: one object per (workload, variant, domains) run,
   wrapped with the gate verdicts — the artifact the CI load-smoke job
   checks in and validates *)
let load_json (r : load_report) =
  let b = Buffer.create 2048 in
  Buffer.add_string b "{\n";
  Buffer.add_string b
    (Printf.sprintf "  \"title\": %S,\n  \"servers\": %d,\n  \"calls\": %d,\n"
       r.l_title r.l_servers r.l_calls);
  Buffer.add_string b
    (Printf.sprintf
       "  \"digest_ok\": %b,\n  \"speedup\": %.3f,\n  \"speedup_floor\": \
        %.1f,\n  \"tail_ratio\": %.3f,\n  \"tail_tol\": %.1f,\n  \
        \"perf_enforced\": %b,\n  \"gate_ok\": %b,\n"
       r.l_digest_ok r.l_speedup r.l_speedup_floor r.l_tail_ratio r.l_tail_tol
       r.l_cores_ok r.l_gate_ok);
  Buffer.add_string b "  \"rows\": [\n";
  let first = ref true in
  List.iter
    (fun row ->
      List.iter
        (fun run ->
          if not !first then Buffer.add_string b ",\n";
          first := false;
          Buffer.add_string b
            (Printf.sprintf
               "    {\"workload\": %S, \"variant\": %S, \"domains\": %d, \
                \"throughput_rps\": %.1f, \"p50_us\": %.1f, \"p99_us\": \
                %.1f, \"p999_us\": %.1f, \"dispatches\": %d, \"steals\": %d, \
                \"rejects\": %d, \"queue_depth_hwm\": %d, \"digest\": %S}"
               row.lr_workload row.lr_variant run.l_domains run.l_throughput
               run.l_p50_us run.l_p99_us run.l_p999_us run.l_dispatches
               run.l_steals run.l_rejects run.l_queue_hwm run.l_digest))
        row.lr_runs)
    r.l_rows;
  Buffer.add_string b "\n  ]\n}\n";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* transport_compare (PR 7): the Transport.S substitution gate          *)
(* ------------------------------------------------------------------ *)

type transport_run = {
  x_digest : string;
  x_checksum : float;
  x_msgs : int;
  x_bytes : int;
  x_modeled : float;
  x_wall : float;
}

type transport_row = {
  xr_workload : string;
  xr_variant : string;
  xr_sim : transport_run;
  xr_sock : transport_run;
}

type transport_report = {
  x_title : string;
  x_rows : transport_row list;
  x_digest_ok : bool;
  x_model_ok : bool;
}

(* one backend of one (workload, variant) pair: [calls] pipelined RMIs
   from machine 0 to machine 1 under the parallel fabric, replies
   awaited in issue order.  The digest is over the structurally
   rendered replies in that order, so it is deterministic whatever the
   kernel's TCP scheduling or the serve domain's interleaving did —
   the same trick the load gate uses across domain counts. *)
let run_transport_run ~backend ~config ~window ~calls (ww : wire_workload) =
  let metrics = Metrics.create () in
  let fabric =
    Fabric.create ~mode:Fabric.Parallel ~backend ~n:2
      ~meta:(Lazy.force wire_meta) ~config ~plans:(Hashtbl.create 4) ~metrics
      ()
  in
  Node.export (Fabric.node fabric 1) ~obj:0 ~meth:m_wire ~has_ret:true
    ww.ww_handler;
  let caller = Fabric.node fabric 0 in
  let dest = Remote_ref.make ~machine:1 ~obj:0 in
  let arg = Lazy.force ww.ww_arg in
  let buf = Buffer.create 1024 in
  let checksum = ref 0.0 in
  let t0 = Unix.gettimeofday () in
  Fabric.run fabric (fun _ ->
      let i = ref 0 in
      while !i < calls do
        let k = min window (calls - !i) in
        let futures =
          List.init k (fun _ ->
              Node.call_async caller ~dest ~meth:m_wire ~callsite:wire_site
                ~has_ret:true [| arg |])
        in
        List.iter
          (fun f ->
            let r = Node.Future.await f in
            (match r with
            | Some v -> tier_render buf v
            | None -> Buffer.add_string buf "none");
            Buffer.add_char buf '|';
            checksum := !checksum +. ww.ww_fold r)
          futures;
        i := !i + k
      done);
  let wall = Unix.gettimeofday () -. t0 in
  Fabric.shutdown_net fabric;
  let s = Metrics.snapshot metrics in
  {
    x_digest = Digest.to_hex (Digest.string (Buffer.contents buf));
    x_checksum = !checksum;
    x_msgs = s.Metrics.msgs_sent;
    x_bytes = s.Metrics.bytes_sent;
    x_modeled = Costmodel.modeled_seconds model s;
    x_wall = wall;
  }

let transport_compare ?(calls = 64) ?(window = 8) ?(seed = 42) () =
  let base = Config.class_ in
  let variants =
    [
      ("sequential", base, 1);
      ("pipelined", base, window);
      ("pipelined+batch", Config.with_batching base, window);
    ]
  in
  let rows =
    List.concat_map
      (fun ww ->
        List.map
          (fun (vname, config, win) ->
            let sim =
              run_transport_run ~backend:Fabric.Sim ~config ~window:win ~calls
                ww
            in
            let sock =
              run_transport_run ~backend:Fabric.Sock ~config ~window:win
                ~calls ww
            in
            { xr_workload = ww.ww_name; xr_variant = vname; xr_sim = sim;
              xr_sock = sock })
          variants)
      wire_workloads
  in
  {
    x_title =
      Printf.sprintf
        "transport: sim vs sock loopback, %d calls, window %d, seed %d" calls
        window seed;
    x_rows = rows;
    x_digest_ok =
      List.for_all
        (fun r ->
          String.equal r.xr_sim.x_digest r.xr_sock.x_digest
          && Float.equal r.xr_sim.x_checksum r.xr_sock.x_checksum)
        rows;
    x_model_ok =
      List.for_all
        (fun r ->
          r.xr_sim.x_msgs = r.xr_sock.x_msgs
          && r.xr_sim.x_bytes = r.xr_sock.x_bytes
          && Float.equal r.xr_sim.x_modeled r.xr_sock.x_modeled)
        rows;
  }

let render_transport (r : transport_report) =
  let headers =
    [
      "workload"; "variant"; "msgs sim/sock"; "bytes sim/sock";
      "modeled s sim/sock"; "wall s sim"; "sock"; "replies";
    ]
  in
  let rows =
    List.map
      (fun row ->
        [
          row.xr_workload;
          row.xr_variant;
          Printf.sprintf "%d/%d" row.xr_sim.x_msgs row.xr_sock.x_msgs;
          Printf.sprintf "%d/%d" row.xr_sim.x_bytes row.xr_sock.x_bytes;
          Printf.sprintf "%.4f/%.4f" row.xr_sim.x_modeled row.xr_sock.x_modeled;
          Printf.sprintf "%.4f" row.xr_sim.x_wall;
          Printf.sprintf "%.4f" row.xr_sock.x_wall;
          (if String.equal row.xr_sim.x_digest row.xr_sock.x_digest then
             "identical"
           else "MISMATCH");
        ])
      r.x_rows
  in
  Printf.sprintf
    "%s\n%s\nissue-order reply digests byte-identical: %s\nwire counters and \
     modeled seconds identical: %s"
    r.x_title
    (Rmi_stats.Ascii_table.render ~headers rows)
    (if r.x_digest_ok then "yes" else "NO")
    (if r.x_model_ok then "yes" else "NO")

(* BENCH_transport.json: the modeled-vs-wall-clock report per backend,
   wrapped with the gate verdicts — the CI socket-smoke artifact *)
let transport_json (r : transport_report) =
  let b = Buffer.create 2048 in
  Buffer.add_string b "{\n";
  Buffer.add_string b
    (Printf.sprintf
       "  \"title\": %S,\n  \"digest_ok\": %b,\n  \"model_ok\": %b,\n"
       r.x_title r.x_digest_ok r.x_model_ok);
  Buffer.add_string b "  \"rows\": [\n";
  let first = ref true in
  List.iter
    (fun row ->
      List.iter
        (fun (backend, run) ->
          if not !first then Buffer.add_string b ",\n";
          first := false;
          Buffer.add_string b
            (Printf.sprintf
               "    {\"workload\": %S, \"variant\": %S, \"backend\": %S, \
                \"msgs\": %d, \"bytes\": %d, \"modeled_s\": %.6f, \
                \"wall_s\": %.6f, \"digest\": %S}"
               row.xr_workload row.xr_variant backend run.x_msgs run.x_bytes
               run.x_modeled run.x_wall run.x_digest))
        [ ("sim", row.xr_sim); ("sock", row.xr_sock) ])
    r.x_rows;
  Buffer.add_string b "\n  ]\n}\n";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* multi-process mode: the same workloads over real OS processes        *)
(* ------------------------------------------------------------------ *)

type proc_run = {
  pr_workload : string;
  pr_calls : int;
  pr_digest : string;
  pr_checksum : float;
  pr_wall : float;
}

(* machine [self] of a TCP cluster described by [addrs].  Servers
   (self > 0) export the wire workloads and serve until the client
   shuts them down; the client (machine 0) drives [calls] pipelined
   RMIs per workload round-robin across the servers and returns the
   issue-order digests.  Method/callsite ids are 1 + workload index so
   both workloads coexist on one mesh. *)
let transport_proc ?(calls = 64) ?(window = 8) ?(reliable = false) ?epoch
    ?listen ~self ~addrs () =
  let n = Array.length addrs in
  if n < 2 then invalid_arg "Experiment.transport_proc: need >= 2 machines";
  if self < 0 || self >= n then
    invalid_arg "Experiment.transport_proc: self out of range";
  let metrics = Metrics.create () in
  let config =
    if reliable then
      (* ride through a server kill/restart: the ARQ retransmits
         across the outage and the RPC layer retries across give-ups *)
      Config.with_failover
        { Config.default_failover with Config.max_call_retries = 6 }
        (Config.with_reliable Config.class_)
    else Config.class_
  in
  let fabric =
    Fabric.create_process ?epoch ?listen ~self ~addrs
      ~meta:(Lazy.force wire_meta) ~config ~plans:(Hashtbl.create 4) ~metrics
      ()
  in
  let result =
    if self > 0 then begin
      let me = Fabric.node fabric self in
      List.iteri
        (fun k ww ->
          Node.export me ~obj:0 ~meth:(m_wire + k) ~has_ret:true ww.ww_handler)
        wire_workloads;
      Node.serve_loop me;
      None
    end
    else begin
      let caller = Fabric.node fabric 0 in
      let runs =
        List.mapi
          (fun k ww ->
            let arg = Lazy.force ww.ww_arg in
            let buf = Buffer.create 1024 in
            let checksum = ref 0.0 in
            let t0 = Unix.gettimeofday () in
            let i = ref 0 in
            while !i < calls do
              let burst = min window (calls - !i) in
              let futures =
                List.init burst (fun j ->
                    let machine = 1 + ((!i + j) mod (n - 1)) in
                    Node.call_async caller
                      ~dest:(Remote_ref.make ~machine ~obj:0)
                      ~meth:(m_wire + k) ~callsite:(wire_site + k)
                      ~has_ret:true [| arg |])
              in
              List.iter
                (fun f ->
                  let r = Node.Future.await f in
                  (match r with
                  | Some v -> tier_render buf v
                  | None -> Buffer.add_string buf "none");
                  Buffer.add_char buf '|';
                  checksum := !checksum +. ww.ww_fold r)
                futures;
              i := !i + burst
            done;
            {
              pr_workload = ww.ww_name;
              pr_calls = calls;
              pr_digest = Digest.to_hex (Digest.string (Buffer.contents buf));
              pr_checksum = !checksum;
              pr_wall = Unix.gettimeofday () -. t0;
            })
          wire_workloads
      in
      for dest = 1 to n - 1 do
        Node.send_shutdown caller ~dest
      done;
      Some runs
    end
  in
  Fabric.shutdown_net fabric;
  result

let render_proc (runs : proc_run list) =
  let headers = [ "workload"; "calls"; "wall s"; "checksum"; "digest" ] in
  let rows =
    List.map
      (fun r ->
        [
          r.pr_workload;
          string_of_int r.pr_calls;
          Printf.sprintf "%.4f" r.pr_wall;
          Printf.sprintf "%.1f" r.pr_checksum;
          r.pr_digest;
        ])
      runs
  in
  Rmi_stats.Ascii_table.render ~headers rows
