open Cmdliner
module Config = Rmi_runtime.Config
module Fabric = Rmi_runtime.Fabric
module Fault_sim = Rmi_net.Fault_sim

let scale_conv = Arg.enum [ ("small", Experiment.Small); ("paper", Experiment.Paper) ]
let mode_conv = Arg.enum [ ("sync", Fabric.Sync); ("parallel", Fabric.Parallel) ]

let config_conv =
  Arg.enum (List.map (fun (c : Config.t) -> (c.Config.name, c)) Config.all)

let scale_arg =
  Arg.(
    value
    & opt scale_conv Experiment.Small
    & info [ "scale" ] ~docv:"SCALE"
        ~doc:
          "Workload size: $(b,small) finishes in seconds, $(b,paper) uses the \
           paper's sizes (1024 LU matrix, full search space, 100k requests).")

let mode_arg =
  Arg.(
    value
    & opt mode_conv Fabric.Sync
    & info [ "mode" ] ~docv:"MODE"
        ~doc:
          "Cluster execution: $(b,sync) single-threaded deterministic, \
           $(b,parallel) one OCaml domain per machine (the paper's 2 CPUs).")

let config_arg =
  Arg.(
    value
    & opt config_conv Config.site_reuse_cycle
    & info [ "config" ] ~docv:"CONFIG"
        ~doc:"Optimization configuration (the paper's table rows).")

let window_arg =
  Arg.(
    value
    & opt int 16
    & info [ "window" ] ~docv:"N"
        ~doc:
          "Pipelining depth: how many asynchronous calls are issued \
           back-to-back before the window is awaited.")

let pipeline_arg =
  Arg.(
    value & flag
    & info [ "pipeline" ]
        ~doc:
          "Issue the workload's RMIs through $(b,call_async) futures \
           (windows of $(b,--window) calls) instead of one synchronous \
           call at a time.")

let batch_arg =
  Arg.(
    value & flag
    & info [ "batch" ]
        ~doc:
          "Coalesce small same-destination requests/replies into single \
           wire envelopes (one modeled per-message latency per batch).")

(* "--faults seed=N[,drop=F,dup=F,reorder=F,corrupt=F,delay=K]":
   reliable transport over a seeded lossy network *)
let faults_conv =
  let parse s =
    let profile = ref Fault_sim.default_lossy in
    let seed = ref None in
    try
      String.split_on_char ',' s
      |> List.iter (fun kv ->
             match String.index_opt kv '=' with
             | None -> failwith kv
             | Some i ->
                 let k = String.sub kv 0 i in
                 let v = String.sub kv (i + 1) (String.length kv - i - 1) in
                 let f () = float_of_string v in
                 let p = !profile in
                 (match k with
                 | "seed" -> seed := Some (int_of_string v)
                 | "drop" -> profile := { p with Fault_sim.drop = f () }
                 | "dup" -> profile := { p with Fault_sim.duplicate = f () }
                 | "reorder" -> profile := { p with Fault_sim.reorder = f () }
                 | "corrupt" -> profile := { p with Fault_sim.corrupt = f () }
                 | "delay" ->
                     profile := { p with Fault_sim.max_delay = int_of_string v }
                 | _ -> failwith k));
      match !seed with
      | Some seed -> Ok (seed, !profile)
      | None -> Error (`Msg "--faults needs seed=N")
    with _ ->
      Error
        (`Msg (Printf.sprintf "bad --faults spec %S (want e.g. seed=42,drop=0.2)" s))
  in
  let print ppf ((seed, p) : int * Fault_sim.profile) =
    Format.fprintf ppf "seed=%d,drop=%g,dup=%g,reorder=%g,corrupt=%g,delay=%d"
      seed p.Fault_sim.drop p.Fault_sim.duplicate p.Fault_sim.reorder
      p.Fault_sim.corrupt p.Fault_sim.max_delay
  in
  Arg.conv (parse, print)

let faults_arg =
  Arg.(
    value
    & opt (some faults_conv) None
    & info [ "faults" ] ~docv:"SPEC"
        ~doc:
          "Run over the reliable transport with a seeded fault schedule on \
           every link, e.g. $(b,seed=42) or \
           $(b,seed=7,drop=0.2,dup=0.1,reorder=0.1,corrupt=0.05,delay=3). \
           The same seed replays the exact same schedule.  Omitted \
           probabilities default to a moderate lossy profile.")

let apply_faults ~machines config = function
  | None -> (config, None)
  | Some (seed, profile) ->
      ( Config.with_reliable config,
        Some (Fault_sim.create ~seed ~n:machines profile) )

let tier_conv = Arg.enum [ ("aot", Config.Aot); ("adaptive", Config.Adaptive) ]

let tier_arg =
  Arg.(
    value
    & opt tier_conv Config.Aot
    & info [ "tier" ] ~docv:"TIER"
        ~doc:
          "Plan acquisition: $(b,aot) gives every call site its compiled \
           plan from call one (the paper's static model), $(b,adaptive) \
           starts sites on the generic plan and promotes them to the \
           specialized plan once hot.")

let hot_threshold_arg =
  Arg.(
    value
    & opt int Config.default_hot_threshold
    & info [ "hot-threshold" ] ~docv:"N"
        ~doc:
          "Invocations of one call site before the adaptive tier promotes \
           it to the specialized plan.")

let apply_tier ~tier ~hot_threshold config =
  match tier with
  | Config.Aot -> Config.with_tier Config.Aot config
  | Config.Adaptive -> Config.with_adaptive ~hot_threshold config

let file_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"FILE" ~doc:"Source file in the Java-like surface syntax.")

let entry_arg =
  Arg.(
    value
    & opt string "Driver.main"
    & info [ "entry" ] ~docv:"METHOD"
        ~doc:
          "Qualified method to execute on machine 0 (must take no \
           parameters).")

let machines_arg =
  Arg.(value & opt int 2 & info [ "machines" ] ~docv:"N" ~doc:"Cluster size.")

let domains_arg =
  Arg.(
    value
    & opt int 4
    & info [ "domains" ] ~docv:"N"
        ~doc:
          "Worker domains for the work-stealing dispatch pool.  $(b,1) \
           keeps the paper's serial per-node serve loops; higher counts \
           share every server's traffic across $(docv) OCaml domains.")

let queue_depth_arg =
  Arg.(
    value
    & opt int Config.default_queue_depth
    & info [ "queue-depth" ] ~docv:"N"
        ~doc:
          "Admission bound: requests beyond $(docv) queued per server \
           node are refused with a typed reject the client retries.")

let servers_arg =
  Arg.(
    value
    & opt int 8
    & info [ "servers" ] ~docv:"N"
        ~doc:"Server machines the load client round-robins across.")

let seed_arg =
  Arg.(
    value
    & opt int 42
    & info [ "seed" ] ~docv:"N"
        ~doc:
          "Seed for the crash/restart schedule.  The same seed replays the \
           exact same schedule; CI sweeps a seed matrix with it.")

let crashes_arg =
  Arg.(
    value
    & opt int 1
    & info [ "crashes" ] ~docv:"K"
        ~doc:"How many crash/restart pairs the seeded schedule contains.")

let calls_arg =
  Arg.(
    value
    & opt int 80
    & info [ "calls" ] ~docv:"N"
        ~doc:"How many echo RMIs the crash workload issues.")

(* ------------------------------------------------------------------ *)
(* transport selection and process mode (PR 7)                         *)
(* ------------------------------------------------------------------ *)

let backend_conv = Arg.enum [ ("sim", Fabric.Sim); ("sock", Fabric.Sock) ]

let transport_arg =
  Arg.(
    value
    & opt backend_conv Fabric.Sim
    & info [ "transport" ] ~docv:"BACKEND"
        ~doc:
          "Interconnect backend: $(b,sim) is the in-process simulated \
           cluster with its Myrinet-era cost accounting, $(b,sock) a real \
           TCP loopback mesh (one socket pair per machine pair, real \
           syscalls).  $(b,--faults) composes with both: over $(b,sock) \
           the seeded schedule drives the chaos injector on real frames \
           and the reliable ARQ layer is stacked over the sockets.")

(* "host:port"; the port is mandatory, the host may be a name *)
let addr_conv =
  let parse s =
    match String.rindex_opt s ':' with
    | None -> Error (`Msg (Printf.sprintf "bad address %S (want HOST:PORT)" s))
    | Some i -> (
        let host = String.sub s 0 i in
        let port = String.sub s (i + 1) (String.length s - i - 1) in
        match int_of_string_opt port with
        | Some p when p > 0 && p < 65536 && String.length host > 0 ->
            Ok (host, p)
        | _ ->
            Error (`Msg (Printf.sprintf "bad address %S (want HOST:PORT)" s)))
  in
  let print ppf (h, p) = Format.fprintf ppf "%s:%d" h p in
  Arg.conv (parse, print)

let listen_arg =
  Arg.(
    value
    & opt (some addr_conv) None
    & info [ "listen" ] ~docv:"HOST:PORT"
        ~doc:
          "Bind address for this process's endpoint in $(b,sock) process \
           mode (defaults to this machine's entry in $(b,--peers); set it \
           to e.g. $(b,0.0.0.0:9000) to accept on all interfaces).")

let peers_arg =
  Arg.(
    value
    & opt (list addr_conv) []
    & info [ "peers" ] ~docv:"HOST:PORT,..."
        ~doc:
          "The full cluster address list for $(b,sock) process mode, in \
           machine-id order: entry $(i,i) is machine $(i,i)'s address.  \
           Every process of the cluster must be started with the same \
           list.")

let self_arg =
  Arg.(
    value
    & opt int 0
    & info [ "self" ] ~docv:"ID"
        ~doc:
          "This process's machine id (an index into $(b,--peers)).  \
           Machine 0 drives the workload; higher ids serve.")

let check_transport ~backend ~mode faults =
  match (backend, mode, faults) with
  | Fabric.Sock, Fabric.Parallel, Some _ ->
      Error
        "--faults with --transport sock needs --mode sync: the chaos \
         injector drains its seeded connection plan on the driving \
         thread, which parallel worker domains would race"
  | _ -> Ok ()
