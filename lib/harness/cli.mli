(** Shared Cmdliner vocabulary for the experiment binaries.

    [bin/main.ml] (the $(b,rmi-experiments) driver) and
    [bench/main.ml] accept the same workload knobs; the converters and
    argument definitions live here so the two front ends cannot
    drift. *)

open Cmdliner

(** [small]/[paper] (see {!Experiment.scale}). *)
val scale_conv : Experiment.scale Arg.conv

(** [sync]/[parallel] (see {!Rmi_runtime.Fabric.mode}). *)
val mode_conv : Rmi_runtime.Fabric.mode Arg.conv

(** One of the five paper configuration rows, by name. *)
val config_conv : Rmi_runtime.Config.t Arg.conv

val scale_arg : Experiment.scale Term.t
val mode_arg : Rmi_runtime.Fabric.mode Term.t
val config_arg : Rmi_runtime.Config.t Term.t

(** [--window N]: pipelining depth, default 16. *)
val window_arg : int Term.t

(** [--pipeline]: issue RMIs as futures in windows. *)
val pipeline_arg : bool Term.t

(** [--batch]: coalesce small messages into batch envelopes. *)
val batch_arg : bool Term.t

(** Parses ["seed=N,drop=F,dup=F,reorder=F,corrupt=F,delay=K"]. *)
val faults_conv : (int * Rmi_net.Fault_sim.profile) Arg.conv

val faults_arg : (int * Rmi_net.Fault_sim.profile) option Term.t

(** Fold a parsed [--faults] value into a configuration: switches the
    transport to reliable and builds the seeded fault schedule. *)
val apply_faults :
  machines:int ->
  Rmi_runtime.Config.t ->
  (int * Rmi_net.Fault_sim.profile) option ->
  Rmi_runtime.Config.t * Rmi_net.Fault_sim.t option

(** [aot]/[adaptive] (see {!Rmi_runtime.Config.tier}). *)
val tier_conv : Rmi_runtime.Config.tier Arg.conv

(** [--tier TIER]: how call sites obtain their plans, default [aot]. *)
val tier_arg : Rmi_runtime.Config.tier Term.t

(** [--hot-threshold N]: adaptive promotion threshold, default
    {!Rmi_runtime.Config.default_hot_threshold}. *)
val hot_threshold_arg : int Term.t

(** Fold parsed [--tier]/[--hot-threshold] values into a
    configuration. *)
val apply_tier :
  tier:Rmi_runtime.Config.tier ->
  hot_threshold:int ->
  Rmi_runtime.Config.t ->
  Rmi_runtime.Config.t

(** Positional [FILE]: a source file in the Java-like surface syntax. *)
val file_arg : string Term.t

(** [--entry METHOD]: qualified entry method, default ["Driver.main"]. *)
val entry_arg : string Term.t

(** [--machines N]: cluster size, default 2. *)
val machines_arg : int Term.t

(** [--domains N]: worker domains for the dispatch pool, default 4;
    1 keeps the paper's serial per-node serve loops. *)
val domains_arg : int Term.t

(** [--queue-depth N]: per-node admission bound, default
    {!Rmi_runtime.Config.default_queue_depth}. *)
val queue_depth_arg : int Term.t

(** [--servers N]: server machines the load client round-robins
    across, default 8. *)
val servers_arg : int Term.t

(** [--seed N]: crash-schedule seed, default 42. *)
val seed_arg : int Term.t

(** [--crashes K]: crash/restart pairs in the schedule, default 1. *)
val crashes_arg : int Term.t

(** [--calls N]: RMIs the crash workload issues, default 80. *)
val calls_arg : int Term.t

(** [sim]/[sock] (see {!Rmi_runtime.Fabric.backend}). *)
val backend_conv : Rmi_runtime.Fabric.backend Arg.conv

(** [--transport BACKEND]: interconnect backend, default [sim]. *)
val transport_arg : Rmi_runtime.Fabric.backend Term.t

(** Parses ["HOST:PORT"]. *)
val addr_conv : (string * int) Arg.conv

(** [--listen HOST:PORT]: bind-address override for process mode. *)
val listen_arg : (string * int) option Term.t

(** [--peers HOST:PORT,...]: the cluster address list, machine-id
    order; the same list on every process. *)
val peers_arg : (string * int) list Term.t

(** [--self ID]: this process's machine id, default 0 (the driver). *)
val self_arg : int Term.t

(** Reject combinations the socket backend cannot honour.  [--faults]
    now composes with [--transport sock] (the schedule drives the
    {!Rmi_net.Chaos} injector over real frames), but only under
    [--mode sync]; the error message names the offending flags. *)
val check_transport :
  backend:Rmi_runtime.Fabric.backend ->
  mode:Rmi_runtime.Fabric.mode ->
  (int * Rmi_net.Fault_sim.profile) option ->
  (unit, string) result
