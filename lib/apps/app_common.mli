(** Shared scaffolding for the benchmark applications.

    Every application follows the paper's structure: a JIR model of its
    remote call sites is compiled by the real optimizer, the resulting
    plans feed the runtime, and the OCaml implementation of the
    workload drives the cluster.  [compile] performs the
    model-to-plans half; [run_timed] the measurement half. *)

type compiled = {
  prog : Jir.Program.t;
  opt : Rmi_core.Optimizer.t;
  meta : Rmi_serial.Class_meta.t;
  plans : (int, Rmi_core.Plan.t) Hashtbl.t;
}

(** Typecheck, SSA-convert and analyze a model; plans indexed by call
    site. *)
val compile : Jir.Program.t -> compiled

(** One measured run: fresh metrics, fresh fabric, timed body.
    Returns the body's result, wall-clock seconds and the metric
    snapshot.  [faults] installs a seeded fault schedule on the fabric's
    links (meaningful with a reliable-transport [config]). *)
val run_timed :
  compiled ->
  ?backend:Rmi_runtime.Fabric.backend ->
  ?faults:Rmi_net.Fault_sim.t ->
  config:Rmi_runtime.Config.t ->
  mode:Rmi_runtime.Fabric.mode ->
  n:int ->
  (Rmi_runtime.Fabric.t -> 'a) ->
  'a * float * Rmi_stats.Metrics.snapshot

(** Machine this remote object lives on given a round-robin key —
    JavaParty's default object distribution. *)
val place : key:int -> machines:int -> int
