(** The linked-list microbenchmark (paper Figure 14, Table 1).

    Machine 0 builds a list of [elements] cells and ships it to machine
    1 over one RMI per repetition.  The compiler classifies the list as
    may-be-cyclic (the admitted false positive), so cycle elimination
    buys nothing, while argument reuse recycles all [elements] cells of
    the previous call — the paper's 43% row. *)

type params = { elements : int; repetitions : int }

val default_params : params  (** 100 elements, as in Table 1 *)

type result = {
  wall_seconds : float;
  stats : Rmi_stats.Metrics.snapshot;
  cells_received : int;  (** checksum: must equal elements * repetitions *)
}

(** The JIR model (compiled once, lazily). *)
val compiled : unit -> App_common.compiled

(** The model's single remote call site. *)
val callsite : unit -> int

(** [faults] installs a seeded fault schedule on the cluster links
    (pair with [Config.with_reliable]); the checksum must come out the
    same as a fault-free run. *)
val run :
  ?backend:Rmi_runtime.Fabric.backend ->
  ?faults:Rmi_net.Fault_sim.t ->
  config:Rmi_runtime.Config.t ->
  mode:Rmi_runtime.Fabric.mode ->
  params ->
  result

(** Same workload through {!Rmi_runtime.Node.call_async}: [window]
    (default 16) sends per burst, then the burst is awaited.  Combine
    with [Config.with_batching] to coalesce bursts into single
    envelopes.  The checksum is identical to {!run}'s. *)
val run_pipelined :
  ?window:int ->
  ?backend:Rmi_runtime.Fabric.backend ->
  ?faults:Rmi_net.Fault_sim.t ->
  config:Rmi_runtime.Config.t ->
  mode:Rmi_runtime.Fabric.mode ->
  params ->
  result
