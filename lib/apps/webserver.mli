(** The parallel webserver (paper Section 5.4, Tables 7/8).

    A master accepts page requests and forwards each to one of two
    slave objects by URL hash — one slave per machine, so half the
    retrievals are local RPCs, as in Table 8.  The communication is a
    single RMI: [page = server[url.hashCode()].get_page(url)].

    URLs and pages are objects wrapping integer arrays (Java strings
    wrap char arrays), so the compiler proves both cycle-free {e and}
    reusable: with reuse enabled no new objects are allocated once
    every distinct page has travelled once — Table 8's 0.0 MBytes. *)

type params = {
  pages : int;  (** distinct pages per slave *)
  page_bytes : int;  (** payload length of each page *)
  requests : int;  (** total page retrievals *)
}

val default_params : params

type result = {
  wall_seconds : float;
  stats : Rmi_stats.Metrics.snapshot;
  bytes_served : int;  (** checksum over received page payloads *)
  us_per_page : float;
}

val compiled : unit -> App_common.compiled
val callsite : unit -> int

(** [machines] defaults to 2, the paper's setup; objects are placed
    round-robin over all machines. *)
val run :
  ?machines:int ->
  ?backend:Rmi_runtime.Fabric.backend ->
  config:Rmi_runtime.Config.t ->
  mode:Rmi_runtime.Fabric.mode ->
  params ->
  result
