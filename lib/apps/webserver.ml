open Jir
module B = Builder
module Value = Rmi_serial.Value
module Node = Rmi_runtime.Node

type params = { pages : int; page_bytes : int; requests : int }

let default_params = { pages = 64; page_bytes = 1024; requests = 2000 }

type result = {
  wall_seconds : float;
  stats : Rmi_stats.Metrics.snapshot;
  bytes_served : int;
  us_per_page : float;
}

(* The model is written in the surface syntax and compiled by the real
   front end — what a JavaParty user would have written. *)
let model_source =
  {|
  class Url  { int[] chars; }
  class Page { int[] data; }

  remote class Slave {
    Page get_page(Url u) {
      // look the page up (reads the url), build the reply page
      int h = u.chars[0];
      Page p = new Page();
      p.data = new int[1024];
      p.data[0] = h;
      return p;
    }
  }

  class Master {
    static void run() {
      Slave s = new Slave();
      Url u = new Url();
      u.chars = new int[32];
      for (int i = 0; i < 1000; i++) {
        // the master forwards the page to the client: it only reads
        // the payload, nothing is retained
        Page p = s.get_page(u);
        int len = p.data.length;
      }
    }
  }
  |}

let model () = Jfront.Lower.compile model_source

let compiled_cache = lazy (App_common.compile (model ()))
let compiled () = Lazy.force compiled_cache

(* class/method handles resolved by name from the compiled model *)
let url_cls = 0 (* Url is declared first *)
let page_cls = 1

let m_get_page_cache =
  lazy
    (Jfront.Lower.method_named (Lazy.force compiled_cache).App_common.prog
       "Slave.get_page")

let m_get_page () = Lazy.force m_get_page_cache

let callsite () =
  match (compiled ()).App_common.prog |> Program.remote_callsites with
  | [ (_, site, _, _, _) ] -> site
  | _ -> failwith "webserver: expected one callsite"

(* ------------------------------------------------------------------ *)
(* runtime values                                                      *)
(* ------------------------------------------------------------------ *)

let make_url id =
  let chars = Value.new_iarr 32 in
  Array.iteri (fun i _ -> chars.Value.ia.(i) <- (id * 31) + i) chars.Value.ia;
  chars.Value.ia.(0) <- id;
  let u = Value.new_obj ~cls:url_cls ~nfields:1 in
  u.Value.fields.(0) <- Value.Iarr chars;
  Value.Obj u

let url_id = function
  | Value.Obj u -> (
      match u.Value.fields.(0) with
      | Value.Iarr chars -> chars.Value.ia.(0)
      | _ -> failwith "webserver: bad url")
  | _ -> failwith "webserver: bad url"

let make_page ~id ~bytes =
  let data = Value.new_iarr (bytes / 8) in
  Array.iteri (fun i _ -> data.Value.ia.(i) <- id + i) data.Value.ia;
  let p = Value.new_obj ~cls:page_cls ~nfields:1 in
  p.Value.fields.(0) <- Value.Iarr data;
  Value.Obj p

let page_size = function
  | Value.Obj p -> (
      match p.Value.fields.(0) with
      | Value.Iarr data -> 8 * Array.length data.Value.ia
      | _ -> failwith "webserver: bad page")
  | _ -> failwith "webserver: bad page"

(* ------------------------------------------------------------------ *)
(* driver                                                              *)
(* ------------------------------------------------------------------ *)

let run ?(machines = 2) ?backend ~config ~mode params =
  let compiled = compiled () in
  let site = callsite () in
  let served, wall, stats =
    App_common.run_timed compiled ?backend ~config ~mode ~n:machines (fun fabric ->
        (* one slave per machine, each owning the pages whose hash maps
           to it *)
        for m = 0 to machines - 1 do
          let store = Hashtbl.create 64 in
          for id = 0 to params.pages - 1 do
            Hashtbl.replace store id (make_page ~id ~bytes:params.page_bytes)
          done;
          let node = Rmi_runtime.Fabric.node fabric m in
          Node.export node ~obj:0 ~meth:(m_get_page ()) ~has_ret:true (fun args ->
              let id = url_id args.(0) in
              match Hashtbl.find_opt store (id mod params.pages) with
              | Some page -> Some page
              | None -> failwith "webserver: page not found")
        done;
        let master = Rmi_runtime.Fabric.node fabric 0 in
        let urls = Array.init params.pages make_url in
        let total = ref 0 in
        for r = 0 to params.requests - 1 do
          let id = r mod params.pages in
          let dest =
            Rmi_runtime.Remote_ref.make
              ~machine:(App_common.place ~key:id ~machines)
              ~obj:0
          in
          match
            Node.call master ~dest ~meth:(m_get_page ()) ~callsite:site
              ~has_ret:true [| urls.(id) |]
          with
          | Some page -> total := !total + page_size page
          | None -> failwith "webserver: no page returned"
        done;
        !total)
  in
  {
    wall_seconds = wall;
    stats;
    bytes_served = served;
    us_per_page = wall *. 1e6 /. float_of_int params.requests;
  }
