(** The 2-D array transmission microbenchmark (paper Figures 12/13,
    Table 2).

    Machine 0 ships an [n]×[n] [double[][]] to machine 1 per
    repetition.  The compiler proves the graph acyclic and the argument
    non-escaping, so all three optimizations apply — the generated plan
    is exactly Figure 13's marshaler. *)

type params = { n : int; repetitions : int }

val default_params : params  (** 16x16, as in Table 2 *)

type result = {
  wall_seconds : float;
  stats : Rmi_stats.Metrics.snapshot;
  sum_received : float;  (** checksum over all received elements *)
}

val compiled : unit -> App_common.compiled
val callsite : unit -> int

(** [faults] installs a seeded fault schedule on the cluster links
    (pair with [Config.with_reliable]); the checksum must come out the
    same as a fault-free run. *)
val run :
  ?backend:Rmi_runtime.Fabric.backend ->
  ?faults:Rmi_net.Fault_sim.t ->
  config:Rmi_runtime.Config.t ->
  mode:Rmi_runtime.Fabric.mode ->
  params ->
  result

(** Same workload, but issued through {!Rmi_runtime.Node.call_async}:
    [window] (default 16) sends go out back-to-back before the whole
    window is awaited.  Combine with [Config.with_batching] to coalesce
    each burst into a handful of wire envelopes.  The checksum is
    identical to {!run}'s. *)
val run_pipelined :
  ?window:int ->
  ?backend:Rmi_runtime.Fabric.backend ->
  ?faults:Rmi_net.Fault_sim.t ->
  config:Rmi_runtime.Config.t ->
  mode:Rmi_runtime.Fabric.mode ->
  params ->
  result
