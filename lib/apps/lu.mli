(** Blocked LU factorization in the style of SPLASH-2 (paper Section
    5.2, Tables 3/4).

    The [n]×[n] matrix lives on machine 0 as [block_size]² blocks.  At
    each step the diagonal block is factored and the panels updated
    locally; every trailing-block update [A_ij -= A_ik * A_kj] is an
    RMI to a Worker object placed round-robin over the machines — so
    roughly half the calls are local RPCs and half remote, matching the
    paper's Table 4 statistics.  Block arguments are read-only in the
    callee (reusable); the returned block is stored back into the
    matrix (not reusable); everything is acyclic.

    No pivoting: test matrices are made diagonally dominant. *)

type params = { n : int; block_size : int }

val default_params : params  (** 256x256 (paper used 1024; see DESIGN.md) *)

type result = {
  wall_seconds : float;
  stats : Rmi_stats.Metrics.snapshot;
  residual : float;  (** max |distributed - sequential| over all entries *)
}

val compiled : unit -> App_common.compiled

(** The model's trailing-update call site. *)
val callsite : unit -> int

(** Sequential in-place blocked LU on a plain matrix (the baseline the
    distributed result is verified against). *)
val lu_sequential : float array array -> unit

(** Deterministic diagonally dominant test matrix. *)
val test_matrix : int -> float array array

(** [machines] defaults to 2, the paper's setup; objects are placed
    round-robin over all machines. *)
val run :
  ?machines:int ->
  ?backend:Rmi_runtime.Fabric.backend ->
  config:Rmi_runtime.Config.t ->
  mode:Rmi_runtime.Fabric.mode ->
  params ->
  result
