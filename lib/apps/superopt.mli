(** The parallel superoptimizer (paper Section 5.3, Tables 5/6;
    Massalin [13]).

    A producer on machine 0 enumerates every instruction sequence up to
    [max_len] over a small register ISA and pushes each candidate — a
    [Prog] object holding an [Insn] array whose instructions hold three
    [Operand] objects, exactly the paper's object graph — over RMI to
    tester objects placed round-robin on the two machines.  A tester
    checks the candidate against the target sequence on random register
    states and records matches; the producer collects them at the end.

    The compiler proves candidate programs acyclic (all 52-million
    runtime cycle lookups of Table 6 vanish under [site+cycle]) but the
    testers enqueue their argument, so reuse never applies — also as in
    Table 6. *)

module Isa : sig
  type opcode =
    | Add | Sub | And | Or | Xor | Shl | Shr | Mov | Neg | Not | Loadi
    | Ld  (** rd <- mem[rs1 mod msize] *)
    | St  (** mem[rs1 mod msize] <- rs2 *)

  type insn = { op : opcode; rd : int; rs1 : int; rs2 : int }
  (** [Loadi]: [rs1] indexes {!immediates}. [Mov]/[Neg]/[Not]/[Ld]
      ignore [rs2]; [St] ignores [rd]. *)

  type prog = insn array

  val nregs : int

  (** Words of data memory (addresses wrap modulo [msize]). *)
  val msize : int

  val immediates : int array
  val opcode_count : int

  (** Execute on a register file in place (fresh zeroed memory). *)
  val exec : prog -> int array -> unit

  (** Execute on explicit register file and memory, both in place —
      the state the paper's equivalence test compares. *)
  val exec_mem : prog -> int array -> int array -> unit

  (** All instruction sequences of length 1..[max_len], in a fixed
      deterministic order. *)
  val enumerate : max_len:int -> prog Seq.t

  (** Randomized equivalence test (deterministic seed). *)
  val equivalent : ?trials:int -> prog -> prog -> bool

  val pp_insn : Format.formatter -> insn -> unit
  val pp_prog : Format.formatter -> prog -> unit
end

type params = {
  target : Isa.prog;  (** sequence to superoptimize *)
  max_len : int;  (** candidate length bound (paper: 3) *)
  max_candidates : int;  (** cap on the search space, [max_int] = all *)
}

val default_params : params
(** target [SUB r0 r0 r0], [max_len = 2], uncapped. *)

type result = {
  wall_seconds : float;
  stats : Rmi_stats.Metrics.snapshot;
  candidates_tested : int;
  matches : Isa.prog list;  (** equivalent sequences found *)
}

val compiled : unit -> App_common.compiled

(** The model's two remote call sites: [(accept, get_results)]. *)
val callsites : unit -> int * int

(** [machines] defaults to 2, the paper's setup; objects are placed
    round-robin over all machines. *)
val run :
  ?machines:int ->
  ?backend:Rmi_runtime.Fabric.backend ->
  config:Rmi_runtime.Config.t ->
  mode:Rmi_runtime.Fabric.mode ->
  params ->
  result
