open Jir
module B = Builder
module Value = Rmi_serial.Value
module Node = Rmi_runtime.Node

type params = { n : int; block_size : int }

let default_params = { n = 256; block_size = 16 }

type result = {
  wall_seconds : float;
  stats : Rmi_stats.Metrics.snapshot;
  residual : float;
}

(* ------------------------------------------------------------------ *)
(* model: one remote Worker.update(a, col, row) -> double[][], written *)
(* in the surface syntax                                               *)
(* ------------------------------------------------------------------ *)

let model_source =
  {|
  remote class Worker {
    // res = a - col*row (representative reads of all three arguments,
    // writes only into the fresh result)
    double[][] update(double[][] a, double[][] col, double[][] row) {
      int bsize = a.length;
      double[][] res = new double[bsize][];
      for (int i = 0; i < bsize; i++) {
        double[] resrow = new double[bsize];
        for (int j = 0; j < bsize; j++) {
          resrow[j] = a[i][j] - col[i][0] * row[0][j];
        }
        res[i] = resrow;
      }
      return res;
    }
  }
  class Coordinator {
    static void main() {
      Worker w = new Worker();
      double[][] a = new double[16][16];
      double[][] c = new double[16][16];
      double[][] r = new double[16][16];
      // the matrix of blocks the result is stored back into
      double[][][] blocks = new double[4][][];
      for (int k = 0; k < 10; k++) {
        double[][] t = w.update(a, c, r);
        blocks[0] = t;
      }
    }
  }
  |}

let model () = Jfront.Lower.compile model_source

let compiled_cache = lazy (App_common.compile (model ()))
let compiled () = Lazy.force compiled_cache

let m_update_cache =
  lazy
    (Jfront.Lower.method_named (Lazy.force compiled_cache).App_common.prog
       "Worker.update")

let m_update () = Lazy.force m_update_cache

let callsite () =
  match (compiled ()).App_common.prog |> Program.remote_callsites with
  | [ (_, site, _, _, _) ] -> site
  | _ -> failwith "lu: expected one callsite"

(* ------------------------------------------------------------------ *)
(* numerics                                                            *)
(* ------------------------------------------------------------------ *)

let test_matrix n =
  (* deterministic, diagonally dominant so unpivoted LU is stable *)
  let seed = ref 42 in
  let next () =
    seed := ((!seed * 1103515245) + 12345) land 0x3FFFFFFF;
    float_of_int !seed /. float_of_int 0x3FFFFFFF
  in
  let a = Array.init n (fun _ -> Array.init n (fun _ -> next () -. 0.5)) in
  for i = 0 to n - 1 do
    a.(i).(i) <- a.(i).(i) +. float_of_int n
  done;
  a

let lu_sequential a =
  let n = Array.length a in
  for k = 0 to n - 1 do
    let pivot = a.(k).(k) in
    for i = k + 1 to n - 1 do
      a.(i).(k) <- a.(i).(k) /. pivot;
      let lik = a.(i).(k) in
      let ai = a.(i) and ak = a.(k) in
      for j = k + 1 to n - 1 do
        ai.(j) <- ai.(j) -. (lik *. ak.(j))
      done
    done
  done

(* in-block factorization of the diagonal block *)
let factor_block blk bsize =
  for k = 0 to bsize - 1 do
    let pivot = blk.(k).(k) in
    for i = k + 1 to bsize - 1 do
      blk.(i).(k) <- blk.(i).(k) /. pivot;
      let lik = blk.(i).(k) in
      for j = k + 1 to bsize - 1 do
        blk.(i).(j) <- blk.(i).(j) -. (lik *. blk.(k).(j))
      done
    done
  done

(* row panel: A_kj <- L_kk^{-1} A_kj (unit lower triangular solve) *)
let solve_row diag blk bsize =
  for r = 1 to bsize - 1 do
    for rr = 0 to r - 1 do
      let l = diag.(r).(rr) in
      for c = 0 to bsize - 1 do
        blk.(r).(c) <- blk.(r).(c) -. (l *. blk.(rr).(c))
      done
    done
  done

(* column panel: A_ik <- A_ik U_kk^{-1} *)
let solve_col diag blk bsize =
  for c = 0 to bsize - 1 do
    for cc = 0 to c - 1 do
      let u = diag.(cc).(c) in
      for r = 0 to bsize - 1 do
        blk.(r).(c) <- blk.(r).(c) -. (blk.(r).(cc) *. u)
      done
    done;
    let d = diag.(c).(c) in
    for r = 0 to bsize - 1 do
      blk.(r).(c) <- blk.(r).(c) /. d
    done
  done

(* ------------------------------------------------------------------ *)
(* value plumbing                                                      *)
(* ------------------------------------------------------------------ *)

(* wrap a block's rows as a value graph without copying the floats *)
let value_of_block blk =
  let bsize = Array.length blk in
  let outer = Value.new_rarr (Tarray Tdouble) bsize in
  for i = 0 to bsize - 1 do
    outer.Value.ra.(i) <- Value.Darr { Value.d = blk.(i); did = Value.fresh_id () }
  done;
  Value.Rarr outer

let block_of_value bsize v =
  match v with
  | Value.Rarr outer when Array.length outer.Value.ra = bsize ->
      Array.map
        (function
          | Value.Darr inner when Array.length inner.Value.d = bsize ->
              inner.Value.d
          | _ -> failwith "lu: malformed block row")
        outer.Value.ra
  | _ -> failwith "lu: malformed block"

(* the trailing update a worker performs: res = a - col * row *)
let block_update a col row =
  let bsize = Array.length a in
  let res = Array.init bsize (fun i -> Array.copy a.(i)) in
  for i = 0 to bsize - 1 do
    let ci = col.(i) in
    for kk = 0 to bsize - 1 do
      let c = ci.(kk) in
      if c <> 0.0 then begin
        let rk = row.(kk) in
        let ri = res.(i) in
        for j = 0 to bsize - 1 do
          ri.(j) <- ri.(j) -. (c *. rk.(j))
        done
      end
    done
  done;
  res

let update_handler args =
  let bsize =
    match args.(0) with
    | Value.Rarr outer -> Array.length outer.Value.ra
    | _ -> failwith "lu: bad arg"
  in
  let a = block_of_value bsize args.(0) in
  let col = block_of_value bsize args.(1) in
  let row = block_of_value bsize args.(2) in
  Some (value_of_block (block_update a col row))

(* ------------------------------------------------------------------ *)
(* the distributed driver                                              *)
(* ------------------------------------------------------------------ *)

let run ?(machines = 2) ?backend ~config ~mode params =
  if params.n mod params.block_size <> 0 then
    invalid_arg "Lu.run: block_size must divide n";
  let bsize = params.block_size in
  let nb = params.n / params.block_size in
  let compiled = compiled () in
  let site = callsite () in
  (* reference answer *)
  let reference = test_matrix params.n in
  lu_sequential reference;
  let blocks_result, wall, stats =
    App_common.run_timed compiled ?backend ~config ~mode ~n:machines (fun fabric ->
        (* a Worker on every machine; trailing updates are distributed
           round-robin by block row, so 1/machines of the RMIs stay local *)
        for m = 0 to machines - 1 do
          Node.export
            (Rmi_runtime.Fabric.node fabric m)
            ~obj:0 ~meth:(m_update ()) ~has_ret:true update_handler
        done;
        let caller = Rmi_runtime.Fabric.node fabric 0 in
        (* split the input into blocks *)
        let full = test_matrix params.n in
        let blocks =
          Array.init nb (fun bi ->
              Array.init nb (fun bj ->
                  Array.init bsize (fun r ->
                      Array.init bsize (fun c ->
                          full.((bi * bsize) + r).((bj * bsize) + c)))))
        in
        for k = 0 to nb - 1 do
          factor_block blocks.(k).(k) bsize;
          for j = k + 1 to nb - 1 do
            solve_row blocks.(k).(k) blocks.(k).(j) bsize
          done;
          for i = k + 1 to nb - 1 do
            solve_col blocks.(k).(k) blocks.(i).(k) bsize
          done;
          (* flush trailing updates through the Workers *)
          for i = k + 1 to nb - 1 do
            let dest =
              Rmi_runtime.Remote_ref.make
                ~machine:(App_common.place ~key:i ~machines)
                ~obj:0
            in
            for j = k + 1 to nb - 1 do
              match
                Node.call caller ~dest ~meth:(m_update ()) ~callsite:site
                  ~has_ret:true
                  [|
                    value_of_block blocks.(i).(j);
                    value_of_block blocks.(i).(k);
                    value_of_block blocks.(k).(j);
                  |]
              with
              | Some v ->
                  (* copy the returned block back into the matrix *)
                  let fresh = block_of_value bsize v in
                  for r = 0 to bsize - 1 do
                    Array.blit fresh.(r) 0 blocks.(i).(j).(r) 0 bsize
                  done
              | None -> failwith "lu: worker returned nothing"
            done
          done
        done;
        blocks)
  in
  (* reassemble and compare against the sequential factorization *)
  let residual = ref 0.0 in
  for i = 0 to params.n - 1 do
    for j = 0 to params.n - 1 do
      let v = blocks_result.(i / bsize).(j / bsize).(i mod bsize).(j mod bsize) in
      let d = Float.abs (v -. reference.(i).(j)) in
      if d > !residual then residual := d
    done
  done;
  { wall_seconds = wall; stats; residual = !residual }
