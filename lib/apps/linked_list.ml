open Jir
module B = Builder
module Value = Rmi_serial.Value
module Node = Rmi_runtime.Node

type params = { elements : int; repetitions : int }

let default_params = { elements = 100; repetitions = 100 }

type result = {
  wall_seconds : float;
  stats : Rmi_stats.Metrics.snapshot;
  cells_received : int;
}

(* class ids fixed by declaration order in the model *)
let cell_cls = 0

(* the paper's Figure 14, as source *)
let model_source =
  {|
  class LinkedList {
    LinkedList next;
  }
  remote class Foo {
    void send(LinkedList l) { }
  }
  class Driver {
    static void benchmark() {
      LinkedList head = null;
      for (int i = 0; i < 100; i++) {
        LinkedList n = new LinkedList();
        n.next = head;
        head = n;
      }
      Foo f = new Foo();
      for (int r = 0; r < 100; r++) { f.send(head); }
    }
  }
  |}

let model () = Jfront.Lower.compile model_source

let compiled_cache = lazy (App_common.compile (model ()))
let compiled () = Lazy.force compiled_cache

let m_send_cache =
  lazy
    (Jfront.Lower.method_named (Lazy.force compiled_cache).App_common.prog
       "Foo.send")

let m_send () = Lazy.force m_send_cache

let callsite () =
  match (compiled ()).App_common.prog |> Program.remote_callsites with
  | [ (_, site, _, _, _) ] -> site
  | _ -> failwith "linked_list: expected one callsite"

let make_list n =
  let rec go acc k =
    if k = 0 then acc
    else begin
      let c = Value.new_obj ~cls:cell_cls ~nfields:1 in
      c.fields.(0) <- acc;
      go (Value.Obj c) (k - 1)
    end
  in
  go Value.Null n

let rec list_length = function
  | Value.Null -> 0
  | Value.Obj o -> 1 + list_length o.fields.(0)
  | _ -> failwith "linked_list: malformed list"

let setup fabric received =
  let callee = Rmi_runtime.Fabric.node fabric 1 in
  Node.export callee ~obj:0 ~meth:(m_send ()) ~has_ret:false (fun args ->
      ignore (Atomic.fetch_and_add received (list_length args.(0)));
      None);
  (Rmi_runtime.Fabric.node fabric 0, Rmi_runtime.Remote_ref.make ~machine:1 ~obj:0)

let run ?backend ?faults ~config ~mode params =
  let compiled = compiled () in
  let site = callsite () in
  let received, wall, stats =
    App_common.run_timed compiled ?backend ?faults ~config ~mode ~n:2 (fun fabric ->
        let received = Atomic.make 0 in
        let caller, dest = setup fabric received in
        let head = make_list params.elements in
        for _ = 1 to params.repetitions do
          ignore
            (Node.call caller ~dest ~meth:(m_send ()) ~callsite:site ~has_ret:false
               [| head |])
        done;
        Atomic.get received)
  in
  { wall_seconds = wall; stats; cells_received = received }

let run_pipelined ?(window = 16) ?backend ?faults ~config ~mode params =
  if window < 1 then invalid_arg "linked_list: window must be >= 1";
  let compiled = compiled () in
  let site = callsite () in
  let received, wall, stats =
    App_common.run_timed compiled ?backend ?faults ~config ~mode ~n:2 (fun fabric ->
        let received = Atomic.make 0 in
        let caller, dest = setup fabric received in
        let head = make_list params.elements in
        let rec go remaining =
          if remaining > 0 then begin
            let k = min window remaining in
            let futures =
              List.init k (fun _ ->
                  Node.call_async caller ~dest ~meth:(m_send ())
                    ~callsite:site ~has_ret:false [| head |])
            in
            ignore (Node.Future.all futures : Value.t option list);
            go (remaining - k)
          end
        in
        go params.repetitions;
        Atomic.get received)
  in
  { wall_seconds = wall; stats; cells_received = received }
