type compiled = {
  prog : Jir.Program.t;
  opt : Rmi_core.Optimizer.t;
  meta : Rmi_serial.Class_meta.t;
  plans : (int, Rmi_core.Plan.t) Hashtbl.t;
}

let compile prog =
  let opt = Rmi_core.Optimizer.run prog in
  let meta = Rmi_serial.Class_meta.of_program prog in
  let plans = Hashtbl.create 16 in
  List.iter
    (fun (d : Rmi_core.Optimizer.decision) ->
      Hashtbl.replace plans d.plan.Rmi_core.Plan.callsite d.plan)
    opt.decisions;
  { prog; opt; meta; plans }

let run_timed compiled ?backend ?faults ~config ~mode ~n body =
  let metrics = Rmi_stats.Metrics.create () in
  let fabric =
    Rmi_runtime.Fabric.create ~mode ?backend ?faults ~n ~meta:compiled.meta ~config
      ~plans:compiled.plans ~metrics ()
  in
  Rmi_runtime.Fabric.run fabric (fun fabric ->
      let t0 = Unix.gettimeofday () in
      let result = body fabric in
      let wall = Unix.gettimeofday () -. t0 in
      (result, wall, Rmi_stats.Metrics.snapshot metrics))

let place ~key ~machines = key mod machines
