open Jir
module B = Builder
module Value = Rmi_serial.Value
module Node = Rmi_runtime.Node

type params = { n : int; repetitions : int }

let default_params = { n = 16; repetitions = 100 }

type result = {
  wall_seconds : float;
  stats : Rmi_stats.Metrics.snapshot;
  sum_received : float;
}


(* the paper's Figure 12, essentially verbatim *)
let model_source =
  {|
  remote class ArrayBench {
    void send(double[][] arr) { }
  }
  class Driver {
    static void benchmark() {
      double[][] arr = new double[16][16];
      ArrayBench f = new ArrayBench();
      for (int r = 0; r < 100; r++) { f.send(arr); }
    }
  }
  |}

let model () = Jfront.Lower.compile model_source

let compiled_cache = lazy (App_common.compile (model ()))
let compiled () = Lazy.force compiled_cache

let m_send_cache =
  lazy
    (Jfront.Lower.method_named (Lazy.force compiled_cache).App_common.prog
       "ArrayBench.send")

let m_send () = Lazy.force m_send_cache

let callsite () =
  match (compiled ()).App_common.prog |> Program.remote_callsites with
  | [ (_, site, _, _, _) ] -> site
  | _ -> failwith "array_bench: expected one callsite"

let make_matrix n =
  let outer = Value.new_rarr (Tarray Tdouble) n in
  for i = 0 to n - 1 do
    let inner = Value.new_darr n in
    for j = 0 to n - 1 do
      inner.Value.d.(j) <- float_of_int ((i * n) + j)
    done;
    outer.Value.ra.(i) <- Value.Darr inner
  done;
  Value.Rarr outer

let matrix_sum = function
  | Value.Rarr outer ->
      Array.fold_left
        (fun acc row ->
          match row with
          | Value.Darr inner -> acc +. Array.fold_left ( +. ) 0.0 inner.Value.d
          | _ -> failwith "array_bench: malformed matrix")
        0.0 outer.Value.ra
  | _ -> failwith "array_bench: malformed matrix"

let setup fabric total =
  let callee = Rmi_runtime.Fabric.node fabric 1 in
  Node.export callee ~obj:0 ~meth:(m_send ()) ~has_ret:false (fun args ->
      let s = matrix_sum args.(0) in
      let rec add () =
        let cur = Atomic.get total in
        if not (Atomic.compare_and_set total cur (cur +. s)) then add ()
      in
      add ();
      None);
  (Rmi_runtime.Fabric.node fabric 0, Rmi_runtime.Remote_ref.make ~machine:1 ~obj:0)

let run ?backend ?faults ~config ~mode params =
  let compiled = compiled () in
  let site = callsite () in
  let sum, wall, stats =
    App_common.run_timed compiled ?backend ?faults ~config ~mode ~n:2 (fun fabric ->
        let total = Atomic.make 0.0 in
        let caller, dest = setup fabric total in
        let matrix = make_matrix params.n in
        for _ = 1 to params.repetitions do
          ignore
            (Node.call caller ~dest ~meth:(m_send ()) ~callsite:site ~has_ret:false
               [| matrix |])
        done;
        Atomic.get total)
  in
  { wall_seconds = wall; stats; sum_received = sum }

let run_pipelined ?(window = 16) ?backend ?faults ~config ~mode params =
  if window < 1 then invalid_arg "array_bench: window must be >= 1";
  let compiled = compiled () in
  let site = callsite () in
  let sum, wall, stats =
    App_common.run_timed compiled ?backend ?faults ~config ~mode ~n:2 (fun fabric ->
        let total = Atomic.make 0.0 in
        let caller, dest = setup fabric total in
        let matrix = make_matrix params.n in
        (* issue [window] sends back-to-back, then settle the whole
           window; with batching on, each burst coalesces into a couple
           of envelopes instead of [window] *)
        let rec go remaining =
          if remaining > 0 then begin
            let k = min window remaining in
            let futures =
              List.init k (fun _ ->
                  Node.call_async caller ~dest ~meth:(m_send ())
                    ~callsite:site ~has_ret:false [| matrix |])
            in
            ignore (Node.Future.all futures : Value.t option list);
            go (remaining - k)
          end
        in
        go params.repetitions;
        Atomic.get total)
  in
  { wall_seconds = wall; stats; sum_received = sum }
