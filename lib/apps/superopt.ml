open Jir
module B = Builder
module Value = Rmi_serial.Value
module Node = Rmi_runtime.Node

module Isa = struct
  type opcode =
    | Add | Sub | And | Or | Xor | Shl | Shr | Mov | Neg | Not | Loadi
    | Ld  (** rd <- mem[rs1 mod msize] *)
    | St  (** mem[rs1 mod msize] <- rs2 *)

  type insn = { op : opcode; rd : int; rs1 : int; rs2 : int }
  type prog = insn array

  let nregs = 3
  let msize = 2
  let immediates = [| 0; 1; -1; 2 |]

  let opcodes =
    [| Add; Sub; And; Or; Xor; Shl; Shr; Mov; Neg; Not; Loadi; Ld; St |]

  let opcode_count = Array.length opcodes

  let opcode_index op =
    let rec go i = if opcodes.(i) = op then i else go (i + 1) in
    go 0

  (* the machine state the paper's equivalence check compares: "the
     same set of random input register and memory values" *)
  let exec_mem prog regs mem =
    Array.iter
      (fun { op; rd; rs1; rs2 } ->
        let v1 () = regs.(rs1) in
        let v2 () = regs.(rs2) in
        let addr r = ((regs.(r) mod msize) + msize) mod msize in
        match op with
        | St -> mem.(addr rs1) <- regs.(rs2)
        | _ ->
            regs.(rd) <-
              (match op with
              | Add -> v1 () + v2 ()
              | Sub -> v1 () - v2 ()
              | And -> v1 () land v2 ()
              | Or -> v1 () lor v2 ()
              | Xor -> v1 () lxor v2 ()
              | Shl -> v1 () lsl (v2 () land 7)
              | Shr -> v1 () asr (v2 () land 7)
              | Mov -> v1 ()
              | Neg -> -(v1 ())
              | Not -> lnot (v1 ())
              | Loadi -> immediates.(rs1)
              | Ld -> mem.(addr rs1)
              | St -> assert false))
      prog

  let exec prog regs = exec_mem prog regs (Array.make msize 0)

  (* every well-formed single instruction, deterministically ordered *)
  let all_insns =
    lazy
      (let acc = ref [] in
       Array.iter
         (fun op ->
           for rd = 0 to nregs - 1 do
             match op with
             | Add | Sub | And | Or | Xor | Shl | Shr ->
                 for rs1 = 0 to nregs - 1 do
                   for rs2 = 0 to nregs - 1 do
                     acc := { op; rd; rs1; rs2 } :: !acc
                   done
                 done
             | Mov | Neg | Not | Ld ->
                 for rs1 = 0 to nregs - 1 do
                   acc := { op; rd; rs1; rs2 = 0 } :: !acc
                 done
             | St ->
                 (* rd unused: emit only for rd = 0 to avoid duplicates *)
                 if rd = 0 then
                   for rs1 = 0 to nregs - 1 do
                     for rs2 = 0 to nregs - 1 do
                       acc := { op; rd = 0; rs1; rs2 } :: !acc
                     done
                   done
             | Loadi ->
                 for imm = 0 to Array.length immediates - 1 do
                   acc := { op; rd; rs1 = imm; rs2 = 0 } :: !acc
                 done
           done)
         opcodes;
       Array.of_list (List.rev !acc))

  let enumerate ~max_len =
    let insns = Lazy.force all_insns in
    let n = Array.length insns in
    (* sequences of length l = digits of a base-n counter *)
    let rec seqs_of_len l : prog Seq.t =
      if l = 0 then Seq.return [||]
      else
        Seq.concat_map
          (fun prefix ->
            Seq.map
              (fun i -> Array.append prefix [| insns.(i) |])
              (Seq.init n Fun.id))
          (seqs_of_len (l - 1))
    in
    Seq.concat_map seqs_of_len
      (Seq.init max_len (fun l -> l + 1))

  (* deterministic pseudo-random register states *)
  let lcg seed =
    let s = ref seed in
    fun () ->
      s := ((!s * 2862933555777941757) + 3037000493) land max_int;
      (!s lsr 13) - (1 lsl 40)

  let equivalent ?(trials = 8) a b =
    let rand = lcg 0xC0FFEE in
    let rec trial k =
      k = 0
      ||
      let init = Array.init nregs (fun _ -> rand ()) in
      let minit = Array.init msize (fun _ -> rand ()) in
      let ra = Array.copy init and rb = Array.copy init in
      let ma = Array.copy minit and mb = Array.copy minit in
      exec_mem a ra ma;
      exec_mem b rb mb;
      ra = rb && ma = mb && trial (k - 1)
    in
    trial trials

  let pp_insn ppf { op; rd; rs1; rs2 } =
    let name =
      match op with
      | Add -> "add" | Sub -> "sub" | And -> "and" | Or -> "or" | Xor -> "xor"
      | Shl -> "shl" | Shr -> "shr" | Mov -> "mov" | Neg -> "neg" | Not -> "not"
      | Loadi -> "loadi" | Ld -> "ld" | St -> "st"
    in
    match op with
    | Add | Sub | And | Or | Xor | Shl | Shr ->
        Format.fprintf ppf "%s r%d, r%d, r%d" name rd rs1 rs2
    | Mov | Neg | Not -> Format.fprintf ppf "%s r%d, r%d" name rd rs1
    | Ld -> Format.fprintf ppf "%s r%d, [r%d]" name rd rs1
    | St -> Format.fprintf ppf "%s [r%d], r%d" name rs1 rs2
    | Loadi -> Format.fprintf ppf "%s r%d, #%d" name rd immediates.(rs1)

  let pp_prog ppf prog =
    Format.fprintf ppf "[%a]"
      (Format.pp_print_seq
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
         pp_insn)
      (Array.to_seq prog)
end

type params = { target : Isa.prog; max_len : int; max_candidates : int }

let default_params =
  {
    target = [| { Isa.op = Isa.Sub; rd = 0; rs1 = 0; rs2 = 0 } |];
    max_len = 2;
    max_candidates = max_int;
  }

type result = {
  wall_seconds : float;
  stats : Rmi_stats.Metrics.snapshot;
  candidates_tested : int;
  matches : Isa.prog list;
}

(* class ids: declaration order in the model *)
let operand_cls = 0
let insn_cls = 1
let prog_cls = 2

(* ------------------------------------------------------------------ *)
(* model, in the surface syntax: a candidate is a Prog holding an Insn *)
(* array whose instructions hold three Operand objects (the paper's    *)
(* object graph); the tester enqueues it — the store that defeats      *)
(* argument reuse in Table 6                                           *)
(* ------------------------------------------------------------------ *)

let model_source =
  {|
  class Operand { int value; }
  class Insn {
    int op;
    Operand a;
    Operand b;
    Operand c;
  }
  class Prog {
    int id;
    Insn[] insns;
  }
  remote class Tester {
    static Prog[] queue;
    void accept(Prog p) {
      Tester.queue[0] = p;
    }
    int[] get_results() {
      return new int[16];
    }
  }
  class Producer {
    static void producer() {
      Tester.queue = new Prog[64];
      Tester t = new Tester();
      // one candidate: Prog{id; insns = [Insn{op; a; b; c}]}
      Prog p = new Prog();
      p.id = 0;
      Insn[] arr = new Insn[3];
      for (int i = 0; i < 3; i++) {
        Insn ins = new Insn();
        ins.op = 0;
        ins.a = new Operand();
        ins.b = new Operand();
        ins.c = new Operand();
        arr[i] = ins;
      }
      p.insns = arr;
      for (int k = 0; k < 1000; k++) { t.accept(p); }
      int[] results = t.get_results();
      int len = results.length;
    }
  }
  |}

let model () = Jfront.Lower.compile model_source

let compiled_cache = lazy (App_common.compile (model ()))
let compiled () = Lazy.force compiled_cache

let m_accept_cache =
  lazy
    (Jfront.Lower.method_named (Lazy.force compiled_cache).App_common.prog
       "Tester.accept")

let m_accept () = Lazy.force m_accept_cache

let m_results_cache =
  lazy
    (Jfront.Lower.method_named (Lazy.force compiled_cache).App_common.prog
       "Tester.get_results")

let m_results () = Lazy.force m_results_cache

let callsites () =
  let prog = (compiled ()).App_common.prog in
  let named name =
    List.find_map
      (fun (_, site, callee, _, _) ->
        if String.equal (Program.method_decl prog callee).mname name then
          Some site
        else None)
      (Program.remote_callsites prog)
  in
  match (named "Tester.accept", named "Tester.get_results") with
  | Some a, Some r -> (a, r)
  | _ -> failwith "superopt: callsites not found"

(* ------------------------------------------------------------------ *)
(* value encoding of candidate programs                                *)
(* ------------------------------------------------------------------ *)

let value_of_prog ~id (prog : Isa.prog) =
  let mk_operand v =
    let o = Value.new_obj ~cls:operand_cls ~nfields:1 in
    o.Value.fields.(0) <- Value.Int v;
    Value.Obj o
  in
  let insns = Value.new_rarr (Tobject insn_cls) (Array.length prog) in
  Array.iteri
    (fun i (ins : Isa.insn) ->
      let o = Value.new_obj ~cls:insn_cls ~nfields:4 in
      o.Value.fields.(0) <- Value.Int (Isa.opcode_index ins.Isa.op);
      o.Value.fields.(1) <- mk_operand ins.Isa.rd;
      o.Value.fields.(2) <- mk_operand ins.Isa.rs1;
      o.Value.fields.(3) <- mk_operand ins.Isa.rs2;
      insns.Value.ra.(i) <- Value.Obj o)
    prog;
  let p = Value.new_obj ~cls:prog_cls ~nfields:2 in
  p.Value.fields.(0) <- Value.Int id;
  p.Value.fields.(1) <- Value.Rarr insns;
  Value.Obj p

let prog_of_value v : int * Isa.prog =
  let operand = function
    | Value.Obj o -> (
        match o.Value.fields.(0) with
        | Value.Int v -> v
        | _ -> failwith "superopt: bad operand")
    | _ -> failwith "superopt: bad operand"
  in
  match v with
  | Value.Obj p -> (
      let id =
        match p.Value.fields.(0) with
        | Value.Int id -> id
        | _ -> failwith "superopt: bad id"
      in
      match p.Value.fields.(1) with
      | Value.Rarr insns ->
          ( id,
            Array.map
              (function
                | Value.Obj o ->
                    let opi =
                      match o.Value.fields.(0) with
                      | Value.Int i -> i
                      | _ -> failwith "superopt: bad opcode"
                    in
                    {
                      Isa.op = Isa.opcodes.(opi);
                      rd = operand o.Value.fields.(1);
                      rs1 = operand o.Value.fields.(2);
                      rs2 = operand o.Value.fields.(3);
                    }
                | _ -> failwith "superopt: bad insn")
              insns.Value.ra )
      | _ -> failwith "superopt: bad insns")
  | _ -> failwith "superopt: bad prog"

(* ------------------------------------------------------------------ *)
(* driver                                                              *)
(* ------------------------------------------------------------------ *)

let run ?(machines = 2) ?backend ~config ~mode params =
  let compiled = compiled () in
  let accept_site, results_site = callsites () in
  let (tested, matches), wall, stats =
    App_common.run_timed compiled ?backend ~config ~mode ~n:machines (fun fabric ->
        (* a tester object on each machine, round-robin distribution *)
        let matched : (int, int list ref) Hashtbl.t = Hashtbl.create machines in
        for m = 0 to machines - 1 do
          let cell = ref [] in
          Hashtbl.replace matched m cell;
          let node = Rmi_runtime.Fabric.node fabric m in
          Node.export node ~obj:0 ~meth:(m_accept ()) ~has_ret:false (fun args ->
              let id, candidate = prog_of_value args.(0) in
              if Isa.equivalent candidate params.target then
                cell := id :: !cell;
              None);
          Node.export node ~obj:0 ~meth:(m_results ()) ~has_ret:true (fun _ ->
              let ids = !cell in
              let a = Value.new_iarr (List.length ids) in
              List.iteri (fun i id -> a.Value.ia.(i) <- id) ids;
              Some (Value.Iarr a))
        done;
        let caller = Rmi_runtime.Fabric.node fabric 0 in
        (* stream the candidate space: the full length-3 space is tens
           of millions of programs, never materialized *)
        let candidates () =
          Seq.take params.max_candidates (Isa.enumerate ~max_len:params.max_len)
        in
        let count = ref 0 in
        Seq.iteri
          (fun id candidate ->
            incr count;
            let dest =
              Rmi_runtime.Remote_ref.make
                ~machine:(App_common.place ~key:id ~machines)
                ~obj:0
            in
            ignore
              (Node.call caller ~dest ~meth:(m_accept ()) ~callsite:accept_site
                 ~has_ret:false
                 [| value_of_prog ~id candidate |]))
          (candidates ());
        (* collect matched ids from every tester *)
        let ids =
          List.concat_map
            (fun m ->
              let dest = Rmi_runtime.Remote_ref.make ~machine:m ~obj:0 in
              match
                Node.call caller ~dest ~meth:(m_results ())
                  ~callsite:results_site ~has_ret:true [||]
              with
              | Some (Value.Iarr a) -> Array.to_list a.Value.ia
              | _ -> failwith "superopt: bad results")
            (List.init machines Fun.id)
        in
        let wanted = List.sort_uniq compare ids in
        (* recover the matched programs by re-enumerating (Seq is pure) *)
        let matched = ref [] in
        (match wanted with
        | [] -> ()
        | _ ->
            let max_id = List.fold_left max 0 wanted in
            Seq.iteri
              (fun id candidate ->
                if id <= max_id && List.mem id wanted then
                  matched := (id, candidate) :: !matched)
              (Seq.take (max_id + 1) (candidates ())));
        (!count, List.map snd (List.sort compare !matched)))
  in
  { wall_seconds = wall; stats; candidates_tested = tested; matches }
