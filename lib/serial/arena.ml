module Metrics = Rmi_stats.Metrics

(* OCaml cannot region-allocate ordinary heap blocks, so the "arena" is
   a set of shape-keyed recycling pools: every node the decoder asks for
   is logged as live, and [reset] returns the whole live set to the
   pools in one sweep.  Steady state on a stable call site is therefore
   allocation-free — the generalization of the paper's per-position
   argument reuse to arbitrary (varying-shape) argument graphs, made
   sound by the escape analysis verdict that licenses the reset. *)

type 'a pool = { mutable items : 'a array; mutable len : int }

(* beyond this many parked nodes per shape the pool stops growing and
   lets the GC take the surplus — a backstop against a workload that
   decodes one giant graph once *)
let max_pooled_per_shape = 4096

let pool_make () = { items = [||]; len = 0 }

let pool_push p x =
  if p.len < max_pooled_per_shape then begin
    if p.len >= Array.length p.items then begin
      let fresh = Array.make (max 16 (2 * Array.length p.items)) x in
      Array.blit p.items 0 fresh 0 p.len;
      p.items <- fresh
    end;
    p.items.(p.len) <- x;
    p.len <- p.len + 1
  end

type t = {
  metrics : Metrics.t;
  free_objs : (int, Value.obj pool) Hashtbl.t;  (* key: cls * 2^16 + nfields *)
  free_darrs : (int, Value.darr pool) Hashtbl.t;  (* key: length *)
  free_iarrs : (int, Value.iarr pool) Hashtbl.t;
  free_rarrs : (int, Value.rarr pool) Hashtbl.t;  (* key: length; relem checked *)
  live_objs : Value.obj pool;
  live_darrs : Value.darr pool;
  live_iarrs : Value.iarr pool;
  live_rarrs : Value.rarr pool;
}

let create ~metrics =
  {
    metrics;
    free_objs = Hashtbl.create 16;
    free_darrs = Hashtbl.create 16;
    free_iarrs = Hashtbl.create 16;
    free_rarrs = Hashtbl.create 16;
    live_objs = pool_make ();
    live_darrs = pool_make ();
    live_iarrs = pool_make ();
    live_rarrs = pool_make ();
  }

(* allocation-free on the hit path: Hashtbl.find via exception, no
   option boxing *)
let take tbl key =
  match Hashtbl.find tbl key with
  | exception Not_found -> None
  | p ->
      if p.len = 0 then None
      else begin
        p.len <- p.len - 1;
        Some p.items.(p.len)
      end

let park tbl key x =
  let p =
    match Hashtbl.find tbl key with
    | exception Not_found ->
        let p = pool_make () in
        Hashtbl.add tbl key p;
        p
    | p -> p
  in
  pool_push p x

let obj_key cls nfields = (cls lsl 16) lor (nfields land 0xffff)

let obj t ~cls ~nfields =
  Metrics.incr_arena_allocs t.metrics;
  let o =
    if nfields > 0xffff then begin
      Metrics.incr_arena_fallbacks t.metrics;
      Value.new_obj ~cls ~nfields
    end
    else
      match take t.free_objs (obj_key cls nfields) with
      | Some o -> o
      | None ->
          Metrics.incr_arena_fallbacks t.metrics;
          Value.new_obj ~cls ~nfields
  in
  pool_push t.live_objs o;
  o

let darr t n =
  Metrics.incr_arena_allocs t.metrics;
  let a =
    match take t.free_darrs n with
    | Some a -> a
    | None ->
        Metrics.incr_arena_fallbacks t.metrics;
        Value.new_darr n
  in
  pool_push t.live_darrs a;
  a

let iarr t n =
  Metrics.incr_arena_allocs t.metrics;
  let a =
    match take t.free_iarrs n with
    | Some a -> a
    | None ->
        Metrics.incr_arena_fallbacks t.metrics;
        Value.new_iarr n
  in
  pool_push t.live_iarrs a;
  a

let rarr t relem n =
  Metrics.incr_arena_allocs t.metrics;
  let a =
    match take t.free_rarrs n with
    | Some a when Jir.Types.equal_ty a.Value.relem relem -> a
    | Some _ | None ->
        (* a popped array with the wrong element type is dropped to the
           GC rather than re-parked (re-parking could starve the pool
           behind a permanently mismatched head) *)
        Metrics.incr_arena_fallbacks t.metrics;
        Value.new_rarr relem n
  in
  pool_push t.live_rarrs a;
  a

let live t =
  t.live_objs.len + t.live_darrs.len + t.live_iarrs.len + t.live_rarrs.len

let pooled t =
  let sum tbl = Hashtbl.fold (fun _ p acc -> acc + p.len) tbl 0 in
  sum t.free_objs + sum t.free_darrs + sum t.free_iarrs + sum t.free_rarrs

let reset t =
  Metrics.incr_arena_resets t.metrics;
  for i = 0 to t.live_objs.len - 1 do
    let o = t.live_objs.items.(i) in
    park t.free_objs (obj_key o.Value.cls (Array.length o.Value.fields)) o
  done;
  t.live_objs.len <- 0;
  for i = 0 to t.live_darrs.len - 1 do
    let a = t.live_darrs.items.(i) in
    park t.free_darrs (Array.length a.Value.d) a
  done;
  t.live_darrs.len <- 0;
  for i = 0 to t.live_iarrs.len - 1 do
    let a = t.live_iarrs.items.(i) in
    park t.free_iarrs (Array.length a.Value.ia) a
  done;
  t.live_iarrs.len <- 0;
  for i = 0 to t.live_rarrs.len - 1 do
    let a = t.live_rarrs.items.(i) in
    park t.free_rarrs (Array.length a.Value.ra) a
  done;
  t.live_rarrs.len <- 0
