(** Serialization engine.

    One module covers the paper's two serializer families:

    - {b dynamic} ([write_dyn]/[read_dyn]): the per-class generated
      serializers of KaRMI/Manta ("class" in the tables).  Every heap
      value is preceded by a compact wire type tag, every (de)serializer
      entry counts as a dynamic invocation, and the cycle handle-table
      is consulted per reference when enabled.
    - {b plan-driven} ([write_step]/[read_step]): the call-site
      specialized marshalers ("site").  Steps proven by the compiler
      are inlined — no type tags, no dispatch accounting; only
      {!Rmi_core.Plan.S_dyn} positions fall back to the dynamic path.

    Writer and reader contexts agree on whether a cycle table is in
    use; the marshaling engine derives that flag identically on both
    sides from the plan and the optimization configuration.

    Reading takes a {e reuse candidate} — the object graph deserialized
    by the previous call at this site.  Where the candidate's shape
    matches the incoming data it is overwritten in place (counted as
    reused objects); everywhere else fresh allocations are counted with
    their byte sizes, feeding the paper's "new MBytes" statistic. *)

exception Type_confusion of string
(** An inlined plan step met a value of a different class — i.e. the
    static analysis promised a shape the runtime did not deliver. *)

type wctx
type rctx

(** [wctx ~cycle] allocates the cycle handle-table iff [cycle].
    [defs] is the plan's recursive-step definition table (needed when
    the steps contain {!Rmi_core.Plan.S_ref}). *)
val make_wctx :
  ?defs:Rmi_core.Plan.step array ->
  Class_meta.t -> Rmi_stats.Metrics.t -> cycle:bool -> wctx

(** [make_rctx ?arena] — when an arena is supplied, every Value node the
    context materializes is drawn from (and logged in) the arena's
    recycling pools instead of the GC heap; the paper-statistic counters
    are charged identically either way, so published tables are
    untouched.  The caller resets the arena between dispatches when the
    plan's [non_escaping] bit licenses it.  Reuse candidates must be
    [Null] under an arena: the two recycling schemes alias if mixed. *)
val make_rctx :
  ?defs:Rmi_core.Plan.step array ->
  ?arena:Arena.t ->
  Class_meta.t -> Rmi_stats.Metrics.t -> cycle:bool -> rctx

(** [reset_wctx w] clears the cycle handle-table (a no-op without one).
    Required before reusing a writer context whose previous write was
    aborted by {!Type_confusion}: the aborted write may have registered
    objects that never reached the wire, and a subsequent write would
    encode dangling handles for them.  The tiered runtime calls this
    before replaying a deoptimized call through the widened plan. *)
val reset_wctx : wctx -> unit

(** [reset_rctx r] forgets all registered handles, making a reader
    context safe to reuse for an unrelated message. *)
val reset_rctx : rctx -> unit

(** {1 Dynamic (class-specific) serializers} *)

val write_dyn : wctx -> Rmi_wire.Msgbuf.writer -> Value.t -> unit

(** [read_dyn rctx r ~cand] deserializes, recycling [cand] where
    possible ([Null] = no candidate). *)
val read_dyn : rctx -> Rmi_wire.Msgbuf.reader -> cand:Value.t -> Value.t

(** {1 Plan-driven (call-site specific) serializers} *)

val write_step : wctx -> Rmi_wire.Msgbuf.writer -> Rmi_core.Plan.step -> Value.t -> unit
val read_step :
  rctx -> Rmi_wire.Msgbuf.reader -> Rmi_core.Plan.step -> cand:Value.t -> Value.t

(** {1 Compiled plans}

    [compile_write]/[compile_read] partially evaluate a step tree into
    nested closures once — the runtime analogue of the paper's
    generated marshaler code (and of the partial-evaluation approach it
    cites): per call no step-tree interpretation remains, only direct
    calls.  Semantics are identical to {!write_step}/{!read_step}
    (checked by a differential property test). *)

val compile_write :
  defs:Rmi_core.Plan.step array ->
  Rmi_core.Plan.step ->
  wctx -> Rmi_wire.Msgbuf.writer -> Value.t -> unit

val compile_read :
  defs:Rmi_core.Plan.step array ->
  Rmi_core.Plan.step ->
  rctx -> Rmi_wire.Msgbuf.reader -> cand:Value.t -> Value.t
