(** Region-style backing store for deserialized argument graphs.

    A decode context pointed at an arena draws every Value node it
    materializes from shape-keyed recycling pools (objects keyed by
    class and field count, arrays by length) and logs it as live; when
    the served method returns — and the {!Rmi_core.Plan.t.non_escaping}
    escape-analysis verdict proves no argument outlived the call —
    {!reset} reclaims the whole live set wholesale, parking every node
    for the next request.  Steady state on a stable call site decodes
    without touching the GC heap at all.

    This generalizes the paper's per-position argument-reuse cache:
    reuse recycles the previous call's graph in place and degrades when
    shapes drift between calls; the arena recycles by shape, so a
    callsite alternating between (say) two matrix sizes still runs
    allocation-free once both shapes are pooled.

    Soundness is exactly the reuse cache's argument: a node may be
    scribbled over at the next call only if the callee cannot have
    retained a reference, which is what the escape analysis proves.
    Strings are immutable and never pooled; a pool miss or an
    element-type mismatch falls back to the GC heap (counted as
    [arena_fallbacks]). *)

type t

val create : metrics:Rmi_stats.Metrics.t -> t

(** Allocators mirror {!Value.new_obj} etc.; contents of a recycled
    node are unspecified — callers must overwrite every field/element,
    which plan-driven decoding does by construction. *)

val obj : t -> cls:Jir.Types.class_id -> nfields:int -> Value.obj

val darr : t -> int -> Value.darr
val iarr : t -> int -> Value.iarr
val rarr : t -> Jir.Types.ty -> int -> Value.rarr

(** Nodes handed out since the last {!reset}. *)
val live : t -> int

(** Nodes currently parked in the free pools. *)
val pooled : t -> int

(** Return every live node to its shape pool.  Sound only when the
    caller can prove none of them is still referenced — the
    [non_escaping] plan bit. *)
val reset : t -> unit
