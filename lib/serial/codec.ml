open Rmi_wire
module Metrics = Rmi_stats.Metrics
module Plan = Rmi_core.Plan

exception Type_confusion of string

type wctx = {
  wmeta : Class_meta.t;
  wmetrics : Metrics.t;
  wcycle : int Handle_table.t option;  (* object identity -> wire handle *)
  wdefs : Plan.step array;  (* S_ref definitions *)
}

type rctx = {
  rmeta : Class_meta.t;
  rmetrics : Metrics.t;
  rcycle : bool;
  rdefs : Plan.step array;
  arena : Arena.t option;
      (* backing store for decoded nodes; [None] = GC heap (legacy) *)
  mutable handles : Value.t array;
  mutable nhandles : int;
}

let make_wctx ?(defs = [||]) wmeta wmetrics ~cycle =
  {
    wmeta;
    wmetrics;
    wcycle = (if cycle then Some (Handle_table.create ~metrics:wmetrics ()) else None);
    wdefs = defs;
  }

(* An aborted write (Type_confusion mid-serialization) leaves objects
   registered in the cycle table that never reached the wire; a reused
   context would then emit dangling handles.  Resetting makes a writer
   context safe to reuse after the exception. *)
let reset_wctx wctx =
  match wctx.wcycle with
  | Some table -> Handle_table.reset table
  | None -> ()

let reset_rctx rctx = rctx.nhandles <- 0

let make_rctx ?(defs = [||]) ?arena rmeta rmetrics ~cycle =
  {
    rmeta;
    rmetrics;
    rcycle = cycle;
    rdefs = defs;
    arena;
    handles = Array.make 16 Value.Null;
    nhandles = 0;
  }

let register_handle rctx v =
  if rctx.rcycle then begin
    if rctx.nhandles >= Array.length rctx.handles then begin
      let fresh = Array.make (2 * Array.length rctx.handles) Value.Null in
      Array.blit rctx.handles 0 fresh 0 rctx.nhandles;
      rctx.handles <- fresh
    end;
    rctx.handles.(rctx.nhandles) <- v;
    rctx.nhandles <- rctx.nhandles + 1;
    (* the deserializer pays hash/handle maintenance too *)
    Metrics.add_cycle_lookups rctx.rmetrics 1
  end

let handle_value rctx idx =
  if idx < 0 || idx >= rctx.nhandles then
    raise (Msgbuf.Underflow (Printf.sprintf "bad handle %d" idx));
  Metrics.add_cycle_lookups rctx.rmetrics 1;
  rctx.handles.(idx)

(* account a fresh allocation made by deserialization *)
let charge_alloc rctx v =
  Metrics.incr_allocs rctx.rmetrics;
  Metrics.add_new_bytes rctx.rmetrics
    (match v with
    | Value.Str s -> 16 + String.length s
    | Value.Obj o -> 16 + (8 * Array.length o.fields)
    | Value.Darr a -> 16 + (8 * Array.length a.d)
    | Value.Iarr a -> 16 + (8 * Array.length a.ia)
    | Value.Rarr a -> 16 + (8 * Array.length a.ra)
    | Value.Null | Value.Bool _ | Value.Int _ | Value.Double _ -> 0)

let charge_reuse rctx = Metrics.add_reused_objs rctx.rmetrics 1

(* Fresh-node constructors for the decode path: drawn from the arena's
   recycling pools when one is attached, from the GC heap otherwise.
   Both paths charge the paper-statistic counters identically — the
   arena substitutes the allocator, not the plan-level accounting, so
   every published table is untouched; the arena's own effect is told
   by the arena_* counters and by real [Gc.minor_words] in the [alloc]
   experiment. *)
let alloc_obj rctx ~cls ~nfields =
  let o =
    match rctx.arena with
    | Some a -> Arena.obj a ~cls ~nfields
    | None -> Value.new_obj ~cls ~nfields
  in
  charge_alloc rctx (Value.Obj o);
  o

let alloc_darr rctx n =
  let a =
    match rctx.arena with
    | Some a -> Arena.darr a n
    | None -> Value.new_darr n
  in
  charge_alloc rctx (Value.Darr a);
  a

let alloc_iarr rctx n =
  let a =
    match rctx.arena with
    | Some a -> Arena.iarr a n
    | None -> Value.new_iarr n
  in
  charge_alloc rctx (Value.Iarr a);
  a

let alloc_rarr rctx relem n =
  let a =
    match rctx.arena with
    | Some a -> Arena.rarr a relem n
    | None -> Value.new_rarr relem n
  in
  charge_alloc rctx (Value.Rarr a);
  a

(* Reject corrupt/hostile lengths before allocating: every element
   needs at least [unit] bytes of payload still in the buffer.  Plans
   can legitimately encode elements in zero bytes (statically-null
   element steps), in which case only an absolute cap applies. *)
let max_zero_width_len = 1 lsl 24

let checked_len r n ~unit what =
  let bad =
    n < 0
    ||
    if unit = 0 then n > max_zero_width_len
    else n > Msgbuf.remaining r / unit (* division avoids overflow *)
  in
  if bad then raise (Msgbuf.Underflow (Printf.sprintf "%s: bad length %d" what n));
  n

(* minimum wire bytes one element of this step occupies *)
let step_min_width : Plan.step -> int = function
  | Plan.S_null -> 0
  | Plan.S_ref _ -> 1 (* a marker byte at least *)
  | Plan.S_bool | Plan.S_string | Plan.S_obj _ | Plan.S_double_array
  | Plan.S_int_array | Plan.S_obj_array _ | Plan.S_flat_array _ | Plan.S_dyn
  | Plan.S_int ->
      1
  | Plan.S_double -> 8

let charge_tag wctx n = Metrics.add_type_bytes wctx.wmetrics n

(* serializer-side cycle check: Some handle if already sent *)
let check_seen wctx v =
  match (wctx.wcycle, Value.identity v) with
  | Some table, Some id -> (
      match Handle_table.lookup table id with
      | Some h -> Some h
      | None ->
          Handle_table.add table id (Handle_table.next_handle table);
          None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* dynamic (class-specific) serializer                                 *)
(* ------------------------------------------------------------------ *)

let rec write_dyn wctx w (v : Value.t) =
  match v with
  | Value.Null -> charge_tag wctx (Typedesc.write_tag w Typedesc.Tag_null)
  | Value.Bool b ->
      charge_tag wctx (Typedesc.write_tag w Typedesc.Tag_bool);
      Msgbuf.write_bool w b
  | Value.Int i ->
      charge_tag wctx (Typedesc.write_tag w Typedesc.Tag_int);
      Msgbuf.write_varint w i
  | Value.Double f ->
      charge_tag wctx (Typedesc.write_tag w Typedesc.Tag_double);
      Msgbuf.write_double w f
  | Value.Str s ->
      charge_tag wctx (Typedesc.write_tag w Typedesc.Tag_string);
      Msgbuf.write_string w s
  | Value.Obj o -> (
      match check_seen wctx v with
      | Some h ->
          charge_tag wctx (Typedesc.write_tag w Typedesc.Tag_handle);
          Msgbuf.write_uvarint w h
      | None ->
          (* one dynamic call into the per-class serializer *)
          Metrics.incr_ser_invocations wctx.wmetrics;
          charge_tag wctx
            (Typedesc.write_tag w
               (Typedesc.Tag_object (Class_meta.wire_id wctx.wmeta o.cls)));
          Array.iter (write_dyn wctx w) o.fields)
  | Value.Darr a -> (
      match check_seen wctx v with
      | Some h ->
          charge_tag wctx (Typedesc.write_tag w Typedesc.Tag_handle);
          Msgbuf.write_uvarint w h
      | None ->
          Metrics.incr_ser_invocations wctx.wmetrics;
          charge_tag wctx (Typedesc.write_tag w Typedesc.Tag_double_array);
          Msgbuf.write_uvarint w (Array.length a.d);
          Msgbuf.write_double_slice w a.d 0 (Array.length a.d))
  | Value.Iarr a -> (
      match check_seen wctx v with
      | Some h ->
          charge_tag wctx (Typedesc.write_tag w Typedesc.Tag_handle);
          Msgbuf.write_uvarint w h
      | None ->
          Metrics.incr_ser_invocations wctx.wmetrics;
          charge_tag wctx (Typedesc.write_tag w Typedesc.Tag_int_array);
          Msgbuf.write_uvarint w (Array.length a.ia);
          Msgbuf.write_int_slice w a.ia 0 (Array.length a.ia))
  | Value.Rarr a -> (
      match check_seen wctx v with
      | Some h ->
          charge_tag wctx (Typedesc.write_tag w Typedesc.Tag_handle);
          Msgbuf.write_uvarint w h
      | None ->
          Metrics.incr_ser_invocations wctx.wmetrics;
          let before = Msgbuf.length w in
          ignore (Typedesc.write_tag w (Typedesc.Tag_obj_array 0));
          Class_meta.write_ty wctx.wmeta w a.relem;
          charge_tag wctx (Msgbuf.length w - before);
          Msgbuf.write_uvarint w (Array.length a.ra);
          Array.iter (write_dyn wctx w) a.ra)

let rec read_dyn rctx r ~(cand : Value.t) : Value.t =
  match Typedesc.read_tag r with
  | Typedesc.Tag_null -> Value.Null
  | Typedesc.Tag_bool -> Value.Bool (Msgbuf.read_bool r)
  | Typedesc.Tag_int -> Value.Int (Msgbuf.read_varint r)
  | Typedesc.Tag_double -> Value.Double (Msgbuf.read_double r)
  | Typedesc.Tag_string ->
      let v = Value.Str (Msgbuf.read_string r) in
      charge_alloc rctx v;
      v
  | Typedesc.Tag_handle -> handle_value rctx (Msgbuf.read_uvarint r)
  | Typedesc.Tag_object wire_id ->
      let cls = (Class_meta.of_wire_id rctx.rmeta wire_id).Class_meta.cid in
      let nfields =
        Array.length (Class_meta.cls rctx.rmeta cls).Class_meta.fields
      in
      let target, cand_fields =
        match cand with
        | Value.Obj o when o.cls = cls && Array.length o.fields = nfields ->
            charge_reuse rctx;
            (o, Some (Array.copy o.fields))
        | _ ->
            (alloc_obj rctx ~cls ~nfields, None)
      in
      register_handle rctx (Value.Obj target);
      for i = 0 to nfields - 1 do
        let fc = match cand_fields with Some c -> c.(i) | None -> Value.Null in
        target.fields.(i) <- read_dyn rctx r ~cand:fc
      done;
      Value.Obj target
  | Typedesc.Tag_double_array ->
      let n = checked_len r (Msgbuf.read_uvarint r) ~unit:8 "double[]" in
      let target =
        match cand with
        | Value.Darr a when Array.length a.d = n ->
            charge_reuse rctx;
            a
        | _ ->
            alloc_darr rctx n
      in
      register_handle rctx (Value.Darr target);
      Msgbuf.read_double_slice r target.d 0 n;
      Value.Darr target
  | Typedesc.Tag_int_array ->
      let n = checked_len r (Msgbuf.read_uvarint r) ~unit:1 "int[]" in
      let target =
        match cand with
        | Value.Iarr a when Array.length a.ia = n ->
            charge_reuse rctx;
            a
        | _ ->
            alloc_iarr rctx n
      in
      register_handle rctx (Value.Iarr target);
      Msgbuf.read_int_slice r target.ia 0 n;
      Value.Iarr target
  | Typedesc.Tag_obj_array _ ->
      let relem = Class_meta.read_ty rctx.rmeta r in
      let n = checked_len r (Msgbuf.read_uvarint r) ~unit:1 "object[]" in
      let target, cand_elems =
        match cand with
        | Value.Rarr a
          when Array.length a.ra = n && Jir.Types.equal_ty a.relem relem ->
            charge_reuse rctx;
            (a, Some (Array.copy a.ra))
        | _ ->
            (alloc_rarr rctx relem n, None)
      in
      register_handle rctx (Value.Rarr target);
      for i = 0 to n - 1 do
        let ec = match cand_elems with Some c -> c.(i) | None -> Value.Null in
        target.ra.(i) <- read_dyn rctx r ~cand:ec
      done;
      Value.Rarr target

(* ------------------------------------------------------------------ *)
(* plan-driven (call-site specific) serializer                         *)
(* ------------------------------------------------------------------ *)

(* reference markers for inlined steps: no type information, just
   presence — and a handle when the cycle table is active *)
let m_null = 0
let m_inline = 1
let m_handle = 2

let confusion what v =
  raise
    (Type_confusion
       (Printf.sprintf "%s: got %s" what
          (match v with
          | Value.Null -> "null"
          | Value.Bool _ -> "bool"
          | Value.Int _ -> "int"
          | Value.Double _ -> "double"
          | Value.Str _ -> "string"
          | Value.Obj o -> Printf.sprintf "object(cls %d)" o.cls
          | Value.Darr _ -> "double[]"
          | Value.Iarr _ -> "int[]"
          | Value.Rarr _ -> "object[]")))

(* write the 0/1/2 marker; returns true when the body must follow *)
let write_ref_marker wctx w v =
  match v with
  | Value.Null ->
      Msgbuf.write_u8 w m_null;
      false
  | _ -> (
      match check_seen wctx v with
      | Some h ->
          Msgbuf.write_u8 w m_handle;
          Msgbuf.write_uvarint w h;
          false
      | None ->
          Msgbuf.write_u8 w m_inline;
          true)

(* Struct-of-arrays encoding for a rectangular array of scalar arrays:
   rows, cols, then one contiguous row-major payload — no per-row
   marker, length or handle.  The static promise is strict (every row a
   non-null scalar array of the same length); any violation raises
   [Type_confusion] so the plan deoptimizes through the widen
   machinery, exactly like a class-shape violation on [S_obj]. *)
let write_flat _wctx w (felem : Plan.flat_elem) (a : Value.rarr) =
  let rows = Array.length a.Value.ra in
  Msgbuf.write_uvarint w rows;
  match felem with
  | Plan.F_darr ->
      let cols =
        if rows = 0 then 0
        else
          match a.Value.ra.(0) with
          | Value.Darr r -> Array.length r.Value.d
          | v -> confusion "S_flat_array(double) row" v
      in
      Msgbuf.write_uvarint w cols;
      for i = 0 to rows - 1 do
        match a.Value.ra.(i) with
        | Value.Darr r when Array.length r.Value.d = cols ->
            Msgbuf.write_double_slice w r.Value.d 0 cols
        | v -> confusion "S_flat_array(double) row" v
      done
  | Plan.F_iarr ->
      let cols =
        if rows = 0 then 0
        else
          match a.Value.ra.(0) with
          | Value.Iarr r -> Array.length r.Value.ia
          | v -> confusion "S_flat_array(int) row" v
      in
      Msgbuf.write_uvarint w cols;
      for i = 0 to rows - 1 do
        match a.Value.ra.(i) with
        | Value.Iarr r when Array.length r.Value.ia = cols ->
            Msgbuf.write_int_slice w r.Value.ia 0 cols
        | v -> confusion "S_flat_array(int) row" v
      done

let rec write_step wctx w (step : Plan.step) (v : Value.t) =
  match (step, v) with
  | Plan.S_bool, Value.Bool b -> Msgbuf.write_bool w b
  | Plan.S_int, Value.Int i -> Msgbuf.write_varint w i
  | Plan.S_double, Value.Double f -> Msgbuf.write_double w f
  | Plan.S_string, Value.Null -> Msgbuf.write_u8 w m_null
  | Plan.S_string, Value.Str s ->
      Msgbuf.write_u8 w m_inline;
      Msgbuf.write_string w s
  | Plan.S_null, Value.Null -> ()
  | Plan.S_dyn, v -> write_dyn wctx w v
  | Plan.S_ref d, v -> write_step wctx w wctx.wdefs.(d) v
  | Plan.S_obj { cls; fields }, v ->
      if write_ref_marker wctx w v then begin
        match v with
        | Value.Obj o when o.cls = cls ->
            Array.iteri (fun i s -> write_step wctx w s o.fields.(i)) fields
        | _ -> confusion (Printf.sprintf "S_obj(cls %d)" cls) v
      end
  | Plan.S_double_array, v ->
      if write_ref_marker wctx w v then begin
        match v with
        | Value.Darr a ->
            Msgbuf.write_uvarint w (Array.length a.d);
            Msgbuf.write_double_slice w a.d 0 (Array.length a.d)
        | _ -> confusion "S_double_array" v
      end
  | Plan.S_int_array, v ->
      if write_ref_marker wctx w v then begin
        match v with
        | Value.Iarr a ->
            Msgbuf.write_uvarint w (Array.length a.ia);
            Msgbuf.write_int_slice w a.ia 0 (Array.length a.ia)
        | _ -> confusion "S_int_array" v
      end
  | Plan.S_obj_array { elem }, v ->
      if write_ref_marker wctx w v then begin
        match v with
        | Value.Rarr a ->
            Msgbuf.write_uvarint w (Array.length a.ra);
            Array.iter (write_step wctx w elem) a.ra
        | _ -> confusion "S_obj_array" v
      end
  | Plan.S_flat_array { felem }, v ->
      if write_ref_marker wctx w v then begin
        match v with
        | Value.Rarr a -> write_flat wctx w felem a
        | _ -> confusion "S_flat_array" v
      end
  | (Plan.S_bool | Plan.S_int | Plan.S_double | Plan.S_null | Plan.S_string), v
    ->
      confusion "primitive step" v

(* best-effort static element type of a step, for fresh array allocation *)
let rec ty_of_step : Plan.step -> Jir.Types.ty = function
  | Plan.S_bool -> Jir.Types.Tbool
  | Plan.S_int -> Jir.Types.Tint
  | Plan.S_double -> Jir.Types.Tdouble
  | Plan.S_string -> Jir.Types.Tstring
  | Plan.S_obj { cls; _ } -> Jir.Types.Tobject cls
  | Plan.S_double_array -> Jir.Types.Tarray Jir.Types.Tdouble
  | Plan.S_int_array -> Jir.Types.Tarray Jir.Types.Tint
  | Plan.S_obj_array { elem } -> Jir.Types.Tarray (ty_of_step elem)
  | Plan.S_flat_array { felem = Plan.F_darr } ->
      Jir.Types.Tarray (Jir.Types.Tarray Jir.Types.Tdouble)
  | Plan.S_flat_array { felem = Plan.F_iarr } ->
      Jir.Types.Tarray (Jir.Types.Tarray Jir.Types.Tint)
  | Plan.S_null | Plan.S_dyn | Plan.S_ref _ -> Jir.Types.Tvoid

let flat_elem_ty = function
  | Plan.F_darr -> Jir.Types.Tarray Jir.Types.Tdouble
  | Plan.F_iarr -> Jir.Types.Tarray Jir.Types.Tint

(* Decode a flat-encoded matrix: two varints, one shape check, then raw
   row-major slices — no per-row marker, tag or handle bookkeeping.
   The candidate is only consulted on the legacy heap path: under an
   arena the previous call's rows already sit in the shape pools (the
   allocators below pop them back out), and reusing them in place as
   well would alias one node into two roles. *)
let read_flat rctx r (felem : Plan.flat_elem) ~(cand : Value.t) : Value.t =
  let rows = checked_len r (Msgbuf.read_uvarint r) ~unit:0 "flat[][] rows" in
  let cols = checked_len r (Msgbuf.read_uvarint r) ~unit:0 "flat[][] cols" in
  let unit = match felem with Plan.F_darr -> 8 | Plan.F_iarr -> 1 in
  (* one bounds check for the whole matrix *)
  if cols > 0 && rows > Msgbuf.remaining r / (cols * unit) then
    raise
      (Msgbuf.Underflow (Printf.sprintf "flat[][]: bad shape %dx%d" rows cols));
  let in_place = rctx.arena = None in
  let target =
    match cand with
    | Value.Rarr a
      when in_place
           && Array.length a.Value.ra = rows
           && Jir.Types.equal_ty a.Value.relem (flat_elem_ty felem) ->
        charge_reuse rctx;
        a
    | _ -> alloc_rarr rctx (flat_elem_ty felem) rows
  in
  register_handle rctx (Value.Rarr target);
  (match felem with
  | Plan.F_darr ->
      for i = 0 to rows - 1 do
        let row =
          match target.Value.ra.(i) with
          | Value.Darr d when in_place && Array.length d.Value.d = cols ->
              charge_reuse rctx;
              d
          | _ -> alloc_darr rctx cols
        in
        Msgbuf.read_double_slice r row.Value.d 0 cols;
        target.Value.ra.(i) <- Value.Darr row
      done
  | Plan.F_iarr ->
      for i = 0 to rows - 1 do
        let row =
          match target.Value.ra.(i) with
          | Value.Iarr d when in_place && Array.length d.Value.ia = cols ->
              charge_reuse rctx;
              d
          | _ -> alloc_iarr rctx cols
        in
        Msgbuf.read_int_slice r row.Value.ia 0 cols;
        target.Value.ra.(i) <- Value.Iarr row
      done);
  Value.Rarr target

let read_ref_marker rctx r =
  match Msgbuf.read_u8 r with
  | 0 -> `Null
  | 1 -> `Inline
  | 2 -> `Handle (handle_value rctx (Msgbuf.read_uvarint r))
  | n -> raise (Msgbuf.Underflow (Printf.sprintf "bad ref marker %d" n))

let rec read_step rctx r (step : Plan.step) ~(cand : Value.t) : Value.t =
  match step with
  | Plan.S_bool -> Value.Bool (Msgbuf.read_bool r)
  | Plan.S_int -> Value.Int (Msgbuf.read_varint r)
  | Plan.S_double -> Value.Double (Msgbuf.read_double r)
  | Plan.S_string -> (
      match Msgbuf.read_u8 r with
      | 0 -> Value.Null
      | 1 ->
          let v = Value.Str (Msgbuf.read_string r) in
          charge_alloc rctx v;
          v
      | n -> raise (Msgbuf.Underflow (Printf.sprintf "bad string marker %d" n)))
  | Plan.S_null -> Value.Null
  | Plan.S_dyn -> read_dyn rctx r ~cand
  | Plan.S_ref d -> read_step rctx r rctx.rdefs.(d) ~cand
  | Plan.S_obj { cls; fields } -> (
      match read_ref_marker rctx r with
      | `Null -> Value.Null
      | `Handle v -> v
      | `Inline ->
          let nfields = Array.length fields in
          let target, cand_fields =
            match cand with
            | Value.Obj o when o.cls = cls && Array.length o.fields = nfields ->
                charge_reuse rctx;
                (o, Some (Array.copy o.fields))
            | _ ->
                (alloc_obj rctx ~cls ~nfields, None)
          in
          register_handle rctx (Value.Obj target);
          Array.iteri
            (fun i s ->
              let fc =
                match cand_fields with Some c -> c.(i) | None -> Value.Null
              in
              target.fields.(i) <- read_step rctx r s ~cand:fc)
            fields;
          Value.Obj target)
  | Plan.S_double_array -> (
      match read_ref_marker rctx r with
      | `Null -> Value.Null
      | `Handle v -> v
      | `Inline ->
          let n = checked_len r (Msgbuf.read_uvarint r) ~unit:8 "double[]" in
          let target =
            match cand with
            | Value.Darr a when Array.length a.d = n ->
                charge_reuse rctx;
                a
            | _ ->
                alloc_darr rctx n
          in
          register_handle rctx (Value.Darr target);
          Msgbuf.read_double_slice r target.d 0 n;
          Value.Darr target)
  | Plan.S_int_array -> (
      match read_ref_marker rctx r with
      | `Null -> Value.Null
      | `Handle v -> v
      | `Inline ->
          let n = checked_len r (Msgbuf.read_uvarint r) ~unit:1 "int[]" in
          let target =
            match cand with
            | Value.Iarr a when Array.length a.ia = n ->
                charge_reuse rctx;
                a
            | _ ->
                alloc_iarr rctx n
          in
          register_handle rctx (Value.Iarr target);
          Msgbuf.read_int_slice r target.ia 0 n;
          Value.Iarr target)
  | Plan.S_obj_array { elem } -> (
      match read_ref_marker rctx r with
      | `Null -> Value.Null
      | `Handle v -> v
      | `Inline ->
          let n =
            checked_len r (Msgbuf.read_uvarint r) ~unit:(step_min_width elem)
              "object[]"
          in
          let target, cand_elems =
            match cand with
            | Value.Rarr a when Array.length a.ra = n ->
                charge_reuse rctx;
                (a, Some (Array.copy a.ra))
            | _ -> (alloc_rarr rctx (ty_of_step elem) n, None)
          in
          register_handle rctx (Value.Rarr target);
          for i = 0 to n - 1 do
            let ec =
              match cand_elems with Some c -> c.(i) | None -> Value.Null
            in
            target.ra.(i) <- read_step rctx r elem ~cand:ec
          done;
          Value.Rarr target)
  | Plan.S_flat_array { felem } -> (
      match read_ref_marker rctx r with
      | `Null -> Value.Null
      | `Handle v -> v
      | `Inline -> read_flat rctx r felem ~cand)

(* ------------------------------------------------------------------ *)
(* compiled plans: partial evaluation of the step tree into closures   *)
(* ------------------------------------------------------------------ *)

let rec compile_write_in cache ~defs (step : Plan.step) :
    wctx -> Msgbuf.writer -> Value.t -> unit =
  match step with
  | Plan.S_bool -> (
      fun _ w v ->
        match v with
        | Value.Bool b -> Msgbuf.write_bool w b
        | v -> confusion "S_bool" v)
  | Plan.S_int -> (
      fun _ w v ->
        match v with
        | Value.Int i -> Msgbuf.write_varint w i
        | v -> confusion "S_int" v)
  | Plan.S_double -> (
      fun _ w v ->
        match v with
        | Value.Double f -> Msgbuf.write_double w f
        | v -> confusion "S_double" v)
  | Plan.S_string -> (
      fun _ w v ->
        match v with
        | Value.Null -> Msgbuf.write_u8 w m_null
        | Value.Str s ->
            Msgbuf.write_u8 w m_inline;
            Msgbuf.write_string w s
        | v -> confusion "S_string" v)
  | Plan.S_null -> (
      fun _ _ v -> match v with Value.Null -> () | v -> confusion "S_null" v)
  | Plan.S_dyn -> fun wctx w v -> write_dyn wctx w v
  | Plan.S_ref d -> (
      match Hashtbl.find_opt cache d with
      | Some cell -> fun wctx w v -> !cell wctx w v
      | None ->
          let cell = ref (fun _ _ _ -> assert false) in
          Hashtbl.add cache d cell;
          let compiled = compile_write_in cache ~defs defs.(d) in
          cell := compiled;
          fun wctx w v -> !cell wctx w v)
  | Plan.S_obj { cls; fields } ->
      let compiled_fields =
        Array.map (compile_write_in cache ~defs) fields
      in
      let nfields = Array.length compiled_fields in
      fun wctx w v ->
        if write_ref_marker wctx w v then begin
          match v with
          | Value.Obj o when o.cls = cls && Array.length o.fields = nfields ->
              for i = 0 to nfields - 1 do
                compiled_fields.(i) wctx w o.fields.(i)
              done
          | v -> confusion (Printf.sprintf "S_obj(cls %d)" cls) v
        end
  | Plan.S_double_array -> (
      fun wctx w v ->
        if write_ref_marker wctx w v then
          match v with
          | Value.Darr a ->
              Msgbuf.write_uvarint w (Array.length a.d);
              Msgbuf.write_double_slice w a.d 0 (Array.length a.d)
          | v -> confusion "S_double_array" v)
  | Plan.S_int_array -> (
      fun wctx w v ->
        if write_ref_marker wctx w v then
          match v with
          | Value.Iarr a ->
              Msgbuf.write_uvarint w (Array.length a.ia);
              Msgbuf.write_int_slice w a.ia 0 (Array.length a.ia)
          | v -> confusion "S_int_array" v)
  | Plan.S_obj_array { elem } ->
      let compiled_elem = compile_write_in cache ~defs elem in
      fun wctx w v ->
        if write_ref_marker wctx w v then begin
          match v with
          | Value.Rarr a ->
              Msgbuf.write_uvarint w (Array.length a.ra);
              Array.iter (compiled_elem wctx w) a.ra
          | v -> confusion "S_obj_array" v
        end
  | Plan.S_flat_array { felem } -> (
      fun wctx w v ->
        if write_ref_marker wctx w v then
          match v with
          | Value.Rarr a -> write_flat wctx w felem a
          | v -> confusion "S_flat_array" v)

let compile_write ~defs step = compile_write_in (Hashtbl.create 4) ~defs step

let rec compile_read_in cache ~defs (step : Plan.step) :
    rctx -> Msgbuf.reader -> cand:Value.t -> Value.t =
  match step with
  | Plan.S_bool -> fun _ r ~cand:_ -> Value.Bool (Msgbuf.read_bool r)
  | Plan.S_int -> fun _ r ~cand:_ -> Value.Int (Msgbuf.read_varint r)
  | Plan.S_double -> fun _ r ~cand:_ -> Value.Double (Msgbuf.read_double r)
  | Plan.S_string -> (
      fun rctx r ~cand:_ ->
        match Msgbuf.read_u8 r with
        | 0 -> Value.Null
        | 1 ->
            let v = Value.Str (Msgbuf.read_string r) in
            charge_alloc rctx v;
            v
        | n -> raise (Msgbuf.Underflow (Printf.sprintf "bad string marker %d" n)))
  | Plan.S_null -> fun _ _ ~cand:_ -> Value.Null
  | Plan.S_dyn -> fun rctx r ~cand -> read_dyn rctx r ~cand
  | Plan.S_ref d -> (
      match Hashtbl.find_opt cache d with
      | Some cell -> fun rctx r ~cand -> !cell rctx r ~cand
      | None ->
          let cell = ref (fun _ _ ~cand:_ -> assert false) in
          Hashtbl.add cache d cell;
          let compiled = compile_read_in cache ~defs defs.(d) in
          cell := compiled;
          fun rctx r ~cand -> !cell rctx r ~cand)
  | Plan.S_obj { cls; fields } ->
      let compiled_fields = Array.map (compile_read_in cache ~defs) fields in
      let nfields = Array.length compiled_fields in
      fun rctx r ~cand -> (
        match read_ref_marker rctx r with
        | `Null -> Value.Null
        | `Handle v -> v
        | `Inline ->
            let target, cand_fields =
              match cand with
              | Value.Obj o when o.cls = cls && Array.length o.fields = nfields
                ->
                  charge_reuse rctx;
                  (o, Some (Array.copy o.fields))
              | _ ->
                  (alloc_obj rctx ~cls ~nfields, None)
            in
            register_handle rctx (Value.Obj target);
            for i = 0 to nfields - 1 do
              let fc =
                match cand_fields with Some c -> c.(i) | None -> Value.Null
              in
              target.fields.(i) <- compiled_fields.(i) rctx r ~cand:fc
            done;
            Value.Obj target)
  | Plan.S_double_array -> (
      fun rctx r ~cand ->
        match read_ref_marker rctx r with
        | `Null -> Value.Null
        | `Handle v -> v
        | `Inline ->
            let n = checked_len r (Msgbuf.read_uvarint r) ~unit:8 "double[]" in
            let target =
              match cand with
              | Value.Darr a when Array.length a.d = n ->
                  charge_reuse rctx;
                  a
              | _ ->
                  alloc_darr rctx n
            in
            register_handle rctx (Value.Darr target);
            Msgbuf.read_double_slice r target.d 0 n;
            Value.Darr target)
  | Plan.S_int_array -> (
      fun rctx r ~cand ->
        match read_ref_marker rctx r with
        | `Null -> Value.Null
        | `Handle v -> v
        | `Inline ->
            let n = checked_len r (Msgbuf.read_uvarint r) ~unit:1 "int[]" in
            let target =
              match cand with
              | Value.Iarr a when Array.length a.ia = n ->
                  charge_reuse rctx;
                  a
              | _ ->
                  alloc_iarr rctx n
            in
            register_handle rctx (Value.Iarr target);
            Msgbuf.read_int_slice r target.ia 0 n;
            Value.Iarr target)
  | Plan.S_obj_array { elem } ->
      let compiled_elem = compile_read_in cache ~defs elem in
      let elem_ty = ty_of_step elem in
      fun rctx r ~cand -> (
        match read_ref_marker rctx r with
        | `Null -> Value.Null
        | `Handle v -> v
        | `Inline ->
            let n =
              checked_len r (Msgbuf.read_uvarint r) ~unit:(step_min_width elem)
                "object[]"
            in
            let target, cand_elems =
              match cand with
              | Value.Rarr a when Array.length a.ra = n ->
                  charge_reuse rctx;
                  (a, Some (Array.copy a.ra))
              | _ -> (alloc_rarr rctx elem_ty n, None)
            in
            register_handle rctx (Value.Rarr target);
            for i = 0 to n - 1 do
              let ec =
                match cand_elems with Some c -> c.(i) | None -> Value.Null
              in
              target.ra.(i) <- compiled_elem rctx r ~cand:ec
            done;
            Value.Rarr target)
  | Plan.S_flat_array { felem } -> (
      fun rctx r ~cand ->
        match read_ref_marker rctx r with
        | `Null -> Value.Null
        | `Handle v -> v
        | `Inline -> read_flat rctx r felem ~cand)

let compile_read ~defs step = compile_read_in (Hashtbl.create 4) ~defs step
