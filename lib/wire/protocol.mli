(** Message framing for the RMI transport.

    Every network message carries a small header: the kind of message
    (request / reply / ack), the destination object, the method or
    call-site being invoked, and a sequence number used to match
    replies to outstanding requests.  The payload that follows the
    header is opaque serialized argument/return data. *)

type kind =
  | Request  (** invoke a method; expects [Reply] or [Ack] *)
  | Reply    (** carries a serialized return value *)
  | Ack      (** return value ignored at the call site: empty reply *)
  | Exn_reply  (** remote raised; payload is the exception message *)
  | Reject
      (** admission control refused the request: the server's bounded
          queue was full and the request was {e not} executed, so the
          client may re-send it under its own deadline (PR 6).  Encodes
          as code 5 — 4 belongs to batch envelopes. *)

type header = {
  kind : kind;
  src : int;          (** sending machine (where replies go) *)
  epoch : int;        (** caller's incarnation number; together with
                          [(src, seq)] it keys the server's reply cache,
                          so a restarted client reusing sequence numbers
                          can never be served a predecessor's reply *)
  seq : int;          (** request sequence number, echoed by the reply *)
  target_obj : int;   (** exported object id on the destination machine *)
  method_id : int;    (** registry index of the callee method *)
  callsite : int;     (** call-site id (selects the specialized plan);
                          [-1] for class-generic marshaling *)
  nargs : int;        (** argument count, for generic unmarshaling *)
  plan_ver : int;     (** plan version the payload was encoded with: 0
                          is the generic (tag-carrying) encoding; [v > 0]
                          selects specialized plan version [v] for the
                          call site.  On a request it describes the
                          arguments; on a reply, the return value — a
                          server that deoptimized mid-reply tags the
                          reply with the widened version so the caller
                          decodes with the matching plan *)
}

val write_header : Msgbuf.writer -> header -> unit

(** @raise Msgbuf.Underflow on a malformed header. *)
val read_header : Msgbuf.reader -> header

val pp_kind : Format.formatter -> kind -> unit
val pp_header : Format.formatter -> header -> unit

(** Size in bytes of an encoded header (varint-dependent). *)
val header_size : header -> int

(** {1 Batch frames}

    The transport may coalesce several complete messages (header +
    payload each) bound for the same destination into one {e batch
    frame}, so the interconnect charges a single per-message latency
    for the whole group.  A batch frame is distinguished from a single
    message by its first byte: header kinds encode as 0-3, a batch as
    4, so [is_batch] decides with one byte of lookahead. *)

(** [true] iff the frame is a coalesced envelope. *)
val is_batch : bytes -> bool

(** Slice variant of {!is_batch} for payloads read in place. *)
val is_batch_at : bytes -> off:int -> len:int -> bool

(** [encode_batch msgs] frames the messages (each a complete
    header+payload encoding) as one envelope.  [msgs] must be
    non-empty. *)
val encode_batch : bytes list -> bytes

(** [encode_batch_into w msgs] appends the same frame to an existing
    writer, blitting each message in place — the zero-copy batching
    path.  Byte-identical to {!encode_batch}. *)
val encode_batch_into : Msgbuf.writer -> bytes list -> unit

(** Inverse of {!encode_batch}; [None] when the frame is not a batch or
    is truncated. *)
val decode_batch : bytes -> bytes list option

(** [decode_batch_slice frame ~off ~len] splits the batch at
    [frame[off..off+len)] into [(off, len)] sub-message slices of
    [frame], copy-free.  [None] as for {!decode_batch}. *)
val decode_batch_slice : bytes -> off:int -> len:int -> (int * int) list option
