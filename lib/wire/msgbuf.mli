(** Growable byte buffers for building and reading RMI messages.

    A [writer] appends primitives in a compact little-endian format;
    a [reader] consumes them in the same order.  Integers use
    LEB128-style varints (with zigzag encoding for signed values) so
    that the small type tags and lengths that dominate RMI protocol
    traffic stay small on the wire — the compact encoding KaRMI [15]
    and the paper's Manta-JavaParty runtime use. *)

type writer
type reader

exception Underflow of string
(** Raised by read operations when the buffer is exhausted or a value
    is malformed. *)

(** {1 Writing} *)

val create_writer : ?initial_capacity:int -> unit -> writer

val clear : writer -> unit

(** Number of bytes written so far. *)
val length : writer -> int

val write_u8 : writer -> int -> unit
val write_bool : writer -> bool -> unit

(** Unsigned LEB128 varint; argument must be non-negative. *)
val write_uvarint : writer -> int -> unit

(** Zigzag-encoded signed varint; full [int] range. *)
val write_varint : writer -> int -> unit

(** 64-bit IEEE double, little endian. *)
val write_double : writer -> float -> unit

(** Length-prefixed UTF-8 bytes. *)
val write_string : writer -> string -> unit

(** [write_double_slice w a pos len] appends [len] doubles of [a]
    starting at [pos] without intermediate boxing. *)
val write_double_slice : writer -> float array -> int -> int -> unit

val write_int_slice : writer -> int array -> int -> int -> unit

(** [write_bytes w b off len] appends raw bytes of [b] (no length
    prefix) — the blit used to splice an already-encoded message into a
    frame in place. *)
val write_bytes : writer -> bytes -> int -> int -> unit

(** {1 Reserve / patch}

    The zero-copy framing primitives: append placeholder bytes with
    [reserve], write the payload after them, then back-fill lengths and
    checksums with the [patch_*] family.  Patched varints are always
    minimal (never padded), so a frame built this way is byte-identical
    to one built by copying the payload through [write_string]. *)

(** [reserve w n] appends [n] zero bytes and returns their start
    offset. *)
val reserve : writer -> int -> int

(** [patch_u8 w ~at v] overwrites the byte at absolute offset [at]. *)
val patch_u8 : writer -> at:int -> int -> unit

(** Encoded width of a value as a minimal unsigned varint. *)
val uvarint_size : int -> int

(** [patch_uvarint w ~at v] writes [v] as a minimal unsigned varint at
    absolute offset [at] (which must already be written) and returns
    its width. *)
val patch_uvarint : writer -> at:int -> int -> int

(** Snapshot the written bytes. *)
val contents : writer -> bytes

(** [sub w ~off ~len] snapshots a slice of the written bytes. *)
val sub : writer -> off:int -> len:int -> bytes

(** Direct access to the underlying storage (first [length] bytes are
    valid); used by transports to avoid a copy. *)
val unsafe_storage : writer -> bytes

(** {1 Reading} *)

(** [reader_of_bytes ?off ?len data] reads [len] bytes of [data]
    starting at [off] (default: all of [data]) without copying — batch
    sub-frames and envelope payloads are read in place this way. *)
val reader_of_bytes : ?off:int -> ?len:int -> bytes -> reader

(** [reader_of_writer ?off w] reads over [w]'s storage without
    copying, starting at [off] (default 0). *)
val reader_of_writer : ?off:int -> writer -> reader

(** [reset_reader r ?off ?len data] re-aims an existing reader at
    [data], avoiding a record allocation (pooled-reader discipline,
    mirroring [Codec.reset_rctx]). *)
val reset_reader : reader -> ?off:int -> ?len:int -> bytes -> unit

(** Bytes remaining to be read. *)
val remaining : reader -> int

(** [skip r n what] advances past [n] bytes and returns their start
    offset in the underlying buffer ([what] labels the [Underflow] on
    truncation) — used to slice sub-frames without copying. *)
val skip : reader -> int -> string -> int

val read_u8 : reader -> int
val read_bool : reader -> bool
val read_uvarint : reader -> int
val read_varint : reader -> int
val read_double : reader -> float
val read_string : reader -> string

(** [read_double_slice r a pos len] fills [a.(pos..pos+len-1)]. *)
val read_double_slice : reader -> float array -> int -> int -> unit

val read_int_slice : reader -> int array -> int -> int -> unit

(** {1 Buffer pool}

    Free lists of writers and readers shared by a cluster so that
    steady-state calls reuse grown buffer storage instead of allocating
    fresh buffers per message — the copy-free, pool-backed send path of
    the paper's Manta/GM testbed.  Thread-safe; acquisitions are
    counted as {!Rmi_stats.Metrics} [pool_hits]/[pool_misses]. *)
module Pool : sig
  type buffers

  val create : metrics:Rmi_stats.Metrics.t -> buffers

  (** [acquire_writer p] returns a cleared writer (pooled or fresh). *)
  val acquire_writer : buffers -> writer

  (** [release_writer p w] returns [w] to the free list.  Its storage
      must no longer be referenced (snapshot with [sub]/[contents]
      anything that outlives the release). *)
  val release_writer : buffers -> writer -> unit

  (** [with_writer p f] brackets [acquire_writer]/[release_writer]
      around [f], releasing on exceptions too. *)
  val with_writer : buffers -> (writer -> 'a) -> 'a

  (** [acquire_reader p ?off ?len data] returns a pooled reader aimed
      at [data] (see {!reader_of_bytes} for [off]/[len]). *)
  val acquire_reader : buffers -> ?off:int -> ?len:int -> bytes -> reader

  val release_reader : buffers -> reader -> unit
end
