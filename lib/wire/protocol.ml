(* [Reject] is the dispatch pool's admission-control answer (PR 6): the
   server's bounded request queue was full, the request was NOT
   executed, and the client should retry under its own deadline. *)
type kind = Request | Reply | Ack | Exn_reply | Reject

type header = {
  kind : kind;
  src : int;
  epoch : int;
  seq : int;
  target_obj : int;
  method_id : int;
  callsite : int;
  nargs : int;
  plan_ver : int;
}

(* code 4 is taken by [batch_code] below, so [Reject] gets 5 *)
let kind_code = function
  | Request -> 0
  | Reply -> 1
  | Ack -> 2
  | Exn_reply -> 3
  | Reject -> 5

let kind_of_code = function
  | 0 -> Request
  | 1 -> Reply
  | 2 -> Ack
  | 3 -> Exn_reply
  | 5 -> Reject
  | n -> raise (Msgbuf.Underflow (Printf.sprintf "bad message kind %d" n))

let write_header w h =
  Msgbuf.write_u8 w (kind_code h.kind);
  Msgbuf.write_uvarint w h.src;
  Msgbuf.write_uvarint w h.epoch;
  Msgbuf.write_uvarint w h.seq;
  Msgbuf.write_varint w h.target_obj;
  Msgbuf.write_varint w h.method_id;
  Msgbuf.write_varint w h.callsite;
  Msgbuf.write_uvarint w h.nargs;
  Msgbuf.write_uvarint w h.plan_ver

let read_header r =
  let kind = kind_of_code (Msgbuf.read_u8 r) in
  let src = Msgbuf.read_uvarint r in
  let epoch = Msgbuf.read_uvarint r in
  let seq = Msgbuf.read_uvarint r in
  let target_obj = Msgbuf.read_varint r in
  let method_id = Msgbuf.read_varint r in
  let callsite = Msgbuf.read_varint r in
  let nargs = Msgbuf.read_uvarint r in
  let plan_ver = Msgbuf.read_uvarint r in
  { kind; src; epoch; seq; target_obj; method_id; callsite; nargs; plan_ver }

let pp_kind ppf k =
  Format.pp_print_string ppf
    (match k with
    | Request -> "request"
    | Reply -> "reply"
    | Ack -> "ack"
    | Exn_reply -> "exn-reply"
    | Reject -> "reject")

let pp_header ppf h =
  Format.fprintf ppf "{%a src=%d%s seq=%d obj=%d meth=%d site=%d nargs=%d%s}"
    pp_kind h.kind h.src
    (if h.epoch = 0 then "" else Printf.sprintf " epoch=%d" h.epoch)
    h.seq h.target_obj h.method_id h.callsite h.nargs
    (if h.plan_ver = 0 then "" else Printf.sprintf " plan_ver=%d" h.plan_ver)

let header_size h =
  let w = Msgbuf.create_writer ~initial_capacity:32 () in
  write_header w h;
  Msgbuf.length w

(* ------------------------------------------------------------------ *)
(* batch frames                                                        *)
(* ------------------------------------------------------------------ *)

(* the batch tag occupies the code point just above the header kinds,
   so the first byte of any frame says whether it is a single message
   (0-3) or a coalesced envelope (4) *)
let batch_code = 4

let is_batch frame = Bytes.length frame > 0 && Char.code (Bytes.get frame 0) = batch_code

let is_batch_at frame ~off ~len =
  len > 0 && Char.code (Bytes.get frame off) = batch_code

(* [encode_batch_into w msgs] appends the batch frame to [w] — a pooled
   (and possibly gap-reserved) writer — blitting each message in place.
   The per-message length prefix plus blit produces exactly the bytes
   [write_string w (Bytes.to_string m)] used to, without the
   intermediate string copy, so batch frames stay byte-identical across
   the legacy and zero-copy paths. *)
let encode_batch_into w msgs =
  Msgbuf.write_u8 w batch_code;
  Msgbuf.write_uvarint w (List.length msgs);
  List.iter
    (fun m ->
      let n = Bytes.length m in
      Msgbuf.write_uvarint w n;
      Msgbuf.write_bytes w m 0 n)
    msgs

let encode_batch msgs =
  let total = List.fold_left (fun acc m -> acc + Bytes.length m) 0 msgs in
  let w = Msgbuf.create_writer ~initial_capacity:(total + 16) () in
  Msgbuf.write_u8 w batch_code;
  Msgbuf.write_uvarint w (List.length msgs);
  List.iter (fun m -> Msgbuf.write_string w (Bytes.to_string m)) msgs;
  Msgbuf.contents w

(* [decode_batch_slice frame ~off ~len] splits the batch into
   [(off, len)] slices of [frame] without copying the sub-messages. *)
let decode_batch_slice frame ~off ~len =
  match
    let r = Msgbuf.reader_of_bytes ~off ~len frame in
    if Msgbuf.read_u8 r <> batch_code then None
    else
      let n = Msgbuf.read_uvarint r in
      let rec go acc k =
        if k = 0 then Some (List.rev acc)
        else begin
          let mlen = Msgbuf.read_uvarint r in
          let moff = Msgbuf.skip r mlen "batch sub-frame" in
          go ((moff, mlen) :: acc) (k - 1)
        end
      in
      go [] n
  with
  | exception Msgbuf.Underflow _ -> None
  | v -> v

let decode_batch frame =
  match decode_batch_slice frame ~off:0 ~len:(Bytes.length frame) with
  | None -> None
  | Some slices ->
      Some (List.map (fun (off, len) -> Bytes.sub frame off len) slices)
