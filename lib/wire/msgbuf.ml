type writer = { mutable buf : bytes; mutable len : int }

(* [data]/[limit] are mutable so pooled readers can be re-aimed at a new
   buffer with [reset_reader] instead of allocating a fresh record *)
type reader = { mutable data : bytes; mutable limit : int; mutable pos : int }

exception Underflow of string

let create_writer ?(initial_capacity = 256) () =
  { buf = Bytes.create (max 16 initial_capacity); len = 0 }

let clear w = w.len <- 0
let length w = w.len

let ensure w extra =
  let needed = w.len + extra in
  if needed > Bytes.length w.buf then begin
    let cap = ref (Bytes.length w.buf) in
    while !cap < needed do
      cap := !cap * 2
    done;
    let fresh = Bytes.create !cap in
    Bytes.blit w.buf 0 fresh 0 w.len;
    w.buf <- fresh
  end

let write_u8 w v =
  ensure w 1;
  Bytes.unsafe_set w.buf w.len (Char.unsafe_chr (v land 0xff));
  w.len <- w.len + 1

let write_bool w b = write_u8 w (if b then 1 else 0)

let write_uvarint w v =
  if v < 0 then invalid_arg "Msgbuf.write_uvarint: negative";
  let rec go v =
    if v < 0x80 then write_u8 w v
    else begin
      write_u8 w (0x80 lor (v land 0x7f));
      go (v lsr 7)
    end
  in
  go v

(* Signed varints use zigzag encoding computed in 64-bit arithmetic so
   the whole OCaml int range (including [min_int]) round-trips. Small
   non-negative values take the single-byte fast path. *)
let write_uvarint64 w v =
  let rec go v =
    if Int64.logand v (Int64.lognot 0x7fL) = 0L then write_u8 w (Int64.to_int v)
    else begin
      write_u8 w (0x80 lor (Int64.to_int (Int64.logand v 0x7fL)));
      go (Int64.shift_right_logical v 7)
    end
  in
  go v

let write_varint w v =
  if v >= 0 && v < 64 then write_u8 w (v lsl 1)
  else
    let v64 = Int64.of_int v in
    let zz = Int64.logxor (Int64.shift_left v64 1) (Int64.shift_right v64 63) in
    write_uvarint64 w zz

let write_double w f =
  ensure w 8;
  Bytes.set_int64_le w.buf w.len (Int64.bits_of_float f);
  w.len <- w.len + 8

let write_string w s =
  let n = String.length s in
  write_uvarint w n;
  ensure w n;
  Bytes.blit_string s 0 w.buf w.len n;
  w.len <- w.len + n

let write_double_slice w a pos len =
  if pos < 0 || len < 0 || pos + len > Array.length a then
    invalid_arg "Msgbuf.write_double_slice";
  ensure w (len * 8);
  for i = 0 to len - 1 do
    Bytes.set_int64_le w.buf (w.len + (i * 8))
      (Int64.bits_of_float (Array.unsafe_get a (pos + i)))
  done;
  w.len <- w.len + (len * 8)

let write_int_slice w a pos len =
  if pos < 0 || len < 0 || pos + len > Array.length a then
    invalid_arg "Msgbuf.write_int_slice";
  for i = pos to pos + len - 1 do
    write_varint w a.(i)
  done

let write_bytes w b off len =
  if off < 0 || len < 0 || off + len > Bytes.length b then
    invalid_arg "Msgbuf.write_bytes";
  ensure w len;
  Bytes.blit b off w.buf w.len len;
  w.len <- w.len + len

(* [reserve w n] appends [n] zero bytes and returns their start offset;
   callers back-fill them later with the [patch_*] primitives.  The gap
   technique lets a frame header be written *around* an already-written
   payload without copying it. *)
let reserve w n =
  if n < 0 then invalid_arg "Msgbuf.reserve";
  ensure w n;
  Bytes.fill w.buf w.len n '\000';
  let at = w.len in
  w.len <- w.len + n;
  at

let patch_u8 w ~at v =
  if at < 0 || at >= w.len then invalid_arg "Msgbuf.patch_u8";
  Bytes.unsafe_set w.buf at (Char.unsafe_chr (v land 0xff))

(* width of [v] as a minimal unsigned LEB128 varint *)
let uvarint_size v =
  if v < 0 then invalid_arg "Msgbuf.uvarint_size";
  let rec go v n = if v < 0x80 then n else go (v lsr 7) (n + 1) in
  go v 1

(* [patch_uvarint w ~at v] writes [v] as a minimal varint at absolute
   offset [at] (inside already-written storage) and returns its width.
   Minimal — never padded — so patched headers stay byte-identical to
   ones produced by [write_uvarint]. *)
let patch_uvarint w ~at v =
  let n = uvarint_size v in
  if at < 0 || at + n > w.len then invalid_arg "Msgbuf.patch_uvarint";
  let rec go at v =
    if v < 0x80 then Bytes.unsafe_set w.buf at (Char.unsafe_chr v)
    else begin
      Bytes.unsafe_set w.buf at (Char.unsafe_chr (0x80 lor (v land 0x7f)));
      go (at + 1) (v lsr 7)
    end
  in
  go at v;
  n

let contents w = Bytes.sub w.buf 0 w.len

let sub w ~off ~len =
  if off < 0 || len < 0 || off + len > w.len then invalid_arg "Msgbuf.sub";
  Bytes.sub w.buf off len

let unsafe_storage w = w.buf

let reader_of_bytes ?(off = 0) ?len data =
  let len = match len with Some n -> n | None -> Bytes.length data - off in
  if off < 0 || len < 0 || off + len > Bytes.length data then
    invalid_arg "Msgbuf.reader_of_bytes";
  { data; limit = off + len; pos = off }

let reader_of_writer ?(off = 0) w =
  if off < 0 || off > w.len then invalid_arg "Msgbuf.reader_of_writer";
  { data = w.buf; limit = w.len; pos = off }

let reset_reader r ?(off = 0) ?len data =
  let len = match len with Some n -> n | None -> Bytes.length data - off in
  if off < 0 || len < 0 || off + len > Bytes.length data then
    invalid_arg "Msgbuf.reset_reader";
  r.data <- data;
  r.limit <- off + len;
  r.pos <- off

let remaining r = r.limit - r.pos

(* overflow-safe bounds check: hostile lengths can be near max_int *)
let check r n what =
  if n < 0 || n > r.limit - r.pos then raise (Underflow what)

let read_u8 r =
  check r 1 "u8";
  let v = Char.code (Bytes.unsafe_get r.data r.pos) in
  r.pos <- r.pos + 1;
  v

let read_bool r =
  match read_u8 r with
  | 0 -> false
  | 1 -> true
  | n -> raise (Underflow (Printf.sprintf "bool: invalid byte %d" n))

let read_uvarint r =
  let rec go shift acc =
    if shift > 63 then raise (Underflow "uvarint: too long");
    let b = read_u8 r in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0

let read_uvarint64 r =
  let rec go shift acc =
    if shift > 63 then raise (Underflow "uvarint64: too long");
    let b = read_u8 r in
    let acc = Int64.logor acc (Int64.shift_left (Int64.of_int (b land 0x7f)) shift) in
    if b land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0L

let read_varint r =
  let zz = read_uvarint64 r in
  let v64 =
    Int64.logxor (Int64.shift_right_logical zz 1)
      (Int64.neg (Int64.logand zz 1L))
  in
  Int64.to_int v64

let read_double r =
  check r 8 "double";
  let v = Int64.float_of_bits (Bytes.get_int64_le r.data r.pos) in
  r.pos <- r.pos + 8;
  v

(* [skip r n what] advances past [n] bytes and returns their start
   offset in the underlying buffer — how batch sub-frames are sliced
   without copying *)
let skip r n what =
  check r n what;
  let at = r.pos in
  r.pos <- r.pos + n;
  at

let read_string r =
  let n = read_uvarint r in
  check r n "string";
  let s = Bytes.sub_string r.data r.pos n in
  r.pos <- r.pos + n;
  s

let read_double_slice r a pos len =
  if pos < 0 || len < 0 || pos + len > Array.length a then
    invalid_arg "Msgbuf.read_double_slice";
  check r (len * 8) "double slice";
  for i = 0 to len - 1 do
    Array.unsafe_set a (pos + i)
      (Int64.float_of_bits (Bytes.get_int64_le r.data (r.pos + (i * 8))))
  done;
  r.pos <- r.pos + (len * 8)

let read_int_slice r a pos len =
  if pos < 0 || len < 0 || pos + len > Array.length a then
    invalid_arg "Msgbuf.read_int_slice";
  for i = pos to pos + len - 1 do
    a.(i) <- read_varint r
  done

(* Free lists of writers and readers so steady-state RMI traffic reuses
   buffer storage instead of allocating it per call — the Manta/GM
   "message buffers come from a pool" discipline.  Mutex-guarded because
   machines run in separate domains; a released writer keeps its grown
   storage, so after warmup acquisitions stop allocating entirely. *)
module Pool = struct
  module Metrics = Rmi_stats.Metrics

  type buffers = {
    metrics : Metrics.t;
    lock : Mutex.t;
    mutable writers : writer list;
    mutable readers : reader list;
  }

  let create ~metrics = { metrics; lock = Mutex.create (); writers = []; readers = [] }

  let acquire_writer p =
    Mutex.lock p.lock;
    let w =
      match p.writers with
      | w :: rest ->
          p.writers <- rest;
          Metrics.incr_pool_hits p.metrics;
          w
      | [] ->
          Metrics.incr_pool_misses p.metrics;
          create_writer ~initial_capacity:512 ()
    in
    Mutex.unlock p.lock;
    clear w;
    w

  let release_writer p w =
    Mutex.lock p.lock;
    p.writers <- w :: p.writers;
    Mutex.unlock p.lock

  (* [with_writer p f] runs [f] on a pooled writer and releases it even
     on exceptions.  The writer's storage MUST NOT escape [f]: snapshot
     anything long-lived with [sub]/[contents] first. *)
  let with_writer p f =
    let w = acquire_writer p in
    Fun.protect ~finally:(fun () -> release_writer p w) (fun () -> f w)

  let acquire_reader p ?off ?len data =
    Mutex.lock p.lock;
    let r =
      match p.readers with
      | r :: rest ->
          p.readers <- rest;
          Metrics.incr_pool_hits p.metrics;
          r
      | [] ->
          Metrics.incr_pool_misses p.metrics;
          { data = Bytes.empty; limit = 0; pos = 0 }
    in
    Mutex.unlock p.lock;
    reset_reader r ?off ?len data;
    r

  let release_reader p r =
    (* drop the data reference so the pool never pins a large frame *)
    reset_reader r Bytes.empty;
    Mutex.lock p.lock;
    p.readers <- r :: p.readers;
    Mutex.unlock p.lock
end
