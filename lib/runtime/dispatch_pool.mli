(** Work-stealing multi-domain dispatch (PR 6).

    Replaces the per-node serve loops of the parallel fabric with a
    pool of worker domains sharing every served node's traffic through
    bounded per-node queues: intake stays single-consumer per node,
    execution is serialized per node (a serve mutex) but parallel
    across nodes, and a request arriving at a full queue is refused
    with a typed [Protocol.Reject] the client retries under its own
    deadline ({!Node.Server_busy} if it never gets through).

    Telemetry lands in the cluster's {!Rmi_stats.Metrics}:
    [dispatches], [steals], [queue_rejects], [queue_depth_hwm]. *)

type t

(** [create ~net ~nodes ~domains ~queue_depth ()] spawns [domains]
    worker domains serving [nodes] (each node owned by worker
    [index mod domains] for intake, any worker for execution).  The
    caller keeps driving every node NOT in [nodes] — typically the
    client — itself.

    Raises [Invalid_argument] when [domains < 1], [queue_depth < 1] or
    [nodes] is empty. *)
val create :
  net:Rmi_net.Transport.t ->
  nodes:Node.t array ->
  domains:int ->
  queue_depth:int ->
  unit ->
  t

(** Signal the workers, join them, and serve any stragglers still
    queued.  Idempotent. *)
val stop : t -> unit
