(** JavaParty-style remote object management.

    In JavaParty "the underlying details of remote object placement
    [and] remote thread allocation ... are hidden".  The registry hides
    them here: it hands out cluster-unique object ids, places new
    remote objects round-robin over the machines (JavaParty's default
    distribution — the reason half of LU's and the webserver's RPCs are
    local in Tables 4/8), and registers the method handlers on the
    owning machine. *)

type t

type method_spec = {
  meth : int;  (** method id (JIR method id for model-driven apps) *)
  has_ret : bool;
  handler : Node.handler;
}

val create : Fabric.t -> t

(** Machine that the next [new_remote] will place on. *)
val next_machine : t -> int

(** [new_remote t methods] allocates a fresh object id, picks the next
    machine round-robin, exports the handlers there, and returns the
    remote reference. *)
val new_remote : t -> method_spec list -> Remote_ref.t

(** Like [new_remote] with explicit placement. *)
val new_remote_on : t -> machine:int -> method_spec list -> Remote_ref.t

(** [new_replicated t ~primary ~replica specs] places the object on
    [primary], exports the same handlers under the same object id on
    [replica], and registers the (primary -> replica) failover mapping
    on every node (see {!Node.set_replica}).  Handlers must be
    stateless or replica-synchronized by the caller. *)
val new_replicated :
  t -> primary:int -> replica:int -> method_spec list -> Remote_ref.t

(** Number of objects exported so far. *)
val exported : t -> int
