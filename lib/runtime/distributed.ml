module I = Jir.Interp
module Program = Jir.Program
module Plan = Rmi_core.Plan

type result = {
  value : I.value;
  statics : I.value array;
  stats : Rmi_stats.Metrics.snapshot;
  wall_seconds : float;
  remote_objects : int;
}

(* remote-instance placement: interpreter object identity -> remote ref *)
type placement = {
  registry : Registry.t;
  table : (int, Remote_ref.t) Hashtbl.t;
  mutex : Mutex.t;
}

let run ?(config = Config.site_reuse_cycle) ?(mode = Fabric.Sync)
    ?(backend = Fabric.Sim) ?(machines = 2) ?faults prog ~entry args =
  let opt = Rmi_core.Optimizer.run prog in
  let meta = Rmi_serial.Class_meta.of_program prog in
  let plans = Hashtbl.create 16 in
  List.iter
    (fun (d : Rmi_core.Optimizer.decision) ->
      Hashtbl.replace plans d.plan.Plan.callsite d.plan)
    opt.decisions;
  let metrics = Rmi_stats.Metrics.create () in
  (* adaptive runs get the compiler's plan cache so promotions are
     served (and counted) through it; AOT runs don't need one *)
  let plan_store =
    match config.Config.tier with
    | Config.Aot -> None
    | Config.Adaptive ->
        Some
          (Rmi_core.Plan_store.create
             (Rmi_core.Plan_store.source_of_optimizer opt))
  in
  let fabric =
    Fabric.create ~mode ~backend ?faults ?plan_store ~n:machines ~meta ~config
      ~plans ~metrics ()
  in
  let placement =
    { registry = Registry.create fabric; table = Hashtbl.create 16;
      mutex = Mutex.create () }
  in
  (* one interpreter per machine, each with its own statics; the hook
     routes the machine's remote calls through its own node *)
  let states = Array.make machines None in
  let state_of machine =
    match states.(machine) with Some st -> st | None -> assert false
  in
  (* handlers for every remote method of a class, running the method
     body in the owning machine's interpreter *)
  let specs_of_class machine cid =
    Program.remote_methods prog
    |> List.filter (fun (m : Program.method_decl) -> m.owner = Some cid)
    |> List.map (fun (m : Program.method_decl) ->
           {
             Registry.meth = m.mid;
             has_ret = not (Jir.Types.equal_ty m.ret Jir.Types.Tvoid);
             handler =
               (fun rargs ->
                 let iargs =
                   Array.to_list (Array.map Jir_bridge.of_runtime rargs)
                 in
                 let result =
                   (* interpreter faults become clean remote errors *)
                   try I.run (state_of machine) m.mid iargs with
                   | I.Runtime_error msg -> failwith msg
                   | I.Step_limit_exceeded -> failwith "step limit exceeded"
                 in
                 if Jir.Types.equal_ty m.ret Jir.Types.Tvoid then None
                 else Some (Jir_bridge.to_runtime result));
           })
  in
  let place_receiver (recv : I.value) =
    match recv with
    | I.Vobj o -> (
        Mutex.lock placement.mutex;
        match Hashtbl.find_opt placement.table o.I.oid with
        | Some r ->
            Mutex.unlock placement.mutex;
            r
        | None ->
            (* JavaParty-style: new remote instances go round-robin *)
            let machine = Registry.next_machine placement.registry in
            let r =
              Registry.new_remote placement.registry
                (specs_of_class machine o.I.ocls)
            in
            Hashtbl.replace placement.table o.I.oid r;
            Mutex.unlock placement.mutex;
            r)
    | I.Vnull -> failwith "Distributed.run: remote call on null"
    | _ -> failwith "Distributed.run: remote receiver is not an object"
  in
  let hook machine : I.remote_hook =
   fun ~site ~recv ~meth args ->
    let dest = place_receiver recv in
    let callee = Program.method_decl prog meth in
    let has_ret = not (Jir.Types.equal_ty callee.ret Jir.Types.Tvoid) in
    let rargs =
      Array.of_list (List.map Jir_bridge.to_runtime args)
    in
    match
      Node.call (Fabric.node fabric machine) ~dest ~meth ~callsite:site
        ~has_ret rargs
    with
    | Some v -> Some (Jir_bridge.of_runtime v)
    | None -> None
  in
  for m = 0 to machines - 1 do
    states.(m) <- Some (I.create ~remote_hook:(hook m) prog)
  done;
  Fabric.run fabric (fun _ ->
      let t0 = Unix.gettimeofday () in
      let value = I.run (state_of 0) entry args in
      let wall_seconds = Unix.gettimeofday () -. t0 in
      {
        value;
        statics =
          Array.init
            (Array.length prog.Program.statics)
            (fun i -> I.read_static (state_of 0) i);
        stats = Rmi_stats.Metrics.snapshot metrics;
        wall_seconds;
        remote_objects = Registry.exported placement.registry;
      })
