type method_spec = { meth : int; has_ret : bool; handler : Node.handler }

type t = {
  fabric : Fabric.t;
  mutable next_obj : int;
  mutable rr : int;  (* round-robin cursor *)
}

let create fabric = { fabric; next_obj = 0; rr = 0 }

let next_machine t = t.rr

let new_remote_on t ~machine specs =
  if machine < 0 || machine >= Fabric.size t.fabric then
    invalid_arg (Printf.sprintf "Registry: bad machine %d" machine);
  let obj = t.next_obj in
  t.next_obj <- obj + 1;
  let node = Fabric.node t.fabric machine in
  List.iter
    (fun { meth; has_ret; handler } ->
      Node.export node ~obj ~meth ~has_ret handler)
    specs;
  Remote_ref.make ~machine ~obj

let new_remote t specs =
  let machine = t.rr in
  t.rr <- (t.rr + 1) mod Fabric.size t.fabric;
  new_remote_on t ~machine specs

let new_replicated t ~primary ~replica specs =
  if primary = replica then
    invalid_arg "Registry: primary and replica must differ";
  if replica < 0 || replica >= Fabric.size t.fabric then
    invalid_arg (Printf.sprintf "Registry: bad machine %d" replica);
  let r = new_remote_on t ~machine:primary specs in
  (* same object id on the replica, so a retargeted request resolves
     without any client-side translation *)
  let rnode = Fabric.node t.fabric replica in
  List.iter
    (fun { meth; has_ret; handler } ->
      Node.export rnode ~obj:r.Remote_ref.obj ~meth ~has_ret handler)
    specs;
  for m = 0 to Fabric.size t.fabric - 1 do
    Node.set_replica (Fabric.node t.fabric m) ~primary ~replica
  done;
  r

let exported t = t.next_obj
