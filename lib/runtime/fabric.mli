(** Cluster assembly: [n] machines sharing a class table, a compiler
    plan table and an optimization configuration.

    Two execution modes mirror the substitution documented in
    DESIGN.md:

    - [Sync]: everything on one thread.  A machine awaiting a reply
      pumps the other machines' queues directly — deterministic, used
      by tests and by the statistics tables.
    - [Parallel]: machines 1..n-1 are OCaml domains running serve
      loops; machine 0 is the caller's domain.  Real parallelism for
      wall-clock measurements (the paper's 2-CPU runs). *)

type mode = Sync | Parallel

type t

(** The cluster transport follows [config.transport]: [Raw] for the
    paper's lossless path, [Reliable] for the ack/retransmit layer.
    [?faults] installs a seeded fault schedule on the physical links
    (meaningful with the reliable transport; the raw path does not
    recover from loss).  [?plan_store] hands every node the compiler's
    plan cache so adaptive-tier promotions hit it and widened plans
    survive node restarts (PR 4). *)
val create :
  ?mode:mode ->
  ?faults:Rmi_net.Fault_sim.t ->
  ?plan_store:Rmi_core.Plan_store.t ->
  n:int ->
  meta:Rmi_serial.Class_meta.t ->
  config:Config.t ->
  plans:(int, Rmi_core.Plan.t) Hashtbl.t ->
  metrics:Rmi_stats.Metrics.t ->
  unit ->
  t

val mode : t -> mode
val size : t -> int
val node : t -> int -> Node.t
val metrics : t -> Rmi_stats.Metrics.t

(** The underlying interconnect (for fault installation and transport
    inspection in tests and tools). *)
val cluster : t -> Rmi_net.Cluster.t

(** Start worker domains (no-op in [Sync] mode). *)
val start : t -> unit

(** Shut workers down and join them (no-op in [Sync] mode).
    Idempotent. *)
val stop : t -> unit

(** [run fabric f] = [start]; [f fabric]; [stop] (also on exception). *)
val run : t -> (t -> 'a) -> 'a
