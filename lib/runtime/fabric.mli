(** Cluster assembly: [n] machines sharing a class table, a compiler
    plan table and an optimization configuration.

    Two execution modes mirror the substitution documented in
    DESIGN.md:

    - [Sync]: everything on one thread.  A machine awaiting a reply
      pumps the other machines' queues directly — deterministic, used
      by tests and by the statistics tables.
    - [Parallel]: machines 1..n-1 are OCaml domains running serve
      loops; machine 0 is the caller's domain.  Real parallelism for
      wall-clock measurements (the paper's 2-CPU runs).

    Orthogonally, two transport backends (the {!Rmi_net.Transport.S}
    substitution):

    - [Sim]: the in-process simulated interconnect ({!Rmi_net.Cluster})
      with its modeled cost accounting, ARQ layer and fault injection.
    - [Sock]: real Unix/TCP sockets ({!Rmi_net.Sock}).  Within one
      process this is loopback mode (all [n] endpoints on 127.0.0.1);
      {!create_process} spreads the machines over OS processes. *)

type mode = Sync | Parallel

(** Which {!Rmi_net.Transport.S} implementation carries the frames. *)
type backend = Sim | Sock

type t

(** The cluster transport follows [config.transport]: [Raw] for the
    paper's lossless path, [Reliable] for the ack/retransmit layer.
    [?faults] installs a seeded fault schedule on the physical links
    (meaningful with the reliable transport; the raw path does not
    recover from loss).  [?plan_store] hands every node the compiler's
    plan cache so adaptive-tier promotions hit it and widened plans
    survive node restarts (PR 4).

    [?backend] (default [Sim]) selects the interconnect.  [Sock] builds
    a loopback TCP mesh: real syscalls, one address space.  With
    [Config.Reliable] the {!Rmi_net.Reliable} ARQ adapter is stacked
    over the sockets (exactly-once across injected loss, severed links
    and process crashes); [Config.Raw] is the bare TCP path.  [?faults]
    over [Sock] wraps the schedule in a {!Rmi_net.Chaos} injector
    (drops/dups/holds/corruption/crashes replayed over real frames);
    [?chaos] installs a full injector with a connection plan (severs,
    stalls) — pass one or the other, not both.  As on [Sim], injected
    loss is only recovered under the [Reliable] transport.  [Sock]
    framing is always zero-copy; [config.zero_copy] only affects the
    node-side codec contexts. *)
val create :
  ?mode:mode ->
  ?backend:backend ->
  ?faults:Rmi_net.Fault_sim.t ->
  ?chaos:Rmi_net.Chaos.t ->
  ?plan_store:Rmi_core.Plan_store.t ->
  n:int ->
  meta:Rmi_serial.Class_meta.t ->
  config:Config.t ->
  plans:(int, Rmi_core.Plan.t) Hashtbl.t ->
  metrics:Rmi_stats.Metrics.t ->
  unit ->
  t

(** [create_process ~self ~addrs ...] builds the one-machine-per-OS-
    process variant over TCP ({!Rmi_net.Sock.create_process}): this
    process hosts machine [self] of [Array.length addrs]; [addrs.(i)]
    is machine [i]'s [(host, port)].  Blocks until the full mesh is
    connected.  The returned fabric holds a [Node.t] per machine id so
    remote refs resolve, but only [node t self] is live here — drive it
    directly ([Node.serve_loop] on servers, calls on the client);
    {!start}/{!stop} are no-ops.  [Config.Reliable] stacks the
    {!Rmi_net.Reliable} adapter per process; [?chaos] injects faults
    into this process's outbound frames; [?epoch] is the incarnation
    number a restarted server stamps on its frames (see
    {!Rmi_net.Sock.create_process}). *)
val create_process :
  ?listen:string * int ->
  ?chaos:Rmi_net.Chaos.t ->
  ?epoch:int ->
  ?plan_store:Rmi_core.Plan_store.t ->
  self:int ->
  addrs:(string * int) array ->
  meta:Rmi_serial.Class_meta.t ->
  config:Config.t ->
  plans:(int, Rmi_core.Plan.t) Hashtbl.t ->
  metrics:Rmi_stats.Metrics.t ->
  unit ->
  t

val mode : t -> mode
val backend : t -> backend

(** [true] for fabrics built by {!create_process}. *)
val process_mode : t -> bool

val size : t -> int
val node : t -> int -> Node.t
val metrics : t -> Rmi_stats.Metrics.t

(** The interconnect, backend-agnostic (fault hooks, flushing,
    shutdown). *)
val net : t -> Rmi_net.Transport.t

(** The simulated interconnect of a [Sim]-backed fabric (for fault
    installation and transport inspection in tests and tools).
    @raise Invalid_argument on a [Sock]-backed fabric — use {!net}. *)
val cluster : t -> Rmi_net.Cluster.t

(** Start worker domains (no-op in [Sync] mode and in process mode). *)
val start : t -> unit

(** Shut workers down and join them (no-op in [Sync] mode and in
    process mode).  Idempotent. *)
val stop : t -> unit

(** Release the transport's OS resources ({!Rmi_net.Transport.shutdown}:
    sockets, the event-loop thread).  A no-op on [Sim].  Call after
    {!stop} once the fabric is done. *)
val shutdown_net : t -> unit

(** [run fabric f] = [start]; [f fabric]; [stop] (also on exception). *)
val run : t -> (t -> 'a) -> 'a
