type serializer = Class_specific | Site_specific
type transport = Raw | Reliable
type tier = Aot | Adaptive

let default_hot_threshold = 8

type failover = {
  call_deadline : float;
  max_call_retries : int;
  breaker_threshold : int;
  breaker_cooldown : float;
  reply_cache_cap : int;
}

let default_failover =
  {
    call_deadline = 30.0;
    max_call_retries = 2;
    breaker_threshold = 3;
    breaker_cooldown = 0.25;
    reply_cache_cap = 4096;
  }

type t = {
  name : string;
  serializer : serializer;
  elide_cycle : bool;
  reuse : bool;
  transport : transport;
  batching : bool;
  failover : failover;
  tier : tier;
  hot_threshold : int;
  zero_copy : bool;
  arena : bool;
  domains : int;
  queue_depth : int;
}

let default_queue_depth = 64

let class_ =
  { name = "class"; serializer = Class_specific; elide_cycle = false; reuse = false;
    transport = Raw; batching = false; failover = default_failover;
    tier = Aot; hot_threshold = default_hot_threshold; zero_copy = true;
    arena = true;
    domains = 0; queue_depth = default_queue_depth }

let site =
  { name = "site"; serializer = Site_specific; elide_cycle = false; reuse = false;
    transport = Raw; batching = false; failover = default_failover;
    tier = Aot; hot_threshold = default_hot_threshold; zero_copy = true; arena = true;
    domains = 0; queue_depth = default_queue_depth }

let site_cycle =
  { name = "site + cycle"; serializer = Site_specific; elide_cycle = true; reuse = false;
    transport = Raw; batching = false; failover = default_failover;
    tier = Aot; hot_threshold = default_hot_threshold; zero_copy = true; arena = true;
    domains = 0; queue_depth = default_queue_depth }

let site_reuse =
  { name = "site + reuse"; serializer = Site_specific; elide_cycle = false; reuse = true;
    transport = Raw; batching = false; failover = default_failover;
    tier = Aot; hot_threshold = default_hot_threshold; zero_copy = true; arena = true;
    domains = 0; queue_depth = default_queue_depth }

let site_reuse_cycle =
  {
    name = "site + reuse + cycle";
    serializer = Site_specific;
    elide_cycle = true;
    reuse = true;
    transport = Raw;
    batching = false;
    failover = default_failover;
    tier = Aot;
    hot_threshold = default_hot_threshold;
    zero_copy = true;
    arena = true;
    domains = 0;
    queue_depth = default_queue_depth;
  }

let with_reliable t = { t with transport = Reliable }
let with_batching t = { t with batching = true }
let with_failover failover t = { t with failover }

let with_adaptive ?(hot_threshold = default_hot_threshold) t =
  { t with tier = Adaptive; hot_threshold }

let with_tier tier t = { t with tier }
let with_zero_copy zc t = { t with zero_copy = zc }
let legacy_copy t = { t with zero_copy = false }
let with_arena a t = { t with arena = a }
let legacy_heap t = { t with arena = false }

let with_domains ?(queue_depth = default_queue_depth) n t =
  if n < 0 then invalid_arg "Config.with_domains: negative domain count";
  if queue_depth < 1 then invalid_arg "Config.with_domains: queue_depth < 1";
  { t with domains = n; queue_depth }

let all = [ class_; site; site_cycle; site_reuse; site_reuse_cycle ]

let find name = List.find_opt (fun c -> String.equal c.name name) all
let pp ppf t = Format.pp_print_string ppf t.name
