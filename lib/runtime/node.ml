open Rmi_wire
module Value = Rmi_serial.Value
module Codec = Rmi_serial.Codec
module Plan = Rmi_core.Plan
module Metrics = Rmi_stats.Metrics

type handler = Value.t array -> Value.t option

(* library log source; silent unless the application enables it *)
let log_src = Logs.Src.create "rmi.runtime" ~doc:"RMI runtime events"

module Log = (val Logs.src_log log_src : Logs.LOG)

exception Remote_exception of string
exception No_such_method of string
exception Deadlock of string
exception Rpc_timeout of string
exception Peer_down of string
exception Server_busy of string

let shutdown_method = -99

type export_entry = { fn : handler; has_ret : bool }

(* a plan partially evaluated into closures via Codec.compile_write and
   Codec.compile_read: the runtime analogue of the paper's generated
   marshaler code *)
type compiled_plan = {
  cp_plan : Plan.t;
  cp_write_args : (Codec.wctx -> Msgbuf.writer -> Value.t -> unit) array;
  cp_read_args : (Codec.rctx -> Msgbuf.reader -> cand:Value.t -> Value.t) array;
  cp_write_ret : (Codec.wctx -> Msgbuf.writer -> Value.t -> unit) option;
  cp_read_ret : (Codec.rctx -> Msgbuf.reader -> cand:Value.t -> Value.t) option;
  (* codec contexts cached per plan (zero-copy mode): one wctx/rctx
     pair keyed by the effective cycle flag, reset before each use, so
     a hot call site stops allocating contexts and handle tables on
     every RMI.  Safe because a node's marshal/unmarshal brackets run
     to completion on its own thread before any nested use. *)
  mutable cp_wctx : (bool * Codec.wctx) option;
  mutable cp_rctx : (bool * Codec.rctx) option;
  (* serve-side argument decoding only (PR 10): an arena-backed reader
     context used when [Config.arena] is on and the plan's
     [non_escaping] escape verdict licenses wholesale reclaim.  Kept
     separate from [cp_rctx] because return values decoded on the
     client side escape to the application and must stay on the GC
     heap. *)
  mutable cp_arena : Rmi_serial.Arena.t option;
  mutable cp_arctx : (bool * Codec.rctx) option;
}

(* per-peer circuit breaker: [opened_at < 0] means closed *)
type breaker = { mutable consecutive : int; mutable opened_at : float }

(* adaptive-tier state of one call site on this node: how often it was
   invoked, whether it crossed the hot threshold, and the compiled plan
   it currently encodes with (generic until promoted, then specialized,
   then a widened version after each deoptimization) *)
type site_tier = {
  mutable st_calls : int;
  mutable st_promoted : bool;
  mutable st_cp : compiled_plan;
}

type t = {
  net : Rmi_net.Transport.t;
  nid : int;
  meta : Rmi_serial.Class_meta.t;
  cfg : Config.t;
  plans : (int, Plan.t) Hashtbl.t;
  plan_store : Rmi_core.Plan_store.t option;
  handlers : (int * int, export_entry) Hashtbl.t;
  handlers_mutex : Mutex.t;  (* exports may come from other domains *)
  mutable seq : int;
  (* every in-flight asynchronous call, keyed on the request seq that
     the reply header echoes back *)
  outstanding : (int, pending) Hashtbl.t;
  arg_caches : (int, Value.t option array) Hashtbl.t;
  ret_caches : (int, Value.t) Hashtbl.t;
  (* keyed (callsite, plan version): a node may have to decode several
     encoding generations of one site concurrently *)
  compiled_plans : (int * int, compiled_plan) Hashtbl.t;
  tiers : (int, site_tier) Hashtbl.t;
  (* server-side reply cache, keyed (client, client-epoch, seq): a
     retried request is answered from here instead of re-executing the
     handler — exactly-once across crashes when the cache is durable *)
  reply_cache : (int * int * int, bytes) Hashtbl.t;
  reply_order : (int * int * int) Queue.t;  (* FIFO eviction order *)
  (* failover routing: primary machine -> replica machine *)
  replicas : (int, int) Hashtbl.t;
  breakers : (int, breaker) Hashtbl.t;
  mutable pump : unit -> bool;
  mutable has_pump : bool;
  mutable shutdown : bool;
  mutable trace : Trace.t option;
}

and pending = {
  pc_seq : int;
  pc_callsite : int;
  mutable pc_dest : int;  (* may be retargeted to a replica *)
  pc_primary : int;       (* the originally addressed machine *)
  mutable pc_cp : compiled_plan;  (* swapped when arg deopt widens the plan *)
  pc_node : t;
  pc_started : float;
  pc_deadline : float;
  mutable pc_request : bytes;
  (* the encoded request, kept for RPC retries *)
  mutable pc_attempts : int;
  (* consecutive admission-control rejects, drives resend backoff *)
  mutable pc_rejects : int;
  mutable pc_state : pending_state;
}

and pending_state =
  | Pending
  | Resolved of Value.t option
  | Failed of exn

let reset_caches t =
  Hashtbl.reset t.arg_caches;
  Hashtbl.reset t.ret_caches

let trace_event t event =
  match t.trace with Some tr -> Trace.record tr event | None -> ()

let create ?plan_store net ~id ~meta ~config ~plans =
  let t =
    {
      net;
      nid = id;
      meta;
      cfg = config;
      plans;
      plan_store;
      handlers = Hashtbl.create 16;
      handlers_mutex = Mutex.create ();
      seq = 0;
      outstanding = Hashtbl.create 8;
      arg_caches = Hashtbl.create 16;
      ret_caches = Hashtbl.create 16;
      compiled_plans = Hashtbl.create 16;
      tiers = Hashtbl.create 16;
      reply_cache = Hashtbl.create 64;
      reply_order = Queue.create ();
      replicas = Hashtbl.create 4;
      breakers = Hashtbl.create 4;
      pump = (fun () -> false);
      has_pump = false;
      shutdown = false;
      trace = None;
    }
  in
  (* crash semantics: process memory (reuse caches) always dies with the
     node; the reply cache survives only the Durable variant, which
     models a cache on stable storage *)
  Rmi_net.Transport.on_process_event net (function
    | Rmi_net.Transport.Proc_crashed { machine; durability }
      when machine = t.nid ->
        trace_event t
          (Trace.Crash
             { machine; amnesia = durability = Rmi_net.Fault_sim.Amnesia });
        reset_caches t;
        (* tier state is process memory: a restarted node starts every
           site back on the generic plan and re-warms *)
        Hashtbl.reset t.tiers;
        if durability = Rmi_net.Fault_sim.Amnesia then begin
          Hashtbl.reset t.reply_cache;
          Queue.clear t.reply_order
        end
    | Rmi_net.Transport.Proc_restarted { machine; epoch; _ }
      when machine = t.nid ->
        trace_event t (Trace.Restart { machine; epoch })
    | _ -> ());
  Rmi_net.Transport.on_peer_event net (fun ~self ~peer ev ->
      if self = t.nid then
        match ev with
        | Rmi_net.Transport.Peer_suspected ->
            trace_event t (Trace.Suspect { machine = self; peer })
        | Rmi_net.Transport.Peer_confirmed_down ->
            trace_event t (Trace.Peer_down { machine = self; peer })
        | Rmi_net.Transport.Peer_recovered -> ());
  t

let id t = t.nid
let config t = t.cfg
let set_pump t pump =
  t.pump <- pump;
  t.has_pump <- true

let set_trace t trace = t.trace <- Some trace

let export t ~obj ~meth ~has_ret fn =
  Mutex.lock t.handlers_mutex;
  Hashtbl.replace t.handlers (obj, meth) { fn; has_ret };
  Mutex.unlock t.handlers_mutex

let find_handler t key =
  Mutex.lock t.handlers_mutex;
  let r = Hashtbl.find_opt t.handlers key in
  Mutex.unlock t.handlers_mutex;
  r

let metrics t = Rmi_net.Transport.metrics t.net

(* ------------------------------------------------------------------ *)
(* zero-copy plumbing (PR 5)                                           *)
(* ------------------------------------------------------------------ *)

let zc t = Rmi_net.Transport.zero_copy t.net
let node_pool t = Rmi_net.Transport.pool t.net
let gap = Rmi_net.Envelope.gap
let charge t n = Metrics.add_bytes_copied (metrics t) n

(* a writer positioned for the framing mode: pooled with the envelope
   gap reserved under zero-copy (so the reliable transport can
   back-fill its header in place), a fresh throwaway one otherwise *)
let acquire_msg_writer ?(initial_capacity = 512) t =
  if zc t then begin
    let w = Msgbuf.Pool.acquire_writer (node_pool t) in
    ignore (Msgbuf.reserve w gap : int);
    w
  end
  else Msgbuf.create_writer ~initial_capacity ()

let release_msg_writer t w =
  if zc t then Msgbuf.Pool.release_writer (node_pool t) w

(* the logical message sitting in [w] (after the gap in zc mode),
   snapshotted; every such materialization is a physical payload copy
   and is charged to [bytes_copied] in both framing modes *)
let msg_of_writer t w =
  if zc t then begin
    let len = Msgbuf.length w - gap in
    let msg = Msgbuf.sub w ~off:gap ~len in
    charge t len;
    msg
  end
  else begin
    let msg = Msgbuf.contents w in
    charge t (Bytes.length msg);
    msg
  end

let reader_of_msg_writer t w =
  Msgbuf.reader_of_writer ~off:(if zc t then gap else 0) w

(* ------------------------------------------------------------------ *)
(* plan selection and effective optimization flags                     *)
(* ------------------------------------------------------------------ *)

let effective_plan t ~callsite ~nargs ~has_ret =
  match t.cfg.Config.serializer with
  | Config.Class_specific -> Plan.generic ~callsite ~nargs ~has_ret
  | Config.Site_specific -> (
      match Hashtbl.find_opt t.plans callsite with
      | Some p -> p
      | None -> Plan.generic ~callsite ~nargs ~has_ret)

let site_mode t = t.cfg.Config.serializer = Config.Site_specific

let compile_plan (plan : Plan.t) =
  let defs = plan.Plan.defs in
  {
    cp_plan = plan;
    cp_write_args = Array.map (Codec.compile_write ~defs) plan.Plan.args;
    cp_read_args = Array.map (Codec.compile_read ~defs) plan.Plan.args;
    cp_write_ret = Option.map (Codec.compile_write ~defs) plan.Plan.ret;
    cp_read_ret = Option.map (Codec.compile_read ~defs) plan.Plan.ret;
    cp_wctx = None;
    cp_rctx = None;
    cp_arena = None;
    cp_arctx = None;
  }

(* compiled once per (node, call site, plan version); the config is
   fixed per node so the effective plan per version is stable.  The
   [nargs] recheck matters for version 0: class-generic traffic shares
   callsite -1 across methods of different arity. *)
let compiled_for t ~callsite ~nargs ~has_ret =
  let plan = effective_plan t ~callsite ~nargs ~has_ret in
  let key = (callsite, plan.Plan.version) in
  match Hashtbl.find_opt t.compiled_plans key with
  | Some cp when Array.length cp.cp_plan.Plan.args = nargs -> cp
  | _ ->
      (if site_mode t && not (Hashtbl.mem t.plans callsite) then
         Log.warn (fun m ->
             m
               "machine %d: no compiler plan for call site %d; falling back                 to the generic tag-carrying plan"
               t.nid callsite));
      let cp = compile_plan plan in
      Hashtbl.replace t.compiled_plans key cp;
      cp

(* compile [plan] and remember it under its (callsite, version) key *)
let intern_plan t (plan : Plan.t) =
  let key = (plan.Plan.callsite, plan.Plan.version) in
  match Hashtbl.find_opt t.compiled_plans key with
  | Some cp -> cp
  | None ->
      let cp = compile_plan plan in
      Hashtbl.replace t.compiled_plans key cp;
      cp

let compiled_generic t ~callsite ~nargs ~has_ret =
  let key = (callsite, Plan.generic_version) in
  match Hashtbl.find_opt t.compiled_plans key with
  | Some cp when Array.length cp.cp_plan.Plan.args = nargs -> cp
  | _ ->
      let cp = compile_plan (Plan.generic ~callsite ~nargs ~has_ret) in
      Hashtbl.replace t.compiled_plans key cp;
      cp

let adaptive t =
  site_mode t && t.cfg.Config.tier = Config.Adaptive

(* resolve the plan a payload tagged [plan_ver] was encoded with:
   compiled cache, then the shared plan table, then the plan store's
   per-version history *)
let resolve_version t ~callsite ~nargs ~has_ret ver =
  if ver = Plan.generic_version then
    (* 0 usually means "generic encoding", but legacy hand-built plans
       (and the class-mode pseudo-plan) carry version 0 with a
       plan-specific encoding; the effective plan for the site
       disambiguates: if it is itself version 0, the peer encoded with
       it, otherwise the peer's site was still cold and used the truly
       generic steps *)
    match compiled_for t ~callsite ~nargs ~has_ret with
    | cp when cp.cp_plan.Plan.version = Plan.generic_version -> Some cp
    | _ -> Some (compiled_generic t ~callsite ~nargs ~has_ret)
  else
    match Hashtbl.find_opt t.compiled_plans (callsite, ver) with
    | Some cp -> Some cp
    | None -> (
        let from_table =
          match Hashtbl.find_opt t.plans callsite with
          | Some p when p.Plan.version = ver -> Some p
          | _ -> None
        in
        let plan =
          match from_table with
          | Some p -> Some p
          | None -> (
              match t.plan_store with
              | Some store ->
                  Rmi_core.Plan_store.version store ~site:callsite ver
              | None -> None)
        in
        match plan with Some p -> Some (intern_plan t p) | None -> None)

(* deoptimization bookkeeping shared by the argument (caller) and
   return (callee) paths: publish the widened plan so every node — and
   this node after a restart — decodes and re-specializes with it *)
let publish_widened t (widened : Plan.t) ~position =
  Metrics.incr_tier_deopts (metrics t);
  trace_event t
    (Trace.Deopt
       { machine = t.nid; callsite = widened.Plan.callsite; position;
         version = widened.Plan.version });
  Log.debug (fun m ->
      m "machine %d: deopt site=%d at %s -> plan v%d" t.nid
        widened.Plan.callsite position widened.Plan.version);
  Hashtbl.replace t.plans widened.Plan.callsite widened;
  (match t.plan_store with
  | Some store -> Rmi_core.Plan_store.publish store widened
  | None -> ());
  intern_plan t widened

(* ------------------------------------------------------------------ *)
(* adaptive tier: per-site invocation counting and promotion           *)
(* ------------------------------------------------------------------ *)

let tier_for t ~callsite ~nargs ~has_ret =
  match Hashtbl.find_opt t.tiers callsite with
  | Some st -> st
  | None ->
      let st =
        {
          st_calls = 0;
          st_promoted = false;
          st_cp = compiled_generic t ~callsite ~nargs ~has_ret;
        }
      in
      Hashtbl.replace t.tiers callsite st;
      st

(* the site crossed the hot threshold: fetch its specialized plan —
   from the plan store (compiling on demand through the pass manager)
   or the ahead-of-time table — and switch the site over to it *)
let promote t st ~callsite ~nargs =
  st.st_promoted <- true;
  let plan =
    match t.plan_store with
    | Some store -> (
        match Rmi_core.Plan_store.get store ~site:callsite with
        | Some (p, outcome) ->
            (match outcome with
            | Rmi_core.Plan_store.Hit -> Metrics.incr_plan_cache_hits (metrics t)
            | Rmi_core.Plan_store.Compiled | Rmi_core.Plan_store.Invalidated ->
                Metrics.incr_plan_cache_misses (metrics t));
            Some p
        | None -> Hashtbl.find_opt t.plans callsite)
    | None -> Hashtbl.find_opt t.plans callsite
  in
  match plan with
  | Some p
    when p.Plan.version > Plan.generic_version
         && Array.length p.Plan.args = nargs ->
      st.st_cp <- intern_plan t p;
      Metrics.incr_tier_promotions (metrics t);
      trace_event t
        (Trace.Promote
           { machine = t.nid; callsite; calls = st.st_calls;
             version = p.Plan.version })
  | _ ->
      (* no specialized plan exists for this site: it stays generic *)
      ()

(* plan the tiered dispatcher uses for an outgoing call at [callsite] *)
let dispatch_cp t ~callsite ~nargs ~has_ret =
  if adaptive t then begin
    let st = tier_for t ~callsite ~nargs ~has_ret in
    st.st_calls <- st.st_calls + 1;
    Metrics.record_site_call (metrics t) ~callsite;
    if (not st.st_promoted) && st.st_calls >= t.cfg.Config.hot_threshold then
      promote t st ~callsite ~nargs;
    st.st_cp
  end
  else compiled_for t ~callsite ~nargs ~has_ret

let eff_cycle_args t (plan : Plan.t) =
  if site_mode t && t.cfg.Config.elide_cycle then plan.cycle_args else true

let eff_cycle_ret t (plan : Plan.t) =
  if site_mode t && t.cfg.Config.elide_cycle then plan.cycle_ret else true

let eff_reuse_arg t (plan : Plan.t) i =
  site_mode t && t.cfg.Config.reuse && plan.reuse_args.(i)

let eff_reuse_ret t (plan : Plan.t) =
  site_mode t && t.cfg.Config.reuse && plan.reuse_ret

(* ------------------------------------------------------------------ *)
(* reuse caches (Figure 13's temp_arr, per call site)                  *)
(* ------------------------------------------------------------------ *)

let take_arg_cand t ~callsite ~nargs i =
  match Hashtbl.find_opt t.arg_caches callsite with
  | None ->
      Hashtbl.replace t.arg_caches callsite (Array.make nargs None);
      Value.Null
  | Some slots -> (
      match slots.(i) with
      | Some v ->
          (* multithreading guard: empty the slot while in use *)
          slots.(i) <- None;
          v
      | None -> Value.Null)

let restore_arg_cand t ~callsite i v =
  match Hashtbl.find_opt t.arg_caches callsite with
  | Some slots -> slots.(i) <- Some v
  | None -> ()

let take_ret_cand t ~callsite =
  match Hashtbl.find_opt t.ret_caches callsite with
  | Some v ->
      Hashtbl.remove t.ret_caches callsite;
      v
  | None -> Value.Null

let restore_ret_cand t ~callsite v = Hashtbl.replace t.ret_caches callsite v

(* ------------------------------------------------------------------ *)
(* marshaling                                                          *)
(* ------------------------------------------------------------------ *)

(* internal: [Type_confusion] with the offending argument position
   attached, so the deoptimizer knows what to widen *)
exception Arg_confusion of int * string

(* the plan's cached write context (zc mode), reset under the Codec
   discipline before each use; a fresh context per call otherwise *)
let wctx_for t cp ~cycle =
  if not (zc t) then
    Codec.make_wctx ~defs:cp.cp_plan.Plan.defs t.meta (metrics t) ~cycle
  else
    match cp.cp_wctx with
    | Some (c, wctx) when c = cycle ->
        Codec.reset_wctx wctx;
        wctx
    | _ ->
        let wctx =
          Codec.make_wctx ~defs:cp.cp_plan.Plan.defs t.meta (metrics t) ~cycle
        in
        cp.cp_wctx <- Some (cycle, wctx);
        wctx

let rctx_for t cp ~cycle =
  if not (zc t) then
    Codec.make_rctx ~defs:cp.cp_plan.Plan.defs t.meta (metrics t) ~cycle
  else
    match cp.cp_rctx with
    | Some (c, rctx) when c = cycle ->
        Codec.reset_rctx rctx;
        rctx
    | _ ->
        let rctx =
          Codec.make_rctx ~defs:cp.cp_plan.Plan.defs t.meta (metrics t) ~cycle
        in
        cp.cp_rctx <- Some (cycle, rctx);
        rctx

(* Arena decoding applies when the knob is on, the plan's escape
   analysis proved no served argument outlives its dispatch, and
   per-position reuse is off — reuse already recycles the previous
   call's graph in place, and running both schemes at once would hand
   the same node out twice (once as a reuse candidate, once from a
   shape pool). *)
let arena_mode t cp =
  t.cfg.Config.arena && site_mode t
  && (not t.cfg.Config.reuse)
  && cp.cp_plan.Plan.non_escaping

(* Serve-side argument decode context: arena-backed under [arena_mode].
   The previous dispatch's nodes are parked here, on next acquisition,
   rather than on the dispatch's many exit paths — equivalent, since
   [non_escaping] proves nothing referenced them in between. *)
let serve_rctx_for t cp ~cycle =
  if not (arena_mode t cp) then rctx_for t cp ~cycle
  else begin
    let arena =
      match cp.cp_arena with
      | Some a -> a
      | None ->
          let a = Rmi_serial.Arena.create ~metrics:(metrics t) in
          cp.cp_arena <- Some a;
          a
    in
    Rmi_serial.Arena.reset arena;
    match cp.cp_arctx with
    | Some (c, rctx) when c = cycle ->
        Codec.reset_rctx rctx;
        rctx
    | _ ->
        let rctx =
          Codec.make_rctx ~defs:cp.cp_plan.Plan.defs ~arena t.meta (metrics t)
            ~cycle
        in
        cp.cp_arctx <- Some (cycle, rctx);
        rctx
  end

let marshal_args_positional t cp header args =
  let plan = cp.cp_plan in
  let w = acquire_msg_writer t in
  try
    Protocol.write_header w header;
    let wctx = wctx_for t cp ~cycle:(eff_cycle_args t plan) in
    Array.iteri
      (fun i write ->
        try write wctx w args.(i)
        with Codec.Type_confusion msg ->
          (* the aborted write may have registered objects in the cycle
             table; reset so a replay cannot emit dangling handles *)
          Codec.reset_wctx wctx;
          raise (Arg_confusion (i, msg)))
      cp.cp_write_args;
    w
  with e ->
    release_msg_writer t w;
    raise e

let marshal_args t cp header args =
  try marshal_args_positional t cp header args
  with Arg_confusion (_, msg) -> raise (Codec.Type_confusion msg)

(* Adaptive encode: when a specialized plan's static promise is broken
   by a runtime value, widen the offending argument to the dynamic
   step, publish the repaired plan, and replay the write through it —
   the RMI still succeeds, just via the dynamic serializer for that
   position.  Terminates: each round widens one position and S_dyn
   never raises.  Returns the (possibly widened) plan actually used and
   the encoded request, whose header carries the matching version. *)
let marshal_args_tiered t st cp header args =
  if not (adaptive t) then (cp, header, marshal_args t cp header args)
  else
    let rec attempt cp header =
      match marshal_args_positional t cp header args with
      | w -> (cp, header, w)
      | exception Arg_confusion (i, msg) ->
          if cp.cp_plan.Plan.version = Plan.generic_version then
            (* the generic plan cannot confuse types; re-raise *)
            raise (Codec.Type_confusion msg)
          else begin
            let widened = Plan.widen cp.cp_plan (`Arg i) in
            let cp' =
              publish_widened t widened
                ~position:(Format.asprintf "%a" Plan.pp_position (`Arg i))
            in
            (match st with Some st -> st.st_cp <- cp' | None -> ());
            attempt cp'
              { header with Protocol.plan_ver = widened.Plan.version }
          end
    in
    attempt cp header

let unmarshal_args t cp ~callsite r =
  let plan = cp.cp_plan in
  let rctx = serve_rctx_for t cp ~cycle:(eff_cycle_args t plan) in
  let nargs = Array.length plan.Plan.args in
  let roots =
    Array.mapi
      (fun i read ->
        let cand =
          if eff_reuse_arg t plan i then take_arg_cand t ~callsite ~nargs i
          else Value.Null
        in
        read rctx r ~cand)
      cp.cp_read_args
  in
  (* set the parameters up for the next RMI at this site *)
  Array.iteri
    (fun i root ->
      if eff_reuse_arg t plan i then restore_arg_cand t ~callsite i root)
    roots;
  roots

let marshal_ret t cp header ret =
  let plan = cp.cp_plan in
  let w = acquire_msg_writer ~initial_capacity:256 t in
  try
    match (cp.cp_write_ret, ret) with
    | None, _ ->
        Protocol.write_header w { header with Protocol.kind = Protocol.Ack };
        w
    | Some write, v ->
        (* a void method under a value-bearing plan replies null *)
        Protocol.write_header w { header with Protocol.kind = Protocol.Reply };
        let wctx = wctx_for t cp ~cycle:(eff_cycle_ret t plan) in
        write wctx w (Option.value v ~default:Value.Null);
        w
  with e ->
    release_msg_writer t w;
    raise e

(* Adaptive reply encode: a return value that breaks the specialized
   plan deoptimizes the return position — widen, publish, replay — so
   the caller still gets its reply (tagged with the widened version)
   instead of an exception. *)
let marshal_ret_tiered t cp header ret =
  if not (adaptive t) then marshal_ret t cp header ret
  else
    let rec attempt cp (header : Protocol.header) =
      match marshal_ret t cp header ret with
      | w -> w
      | exception Codec.Type_confusion msg ->
          if cp.cp_plan.Plan.version = Plan.generic_version then
            raise (Codec.Type_confusion msg)
          else begin
            let widened = Plan.widen cp.cp_plan `Ret in
            let cp' = publish_widened t widened ~position:"ret" in
            (* this site may also be called *from* this node *)
            (match Hashtbl.find_opt t.tiers widened.Plan.callsite with
            | Some st when st.st_promoted -> st.st_cp <- cp'
            | _ -> ());
            attempt cp'
              { header with Protocol.plan_ver = widened.Plan.version }
          end
    in
    attempt cp header

let unmarshal_ret t cp ~callsite (hdr : Protocol.header) r =
  (* the reply announces which plan version encoded the return value;
     a server that deoptimized mid-reply answers with a newer version
     than the request carried *)
  let cp =
    if hdr.Protocol.plan_ver = cp.cp_plan.Plan.version then cp
    else begin
      let nargs = Array.length cp.cp_plan.Plan.args in
      let has_ret = cp.cp_plan.Plan.ret <> None in
      match resolve_version t ~callsite ~nargs ~has_ret hdr.Protocol.plan_ver with
      | Some cp' ->
          (* adopt the newer encoding for future calls at this site *)
          (if adaptive t && hdr.Protocol.plan_ver > cp.cp_plan.Plan.version
           then
             match Hashtbl.find_opt t.tiers callsite with
             | Some st when st.st_promoted -> st.st_cp <- cp'
             | _ -> ());
          cp'
      | None ->
          raise
            (Remote_exception
               (Printf.sprintf
                  "machine %d: reply for site %d uses unknown plan version %d"
                  t.nid callsite hdr.Protocol.plan_ver))
    end
  in
  let plan = cp.cp_plan in
  match hdr.kind with
  | Protocol.Ack -> None
  | Protocol.Exn_reply -> raise (Remote_exception (Msgbuf.read_string r))
  | Protocol.Reply -> (
      match cp.cp_read_ret with
      | None -> None
      | Some read ->
          let rctx = rctx_for t cp ~cycle:(eff_cycle_ret t plan) in
          let cand =
            if eff_reuse_ret t plan then take_ret_cand t ~callsite else Value.Null
          in
          let v = read rctx r ~cand in
          if eff_reuse_ret t plan then restore_ret_cand t ~callsite v;
          Some v)
  | Protocol.Request | Protocol.Reject ->
      (* requests are served, rejects resent, before unmarshaling *)
      assert false

(* ------------------------------------------------------------------ *)
(* sending: direct, or through the per-link batch buffers              *)
(* ------------------------------------------------------------------ *)

let send_msg t ~dest payload =
  if Rmi_net.Transport.batching_enabled t.net then
    List.iter
      (fun (d, msgs, bytes) ->
        trace_event t (Trace.Batch_flush { machine = t.nid; dest = d; msgs; bytes }))
      (Rmi_net.Transport.send_buffered t.net ~src:t.nid ~dest payload)
  else Rmi_net.Transport.send t.net ~src:t.nid ~dest payload

(* ship the message sitting in [w] (built by [acquire_msg_writer]).
   [snapshot] is the message already materialized by the caller (the
   retry copy of a request, a reply-cache entry) so paths that need
   bytes anyway never copy twice.  In zero-copy mode without batching,
   the reliable transport frames the writer's payload in place
   ([Cluster.send_writer]); under the raw transport the one snapshot
   doubles as the wire frame. *)
let send_from_writer t ~dest ?snapshot w =
  if (not (zc t)) || Rmi_net.Transport.batching_enabled t.net then
    let msg =
      match snapshot with Some m -> m | None -> msg_of_writer t w
    in
    send_msg t ~dest msg
  else
    match snapshot with
    | Some msg when not (Rmi_net.Transport.is_reliable t.net) ->
        Rmi_net.Transport.send t.net ~src:t.nid ~dest msg
    | _ ->
        Rmi_net.Transport.send_writer t.net ~src:t.nid ~dest w
          ~payload_off:gap

(* ship whatever this machine has coalesced; a no-op when batching is
   off or the buffers are empty *)
let flush_self t =
  if Rmi_net.Transport.batching_enabled t.net then
    List.iter
      (fun (d, msgs, bytes) ->
        trace_event t (Trace.Batch_flush { machine = t.nid; dest = d; msgs; bytes }))
      (Rmi_net.Transport.flush t.net ~src:t.nid)

(* ------------------------------------------------------------------ *)
(* the outstanding-request table                                       *)
(* ------------------------------------------------------------------ *)

let is_pending p = match p.pc_state with Pending -> true | _ -> false

(* ------------------------------------------------------------------ *)
(* failover policy: replicas and per-peer circuit breakers             *)
(* ------------------------------------------------------------------ *)

let set_replica t ~primary ~replica =
  if primary = replica then invalid_arg "Node.set_replica: primary = replica";
  Hashtbl.replace t.replicas primary replica

let breaker_for t dest =
  match Hashtbl.find_opt t.breakers dest with
  | Some b -> b
  | None ->
      let b = { consecutive = 0; opened_at = -1.0 } in
      Hashtbl.replace t.breakers dest b;
      b

(* may this node issue a call to [dest] right now?  An open breaker
   fast-fails until the cooldown expires, then lets one probe through
   half-open (primed so the next failure re-opens immediately) *)
let breaker_allows t ~dest ~now =
  match Hashtbl.find_opt t.breakers dest with
  | None -> true
  | Some b ->
      if b.opened_at < 0.0 then true
      else if
        now -. b.opened_at >= t.cfg.Config.failover.Config.breaker_cooldown
      then begin
        b.opened_at <- -1.0;
        b.consecutive <- t.cfg.Config.failover.Config.breaker_threshold - 1;
        true
      end
      else false

let breaker_failure t dest =
  let b = breaker_for t dest in
  b.consecutive <- b.consecutive + 1;
  if
    b.consecutive >= t.cfg.Config.failover.Config.breaker_threshold
    && b.opened_at < 0.0
  then begin
    b.opened_at <- Unix.gettimeofday ();
    trace_event t (Trace.Breaker_open { machine = t.nid; peer = dest })
  end

let breaker_success t dest =
  match Hashtbl.find_opt t.breakers dest with
  | None -> ()
  | Some b ->
      b.consecutive <- 0;
      b.opened_at <- -1.0

let resolve_future t (p : pending) state =
  Hashtbl.remove t.outstanding p.pc_seq;
  p.pc_state <- state;
  (* any response — value or remote exception — proves the peer alive *)
  (match state with
  | Resolved _ | Failed (Remote_exception _) | Failed (No_such_method _) ->
      if p.pc_dest <> t.nid then breaker_success t p.pc_dest
  | _ -> ());
  trace_event t
    (Trace.Future_resolved
       { machine = t.nid; seq = p.pc_seq; callsite = p.pc_callsite;
         failed = (match state with Failed _ -> true | _ -> false) });
  match state with
  | Failed _ -> ()
  | _ ->
      let elapsed_s = Unix.gettimeofday () -. p.pc_started in
      (* client-observed round trip, one histogram sample per settled
         call; both the local and any remote domain may record, hence
         the atomic buckets *)
      Metrics.record_latency_ns (metrics t)
        (int_of_float (elapsed_s *. 1e9));
      trace_event t
        (Trace.Call_end
           { machine = t.nid; callsite = p.pc_callsite;
             elapsed_us = elapsed_s *. 1e6 })

(* a reply/ack/exn-reply landed: settle whichever future asked for it.
   Replies can arrive in any order relative to the issue order — the
   seq in the echoed header is the correlation key. *)
let handle_reply t (hdr : Protocol.header) r =
  match Hashtbl.find_opt t.outstanding hdr.Protocol.seq with
  | None ->
      (* no one is waiting: a duplicate suppressed late, or a reply to
         an abandoned (timed-out) call; drop it *)
      Log.debug (fun m ->
          m "machine %d: dropping unexpected reply seq=%d" t.nid
            hdr.Protocol.seq)
  | Some p when hdr.Protocol.kind = Protocol.Reject ->
      (* admission control refused the request: it was never executed,
         so re-sending cannot double-execute.  Overload is failure
         pressure — it feeds the peer's circuit breaker — but it does
         not consume the RPC retry budget: flow control is bounded by
         the call deadline alone. *)
      breaker_failure t p.pc_dest;
      let now = Unix.gettimeofday () in
      if now >= p.pc_deadline then begin
        trace_event t (Trace.Timeout { machine = t.nid; dests = [ p.pc_dest ] });
        resolve_future t p
          (Failed
             (Server_busy
                (Printf.sprintf
                   "machine %d: seq %d rejected by machine %d until its \
                    deadline passed"
                   t.nid p.pc_seq p.pc_dest)))
      end
      else begin
        (* pause so a saturated server can drain before the retry;
           without a pump the client is the only local runner, so
           sleeping the domain is all the backoff available.  The pause
           doubles per consecutive reject (capped) — a fixed interval
           turns a persistently saturated server into a reject/resend
           hot loop that amplifies the very load that caused it *)
        p.pc_rejects <- p.pc_rejects + 1;
        if not t.has_pump then begin
          let pause =
            0.0002 *. float_of_int (1 lsl min (p.pc_rejects - 1) 6)
          in
          Unix.sleepf pause
        end;
        send_msg t ~dest:p.pc_dest p.pc_request
      end
  | Some p ->
      let state =
        match unmarshal_ret t p.pc_cp ~callsite:p.pc_callsite hdr r with
        | v -> Resolved v
        | exception e -> Failed e
      in
      resolve_future t p state

(* fail every in-flight call matched by [sel]; their exceptions
   re-raise at await time *)
let fail_outstanding t sel mk_exn =
  let victims =
    Hashtbl.fold (fun _ p acc -> if sel p then p :: acc else acc) t.outstanding []
  in
  List.iter (fun p -> resolve_future t p (Failed (mk_exn p))) victims

(* ------------------------------------------------------------------ *)
(* serving                                                             *)
(* ------------------------------------------------------------------ *)

(* remember [reply] for this request so an RPC-level retry is answered
   without re-executing the handler; bounded FIFO so paper-scale
   benchmark runs cannot grow without limit *)
let cache_reply t key reply =
  let cap = t.cfg.Config.failover.Config.reply_cache_cap in
  if cap > 0 then begin
    if not (Hashtbl.mem t.reply_cache key) then begin
      Queue.push key t.reply_order;
      if Queue.length t.reply_order > cap then
        Hashtbl.remove t.reply_cache (Queue.pop t.reply_order)
    end;
    Hashtbl.replace t.reply_cache key reply
  end

let serve_request t (hdr : Protocol.header) r =
  if hdr.method_id = shutdown_method then t.shutdown <- true
  else begin
    let exn_reply_now msg =
      let w = acquire_msg_writer t in
      Protocol.write_header w { hdr with Protocol.kind = Protocol.Exn_reply };
      Msgbuf.write_string w msg;
      send_from_writer t ~dest:hdr.src w;
      release_msg_writer t w
    in
    (* the reply cache only matters where requests can be retried — the
       reliable transport; the raw paper-table path skips it entirely *)
    let cache_key =
      if Rmi_net.Transport.is_reliable t.net then
        Some (hdr.src, hdr.epoch, hdr.seq)
      else None
    in
    let cached =
      match cache_key with
      | None -> None
      | Some key -> Hashtbl.find_opt t.reply_cache key
    in
    match cached with
    | Some reply ->
        (* an RPC-level retry of a request this node already executed
           (its reply was lost, or a failover raced a slow primary):
           replay the stored reply, exactly-once preserved *)
        Metrics.incr_reply_cache_hits (metrics t);
        send_msg t ~dest:hdr.src reply
    | None -> (
        match find_handler t (hdr.target_obj, hdr.method_id) with
        | None ->
            exn_reply_now
              (Printf.sprintf "machine %d has no (obj %d, method %d)" t.nid
                 hdr.target_obj hdr.method_id)
        | Some entry ->
            trace_event t
              (Trace.Served
                 { machine = t.nid; src = hdr.src; meth = hdr.method_id;
                   callsite = hdr.callsite });
            (* the request header says which plan version encoded the
               arguments: version 0 is the generic tag-carrying plan,
               higher versions resolve through the compiled cache, the
               shared plan table or the plan store *)
            let exn_reply msg =
              let w = acquire_msg_writer t in
              Protocol.write_header w
                { hdr with Protocol.kind = Protocol.Exn_reply };
              Msgbuf.write_string w msg;
              w
            in
            let reply =
              match
                resolve_version t ~callsite:hdr.callsite ~nargs:hdr.nargs
                  ~has_ret:entry.has_ret hdr.plan_ver
              with
              | None ->
                  exn_reply
                    (Printf.sprintf
                       "machine %d: unknown plan version %d for site %d" t.nid
                       hdr.plan_ver hdr.callsite)
              | Some cp -> (
                  try
                    let args = unmarshal_args t cp ~callsite:hdr.callsite r in
                    let ret = entry.fn args in
                    marshal_ret_tiered t cp hdr ret
                  with
                  | Codec.Type_confusion msg | Failure msg
                  | Remote_exception msg ->
                      exn_reply msg
                  | Msgbuf.Underflow msg ->
                      (* corrupt or truncated request payload: report it
                         cleanly instead of taking the serving machine
                         down *)
                      exn_reply ("malformed request: " ^ msg))
            in
            (match cache_key with
            | Some key ->
                (* snapshotted and stored before the reply leaves:
                   execution and cache entry are atomic with respect to
                   a crash at frame granularity *)
                let snapshot = msg_of_writer t reply in
                cache_reply t key snapshot;
                send_from_writer t ~dest:hdr.src ~snapshot reply
            | None -> send_from_writer t ~dest:hdr.src reply);
            release_msg_writer t reply)
  end

(* [msg] is a slice of the received frame — under zero-copy framing an
   envelope payload or batch sub-message is read where it landed, never
   copied out first; readers over it come from the cluster pool *)
let dispatch t (buf, off, len) k =
  let pooled = zc t in
  let r =
    if pooled then Msgbuf.Pool.acquire_reader (node_pool t) ~off ~len buf
    else Msgbuf.reader_of_bytes ~off ~len buf
  in
  let release () =
    if pooled then Msgbuf.Pool.release_reader (node_pool t) r
  in
  match Protocol.read_header r with
  | exception Msgbuf.Underflow _ ->
      (* a message whose header cannot be parsed has no reply address:
         drop it; a synchronous caller sees quiescence (Deadlock), a
         parallel one its own timeout *)
      release ();
      k `Served
  | hdr -> (
      match hdr.kind with
      | Protocol.Request ->
          Fun.protect ~finally:release (fun () -> serve_request t hdr r);
          k `Served
      | Protocol.Reply | Protocol.Ack | Protocol.Exn_reply | Protocol.Reject ->
          Fun.protect ~finally:release (fun () -> k (`Reply (hdr, r))))

let consume t msg =
  dispatch t msg (function
    | `Served -> ()
    | `Reply (hdr, r) -> handle_reply t hdr r)

let serve_pending t =
  let rec go served =
    match Rmi_net.Transport.try_recv_slice t.net ~self:t.nid with
    | None -> served
    | Some msg ->
        consume t msg;
        go true
  in
  let served = go false in
  (* replies produced above may be sitting in this machine's batch
     buffers: ship them so the callers can make progress *)
  flush_self t;
  served

(* [serve_slice t msg] executes one received slice on this node —
   request, reply or reject — and ships any coalesced replies.  The
   dispatch pool calls it from worker domains; [t.serve_mutex]-style
   exclusion is the pool's job, one slice at a time per node. *)
let serve_slice t msg =
  consume t msg;
  flush_self t

(* admission control refused [hdr]'s request: answer with a [Reject]
   frame echoing the sequence number so the client's flow control can
   re-send.  Called from the pool's intake before the request payload
   is ever decoded. *)
let send_reject t (hdr : Protocol.header) =
  Metrics.incr_queue_rejects (metrics t);
  let w = acquire_msg_writer t in
  Protocol.write_header w { hdr with Protocol.kind = Protocol.Reject };
  send_from_writer t ~dest:hdr.Protocol.src w;
  release_msg_writer t w;
  flush_self t

let serve_loop t =
  t.shutdown <- false;
  while not t.shutdown do
    let msg = Rmi_net.Transport.recv_blocking_slice t.net ~self:t.nid in
    consume t msg;
    flush_self t
  done

let send_shutdown t ~dest =
  let w = acquire_msg_writer t in
  Protocol.write_header w
    {
      Protocol.kind = Protocol.Request;
      src = t.nid;
      epoch = Rmi_net.Transport.self_epoch t.net t.nid;
      seq = 0;
      target_obj = 0;
      method_id = shutdown_method;
      callsite = -1;
      nargs = 0;
      plan_ver = 0;
    };
  (* through the batch buffer so it cannot overtake coalesced traffic *)
  send_from_writer t ~dest w;
  release_msg_writer t w;
  flush_self t

(* ------------------------------------------------------------------ *)
(* the progress engine                                                 *)
(* ------------------------------------------------------------------ *)

(* Await the settlement of [p], serving interleaved requests meanwhile —
   the paper's GM-style progress while a data request is outstanding.
   In synchronous mode the pump runs the other machines directly and a
   quiescent cluster is an immediate deadlock; in parallel mode we
   block on the mailbox until the reply (or a nested request) lands. *)
(* one transport cycle on [q]'s request exhausted its retransmit
   budget (or the cluster went quiescent with [q] unanswered): retry,
   fail over to a replica, or give up according to the failure policy *)
let transport_failed t (q : pending) detail =
  let now = Unix.gettimeofday () in
  breaker_failure t q.pc_dest;
  if now >= q.pc_deadline then begin
    trace_event t (Trace.Timeout { machine = t.nid; dests = [ q.pc_dest ] });
    resolve_future t q
      (Failed
         (Rpc_timeout
            (Printf.sprintf "machine %d: seq %d missed its deadline: %s" t.nid
               q.pc_seq detail)))
  end
  else if q.pc_attempts > t.cfg.Config.failover.Config.max_call_retries then begin
    trace_event t (Trace.Timeout { machine = t.nid; dests = [ q.pc_dest ] });
    resolve_future t q
      (Failed
         (Peer_down
            (Printf.sprintf
               "machine %d: seq %d: machine %d unreachable after %d attempts: %s"
               t.nid q.pc_seq q.pc_dest q.pc_attempts detail)))
  end
  else begin
    q.pc_attempts <- q.pc_attempts + 1;
    (* fail over once the primary is confirmed Down, or on the final
       retry — whichever comes first — provided a replica exists *)
    (match Hashtbl.find_opt t.replicas q.pc_primary with
    | Some replica
      when q.pc_dest <> replica
           && (Rmi_net.Transport.peer_health t.net ~self:t.nid
                 ~peer:q.pc_dest
               = Rmi_net.Transport.Down
              || q.pc_attempts > t.cfg.Config.failover.Config.max_call_retries
              ) ->
        Metrics.incr_failovers (metrics t);
        trace_event t
          (Trace.Failover
             { machine = t.nid; seq = q.pc_seq; primary = q.pc_primary;
               replica });
        q.pc_dest <- replica
    | _ -> ());
    Metrics.incr_call_retries (metrics t);
    trace_event t
      (Trace.Call_retry
         { machine = t.nid; seq = q.pc_seq; dest = q.pc_dest;
           attempt = q.pc_attempts });
    (* same seq and epoch: the server's reply cache dedups it if the
       original was executed and only the reply was lost *)
    send_msg t ~dest:q.pc_dest q.pc_request
  end

(* fail every outstanding call whose end-to-end deadline has passed,
   whatever the transport is doing *)
let sweep_deadlines t =
  let now = Unix.gettimeofday () in
  let victims =
    Hashtbl.fold
      (fun _ q acc -> if now >= q.pc_deadline then q :: acc else acc)
      t.outstanding []
  in
  List.iter
    (fun q ->
      trace_event t (Trace.Timeout { machine = t.nid; dests = [ q.pc_dest ] });
      resolve_future t q
        (Failed
           (Rpc_timeout
              (Printf.sprintf "machine %d: seq %d missed its deadline" t.nid
                 q.pc_seq))))
    victims

let await_pending (p : pending) =
  let t = p.pc_node in
  (* consecutive idle rounds in which nothing at all was in flight;
     only meaningful without a pump, where other domains may simply be
     busy executing a handler *)
  let dead_rounds = ref 0 in
  let rec loop () =
    match p.pc_state with
    | Resolved v -> v
    | Failed e -> raise e
    | Pending -> (
        (* anything we coalesced — including p's own request — must be
           on the wire before we idle-wait for the answer *)
        flush_self t;
        match Rmi_net.Transport.try_recv_slice t.net ~self:t.nid with
        | Some msg ->
            consume t msg;
            loop ()
        | None ->
            if t.has_pump then
              if t.pump () then loop ()
              else if Rmi_net.Transport.pending_anywhere t.net then loop ()
              else drive_transport ~quiescent:true
            else if Rmi_net.Transport.is_reliable t.net then
              (* parallel mode over the reliable transport: wait in
                 short slices so this machine keeps its retransmit
                 timers running *)
              match
                Rmi_net.Transport.recv_deadline_slice t.net ~self:t.nid
                  ~seconds:0.002
              with
              | Some msg ->
                  consume t msg;
                  loop ()
              | None -> drive_transport ~quiescent:false
            else begin
              let msg =
                Rmi_net.Transport.recv_blocking_slice t.net ~self:t.nid
              in
              consume t msg;
              loop ()
            end)
  and drive_transport ~quiescent =
    (* end-to-end deadlines fire whatever the transport is doing, so no
       future can outlive its budget *)
    sweep_deadlines t;
    (* every outstanding call routed at a destination the transport gave
       up on goes through the failure policy: RPC retry, failover to a
       replica, or Peer_down/Rpc_timeout *)
    let gave_up dests detail =
      let victims =
        Hashtbl.fold
          (fun _ q acc -> if List.mem q.pc_dest dests then q :: acc else acc)
          t.outstanding []
      in
      List.iter (fun q -> transport_failed t q detail) victims;
      (* retried requests may be sitting in the batch buffers *)
      flush_self t;
      loop ()
    in
    match Rmi_net.Transport.idle t.net ~self:t.nid with
    | Rmi_net.Transport.Raw_transport ->
        if quiescent then begin
          fail_outstanding t (fun _ -> true) (fun q ->
              Deadlock
                (Printf.sprintf "machine %d: no reply for seq %d and the                                 cluster is quiescent" t.nid q.pc_seq));
          loop ()
        end
        else loop ()
    | Rmi_net.Transport.Retransmitted n ->
        dead_rounds := 0;
        trace_event t (Trace.Retry { machine = t.nid; frames = n });
        loop ()
    | Rmi_net.Transport.Waiting ->
        dead_rounds := 0;
        loop ()
    | Rmi_net.Transport.Gave_up dests ->
        dead_rounds := 0;
        gave_up dests
          (Printf.sprintf "frames to machine(s) %s exhausted their retransmit                           budget"
             (String.concat "," (List.map string_of_int dests)))
    | Rmi_net.Transport.Dead ->
        (* nothing in flight anywhere yet calls are outstanding: their
           requests (or replies) died with a crashed machine — e.g. an
           amnesia restart that lost an acked-but-unanswered request.
           Resending is the only road to progress. *)
        let dests =
          List.sort_uniq compare
            (Hashtbl.fold (fun _ q acc -> q.pc_dest :: acc) t.outstanding [])
        in
        if quiescent then
          (* synchronous mode: this thread is the whole cluster, so an
             empty network can never produce the reply by waiting *)
          gave_up dests "nothing left in flight"
        else begin
          incr dead_rounds;
          if !dead_rounds > 500 then gave_up dests "nothing left in flight"
          else loop ()
        end
  in
  loop ()

(* nonblocking settlement check: drain the mailbox (and, in synchronous
   mode, give the rest of the cluster one pump) without ever idling *)
let peek_pending (p : pending) =
  let t = p.pc_node in
  (if is_pending p then begin
     flush_self t;
     let rec drain () =
       match Rmi_net.Transport.try_recv_slice t.net ~self:t.nid with
       | Some msg ->
           consume t msg;
           drain ()
       | None -> ()
     in
     drain ();
     if is_pending p && t.has_pump then begin
       ignore (t.pump () : bool);
       drain ()
     end
   end);
  match p.pc_state with
  | Pending -> None
  | Resolved v -> Some v
  | Failed e -> raise e

(* ------------------------------------------------------------------ *)
(* calling                                                             *)
(* ------------------------------------------------------------------ *)

let call_async ?deadline t ~(dest : Remote_ref.t) ~meth ~callsite ~has_ret
    args =
  let started = Unix.gettimeofday () in
  trace_event t
    (Trace.Call_start
       { machine = t.nid; dest = dest.Remote_ref.machine; meth; callsite;
         local = dest.Remote_ref.machine = t.nid });
  Log.debug (fun m ->
      m "machine %d: call meth=%d site=%d -> machine %d" t.nid meth callsite
        dest.Remote_ref.machine);
  let nargs = Array.length args in
  let cp = dispatch_cp t ~callsite ~nargs ~has_ret in
  if Array.length cp.cp_plan.Plan.args <> nargs then
    invalid_arg
      (Printf.sprintf "Node.call: plan for site %d expects %d args, got %d"
         callsite
         (Array.length cp.cp_plan.Plan.args)
         nargs);
  t.seq <- t.seq + 1;
  let header =
    {
      Protocol.kind = Protocol.Request;
      src = t.nid;
      epoch = Rmi_net.Transport.self_epoch t.net t.nid;
      seq = t.seq;
      target_obj = dest.Remote_ref.obj;
      method_id = meth;
      callsite;
      nargs;
      plan_ver = cp.cp_plan.Plan.version;
    }
  in
  let budget =
    match deadline with
    | Some d -> d
    | None -> t.cfg.Config.failover.Config.call_deadline
  in
  let p =
    {
      pc_seq = t.seq;
      pc_callsite = callsite;
      pc_dest = dest.Remote_ref.machine;
      pc_primary = dest.Remote_ref.machine;
      pc_cp = cp;
      pc_node = t;
      pc_started = started;
      pc_deadline = started +. budget;
      pc_request = Bytes.empty;
      pc_attempts = 1;
      pc_rejects = 0;
      pc_state = Pending;
    }
  in
  trace_event t
    (Trace.Future_created
       { machine = t.nid; seq = p.pc_seq; callsite;
         dest = dest.Remote_ref.machine });
  let tier_st = if adaptive t then Hashtbl.find_opt t.tiers callsite else None in
  if dest.Remote_ref.machine = t.nid then begin
    (* same machine: clone through the serializer, skip the wire; runs
       eagerly, with any exception captured for the await *)
    Metrics.incr_local_rpcs (metrics t);
    let state =
      match
        let cp, header, w = marshal_args_tiered t tier_st cp header args in
        p.pc_cp <- cp;
        Fun.protect
          ~finally:(fun () -> release_msg_writer t w)
          (fun () ->
            let r = reader_of_msg_writer t w in
            let (_ : Protocol.header) = Protocol.read_header r in
            let entry =
              match find_handler t (dest.Remote_ref.obj, meth) with
              | Some e -> e
              | None ->
                  raise
                    (No_such_method
                       (Printf.sprintf "machine %d has no (obj %d, method %d)"
                          t.nid dest.Remote_ref.obj meth))
            in
            let call_args = unmarshal_args t cp ~callsite r in
            let ret = entry.fn call_args in
            let wr = marshal_ret_tiered t cp header ret in
            Fun.protect
              ~finally:(fun () -> release_msg_writer t wr)
              (fun () ->
                let rr = reader_of_msg_writer t wr in
                let rhdr = Protocol.read_header rr in
                unmarshal_ret t p.pc_cp ~callsite rhdr rr))
      with
      | v -> Resolved v
      | exception e -> Failed e
    in
    resolve_future t p state;
    p
  end
  else if not (breaker_allows t ~dest:dest.Remote_ref.machine ~now:started)
  then begin
    (* circuit open: fail fast without touching the wire, so a dead
       peer costs one exception instead of a full retransmit budget *)
    Metrics.incr_breaker_fastfails (metrics t);
    resolve_future t p
      (Failed
         (Peer_down
            (Printf.sprintf "machine %d: circuit open to machine %d" t.nid
               dest.Remote_ref.machine)));
    p
  end
  else begin
    Metrics.incr_remote_rpcs (metrics t);
    let cp, _header, w = marshal_args_tiered t tier_st cp header args in
    p.pc_cp <- cp;
    (* the one payload snapshot the zero-copy path makes: the stable
       request bytes kept for RPC-level retries *)
    p.pc_request <- msg_of_writer t w;
    Hashtbl.replace t.outstanding p.pc_seq p;
    Metrics.record_outstanding (metrics t) (Hashtbl.length t.outstanding);
    send_from_writer t ~dest:dest.Remote_ref.machine ~snapshot:p.pc_request w;
    release_msg_writer t w;
    p
  end

module Future = struct
  type nonrec t = pending

  let await = await_pending
  let peek = peek_pending
  let all ps = List.map await_pending ps
end

let call ?deadline t ~dest ~meth ~callsite ~has_ret args =
  await_pending (call_async ?deadline t ~dest ~meth ~callsite ~has_ret args)
