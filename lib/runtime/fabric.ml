type mode = Sync | Parallel
type backend = Sim | Sock

type t = {
  net : Rmi_net.Transport.t;
  sim : Rmi_net.Cluster.t option;
  nodes : Node.t array;
  fmode : mode;
  proc : bool;  (* process mode: only one machine lives in this OS process *)
  mutable domains : unit Domain.t list;
  mutable pool : Dispatch_pool.t option;
  mutable started : bool;
}

let make_nodes ?plan_store net ~n ~meta ~config ~plans =
  Array.init n (fun id -> Node.create ?plan_store net ~id ~meta ~config ~plans)

(* stack the Reliable ARQ adapter over a socket transport when the
   config asks for it; raw TCP stays bare *)
let layer_sock config lower =
  match config.Config.transport with
  | Config.Raw -> lower
  | Config.Reliable -> Rmi_net.Reliable.wrap lower

let create ?(mode = Sync) ?(backend = Sim) ?faults ?chaos ?plan_store ~n ~meta
    ~config ~plans ~metrics () =
  let net, sim =
    match backend with
    | Sim ->
        if chaos <> None then
          invalid_arg
            "Fabric.create: the chaos injector drives a socket transport; \
             use ?faults with the Sim backend";
        let transport =
          match config.Config.transport with
          | Config.Raw -> Rmi_net.Cluster.Raw
          | Config.Reliable ->
              Rmi_net.Cluster.Reliable Rmi_net.Cluster.default_params
        in
        let cluster =
          Rmi_net.Cluster.create ~transport ~zero_copy:config.Config.zero_copy
            ~n metrics
        in
        Option.iter (Rmi_net.Cluster.set_faults cluster) faults;
        (Rmi_net.Sim.pack cluster, Some cluster)
    | Sock ->
        if faults <> None && chaos <> None then
          invalid_arg
            "Fabric.create: pass either ?faults or ?chaos over Sock, not \
             both (a chaos injector embeds its own fault schedule)";
        let lower = Rmi_net.Sock.create_loopback ?chaos ~n metrics in
        (* a bare schedule wraps into a connection-plan-free injector *)
        Option.iter (Rmi_net.Transport.set_faults lower) faults;
        (layer_sock config lower, None)
  in
  if config.Config.batching then Rmi_net.Transport.enable_batching net;
  let nodes = make_nodes ?plan_store net ~n ~meta ~config ~plans in
  let t =
    { net; sim; nodes; fmode = mode; proc = false; domains = []; pool = None;
      started = false }
  in
  (if mode = Sync then
     (* a machine that waits pumps every other machine's queue *)
     Array.iteri
       (fun self node ->
         Node.set_pump node (fun () ->
             let progress = ref false in
             Array.iteri
               (fun other node' ->
                 if other <> self && Node.serve_pending node' then
                   progress := true)
               nodes;
             !progress))
       nodes);
  t

let create_process ?listen ?chaos ?epoch ?plan_store ~self ~addrs ~meta
    ~config ~plans ~metrics () =
  let net =
    layer_sock config
      (Rmi_net.Sock.create_process ?chaos ?epoch ?listen ~self ~addrs metrics)
  in
  if config.Config.batching then Rmi_net.Transport.enable_batching net;
  let n = Array.length addrs in
  let nodes = make_nodes ?plan_store net ~n ~meta ~config ~plans in
  { net; sim = None; nodes; fmode = Parallel; proc = true; domains = [];
    pool = None; started = false }

let mode t = t.fmode
let backend t = match t.sim with Some _ -> Sim | None -> Sock
let process_mode t = t.proc
let size t = Array.length t.nodes

let node t i =
  if i < 0 || i >= Array.length t.nodes then
    invalid_arg (Printf.sprintf "Fabric.node: bad machine id %d" i);
  t.nodes.(i)

let metrics t = Rmi_net.Transport.metrics t.net
let net t = t.net

let cluster t =
  match t.sim with
  | Some c -> c
  | None ->
      invalid_arg
        "Fabric.cluster: not a Sim-backed fabric (use Fabric.net for the \
         transport-generic view)"

let start t =
  match t.fmode with
  | Sync -> ()
  | Parallel ->
      (* process mode hosts exactly one machine: there are no sibling
         nodes in this address space to spawn serve loops for *)
      if (not t.proc) && not t.started then begin
        t.started <- true;
        let cfg = Node.config t.nodes.(0) in
        if cfg.Config.domains > 0 && Array.length t.nodes > 1 then
          (* PR 6: one work-stealing pool serves nodes 1..n-1 with
             [cfg.domains] worker domains and bounded request queues;
             node 0 stays the caller's *)
          t.pool <-
            Some
              (Dispatch_pool.create ~net:t.net
                 ~nodes:(Array.sub t.nodes 1 (Array.length t.nodes - 1))
                 ~domains:cfg.Config.domains
                 ~queue_depth:cfg.Config.queue_depth ())
        else
          t.domains <-
            List.init
              (Array.length t.nodes - 1)
              (fun i ->
                let worker = t.nodes.(i + 1) in
                Domain.spawn (fun () -> Node.serve_loop worker))
      end

let stop t =
  match t.fmode with
  | Sync -> ()
  | Parallel ->
      if t.started then begin
        t.started <- false;
        match t.pool with
        | Some pool ->
            Dispatch_pool.stop pool;
            t.pool <- None
        | None ->
            for dest = 1 to Array.length t.nodes - 1 do
              Node.send_shutdown t.nodes.(0) ~dest
            done;
            List.iter Domain.join t.domains;
            t.domains <- []
      end

let shutdown_net t = Rmi_net.Transport.shutdown t.net

let run t f =
  start t;
  Fun.protect ~finally:(fun () -> stop t) (fun () -> f t)
