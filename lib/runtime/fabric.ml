type mode = Sync | Parallel

type t = {
  cluster : Rmi_net.Cluster.t;
  nodes : Node.t array;
  fmode : mode;
  mutable domains : unit Domain.t list;
  mutable pool : Dispatch_pool.t option;
  mutable started : bool;
}

let create ?(mode = Sync) ?faults ?plan_store ~n ~meta ~config ~plans ~metrics () =
  let transport =
    match config.Config.transport with
    | Config.Raw -> Rmi_net.Cluster.Raw
    | Config.Reliable -> Rmi_net.Cluster.Reliable Rmi_net.Cluster.default_params
  in
  let cluster =
    Rmi_net.Cluster.create ~transport ~zero_copy:config.Config.zero_copy ~n
      metrics
  in
  if config.Config.batching then Rmi_net.Cluster.enable_batching cluster;
  Option.iter (Rmi_net.Cluster.set_faults cluster) faults;
  let nodes =
    Array.init n (fun id -> Node.create ?plan_store cluster ~id ~meta ~config ~plans)
  in
  let t =
    { cluster; nodes; fmode = mode; domains = []; pool = None;
      started = false }
  in
  (if mode = Sync then
     (* a machine that waits pumps every other machine's queue *)
     Array.iteri
       (fun self node ->
         Node.set_pump node (fun () ->
             let progress = ref false in
             Array.iteri
               (fun other node' ->
                 if other <> self && Node.serve_pending node' then
                   progress := true)
               nodes;
             !progress))
       nodes);
  t

let mode t = t.fmode
let size t = Array.length t.nodes

let node t i =
  if i < 0 || i >= Array.length t.nodes then
    invalid_arg (Printf.sprintf "Fabric.node: bad machine id %d" i);
  t.nodes.(i)

let metrics t = Rmi_net.Cluster.metrics t.cluster
let cluster t = t.cluster

let start t =
  match t.fmode with
  | Sync -> ()
  | Parallel ->
      if not t.started then begin
        t.started <- true;
        let cfg = Node.config t.nodes.(0) in
        if cfg.Config.domains > 0 && Array.length t.nodes > 1 then
          (* PR 6: one work-stealing pool serves nodes 1..n-1 with
             [cfg.domains] worker domains and bounded request queues;
             node 0 stays the caller's *)
          t.pool <-
            Some
              (Dispatch_pool.create ~cluster:t.cluster
                 ~nodes:(Array.sub t.nodes 1 (Array.length t.nodes - 1))
                 ~domains:cfg.Config.domains
                 ~queue_depth:cfg.Config.queue_depth ())
        else
          t.domains <-
            List.init
              (Array.length t.nodes - 1)
              (fun i ->
                let worker = t.nodes.(i + 1) in
                Domain.spawn (fun () -> Node.serve_loop worker))
      end

let stop t =
  match t.fmode with
  | Sync -> ()
  | Parallel ->
      if t.started then begin
        t.started <- false;
        match t.pool with
        | Some pool ->
            Dispatch_pool.stop pool;
            t.pool <- None
        | None ->
            for dest = 1 to Array.length t.nodes - 1 do
              Node.send_shutdown t.nodes.(0) ~dest
            done;
            List.iter Domain.join t.domains;
            t.domains <- []
      end

let run t f =
  start t;
  Fun.protect ~finally:(fun () -> stop t) (fun () -> f t)
