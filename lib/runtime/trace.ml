type event =
  | Call_start of { machine : int; dest : int; meth : int; callsite : int; local : bool }
  | Call_end of { machine : int; callsite : int; elapsed_us : float }
  | Served of { machine : int; src : int; meth : int; callsite : int }
  | Retry of { machine : int; frames : int }
  | Timeout of { machine : int; dests : int list }
  | Future_created of { machine : int; seq : int; callsite : int; dest : int }
  | Future_resolved of { machine : int; seq : int; callsite : int; failed : bool }
  | Batch_flush of { machine : int; dest : int; msgs : int; bytes : int }
  | Crash of { machine : int; amnesia : bool }
  | Restart of { machine : int; epoch : int }
  | Suspect of { machine : int; peer : int }
  | Peer_down of { machine : int; peer : int }
  | Call_retry of { machine : int; seq : int; dest : int; attempt : int }
  | Failover of { machine : int; seq : int; primary : int; replica : int }
  | Breaker_open of { machine : int; peer : int }
  | Promote of { machine : int; callsite : int; calls : int; version : int }
  | Deopt of { machine : int; callsite : int; position : string; version : int }

type entry = { seq : int; at_us : float; event : event }

type t = {
  mutable rev_entries : entry list;
  mutable count : int;
  started : float;
  mutex : Mutex.t;
}

let create () =
  { rev_entries = []; count = 0; started = Unix.gettimeofday (); mutex = Mutex.create () }

let record t event =
  let at_us = (Unix.gettimeofday () -. t.started) *. 1e6 in
  Mutex.lock t.mutex;
  t.rev_entries <- { seq = t.count; at_us; event } :: t.rev_entries;
  t.count <- t.count + 1;
  Mutex.unlock t.mutex

let entries t =
  Mutex.lock t.mutex;
  let es = List.rev t.rev_entries in
  Mutex.unlock t.mutex;
  es

let length t =
  Mutex.lock t.mutex;
  let n = t.count in
  Mutex.unlock t.mutex;
  n

let clear t =
  Mutex.lock t.mutex;
  t.rev_entries <- [];
  t.count <- 0;
  Mutex.unlock t.mutex

let pp_event ppf = function
  | Call_start { machine; dest; meth; callsite; local } ->
      Format.fprintf ppf "m%d -> m%d call meth=%d site=%d%s" machine dest meth
        callsite
        (if local then " (local)" else "")
  | Call_end { machine; callsite; elapsed_us } ->
      Format.fprintf ppf "m%d done site=%d (%.1f us)" machine callsite elapsed_us
  | Served { machine; src; meth; callsite } ->
      Format.fprintf ppf "m%d served meth=%d site=%d for m%d" machine meth
        callsite src
  | Retry { machine; frames } ->
      Format.fprintf ppf "m%d retransmitted %d frame%s" machine frames
        (if frames = 1 then "" else "s")
  | Timeout { machine; dests } ->
      Format.fprintf ppf "m%d timed out waiting on %s" machine
        (String.concat "," (List.map (Printf.sprintf "m%d") dests))
  | Future_created { machine; seq; callsite; dest } ->
      Format.fprintf ppf "m%d future seq=%d site=%d -> m%d" machine seq
        callsite dest
  | Future_resolved { machine; seq; callsite; failed } ->
      Format.fprintf ppf "m%d future seq=%d site=%d %s" machine seq callsite
        (if failed then "failed" else "resolved")
  | Batch_flush { machine; dest; msgs; bytes } ->
      Format.fprintf ppf "m%d flushed %d msg%s (%d B) -> m%d" machine msgs
        (if msgs = 1 then "" else "s")
        bytes dest
  | Crash { machine; amnesia } ->
      Format.fprintf ppf "m%d crashed%s" machine
        (if amnesia then " (amnesia)" else " (durable)")
  | Restart { machine; epoch } ->
      Format.fprintf ppf "m%d restarted epoch=%d" machine epoch
  | Suspect { machine; peer } ->
      Format.fprintf ppf "m%d suspects m%d" machine peer
  | Peer_down { machine; peer } ->
      Format.fprintf ppf "m%d confirms m%d down" machine peer
  | Call_retry { machine; seq; dest; attempt } ->
      Format.fprintf ppf "m%d retry seq=%d -> m%d (attempt %d)" machine seq
        dest attempt
  | Failover { machine; seq; primary; replica } ->
      Format.fprintf ppf "m%d failover seq=%d m%d -> m%d" machine seq primary
        replica
  | Breaker_open { machine; peer } ->
      Format.fprintf ppf "m%d breaker open for m%d" machine peer
  | Promote { machine; callsite; calls; version } ->
      Format.fprintf ppf "m%d promoted site=%d after %d calls (plan v%d)"
        machine callsite calls version
  | Deopt { machine; callsite; position; version } ->
      Format.fprintf ppf "m%d deopt site=%d at %s -> plan v%d" machine
        callsite position version

let render ?(limit = 200) t =
  let buf = Buffer.create 512 in
  List.iteri
    (fun i e ->
      if i < limit then
        Buffer.add_string buf
          (Format.asprintf "%8.1fus  %a\n" e.at_us pp_event e.event))
    (entries t);
  if length t > limit then
    Buffer.add_string buf (Printf.sprintf "... (%d more events)\n" (length t - limit));
  Buffer.contents buf

let summary t =
  (* per callsite: count + latency min/mean/max over Call_end events *)
  let stats : (int, int ref * float ref * float ref * float ref) Hashtbl.t =
    Hashtbl.create 16
  in
  List.iter
    (fun e ->
      match e.event with
      | Call_end { callsite; elapsed_us; _ } ->
          let count, total, mn, mx =
            match Hashtbl.find_opt stats callsite with
            | Some s -> s
            | None ->
                let s = (ref 0, ref 0.0, ref infinity, ref 0.0) in
                Hashtbl.add stats callsite s;
                s
          in
          incr count;
          total := !total +. elapsed_us;
          if elapsed_us < !mn then mn := elapsed_us;
          if elapsed_us > !mx then mx := elapsed_us
      | Call_start _ | Served _ | Retry _ | Timeout _ | Future_created _
      | Future_resolved _ | Batch_flush _ | Crash _ | Restart _ | Suspect _
      | Peer_down _ | Call_retry _ | Failover _ | Breaker_open _ | Promote _
      | Deopt _ -> ())
    (entries t);
  let rows =
    Hashtbl.fold
      (fun callsite (count, total, mn, mx) acc ->
        ( callsite,
          [
            string_of_int callsite;
            string_of_int !count;
            Printf.sprintf "%.1f" !mn;
            Printf.sprintf "%.1f" (!total /. float_of_int !count);
            Printf.sprintf "%.1f" !mx;
          ] )
        :: acc)
      stats []
    |> List.sort compare |> List.map snd
  in
  Rmi_stats.Ascii_table.render
    ~headers:[ "callsite"; "calls"; "min us"; "mean us"; "max us" ]
    rows
