(** Distributed execution of whole JIR programs — the JavaParty story
    end to end.

    [run] compiles the program with the real optimizer, boots a
    cluster, gives every machine its own interpreter (with its own
    statics, as separate JVMs would have), and executes [entry] on
    machine 0.  Whenever the interpreted program performs a
    [Remote_call]:

    + the receiver object is placed on a machine (round-robin on first
      use, JavaParty's default placement) and its class's remote
      methods are exported there;
    + the arguments cross the cluster through the configured
      serialization path (the compiler's call-site plans under [site*]
      configurations, tag-carrying generic marshaling under [class]);
    + the method body runs in the owning machine's interpreter; nested
      remote calls recurse through the same machinery.

    Used by tests as a differential oracle: for any program, the
    observable result of [run] must equal {!Jir.Interp.run}'s built-in
    deep-copy simulation, under every optimization configuration. *)

type result = {
  value : Jir.Interp.value;  (** what [entry] returned *)
  statics : Jir.Interp.value array;
      (** machine 0's statics after the run (the caller's observable
          state; remote machines have their own) *)
  stats : Rmi_stats.Metrics.snapshot;
  wall_seconds : float;
  remote_objects : int;  (** remote instances placed during the run *)
}

(** @raise Failure when the program does not typecheck.
    The program is mutated into SSA form (as by {!Rmi_core.Optimizer.run}). *)
val run :
  ?config:Config.t ->
  ?mode:Fabric.mode ->
  ?backend:Fabric.backend ->
  ?machines:int ->
  ?faults:Rmi_net.Fault_sim.t ->
  Jir.Program.t ->
  entry:Jir.Types.method_id ->
  Jir.Interp.value list ->
  result
