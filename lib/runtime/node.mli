(** One machine of the cluster: exported objects, the marshaling
    engine, and the GM-style progress engine.

    A [call] marshals the arguments according to the effective plan
    (the compiler's call-site plan under [Site_specific], the generic
    tag-carrying plan under [Class_specific]), ships the request, and
    then {e polls}: while the reply is outstanding the machine serves
    incoming requests — the paper's "poll the network ... while a
    thread has a data-request outstanding", which also makes nested
    RMIs (worker calling back into the master) deadlock-free.

    Calls to objects on the {e same} machine still go through
    serialize/deserialize (cloning preserves RMI parameter semantics)
    but skip the wire and count as local RPCs.

    Reuse caches live here: one per (call site, argument) on the
    callee, one per call site for return values on the caller, with the
    take-then-restore guard of Figure 13. *)

type t

type handler = Rmi_serial.Value.t array -> Rmi_serial.Value.t option

exception Remote_exception of string
exception No_such_method of string
exception Deadlock of string

(** A call over the reliable transport gave up: some frame exhausted
    its retransmit budget (partitioned link), or nothing was left in
    flight and the reply can no longer arrive.  Raised instead of
    hanging or [Deadlock] when the cluster transport is
    [Config.Reliable]. *)
exception Rpc_timeout of string

(** The peer was retried [Config.failover.max_call_retries] times (each
    retry restarting the transport's full retransmit budget, failing
    over to a registered replica when one exists) and still never
    answered — or its circuit breaker is open and the call fast-failed
    without touching the wire. *)
exception Peer_down of string

(** The server's dispatch pool rejected the request (bounded queue
    full, admission control) every time it was sent, until the call's
    deadline passed.  A [Reject] never executes the handler, so the
    client re-sends freely under the deadline without consuming the
    RPC retry budget; each rejection still feeds the peer's circuit
    breaker, so a persistently saturated server eventually fast-fails
    new calls (PR 6). *)
exception Server_busy of string

(** [create ?plan_store net ~id ~meta ~config ~plans] builds one
    machine on transport [net] (any {!Rmi_net.Transport.t} backend: the
    simulated interconnect via {!Rmi_net.Sim.pack}, or TCP sockets via
    {!Rmi_net.Sock}).  [plans] is the fabric-shared plan table (call
    site -> current plan); [plan_store] (PR 4), when given, backs the
    adaptive tier's promotions with the compiler's content-hash-keyed
    plan cache and records widened plans so they survive a node
    restart. *)
val create :
  ?plan_store:Rmi_core.Plan_store.t ->
  Rmi_net.Transport.t ->
  id:int ->
  meta:Rmi_serial.Class_meta.t ->
  config:Config.t ->
  plans:(int, Rmi_core.Plan.t) Hashtbl.t ->
  t

val id : t -> int
val config : t -> Config.t

(** In synchronous (single-thread) mode the fabric installs a pump that
    serves other machines' queues; it returns whether it made
    progress. *)
val set_pump : t -> (unit -> bool) -> unit

(** [export t ~obj ~meth ~has_ret handler] registers a remotely
    invokable method.  [has_ret] must match the method's signature on
    every machine. *)
val export : t -> obj:int -> meth:int -> has_ret:bool -> handler -> unit

(** A promise for the result of one asynchronous call, keyed on the
    request's protocol sequence number (replies echo it back).  All
    failures — [Remote_exception] from the handler, [Rpc_timeout] /
    [Deadlock] from the transport, [No_such_method] on a local call —
    are captured in the future and re-raised when it is awaited, not
    when the call is issued. *)
module Future : sig
  type t

  (** Block until the future settles, serving interleaved requests and
      driving the transport meanwhile (the same progress engine a
      synchronous call polls).  Returns the unmarshaled result.
      @raise Remote_exception when the remote handler raised
      @raise Deadlock when no progress is possible (raw transport)
      @raise Rpc_timeout when the reliable transport gives up *)
  val await : t -> Rmi_serial.Value.t option

  (** Nonblocking: drain whatever has already arrived (plus one pump in
      synchronous mode) and report [Some result] if the future settled,
      [None] if it is still in flight.  Raises like {!await} when the
      future settled with a failure. *)
  val peek : t -> Rmi_serial.Value.t option option

  (** [await] each future, returning the results in the order the list
      was given (replies may arrive in any order). *)
  val all : t list -> Rmi_serial.Value.t option list
end

(** [call_async t ~dest ~meth ~callsite ~has_ret args] ships the
    request and returns immediately with a {!Future.t}; an unbounded
    number of calls may be in flight per node.  With batching enabled
    (see {!Config.with_batching}) the request is coalesced into the
    per-destination batch buffer and goes out on the next flush point —
    an explicit await, a serve cycle, or the byte threshold.  Local
    calls execute eagerly; their outcome still surfaces at await.

    [deadline] (seconds, default [Config.failover.call_deadline]) bounds
    the call end to end: across transport give-ups, RPC retries and
    failovers, the future settles — with the reply, [Rpc_timeout] or
    [Peer_down] — rather than hang. *)
val call_async :
  ?deadline:float ->
  t ->
  dest:Remote_ref.t ->
  meth:int ->
  callsite:int ->
  has_ret:bool ->
  Rmi_serial.Value.t array ->
  Future.t

(** [call t ~dest ~meth ~callsite ~has_ret args] is
    [call_async ... |> Future.await].
    @raise Remote_exception when the remote handler raised
    @raise Deadlock when no progress is possible (raw transport)
    @raise Rpc_timeout when the reliable transport gives up on the call
    @raise Peer_down when retries/failover were exhausted or the peer's
    circuit breaker is open *)
val call :
  ?deadline:float ->
  t ->
  dest:Remote_ref.t ->
  meth:int ->
  callsite:int ->
  has_ret:bool ->
  Rmi_serial.Value.t array ->
  Rmi_serial.Value.t option

(** [set_replica t ~primary ~replica] tells this node that objects it
    addresses on machine [primary] are also exported (same object and
    method ids) on machine [replica]; when [primary] is [Down] — or on
    the final retry — in-flight calls are re-sent there. *)
val set_replica : t -> primary:int -> replica:int -> unit

(** Serve every queued request; [true] if at least one was served. *)
val serve_pending : t -> bool

(** [serve_slice t (buf, off, len)] executes one received frame slice
    on this node — request, reply or reject — then ships any coalesced
    replies.  Building block of the dispatch pool (PR 6), which calls
    it from worker domains; callers must ensure at most one slice is
    in [serve_slice] per node at a time. *)
val serve_slice : t -> bytes * int * int -> unit

(** [send_reject t hdr] answers [hdr]'s sender with a [Reject] frame
    echoing the sequence number — the admission-control refusal the
    dispatch pool issues when a node's request queue is full.  The
    request must not have been executed. *)
val send_reject : t -> Rmi_wire.Protocol.header -> unit

(** Serve until a shutdown message arrives (worker-domain main loop). *)
val serve_loop : t -> unit

val send_shutdown : t -> dest:int -> unit

(** Drop all reuse caches (between benchmark configurations). *)
val reset_caches : t -> unit

(** Attach a trace collector: every call this node makes (start/end
    with latency) and every request it serves is recorded. *)
val set_trace : t -> Trace.t -> unit
