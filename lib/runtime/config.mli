(** Optimization configurations — the rows of every table in the
    paper's evaluation (Section 5's legend). *)

type serializer =
  | Class_specific
      (** per-class generated serializers (KaRMI/Manta state of the
          art): compact type ids, dynamic dispatch, cycle table always *)
  | Site_specific
      (** the paper's call-site specialized marshalers *)

type transport =
  | Raw
      (** the paper's Myrinet/GM assumption: lossless in-order
          delivery.  All paper-reproduction tables run on this. *)
  | Reliable
      (** link-level ack/retransmit with at-most-once delivery; the
          runtime survives drops, duplication, reordering and
          corruption (see {!Rmi_net.Cluster} and DESIGN.md's
          "Reliability substitution") *)

type t = {
  name : string;  (** the paper's row label, e.g. "site + reuse" *)
  serializer : serializer;
  elide_cycle : bool;  (** honor the cycle analysis verdict (Sec. 3.2) *)
  reuse : bool;  (** honor the escape analysis verdict (Sec. 3.3) *)
  transport : transport;
  batching : bool;
      (** coalesce small same-destination requests/replies into one
          envelope (see {!Rmi_net.Cluster} batching); off for every
          paper-table preset so the sequential accounting is
          untouched *)
}

val class_ : t
val site : t
val site_cycle : t
val site_reuse : t
val site_reuse_cycle : t

(** The five rows in paper order (all on the [Raw] transport). *)
val all : t list

(** Same optimization row, but over the reliable transport. *)
val with_reliable : t -> t

(** Same optimization row, with request/reply batching enabled. *)
val with_batching : t -> t

val find : string -> t option
val pp : Format.formatter -> t -> unit
