(** Optimization configurations — the rows of every table in the
    paper's evaluation (Section 5's legend). *)

type serializer =
  | Class_specific
      (** per-class generated serializers (KaRMI/Manta state of the
          art): compact type ids, dynamic dispatch, cycle table always *)
  | Site_specific
      (** the paper's call-site specialized marshalers *)

type transport =
  | Raw
      (** the paper's Myrinet/GM assumption: lossless in-order
          delivery.  All paper-reproduction tables run on this. *)
  | Reliable
      (** link-level ack/retransmit with at-most-once delivery; the
          runtime survives drops, duplication, reordering and
          corruption (see {!Rmi_net.Cluster} and DESIGN.md's
          "Reliability substitution") *)

(** How a node obtains the specialized serialization plans (PR 4). *)
type tier =
  | Aot
      (** ahead of time: every site uses its compiled plan from call
          one — the paper's static model, and the seed's behaviour *)
  | Adaptive
      (** every site starts on the generic plan, is promoted to its
          specialized plan after {!t.hot_threshold} invocations, and is
          deoptimized (position widened to the dynamic step) when a
          runtime value breaks the plan's static promise *)

(** Promotion threshold used by the presets (8 invocations). *)
val default_hot_threshold : int

(** Client-side failure policy (PR 3): how long a call may take end to
    end, how often the node re-sends a request after the transport gave
    up, and when a persistently failing peer trips the circuit
    breaker. *)
type failover = {
  call_deadline : float;
      (** seconds a [call_async] may stay unresolved before it fails
          with [Rpc_timeout]; overridable per call *)
  max_call_retries : int;
      (** RPC-level resends (each restarting the transport's full
          retransmit budget) before the call fails with [Peer_down] *)
  breaker_threshold : int;
      (** consecutive transport-level failures to one peer before its
          circuit breaker opens *)
  breaker_cooldown : float;
      (** seconds an open breaker fast-fails new calls before letting a
          probe call through (half-open) *)
  reply_cache_cap : int;
      (** server-side reply-cache entries kept for request dedup;
          oldest entries are evicted first *)
}

val default_failover : failover

type t = {
  name : string;  (** the paper's row label, e.g. "site + reuse" *)
  serializer : serializer;
  elide_cycle : bool;  (** honor the cycle analysis verdict (Sec. 3.2) *)
  reuse : bool;  (** honor the escape analysis verdict (Sec. 3.3) *)
  transport : transport;
  batching : bool;
      (** coalesce small same-destination requests/replies into one
          envelope (see {!Rmi_net.Cluster} batching); off for every
          paper-table preset so the sequential accounting is
          untouched *)
  failover : failover;
      (** client-side deadline/retry/breaker policy; only consulted by
          the failure paths, so fault-free runs are unaffected *)
  tier : tier;
      (** [Aot] for every paper-table preset, so the published numbers
          are untouched; [Adaptive] turns on hot-site promotion and
          deoptimization *)
  hot_threshold : int;
      (** invocations of one call site before the adaptive tier
          promotes it to the specialized plan *)
  zero_copy : bool;
      (** frame requests/replies in place over pooled buffers instead
          of snapshotting the payload at every wire layer (PR 5).  On
          for every preset — frames are byte-identical either way, so
          all published numbers are untouched; [legacy_copy] turns the
          old framing back on for the [wirecost] comparison *)
  arena : bool;
      (** decode served arguments into a recycling arena and reclaim
          them wholesale after dispatch when the plan's [non_escaping]
          escape-analysis verdict licenses it (PR 10).  On for every
          preset — reply bytes are identical either way, only the
          allocator changes; [legacy_heap] turns the GC-heap decode
          path back on for the [alloc] differential experiment *)
  domains : int;
      (** worker domains in the server-side dispatch pool (PR 6).  [0]
          — the preset default — keeps the paper's serial model: each
          node is served by its own dedicated loop and requests execute
          one at a time.  [>= 1] routes every served node's requests
          through a work-stealing pool of this many OCaml domains with
          bounded per-node queues and admission control *)
  queue_depth : int;
      (** per-node request-queue capacity under the dispatch pool;
          requests arriving at a full queue are rejected with a typed
          busy reply the client retries under its deadline *)
}

(** Per-node queue capacity used by the presets (64 requests). *)
val default_queue_depth : int

val class_ : t
val site : t
val site_cycle : t
val site_reuse : t
val site_reuse_cycle : t

(** The five rows in paper order (all on the [Raw] transport). *)
val all : t list

(** Same optimization row, but over the reliable transport. *)
val with_reliable : t -> t

(** Same optimization row, with request/reply batching enabled. *)
val with_batching : t -> t

(** Same optimization row, with this failure policy. *)
val with_failover : failover -> t -> t

(** Same optimization row on the adaptive tier: sites warm up on the
    generic plan and specialize once hot. *)
val with_adaptive : ?hot_threshold:int -> t -> t

(** Same optimization row with this tier (threshold unchanged). *)
val with_tier : tier -> t -> t

(** Same optimization row with the given framing mode. *)
val with_zero_copy : bool -> t -> t

(** Same optimization row on the pre-PR-5 copy-based wire framing
    (used as the baseline by the [wirecost] experiment). *)
val legacy_copy : t -> t

(** Same optimization row with the given decode-arena mode. *)
val with_arena : bool -> t -> t

(** Same optimization row decoding on the GC heap (pre-PR-10 allocator;
    used as the baseline by the [alloc] experiment). *)
val legacy_heap : t -> t

(** [with_domains n t] serves requests from a work-stealing pool of [n]
    domains ([n = 0] restores the serial per-node loop); [queue_depth]
    bounds each node's request queue before admission control rejects.
    Raises [Invalid_argument] on a negative [n] or a [queue_depth] < 1. *)
val with_domains : ?queue_depth:int -> int -> t -> t

val find : string -> t option
val pp : Format.formatter -> t -> unit
