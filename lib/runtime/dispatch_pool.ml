(* Work-stealing multi-domain dispatch (PR 6).

   The paper's server model is serial: one loop per machine, one
   request at a time.  The pool replaces the per-node loops with [n]
   worker domains sharing every served node's traffic:

   - intake: each node's mailbox is drained by exactly ONE worker (its
     owner, [node index mod workers]), so the cluster's receive path
     stays single-consumer per machine.  Arriving requests land in a
     bounded per-node queue; a request that finds its queue full is
     answered with a [Protocol.Reject] frame before its payload is
     ever decoded — admission control, not silent drop.
   - execution: workers prefer their own nodes' queues and steal from
     the others when empty.  A per-node serve mutex keeps each node's
     dispatches serialized (the node's plan caches, reuse tables and
     reply cache are single-threaded state); parallelism comes from
     serving different nodes simultaneously.
   - idle: a worker that made no progress drives the retransmit clock
     for its owned nodes, then backs off — spin briefly, then sleep —
     so a saturated client domain is never starved on small hosts. *)

module Metrics = Rmi_stats.Metrics
module Protocol = Rmi_wire.Protocol
module Msgbuf = Rmi_wire.Msgbuf

type task = bytes * int * int

type node_q = {
  node : Node.t;
  q : task Queue.t;
  q_mutex : Mutex.t;
  mutable depth : int;  (* Queue.length, maintained under [q_mutex] *)
  serve_mutex : Mutex.t;  (* one dispatch at a time per node *)
}

type t = {
  net : Rmi_net.Transport.t;
  queues : node_q array;
  n_workers : int;
  queue_depth : int;
  metrics : Metrics.t;
  stopping : bool Atomic.t;
  mutable workers : unit Domain.t list;
}

let shutdown_seq = 0
(* control requests (fabric shutdown) carry seq 0 and are never
   rejected: admission control applies to client calls only *)

(* try to queue [task] for [nq]; [false] when the queue is full *)
let try_enqueue t nq task =
  Mutex.lock nq.q_mutex;
  let ok = nq.depth < t.queue_depth in
  if ok then begin
    Queue.push task nq.q;
    nq.depth <- nq.depth + 1
  end;
  let depth = nq.depth in
  Mutex.unlock nq.q_mutex;
  if ok then Metrics.record_queue_depth t.metrics depth;
  ok

let try_dequeue nq =
  Mutex.lock nq.q_mutex;
  let task =
    if nq.depth = 0 then None
    else begin
      nq.depth <- nq.depth - 1;
      Some (Queue.pop nq.q)
    end
  in
  Mutex.unlock nq.q_mutex;
  task

(* pull at most one message from [nq]'s mailbox: enqueue it, or reject
   it when it is a client request and the queue is full.  Only [nq]'s
   owner worker calls this, so the mailbox stays single-consumer. *)
let intake_one t nq =
  match
    Rmi_net.Transport.try_recv_slice t.net ~self:(Node.id nq.node)
  with
  | None -> false
  | Some ((buf, off, len) as task) ->
      let hdr =
        match Protocol.read_header (Msgbuf.reader_of_bytes ~off ~len buf) with
        | hdr -> Some hdr
        | exception Msgbuf.Underflow _ -> None
      in
      (match hdr with
      | Some h
        when h.Protocol.kind = Protocol.Request
             && h.Protocol.seq <> shutdown_seq ->
          if not (try_enqueue t nq task) then Node.send_reject nq.node h
      | _ ->
          (* replies, acks, rejects and control frames bypass admission
             control: refusing them could wedge the protocol.  The
             queue is unbounded for them, but their volume is bounded
             by the node's own outstanding calls. *)
          Mutex.lock nq.q_mutex;
          Queue.push task nq.q;
          nq.depth <- nq.depth + 1;
          Mutex.unlock nq.q_mutex);
      true

let execute t nq task =
  Mutex.lock nq.serve_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock nq.serve_mutex)
    (fun () -> Node.serve_slice nq.node task);
  Metrics.incr_dispatches t.metrics

(* one task, own queues first, then steal *)
let run_one t w =
  let n = Array.length t.queues in
  let rec own i =
    if i >= n then false
    else if i mod t.n_workers = w then
      match try_dequeue t.queues.(i) with
      | Some task ->
          execute t t.queues.(i) task;
          true
      | None -> own (i + 1)
    else own (i + 1)
  in
  let rec steal i =
    if i >= n then false
    else if i mod t.n_workers <> w then
      match try_dequeue t.queues.(i) with
      | Some task ->
          Metrics.incr_steals t.metrics;
          execute t t.queues.(i) task;
          true
      | None -> steal (i + 1)
    else steal (i + 1)
  in
  own 0 || steal 0

let worker t w () =
  let n = Array.length t.queues in
  let idle_rounds = ref 0 in
  let stop = ref false in
  while not !stop do
    let progress = ref false in
    for i = 0 to n - 1 do
      if i mod t.n_workers = w && intake_one t t.queues.(i) then
        progress := true
    done;
    if run_one t w then progress := true;
    if !progress then idle_rounds := 0
    else begin
      incr idle_rounds;
      (* drive retransmission for the owned nodes, as the blocking
         serve loop would have *)
      for i = 0 to n - 1 do
        if i mod t.n_workers = w then
          ignore
            (Rmi_net.Transport.idle t.net ~self:(Node.id t.queues.(i).node))
      done;
      if Atomic.get t.stopping then stop := true
      else if !idle_rounds < 50 then Domain.cpu_relax ()
      else
        (* a polling worker must yield the processor on small hosts or
           it starves the client domain driving the workload *)
        Unix.sleepf 0.0001
    end
  done

let create ~net ~nodes ~domains ~queue_depth () =
  if domains < 1 then invalid_arg "Dispatch_pool.create: domains < 1";
  if queue_depth < 1 then invalid_arg "Dispatch_pool.create: queue_depth < 1";
  if Array.length nodes = 0 then
    invalid_arg "Dispatch_pool.create: no nodes to serve";
  let queues =
    Array.map
      (fun node ->
        {
          node;
          q = Queue.create ();
          q_mutex = Mutex.create ();
          depth = 0;
          serve_mutex = Mutex.create ();
        })
      nodes
  in
  let t =
    {
      net;
      queues;
      n_workers = domains;
      queue_depth;
      metrics = Rmi_net.Transport.metrics net;
      stopping = Atomic.make false;
      workers = [];
    }
  in
  t.workers <- List.init domains (fun w -> Domain.spawn (worker t w));
  t

let stop t =
  Atomic.set t.stopping true;
  List.iter Domain.join t.workers;
  t.workers <- [];
  (* anything still queued after the workers exited (a request that
     arrived between quiescence and the join) is served inline so no
     frame is silently dropped *)
  Array.iter
    (fun nq ->
      let rec drain () =
        match try_dequeue nq with
        | Some task ->
            Node.serve_slice nq.node task;
            drain ()
        | None -> ()
      in
      drain ())
    t.queues
