(** RMI event tracing.

    A trace collector can be attached to any {!Node} (usually to every
    node of a fabric).  Each remote/local invocation records a start
    and an end event with wall-clock timestamps, and each served
    request records who asked for what.  Collectors are thread-safe, so
    one trace can span all domains of a parallel run.

    [summary] aggregates per call site: invocation count and latency
    min/mean/max — the operational view of what the optimizer's
    per-call-site specialization is doing. *)

type event =
  | Call_start of { machine : int; dest : int; meth : int; callsite : int; local : bool }
  | Call_end of { machine : int; callsite : int; elapsed_us : float }
  | Served of { machine : int; src : int; meth : int; callsite : int }
  | Retry of { machine : int; frames : int }
      (** the reliable transport retransmitted [frames] unacked frames
          while [machine] was idle-waiting *)
  | Timeout of { machine : int; dests : int list }
      (** a frame to each of [dests] exhausted its retransmit budget;
          the awaited call fails with {!Node.Rpc_timeout} *)
  | Future_created of { machine : int; seq : int; callsite : int; dest : int }
      (** an asynchronous call was issued; [seq] correlates with its
          [Future_resolved] event *)
  | Future_resolved of { machine : int; seq : int; callsite : int; failed : bool }
      (** the reply for [seq] arrived ([failed = false]) or the call
          captured an exception to re-raise at await time *)
  | Batch_flush of { machine : int; dest : int; msgs : int; bytes : int }
      (** [machine] shipped [msgs] coalesced messages ([bytes] logical
          payload bytes) to [dest] as one envelope *)
  | Crash of { machine : int; amnesia : bool }
      (** the simulator killed [machine]; [amnesia] = its reply cache
          died with it *)
  | Restart of { machine : int; epoch : int }
      (** [machine] came back as incarnation [epoch] *)
  | Suspect of { machine : int; peer : int }
      (** [machine]'s failure detector demoted [peer] to Suspect *)
  | Peer_down of { machine : int; peer : int }
      (** [machine]'s failure detector confirmed [peer] Down *)
  | Call_retry of { machine : int; seq : int; dest : int; attempt : int }
      (** the transport gave up on seq's request; the node re-sent it *)
  | Failover of { machine : int; seq : int; primary : int; replica : int }
      (** a retried call was retargeted from [primary] to its
          registered [replica] *)
  | Breaker_open of { machine : int; peer : int }
      (** [peer] failed [breaker_threshold] calls in a row; new calls
          to it fast-fail until the cooldown expires *)
  | Promote of { machine : int; callsite : int; calls : int; version : int }
      (** the adaptive tier promoted [callsite] to specialized plan
          version [version] after [calls] invocations *)
  | Deopt of { machine : int; callsite : int; position : string; version : int }
      (** a runtime value broke the specialized plan at [position]
          ("arg2" / "ret"); the site now uses widened plan version
          [version] *)

type entry = {
  seq : int;  (** global order of recording *)
  at_us : float;  (** microseconds since the trace was created *)
  event : event;
}

type t

val create : unit -> t
val record : t -> event -> unit
val entries : t -> entry list

(** Number of recorded events. *)
val length : t -> int

val clear : t -> unit

(** Chronological one-line-per-event rendering (for small traces). *)
val render : ?limit:int -> t -> string

(** Per-call-site aggregation: count, min/mean/max latency in µs. *)
val summary : t -> string

val pp_event : Format.formatter -> event -> unit
