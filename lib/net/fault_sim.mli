(** Deterministic fault-schedule simulator for the cluster interconnect.

    The paper's testbed (Myrinet/GM) delivers messages reliably and in
    order, so Manta's RMI never has to survive loss.  To grow the
    runtime toward lossy production networks we substitute a seeded
    simulator: every physical frame crossing a link may be dropped,
    duplicated, corrupted (one bit flipped), or held back for a bounded
    number of later sends on the same link (delay/reordering).

    Every decision is drawn from a per-link splitmix64 stream derived
    from one [seed], and a fixed number of samples is consumed per
    frame regardless of outcome, so the schedule for a given workload
    is a pure function of [(seed, per-link frame sequence)].  Any
    failing run replays exactly from its seed, and [digest] renders the
    full decision log so two runs can be compared byte-for-byte. *)

type profile = {
  drop : float;       (** probability a frame vanishes *)
  duplicate : float;  (** probability a frame is delivered twice *)
  reorder : float;    (** probability a frame is held back (reordered) *)
  corrupt : float;    (** probability one bit of the frame is flipped *)
  max_delay : int;    (** held frames release after <= this many later
                          sends on the same link (>= 1) *)
}

(** Moderate loss on every fault axis; what [--faults seed=N] uses. *)
val default_lossy : profile

(** All probabilities zero: the simulator becomes a pass-through. *)
val lossless : profile

type t

(** [create ~seed ~n profile] simulates the [n*n] directed links of an
    [n]-machine cluster. *)
val create : seed:int -> n:int -> profile -> t

val seed : t -> int

(** [on_send t ~src ~dest frame] applies the link's next scheduled
    faults and returns the frames to deliver now, in order: the current
    frame's survivors followed by any previously held frames whose
    delay just expired.  May return [[]] (dropped or held). *)
val on_send : t -> src:int -> dest:int -> bytes -> bytes list

(** Frames currently held for delayed delivery (diagnostics). *)
val held_frames : t -> int

(** The decision log so far, one line per fault decision.  Two runs of
    the same workload from the same seed produce equal digests. *)
val digest : t -> string
