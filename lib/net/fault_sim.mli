(** Deterministic fault-schedule simulator for the cluster interconnect.

    The paper's testbed (Myrinet/GM) delivers messages reliably and in
    order, so Manta's RMI never has to survive loss.  To grow the
    runtime toward lossy production networks we substitute a seeded
    simulator: every physical frame crossing a link may be dropped,
    duplicated, corrupted (one bit flipped), or held back for a bounded
    number of later sends on the same link (delay/reordering).

    Every decision is drawn from a per-link splitmix64 stream derived
    from one [seed], and a fixed number of samples is consumed per
    frame regardless of outcome, so the schedule for a given workload
    is a pure function of [(seed, per-link frame sequence)].  Any
    failing run replays exactly from its seed, and [digest] renders the
    full decision log so two runs can be compared byte-for-byte. *)

type profile = {
  drop : float;       (** probability a frame vanishes *)
  duplicate : float;  (** probability a frame is delivered twice *)
  reorder : float;    (** probability a frame is held back (reordered) *)
  corrupt : float;    (** probability one bit of the frame is flipped *)
  max_delay : int;    (** held frames release after <= this many later
                          sends on the same link (>= 1) *)
}

(** Moderate loss on every fault axis; what [--faults seed=N] uses. *)
val default_lossy : profile

(** All probabilities zero: the simulator becomes a pass-through. *)
val lossless : profile

(** Process faults (PR 3).  Beyond link faults, the simulator can kill
    a machine at a scheduled point on the global frame clock and
    optionally restart it later with a bumped incarnation ([epoch]).
    While down, the machine neither sends nor receives: frames it emits
    are swallowed, frames addressed to it are swallowed, and frames
    already queued toward it in a reorder hold are purged (its mailbox
    died with it).  Frames it emitted {e before} dying stay held — when
    they surface after a restart they carry the old epoch and must be
    fenced by the transport.

    [Durable] models a node whose reply cache lives on stable storage
    (exactly-once across the crash); [Amnesia] models a diskless node
    that forgets everything (retried calls may re-execute). *)

type durability = Durable | Amnesia

type crash_spec = {
  victim : int;                (** machine to kill *)
  crash_at : int;              (** global frame-clock value that triggers it *)
  restart_after : int option;  (** frames of outage; [None] = stays down *)
  durability : durability;
}

(** What happened since the last {!take_transitions}; the transport
    drains these to wipe mailboxes/link state and notify nodes. *)
type transition =
  | Crashed of { machine : int; durability : durability }
  | Restarted of { machine : int; epoch : int; durability : durability }

type t

(** [create ~seed ~n profile] simulates the [n*n] directed links of an
    [n]-machine cluster. *)
val create : seed:int -> n:int -> profile -> t

val seed : t -> int

(** Install a crash/restart schedule.  Validates victims and times;
    entries fire when the global frame clock reaches [crash_at].  A
    spec whose victim is already down is consumed silently. *)
val set_crash_plan : t -> crash_spec list -> unit

(** A deterministic crash plan drawn from its own splitmix stream
    (disjoint from every link stream): [crashes] crash/restart pairs
    with victims in [1..n-1] (machine 0 drives harness workloads and
    never crashes), consecutive crashes separated by at most [max_gap]
    frames beyond the previous outage, outages of at most [max_outage]
    frames. *)
val seeded_crash_plan :
  seed:int -> n:int -> ?crashes:int -> ?durability:durability ->
  ?max_gap:int -> ?max_outage:int -> unit -> crash_spec list

(** Drain crash/restart events fired since the last call, oldest
    first. *)
val take_transitions : t -> transition list

val is_down : t -> int -> bool

(** Current incarnation of machine [m]: 0 until its first restart. *)
val epoch_of : t -> int -> int

(** Global frame-clock value (total [on_send] calls so far). *)
val frame_clock : t -> int

(** [on_send t ~src ~dest frame] applies the link's next scheduled
    faults and returns the frames to deliver now, in order: the current
    frame's survivors followed by any previously held frames whose
    delay just expired.  May return [[]] (dropped or held). *)
val on_send : t -> src:int -> dest:int -> bytes -> bytes list

(** Frames currently held for delayed delivery (diagnostics). *)
val held_frames : t -> int

(** The decision log so far, one line per fault decision.  Two runs of
    the same workload from the same seed produce equal digests. *)
val digest : t -> string
