type t = { q : bytes Queue.t; m : Mutex.t; c : Condition.t }

let create () = { q = Queue.create (); m = Mutex.create (); c = Condition.create () }

let send t msg =
  Mutex.lock t.m;
  Queue.push msg t.q;
  Condition.signal t.c;
  Mutex.unlock t.m

let try_recv t =
  Mutex.lock t.m;
  let msg = Queue.take_opt t.q in
  Mutex.unlock t.m;
  msg

let recv_blocking t =
  Mutex.lock t.m;
  while Queue.is_empty t.q do
    Condition.wait t.c t.m
  done;
  let msg = Queue.pop t.q in
  Mutex.unlock t.m;
  msg

let recv_deadline t ~seconds =
  (* OCaml's Condition has no timed wait; poll with short sleeps.  Only
     the reliable transport's retransmit driver uses this, with
     millisecond deadlines. *)
  let deadline = Unix.gettimeofday () +. seconds in
  let rec wait () =
    match try_recv t with
    | Some msg -> Some msg
    | None ->
        if Unix.gettimeofday () >= deadline then None
        else begin
          Thread.yield ();
          Unix.sleepf 5e-5;
          wait ()
        end
  in
  wait ()

let clear t =
  Mutex.lock t.m;
  Queue.clear t.q;
  Mutex.unlock t.m

let is_empty t =
  Mutex.lock t.m;
  let e = Queue.is_empty t.q in
  Mutex.unlock t.m;
  e

let length t =
  Mutex.lock t.m;
  let n = Queue.length t.q in
  Mutex.unlock t.m;
  n
