module Backend = Cluster

let pack (c : Cluster.t) : Transport.t = Transport.pack (module Cluster) c

let create ?transport ?zero_copy ~n metrics =
  pack (Cluster.create ?transport ?zero_copy ~n metrics)
