(** The simulated cluster interconnect.

    [n] machines, each with a mailbox.  [send] charges the message and
    payload bytes to the metrics — the counters the cost model turns
    into modeled seconds.  Receiving polls, like the paper's modified
    GM layer ("polling is performed instead of condition
    synchronization").

    Two transports:

    - [Raw] reproduces the paper's Myrinet/GM assumption: every frame
      sent is delivered, in order, uncorrupted.  Zero overhead; this is
      what the paper-reproduction tables run on.
    - [Reliable] layers a link-level ARQ between the logical message
      and the mailbox: each payload travels in an {!Envelope} carrying
      a per-link sequence number and a checksum, receivers acknowledge
      every data frame and suppress duplicates (at-most-once delivery
      to the upper layer), and senders retransmit unacknowledged frames
      with capped exponential backoff when {!idle} is driven.  Combined
      with {!set_faults} this survives drops, duplication, reordering
      and corruption — and replays deterministically from the fault
      seed.

    Metrics accounting is identical under both transports: [msgs_sent]
    and [bytes_sent] count each logical message once (payload bytes
    only).  Retransmissions, acks, duplicate suppressions and abandoned
    frames go to the dedicated [retries]/[acks_sent]/[dup_drops]/
    [timeouts] counters, so the lossless reliable path is
    byte-identical to [Raw] in the paper's tables.

    [Cluster] is the [Sim] backend of {!Transport.S} (see {!Sim}); the
    health/event vocabulary below is re-exported from {!Transport} so
    both spellings name the same constructors. *)

type transport = Raw | Reliable of params

and params = {
  rto : int;           (** idle ticks before the first retransmit *)
  backoff_cap : int;   (** upper bound on the doubled timeout *)
  max_attempts : int;  (** transmissions before a frame is abandoned *)
}

val default_params : params

(** What {!idle} did; see {!idle}. *)
type idle_outcome = Transport.idle_outcome =
  | Retransmitted of int  (** this many frames were retransmitted *)
  | Waiting  (** unacked frames exist but none was due yet *)
  | Gave_up of int list
      (** these destinations exhausted [max_attempts]; the frames were
          abandoned and counted as [timeouts] *)
  | Dead  (** nothing in flight anywhere: no unacked frame, no held
              frame, every mailbox empty — waiting cannot succeed *)
  | Raw_transport  (** [idle] is meaningless under [Raw] *)

(** {1 Failure detection}

    Under [Reliable], every machine keeps a per-peer liveness record
    driven by the shared {!idle} tick: any valid frame from a peer
    (data, ack, heartbeat) refreshes it to [Alive]; a peer quiet for
    [suspect_after] ticks is demoted to [Suspect] and for [down_after]
    ticks to [Down].  Quiet peers are probed with ping/pong heartbeat
    frames so an idle-but-alive peer is never falsely convicted: pongs
    are answered reactively on the receive path, which works in both
    Sync (pump-driven) and Parallel modes.  A frame from a newer
    incarnation ([epoch]) resets the link's dedup memory; frames from
    an older incarnation are fenced (dropped and counted as
    [stale_drops]). *)

type peer_health = Transport.peer_health = Alive | Suspect | Down

type hb_params = Transport.hb_params = {
  ping_every : int;     (** ticks between pings to a quiet peer *)
  suspect_after : int;  (** quiet ticks before Alive -> Suspect *)
  down_after : int;     (** quiet ticks before Suspect -> Down *)
}

val default_hb : hb_params

type peer_event = Transport.peer_event =
  | Peer_suspected
  | Peer_confirmed_down
  | Peer_recovered

(** Crash-simulator events surfaced to the runtime after the transport
    has wiped the machine's in-flight state. *)
type process_event = Transport.process_event =
  | Proc_crashed of { machine : int; durability : Fault_sim.durability }
  | Proc_restarted of {
      machine : int;
      epoch : int;
      durability : Fault_sim.durability;
    }

type t

(** [zero_copy] (default [true]) selects the wire framing mode:
    envelopes and batch frames are built {e around} payloads sitting in
    pooled writers ({!send_writer}, {!Envelope.encode_around}) and
    received payloads are handed up as slices of the frame, so a
    message body is snapshotted at most once per direction.  With
    [zero_copy:false] the pre-existing copy-based framing is used.
    Both modes produce byte-identical frames on the wire; every
    physical payload copy either mode makes is charged to the
    [bytes_copied] metric, which is how the [wirecost] experiment
    compares them. *)
val create :
  ?transport:transport -> ?zero_copy:bool -> n:int -> Rmi_stats.Metrics.t -> t

val zero_copy : t -> bool

(** The cluster's shared writer/reader free-list pool (acquisitions
    count [pool_hits]/[pool_misses]). *)
val pool : t -> Rmi_wire.Msgbuf.Pool.buffers

(** What [self] currently believes about [peer]; always [Alive] under
    [Raw]. *)
val peer_health : t -> self:int -> peer:int -> peer_health

(** Override the failure-detector thresholds (no-op under [Raw]). *)
val set_detector : t -> hb_params -> unit

(** The incarnation number machine [m] currently stamps on its frames:
    0 without a simulator or before its first restart. *)
val self_epoch : t -> int -> int

(** [f] runs on every detector transition, after the detector state was
    updated.  Hooks must not send messages. *)
val on_peer_event : t -> (self:int -> peer:int -> peer_event -> unit) -> unit

(** [f] runs on every simulated crash/restart, after the machine's
    mailbox, batch buffers and link state were wiped.  Hooks must not
    send messages — nodes use this to drop volatile caches. *)
val on_process_event : t -> (process_event -> unit) -> unit

val size : t -> int
val metrics : t -> Rmi_stats.Metrics.t
val transport : t -> transport
val is_reliable : t -> bool

(** The simulated cluster lives in one address space: every machine is
    hosted. *)
val is_hosted : t -> int -> bool

(** [send t ~src ~dest msg]; self-sends are allowed (loopback). *)
val send : t -> src:int -> dest:int -> bytes -> unit

(** Physical transmit: [frame] rides through the fault hook and the
    simulator exactly like a [send], but is never enveloped and never
    charged to [msgs_sent]/[bytes_sent] — the escape hatch reliability
    layers use to ship their own control traffic. *)
val send_raw : t -> src:int -> dest:int -> bytes -> unit

(** [send_writer t ~src ~dest w ~payload_off] ships the message sitting
    in [w.(payload_off..length w)] without materializing it first: per
    the {!Transport.S.send_writer} contract the caller must have
    reserved at least {!Envelope.gap} bytes before [payload_off]
    (asserted by the {!Transport.send_writer} forwarder), and under
    [Reliable] the envelope header is back-filled into that gap in
    place.  [w]'s storage is not referenced after the call returns (it
    is typically a pooled writer released right after). *)
val send_writer :
  t -> src:int -> dest:int -> Rmi_wire.Msgbuf.writer -> payload_off:int -> unit

(** {1 Request batching}

    With batching enabled, {!send_buffered} coalesces messages per
    (src, dest) link; {!flush} ships each link's buffered group as one
    wire frame (a {!Rmi_wire.Protocol} batch envelope when the group
    has two or more messages).  One flushed group is one physical
    frame: under [Reliable] it occupies a single envelope seq/ack unit,
    so loss, duplication and retransmission treat the whole batch
    atomically and at-most-once delivery still holds per logical
    message.

    Accounting: a flushed group counts {e one} [msgs_sent] and the sum
    of its logical payload bytes — the cost model therefore charges one
    per-message latency per batch.  Batch framing overhead is excluded
    from [bytes_sent], mirroring how {!Envelope} overhead is excluded
    on the reliable path. *)

val default_batch_bytes : int

(** Start coalescing [send_buffered] messages (default threshold
    {!default_batch_bytes}).  A link auto-flushes as soon as it buffers
    [max_bytes]. *)
val enable_batching : ?max_bytes:int -> t -> unit

(** Flush everything buffered, then stop coalescing. *)
val disable_batching : t -> unit

val batching_enabled : t -> bool

(** [send_buffered t ~src ~dest msg] queues [msg] on the (src, dest)
    batch buffer (or falls back to {!send} when batching is off).
    Returns the links auto-flushed by the byte threshold as
    [(dest, messages, bytes)] triples — usually empty. *)
val send_buffered : t -> src:int -> dest:int -> bytes -> (int * int * int) list

(** [flush t ~src] ships every non-empty batch buffer whose source is
    [src]; returns one [(dest, messages, bytes)] triple per flushed
    link, in ascending [dest] order. *)
val flush : t -> src:int -> (int * int * int) list

val try_recv : t -> self:int -> bytes option

(** {1 Slice receive}

    The zero-copy receive API: messages come back as [(frame, off,
    len)] slices sharing the (immutable) received frame bytes, so
    envelope payloads and batch sub-frames are never copied out.  The
    bytes-returning functions ([try_recv]/[recv_blocking]/
    [recv_deadline]) are {!Transport.Recv_defaults} wrappers derived
    from the slice family — the backend implements only slices. *)

val try_recv_slice : t -> self:int -> (bytes * int * int) option
val recv_blocking_slice : t -> self:int -> bytes * int * int
val recv_deadline_slice :
  t -> self:int -> seconds:float -> (bytes * int * int) option

(** Deliver a raw frame straight into [dest]'s mailbox, bypassing the
    fault hook, the simulator and all link state.  A test/diagnostic
    backdoor (e.g. forging a stale-epoch envelope). *)
val inject_frame : t -> dest:int -> bytes -> unit

(** Blocks until a message for [self] arrives.  Under [Reliable] the
    wait is chopped into short slices that drive {!idle}, so a blocked
    server keeps retransmitting its own unacked replies. *)
val recv_blocking : t -> self:int -> bytes

(** Timed {!recv_blocking}; [None] after [seconds] of silence. *)
val recv_deadline : t -> self:int -> seconds:float -> bytes option

(** Advance the retransmit clock by one tick and retransmit every
    unacked frame whose timer expired.  Callers invoke this when they
    are idle (nothing to receive, no progress to pump); under the
    synchronous fabric those idle polls are deterministic, so the whole
    recovery schedule replays exactly. *)
val idle : t -> self:int -> idle_outcome

(** Any message pending anywhere — queued in a mailbox, unpacked from a
    batch but not yet consumed, or buffered awaiting a flush?
    (deadlock diagnostics) *)
val pending_anywhere : t -> bool

(** Install a seeded fault schedule on the physical layer (applies to
    data frames, acks and retransmissions alike). *)
val set_faults : t -> Fault_sim.t -> unit

val clear_faults : t -> unit
val faults : t -> Fault_sim.t option

(** Fault injection for tests: the hook sees every physical frame about
    to be delivered and returns the frames to actually ship — pass it
    through ([[msg]]), corrupt it ([[other]]), drop it ([[]]) or
    duplicate it ([[msg; msg]]).  Metrics still count the original
    send.  Runs before the {!Fault_sim} stage. *)
val set_fault_hook : t -> (src:int -> dest:int -> bytes -> bytes list) -> unit

val clear_fault_hook : t -> unit

(** {1 Transport.S completion} *)

(** Backend identifier: ["sim"]. *)
val name : string

(** No-op: the simulated interconnect holds no OS resources. *)
val shutdown : t -> unit
