(* The Reliable envelope layer as a transport adapter: the ARQ that
   [Cluster] runs {e inside} the simulated interconnect, lifted into a
   stackable layer over any {!Transport.t} — in practice the [Sock]
   backend, whose TCP only guarantees delivery while a connection
   lives.  Frames the kernel dropped with a severed connection, frames
   a chaos injector swallowed, and whole machine kill/restarts are
   recovered here exactly as the Sim backend recovers them: per-link
   sequence numbers and checksums in an {!Envelope}, acks for every
   data frame, duplicate suppression (at-most-once up), capped
   exponential retransmission on the {!idle} tick, heartbeat-driven
   Alive/Suspect/Down, and epoch fencing of dead incarnations.

   All control traffic (envelopes carrying retransmits, acks,
   heartbeats) leaves through the lower transport's [send_raw], so the
   logical counters ([msgs_sent]/[bytes_sent]) are charged once, here,
   with the payload — byte-identical accounting to [Cluster]'s
   [Reliable] mode. *)

module Msgbuf = Rmi_wire.Msgbuf
module Protocol = Rmi_wire.Protocol
module Metrics = Rmi_stats.Metrics

type params = Cluster.params = {
  rto : int;
  backoff_cap : int;
  max_attempts : int;
}

let default_params = Cluster.default_params

(* what [self] believes about [peer] (same cell as Cluster's) *)
type det_cell = {
  mutable last_heard : int;
  mutable last_ping : int;
  mutable health : Transport.peer_health;
  mutable known_epoch : int;
}

type pending = {
  frame : bytes;
  mutable attempts : int;
  mutable rto_now : int;
  mutable due : int;
}

type link_tx = {
  mutable next_lseq : int;
  unacked : (int, pending) Hashtbl.t;
}

type link_rx = { seen : (int, unit) Hashtbl.t }

module M = struct
  type t = {
    lower : Transport.t;
    n : int;
    params : params;
    tx : link_tx array array;   (* tx.(src).(dest) *)
    rx : link_rx array array;   (* rx.(self).(src) *)
    det : det_cell array array; (* det.(self).(peer) *)
    mutable hb : Transport.hb_params;
    mutable tick : int;
    lock : Mutex.t;
    (* messages unpacked from an already-received batch envelope,
       served ahead of the lower transport *)
    inbox : (bytes * int * int) Queue.t array;
    imutex : Mutex.t array;
    mutable batcher : Batcher.t option;
    mutable peer_hooks :
      (self:int -> peer:int -> Transport.peer_event -> unit) list;
  }

  let name = "reliable"
  let size t = t.n
  let metrics t = Transport.metrics t.lower
  let zero_copy t = Transport.zero_copy t.lower
  let pool t = Transport.pool t.lower
  let is_reliable _ = true
  let is_hosted t m = Transport.is_hosted t.lower m
  let charge t n = Metrics.add_bytes_copied (metrics t) n

  let check t who =
    if who < 0 || who >= t.n then
      invalid_arg (Printf.sprintf "Reliable: bad machine id %d" who)

  let fire_peer t ~self ~peer ev =
    List.iter (fun f -> f ~self ~peer ev) t.peer_hooks

  let self_epoch t m = Transport.self_epoch t.lower m

  (* ---------------------------------------------------------------- *)
  (* send path: envelope, register for retransmission, ship raw        *)
  (* ---------------------------------------------------------------- *)

  let control_frame t ~kind ~src ~lseq =
    Msgbuf.Pool.with_writer (pool t) (fun w ->
        let start =
          Envelope.encode_into w ~kind ~src ~epoch:(self_epoch t src) ~lseq
            ~payload:Bytes.empty ()
        in
        Msgbuf.sub w ~off:start ~len:(Msgbuf.length w - start))

  let register_unacked t ~lseq ~ltx envelope =
    Hashtbl.replace ltx.unacked lseq
      {
        frame = envelope;
        attempts = 1;
        rto_now = t.params.rto;
        due = t.tick + t.params.rto;
      }

  (* envelope a payload already materialized as bytes: one blit into a
     pooled writer plus the single frame snapshot shared by the lower
     transport and the retransmit buffer *)
  let send_frame_zc t ~src ~dest frame =
    let envelope =
      Msgbuf.Pool.with_writer (pool t) (fun w ->
          Mutex.lock t.lock;
          let ltx = t.tx.(src).(dest) in
          let lseq = ltx.next_lseq in
          ltx.next_lseq <- lseq + 1;
          let start =
            Envelope.encode_into w ~kind:Data ~src ~epoch:(self_epoch t src)
              ~lseq ~payload:frame ()
          in
          let envelope =
            Msgbuf.sub w ~off:start ~len:(Msgbuf.length w - start)
          in
          charge t (Bytes.length frame + Bytes.length envelope);
          register_unacked t ~lseq ~ltx envelope;
          Mutex.unlock t.lock;
          envelope)
    in
    Transport.send_raw t.lower ~src ~dest envelope

  (* the zero-copy fast path: the payload sits in [w] after a reserved
     {!Envelope.gap}; the envelope header is back-filled in place and
     the frame snapshotted exactly once (the copy the lower transport
     and the retransmit buffer share) *)
  let send_frame_writer t ~src ~dest w ~payload_off =
    Mutex.lock t.lock;
    let ltx = t.tx.(src).(dest) in
    let lseq = ltx.next_lseq in
    ltx.next_lseq <- lseq + 1;
    let start =
      Envelope.encode_around w ~kind:Data ~src ~epoch:(self_epoch t src) ~lseq
        ~payload_off ()
    in
    let envelope = Msgbuf.sub w ~off:start ~len:(Msgbuf.length w - start) in
    charge t (Bytes.length envelope);
    register_unacked t ~lseq ~ltx envelope;
    Mutex.unlock t.lock;
    Transport.send_raw t.lower ~src ~dest envelope

  (* logical-traffic accounting: payload bytes, counted once *)
  let account_send t len =
    Metrics.incr_msgs_sent (metrics t);
    Metrics.add_bytes_sent (metrics t) len;
    Metrics.incr_unbatched (metrics t)

  let send t ~src ~dest msg =
    check t src;
    check t dest;
    account_send t (Bytes.length msg);
    send_frame_zc t ~src ~dest msg

  (* control traffic of a layer stacked above this one (none exists
     today); ships enveloped all the same so reliability is preserved *)
  let send_raw t ~src ~dest frame =
    check t src;
    check t dest;
    send_frame_zc t ~src ~dest frame

  let send_writer t ~src ~dest w ~payload_off =
    check t src;
    check t dest;
    account_send t (Msgbuf.length w - payload_off);
    send_frame_writer t ~src ~dest w ~payload_off

  (* ---------------------------------------------------------------- *)
  (* batching: one flushed group = one envelope = one seq/ack unit     *)
  (* ---------------------------------------------------------------- *)

  let enable_batching ?(max_bytes = Cluster.default_batch_bytes) t =
    if max_bytes < 1 then invalid_arg "Reliable.enable_batching: max_bytes < 1";
    t.batcher <- Some (Batcher.create ~max_bytes)

  let batching_enabled t = t.batcher <> None

  let flush_group t ~src ~dest msgs bytes =
    let k = List.length msgs in
    Metrics.incr_msgs_sent (metrics t);
    Metrics.add_bytes_sent (metrics t) bytes;
    Metrics.record_batch (metrics t) ~msgs:k;
    (match msgs with
    | [ m ] -> send_frame_zc t ~src ~dest m
    | _ ->
        Msgbuf.Pool.with_writer (pool t) (fun w ->
            ignore (Msgbuf.reserve w Envelope.gap : int);
            Protocol.encode_batch_into w msgs;
            charge t bytes;
            send_frame_writer t ~src ~dest w ~payload_off:Envelope.gap));
    (dest, k, bytes)

  let flush t ~src =
    check t src;
    match t.batcher with
    | None -> []
    | Some b ->
        List.map
          (fun (dest, msgs, bytes) -> flush_group t ~src ~dest msgs bytes)
          (Batcher.take b ~src)

  let disable_batching t =
    (match t.batcher with
    | None -> ()
    | Some _ ->
        for src = 0 to t.n - 1 do
          ignore (flush t ~src)
        done);
    t.batcher <- None

  let send_buffered t ~src ~dest msg =
    check t src;
    check t dest;
    match t.batcher with
    | None ->
        send t ~src ~dest msg;
        []
    | Some b -> (
        match Batcher.add b ~src ~dest msg with
        | None -> []
        | Some (msgs, bytes) -> [ flush_group t ~src ~dest msgs bytes ])

  (* ---------------------------------------------------------------- *)
  (* receive path: unwrap, fence, ack, dedup, split batches            *)
  (* ---------------------------------------------------------------- *)

  let pop_inbox t ~self =
    Mutex.lock t.imutex.(self);
    let m =
      if Queue.is_empty t.inbox.(self) then None
      else Some (Queue.pop t.inbox.(self))
    in
    Mutex.unlock t.imutex.(self);
    m

  (* a decoded payload slice: either a single message, handed straight
     up, or a batch whose first message returns and whose rest queue
     ahead of the lower transport — slices sharing the frame bytes *)
  let unpack t ~self ((buf, off, len) as slice) =
    if not (Protocol.is_batch_at buf ~off ~len) then Some slice
    else
      match Protocol.decode_batch_slice buf ~off ~len with
      | None | Some [] -> None  (* garbled batch: drop whole *)
      | Some ((o, l) :: rest) ->
          if rest <> [] then begin
            Mutex.lock t.imutex.(self);
            List.iter (fun (o, l) -> Queue.push (buf, o, l) t.inbox.(self)) rest;
            Mutex.unlock t.imutex.(self)
          end;
          Some (buf, o, l)

  (* [Some payload_slice] to hand up, [None] when the frame was
     consumed here (ack, heartbeat, duplicate, stale epoch, or
     checksum failure — the sender's timer recovers the latter) *)
  let filter_frame t ~self (buf, off, len) =
    match Envelope.decode_slice buf ~off ~len with
    | None -> None
    | Some ({ Envelope.kind; src; epoch; lseq }, (poff, plen)) ->
        Mutex.lock t.lock;
        let d = t.det.(self).(src) in
        (* fence: a frame from an incarnation older than the best one
           we have seen is a ghost of a dead process *)
        let stale = epoch < d.known_epoch in
        let recovered = ref false in
        if not stale then begin
          if epoch > d.known_epoch then begin
            d.known_epoch <- epoch;
            (* the new incarnation restarts its lseq space at 0, so the
               old dedup memory would wrongly swallow its fresh frames *)
            Hashtbl.reset t.rx.(self).(src).seen
          end;
          d.last_heard <- t.tick;
          if d.health <> Transport.Alive then begin
            d.health <- Transport.Alive;
            recovered := true
          end
        end;
        Mutex.unlock t.lock;
        if !recovered then fire_peer t ~self ~peer:src Transport.Peer_recovered;
        if stale then begin
          Metrics.incr_stale_drops (metrics t);
          None
        end
        else
          match kind with
          | Envelope.Hb ->
              if lseq = Envelope.hb_ping then begin
                Metrics.incr_heartbeats_sent (metrics t);
                Transport.send_raw t.lower ~src:self ~dest:src
                  (control_frame t ~kind:Envelope.Hb ~src:self
                     ~lseq:Envelope.hb_pong)
              end;
              None
          | Envelope.Ack ->
              Mutex.lock t.lock;
              Hashtbl.remove t.tx.(self).(src).unacked lseq;
              Mutex.unlock t.lock;
              None
          | Envelope.Data ->
              (* always ack, even duplicates: the earlier ack may have
                 been lost *)
              Metrics.incr_acks_sent (metrics t);
              Transport.send_raw t.lower ~src:self ~dest:src
                (control_frame t ~kind:Envelope.Ack ~src:self ~lseq);
              Mutex.lock t.lock;
              let seen = t.rx.(self).(src).seen in
              let dup = Hashtbl.mem seen lseq in
              if not dup then Hashtbl.add seen lseq ();
              Mutex.unlock t.lock;
              if dup then begin
                Metrics.incr_dup_drops (metrics t);
                None
              end
              else Some (buf, poff, plen)

  let admit t ~self slice =
    match filter_frame t ~self slice with
    | Some payload_slice -> unpack t ~self payload_slice
    | None -> None

  let try_recv_slice t ~self =
    check t self;
    match pop_inbox t ~self with
    | Some m -> Some m
    | None ->
        let rec go () =
          match Transport.try_recv_slice t.lower ~self with
          | None -> None
          | Some slice -> (
              match admit t ~self slice with Some m -> Some m | None -> go ())
        in
        go ()

  let recv_deadline_slice t ~self ~seconds =
    check t self;
    (* one non-blocking pass first, so a zero or negative deadline
       still drains anything already deliverable *)
    match try_recv_slice t ~self with
    | Some m -> Some m
    | None ->
        let deadline = Unix.gettimeofday () +. seconds in
        let rec go () =
          let remain = deadline -. Unix.gettimeofday () in
          if remain <= 0.0 then None
          else
            match Transport.recv_deadline_slice t.lower ~self ~seconds:remain with
            | None -> None
            | Some slice -> (
                match admit t ~self slice with Some m -> Some m | None -> go ())
        in
        go ()

  let buffered_anywhere t =
    match t.batcher with None -> false | Some b -> Batcher.any b

  let pending_anywhere t =
    Transport.pending_anywhere t.lower
    || Array.exists (fun q -> not (Queue.is_empty q)) t.inbox
    || buffered_anywhere t

  (* ---------------------------------------------------------------- *)
  (* the retransmit + failure-detector clock                           *)
  (* ---------------------------------------------------------------- *)

  (* sweep the detector on the shared tick (covers every observer, like
     Cluster's: in Sync mode one machine drives everyone's timers);
     with [t.lock] held *)
  let detector_sweep t =
    let pings = ref [] in
    let events = ref [] in
    (* a crashed machine's timers freeze; a machine another process
       hosts is that process's concern — acting for it here would try
       to ship frames over links this process does not have *)
    let skip m =
      (not (Transport.is_hosted t.lower m))
      ||
      match Transport.faults t.lower with
      | None -> false
      | Some sim -> Fault_sim.is_down sim m
    in
    Array.iteri
      (fun observer row ->
        if not (skip observer) then
          Array.iteri
            (fun peer d ->
              if observer <> peer then begin
                let quiet = t.tick - d.last_heard in
                if quiet >= t.hb.down_after && d.health = Transport.Suspect
                then begin
                  d.health <- Transport.Down;
                  events :=
                    (observer, peer, Transport.Peer_confirmed_down) :: !events
                end
                else if quiet >= t.hb.suspect_after && d.health = Transport.Alive
                then begin
                  d.health <- Transport.Suspect;
                  events := (observer, peer, Transport.Peer_suspected) :: !events
                end;
                if
                  quiet >= t.hb.ping_every
                  && t.tick - d.last_ping >= t.hb.ping_every
                then begin
                  d.last_ping <- t.tick;
                  pings := (observer, peer) :: !pings
                end
              end)
            row)
      t.det;
    (List.rev !pings, List.rev !events)

  let idle t ~self =
    check t self;
    (* the lower transport first: a chaos injector drains its due
       connection actions and crash transitions there *)
    ignore (Transport.idle t.lower ~self : Transport.idle_outcome);
    Mutex.lock t.lock;
    t.tick <- t.tick + 1;
    let resend = ref [] in
    let gave_up = ref [] in
    let unacked = ref 0 in
    Array.iteri
      (fun src row ->
        Array.iteri
          (fun dest ltx ->
            let expired = ref [] in
            Hashtbl.iter
              (fun lseq p ->
                if p.due > t.tick then incr unacked
                else if p.attempts >= t.params.max_attempts then
                  expired := lseq :: !expired
                else begin
                  p.attempts <- p.attempts + 1;
                  p.rto_now <- min (p.rto_now * 2) t.params.backoff_cap;
                  p.due <- t.tick + p.rto_now;
                  incr unacked;
                  resend := (src, dest, p.frame) :: !resend
                end)
              ltx.unacked;
            List.iter
              (fun lseq ->
                Hashtbl.remove ltx.unacked lseq;
                Metrics.incr_timeouts (metrics t);
                gave_up := dest :: !gave_up)
              !expired)
          row)
      t.tx;
    let pings, events = detector_sweep t in
    Mutex.unlock t.lock;
    List.iter
      (fun (src, dest, frame) ->
        Metrics.incr_retries (metrics t);
        Transport.send_raw t.lower ~src ~dest frame)
      (List.rev !resend);
    List.iter
      (fun (observer, peer) ->
        Metrics.incr_heartbeats_sent (metrics t);
        Transport.send_raw t.lower ~src:observer ~dest:peer
          (control_frame t ~kind:Envelope.Hb ~src:observer
             ~lseq:Envelope.hb_ping))
      pings;
    List.iter
      (fun (observer, peer, ev) ->
        (match ev with
        | Transport.Peer_suspected -> Metrics.incr_suspects (metrics t)
        | Transport.Peer_confirmed_down -> Metrics.incr_peer_downs (metrics t)
        | Transport.Peer_recovered -> ());
        fire_peer t ~self:observer ~peer ev)
      events;
    if !gave_up <> [] then Transport.Gave_up (List.sort_uniq compare !gave_up)
    else if !resend <> [] then Transport.Retransmitted (List.length !resend)
    else if !unacked = 0 && not (pending_anywhere t) then Transport.Dead
    else Transport.Waiting

  let recv_blocking_slice t ~self =
    check t self;
    match pop_inbox t ~self with
    | Some m -> m
    | None ->
        (* chop the wait into slices so a blocked machine keeps driving
           its own retransmit timers (a server whose reply was dropped
           must resend it even though it is only receiving) *)
        let rec go () =
          match recv_deadline_slice t ~self ~seconds:0.002 with
          | Some payload -> payload
          | None ->
              ignore (idle t ~self : Transport.idle_outcome);
              go ()
        in
        go ()

  (* ---------------------------------------------------------------- *)
  (* everything else: the adapter's own state or pure delegation       *)
  (* ---------------------------------------------------------------- *)

  let peer_health t ~self ~peer =
    check t self;
    check t peer;
    t.det.(self).(peer).health

  let set_detector t hb = t.hb <- hb
  let on_peer_event t f = t.peer_hooks <- t.peer_hooks @ [ f ]
  let on_process_event t f = Transport.on_process_event t.lower f
  let set_faults t fs = Transport.set_faults t.lower fs
  let clear_faults t = Transport.clear_faults t.lower
  let faults t = Transport.faults t.lower
  let set_fault_hook t hook = Transport.set_fault_hook t.lower hook
  let clear_fault_hook t = Transport.clear_fault_hook t.lower
  let shutdown t = Transport.shutdown t.lower

  (* bytes-returning receive wrappers: the shared Transport defaults *)
  include Transport.Recv_defaults (struct
    type nonrec t = t

    let metrics = metrics
    let try_recv_slice = try_recv_slice
    let recv_blocking_slice = recv_blocking_slice
    let recv_deadline_slice = recv_deadline_slice
  end)
end

include M

(* a machine just crashed: everything it held in flight dies with it —
   unpacked-batch inbox, unflushed batch buffers, link send state and
   dedup memory.  Peers' state about it survives (their retransmit
   timers are the recovery path).  Mirrors Cluster.wipe_machine. *)
let wipe_machine (t : M.t) m =
  Mutex.lock t.M.imutex.(m);
  Queue.clear t.M.inbox.(m);
  Mutex.unlock t.M.imutex.(m);
  Option.iter (fun b -> Batcher.drop_source b ~src:m) t.M.batcher;
  Mutex.lock t.M.lock;
  Array.iter
    (fun ltx ->
      ltx.next_lseq <- 0;
      Hashtbl.reset ltx.unacked)
    t.M.tx.(m);
  Array.iter (fun lrx -> Hashtbl.reset lrx.seen) t.M.rx.(m);
  Array.iter
    (fun d ->
      d.last_heard <- t.M.tick;
      d.last_ping <- t.M.tick;
      d.health <- Transport.Alive)
    t.M.det.(m);
  Mutex.unlock t.M.lock

let wrap ?(params = default_params) lower =
  let n = Transport.size lower in
  let t =
    {
      M.lower;
      n;
      params;
      tx =
        Array.init n (fun _ ->
            Array.init n (fun _ ->
                { next_lseq = 0; unacked = Hashtbl.create 8 }));
      rx =
        Array.init n (fun _ ->
            Array.init n (fun _ -> { seen = Hashtbl.create 64 }));
      det =
        Array.init n (fun _ ->
            Array.init n (fun _ ->
                {
                  last_heard = 0;
                  last_ping = 0;
                  health = Transport.Alive;
                  known_epoch = 0;
                }));
      hb = Transport.default_hb;
      tick = 0;
      lock = Mutex.create ();
      inbox = Array.init n (fun _ -> Queue.create ());
      imutex = Array.init n (fun _ -> Mutex.create ());
      batcher = None;
      peer_hooks = [];
    }
  in
  (* registered before any runtime hook, so a crashed machine's ARQ
     state is already wiped when node-level hooks drop their caches *)
  Transport.on_process_event lower (function
    | Transport.Proc_crashed { machine; _ } -> wipe_machine t machine
    | Transport.Proc_restarted _ -> ());
  Transport.pack (module M) t
