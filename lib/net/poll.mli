(** poll(2) for the socket event loop: select without the FD_SETSIZE
    ceiling. *)

(** Indices of the descriptors in the array that are readable, hung up
    or errored, ascending; [[]] after [timeout] seconds of nothing (or
    on EINTR — callers loop anyway). *)
val readable : Unix.file_descr array -> timeout:float -> int list

(** The soft RLIMIT_NOFILE budget for this process (clamped to
    [64, 2^20]; 1024 if unknown). *)
val nofile_limit : unit -> int
