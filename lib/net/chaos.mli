(** Deterministic connection-level chaos for real socket transports.

    {!Fault_sim} decides the fate of individual frames; a real TCP
    backend additionally has {e connections} that can fail in ways the
    simulated interconnect cannot express.  [Chaos] wraps a
    [Fault_sim.t] — every frame the socket layer ships passes through
    {!on_send}, which delegates to the embedded simulator so the frame
    schedule for a given seed is byte-identical to the Sim backend's —
    and layers a connection plan on the same global frame clock:

    - {e sever}: the backend kills the TCP connection between two
      machines mid-stream.  In-flight kernel bytes are lost, a
      half-written frame is truncated at the receiver, and the link
      re-forms through reconnection with backoff.
    - {e stall}: one endpoint freezes — its traffic (both directions)
      parks inside the injector, invisible to the wire, until the
      stall's frame-clock deadline passes.  Models a SIGSTOP'd or
      GC-frozen peer whose socket stays open but silent.

    Kill/restart of an endpoint rides through the embedded simulator's
    crash plan unchanged ({!Fault_sim.set_crash_plan}).

    All decisions are pure functions of [(seed, frame sequence)]; the
    {!digest} appends connection-event lines to the simulator's log so
    replays compare byte-for-byte. *)

type conn_action =
  | Sever of { a : int; b : int }
      (** kill the TCP connection between [a] and [b] *)
  | Stall of { machine : int; frames : int }
      (** park all of [machine]'s traffic for [frames] clock ticks *)

type conn_spec = { at : int; action : conn_action }
(** [action] fires when the global frame clock reaches [at]. *)

type t

(** [create ~seed ~n ?plan profile] builds a fresh embedded simulator
    plus the given connection plan (default: none). *)
val create : seed:int -> n:int -> ?plan:conn_spec list -> Fault_sim.profile -> t

(** Wrap an existing simulator (the [--faults seed=N] route: the
    schedule a user handed the CLI drives the socket path unchanged). *)
val of_fault_sim : ?plan:conn_spec list -> n:int -> Fault_sim.t -> t

(** The embedded simulator — the socket backend consults it for
    down-state and epochs, and [Transport.faults] exposes it. *)
val fault_sim : t -> Fault_sim.t

(** A deterministic connection plan from a private splitmix stream
    (disjoint from every link stream and from the crash-plan stream):
    [severs] link kills over random pairs, then [stalls] freezes of
    machines [1..n-1], consecutive events at most [max_gap] frames
    apart, stalls of at most [max_stall] frames. *)
val seeded_plan :
  seed:int -> n:int -> ?severs:int -> ?stalls:int -> ?max_gap:int ->
  ?max_stall:int -> unit -> conn_spec list

(** [on_send t ~src ~dest frame] advances the embedded simulator
    (clock, fault samples, crash plan), then applies the connection
    layer: fires due plan entries, expires due stalls, and parks the
    surviving frames if either endpoint is stalled.  Returns the frames
    to ship now. *)
val on_send : t -> src:int -> dest:int -> bytes -> bytes list

(** Drain the connection actions fired since the last call (oldest
    first) — the socket backend applies each [Sever] by killing the
    matching connections.  Stalls are internal and never surface. *)
val take_actions : t -> conn_action list

(** Drain parked frames whose stall expired (oldest first), as
    [(src, dest, frame)]; the backend ships them directly. *)
val take_released : t -> (int * int * bytes) list

(** Frames currently parked or awaiting release (in-flight state the
    backend must count before declaring the network dead). *)
val parked_frames : t -> int

(** {1 Embedded-simulator delegation} *)

val take_transitions : t -> Fault_sim.transition list
val is_down : t -> int -> bool
val epoch_of : t -> int -> int
val frame_clock : t -> int
val held_frames : t -> int
val seed : t -> int

(** The embedded simulator's decision log followed by the connection
    event log; equal digests across two runs mean the same faults fired
    at the same frames. *)
val digest : t -> string

(** [sim_parity ~seed ~n ~frames ()] drives a chaos engine and a bare
    {!Fault_sim} from the same seed through the same synthetic
    [frames]-long schedule and returns both digests.  They must be
    equal — chaos adds no randomness of its own — and each is a pure
    function of the seed, so the pair is also byte-identical across
    runs.  This is the deterministic-replay half of the chaos gate. *)
val sim_parity :
  seed:int -> n:int -> ?profile:Fault_sim.profile -> frames:int -> unit ->
  string * string
