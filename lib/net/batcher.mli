(** Per-(src, dest) coalescing buffers shared by the transport
    backends.

    The bookkeeping only: which messages are queued on which link and
    when a link crosses its byte threshold.  What a flushed group
    {e becomes} on the wire (a batch envelope, a reliable seq/ack unit,
    a single TCP record) is the backend's business. *)

type t

val create : max_bytes:int -> t
(** @raise Invalid_argument when [max_bytes < 1]. *)

val max_bytes : t -> int

val add : t -> src:int -> dest:int -> bytes -> (bytes list * int) option
(** Queue [msg] on the (src, dest) link.  [Some (msgs, bytes)] when the
    link just crossed [max_bytes]: the group (oldest first) has been
    removed and must be flushed by the caller. *)

val take : t -> src:int -> (int * bytes list * int) list
(** Remove and return every non-empty group whose source is [src], as
    [(dest, msgs, bytes)] in ascending [dest] order. *)

val drop_source : t -> src:int -> unit
(** Discard everything buffered from [src] (a crashed machine's
    unflushed sends die with it). *)

val any : t -> bool
(** Is anything buffered on any link? *)
