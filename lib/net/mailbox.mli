(** A thread-safe message queue — one per simulated machine.

    In parallel mode (machines = OCaml domains) senders and receivers
    are on different domains; in synchronous mode everything runs on
    one thread and only the non-blocking operations are used. *)

type t

val create : unit -> t

val send : t -> bytes -> unit

(** Non-blocking receive. *)
val try_recv : t -> bytes option

(** Blocking receive: waits on a condition variable until a message
    arrives (sends signal it), releasing the processor meanwhile. *)
val recv_blocking : t -> bytes

(** Like {!recv_blocking} but gives up after [seconds]; used by the
    reliable transport so blocked machines can drive their retransmit
    timers. *)
val recv_deadline : t -> seconds:float -> bytes option

(** Discard everything queued — the crash simulator's view of losing a
    machine's in-flight inbox. *)
val clear : t -> unit

val is_empty : t -> bool

(** Messages currently queued. *)
val length : t -> int
