open Rmi_wire

type kind = Data | Ack | Hb

type t = { kind : kind; src : int; epoch : int; lseq : int }

let magic = 0xC7
let kind_code = function Data -> 0 | Ack -> 1 | Hb -> 2

(* FNV-1a over the header fields and a payload slice, folded to 30 bits
   so the uvarint encoding stays short.

   The 64-bit accumulator is kept as two 32-bit native-int halves: an
   [Int64 ref] boxes a fresh Int64 on every assignment — one minor-heap
   allocation per hashed byte, which used to dominate the reliable
   path's GC pressure (~3 words/byte, checksummed once on encode and
   once on decode).  The FNV prime is 2^40 + 0x1b3, so the 64-bit
   multiply decomposes into shifts and one small product per half;
   the output is bit-identical to the boxed-Int64 formulation, so
   frames on the wire do not change. *)
let fnv_prime_low = 0x1b3
let mask32 = 0xFFFFFFFF

let checksum_slice ~kc ~src ~epoch ~lseq buf off len =
  let lo = ref 0x84222325 and hi = ref 0xcbf29ce4 in
  let mix b =
    (* h <- (h lxor (b land 0xff)) * (2^40 + 0x1b3)  mod 2^64 *)
    let l = !lo lxor (b land 0xff) in
    let t = l * fnv_prime_low in
    lo := t land mask32;
    hi :=
      ((!hi * fnv_prime_low) + (t lsr 32) + ((l lsl 8) land mask32)) land mask32
  in
  mix kc;
  for i = 0 to 7 do
    mix (src asr (i * 8))
  done;
  for i = 0 to 7 do
    mix (epoch asr (i * 8))
  done;
  for i = 0 to 7 do
    mix (lseq asr (i * 8))
  done;
  for i = off to off + len - 1 do
    mix (Char.code (Bytes.unsafe_get buf i))
  done;
  !lo land 0x3FFFFFFF

let checksum ~kc ~src ~epoch ~lseq payload =
  checksum_slice ~kc ~src ~epoch ~lseq payload 0 (Bytes.length payload)

(* Worst-case encoded header: magic + kind byte + three 10-byte varints
   (src/epoch/lseq) + 5-byte checksum (30-bit) + 10-byte payload
   length.  Writers on the zero-copy path reserve this much in front of
   the payload; [encode_around] then right-justifies the real (minimal)
   header against the payload inside the gap. *)
let gap = 48

let encode ~kind ~src ?(epoch = 0) ~lseq ~payload () =
  let w = Msgbuf.create_writer ~initial_capacity:(Bytes.length payload + 16) () in
  let kc = kind_code kind in
  Msgbuf.write_u8 w magic;
  Msgbuf.write_u8 w kc;
  Msgbuf.write_uvarint w src;
  Msgbuf.write_uvarint w epoch;
  Msgbuf.write_uvarint w lseq;
  Msgbuf.write_uvarint w (checksum ~kc ~src ~epoch ~lseq payload);
  Msgbuf.write_string w (Bytes.to_string payload);
  Msgbuf.contents w

(* [encode_around w ~payload_off] frames the payload already sitting in
   [w.(payload_off..length w)] without copying it: the header is
   back-filled into the [gap] bytes reserved just before [payload_off],
   right-justified so it abuts the payload, and the frame's start
   offset is returned.  All varints are minimal, so the resulting bytes
   [start..length w) are identical to what [encode] produces. *)
let encode_around w ~kind ~src ?(epoch = 0) ~lseq ~payload_off () =
  let payload_len = Msgbuf.length w - payload_off in
  if payload_len < 0 then invalid_arg "Envelope.encode_around";
  let kc = kind_code kind in
  let csum =
    checksum_slice ~kc ~src ~epoch ~lseq (Msgbuf.unsafe_storage w) payload_off
      payload_len
  in
  let hsize =
    2 + Msgbuf.uvarint_size src + Msgbuf.uvarint_size epoch
    + Msgbuf.uvarint_size lseq + Msgbuf.uvarint_size csum
    + Msgbuf.uvarint_size payload_len
  in
  let start = payload_off - hsize in
  if start < 0 then invalid_arg "Envelope.encode_around: gap too small";
  Msgbuf.patch_u8 w ~at:start magic;
  Msgbuf.patch_u8 w ~at:(start + 1) kc;
  let at = ref (start + 2) in
  at := !at + Msgbuf.patch_uvarint w ~at:!at src;
  at := !at + Msgbuf.patch_uvarint w ~at:!at epoch;
  at := !at + Msgbuf.patch_uvarint w ~at:!at lseq;
  at := !at + Msgbuf.patch_uvarint w ~at:!at csum;
  at := !at + Msgbuf.patch_uvarint w ~at:!at payload_len;
  assert (!at = payload_off);
  start

(* append a whole envelope around a bytes payload to a pooled writer:
   one blit instead of [encode]'s string round-trip plus snapshot *)
let encode_into w ~kind ~src ?(epoch = 0) ~lseq ~payload () =
  let payload_off = Msgbuf.length w + gap in
  ignore (Msgbuf.reserve w gap : int);
  Msgbuf.write_bytes w payload 0 (Bytes.length payload);
  encode_around w ~kind ~src ~epoch ~lseq ~payload_off ()

(* [decode_slice frame ~off ~len] validates the envelope and returns
   the payload as an [(off, len)] slice of [frame], copy-free. *)
let decode_slice frame ~off ~len =
  match
    let r = Msgbuf.reader_of_bytes ~off ~len frame in
    if Msgbuf.read_u8 r <> magic then None
    else
      let kc = Msgbuf.read_u8 r in
      let kind =
        match kc with 0 -> Some Data | 1 -> Some Ack | 2 -> Some Hb | _ -> None
      in
      match kind with
      | None -> None
      | Some kind ->
          let src = Msgbuf.read_uvarint r in
          let epoch = Msgbuf.read_uvarint r in
          let lseq = Msgbuf.read_uvarint r in
          let csum = Msgbuf.read_uvarint r in
          let plen = Msgbuf.read_uvarint r in
          let poff = Msgbuf.skip r plen "envelope payload" in
          if csum = checksum_slice ~kc ~src ~epoch ~lseq frame poff plen then
            Some ({ kind; src; epoch; lseq }, (poff, plen))
          else None
  with
  | exception Msgbuf.Underflow _ -> None
  | v -> v

let decode frame =
  match decode_slice frame ~off:0 ~len:(Bytes.length frame) with
  | None -> None
  | Some (t, (off, len)) -> Some (t, Bytes.sub frame off len)

(* heartbeat frames: lseq 0 = ping, lseq 1 = pong; empty payload *)
let hb_ping = 0
let hb_pong = 1

(* shared zeroed padding grown on demand, so overhead probes stop
   allocating a fresh synthetic payload per call (and stop hashing
   whatever garbage [Bytes.create] happened to return) *)
let pad = ref Bytes.empty

let overhead ~src ~lseq ~payload_len =
  if Bytes.length !pad < payload_len then pad := Bytes.make payload_len '\000';
  let kc = kind_code Data in
  let csum = checksum_slice ~kc ~src ~epoch:0 ~lseq !pad 0 payload_len in
  2 + Msgbuf.uvarint_size src + Msgbuf.uvarint_size 0
  + Msgbuf.uvarint_size lseq + Msgbuf.uvarint_size csum
  + Msgbuf.uvarint_size payload_len
