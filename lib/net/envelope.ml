open Rmi_wire

type kind = Data | Ack | Hb

type t = { kind : kind; src : int; epoch : int; lseq : int }

let magic = 0xC7
let kind_code = function Data -> 0 | Ack -> 1 | Hb -> 2

(* FNV-1a over the header fields and payload, folded to 30 bits so the
   uvarint encoding stays short *)
let checksum ~kc ~src ~epoch ~lseq payload =
  let h = ref 0xcbf29ce484222325L in
  let mix b =
    h := Int64.mul (Int64.logxor !h (Int64.of_int (b land 0xff))) 0x100000001b3L
  in
  mix kc;
  for i = 0 to 7 do
    mix (src asr (i * 8))
  done;
  for i = 0 to 7 do
    mix (epoch asr (i * 8))
  done;
  for i = 0 to 7 do
    mix (lseq asr (i * 8))
  done;
  Bytes.iter (fun c -> mix (Char.code c)) payload;
  Int64.to_int (Int64.logand !h 0x3FFFFFFFL)

let encode ~kind ~src ?(epoch = 0) ~lseq ~payload () =
  let w = Msgbuf.create_writer ~initial_capacity:(Bytes.length payload + 16) () in
  let kc = kind_code kind in
  Msgbuf.write_u8 w magic;
  Msgbuf.write_u8 w kc;
  Msgbuf.write_uvarint w src;
  Msgbuf.write_uvarint w epoch;
  Msgbuf.write_uvarint w lseq;
  Msgbuf.write_uvarint w (checksum ~kc ~src ~epoch ~lseq payload);
  Msgbuf.write_string w (Bytes.to_string payload);
  Msgbuf.contents w

let decode frame =
  match
    let r = Msgbuf.reader_of_bytes frame in
    if Msgbuf.read_u8 r <> magic then None
    else
      let kc = Msgbuf.read_u8 r in
      let kind =
        match kc with 0 -> Some Data | 1 -> Some Ack | 2 -> Some Hb | _ -> None
      in
      match kind with
      | None -> None
      | Some kind ->
          let src = Msgbuf.read_uvarint r in
          let epoch = Msgbuf.read_uvarint r in
          let lseq = Msgbuf.read_uvarint r in
          let csum = Msgbuf.read_uvarint r in
          let payload = Bytes.of_string (Msgbuf.read_string r) in
          if csum = checksum ~kc ~src ~epoch ~lseq payload then
            Some ({ kind; src; epoch; lseq }, payload)
          else None
  with
  | exception Msgbuf.Underflow _ -> None
  | v -> v

(* heartbeat frames: lseq 0 = ping, lseq 1 = pong; empty payload *)
let hb_ping = 0
let hb_pong = 1

let overhead ~src ~lseq ~payload_len =
  let frame =
    encode ~kind:Data ~src ~lseq ~payload:(Bytes.create payload_len) ()
  in
  Bytes.length frame - payload_len
