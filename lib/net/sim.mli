(** The [Sim] backend: the in-process simulated interconnect
    ({!Cluster}) packaged as a first-class {!Transport.t}. *)

(** Witness that {!Cluster} satisfies the transport signature. *)
module Backend : Transport.S with type t = Cluster.t

(** Erase an existing cluster into a transport. *)
val pack : Cluster.t -> Transport.t

(** [create ?transport ?zero_copy ~n metrics] is {!Cluster.create}
    followed by {!pack}. *)
val create :
  ?transport:Cluster.transport ->
  ?zero_copy:bool ->
  n:int ->
  Rmi_stats.Metrics.t ->
  Transport.t
