type transport = Raw | Reliable of params
and params = { rto : int; backoff_cap : int; max_attempts : int }

let default_params = { rto = 2; backoff_cap = 32; max_attempts = 12 }

(* the outcome/health/event vocabulary is owned by {!Transport} (it is
   part of the backend-neutral signature); re-exported here so code
   written against [Cluster] keeps naming the constructors directly *)
type idle_outcome = Transport.idle_outcome =
  | Retransmitted of int
  | Waiting
  | Gave_up of int list
  | Dead
  | Raw_transport

(* ------------------------------------------------------------------ *)
(* failure detector                                                    *)
(* ------------------------------------------------------------------ *)

type peer_health = Transport.peer_health = Alive | Suspect | Down

type hb_params = Transport.hb_params = {
  ping_every : int;
  suspect_after : int;
  down_after : int;
}

let default_hb = Transport.default_hb

type peer_event = Transport.peer_event =
  | Peer_suspected
  | Peer_confirmed_down
  | Peer_recovered

type process_event = Transport.process_event =
  | Proc_crashed of { machine : int; durability : Fault_sim.durability }
  | Proc_restarted of {
      machine : int;
      epoch : int;
      durability : Fault_sim.durability;
    }

(* what [self] believes about [peer]: when it last heard anything, how
   it is classified, and the highest incarnation seen (the fence) *)
type det_cell = {
  mutable last_heard : int;
  mutable last_ping : int;
  mutable health : peer_health;
  mutable known_epoch : int;
}

(* a sent-but-unacknowledged data frame, waiting on its retransmit
   timer *)
type pending = {
  frame : bytes;
  mutable attempts : int;
  mutable rto_now : int;
  mutable due : int;  (* tick at which the timer expires *)
}

type link_tx = {
  mutable next_lseq : int;
  unacked : (int, pending) Hashtbl.t;
}

type link_rx = { seen : (int, unit) Hashtbl.t }

type rel = {
  params : params;
  tx : link_tx array array;   (* tx.(src).(dest) *)
  rx : link_rx array array;   (* rx.(self).(src) *)
  det : det_cell array array; (* det.(self).(peer) *)
  mutable hb : hb_params;
  mutable tick : int;
  lock : Mutex.t;
}

type t = {
  n : int;
  boxes : Mailbox.t array;
  metrics : Rmi_stats.Metrics.t;
  (* zero-copy wire path: frame envelopes in place around payloads
     sitting in pooled writers, and hand payloads up as slices.  Off =
     the pre-PR copy-based framing, kept for the wirecost comparison. *)
  zero_copy : bool;
  pool : Rmi_wire.Msgbuf.Pool.buffers;
  mutable fault : (src:int -> dest:int -> bytes -> bytes list) option;
  mutable sim : Fault_sim.t option;
  rel : rel option;
  (* per-(src,dest) coalescing buffers; one flush = one wire envelope =
     one reliable seq/ack unit *)
  mutable batcher : Batcher.t option;
  (* messages unpacked from an already-received batch envelope, served
     ahead of the mailbox; [(frame, off, len)] slices sharing the frame
     bytes so splitting a batch copies nothing *)
  inbox : (bytes * int * int) Queue.t array;
  imutex : Mutex.t array;
  mutable process_hooks : (process_event -> unit) list;
  mutable peer_hooks : (self:int -> peer:int -> peer_event -> unit) list;
}

let create ?(transport = Raw) ?(zero_copy = true) ~n metrics =
  if n < 1 then invalid_arg "Cluster.create: need at least one machine";
  let rel =
    match transport with
    | Raw -> None
    | Reliable params ->
        Some
          {
            params;
            tx =
              Array.init n (fun _ ->
                  Array.init n (fun _ ->
                      { next_lseq = 0; unacked = Hashtbl.create 8 }));
            rx =
              Array.init n (fun _ ->
                  Array.init n (fun _ -> { seen = Hashtbl.create 64 }));
            det =
              Array.init n (fun _ ->
                  Array.init n (fun _ ->
                      {
                        last_heard = 0;
                        last_ping = 0;
                        health = Alive;
                        known_epoch = 0;
                      }));
            hb = default_hb;
            tick = 0;
            lock = Mutex.create ();
          }
  in
  {
    n;
    boxes = Array.init n (fun _ -> Mailbox.create ());
    metrics;
    zero_copy;
    pool = Rmi_wire.Msgbuf.Pool.create ~metrics;
    fault = None;
    sim = None;
    rel;
    batcher = None;
    inbox = Array.init n (fun _ -> Queue.create ());
    imutex = Array.init n (fun _ -> Mutex.create ());
    process_hooks = [];
    peer_hooks = [];
  }

let size t = t.n
let metrics t = t.metrics
let zero_copy t = t.zero_copy
let pool t = t.pool

(* every physical payload copy on the wire path is charged here, under
   both modes — the quantity the wirecost experiment compares *)
let charge t n = Rmi_stats.Metrics.add_bytes_copied t.metrics n

let transport t =
  match t.rel with None -> Raw | Some rel -> Reliable rel.params

let is_reliable t = t.rel <> None

(* the simulated cluster lives in one address space *)
let is_hosted _ _ = true

let check t who =
  if who < 0 || who >= t.n then
    invalid_arg (Printf.sprintf "Cluster: bad machine id %d" who)

let on_process_event t f = t.process_hooks <- t.process_hooks @ [ f ]
let on_peer_event t f = t.peer_hooks <- t.peer_hooks @ [ f ]
let fire_process t ev = List.iter (fun f -> f ev) t.process_hooks
let fire_peer t ~self ~peer ev =
  List.iter (fun f -> f ~self ~peer ev) t.peer_hooks

(* the epoch stamped on frames machine [m] emits *)
let self_epoch t m =
  match t.sim with None -> 0 | Some sim -> Fault_sim.epoch_of sim m

let set_detector t hb =
  match t.rel with None -> () | Some rel -> rel.hb <- hb

let peer_health t ~self ~peer =
  check t self;
  check t peer;
  match t.rel with None -> Alive | Some rel -> rel.det.(self).(peer).health

(* ------------------------------------------------------------------ *)
(* the physical layer: fault hook, then fault schedule, then mailbox   *)
(* ------------------------------------------------------------------ *)

(* a machine just crashed: everything it held in flight dies with it —
   mailbox, unpacked-batch inbox, unflushed batch buffers, link send
   state and dedup memory.  Peers' state about it survives (their
   retransmit timers are the recovery path). *)
let wipe_machine t m =
  Mailbox.clear t.boxes.(m);
  Mutex.lock t.imutex.(m);
  Queue.clear t.inbox.(m);
  Mutex.unlock t.imutex.(m);
  Option.iter (fun b -> Batcher.drop_source b ~src:m) t.batcher;
  match t.rel with
  | None -> ()
  | Some rel ->
      Mutex.lock rel.lock;
      Array.iter
        (fun ltx ->
          ltx.next_lseq <- 0;
          Hashtbl.reset ltx.unacked)
        rel.tx.(m);
      Array.iter (fun lrx -> Hashtbl.reset lrx.seen) rel.rx.(m);
      Array.iter
        (fun d ->
          d.last_heard <- rel.tick;
          d.last_ping <- rel.tick;
          d.health <- Alive)
        rel.det.(m);
      Mutex.unlock rel.lock

(* drain crash/restart events from the simulator and apply them; called
   after every physical transmission (the only place the frame clock
   advances) and at the top of [idle] *)
let poll_crashes t =
  match t.sim with
  | None -> ()
  | Some sim -> (
      match Fault_sim.take_transitions sim with
      | [] -> ()
      | transitions ->
          List.iter
            (fun tr ->
              match tr with
              | Fault_sim.Crashed { machine; durability } ->
                  Rmi_stats.Metrics.incr_crashes t.metrics;
                  wipe_machine t machine;
                  fire_process t (Proc_crashed { machine; durability })
              | Fault_sim.Restarted { machine; epoch; durability } ->
                  Rmi_stats.Metrics.incr_restarts t.metrics;
                  fire_process t
                    (Proc_restarted { machine; epoch; durability }))
            transitions)

let transmit t ~src ~dest frame =
  let frames =
    match t.fault with None -> [ frame ] | Some hook -> hook ~src ~dest frame
  in
  let frames =
    match t.sim with
    | None -> frames
    | Some sim ->
        List.concat_map (fun f -> Fault_sim.on_send sim ~src ~dest f) frames
  in
  List.iter (Mailbox.send t.boxes.(dest)) frames;
  (* a send may have pushed the frame clock over a scheduled crash *)
  poll_crashes t

(* test/diagnostic backdoor: deliver a raw frame to [dest]'s mailbox,
   bypassing hook, simulator and link state *)
let inject_frame t ~dest frame =
  check t dest;
  Mailbox.send t.boxes.(dest) frame

(* control frames (acks, heartbeats): empty payload, so no payload
   copies either way — but the zero-copy mode builds them in a pooled
   writer instead of allocating a throwaway one per frame *)
let control_frame t ~kind ~src ~lseq =
  if t.zero_copy then
    Rmi_wire.Msgbuf.Pool.with_writer t.pool (fun w ->
        let start =
          Envelope.encode_into w ~kind ~src ~epoch:(self_epoch t src) ~lseq
            ~payload:Bytes.empty ()
        in
        Rmi_wire.Msgbuf.sub w ~off:start
          ~len:(Rmi_wire.Msgbuf.length w - start))
  else
    Envelope.encode ~kind ~src ~epoch:(self_epoch t src) ~lseq
      ~payload:Bytes.empty ()

(* reserve the next link sequence number and register [envelope] for
   retransmission; returns after the caller may transmit it *)
let register_unacked rel ~lseq ~ltx envelope =
  Hashtbl.replace ltx.unacked lseq
    {
      frame = envelope;
      attempts = 1;
      rto_now = rel.params.rto;
      due = rel.tick + rel.params.rto;
    }

(* ship one wire frame (a single message or a batch envelope) through
   the configured transport — the legacy copy-based framing: the
   payload is snapshotted three times on its way into an envelope
   ([Bytes.to_string], the length-prefixed blit, and the final
   [contents]), each charged to [bytes_copied] *)
let send_frame t ~src ~dest frame =
  match t.rel with
  | None -> transmit t ~src ~dest frame
  | Some rel ->
      Mutex.lock rel.lock;
      let ltx = rel.tx.(src).(dest) in
      let lseq = ltx.next_lseq in
      ltx.next_lseq <- lseq + 1;
      let envelope =
        Envelope.encode ~kind:Data ~src ~epoch:(self_epoch t src) ~lseq
          ~payload:frame ()
      in
      charge t (3 * Bytes.length frame);
      register_unacked rel ~lseq ~ltx envelope;
      Mutex.unlock rel.lock;
      transmit t ~src ~dest envelope

(* zero-copy variant for a payload already materialized as bytes (a
   buffered batch member, a resent request): one blit into a pooled
   writer plus the single frame snapshot, instead of [send_frame]'s
   three copies *)
let send_frame_zc t ~src ~dest frame =
  match t.rel with
  | None -> transmit t ~src ~dest frame
  | Some rel ->
      let envelope =
        Rmi_wire.Msgbuf.Pool.with_writer t.pool (fun w ->
            Mutex.lock rel.lock;
            let ltx = rel.tx.(src).(dest) in
            let lseq = ltx.next_lseq in
            ltx.next_lseq <- lseq + 1;
            let start =
              Envelope.encode_into w ~kind:Data ~src
                ~epoch:(self_epoch t src) ~lseq ~payload:frame ()
            in
            let envelope =
              Rmi_wire.Msgbuf.sub w ~off:start
                ~len:(Rmi_wire.Msgbuf.length w - start)
            in
            charge t (Bytes.length frame + Bytes.length envelope);
            register_unacked rel ~lseq ~ltx envelope;
            Mutex.unlock rel.lock;
            envelope)
      in
      transmit t ~src ~dest envelope

(* the zero-copy fast path: the payload already sits in [w] after a
   reserved {!Envelope.gap}, the envelope header is back-filled into
   the gap in place, and the frame is snapshotted exactly once (the
   immutable copy the mailbox and the retransmit buffer share) *)
let send_frame_writer t ~src ~dest w ~payload_off =
  let payload_len = Rmi_wire.Msgbuf.length w - payload_off in
  match t.rel with
  | None ->
      let frame = Rmi_wire.Msgbuf.sub w ~off:payload_off ~len:payload_len in
      charge t payload_len;
      transmit t ~src ~dest frame
  | Some rel ->
      Mutex.lock rel.lock;
      let ltx = rel.tx.(src).(dest) in
      let lseq = ltx.next_lseq in
      ltx.next_lseq <- lseq + 1;
      let start =
        Envelope.encode_around w ~kind:Data ~src ~epoch:(self_epoch t src)
          ~lseq ~payload_off ()
      in
      let envelope =
        Rmi_wire.Msgbuf.sub w ~off:start ~len:(Rmi_wire.Msgbuf.length w - start)
      in
      charge t (Bytes.length envelope);
      register_unacked rel ~lseq ~ltx envelope;
      Mutex.unlock rel.lock;
      transmit t ~src ~dest envelope

(* logical-traffic accounting, identical under both transports and both
   framing modes: payload bytes, counted once — retransmissions and
   acks go to their own counters *)
let account_send t len =
  Rmi_stats.Metrics.incr_msgs_sent t.metrics;
  Rmi_stats.Metrics.add_bytes_sent t.metrics len;
  Rmi_stats.Metrics.incr_unbatched t.metrics

let send t ~src ~dest msg =
  check t src;
  check t dest;
  account_send t (Bytes.length msg);
  if t.zero_copy then send_frame_zc t ~src ~dest msg
  else send_frame t ~src ~dest msg

(* physical transmit: the frame rides through the fault hook and the
   simulator but is never enveloped and never charged to the logical
   counters — the hook reliability layers use for their own control
   traffic (acks, retransmits, heartbeats) *)
let send_raw t ~src ~dest frame =
  check t src;
  check t dest;
  transmit t ~src ~dest frame

(* [send_writer t ~src ~dest w ~payload_off] ships the message sitting
   in [w.(payload_off..length w)] — at least {!Envelope.gap} bytes must
   have been reserved before [payload_off].  The writer's storage is
   not referenced after the call returns. *)
let send_writer t ~src ~dest w ~payload_off =
  check t src;
  check t dest;
  account_send t (Rmi_wire.Msgbuf.length w - payload_off);
  send_frame_writer t ~src ~dest w ~payload_off

(* ------------------------------------------------------------------ *)
(* batching: coalesce small messages per destination link              *)
(* ------------------------------------------------------------------ *)

let default_batch_bytes = 4096

let enable_batching ?(max_bytes = default_batch_bytes) t =
  if max_bytes < 1 then invalid_arg "Cluster.enable_batching: max_bytes < 1";
  t.batcher <- Some (Batcher.create ~max_bytes)

let batching_enabled t = t.batcher <> None

(* one buffered group becomes one wire frame: a batch of [k] messages
   pays a single per-message latency in the cost model (msgs_sent + 1)
   while bytes_sent still counts every logical payload byte.  The
   zero-copy mode assembles the batch directly in a gap-reserved pooled
   writer (one blit per member) and envelopes it in place; the legacy
   mode batches with [encode_batch] (three copies of the group) and
   envelopes with [send_frame] (three more). *)
let flush_group t ~src ~dest msgs bytes =
  let k = List.length msgs in
  Rmi_stats.Metrics.incr_msgs_sent t.metrics;
  Rmi_stats.Metrics.add_bytes_sent t.metrics bytes;
  Rmi_stats.Metrics.record_batch t.metrics ~msgs:k;
  (if t.zero_copy then
     match msgs with
     | [ m ] -> send_frame_zc t ~src ~dest m
     | _ ->
         Rmi_wire.Msgbuf.Pool.with_writer t.pool (fun w ->
             let payload_off = Envelope.gap in
             ignore (Rmi_wire.Msgbuf.reserve w Envelope.gap : int);
             Rmi_wire.Protocol.encode_batch_into w msgs;
             charge t bytes;
             send_frame_writer t ~src ~dest w ~payload_off)
   else
     let frame =
       match msgs with
       | [ m ] -> m
       | _ ->
           let f = Rmi_wire.Protocol.encode_batch msgs in
           charge t (3 * bytes);
           f
     in
     send_frame t ~src ~dest frame);
  (dest, k, bytes)

let flush t ~src =
  check t src;
  match t.batcher with
  | None -> []
  | Some b ->
      List.map
        (fun (dest, msgs, bytes) -> flush_group t ~src ~dest msgs bytes)
        (Batcher.take b ~src)

let disable_batching t =
  (match t.batcher with
  | None -> ()
  | Some _ ->
      for src = 0 to t.n - 1 do
        ignore (flush t ~src)
      done);
  t.batcher <- None

let send_buffered t ~src ~dest msg =
  check t src;
  check t dest;
  match t.batcher with
  | None ->
      send t ~src ~dest msg;
      []
  | Some b -> (
      match Batcher.add b ~src ~dest msg with
      | None -> []
      | Some (msgs, bytes) -> [ flush_group t ~src ~dest msgs bytes ])

let buffered_anywhere t =
  match t.batcher with None -> false | Some b -> Batcher.any b

(* ------------------------------------------------------------------ *)
(* receive path: unwrap envelopes, fence stale incarnations, ack data, *)
(* answer heartbeats, suppress duplicates, split batch frames          *)
(* ------------------------------------------------------------------ *)

let pop_inbox t ~self =
  Mutex.lock t.imutex.(self);
  let m =
    if Queue.is_empty t.inbox.(self) then None
    else Some (Queue.pop t.inbox.(self))
  in
  Mutex.unlock t.imutex.(self);
  m

(* [(buf, off, len)] just came off the wire for [self]: either a single
   message, handed straight up, or a batch envelope whose first message
   is returned and whose rest queue up ahead of the mailbox.  The
   zero-copy mode splits the batch into slices sharing the frame bytes;
   the legacy mode copies each sub-message out, as it always did. *)
let unpack t ~self ((buf, off, len) as slice) =
  if not (Rmi_wire.Protocol.is_batch_at buf ~off ~len) then Some slice
  else if t.zero_copy then
    match Rmi_wire.Protocol.decode_batch_slice buf ~off ~len with
    | None | Some [] ->
        (* garbled batch on the raw transport: drop it whole, like any
           other corrupt frame *)
        None
    | Some ((o, l) :: rest) ->
        if rest <> [] then begin
          Mutex.lock t.imutex.(self);
          List.iter (fun (o, l) -> Queue.push (buf, o, l) t.inbox.(self)) rest;
          Mutex.unlock t.imutex.(self)
        end;
        Some (buf, o, l)
  else
    let payload =
      if off = 0 && len = Bytes.length buf then buf else Bytes.sub buf off len
    in
    match Rmi_wire.Protocol.decode_batch payload with
    | None | Some [] -> None
    | Some (first :: rest) ->
        charge t
          (List.fold_left
             (fun acc m -> acc + Bytes.length m)
             (Bytes.length first) rest);
        if rest <> [] then begin
          Mutex.lock t.imutex.(self);
          List.iter
            (fun m -> Queue.push (m, 0, Bytes.length m) t.inbox.(self))
            rest;
          Mutex.unlock t.imutex.(self)
        end;
        Some (first, 0, Bytes.length first)

(* [Some slice] to hand to the upper layer, [None] when the frame was
   consumed here (ack, heartbeat, duplicate, stale epoch, or checksum
   failure).  The zero-copy mode validates the checksum in place and
   returns the payload as a slice of [raw]; the legacy mode copies the
   payload out (charged). *)
let filter_frame t rel ~self raw =
  let decoded =
    if t.zero_copy then
      match Envelope.decode_slice raw ~off:0 ~len:(Bytes.length raw) with
      | None -> None
      | Some (env, (off, len)) -> Some (env, (raw, off, len))
    else
      match Envelope.decode raw with
      | None -> None
      | Some (env, payload) ->
          charge t (Bytes.length payload);
          Some (env, (payload, 0, Bytes.length payload))
  in
  match decoded with
  | None ->
      (* garbled on the wire; the sender's timer recovers it *)
      None
  | Some ({ Envelope.kind; src; epoch; lseq }, payload_slice) ->
      Mutex.lock rel.lock;
      let d = rel.det.(self).(src) in
      (* fence: a frame from an incarnation older than the best one we
         have seen is a ghost of a dead process *)
      let stale = epoch < d.known_epoch in
      let recovered = ref false in
      if not stale then begin
        if epoch > d.known_epoch then begin
          d.known_epoch <- epoch;
          (* the new incarnation restarts its lseq space at 0, so the
             old dedup memory would wrongly swallow its fresh frames *)
          Hashtbl.reset rel.rx.(self).(src).seen
        end;
        d.last_heard <- rel.tick;
        if d.health <> Alive then begin
          d.health <- Alive;
          recovered := true
        end
      end;
      Mutex.unlock rel.lock;
      if !recovered then fire_peer t ~self ~peer:src Peer_recovered;
      if stale then begin
        Rmi_stats.Metrics.incr_stale_drops t.metrics;
        None
      end
      else
        match kind with
        | Envelope.Hb ->
            (* answered reactively on the receive path so liveness works
               in both Sync (pump-driven) and Parallel modes *)
            if lseq = Envelope.hb_ping then begin
              Rmi_stats.Metrics.incr_heartbeats_sent t.metrics;
              transmit t ~src:self ~dest:src
                (control_frame t ~kind:Envelope.Hb ~src:self
                   ~lseq:Envelope.hb_pong)
            end;
            None
        | Envelope.Ack ->
            Mutex.lock rel.lock;
            Hashtbl.remove rel.tx.(self).(src).unacked lseq;
            Mutex.unlock rel.lock;
            None
        | Envelope.Data ->
            (* always ack, even duplicates: the earlier ack may have
               been lost *)
            Rmi_stats.Metrics.incr_acks_sent t.metrics;
            transmit t ~src:self ~dest:src
              (control_frame t ~kind:Envelope.Ack ~src:self ~lseq);
            Mutex.lock rel.lock;
            let seen = rel.rx.(self).(src).seen in
            let dup = Hashtbl.mem seen lseq in
            if not dup then Hashtbl.add seen lseq ();
            Mutex.unlock rel.lock;
            if dup then begin
              Rmi_stats.Metrics.incr_dup_drops t.metrics;
              None
            end
            else Some payload_slice

(* a raw frame just arrived: run it through the transport filter (under
   [Reliable]) and the batch splitter; [Some slice] when a message came
   out of it *)
let admit t ~self raw =
  match t.rel with
  | None -> unpack t ~self (raw, 0, Bytes.length raw)
  | Some rel -> (
      match filter_frame t rel ~self raw with
      | Some payload_slice -> unpack t ~self payload_slice
      | None -> None)

let try_recv_slice t ~self =
  check t self;
  match pop_inbox t ~self with
  | Some m -> Some m
  | None ->
      let rec go () =
        match Mailbox.try_recv t.boxes.(self) with
        | None -> None
        | Some raw -> (
            match admit t ~self raw with Some m -> Some m | None -> go ())
      in
      go ()

let recv_deadline_slice t ~self ~seconds =
  check t self;
  (* one non-blocking pass first, so a zero or negative deadline still
     drains anything already deliverable instead of returning None with
     messages sitting in the mailbox *)
  match try_recv_slice t ~self with
  | Some m -> Some m
  | None ->
      let deadline = Unix.gettimeofday () +. seconds in
      let rec go () =
        let remain = deadline -. Unix.gettimeofday () in
        if remain <= 0.0 then None
        else
          match Mailbox.recv_deadline t.boxes.(self) ~seconds:remain with
          | None -> None
          | Some raw -> (
              match admit t ~self raw with Some m -> Some m | None -> go ())
      in
      go ()

let pending_anywhere t =
  Array.exists (fun b -> not (Mailbox.is_empty b)) t.boxes
  || Array.exists (fun q -> not (Queue.is_empty q)) t.inbox
  || buffered_anywhere t

(* ------------------------------------------------------------------ *)
(* the retransmit + failure-detector clock                             *)
(* ------------------------------------------------------------------ *)

(* sweep the detector on the shared tick: demote quiet peers and decide
   which pings are due; returns (pings, events) to act on lock-free.
   The sweep covers every observer machine, matching the global
   retransmit clock: in Sync mode only the driving machine ever calls
   [idle], but it drives everyone's timers. *)
let detector_sweep t rel =
  let pings = ref [] in
  let events = ref [] in
  let down m =
    match t.sim with None -> false | Some sim -> Fault_sim.is_down sim m
  in
  Array.iteri
    (fun observer row ->
      if not (down observer) then
        Array.iteri
          (fun peer d ->
            if observer <> peer then begin
              let quiet = rel.tick - d.last_heard in
              if quiet >= rel.hb.down_after && d.health = Suspect then begin
                d.health <- Down;
                events := (observer, peer, Peer_confirmed_down) :: !events
              end
              else if quiet >= rel.hb.suspect_after && d.health = Alive
              then begin
                d.health <- Suspect;
                events := (observer, peer, Peer_suspected) :: !events
              end;
              if
                quiet >= rel.hb.ping_every
                && rel.tick - d.last_ping >= rel.hb.ping_every
              then begin
                d.last_ping <- rel.tick;
                pings := (observer, peer) :: !pings
              end
            end)
          row)
    rel.det;
  (List.rev !pings, List.rev !events)

let idle t ~self =
  check t self;
  poll_crashes t;
  match t.rel with
  | None -> Raw_transport
  | Some rel ->
      Mutex.lock rel.lock;
      rel.tick <- rel.tick + 1;
      let resend = ref [] in
      let gave_up = ref [] in
      let unacked = ref 0 in
      Array.iteri
        (fun src row ->
          Array.iteri
            (fun dest ltx ->
              let expired = ref [] in
              Hashtbl.iter
                (fun lseq p ->
                  if p.due > rel.tick then incr unacked
                  else if p.attempts >= rel.params.max_attempts then
                    expired := lseq :: !expired
                  else begin
                    p.attempts <- p.attempts + 1;
                    p.rto_now <- min (p.rto_now * 2) rel.params.backoff_cap;
                    p.due <- rel.tick + p.rto_now;
                    incr unacked;
                    resend := (src, dest, p.frame) :: !resend
                  end)
                ltx.unacked;
              List.iter
                (fun lseq ->
                  Hashtbl.remove ltx.unacked lseq;
                  Rmi_stats.Metrics.incr_timeouts t.metrics;
                  gave_up := dest :: !gave_up)
                !expired)
            row)
        rel.tx;
      let pings, events = detector_sweep t rel in
      Mutex.unlock rel.lock;
      List.iter
        (fun (src, dest, frame) ->
          Rmi_stats.Metrics.incr_retries t.metrics;
          transmit t ~src ~dest frame)
        (List.rev !resend);
      List.iter
        (fun (observer, peer) ->
          Rmi_stats.Metrics.incr_heartbeats_sent t.metrics;
          transmit t ~src:observer ~dest:peer
            (control_frame t ~kind:Envelope.Hb ~src:observer
               ~lseq:Envelope.hb_ping))
        pings;
      List.iter
        (fun (observer, peer, ev) ->
          (match ev with
          | Peer_suspected -> Rmi_stats.Metrics.incr_suspects t.metrics
          | Peer_confirmed_down -> Rmi_stats.Metrics.incr_peer_downs t.metrics
          | Peer_recovered -> ());
          fire_peer t ~self:observer ~peer ev)
        events;
      if !gave_up <> [] then Gave_up (List.sort_uniq compare !gave_up)
      else if !resend <> [] then Retransmitted (List.length !resend)
      else if
        !unacked = 0
        && (match t.sim with
           | None -> true
           | Some sim -> Fault_sim.held_frames sim = 0)
        && not (pending_anywhere t)
      then Dead
      else Waiting

let recv_blocking_slice t ~self =
  check t self;
  match pop_inbox t ~self with
  | Some m -> m
  | None -> (
      match t.rel with
      | None ->
          let rec go () =
            let raw = Mailbox.recv_blocking t.boxes.(self) in
            match admit t ~self raw with Some m -> m | None -> go ()
          in
          go ()
      | Some _ ->
          (* chop the wait into slices so a blocked machine keeps driving
             its own retransmit timers (a server whose reply was dropped
             must resend it even though it is only receiving) *)
          let rec go () =
            match recv_deadline_slice t ~self ~seconds:0.002 with
            | Some payload -> payload
            | None ->
                ignore (idle t ~self);
                go ()
          in
          go ())

(* ------------------------------------------------------------------ *)
(* fault injection                                                     *)
(* ------------------------------------------------------------------ *)

let set_faults t sim = t.sim <- Some sim
let clear_faults t = t.sim <- None
let faults t = t.sim
let set_fault_hook t hook = t.fault <- Some hook
let clear_fault_hook t = t.fault <- None

(* ------------------------------------------------------------------ *)
(* Transport.S completion                                              *)
(* ------------------------------------------------------------------ *)

let name = "sim"

(* everything lives in this process; nothing to release *)
let shutdown _ = ()

(* the bytes-returning receive wrappers are the shared defaults derived
   from the slice family — backends implement only slices *)
include Transport.Recv_defaults (struct
  type nonrec t = t

  let metrics = metrics
  let try_recv_slice = try_recv_slice
  let recv_blocking_slice = recv_blocking_slice
  let recv_deadline_slice = recv_deadline_slice
end)

