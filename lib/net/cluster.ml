type transport = Raw | Reliable of params
and params = { rto : int; backoff_cap : int; max_attempts : int }

let default_params = { rto = 2; backoff_cap = 32; max_attempts = 12 }

type idle_outcome =
  | Retransmitted of int
  | Waiting
  | Gave_up of int list
  | Dead
  | Raw_transport

(* a sent-but-unacknowledged data frame, waiting on its retransmit
   timer *)
type pending = {
  frame : bytes;
  mutable attempts : int;
  mutable rto_now : int;
  mutable due : int;  (* tick at which the timer expires *)
}

type link_tx = {
  mutable next_lseq : int;
  unacked : (int, pending) Hashtbl.t;
}

type link_rx = { seen : (int, unit) Hashtbl.t }

type rel = {
  params : params;
  tx : link_tx array array;  (* tx.(src).(dest) *)
  rx : link_rx array array;  (* rx.(self).(src) *)
  mutable tick : int;
  lock : Mutex.t;
}

(* per-(src,dest) coalescing buffers; one flush = one wire envelope =
   one reliable seq/ack unit *)
type batcher = {
  max_bytes : int;  (* flush a link as soon as it buffers this much *)
  bufs : (int * int, bytes list ref * int ref) Hashtbl.t;
  bmutex : Mutex.t;
}

type t = {
  n : int;
  boxes : Mailbox.t array;
  metrics : Rmi_stats.Metrics.t;
  mutable fault : (src:int -> dest:int -> bytes -> bytes option) option;
  mutable sim : Fault_sim.t option;
  rel : rel option;
  mutable batcher : batcher option;
  (* messages unpacked from an already-received batch envelope, served
     ahead of the mailbox *)
  inbox : bytes Queue.t array;
  imutex : Mutex.t array;
}

let create ?(transport = Raw) ~n metrics =
  if n < 1 then invalid_arg "Cluster.create: need at least one machine";
  let rel =
    match transport with
    | Raw -> None
    | Reliable params ->
        Some
          {
            params;
            tx =
              Array.init n (fun _ ->
                  Array.init n (fun _ ->
                      { next_lseq = 0; unacked = Hashtbl.create 8 }));
            rx =
              Array.init n (fun _ ->
                  Array.init n (fun _ -> { seen = Hashtbl.create 64 }));
            tick = 0;
            lock = Mutex.create ();
          }
  in
  {
    n;
    boxes = Array.init n (fun _ -> Mailbox.create ());
    metrics;
    fault = None;
    sim = None;
    rel;
    batcher = None;
    inbox = Array.init n (fun _ -> Queue.create ());
    imutex = Array.init n (fun _ -> Mutex.create ());
  }

let size t = t.n
let metrics t = t.metrics

let transport t =
  match t.rel with None -> Raw | Some rel -> Reliable rel.params

let is_reliable t = t.rel <> None

let check t who =
  if who < 0 || who >= t.n then
    invalid_arg (Printf.sprintf "Cluster: bad machine id %d" who)

(* ------------------------------------------------------------------ *)
(* the physical layer: fault hook, then fault schedule, then mailbox   *)
(* ------------------------------------------------------------------ *)

let transmit t ~src ~dest frame =
  let frames =
    match t.fault with
    | None -> [ frame ]
    | Some hook -> (
        match hook ~src ~dest frame with Some f -> [ f ] | None -> [])
  in
  let frames =
    match t.sim with
    | None -> frames
    | Some sim ->
        List.concat_map (fun f -> Fault_sim.on_send sim ~src ~dest f) frames
  in
  List.iter (Mailbox.send t.boxes.(dest)) frames

(* ship one wire frame (a single message or a batch envelope) through
   the configured transport; all metrics accounting happens above *)
let send_frame t ~src ~dest frame =
  match t.rel with
  | None -> transmit t ~src ~dest frame
  | Some rel ->
      Mutex.lock rel.lock;
      let ltx = rel.tx.(src).(dest) in
      let lseq = ltx.next_lseq in
      ltx.next_lseq <- lseq + 1;
      let envelope = Envelope.encode ~kind:Data ~src ~lseq ~payload:frame in
      Hashtbl.replace ltx.unacked lseq
        {
          frame = envelope;
          attempts = 1;
          rto_now = rel.params.rto;
          due = rel.tick + rel.params.rto;
        };
      Mutex.unlock rel.lock;
      transmit t ~src ~dest envelope

let send t ~src ~dest msg =
  check t src;
  check t dest;
  (* logical-traffic accounting, identical under both transports:
     payload bytes, counted once — retransmissions and acks go to their
     own counters *)
  Rmi_stats.Metrics.incr_msgs_sent t.metrics;
  Rmi_stats.Metrics.add_bytes_sent t.metrics (Bytes.length msg);
  Rmi_stats.Metrics.incr_unbatched t.metrics;
  send_frame t ~src ~dest msg

(* ------------------------------------------------------------------ *)
(* batching: coalesce small messages per destination link              *)
(* ------------------------------------------------------------------ *)

let default_batch_bytes = 4096

let enable_batching ?(max_bytes = default_batch_bytes) t =
  if max_bytes < 1 then invalid_arg "Cluster.enable_batching: max_bytes < 1";
  t.batcher <-
    Some { max_bytes; bufs = Hashtbl.create 16; bmutex = Mutex.create () }

let batching_enabled t = t.batcher <> None

(* one buffered group becomes one wire frame: a batch of [k] messages
   pays a single per-message latency in the cost model (msgs_sent + 1)
   while bytes_sent still counts every logical payload byte *)
let flush_group t ~src ~dest msgs bytes =
  let k = List.length msgs in
  Rmi_stats.Metrics.incr_msgs_sent t.metrics;
  Rmi_stats.Metrics.add_bytes_sent t.metrics bytes;
  Rmi_stats.Metrics.record_batch t.metrics ~msgs:k;
  let frame =
    match msgs with
    | [ m ] -> m
    | _ -> Rmi_wire.Protocol.encode_batch msgs
  in
  send_frame t ~src ~dest frame;
  (dest, k, bytes)

let flush t ~src =
  check t src;
  match t.batcher with
  | None -> []
  | Some b ->
      Mutex.lock b.bmutex;
      let groups =
        Hashtbl.fold
          (fun (s, d) (msgs, bytes) acc ->
            if s = src && !msgs <> [] then (d, List.rev !msgs, !bytes) :: acc
            else acc)
          b.bufs []
        |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
      in
      List.iter (fun (d, _, _) -> Hashtbl.remove b.bufs (src, d)) groups;
      Mutex.unlock b.bmutex;
      List.map (fun (dest, msgs, bytes) -> flush_group t ~src ~dest msgs bytes)
        groups

let disable_batching t =
  (match t.batcher with
  | None -> ()
  | Some _ ->
      for src = 0 to t.n - 1 do
        ignore (flush t ~src)
      done);
  t.batcher <- None

let send_buffered t ~src ~dest msg =
  check t src;
  check t dest;
  match t.batcher with
  | None ->
      send t ~src ~dest msg;
      []
  | Some b ->
      Mutex.lock b.bmutex;
      let msgs, bytes =
        match Hashtbl.find_opt b.bufs (src, dest) with
        | Some cell -> cell
        | None ->
            let cell = (ref [], ref 0) in
            Hashtbl.replace b.bufs (src, dest) cell;
            cell
      in
      msgs := msg :: !msgs;
      bytes := !bytes + Bytes.length msg;
      let over =
        if !bytes >= b.max_bytes then begin
          let group = (List.rev !msgs, !bytes) in
          Hashtbl.remove b.bufs (src, dest);
          Some group
        end
        else None
      in
      Mutex.unlock b.bmutex;
      match over with
      | None -> []
      | Some (msgs, bytes) -> [ flush_group t ~src ~dest msgs bytes ]

let buffered_anywhere t =
  match t.batcher with
  | None -> false
  | Some b ->
      Mutex.lock b.bmutex;
      let any = Hashtbl.fold (fun _ (msgs, _) acc -> acc || !msgs <> []) b.bufs false in
      Mutex.unlock b.bmutex;
      any

(* ------------------------------------------------------------------ *)
(* receive path: unwrap envelopes, ack data, suppress duplicates,      *)
(* split batch frames                                                  *)
(* ------------------------------------------------------------------ *)

let pop_inbox t ~self =
  Mutex.lock t.imutex.(self);
  let m =
    if Queue.is_empty t.inbox.(self) then None
    else Some (Queue.pop t.inbox.(self))
  in
  Mutex.unlock t.imutex.(self);
  m

(* [payload] just came off the wire for [self]: either a single
   message, handed straight up, or a batch envelope whose first message
   is returned and whose rest queue up ahead of the mailbox *)
let unpack t ~self payload =
  if not (Rmi_wire.Protocol.is_batch payload) then Some payload
  else
    match Rmi_wire.Protocol.decode_batch payload with
    | None | Some [] ->
        (* garbled batch on the raw transport: drop it whole, like any
           other corrupt frame *)
        None
    | Some (first :: rest) ->
        if rest <> [] then begin
          Mutex.lock t.imutex.(self);
          List.iter (fun m -> Queue.push m t.inbox.(self)) rest;
          Mutex.unlock t.imutex.(self)
        end;
        Some first

(* [Some payload] to hand to the upper layer, [None] when the frame was
   consumed here (ack, duplicate, or checksum failure) *)
let filter_frame t rel ~self raw =
  match Envelope.decode raw with
  | None ->
      (* garbled on the wire; the sender's timer recovers it *)
      None
  | Some ({ Envelope.kind = Ack; src; lseq }, _) ->
      Mutex.lock rel.lock;
      Hashtbl.remove rel.tx.(self).(src).unacked lseq;
      Mutex.unlock rel.lock;
      None
  | Some ({ Envelope.kind = Data; src; lseq }, payload) ->
      (* always ack, even duplicates: the earlier ack may have been
         lost *)
      Rmi_stats.Metrics.incr_acks_sent t.metrics;
      transmit t ~src:self ~dest:src
        (Envelope.encode ~kind:Ack ~src:self ~lseq ~payload:Bytes.empty);
      Mutex.lock rel.lock;
      let seen = rel.rx.(self).(src).seen in
      let dup = Hashtbl.mem seen lseq in
      if not dup then Hashtbl.add seen lseq ();
      Mutex.unlock rel.lock;
      if dup then begin
        Rmi_stats.Metrics.incr_dup_drops t.metrics;
        None
      end
      else Some payload

let try_recv t ~self =
  check t self;
  match pop_inbox t ~self with
  | Some m -> Some m
  | None -> (
      match t.rel with
      | None ->
          let rec go () =
            match Mailbox.try_recv t.boxes.(self) with
            | None -> None
            | Some raw -> (
                match unpack t ~self raw with
                | Some m -> Some m
                | None -> go ())
          in
          go ()
      | Some rel ->
          let rec go () =
            match Mailbox.try_recv t.boxes.(self) with
            | None -> None
            | Some raw -> (
                match filter_frame t rel ~self raw with
                | Some payload -> (
                    match unpack t ~self payload with
                    | Some m -> Some m
                    | None -> go ())
                | None -> go ())
          in
          go ())

let recv_deadline t ~self ~seconds =
  check t self;
  match pop_inbox t ~self with
  | Some m -> Some m
  | None ->
      let deadline = Unix.gettimeofday () +. seconds in
      let rec go () =
        let remain = deadline -. Unix.gettimeofday () in
        if remain <= 0.0 then None
        else
          match Mailbox.recv_deadline t.boxes.(self) ~seconds:remain with
          | None -> None
          | Some raw -> (
              match t.rel with
              | None -> (
                  match unpack t ~self raw with
                  | Some m -> Some m
                  | None -> go ())
              | Some rel -> (
                  match filter_frame t rel ~self raw with
                  | Some payload -> (
                      match unpack t ~self payload with
                      | Some m -> Some m
                      | None -> go ())
                  | None -> go ()))
      in
      go ()

let pending_anywhere t =
  Array.exists (fun b -> not (Mailbox.is_empty b)) t.boxes
  || Array.exists (fun q -> not (Queue.is_empty q)) t.inbox
  || buffered_anywhere t

(* ------------------------------------------------------------------ *)
(* the retransmit clock                                                *)
(* ------------------------------------------------------------------ *)

let idle t ~self =
  check t self;
  match t.rel with
  | None -> Raw_transport
  | Some rel ->
      Mutex.lock rel.lock;
      rel.tick <- rel.tick + 1;
      let resend = ref [] in
      let gave_up = ref [] in
      let unacked = ref 0 in
      Array.iteri
        (fun src row ->
          Array.iteri
            (fun dest ltx ->
              let expired = ref [] in
              Hashtbl.iter
                (fun lseq p ->
                  if p.due > rel.tick then incr unacked
                  else if p.attempts >= rel.params.max_attempts then
                    expired := lseq :: !expired
                  else begin
                    p.attempts <- p.attempts + 1;
                    p.rto_now <- min (p.rto_now * 2) rel.params.backoff_cap;
                    p.due <- rel.tick + p.rto_now;
                    incr unacked;
                    resend := (src, dest, p.frame) :: !resend
                  end)
                ltx.unacked;
              List.iter
                (fun lseq ->
                  Hashtbl.remove ltx.unacked lseq;
                  Rmi_stats.Metrics.incr_timeouts t.metrics;
                  gave_up := dest :: !gave_up)
                !expired)
            row)
        rel.tx;
      Mutex.unlock rel.lock;
      List.iter
        (fun (src, dest, frame) ->
          Rmi_stats.Metrics.incr_retries t.metrics;
          transmit t ~src ~dest frame)
        (List.rev !resend);
      if !gave_up <> [] then Gave_up (List.sort_uniq compare !gave_up)
      else if !resend <> [] then Retransmitted (List.length !resend)
      else if
        !unacked = 0
        && (match t.sim with
           | None -> true
           | Some sim -> Fault_sim.held_frames sim = 0)
        && not (pending_anywhere t)
      then Dead
      else Waiting

let recv_blocking t ~self =
  check t self;
  match pop_inbox t ~self with
  | Some m -> m
  | None -> (
      match t.rel with
      | None ->
          let rec go () =
            let raw = Mailbox.recv_blocking t.boxes.(self) in
            match unpack t ~self raw with Some m -> m | None -> go ()
          in
          go ()
      | Some _ ->
          (* chop the wait into slices so a blocked machine keeps driving
             its own retransmit timers (a server whose reply was dropped
             must resend it even though it is only receiving) *)
          let rec go () =
            match recv_deadline t ~self ~seconds:0.002 with
            | Some payload -> payload
            | None ->
                ignore (idle t ~self);
                go ()
          in
          go ())

(* ------------------------------------------------------------------ *)
(* fault injection                                                     *)
(* ------------------------------------------------------------------ *)

let set_faults t sim = t.sim <- Some sim
let clear_faults t = t.sim <- None
let faults t = t.sim
let set_fault_hook t hook = t.fault <- Some hook
let clear_fault_hook t = t.fault <- None
