type t = {
  max_bytes : int;
  bufs : (int * int, bytes list ref * int ref) Hashtbl.t;
  lock : Mutex.t;
}

let create ~max_bytes =
  if max_bytes < 1 then invalid_arg "Batcher.create: max_bytes < 1";
  { max_bytes; bufs = Hashtbl.create 16; lock = Mutex.create () }

let max_bytes t = t.max_bytes

let add t ~src ~dest msg =
  Mutex.lock t.lock;
  let msgs, bytes =
    match Hashtbl.find_opt t.bufs (src, dest) with
    | Some cell -> cell
    | None ->
        let cell = (ref [], ref 0) in
        Hashtbl.replace t.bufs (src, dest) cell;
        cell
  in
  msgs := msg :: !msgs;
  bytes := !bytes + Bytes.length msg;
  let over =
    if !bytes >= t.max_bytes then begin
      let group = (List.rev !msgs, !bytes) in
      Hashtbl.remove t.bufs (src, dest);
      Some group
    end
    else None
  in
  Mutex.unlock t.lock;
  over

let take t ~src =
  Mutex.lock t.lock;
  let groups =
    Hashtbl.fold
      (fun (s, d) (msgs, bytes) acc ->
        if s = src && !msgs <> [] then (d, List.rev !msgs, !bytes) :: acc
        else acc)
      t.bufs []
    |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
  in
  List.iter (fun (d, _, _) -> Hashtbl.remove t.bufs (src, d)) groups;
  Mutex.unlock t.lock;
  groups

let drop_source t ~src =
  Mutex.lock t.lock;
  let gone =
    Hashtbl.fold
      (fun (s, d) _ acc -> if s = src then (s, d) :: acc else acc)
      t.bufs []
  in
  List.iter (Hashtbl.remove t.bufs) gone;
  Mutex.unlock t.lock

let any t =
  Mutex.lock t.lock;
  let yes = Hashtbl.fold (fun _ (msgs, _) acc -> acc || !msgs <> []) t.bufs false in
  Mutex.unlock t.lock;
  yes
