type profile = {
  drop : float;
  duplicate : float;
  reorder : float;
  corrupt : float;
  max_delay : int;
}

let default_lossy =
  { drop = 0.12; duplicate = 0.08; reorder = 0.12; corrupt = 0.08; max_delay = 3 }

let lossless =
  { drop = 0.0; duplicate = 0.0; reorder = 0.0; corrupt = 0.0; max_delay = 1 }

(* one splitmix64 stream per directed link, so the schedule of a link
   depends only on the seed and on that link's frame sequence — not on
   how sends interleave across links *)
type link = {
  mutable state : int64;
  mutable held : (int * bytes) list;  (* sends-to-go before release *)
  mutable count : int;                (* frames sent on this link *)
}

type t = {
  seed : int;
  n : int;
  profile : profile;
  links : link array;
  log : Buffer.t;
  lock : Mutex.t;
}

let mix_init seed idx =
  Int64.add
    (Int64.mul (Int64.of_int (idx + 1)) 0x9E3779B97F4A7C15L)
    (Int64.mul (Int64.of_int seed) 0xBF58476D1CE4E5B9L)

let create ~seed ~n profile =
  if n < 1 then invalid_arg "Fault_sim.create: need at least one machine";
  if profile.max_delay < 1 then invalid_arg "Fault_sim.create: max_delay >= 1";
  {
    seed;
    n;
    profile;
    links =
      Array.init (n * n) (fun idx ->
          { state = mix_init seed idx; held = []; count = 0 });
    log = Buffer.create 256;
    lock = Mutex.create ();
  }

let seed t = t.seed

let next_u64 link =
  link.state <- Int64.add link.state 0x9E3779B97F4A7C15L;
  let z = link.state in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let unit_float link =
  (* top 53 bits -> [0, 1) *)
  Int64.to_float (Int64.shift_right_logical (next_u64 link) 11)
  *. (1.0 /. 9007199254740992.0)

(* a non-negative native int: 62 random bits, so Int64.to_int cannot
   wrap into the sign bit of OCaml's 63-bit int *)
let nat link = Int64.to_int (Int64.shift_right_logical (next_u64 link) 2)

let logf t fmt = Printf.ksprintf (fun s -> Buffer.add_string t.log s) fmt

let on_send t ~src ~dest frame =
  if src < 0 || src >= t.n || dest < 0 || dest >= t.n then
    invalid_arg "Fault_sim.on_send: bad machine id";
  Mutex.lock t.lock;
  let link = t.links.((src * t.n) + dest) in
  link.count <- link.count + 1;
  let frameno = link.count in
  (* a fixed number of samples per frame, drawn whether or not each
     fault fires, keeps the stream aligned across replays *)
  let u_drop = unit_float link in
  let u_dup = unit_float link in
  let u_hold = unit_float link in
  let u_corrupt = unit_float link in
  let s_delay = nat link in
  let s_pos = nat link in
  let p = t.profile in
  let frame =
    if u_corrupt < p.corrupt && Bytes.length frame > 0 then begin
      let frame = Bytes.copy frame in
      let pos = s_pos mod Bytes.length frame in
      let bit = s_pos / Bytes.length frame mod 8 in
      Bytes.set frame pos
        (Char.chr (Char.code (Bytes.get frame pos) lxor (1 lsl bit)));
      logf t "%d->%d #%d corrupt %d.%d\n" src dest frameno pos bit;
      frame
    end
    else frame
  in
  let now =
    if u_drop < p.drop then begin
      logf t "%d->%d #%d drop\n" src dest frameno;
      []
    end
    else if u_hold < p.reorder then begin
      let k = 1 + (s_delay mod p.max_delay) in
      link.held <- link.held @ [ (k, frame) ];
      logf t "%d->%d #%d hold %d\n" src dest frameno k;
      []
    end
    else if u_dup < p.duplicate then begin
      logf t "%d->%d #%d dup\n" src dest frameno;
      [ frame; frame ]
    end
    else [ frame ]
  in
  (* age held frames; expired ones release after the current frame,
     which is what actually reorders the link *)
  let released = ref [] in
  link.held <-
    List.filter_map
      (fun (k, f) ->
        if k <= 1 then begin
          released := f :: !released;
          logf t "%d->%d release\n" src dest;
          None
        end
        else Some (k - 1, f))
      link.held;
  let out = now @ List.rev !released in
  Mutex.unlock t.lock;
  out

let held_frames t =
  Mutex.lock t.lock;
  let n = Array.fold_left (fun acc l -> acc + List.length l.held) 0 t.links in
  Mutex.unlock t.lock;
  n

let digest t =
  Mutex.lock t.lock;
  let s = Buffer.contents t.log in
  Mutex.unlock t.lock;
  s
