type profile = {
  drop : float;
  duplicate : float;
  reorder : float;
  corrupt : float;
  max_delay : int;
}

let default_lossy =
  { drop = 0.12; duplicate = 0.08; reorder = 0.12; corrupt = 0.08; max_delay = 3 }

let lossless =
  { drop = 0.0; duplicate = 0.0; reorder = 0.0; corrupt = 0.0; max_delay = 1 }

(* ------------------------------------------------------------------ *)
(* process faults                                                      *)
(* ------------------------------------------------------------------ *)

type durability = Durable | Amnesia

let durability_label = function Durable -> "durable" | Amnesia -> "amnesia"

type crash_spec = {
  victim : int;
  crash_at : int;              (* frame-clock value that triggers the crash *)
  restart_after : int option;  (* frames of outage; None = stays down *)
  durability : durability;
}

type transition =
  | Crashed of { machine : int; durability : durability }
  | Restarted of { machine : int; epoch : int; durability : durability }

(* per-machine process state *)
type proc = {
  mutable down : bool;
  mutable epoch : int;
  mutable restart_at : int option;  (* clock value when it comes back *)
  mutable proc_durability : durability;
}

(* one splitmix64 stream per directed link, so the schedule of a link
   depends only on the seed and on that link's frame sequence — not on
   how sends interleave across links *)
type link = {
  mutable state : int64;
  mutable held : (int * bytes) list;  (* sends-to-go before release *)
  mutable count : int;                (* frames sent on this link *)
}

type t = {
  seed : int;
  n : int;
  profile : profile;
  links : link array;
  procs : proc array;
  mutable plan : crash_spec list;        (* sorted by crash_at *)
  mutable clock : int;                   (* global frame counter *)
  mutable transitions : transition list; (* newest first; drained by Cluster *)
  log : Buffer.t;
  lock : Mutex.t;
}

let mix_init seed idx =
  Int64.add
    (Int64.mul (Int64.of_int (idx + 1)) 0x9E3779B97F4A7C15L)
    (Int64.mul (Int64.of_int seed) 0xBF58476D1CE4E5B9L)

let create ~seed ~n profile =
  if n < 1 then invalid_arg "Fault_sim.create: need at least one machine";
  if profile.max_delay < 1 then invalid_arg "Fault_sim.create: max_delay >= 1";
  {
    seed;
    n;
    profile;
    links =
      Array.init (n * n) (fun idx ->
          { state = mix_init seed idx; held = []; count = 0 });
    procs =
      Array.init n (fun _ ->
          { down = false; epoch = 0; restart_at = None;
            proc_durability = Durable });
    plan = [];
    clock = 0;
    transitions = [];
    log = Buffer.create 256;
    lock = Mutex.create ();
  }

let seed t = t.seed

let next_u64 link =
  link.state <- Int64.add link.state 0x9E3779B97F4A7C15L;
  let z = link.state in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let unit_float link =
  (* top 53 bits -> [0, 1) *)
  Int64.to_float (Int64.shift_right_logical (next_u64 link) 11)
  *. (1.0 /. 9007199254740992.0)

(* a non-negative native int: 62 random bits, so Int64.to_int cannot
   wrap into the sign bit of OCaml's 63-bit int *)
let nat link = Int64.to_int (Int64.shift_right_logical (next_u64 link) 2)

let logf t fmt = Printf.ksprintf (fun s -> Buffer.add_string t.log s) fmt

(* ------------------------------------------------------------------ *)
(* crash plan                                                          *)
(* ------------------------------------------------------------------ *)

let set_crash_plan t plan =
  List.iter
    (fun c ->
      if c.victim < 0 || c.victim >= t.n then
        invalid_arg "Fault_sim.set_crash_plan: bad victim";
      if c.crash_at < 1 then
        invalid_arg "Fault_sim.set_crash_plan: crash_at >= 1";
      match c.restart_after with
      | Some r when r < 1 ->
          invalid_arg "Fault_sim.set_crash_plan: restart_after >= 1"
      | _ -> ())
    plan;
  Mutex.lock t.lock;
  t.plan <- List.sort (fun a b -> compare a.crash_at b.crash_at) plan;
  Mutex.unlock t.lock

let seeded_crash_plan ~seed ~n ?(crashes = 1) ?(durability = Durable)
    ?(max_gap = 40) ?(max_outage = 30) () =
  if n < 2 then invalid_arg "Fault_sim.seeded_crash_plan: need >= 2 machines";
  if crashes < 0 then invalid_arg "Fault_sim.seeded_crash_plan: crashes >= 0";
  (* a private splitmix stream, disjoint from every link stream *)
  let rng = { state = mix_init seed (n * n + 7); held = []; count = 0 } in
  let rec gen i prev acc =
    if i >= crashes then List.rev acc
    else
      (* machine 0 drives the workload in the harness, so victims are
         drawn from 1..n-1 *)
      let victim = 1 + (nat rng mod (n - 1)) in
      let crash_at = prev + 1 + (nat rng mod max_gap) in
      let restart_after = Some (1 + (nat rng mod max_outage)) in
      let spec = { victim; crash_at; restart_after; durability } in
      gen (i + 1) (crash_at + Option.get restart_after) (spec :: acc)
  in
  gen 0 0 []

(* must be called with [t.lock] held *)
let purge_held_to t ~dest =
  Array.iteri
    (fun idx link ->
      if idx mod t.n = dest && link.held <> [] then begin
        logf t "%d->%d purge %d held\n" (idx / t.n) dest
          (List.length link.held);
        link.held <- []
      end)
    t.links

(* fire due restarts, then due crashes; with [t.lock] held *)
let process_events t =
  Array.iteri
    (fun m p ->
      match p.restart_at with
      | Some at when p.down && at <= t.clock ->
          p.down <- false;
          p.restart_at <- None;
          p.epoch <- p.epoch + 1;
          logf t "restart m%d @%d epoch=%d\n" m t.clock p.epoch;
          t.transitions <-
            Restarted
              { machine = m; epoch = p.epoch; durability = p.proc_durability }
            :: t.transitions
      | _ -> ())
    t.procs;
  let due, rest = List.partition (fun c -> c.crash_at <= t.clock) t.plan in
  t.plan <- rest;
  List.iter
    (fun c ->
      let p = t.procs.(c.victim) in
      if not p.down then begin
        p.down <- true;
        p.proc_durability <- c.durability;
        p.restart_at <- Option.map (fun r -> t.clock + r) c.restart_after;
        logf t "crash m%d @%d %s%s\n" c.victim t.clock
          (durability_label c.durability)
          (match c.restart_after with
          | None -> " forever"
          | Some r -> Printf.sprintf " outage=%d" r);
        (* frames queued toward the victim die with its mailbox; frames
           it already emitted stay held, to exercise epoch fencing *)
        purge_held_to t ~dest:c.victim;
        t.transitions <-
          Crashed { machine = c.victim; durability = c.durability }
          :: t.transitions
      end)
    due

let on_send t ~src ~dest frame =
  if src < 0 || src >= t.n || dest < 0 || dest >= t.n then
    invalid_arg "Fault_sim.on_send: bad machine id";
  Mutex.lock t.lock;
  (* the frame clock: crash/restart events are a pure function of the
     seed and the global send sequence, never of wall time or idle
     polling, so schedules replay byte-for-byte *)
  t.clock <- t.clock + 1;
  process_events t;
  let out =
    if t.procs.(src).down then begin
      (* a dead machine emits nothing; no randomness is consumed, so
         the link stream realigns identically on replay *)
      logf t "%d->%d dead-src drop @%d\n" src dest t.clock;
      []
    end
    else if t.procs.(dest).down then begin
      logf t "%d->%d dead-dest drop @%d\n" src dest t.clock;
      []
    end
    else begin
      let link = t.links.((src * t.n) + dest) in
      link.count <- link.count + 1;
      let frameno = link.count in
      (* a fixed number of samples per frame, drawn whether or not each
         fault fires, keeps the stream aligned across replays *)
      let u_drop = unit_float link in
      let u_dup = unit_float link in
      let u_hold = unit_float link in
      let u_corrupt = unit_float link in
      let s_delay = nat link in
      let s_pos = nat link in
      let p = t.profile in
      let frame =
        if u_corrupt < p.corrupt && Bytes.length frame > 0 then begin
          let frame = Bytes.copy frame in
          let pos = s_pos mod Bytes.length frame in
          let bit = s_pos / Bytes.length frame mod 8 in
          Bytes.set frame pos
            (Char.chr (Char.code (Bytes.get frame pos) lxor (1 lsl bit)));
          logf t "%d->%d #%d corrupt %d.%d\n" src dest frameno pos bit;
          frame
        end
        else frame
      in
      let now =
        if u_drop < p.drop then begin
          logf t "%d->%d #%d drop\n" src dest frameno;
          []
        end
        else if u_hold < p.reorder then begin
          let k = 1 + (s_delay mod p.max_delay) in
          link.held <- link.held @ [ (k, frame) ];
          logf t "%d->%d #%d hold %d\n" src dest frameno k;
          []
        end
        else if u_dup < p.duplicate then begin
          logf t "%d->%d #%d dup\n" src dest frameno;
          [ frame; frame ]
        end
        else [ frame ]
      in
      (* age held frames; expired ones release after the current frame,
         which is what actually reorders the link *)
      let released = ref [] in
      link.held <-
        List.filter_map
          (fun (k, f) ->
            if k <= 1 then begin
              released := f :: !released;
              logf t "%d->%d release\n" src dest;
              None
            end
            else Some (k - 1, f))
          link.held;
      now @ List.rev !released
    end
  in
  Mutex.unlock t.lock;
  out

let take_transitions t =
  Mutex.lock t.lock;
  let ts = List.rev t.transitions in
  t.transitions <- [];
  Mutex.unlock t.lock;
  ts

let is_down t m =
  Mutex.lock t.lock;
  let d = t.procs.(m).down in
  Mutex.unlock t.lock;
  d

let epoch_of t m =
  Mutex.lock t.lock;
  let e = t.procs.(m).epoch in
  Mutex.unlock t.lock;
  e

let frame_clock t =
  Mutex.lock t.lock;
  let c = t.clock in
  Mutex.unlock t.lock;
  c

let held_frames t =
  Mutex.lock t.lock;
  let n = Array.fold_left (fun acc l -> acc + List.length l.held) 0 t.links in
  Mutex.unlock t.lock;
  n

let digest t =
  Mutex.lock t.lock;
  let s = Buffer.contents t.log in
  Mutex.unlock t.lock;
  s
