module Msgbuf = Rmi_wire.Msgbuf
module Protocol = Rmi_wire.Protocol
module Metrics = Rmi_stats.Metrics

(* frames larger than this are a protocol error, not a workload *)
let max_frame = 64 * 1024 * 1024
let mesh_timeout = 30.0
let connect_retry_every = 0.05

(* reconnection backoff: capped exponential, scaled by a deterministic
   per-(link, attempt) jitter so concurrent reconnectors desynchronize
   without consuming randomness *)
let backoff_base = 0.01
let backoff_cap = 0.32

module M = struct
  type conn = {
    fd : Unix.file_descr;
    owner : int;  (* hosted endpoint this is a channel of *)
    peer : int;
    wlock : Mutex.t;  (* stream integrity: one frame at a time *)
    mutable alive : bool;
    mutable rbuf : Bytes.t;  (* stream reassembly *)
    mutable rlen : int;
    (* loopback: this conn's share of [t.inflight] — frames the far end
       wrote toward [owner] but that haven't been parsed out of this
       (receiving) record yet, reclaimed wholesale on [kill_conn] so a
       dying link cannot leave [pending_anywhere] pinned forever *)
    cinflight : int Atomic.t;
  }

  (* accepted, but the 4-byte hello naming the peer hasn't arrived *)
  type pending_conn = {
    pfd : Unix.file_descr;
    powner : int;
    hello : Bytes.t;
    mutable hlen : int;
  }

  type ep = {
    lfd : Unix.file_descr;
    inbox : (bytes * int * int) Queue.t;
    ilock : Mutex.t;
    icond : Condition.t;
  }

  type t = {
    n : int;
    loopback : bool;
    eps : ep option array;  (* hosted endpoints only *)
    conns : conn option array array;  (* conns.(owner).(peer) *)
    clock : Mutex.t;  (* conn table, pendings, closed flag *)
    metrics : Metrics.t;
    pool : Msgbuf.Pool.buffers;
    (* loopback: physical frames written but not yet queued on the
       destination inbox, so [pending_anywhere] never reports quiet
       while a reply sits in a kernel socket buffer *)
    inflight : int Atomic.t;
    mutable batcher : Batcher.t option;
    mutable fault : (src:int -> dest:int -> bytes -> bytes list) option;
    (* the seeded chaos injector; every outbound frame passes through
       it, and its connection actions are applied by [chaos_drain] *)
    mutable chaos : Chaos.t option;
    (* incarnation offset for frames this process stamps: a server
       killed and restarted by an operator announces its new life by
       restarting with a higher epoch, so peers fence its ghosts and
       reset their dedup memory (process mode; chaos restarts manage
       epochs themselves) *)
    mutable base_epoch : int;
    mutable peer_hooks :
      (self:int -> peer:int -> Transport.peer_event -> unit) list;
    mutable process_hooks : (Transport.process_event -> unit) list;
    health : Transport.peer_health array array;
    (* where to redial each machine when its link dies; None = unknown
       (reconnection then waits for the peer to redial us) *)
    peer_addr : (string * int) option array;
    (* per-directed-link connection generation: bumped every time a
       fresh conn is registered, so tests and diagnostics can observe
       that a sever was followed by a reconnect *)
    gens : int array array;
    reconnecting : bool array array;  (* at most one reconnector/link *)
    stop : bool Atomic.t;
    mutable loop : Thread.t option;
    wake_r : Unix.file_descr;
    wake_w : Unix.file_descr;
    mutable pendings : pending_conn list;
    mutable closed : bool;
  }

  let name = "sock"
  let size t = t.n
  let metrics t = t.metrics
  let zero_copy _ = true
  let pool t = t.pool
  let is_reliable _ = false

  let charge t n = Metrics.add_bytes_copied t.metrics n

  let check t who =
    if who < 0 || who >= t.n then
      invalid_arg (Printf.sprintf "Sock: bad machine id %d" who)

  let is_hosted t m =
    check t m;
    t.eps.(m) <> None

  let hosted t who =
    check t who;
    match t.eps.(who) with
    | Some ep -> ep
    | None ->
        invalid_arg
          (Printf.sprintf "Sock: machine %d is not hosted in this process" who)

  (* ---------------------------------------------------------------- *)
  (* wire helpers                                                      *)
  (* ---------------------------------------------------------------- *)

  let put_len b off v =
    Bytes.set b off (Char.chr ((v lsr 24) land 0xff));
    Bytes.set b (off + 1) (Char.chr ((v lsr 16) land 0xff));
    Bytes.set b (off + 2) (Char.chr ((v lsr 8) land 0xff));
    Bytes.set b (off + 3) (Char.chr (v land 0xff))

  let get_len b off =
    (Char.code (Bytes.get b off) lsl 24)
    lor (Char.code (Bytes.get b (off + 1)) lsl 16)
    lor (Char.code (Bytes.get b (off + 2)) lsl 8)
    lor Char.code (Bytes.get b (off + 3))

  let rec write_all fd b off len =
    if len > 0 then
      match Unix.write fd b off len with
      | k -> write_all fd b (off + k) (len - k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd b off len

  let wake t = try ignore (Unix.write t.wake_w (Bytes.make 1 '!') 0 1) with _ -> ()

  (* ---------------------------------------------------------------- *)
  (* connection lifecycle: kill, register, reconnect                   *)
  (* ---------------------------------------------------------------- *)

  let fire_peer t ~self ~peer ev =
    List.iter (fun f -> f ~self ~peer ev) t.peer_hooks

  let fire_process t ev = List.iter (fun f -> f ev) t.process_hooks

  (* remove one unit from [c.cinflight] iff it is still positive; a
     false return means [kill_conn] already reclaimed the whole share *)
  let inflight_take_back c =
    let rec go () =
      let v = Atomic.get c.cinflight in
      if v <= 0 then false
      else if Atomic.compare_and_set c.cinflight v (v - 1) then true
      else go ()
    in
    go ()

  (* close a connection and reclaim its in-flight share.  [fire:false]
     suppresses the health transition and the Down event — replacing a
     duplicate connect with a fresher one is not a peer death.  Returns
     whether the conn was alive (the caller decides about
     reconnection). *)
  let kill_conn ?(fire = true) t c =
    let was_alive = c.alive in
    if was_alive then begin
      c.alive <- false;
      (try Unix.close c.fd with Unix.Unix_error _ -> ());
      (* frames written to this link but never parsed out are gone;
         return them so quiescence fails fast instead of spinning *)
      let residue = Atomic.exchange c.cinflight 0 in
      if residue > 0 then
        ignore (Atomic.fetch_and_add t.inflight (-residue) : int);
      if fire then begin
        t.health.(c.owner).(c.peer) <- Transport.Down;
        fire_peer t ~self:c.owner ~peer:c.peer Transport.Peer_confirmed_down
      end
    end;
    was_alive

  (* install [c] as the live conn of its (owner, peer) link, replacing —
     and silently closing — any previous conn (a duplicate connect from
     the same peer id: the newest connection wins, matching what the
     reconnecting initiator believes).  Bumps the link generation; a
     fresh conn starts with an empty reassembly buffer, so a frame
     half-written when the old conn died is discarded at the
     length-prefix boundary by construction. *)
  let register_conn t c =
    Mutex.lock t.clock;
    let prev = t.conns.(c.owner).(c.peer) in
    t.conns.(c.owner).(c.peer) <- Some c;
    t.gens.(c.owner).(c.peer) <- t.gens.(c.owner).(c.peer) + 1;
    let was = t.health.(c.owner).(c.peer) in
    t.health.(c.owner).(c.peer) <- Transport.Alive;
    Mutex.unlock t.clock;
    (match prev with
    | Some old when old.alive -> ignore (kill_conn ~fire:false t old : bool)
    | _ -> ());
    if was <> Transport.Alive then
      fire_peer t ~self:c.owner ~peer:c.peer Transport.Peer_recovered

  let new_conn ~fd ~owner ~peer =
    {
      fd;
      owner;
      peer;
      wlock = Mutex.create ();
      alive = true;
      rbuf = Bytes.create 65536;
      rlen = 0;
      cinflight = Atomic.make 0;
    }

  (* one TCP connect attempt plus the 4-byte hello; None if the peer
     isn't reachable right now *)
  let dial ~owner host port =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    try
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
      (try Unix.setsockopt fd Unix.TCP_NODELAY true
       with Unix.Unix_error _ -> ());
      let hello = Bytes.create 4 in
      put_len hello 0 owner;
      write_all fd hello 0 4;
      Some fd
    with Unix.Unix_error _ ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      None

  let link_alive t ~owner ~peer =
    Mutex.lock t.clock;
    let alive =
      match t.conns.(owner).(peer) with Some c -> c.alive | None -> false
    in
    Mutex.unlock t.clock;
    alive

  (* jitter factor in [0.5, 1.0), hashed from the link and the attempt *)
  let jitter ~owner ~peer ~attempt =
    let h =
      (owner * 73856093) lxor (peer * 19349663) lxor (attempt * 83492791)
    in
    0.5 +. (float_of_int (h land 0x3ff) /. 2048.0)

  (* capped exponential backoff until the link re-forms, the transport
     closes, or the mesh timeout passes *)
  let reconnect_loop t ~owner ~peer =
    let deadline = Unix.gettimeofday () +. mesh_timeout in
    let rec go attempt =
      if
        (not (Atomic.get t.stop))
        && Unix.gettimeofday () <= deadline
        && not (link_alive t ~owner ~peer)
      then begin
        let delay =
          min backoff_cap (backoff_base *. (2.0 ** float_of_int attempt))
          *. jitter ~owner ~peer ~attempt
        in
        Unix.sleepf delay;
        if (not (Atomic.get t.stop)) && not (link_alive t ~owner ~peer) then
          match t.peer_addr.(peer) with
          | None -> ()
          | Some (host, port) -> (
              match dial ~owner host port with
              | Some fd ->
                  register_conn t (new_conn ~fd ~owner ~peer);
                  wake t
              | None -> go (attempt + 1))
      end
    in
    go 0;
    Mutex.lock t.clock;
    t.reconnecting.(owner).(peer) <- false;
    Mutex.unlock t.clock

  (* the side that originally initiated (higher id) re-initiates; the
     accepting side's conn re-forms when the initiator's fresh connect
     is promoted.  At most one reconnector per directed link. *)
  let maybe_reconnect t ~owner ~peer =
    if owner > peer && t.peer_addr.(peer) <> None then begin
      Mutex.lock t.clock;
      let spawn =
        (not t.closed)
        && (not (Atomic.get t.stop))
        && not t.reconnecting.(owner).(peer)
      in
      if spawn then t.reconnecting.(owner).(peer) <- true;
      Mutex.unlock t.clock;
      if spawn then
        ignore
          (Thread.create (fun () -> reconnect_loop t ~owner ~peer) ()
            : Thread.t)
    end

  let mark_dead t c =
    if kill_conn t c then maybe_reconnect t ~owner:c.owner ~peer:c.peer

  (* ---------------------------------------------------------------- *)
  (* delivery into an endpoint inbox                                   *)
  (* ---------------------------------------------------------------- *)

  (* [frame] is a fresh whole-frame bytes: queue it (split if it is a
     batch envelope — sub-messages are slices sharing the frame) *)
  let deliver t ~dest frame =
    let ep = hosted t dest in
    let len = Bytes.length frame in
    let parts =
      if Protocol.is_batch_at frame ~off:0 ~len then
        match Protocol.decode_batch_slice frame ~off:0 ~len with
        | None | Some [] -> []  (* garbled batch: drop whole *)
        | Some slices -> List.map (fun (o, l) -> (frame, o, l)) slices
      else [ (frame, 0, len) ]
    in
    Mutex.lock ep.ilock;
    List.iter (fun s -> Queue.push s ep.inbox) parts;
    Condition.broadcast ep.icond;
    Mutex.unlock ep.ilock

  (* ---------------------------------------------------------------- *)
  (* send path                                                         *)
  (* ---------------------------------------------------------------- *)

  let conn_to t ~src ~dest =
    Mutex.lock t.clock;
    let c = t.conns.(src).(dest) in
    Mutex.unlock t.clock;
    match c with
    | Some c when c.alive -> Some c
    | Some _ -> None  (* broken link: frames to it are lost *)
    | None -> invalid_arg (Printf.sprintf "Sock: no link %d -> %d" src dest)

  (* loopback in-flight accounting: the frame will be parsed out of the
     RECEIVER's end of the stream — [conns.(dest).(src)] — so the
     per-conn share must be charged there, where [parse_frames]'s
     take-back and [kill_conn]'s residue reclaim will find it.  A dying
     receiver record means the bytes are already lost: charge nothing,
     quiescence must not wait on them. *)
  let charge_inflight t ~src ~dest =
    if not t.loopback then None
    else begin
      Mutex.lock t.clock;
      let r = t.conns.(dest).(src) in
      Mutex.unlock t.clock;
      match r with
      | Some rc when rc.alive ->
          Atomic.incr t.inflight;
          Atomic.incr rc.cinflight;
          Some rc
      | _ -> None
    end

  (* undo one [charge_inflight] after a failed write *)
  let uncharge_inflight t = function
    | None -> ()
    | Some rc -> if inflight_take_back rc then Atomic.decr t.inflight

  (* one physical frame, already materialized *)
  let ship_frame t ~src ~dest frame =
    if Bytes.length frame > max_frame then
      invalid_arg "Sock: frame exceeds the 64 MiB bound";
    if src = dest then deliver t ~dest frame
    else
      match conn_to t ~src ~dest with
      | None -> ()
      | Some c ->
          let charged = charge_inflight t ~src ~dest in
          Mutex.lock c.wlock;
          Fun.protect
            ~finally:(fun () -> Mutex.unlock c.wlock)
            (fun () ->
              try
                let len = Bytes.length frame in
                let hdr = Bytes.create 4 in
                put_len hdr 0 len;
                write_all c.fd hdr 0 4;
                write_all c.fd frame 0 len
              with Unix.Unix_error _ ->
                uncharge_inflight t charged;
                mark_dead t c)

  (* apply a chaos Sever: kill both hosted conn records of the pair
     (each is one end of the same TCP stream, so killing either would
     eventually EOF the other — killing both is merely prompt) *)
  let sever_pair t a b =
    List.iter
      (fun (x, y) ->
        if x >= 0 && x < t.n && y >= 0 && y < t.n then
          match t.conns.(x).(y) with
          | Some c when c.alive -> mark_dead t c
          | _ -> ())
      [ (a, b); (b, a) ]

  (* a chaos kill/restart of machine [m]: its queued inbox and
     unflushed batches die with the process, and every TCP connection
     it had is severed (reconnection re-forms them; while the machine
     is down the injector swallows its traffic) *)
  let apply_transition t = function
    | Fault_sim.Crashed { machine; durability } ->
        Metrics.incr_crashes t.metrics;
        (match t.eps.(machine) with
        | Some ep ->
            Mutex.lock ep.ilock;
            Queue.clear ep.inbox;
            Mutex.unlock ep.ilock
        | None -> ());
        Option.iter (fun b -> Batcher.drop_source b ~src:machine) t.batcher;
        for other = 0 to t.n - 1 do
          if other <> machine then sever_pair t machine other
        done;
        fire_process t (Transport.Proc_crashed { machine; durability })
    | Fault_sim.Restarted { machine; epoch; durability } ->
        Metrics.incr_restarts t.metrics;
        fire_process t (Transport.Proc_restarted { machine; epoch; durability })

  (* drain the injector's side effects after its clock advanced:
     released stall frames ship directly (they already passed the fault
     stage), fired connection actions are applied, and crash/restart
     transitions wipe and notify like the sim backend does *)
  let chaos_drain t c =
    List.iter
      (fun (src, dest, f) -> ship_frame t ~src ~dest f)
      (Chaos.take_released c);
    List.iter
      (function
        | Chaos.Sever { a; b } -> sever_pair t a b
        | Chaos.Stall _ -> ())
      (Chaos.take_actions c);
    List.iter (fun tr -> apply_transition t tr) (Chaos.take_transitions c)

  let ship_hooked t ~src ~dest frame =
    let frames =
      match t.fault with None -> [ frame ] | Some hook -> hook ~src ~dest frame
    in
    match t.chaos with
    | None -> List.iter (fun f -> ship_frame t ~src ~dest f) frames
    | Some c ->
        (* a frame the injector drops was never written: TCP cannot
           resurrect it — recovery belongs to the Reliable layer above *)
        List.iter
          (fun f ->
            List.iter
              (fun f' -> ship_frame t ~src ~dest f')
              (Chaos.on_send c ~src ~dest f))
          frames;
        chaos_drain t c

  (* the no-materialization path: the payload sits in [w] at
     [payload_off] with >= 4 reserved bytes before it; the length
     prefix is patched into that gap and prefix+payload leave in one
     contiguous write straight from the writer's storage *)
  let ship_writer t ~src ~dest w ~payload_off =
    let payload_len = Msgbuf.length w - payload_off in
    if payload_len > max_frame then
      invalid_arg "Sock: frame exceeds the 64 MiB bound";
    if src = dest || t.fault <> None || t.chaos <> None then begin
      (* local delivery, the fault hook and the chaos injector all
         need a real frame *)
      let frame = Msgbuf.sub w ~off:payload_off ~len:payload_len in
      charge t payload_len;
      ship_hooked t ~src ~dest frame
    end
    else
      match conn_to t ~src ~dest with
      | None -> ()
      | Some c ->
          let storage = Msgbuf.unsafe_storage w in
          put_len storage (payload_off - 4) payload_len;
          let charged = charge_inflight t ~src ~dest in
          Mutex.lock c.wlock;
          Fun.protect
            ~finally:(fun () -> Mutex.unlock c.wlock)
            (fun () ->
              try write_all c.fd storage (payload_off - 4) (payload_len + 4)
              with Unix.Unix_error _ ->
                uncharge_inflight t charged;
                mark_dead t c)

  (* logical-traffic accounting, identical to the sim backend *)
  let account_send t len =
    Metrics.incr_msgs_sent t.metrics;
    Metrics.add_bytes_sent t.metrics len;
    Metrics.incr_unbatched t.metrics

  let send t ~src ~dest msg =
    check t src;
    check t dest;
    account_send t (Bytes.length msg);
    ship_hooked t ~src ~dest msg

  (* physical transmit: rides the fault hook and the chaos injector
     like a send, but charges nothing — the Reliable layer's control
     traffic *)
  let send_raw t ~src ~dest frame =
    check t src;
    check t dest;
    ship_hooked t ~src ~dest frame

  let send_writer t ~src ~dest w ~payload_off =
    check t src;
    check t dest;
    account_send t (Msgbuf.length w - payload_off);
    ship_writer t ~src ~dest w ~payload_off

  (* ---------------------------------------------------------------- *)
  (* batching (same bookkeeping and accounting as the sim backend)     *)
  (* ---------------------------------------------------------------- *)

  let enable_batching ?(max_bytes = 4096) t =
    t.batcher <- Some (Batcher.create ~max_bytes)

  let batching_enabled t = t.batcher <> None

  let flush_group t ~src ~dest msgs bytes =
    let k = List.length msgs in
    Metrics.incr_msgs_sent t.metrics;
    Metrics.add_bytes_sent t.metrics bytes;
    Metrics.record_batch t.metrics ~msgs:k;
    (match msgs with
    | [ m ] -> ship_hooked t ~src ~dest m
    | _ ->
        Msgbuf.Pool.with_writer t.pool (fun w ->
            ignore (Msgbuf.reserve w 4 : int);
            Protocol.encode_batch_into w msgs;
            (* one blit per member into the writer *)
            charge t bytes;
            ship_writer t ~src ~dest w ~payload_off:4));
    (dest, k, bytes)

  let flush t ~src =
    check t src;
    match t.batcher with
    | None -> []
    | Some b ->
        List.map
          (fun (dest, msgs, bytes) -> flush_group t ~src ~dest msgs bytes)
          (Batcher.take b ~src)

  let disable_batching t =
    (match t.batcher with
    | None -> ()
    | Some _ ->
        for src = 0 to t.n - 1 do
          if t.eps.(src) <> None then ignore (flush t ~src)
        done);
    t.batcher <- None

  let send_buffered t ~src ~dest msg =
    check t src;
    check t dest;
    match t.batcher with
    | None ->
        send t ~src ~dest msg;
        []
    | Some b -> (
        match Batcher.add b ~src ~dest msg with
        | None -> []
        | Some (msgs, bytes) -> [ flush_group t ~src ~dest msgs bytes ])

  (* ---------------------------------------------------------------- *)
  (* receive path                                                      *)
  (* ---------------------------------------------------------------- *)

  let pop ep =
    Mutex.lock ep.ilock;
    let m = if Queue.is_empty ep.inbox then None else Some (Queue.pop ep.inbox) in
    Mutex.unlock ep.ilock;
    m

  let try_recv_slice t ~self =
    let ep = hosted t self in
    match pop ep with
    | Some m -> Some m
    | None ->
        (* under the synchronous fabric the caller polls in a tight
           loop; on OCaml 5 the event-loop systhread shares this domain,
           so offer it the runtime lock or deliveries stall a tick *)
        Thread.yield ();
        pop ep

  let recv_blocking_slice t ~self =
    let ep = hosted t self in
    Mutex.lock ep.ilock;
    while Queue.is_empty ep.inbox && not t.closed do
      Condition.wait ep.icond ep.ilock
    done;
    if Queue.is_empty ep.inbox then begin
      Mutex.unlock ep.ilock;
      failwith "Sock.recv_blocking: transport shut down"
    end
    else begin
      let m = Queue.pop ep.inbox in
      Mutex.unlock ep.ilock;
      m
    end

  let recv_deadline_slice t ~self ~seconds =
    let ep = hosted t self in
    match pop ep with
    | Some m -> Some m
    | None ->
        let deadline = Unix.gettimeofday () +. seconds in
        let rec go () =
          match pop ep with
          | Some m -> Some m
          | None ->
              if Unix.gettimeofday () >= deadline then None
              else begin
                Thread.yield ();
                (* bind every pop exactly once: a message dequeued here
                   must be returned, never compared away *)
                match pop ep with
                | Some m -> Some m
                | None ->
                    Unix.sleepf 5e-5;
                    go ()
              end
        in
        go ()

  (* ---------------------------------------------------------------- *)
  (* the event loop: accept, read hellos, reassemble frames            *)
  (* ---------------------------------------------------------------- *)

  let promote t p peer = register_conn t (new_conn ~fd:p.pfd ~owner:p.powner ~peer)

  let parse_frames t c =
    let pos = ref 0 in
    let stop = ref false in
    while (not !stop) && c.rlen - !pos >= 4 do
      let len = get_len c.rbuf !pos in
      if len < 0 || len > max_frame then begin
        (* garbled stream: there is no resynchronizing a TCP framing
           error, kill the link *)
        mark_dead t c;
        stop := true
      end
      else if c.rlen - !pos - 4 < len then stop := true
      else begin
        let frame = Bytes.sub c.rbuf (!pos + 4) len in
        (* the one receive-side snapshot out of the stream buffer *)
        charge t len;
        deliver t ~dest:c.owner frame;
        if t.loopback && inflight_take_back c then Atomic.decr t.inflight;
        pos := !pos + 4 + len
      end
    done;
    if !pos > 0 then begin
      Bytes.blit c.rbuf !pos c.rbuf 0 (c.rlen - !pos);
      c.rlen <- c.rlen - !pos
    end

  let read_conn t c =
    if Bytes.length c.rbuf - c.rlen < 65536 then begin
      let grown = Bytes.create (max (2 * Bytes.length c.rbuf) (c.rlen + 65536)) in
      Bytes.blit c.rbuf 0 grown 0 c.rlen;
      c.rbuf <- grown
    end;
    match Unix.read c.fd c.rbuf c.rlen (Bytes.length c.rbuf - c.rlen) with
    | 0 -> mark_dead t c
    | k ->
        c.rlen <- c.rlen + k;
        parse_frames t c
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (_, _, _) -> mark_dead t c

  let read_pending t p =
    match Unix.read p.pfd p.hello p.hlen (4 - p.hlen) with
    | 0 ->
        (* connected, then died before completing the hello *)
        Mutex.lock t.clock;
        t.pendings <- List.filter (fun q -> q != p) t.pendings;
        Mutex.unlock t.clock;
        (try Unix.close p.pfd with Unix.Unix_error _ -> ())
    | k ->
        p.hlen <- p.hlen + k;
        if p.hlen = 4 then begin
          let peer = get_len p.hello 0 in
          Mutex.lock t.clock;
          t.pendings <- List.filter (fun q -> q != p) t.pendings;
          Mutex.unlock t.clock;
          (* a malformed hello (peer id out of range) is not a protocol
             we can answer: close and move on, the loop survives *)
          if peer >= 0 && peer < t.n then promote t p peer
          else try Unix.close p.pfd with Unix.Unix_error _ -> ()
        end
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error (_, _, _) -> (
        Mutex.lock t.clock;
        t.pendings <- List.filter (fun q -> q != p) t.pendings;
        Mutex.unlock t.clock;
        try Unix.close p.pfd with Unix.Unix_error _ -> ())

  let accept_on t owner lfd =
    match Unix.accept lfd with
    | fd, _ ->
        (try Unix.setsockopt fd Unix.TCP_NODELAY true
         with Unix.Unix_error _ -> ());
        Mutex.lock t.clock;
        t.pendings <-
          { pfd = fd; powner = owner; hello = Bytes.create 4; hlen = 0 }
          :: t.pendings;
        Mutex.unlock t.clock
    | exception Unix.Unix_error _ -> ()

  type fd_kind =
    | K_wake
    | K_listener of int * Unix.file_descr
    | K_conn of conn
    | K_pending of pending_conn

  (* multiplex with poll(2), not select: a select fd_set caps the whole
     process at FD_SETSIZE descriptors (1024 on Linux), which bounded
     the loopback mesh at 26 machines; poll's only ceiling is the
     RLIMIT_NOFILE budget (see [max_loopback_machines]) *)
  let loop_body t =
    while not (Atomic.get t.stop) do
      (* snapshot the fd set under the lock: registrations from
         connecting/reconnecting threads wake us via the pipe to
         re-snapshot *)
      Mutex.lock t.clock;
      let entries = ref [] in
      Array.iteri
        (fun i ep ->
          match ep with
          | Some e -> entries := (e.lfd, K_listener (i, e.lfd)) :: !entries
          | None -> ())
        t.eps;
      Array.iter
        (Array.iter (function
          | Some c when c.alive -> entries := (c.fd, K_conn c) :: !entries
          | _ -> ()))
        t.conns;
      List.iter (fun p -> entries := (p.pfd, K_pending p) :: !entries)
        t.pendings;
      Mutex.unlock t.clock;
      let arr = Array.of_list ((t.wake_r, K_wake) :: !entries) in
      let fds = Array.map fst arr in
      List.iter
        (fun i ->
          match snd arr.(i) with
          | K_wake -> (
              let b = Bytes.create 16 in
              try ignore (Unix.read t.wake_r b 0 16) with _ -> ())
          | K_listener (owner, lfd) -> accept_on t owner lfd
          (* [alive] re-checked at read time: a conn killed between the
             snapshot and the poll (its fd possibly already reused by a
             fresh dial) must not be read through the stale record *)
          | K_conn c -> if c.alive then read_conn t c
          | K_pending p -> read_pending t p)
        (Poll.readable fds ~timeout:0.5)
    done

  (* ---------------------------------------------------------------- *)
  (* everything else in Transport.S                                    *)
  (* ---------------------------------------------------------------- *)

  let idle t ~self =
    check t self;
    (* the caller is quiescing on us in a spin; when every link is down
       that spin makes no blocking syscall at all, which on one domain
       would starve the event loop and the reconnector threads of the
       runtime lock forever — enter a real blocking section so they can
       take it (Thread.yield is not enough: it only reschedules, and the
       starved threads sit in timed waits, not on the run queue) *)
    Unix.sleepf 50e-6;
    (* TCP is the retransmit machinery; the injector's clock may still
       owe released frames or connection actions *)
    (match t.chaos with Some c -> chaos_drain t c | None -> ());
    Transport.Raw_transport

  let pending_anywhere t =
    (not t.loopback)  (* remote state is invisible: stay conservative *)
    || Atomic.get t.inflight > 0
    || Array.exists
         (function
           | Some ep ->
               Mutex.lock ep.ilock;
               let any = not (Queue.is_empty ep.inbox) in
               Mutex.unlock ep.ilock;
               any
           | None -> false)
         t.eps
    || (match t.batcher with None -> false | Some b -> Batcher.any b)
  (* frames the chaos injector holds or parks are deliberately NOT
     pending: they only move when the frame clock advances, i.e. when
     the caller keeps driving [idle]/sends rather than waiting — the
     same contract the Sim backend has for [Fault_sim] holds *)

  let peer_health t ~self ~peer =
    check t self;
    check t peer;
    t.health.(self).(peer)

  let set_detector _ _ = ()

  let self_epoch t m =
    check t m;
    t.base_epoch
    + (match t.chaos with Some c -> Chaos.epoch_of c m | None -> 0)

  let on_peer_event t f = t.peer_hooks <- t.peer_hooks @ [ f ]
  let on_process_event t f = t.process_hooks <- t.process_hooks @ [ f ]

  (* a bare fault schedule arriving through the generic Transport
     surface becomes a chaos injector with an empty connection plan:
     the frame-level semantics are exactly the Sim backend's *)
  let set_faults t fs = t.chaos <- Some (Chaos.of_fault_sim ~n:t.n fs)
  let clear_faults t = t.chaos <- None
  let faults t = Option.map Chaos.fault_sim t.chaos
  let set_fault_hook t hook = t.fault <- Some hook
  let clear_fault_hook t = t.fault <- None

  let shutdown t =
    Mutex.lock t.clock;
    let was_closed = t.closed in
    t.closed <- true;
    Mutex.unlock t.clock;
    if not was_closed then begin
      Atomic.set t.stop true;
      wake t;
      Option.iter Thread.join t.loop;
      t.loop <- None;
      Mutex.lock t.clock;
      Array.iter
        (Array.iter (function
          | Some c when c.alive ->
              c.alive <- false;
              (try Unix.close c.fd with Unix.Unix_error _ -> ())
          | _ -> ()))
        t.conns;
      List.iter
        (fun p -> try Unix.close p.pfd with Unix.Unix_error _ -> ())
        t.pendings;
      t.pendings <- [];
      Array.iter
        (function
          | Some ep -> (
              (try Unix.close ep.lfd with Unix.Unix_error _ -> ());
              Mutex.lock ep.ilock;
              Condition.broadcast ep.icond;
              Mutex.unlock ep.ilock)
          | None -> ())
        t.eps;
      Mutex.unlock t.clock;
      (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
      try Unix.close t.wake_w with Unix.Unix_error _ -> ()
    end

  (* bytes-returning receive wrappers: the shared Transport defaults *)
  include Transport.Recv_defaults (struct
    type nonrec t = t

    let metrics = metrics
    let try_recv_slice = try_recv_slice
    let recv_blocking_slice = recv_blocking_slice
    let recv_deadline_slice = recv_deadline_slice
  end)
end

include M

let pack (t : M.t) : Transport.t = Transport.pack (module M) t

(* test/diagnostic surface on the unpacked handle *)
let set_chaos (t : M.t) c = t.M.chaos <- Some c
let chaos (t : M.t) = t.M.chaos

let link_generation (t : M.t) ~owner ~peer =
  M.check t owner;
  M.check t peer;
  Mutex.lock t.M.clock;
  let g = t.M.gens.(owner).(peer) in
  Mutex.unlock t.M.clock;
  g

let sever (t : M.t) ~a ~b =
  M.check t a;
  M.check t b;
  M.sever_pair t a b

let listen_port (t : M.t) machine =
  let ep = M.hosted t machine in
  match Unix.getsockname ep.M.lfd with
  | Unix.ADDR_INET (_, p) -> p
  | _ -> invalid_arg "Sock.listen_port: endpoint is not on a TCP listener"

(* ------------------------------------------------------------------ *)
(* construction                                                        *)
(* ------------------------------------------------------------------ *)

let listen_on host port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
  Unix.listen fd 64;
  let actual_port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> assert false
  in
  (fd, actual_port)

let make ~n ~loopback ~hosted_ids ~listeners ~peer_addr metrics =
  (* a peer that dies between our poll and our write turns the write
     into a SIGPIPE, whose default action kills the whole process —
     with it ignored the write returns EPIPE and the ordinary
     [mark_dead]/reconnect path takes over *)
  if not Sys.win32 then Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let eps = Array.make n None in
  List.iter2
    (fun id lfd ->
      eps.(id) <-
        Some
          {
            M.lfd;
            inbox = Queue.create ();
            ilock = Mutex.create ();
            icond = Condition.create ();
          })
    hosted_ids listeners;
  let wake_r, wake_w = Unix.pipe () in
  {
    M.n;
    loopback;
    eps;
    conns = Array.init n (fun _ -> Array.make n None);
    clock = Mutex.create ();
    metrics;
    pool = Msgbuf.Pool.create ~metrics;
    inflight = Atomic.make 0;
    batcher = None;
    fault = None;
    chaos = None;
    base_epoch = 0;
    peer_hooks = [];
    process_hooks = [];
    health = Array.init n (fun _ -> Array.make n Transport.Alive);
    peer_addr;
    gens = Array.init n (fun _ -> Array.make n 0);
    reconnecting = Array.init n (fun _ -> Array.make n false);
    stop = Atomic.make false;
    loop = None;
    wake_r;
    wake_w;
    pendings = [];
    closed = false;
  }

(* higher id initiates: connect [owner] to [peer]'s address, retrying
   while the peer process boots, and announce ourselves with the
   4-byte hello *)
let connect_to t ~owner ~peer host port =
  let deadline = Unix.gettimeofday () +. mesh_timeout in
  let rec attempt () =
    match M.dial ~owner host port with
    | Some fd -> fd
    | None when Unix.gettimeofday () < deadline ->
        Unix.sleepf connect_retry_every;
        attempt ()
    | None -> failwith (Printf.sprintf "Sock: cannot reach %s:%d" host port)
  in
  let fd = attempt () in
  M.register_conn t (M.new_conn ~fd ~owner ~peer);
  M.wake t

let mesh_complete t hosted_ids =
  List.for_all
    (fun i ->
      Array.for_all (fun j -> j = i || t.M.conns.(i).(j) <> None)
        (Array.init t.M.n Fun.id))
    hosted_ids

let await_mesh t hosted_ids =
  let deadline = Unix.gettimeofday () +. mesh_timeout in
  let rec go () =
    Mutex.lock t.M.clock;
    let ok = mesh_complete t hosted_ids in
    Mutex.unlock t.M.clock;
    if ok then ()
    else if Unix.gettimeofday () >= deadline then begin
      M.shutdown t;
      failwith "Sock: mesh formation timed out (are all peers running?)"
    end
    else begin
      Unix.sleepf 0.02;
      go ()
    end
  in
  go ()

(* the poll(2) event loop is bounded only by the process RLIMIT_NOFILE
   budget.  A loopback mesh holds the wake pipe (2), n listeners,
   n(n-1) conn fds (both ends of every link are hosted here) and up to
   n(n-1)/2 pending accepts during formation; 64 descriptors of
   headroom are left for the rest of the process, and the answer is
   capped at 512 machines (the O(n^2) fd scan stops being a sane event
   loop long before the budget runs out) *)
let max_loopback_machines () =
  let budget = Poll.nofile_limit () - 64 in
  let fds n = 2 + n + (n * (n - 1)) + (n * (n - 1) / 2) in
  let rec grow n = if n < 512 && fds (n + 1) <= budget then grow (n + 1) else n in
  grow 1

let create_loopback_t ?chaos ~n metrics =
  if n < 1 then invalid_arg "Sock.create_loopback: need at least one machine";
  let cap = max_loopback_machines () in
  if n > cap then
    invalid_arg
      (Printf.sprintf
         "Sock.create_loopback: a %d-machine mesh needs more descriptors \
          than this process's RLIMIT_NOFILE budget allows (max %d machines)"
         n cap);
  let hosted_ids = List.init n Fun.id in
  let listeners_ports =
    List.map (fun _ -> listen_on "127.0.0.1" 0) hosted_ids
  in
  let ports = Array.of_list (List.map snd listeners_ports) in
  let peer_addr = Array.init n (fun j -> Some ("127.0.0.1", ports.(j))) in
  let t =
    make ~n ~loopback:true ~hosted_ids
      ~listeners:(List.map fst listeners_ports)
      ~peer_addr metrics
  in
  t.M.chaos <- chaos;
  t.M.loop <- Some (Thread.create M.loop_body t);
  for i = 0 to n - 1 do
    for j = 0 to i - 1 do
      connect_to t ~owner:i ~peer:j "127.0.0.1" ports.(j)
    done
  done;
  await_mesh t hosted_ids;
  t

let create_loopback ?chaos ~n metrics = pack (create_loopback_t ?chaos ~n metrics)

let create_process ?chaos ?(epoch = 0) ?listen ~self ~addrs metrics =
  let n = Array.length addrs in
  if n < 1 then invalid_arg "Sock.create_process: need at least one machine";
  if self < 0 || self >= n then
    invalid_arg (Printf.sprintf "Sock.create_process: bad self id %d" self);
  let bind_host, bind_port =
    match listen with Some hp -> hp | None -> addrs.(self)
  in
  let lfd, _ = listen_on bind_host bind_port in
  let peer_addr = Array.map (fun a -> Some a) addrs in
  let t =
    make ~n ~loopback:false ~hosted_ids:[ self ] ~listeners:[ lfd ] ~peer_addr
      metrics
  in
  t.M.chaos <- chaos;
  t.M.base_epoch <- epoch;
  t.M.loop <- Some (Thread.create M.loop_body t);
  for j = 0 to self - 1 do
    let host, port = addrs.(j) in
    connect_to t ~owner:self ~peer:j host port
  done;
  await_mesh t [ self ];
  pack t
