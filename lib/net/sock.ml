module Msgbuf = Rmi_wire.Msgbuf
module Protocol = Rmi_wire.Protocol
module Metrics = Rmi_stats.Metrics

(* frames larger than this are a protocol error, not a workload *)
let max_frame = 64 * 1024 * 1024
let mesh_timeout = 30.0
let connect_retry_every = 0.05

module M = struct
  type conn = {
    fd : Unix.file_descr;
    owner : int;  (* hosted endpoint this is a channel of *)
    peer : int;
    wlock : Mutex.t;  (* stream integrity: one frame at a time *)
    mutable alive : bool;
    mutable rbuf : Bytes.t;  (* stream reassembly *)
    mutable rlen : int;
    (* loopback: this conn's share of [t.inflight] — frames written to
       it but not yet parsed out, reclaimed wholesale on [mark_dead] so
       a dying link cannot leave [pending_anywhere] pinned forever *)
    cinflight : int Atomic.t;
  }

  (* accepted, but the 4-byte hello naming the peer hasn't arrived *)
  type pending_conn = {
    pfd : Unix.file_descr;
    powner : int;
    hello : Bytes.t;
    mutable hlen : int;
  }

  type ep = {
    lfd : Unix.file_descr;
    inbox : (bytes * int * int) Queue.t;
    ilock : Mutex.t;
    icond : Condition.t;
  }

  type t = {
    n : int;
    loopback : bool;
    eps : ep option array;  (* hosted endpoints only *)
    conns : conn option array array;  (* conns.(owner).(peer) *)
    clock : Mutex.t;  (* conn table, pendings, closed flag *)
    metrics : Metrics.t;
    pool : Msgbuf.Pool.buffers;
    (* loopback: physical frames written but not yet queued on the
       destination inbox, so [pending_anywhere] never reports quiet
       while a reply sits in a kernel socket buffer *)
    inflight : int Atomic.t;
    mutable batcher : Batcher.t option;
    mutable fault : (src:int -> dest:int -> bytes -> bytes option) option;
    mutable peer_hooks :
      (self:int -> peer:int -> Transport.peer_event -> unit) list;
    mutable process_hooks : (Transport.process_event -> unit) list;
    health : Transport.peer_health array array;
    stop : bool Atomic.t;
    mutable loop : Thread.t option;
    wake_r : Unix.file_descr;
    wake_w : Unix.file_descr;
    mutable pendings : pending_conn list;
    mutable closed : bool;
  }

  let name = "sock"
  let size t = t.n
  let metrics t = t.metrics
  let zero_copy _ = true
  let pool t = t.pool
  let is_reliable _ = false
  let charge t n = Metrics.add_bytes_copied t.metrics n

  let check t who =
    if who < 0 || who >= t.n then
      invalid_arg (Printf.sprintf "Sock: bad machine id %d" who)

  let hosted t who =
    check t who;
    match t.eps.(who) with
    | Some ep -> ep
    | None ->
        invalid_arg
          (Printf.sprintf "Sock: machine %d is not hosted in this process" who)

  (* ---------------------------------------------------------------- *)
  (* wire helpers                                                      *)
  (* ---------------------------------------------------------------- *)

  let put_len b off v =
    Bytes.set b off (Char.chr ((v lsr 24) land 0xff));
    Bytes.set b (off + 1) (Char.chr ((v lsr 16) land 0xff));
    Bytes.set b (off + 2) (Char.chr ((v lsr 8) land 0xff));
    Bytes.set b (off + 3) (Char.chr (v land 0xff))

  let get_len b off =
    (Char.code (Bytes.get b off) lsl 24)
    lor (Char.code (Bytes.get b (off + 1)) lsl 16)
    lor (Char.code (Bytes.get b (off + 2)) lsl 8)
    lor Char.code (Bytes.get b (off + 3))

  let rec write_all fd b off len =
    if len > 0 then
      match Unix.write fd b off len with
      | k -> write_all fd b (off + k) (len - k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd b off len

  let wake t = try ignore (Unix.write t.wake_w (Bytes.make 1 '!') 0 1) with _ -> ()

  (* ---------------------------------------------------------------- *)
  (* delivery into an endpoint inbox                                   *)
  (* ---------------------------------------------------------------- *)

  let fire_peer t ~self ~peer ev =
    List.iter (fun f -> f ~self ~peer ev) t.peer_hooks

  (* remove one unit from [c.cinflight] iff it is still positive; a
     false return means [mark_dead] already reclaimed the whole share *)
  let inflight_take_back c =
    let rec go () =
      let v = Atomic.get c.cinflight in
      if v <= 0 then false
      else if Atomic.compare_and_set c.cinflight v (v - 1) then true
      else go ()
    in
    go ()

  let mark_dead t c =
    let fire =
      c.alive
      && begin
           c.alive <- false;
           (try Unix.close c.fd with Unix.Unix_error _ -> ());
           t.health.(c.owner).(c.peer) <- Transport.Down;
           (* frames written to this link but never parsed out are gone;
              return them so quiescence fails fast instead of spinning *)
           let residue = Atomic.exchange c.cinflight 0 in
           if residue > 0 then
             ignore (Atomic.fetch_and_add t.inflight (-residue) : int);
           true
         end
    in
    if fire then fire_peer t ~self:c.owner ~peer:c.peer Transport.Peer_confirmed_down

  (* [frame] is a fresh whole-frame bytes: queue it (split if it is a
     batch envelope — sub-messages are slices sharing the frame) *)
  let deliver t ~dest frame =
    let ep = hosted t dest in
    let len = Bytes.length frame in
    let parts =
      if Protocol.is_batch_at frame ~off:0 ~len then
        match Protocol.decode_batch_slice frame ~off:0 ~len with
        | None | Some [] -> []  (* garbled batch: drop whole *)
        | Some slices -> List.map (fun (o, l) -> (frame, o, l)) slices
      else [ (frame, 0, len) ]
    in
    Mutex.lock ep.ilock;
    List.iter (fun s -> Queue.push s ep.inbox) parts;
    Condition.broadcast ep.icond;
    Mutex.unlock ep.ilock

  (* ---------------------------------------------------------------- *)
  (* send path                                                         *)
  (* ---------------------------------------------------------------- *)

  let conn_to t ~src ~dest =
    Mutex.lock t.clock;
    let c = t.conns.(src).(dest) in
    Mutex.unlock t.clock;
    match c with
    | Some c when c.alive -> Some c
    | Some _ -> None  (* broken link: frames to it are lost *)
    | None -> invalid_arg (Printf.sprintf "Sock: no link %d -> %d" src dest)

  (* one physical frame, already materialized *)
  let ship_frame t ~src ~dest frame =
    if Bytes.length frame > max_frame then
      invalid_arg "Sock: frame exceeds the 64 MiB bound";
    if src = dest then deliver t ~dest frame
    else
      match conn_to t ~src ~dest with
      | None -> ()
      | Some c ->
          if t.loopback then begin
            Atomic.incr t.inflight;
            Atomic.incr c.cinflight
          end;
          Mutex.lock c.wlock;
          Fun.protect
            ~finally:(fun () -> Mutex.unlock c.wlock)
            (fun () ->
              try
                let len = Bytes.length frame in
                let hdr = Bytes.create 4 in
                put_len hdr 0 len;
                write_all c.fd hdr 0 4;
                write_all c.fd frame 0 len
              with Unix.Unix_error _ ->
                if t.loopback && inflight_take_back c then
                  Atomic.decr t.inflight;
                mark_dead t c)

  let ship_hooked t ~src ~dest frame =
    match t.fault with
    | None -> ship_frame t ~src ~dest frame
    | Some hook -> (
        (* a dropped frame is lost forever here: TCP does not
           retransmit what was never written *)
        match hook ~src ~dest frame with
        | Some f -> ship_frame t ~src ~dest f
        | None -> ())

  (* the no-materialization path: the payload sits in [w] at
     [payload_off] with >= 4 reserved bytes before it; the length
     prefix is patched into that gap and prefix+payload leave in one
     contiguous write straight from the writer's storage *)
  let ship_writer t ~src ~dest w ~payload_off =
    let payload_len = Msgbuf.length w - payload_off in
    if payload_len > max_frame then
      invalid_arg "Sock: frame exceeds the 64 MiB bound";
    if src = dest || t.fault <> None then begin
      (* local delivery and the fault hook both need a real frame *)
      let frame = Msgbuf.sub w ~off:payload_off ~len:payload_len in
      charge t payload_len;
      ship_hooked t ~src ~dest frame
    end
    else
      match conn_to t ~src ~dest with
      | None -> ()
      | Some c ->
          let storage = Msgbuf.unsafe_storage w in
          put_len storage (payload_off - 4) payload_len;
          if t.loopback then begin
            Atomic.incr t.inflight;
            Atomic.incr c.cinflight
          end;
          Mutex.lock c.wlock;
          Fun.protect
            ~finally:(fun () -> Mutex.unlock c.wlock)
            (fun () ->
              try write_all c.fd storage (payload_off - 4) (payload_len + 4)
              with Unix.Unix_error _ ->
                if t.loopback && inflight_take_back c then
                  Atomic.decr t.inflight;
                mark_dead t c)

  (* logical-traffic accounting, identical to the sim backend *)
  let account_send t len =
    Metrics.incr_msgs_sent t.metrics;
    Metrics.add_bytes_sent t.metrics len;
    Metrics.incr_unbatched t.metrics

  let send t ~src ~dest msg =
    check t src;
    check t dest;
    account_send t (Bytes.length msg);
    ship_hooked t ~src ~dest msg

  let send_writer t ~src ~dest w ~payload_off =
    check t src;
    check t dest;
    account_send t (Msgbuf.length w - payload_off);
    ship_writer t ~src ~dest w ~payload_off

  (* ---------------------------------------------------------------- *)
  (* batching (same bookkeeping and accounting as the sim backend)     *)
  (* ---------------------------------------------------------------- *)

  let enable_batching ?(max_bytes = 4096) t =
    t.batcher <- Some (Batcher.create ~max_bytes)

  let batching_enabled t = t.batcher <> None

  let flush_group t ~src ~dest msgs bytes =
    let k = List.length msgs in
    Metrics.incr_msgs_sent t.metrics;
    Metrics.add_bytes_sent t.metrics bytes;
    Metrics.record_batch t.metrics ~msgs:k;
    (match msgs with
    | [ m ] -> ship_hooked t ~src ~dest m
    | _ ->
        Msgbuf.Pool.with_writer t.pool (fun w ->
            ignore (Msgbuf.reserve w 4 : int);
            Protocol.encode_batch_into w msgs;
            (* one blit per member into the writer *)
            charge t bytes;
            ship_writer t ~src ~dest w ~payload_off:4));
    (dest, k, bytes)

  let flush t ~src =
    check t src;
    match t.batcher with
    | None -> []
    | Some b ->
        List.map
          (fun (dest, msgs, bytes) -> flush_group t ~src ~dest msgs bytes)
          (Batcher.take b ~src)

  let disable_batching t =
    (match t.batcher with
    | None -> ()
    | Some _ ->
        for src = 0 to t.n - 1 do
          if t.eps.(src) <> None then ignore (flush t ~src)
        done);
    t.batcher <- None

  let send_buffered t ~src ~dest msg =
    check t src;
    check t dest;
    match t.batcher with
    | None ->
        send t ~src ~dest msg;
        []
    | Some b -> (
        match Batcher.add b ~src ~dest msg with
        | None -> []
        | Some (msgs, bytes) -> [ flush_group t ~src ~dest msgs bytes ])

  (* ---------------------------------------------------------------- *)
  (* receive path                                                      *)
  (* ---------------------------------------------------------------- *)

  let pop ep =
    Mutex.lock ep.ilock;
    let m = if Queue.is_empty ep.inbox then None else Some (Queue.pop ep.inbox) in
    Mutex.unlock ep.ilock;
    m

  let try_recv_slice t ~self =
    let ep = hosted t self in
    match pop ep with
    | Some m -> Some m
    | None ->
        (* under the synchronous fabric the caller polls in a tight
           loop; on OCaml 5 the event-loop systhread shares this domain,
           so offer it the runtime lock or deliveries stall a tick *)
        Thread.yield ();
        pop ep

  let recv_blocking_slice t ~self =
    let ep = hosted t self in
    Mutex.lock ep.ilock;
    while Queue.is_empty ep.inbox && not t.closed do
      Condition.wait ep.icond ep.ilock
    done;
    if Queue.is_empty ep.inbox then begin
      Mutex.unlock ep.ilock;
      failwith "Sock.recv_blocking: transport shut down"
    end
    else begin
      let m = Queue.pop ep.inbox in
      Mutex.unlock ep.ilock;
      m
    end

  let recv_deadline_slice t ~self ~seconds =
    let ep = hosted t self in
    match pop ep with
    | Some m -> Some m
    | None ->
        let deadline = Unix.gettimeofday () +. seconds in
        let rec go () =
          match pop ep with
          | Some m -> Some m
          | None ->
              if Unix.gettimeofday () >= deadline then None
              else begin
                Thread.yield ();
                (* bind every pop exactly once: a message dequeued here
                   must be returned, never compared away *)
                match pop ep with
                | Some m -> Some m
                | None ->
                    Unix.sleepf 5e-5;
                    go ()
              end
        in
        go ()

  (* ---------------------------------------------------------------- *)
  (* the event loop: accept, read hellos, reassemble frames            *)
  (* ---------------------------------------------------------------- *)

  let register_conn t c =
    Mutex.lock t.clock;
    t.conns.(c.owner).(c.peer) <- Some c;
    Mutex.unlock t.clock

  let promote t p peer =
    let c =
      {
        fd = p.pfd;
        owner = p.powner;
        peer;
        wlock = Mutex.create ();
        alive = true;
        rbuf = Bytes.create 65536;
        rlen = 0;
        cinflight = Atomic.make 0;
      }
    in
    register_conn t c

  let parse_frames t c =
    let pos = ref 0 in
    let stop = ref false in
    while (not !stop) && c.rlen - !pos >= 4 do
      let len = get_len c.rbuf !pos in
      if len < 0 || len > max_frame then begin
        (* garbled stream: there is no resynchronizing a TCP framing
           error, kill the link *)
        mark_dead t c;
        stop := true
      end
      else if c.rlen - !pos - 4 < len then stop := true
      else begin
        let frame = Bytes.sub c.rbuf (!pos + 4) len in
        (* the one receive-side snapshot out of the stream buffer *)
        charge t len;
        deliver t ~dest:c.owner frame;
        if t.loopback && inflight_take_back c then Atomic.decr t.inflight;
        pos := !pos + 4 + len
      end
    done;
    if !pos > 0 then begin
      Bytes.blit c.rbuf !pos c.rbuf 0 (c.rlen - !pos);
      c.rlen <- c.rlen - !pos
    end

  let read_conn t c =
    if Bytes.length c.rbuf - c.rlen < 65536 then begin
      let grown = Bytes.create (max (2 * Bytes.length c.rbuf) (c.rlen + 65536)) in
      Bytes.blit c.rbuf 0 grown 0 c.rlen;
      c.rbuf <- grown
    end;
    match Unix.read c.fd c.rbuf c.rlen (Bytes.length c.rbuf - c.rlen) with
    | 0 -> mark_dead t c
    | k ->
        c.rlen <- c.rlen + k;
        parse_frames t c
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (_, _, _) -> mark_dead t c

  let read_pending t p =
    match Unix.read p.pfd p.hello p.hlen (4 - p.hlen) with
    | 0 ->
        Mutex.lock t.clock;
        t.pendings <- List.filter (fun q -> q != p) t.pendings;
        Mutex.unlock t.clock;
        (try Unix.close p.pfd with Unix.Unix_error _ -> ())
    | k ->
        p.hlen <- p.hlen + k;
        if p.hlen = 4 then begin
          let peer = get_len p.hello 0 in
          Mutex.lock t.clock;
          t.pendings <- List.filter (fun q -> q != p) t.pendings;
          Mutex.unlock t.clock;
          if peer >= 0 && peer < t.n then promote t p peer
          else try Unix.close p.pfd with Unix.Unix_error _ -> ()
        end
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error (_, _, _) -> (
        Mutex.lock t.clock;
        t.pendings <- List.filter (fun q -> q != p) t.pendings;
        Mutex.unlock t.clock;
        try Unix.close p.pfd with Unix.Unix_error _ -> ())

  let accept_on t owner lfd =
    match Unix.accept lfd with
    | fd, _ ->
        (try Unix.setsockopt fd Unix.TCP_NODELAY true
         with Unix.Unix_error _ -> ());
        Mutex.lock t.clock;
        t.pendings <-
          { pfd = fd; powner = owner; hello = Bytes.create 4; hlen = 0 }
          :: t.pendings;
        Mutex.unlock t.clock
    | exception Unix.Unix_error _ -> ()

  let loop_body t =
    while not (Atomic.get t.stop) do
      (* snapshot the fd sets under the lock: registrations from the
         connecting thread wake us via the pipe to re-snapshot *)
      Mutex.lock t.clock;
      let listeners = ref [] and conns = ref [] and pends = ref [] in
      Array.iteri
        (fun i ep ->
          match ep with Some e -> listeners := (i, e.lfd) :: !listeners | None -> ())
        t.eps;
      Array.iter
        (Array.iter (function
          | Some c when c.alive -> conns := c :: !conns
          | _ -> ()))
        t.conns;
      pends := t.pendings;
      Mutex.unlock t.clock;
      let fds =
        t.wake_r
        :: List.map snd !listeners
        @ List.map (fun (c : conn) -> c.fd) !conns
        @ List.map (fun p -> p.pfd) !pends
      in
      match Unix.select fds [] [] 0.5 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | exception Unix.Unix_error (Unix.EBADF, _, _) ->
          (* a conn died between snapshot and select; re-snapshot *)
          Thread.yield ()
      | ready, _, _ ->
          List.iter
            (fun fd ->
              if fd = t.wake_r then begin
                let b = Bytes.create 16 in
                try ignore (Unix.read t.wake_r b 0 16) with _ -> ()
              end
              else
                match List.find_opt (fun (_, l) -> l = fd) !listeners with
                | Some (owner, lfd) -> accept_on t owner lfd
                | None -> (
                    match
                      List.find_opt (fun (c : conn) -> c.fd = fd) !conns
                    with
                    | Some c -> if c.alive then read_conn t c
                    | None -> (
                        match
                          List.find_opt (fun p -> p.pfd = fd) !pends
                        with
                        | Some p -> read_pending t p
                        | None -> ())))
            ready
    done

  (* ---------------------------------------------------------------- *)
  (* everything else in Transport.S                                    *)
  (* ---------------------------------------------------------------- *)

  let idle t ~self =
    check t self;
    (* TCP is the retransmit machinery *)
    Transport.Raw_transport

  let pending_anywhere t =
    (not t.loopback)  (* remote state is invisible: stay conservative *)
    || Atomic.get t.inflight > 0
    || Array.exists
         (function
           | Some ep ->
               Mutex.lock ep.ilock;
               let any = not (Queue.is_empty ep.inbox) in
               Mutex.unlock ep.ilock;
               any
           | None -> false)
         t.eps
    || (match t.batcher with None -> false | Some b -> Batcher.any b)

  let peer_health t ~self ~peer =
    check t self;
    check t peer;
    t.health.(self).(peer)

  let set_detector _ _ = ()
  let self_epoch t m = check t m; 0
  let on_peer_event t f = t.peer_hooks <- t.peer_hooks @ [ f ]
  let on_process_event t f = t.process_hooks <- t.process_hooks @ [ f ]

  let set_faults _ _ =
    invalid_arg
      "Sock.set_faults: seeded fault schedules require the sim transport \
       (a kernel socket has no simulated physical layer)"

  let clear_faults _ = ()
  let faults _ = None
  let set_fault_hook t hook = t.fault <- Some hook
  let clear_fault_hook t = t.fault <- None

  let shutdown t =
    Mutex.lock t.clock;
    let was_closed = t.closed in
    t.closed <- true;
    Mutex.unlock t.clock;
    if not was_closed then begin
      Atomic.set t.stop true;
      wake t;
      Option.iter Thread.join t.loop;
      t.loop <- None;
      Mutex.lock t.clock;
      Array.iter
        (Array.iter (function
          | Some c when c.alive ->
              c.alive <- false;
              (try Unix.close c.fd with Unix.Unix_error _ -> ())
          | _ -> ()))
        t.conns;
      List.iter
        (fun p -> try Unix.close p.pfd with Unix.Unix_error _ -> ())
        t.pendings;
      t.pendings <- [];
      Array.iter
        (function
          | Some ep -> (
              (try Unix.close ep.lfd with Unix.Unix_error _ -> ());
              Mutex.lock ep.ilock;
              Condition.broadcast ep.icond;
              Mutex.unlock ep.ilock)
          | None -> ())
        t.eps;
      Mutex.unlock t.clock;
      (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
      try Unix.close t.wake_w with Unix.Unix_error _ -> ()
    end

  (* bytes-returning receive wrappers: the shared Transport defaults *)
  include Transport.Recv_defaults (struct
    type nonrec t = t

    let metrics = metrics
    let try_recv_slice = try_recv_slice
    let recv_blocking_slice = recv_blocking_slice
    let recv_deadline_slice = recv_deadline_slice
  end)
end

include M

let pack (t : M.t) : Transport.t = Transport.pack (module M) t

(* ------------------------------------------------------------------ *)
(* construction                                                        *)
(* ------------------------------------------------------------------ *)

let listen_on host port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
  Unix.listen fd 64;
  let actual_port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> assert false
  in
  (fd, actual_port)

let make ~n ~loopback ~hosted_ids ~listeners metrics =
  let eps = Array.make n None in
  List.iter2
    (fun id lfd ->
      eps.(id) <-
        Some
          {
            M.lfd;
            inbox = Queue.create ();
            ilock = Mutex.create ();
            icond = Condition.create ();
          })
    hosted_ids listeners;
  let wake_r, wake_w = Unix.pipe () in
  {
    M.n;
    loopback;
    eps;
    conns = Array.init n (fun _ -> Array.make n None);
    clock = Mutex.create ();
    metrics;
    pool = Msgbuf.Pool.create ~metrics;
    inflight = Atomic.make 0;
    batcher = None;
    fault = None;
    peer_hooks = [];
    process_hooks = [];
    health = Array.init n (fun _ -> Array.make n Transport.Alive);
    stop = Atomic.make false;
    loop = None;
    wake_r;
    wake_w;
    pendings = [];
    closed = false;
  }

(* higher id initiates: connect [owner] to [peer]'s address, retrying
   while the peer process boots, and announce ourselves with the
   4-byte hello *)
let connect_to t ~owner ~peer host port =
  let deadline = Unix.gettimeofday () +. mesh_timeout in
  let rec attempt () =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port)) with
    | () -> fd
    | exception Unix.Unix_error ((ECONNREFUSED | ENETUNREACH | ETIMEDOUT | EINTR), _, _)
      when Unix.gettimeofday () < deadline ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Unix.sleepf connect_retry_every;
        attempt ()
    | exception e ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        raise e
  in
  let fd = attempt () in
  (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
  let hello = Bytes.create 4 in
  M.put_len hello 0 owner;
  M.write_all fd hello 0 4;
  M.register_conn t
    {
      M.fd;
      owner;
      peer;
      wlock = Mutex.create ();
      alive = true;
      rbuf = Bytes.create 65536;
      rlen = 0;
      cinflight = Atomic.make 0;
    };
  M.wake t

let mesh_complete t hosted_ids =
  List.for_all
    (fun i ->
      Array.for_all (fun j -> j = i || t.M.conns.(i).(j) <> None)
        (Array.init t.M.n Fun.id))
    hosted_ids

let await_mesh t hosted_ids =
  let deadline = Unix.gettimeofday () +. mesh_timeout in
  let rec go () =
    Mutex.lock t.M.clock;
    let ok = mesh_complete t hosted_ids in
    Mutex.unlock t.M.clock;
    if ok then ()
    else if Unix.gettimeofday () >= deadline then begin
      M.shutdown t;
      failwith "Sock: mesh formation timed out (are all peers running?)"
    end
    else begin
      Unix.sleepf 0.02;
      go ()
    end
  in
  go ()

(* the event loop multiplexes with [Unix.select], which is bounded by
   FD_SETSIZE (1024 on Linux).  A loopback mesh watches the wake pipe,
   n listeners, n(n-1) conn fds (both ends of every link are hosted
   here) and up to n(n-1)/2 pending accepts during formation:
   1 + 26 + 26*25 + 26*25/2 = 1002 fits, n = 27 does not. *)
let max_loopback_machines = 26

let create_loopback ~n metrics =
  if n < 1 then invalid_arg "Sock.create_loopback: need at least one machine";
  if n > max_loopback_machines then
    invalid_arg
      (Printf.sprintf
         "Sock.create_loopback: a %d-machine mesh needs more descriptors \
          than select's FD_SETSIZE allows (max %d machines per process)"
         n max_loopback_machines);
  let hosted_ids = List.init n Fun.id in
  let listeners_ports =
    List.map (fun _ -> listen_on "127.0.0.1" 0) hosted_ids
  in
  let t =
    make ~n ~loopback:true ~hosted_ids
      ~listeners:(List.map fst listeners_ports)
      metrics
  in
  let ports = Array.of_list (List.map snd listeners_ports) in
  t.M.loop <- Some (Thread.create M.loop_body t);
  for i = 0 to n - 1 do
    for j = 0 to i - 1 do
      connect_to t ~owner:i ~peer:j "127.0.0.1" ports.(j)
    done
  done;
  await_mesh t hosted_ids;
  pack t

let create_process ?listen ~self ~addrs metrics =
  let n = Array.length addrs in
  if n < 1 then invalid_arg "Sock.create_process: need at least one machine";
  if self < 0 || self >= n then
    invalid_arg (Printf.sprintf "Sock.create_process: bad self id %d" self);
  let bind_host, bind_port =
    match listen with Some hp -> hp | None -> addrs.(self)
  in
  let lfd, _ = listen_on bind_host bind_port in
  let t = make ~n ~loopback:false ~hosted_ids:[ self ] ~listeners:[ lfd ] metrics in
  t.M.loop <- Some (Thread.create M.loop_body t);
  for j = 0 to self - 1 do
    let host, port = addrs.(j) in
    connect_to t ~owner:self ~peer:j host port
  done;
  await_mesh t [ self ];
  pack t
