(** The Reliable envelope layer as a stackable transport adapter.

    [wrap lower] returns a transport that speaks {!Envelope} frames
    over [lower]'s raw wire ({!Transport.S.send_raw}): per-link
    sequence numbers, acks, duplicate suppression, capped-exponential
    retransmission on the {!Transport.S.idle} tick, heartbeat-driven
    Alive/Suspect/Down and epoch fencing — the exact ARQ the [Cluster]
    backend runs in [Reliable] mode, lifted out so the [Sock] backend
    gets the same exactly-once guarantees over real TCP.

    The adapter keeps its own link state, batcher and failure
    detector; it delegates the physical layer (fault schedules, chaos
    injection, epochs, process events, shutdown) to [lower].  On a
    [Proc_crashed] event from [lower], the crashed machine's in-flight
    ARQ state is wiped before runtime-level hooks run, mirroring
    [Cluster.wipe_machine].

    Accounting matches [Cluster]'s [Reliable] mode: logical counters
    charge the payload once at the adapter; envelope and control
    frames ride [lower]'s [send_raw], which charges nothing. *)

type params = Cluster.params = {
  rto : int;  (** ticks before first retransmission *)
  backoff_cap : int;  (** rto doubles per attempt up to this *)
  max_attempts : int;  (** then the frame is abandoned ([timeouts]) *)
}

val default_params : params

(** [wrap ?params lower] stacks the reliability layer over [lower].
    [lower] must not also be used directly afterwards (frames sent
    around the adapter would reach peers unenveloped and be dropped by
    the decoder). *)
val wrap : ?params:params -> Transport.t -> Transport.t
