(** Link-layer framing for the reliable transport.

    Every physical frame on a reliable cluster is either [Data]
    (carries an opaque RPC message as payload) or [Ack] (acknowledges a
    [Data] frame's link sequence number; empty payload).  A checksum
    over the header fields and payload lets the receiver detect the
    simulator's bit flips and drop the frame, leaving recovery to the
    sender's retransmit timer. *)

type kind = Data | Ack

type t = {
  kind : kind;
  src : int;   (** sending machine — where [Ack]s go back to *)
  lseq : int;  (** per-(src,dest)-link sequence number *)
}

val encode : kind:kind -> src:int -> lseq:int -> payload:bytes -> bytes

(** [None] when the frame is garbled: bad magic, bad kind, truncated,
    or checksum mismatch. *)
val decode : bytes -> (t * bytes) option

(** Framing bytes added on top of a payload of the given size (for
    overhead accounting in tests). *)
val overhead : src:int -> lseq:int -> payload_len:int -> int
