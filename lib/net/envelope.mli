(** Link-layer framing for the reliable transport.

    Every physical frame on a reliable cluster is [Data] (carries an
    opaque RPC message as payload), [Ack] (acknowledges a [Data]
    frame's link sequence number; empty payload) or [Hb] (a failure
    detector heartbeat: [lseq = hb_ping] asks "are you alive",
    [lseq = hb_pong] answers; empty payload).  A checksum over the
    header fields and payload lets the receiver detect the simulator's
    bit flips and drop the frame, leaving recovery to the sender's
    retransmit timer.

    [epoch] is the sender's incarnation number: 0 until the crash
    simulator restarts the machine, then bumped on every restart.
    Receivers fence frames whose epoch is lower than the highest one
    seen from that peer, so packets from a dead incarnation (delayed in
    a reorder queue, or retransmitted by stale state) can never be
    mistaken for fresh traffic. *)

type kind = Data | Ack | Hb

type t = {
  kind : kind;
  src : int;   (** sending machine — where [Ack]s go back to *)
  epoch : int; (** sender's incarnation number (0 = never crashed) *)
  lseq : int;  (** per-(src,dest)-link sequence number *)
}

val encode :
  kind:kind -> src:int -> ?epoch:int -> lseq:int -> payload:bytes -> unit ->
  bytes

(** [None] when the frame is garbled: bad magic, bad kind, truncated,
    or checksum mismatch. *)
val decode : bytes -> (t * bytes) option

(** [lseq] values distinguishing the two [Hb] frame roles. *)
val hb_ping : int
val hb_pong : int

(** Framing bytes added on top of a payload of the given size (for
    overhead accounting in tests). *)
val overhead : src:int -> lseq:int -> payload_len:int -> int
