(** Link-layer framing for the reliable transport.

    Every physical frame on a reliable cluster is [Data] (carries an
    opaque RPC message as payload), [Ack] (acknowledges a [Data]
    frame's link sequence number; empty payload) or [Hb] (a failure
    detector heartbeat: [lseq = hb_ping] asks "are you alive",
    [lseq = hb_pong] answers; empty payload).  A checksum over the
    header fields and payload lets the receiver detect the simulator's
    bit flips and drop the frame, leaving recovery to the sender's
    retransmit timer.

    [epoch] is the sender's incarnation number: 0 until the crash
    simulator restarts the machine, then bumped on every restart.
    Receivers fence frames whose epoch is lower than the highest one
    seen from that peer, so packets from a dead incarnation (delayed in
    a reorder queue, or retransmitted by stale state) can never be
    mistaken for fresh traffic. *)

type kind = Data | Ack | Hb

type t = {
  kind : kind;
  src : int;   (** sending machine — where [Ack]s go back to *)
  epoch : int; (** sender's incarnation number (0 = never crashed) *)
  lseq : int;  (** per-(src,dest)-link sequence number *)
}

val encode :
  kind:kind -> src:int -> ?epoch:int -> lseq:int -> payload:bytes -> unit ->
  bytes

(** {1 Zero-copy framing}

    The copy-free path builds the envelope {e around} a payload that
    already sits in a writer: reserve {!gap} bytes, write the payload
    after them, then call {!encode_around} to back-fill the header
    (right-justified against the payload, minimal varints) and return
    the frame's start offset.  Frames built this way are byte-identical
    to {!encode}'s output. *)

(** Worst-case encoded header size; the gap to reserve before a
    payload destined for {!encode_around}. *)
val gap : int

(** [encode_around w ~kind ~src ?epoch ~lseq ~payload_off ()] frames
    [w.(payload_off..length w)] in place; at least {!gap} bytes before
    [payload_off] must have been reserved.  Returns the frame's start
    offset: the frame is [w.(start..length w)].
    @raise Invalid_argument when the gap is too small. *)
val encode_around :
  Rmi_wire.Msgbuf.writer ->
  kind:kind -> src:int -> ?epoch:int -> lseq:int -> payload_off:int -> unit ->
  int

(** [encode_into w ~payload ()] appends a whole envelope around a bytes
    payload (one blit); returns the frame's start offset as for
    {!encode_around}. *)
val encode_into :
  Rmi_wire.Msgbuf.writer ->
  kind:kind -> src:int -> ?epoch:int -> lseq:int -> payload:bytes -> unit ->
  int

(** [None] when the frame is garbled: bad magic, bad kind, truncated,
    or checksum mismatch. *)
val decode : bytes -> (t * bytes) option

(** [decode_slice frame ~off ~len] is {!decode} over a slice of
    [frame], returning the payload as an [(off, len)] slice instead of
    a copy. *)
val decode_slice : bytes -> off:int -> len:int -> (t * (int * int)) option

(** [lseq] values distinguishing the two [Hb] frame roles. *)
val hb_ping : int
val hb_pong : int

(** Framing bytes added on top of a payload of the given size (for
    overhead accounting in tests). *)
val overhead : src:int -> lseq:int -> payload_len:int -> int
