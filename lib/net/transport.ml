type idle_outcome =
  | Retransmitted of int
  | Waiting
  | Gave_up of int list
  | Dead
  | Raw_transport

type peer_health = Alive | Suspect | Down

type hb_params = { ping_every : int; suspect_after : int; down_after : int }

let default_hb = { ping_every = 8; suspect_after = 16; down_after = 48 }

type peer_event = Peer_suspected | Peer_confirmed_down | Peer_recovered

type process_event =
  | Proc_crashed of { machine : int; durability : Fault_sim.durability }
  | Proc_restarted of {
      machine : int;
      epoch : int;
      durability : Fault_sim.durability;
    }

module type RECV_SLICE = sig
  type t

  val metrics : t -> Rmi_stats.Metrics.t
  val try_recv_slice : t -> self:int -> (bytes * int * int) option
  val recv_blocking_slice : t -> self:int -> bytes * int * int

  val recv_deadline_slice :
    t -> self:int -> seconds:float -> (bytes * int * int) option
end

(* the one materialize policy: whole frames pass through unchanged (the
   legacy framing mode keeps its exact pre-slice behavior); a proper
   sub-slice is snapshotted and the copy charged to [bytes_copied] *)
module Recv_defaults (B : RECV_SLICE) = struct
  let materialize t (buf, off, len) =
    if off = 0 && len = Bytes.length buf then buf
    else begin
      Rmi_stats.Metrics.add_bytes_copied (B.metrics t) len;
      Bytes.sub buf off len
    end

  let try_recv t ~self = Option.map (materialize t) (B.try_recv_slice t ~self)
  let recv_blocking t ~self = materialize t (B.recv_blocking_slice t ~self)

  let recv_deadline t ~self ~seconds =
    Option.map (materialize t) (B.recv_deadline_slice t ~self ~seconds)
end

module type S = sig
  type t

  val name : string
  val size : t -> int
  val metrics : t -> Rmi_stats.Metrics.t
  val zero_copy : t -> bool
  val pool : t -> Rmi_wire.Msgbuf.Pool.buffers
  val is_reliable : t -> bool
  val is_hosted : t -> int -> bool
  val send : t -> src:int -> dest:int -> bytes -> unit

  val send_raw : t -> src:int -> dest:int -> bytes -> unit

  val send_writer :
    t -> src:int -> dest:int -> Rmi_wire.Msgbuf.writer -> payload_off:int ->
    unit

  val enable_batching : ?max_bytes:int -> t -> unit
  val disable_batching : t -> unit
  val batching_enabled : t -> bool
  val send_buffered : t -> src:int -> dest:int -> bytes -> (int * int * int) list
  val flush : t -> src:int -> (int * int * int) list
  val try_recv_slice : t -> self:int -> (bytes * int * int) option
  val recv_blocking_slice : t -> self:int -> bytes * int * int

  val recv_deadline_slice :
    t -> self:int -> seconds:float -> (bytes * int * int) option

  val try_recv : t -> self:int -> bytes option
  val recv_blocking : t -> self:int -> bytes
  val recv_deadline : t -> self:int -> seconds:float -> bytes option
  val idle : t -> self:int -> idle_outcome
  val pending_anywhere : t -> bool
  val peer_health : t -> self:int -> peer:int -> peer_health
  val set_detector : t -> hb_params -> unit
  val self_epoch : t -> int -> int
  val on_peer_event : t -> (self:int -> peer:int -> peer_event -> unit) -> unit
  val on_process_event : t -> (process_event -> unit) -> unit
  val set_faults : t -> Fault_sim.t -> unit
  val clear_faults : t -> unit
  val faults : t -> Fault_sim.t option

  val set_fault_hook :
    t -> (src:int -> dest:int -> bytes -> bytes list) -> unit

  val clear_fault_hook : t -> unit
  val shutdown : t -> unit
end

type t = Packed : (module S with type t = 'a) * 'a -> t

let pack (type a) (m : (module S with type t = a)) (h : a) : t = Packed (m, h)
let name (Packed ((module M), _)) = M.name
let size (Packed ((module M), h)) = M.size h
let metrics (Packed ((module M), h)) = M.metrics h
let zero_copy (Packed ((module M), h)) = M.zero_copy h
let pool (Packed ((module M), h)) = M.pool h
let is_reliable (Packed ((module M), h)) = M.is_reliable h
let is_hosted (Packed ((module M), h)) m = M.is_hosted h m
let send (Packed ((module M), h)) ~src ~dest msg = M.send h ~src ~dest msg

let send_raw (Packed ((module M), h)) ~src ~dest frame =
  M.send_raw h ~src ~dest frame

(* the gap contract lives here, at the signature level: every backend
   frames in place by back-filling headers/length prefixes before
   [payload_off], so an unreserved gap is a caller bug regardless of
   backend *)
let send_writer (Packed ((module M), h)) ~src ~dest w ~payload_off =
  if payload_off < Envelope.gap || payload_off > Rmi_wire.Msgbuf.length w then
    invalid_arg
      (Printf.sprintf
         "Transport.send_writer: payload_off %d violates the Envelope.gap \
          contract (need %d <= payload_off <= %d)"
         payload_off Envelope.gap
         (Rmi_wire.Msgbuf.length w));
  M.send_writer h ~src ~dest w ~payload_off

let enable_batching ?max_bytes (Packed ((module M), h)) =
  M.enable_batching ?max_bytes h

let disable_batching (Packed ((module M), h)) = M.disable_batching h
let batching_enabled (Packed ((module M), h)) = M.batching_enabled h

let send_buffered (Packed ((module M), h)) ~src ~dest msg =
  M.send_buffered h ~src ~dest msg

let flush (Packed ((module M), h)) ~src = M.flush h ~src
let try_recv_slice (Packed ((module M), h)) ~self = M.try_recv_slice h ~self

let recv_blocking_slice (Packed ((module M), h)) ~self =
  M.recv_blocking_slice h ~self

let recv_deadline_slice (Packed ((module M), h)) ~self ~seconds =
  M.recv_deadline_slice h ~self ~seconds

let try_recv (Packed ((module M), h)) ~self = M.try_recv h ~self
let recv_blocking (Packed ((module M), h)) ~self = M.recv_blocking h ~self

let recv_deadline (Packed ((module M), h)) ~self ~seconds =
  M.recv_deadline h ~self ~seconds

let idle (Packed ((module M), h)) ~self = M.idle h ~self
let pending_anywhere (Packed ((module M), h)) = M.pending_anywhere h

let peer_health (Packed ((module M), h)) ~self ~peer =
  M.peer_health h ~self ~peer

let set_detector (Packed ((module M), h)) hb = M.set_detector h hb
let self_epoch (Packed ((module M), h)) m = M.self_epoch h m
let on_peer_event (Packed ((module M), h)) f = M.on_peer_event h f
let on_process_event (Packed ((module M), h)) f = M.on_process_event h f
let set_faults (Packed ((module M), h)) sim = M.set_faults h sim
let clear_faults (Packed ((module M), h)) = M.clear_faults h
let faults (Packed ((module M), h)) = M.faults h
let set_fault_hook (Packed ((module M), h)) hook = M.set_fault_hook h hook
let clear_fault_hook (Packed ((module M), h)) = M.clear_fault_hook h
let shutdown (Packed ((module M), h)) = M.shutdown h
