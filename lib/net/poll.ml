(* poll(2) for the Sock event loop — see poll_stubs.c.  Unlike
   Unix.select this scales past FD_SETSIZE, so the loopback mesh size
   is bounded by the RLIMIT_NOFILE budget instead of a hard 26. *)

external poll_readable : Unix.file_descr array -> int -> int list
  = "rmi_poll_readable"

external nofile_limit : unit -> int = "rmi_nofile_limit"

(* [readable fds ~timeout] waits up to [timeout] seconds and returns
   the indices into [fds] that are readable (or hung up / errored —
   a reader must reap those too), ascending.  [] on timeout or
   interrupt. *)
let readable fds ~timeout =
  let ms =
    if timeout <= 0.0 then 0
    else max 1 (int_of_float (ceil (timeout *. 1000.0)))
  in
  poll_readable fds ms
