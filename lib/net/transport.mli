(** The transport signature: everything the runtime layer needs from an
    interconnect, carved out of the [Cluster] monolith so the simulated
    fabric and a real socket fabric are interchangeable backends.

    A backend implements {!S} — creation is backend-specific (the
    simulated {!Cluster} takes a link discipline and a machine count, a
    {!Sock} fabric takes addresses), so [S] covers an already-created
    instance: the send family, the slice-receive family, batching, the
    idle/retransmit clock, fault hooks and peer health.  {!pack} erases
    the backend into the first-class {!t} that {!Rmi_runtime.Fabric},
    [Node] and [Dispatch_pool] are written against.

    Backends implement only the {e slice} receive family
    ([try_recv_slice] / [recv_blocking_slice] / [recv_deadline_slice]);
    the bytes-returning wrappers are derived once by {!Recv_defaults}
    with the shared materialize-and-charge semantics, so the two
    families cannot drift per backend. *)

(** What {!S.idle} did; see {!S.idle}. *)
type idle_outcome =
  | Retransmitted of int  (** this many frames were retransmitted *)
  | Waiting  (** unacked frames exist but none was due yet *)
  | Gave_up of int list
      (** these destinations exhausted the retransmit budget; the
          frames were abandoned and counted as [timeouts] *)
  | Dead  (** nothing in flight anywhere — waiting cannot succeed *)
  | Raw_transport
      (** the backend has no retransmit machinery (the raw simulated
          path, or a TCP backend whose kernel already guarantees
          delivery) *)

(** What a machine believes about a peer. *)
type peer_health = Alive | Suspect | Down

type hb_params = {
  ping_every : int;     (** ticks between pings to a quiet peer *)
  suspect_after : int;  (** quiet ticks before Alive -> Suspect *)
  down_after : int;     (** quiet ticks before Suspect -> Down *)
}

val default_hb : hb_params

type peer_event = Peer_suspected | Peer_confirmed_down | Peer_recovered

(** Crash-simulator events surfaced to the runtime after the transport
    has wiped the machine's in-flight state. *)
type process_event =
  | Proc_crashed of { machine : int; durability : Fault_sim.durability }
  | Proc_restarted of {
      machine : int;
      epoch : int;
      durability : Fault_sim.durability;
    }

(** The slice-receive core a backend must provide; {!Recv_defaults}
    derives the bytes-returning wrappers from it. *)
module type RECV_SLICE = sig
  type t

  val metrics : t -> Rmi_stats.Metrics.t
  val try_recv_slice : t -> self:int -> (bytes * int * int) option
  val recv_blocking_slice : t -> self:int -> bytes * int * int

  val recv_deadline_slice :
    t -> self:int -> seconds:float -> (bytes * int * int) option
end

(** Derives [try_recv]/[recv_blocking]/[recv_deadline] from the slice
    family: whole frames pass through unchanged; a proper sub-slice is
    snapshotted and the copy charged to the [bytes_copied] metric —
    the one materialize policy every backend shares. *)
module Recv_defaults (B : RECV_SLICE) : sig
  val try_recv : B.t -> self:int -> bytes option
  val recv_blocking : B.t -> self:int -> bytes
  val recv_deadline : B.t -> self:int -> seconds:float -> bytes option
end

(** The full transport signature. *)
module type S = sig
  type t

  (** Short backend identifier ("sim", "sock") for reports. *)
  val name : string

  val size : t -> int
  val metrics : t -> Rmi_stats.Metrics.t

  (** Whether the backend runs the zero-copy wire path (gap-reserved
      pooled writers framed in place). *)
  val zero_copy : t -> bool

  (** The shared writer/reader free-list pool. *)
  val pool : t -> Rmi_wire.Msgbuf.Pool.buffers

  (** Whether {!idle} drives an ARQ whose outcomes the caller must
      interpret (retransmissions, give-ups). *)
  val is_reliable : t -> bool

  (** Whether machine [m]'s endpoint lives in this process.  Loopback
      and simulated backends host every machine; a process-mode backend
      hosts only its own id.  Acting as a non-hosted machine — sending
      with it as [src], receiving for it, driving its timers — is not
      meaningful, and a reliability layer stacked above must restrict
      its per-machine clock work to hosted ids. *)
  val is_hosted : t -> int -> bool

  (** [send t ~src ~dest msg]; self-sends are allowed (loopback).
      Charges one [msgs_sent] and the payload bytes to the metrics. *)
  val send : t -> src:int -> dest:int -> bytes -> unit

  (** Physical transmit: [frame] rides the same wire path as a [send]
      (fault hook, fault schedule) but is never enveloped and never
      charged to the logical counters — the escape hatch a reliability
      layer stacked {e above} the backend uses for its own control
      traffic (acks, retransmissions, heartbeats). *)
  val send_raw : t -> src:int -> dest:int -> bytes -> unit

  (** [send_writer t ~src ~dest w ~payload_off] ships the message
      sitting in [w.(payload_off..length w)] without materializing it
      first.  Contract (checked by {!Transport.send_writer}): at least
      {!Envelope.gap} bytes must have been reserved before
      [payload_off] — backends frame in place by back-filling headers
      and length prefixes into that gap.  [w]'s storage is not
      referenced after the call returns. *)
  val send_writer :
    t -> src:int -> dest:int -> Rmi_wire.Msgbuf.writer -> payload_off:int ->
    unit

  (** {2 Request batching} — semantics as documented in {!Cluster}:
      one flushed group is one physical frame, one [msgs_sent], the
      sum of its logical payload bytes. *)

  val enable_batching : ?max_bytes:int -> t -> unit
  val disable_batching : t -> unit
  val batching_enabled : t -> bool
  val send_buffered : t -> src:int -> dest:int -> bytes -> (int * int * int) list
  val flush : t -> src:int -> (int * int * int) list

  (** {2 Receive} — messages come back as [(frame, off, len)] slices
      sharing the received frame bytes. *)

  val try_recv_slice : t -> self:int -> (bytes * int * int) option
  val recv_blocking_slice : t -> self:int -> bytes * int * int

  val recv_deadline_slice :
    t -> self:int -> seconds:float -> (bytes * int * int) option

  (** Materializing wrappers (derived via {!Recv_defaults}). *)

  val try_recv : t -> self:int -> bytes option
  val recv_blocking : t -> self:int -> bytes
  val recv_deadline : t -> self:int -> seconds:float -> bytes option

  (** Advance the retransmit/failure-detector clock by one tick. *)
  val idle : t -> self:int -> idle_outcome

  (** Any message pending anywhere this backend can see?  (deadlock
      diagnostics; a multi-process backend answers conservatively) *)
  val pending_anywhere : t -> bool

  (** {2 Peer health and fault machinery} *)

  val peer_health : t -> self:int -> peer:int -> peer_health
  val set_detector : t -> hb_params -> unit

  (** The incarnation number machine [m] currently stamps on frames. *)
  val self_epoch : t -> int -> int

  val on_peer_event : t -> (self:int -> peer:int -> peer_event -> unit) -> unit
  val on_process_event : t -> (process_event -> unit) -> unit

  (** Install a seeded fault schedule.  Backends without a simulated
      physical layer raise [Invalid_argument]. *)
  val set_faults : t -> Fault_sim.t -> unit

  val clear_faults : t -> unit
  val faults : t -> Fault_sim.t option

  (** The hook sees every physical frame about to leave and returns the
      frames to actually ship: pass through ([[frame]]), corrupt
      ([[other]]), drop ([[]]), duplicate ([[frame; frame]]) or release
      previously retained frames.  Metrics still count the original
      send. *)
  val set_fault_hook :
    t -> (src:int -> dest:int -> bytes -> bytes list) -> unit

  val clear_fault_hook : t -> unit

  (** Release OS resources (sockets, event-loop threads).  A no-op for
      in-process backends.  Idempotent; the instance must not be used
      afterwards. *)
  val shutdown : t -> unit
end

(** A transport with its backend erased. *)
type t = Packed : (module S with type t = 'a) * 'a -> t

val pack : (module S with type t = 'a) -> 'a -> t

(** {1 Forwarders} — one per {!S} member, so runtime code reads
    [Transport.send net ~src ~dest msg] regardless of backend. *)

val name : t -> string
val size : t -> int
val metrics : t -> Rmi_stats.Metrics.t
val zero_copy : t -> bool
val pool : t -> Rmi_wire.Msgbuf.Pool.buffers
val is_reliable : t -> bool
val is_hosted : t -> int -> bool
val send : t -> src:int -> dest:int -> bytes -> unit
val send_raw : t -> src:int -> dest:int -> bytes -> unit

(** Forwards to the backend after asserting the gap contract: raises
    [Invalid_argument] unless [Envelope.gap <= payload_off <= length w]
    — the reservation requirement enforced at the signature level
    rather than per-backend prose. *)
val send_writer :
  t -> src:int -> dest:int -> Rmi_wire.Msgbuf.writer -> payload_off:int -> unit

val enable_batching : ?max_bytes:int -> t -> unit
val disable_batching : t -> unit
val batching_enabled : t -> bool
val send_buffered : t -> src:int -> dest:int -> bytes -> (int * int * int) list
val flush : t -> src:int -> (int * int * int) list
val try_recv_slice : t -> self:int -> (bytes * int * int) option
val recv_blocking_slice : t -> self:int -> bytes * int * int

val recv_deadline_slice :
  t -> self:int -> seconds:float -> (bytes * int * int) option

val try_recv : t -> self:int -> bytes option
val recv_blocking : t -> self:int -> bytes
val recv_deadline : t -> self:int -> seconds:float -> bytes option
val idle : t -> self:int -> idle_outcome
val pending_anywhere : t -> bool
val peer_health : t -> self:int -> peer:int -> peer_health
val set_detector : t -> hb_params -> unit
val self_epoch : t -> int -> int
val on_peer_event : t -> (self:int -> peer:int -> peer_event -> unit) -> unit
val on_process_event : t -> (process_event -> unit) -> unit
val set_faults : t -> Fault_sim.t -> unit
val clear_faults : t -> unit
val faults : t -> Fault_sim.t option

val set_fault_hook :
  t -> (src:int -> dest:int -> bytes -> bytes list) -> unit

val clear_fault_hook : t -> unit
val shutdown : t -> unit
