(* Connection-level chaos over a real socket transport.

   The frame-level engine is Fault_sim, reused whole: every frame a
   socket backend is about to ship passes through [on_send], which
   delegates to the embedded simulator (drop / duplicate / hold /
   corrupt / crash plan), so the frame schedule for a given seed is
   byte-identical to what the Sim backend would produce — substitution
   by construction, not by re-implementation.

   On top of that frame discipline sits a connection plan: scheduled
   actions on the same global frame clock that have no Sim analogue
   because they are properties of a real TCP link, not of a frame —
   severing a connection mid-stream (the backend kills the fd; its
   kernel buffers die with it; reconnection with backoff re-forms the
   link) and stalling an endpoint (its traffic parks here, invisible to
   the wire, until the stall expires — a SIGSTOP'd or GC-frozen peer).

   Everything is clock-driven: actions fire when the frame clock
   reaches their [at], stalls expire when the clock reaches their
   deadline, and the decision log extends Fault_sim's digest with one
   line per connection event, so two runs from the same seed with the
   same frame sequence produce equal digests. *)

type conn_action =
  | Sever of { a : int; b : int }
  | Stall of { machine : int; frames : int }

type conn_spec = { at : int; action : conn_action }

type t = {
  fs : Fault_sim.t;
  mutable plan : conn_spec list;          (* sorted by [at] *)
  mutable actions : conn_action list;     (* fired; newest first *)
  mutable stalls : (int * int) list;      (* machine, clock deadline *)
  mutable parked : (int * int * bytes) list; (* src, dest, frame; oldest first *)
  mutable released : (int * int * bytes) list; (* ready to ship; oldest first *)
  clog : Buffer.t;
  lock : Mutex.t;
}

let logf t fmt = Printf.ksprintf (fun s -> Buffer.add_string t.clog s) fmt

let validate_plan ~n plan =
  List.iter
    (fun { at; action } ->
      if at < 1 then invalid_arg "Chaos.create: plan entry needs at >= 1";
      match action with
      | Sever { a; b } ->
          if a < 0 || a >= n || b < 0 || b >= n || a = b then
            invalid_arg "Chaos.create: sever needs two distinct machines"
      | Stall { machine; frames } ->
          if machine < 0 || machine >= n then
            invalid_arg "Chaos.create: stall victim out of range";
          if frames < 1 then invalid_arg "Chaos.create: stall frames >= 1")
    plan

let of_fault_sim ?(plan = []) ~n fs =
  validate_plan ~n plan;
  {
    fs;
    plan = List.sort (fun a b -> compare a.at b.at) plan;
    actions = [];
    stalls = [];
    parked = [];
    released = [];
    clog = Buffer.create 64;
    lock = Mutex.create ();
  }

let create ~seed ~n ?(plan = []) profile =
  of_fault_sim ~plan ~n (Fault_sim.create ~seed ~n profile)

let fault_sim t = t.fs

(* ------------------------------------------------------------------ *)
(* seeded connection plans                                             *)
(* ------------------------------------------------------------------ *)

(* a private splitmix64 stream, disjoint from every Fault_sim link
   stream (indices 0..n*n-1) and from the crash-plan stream (n*n+7) *)
let mix_init seed idx =
  Int64.add
    (Int64.mul (Int64.of_int (idx + 1)) 0x9E3779B97F4A7C15L)
    (Int64.mul (Int64.of_int seed) 0xBF58476D1CE4E5B9L)

let next_u64 state =
  state := Int64.add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let nat state = Int64.to_int (Int64.shift_right_logical (next_u64 state) 2)

let seeded_plan ~seed ~n ?(severs = 2) ?(stalls = 1) ?(max_gap = 30)
    ?(max_stall = 20) () =
  if n < 2 then invalid_arg "Chaos.seeded_plan: need >= 2 machines";
  if severs < 0 || stalls < 0 then
    invalid_arg "Chaos.seeded_plan: counts >= 0";
  let rng = ref (mix_init seed ((n * n) + 13)) in
  let rec gen i prev acc =
    if i >= severs + stalls then List.rev acc
    else
      let at = prev + 1 + (nat rng mod max_gap) in
      let action =
        if i < severs then begin
          let a = nat rng mod n in
          let b = (a + 1 + (nat rng mod (n - 1))) mod n in
          Sever { a; b }
        end
        else
          (* stall victims avoid machine 0 (the harness driver) like
             the crash plan does *)
          Stall
            {
              machine = 1 + (nat rng mod (n - 1));
              frames = 1 + (nat rng mod max_stall);
            }
      in
      gen (i + 1) at ({ at; action } :: acc)
  in
  gen 0 0 []

(* ------------------------------------------------------------------ *)
(* the send path                                                       *)
(* ------------------------------------------------------------------ *)

(* with [t.lock] held: expire stalls whose deadline the clock reached,
   moving their parked frames to the released queue *)
let expire_stalls t ~clock =
  let over, live = List.partition (fun (_, until) -> until <= clock) t.stalls in
  t.stalls <- live;
  List.iter
    (fun (m, _) ->
      let mine, rest =
        List.partition (fun (src, dest, _) -> src = m || dest = m) t.parked
      in
      t.parked <- rest;
      t.released <- t.released @ mine;
      logf t "conn unstall m%d @%d (%d parked)\n" m clock (List.length mine))
    over

(* with [t.lock] held: fire every plan entry the clock has reached *)
let fire_plan t ~clock =
  let due, rest = List.partition (fun { at; _ } -> at <= clock) t.plan in
  t.plan <- rest;
  List.iter
    (fun { action; _ } ->
      (match action with
      | Sever { a; b } -> logf t "conn sever %d-%d @%d\n" a b clock
      | Stall { machine; frames } ->
          logf t "conn stall m%d for %d @%d\n" machine frames clock;
          t.stalls <- (machine, clock + frames) :: t.stalls);
      match action with
      | Sever _ -> t.actions <- action :: t.actions
      | Stall _ -> ())
    due

let stalled t m = List.mem_assoc m t.stalls

let on_send t ~src ~dest frame =
  (* the embedded simulator advances the clock and samples the frame's
     faults exactly as the Sim backend would — chaos consumes no
     randomness of its own, so the fault schedule is seed-identical *)
  let survivors = Fault_sim.on_send t.fs ~src ~dest frame in
  Mutex.lock t.lock;
  let clock = Fault_sim.frame_clock t.fs in
  expire_stalls t ~clock;
  fire_plan t ~clock;
  let out =
    if stalled t src || stalled t dest then begin
      List.iter
        (fun f ->
          logf t "conn park %d->%d @%d\n" src dest clock;
          t.parked <- t.parked @ [ (src, dest, f) ])
        survivors;
      []
    end
    else survivors
  in
  Mutex.unlock t.lock;
  out

let take_actions t =
  Mutex.lock t.lock;
  let acts = List.rev t.actions in
  t.actions <- [];
  Mutex.unlock t.lock;
  acts

let take_released t =
  Mutex.lock t.lock;
  let frames = t.released in
  t.released <- [];
  Mutex.unlock t.lock;
  frames

let parked_frames t =
  Mutex.lock t.lock;
  let n = List.length t.parked + List.length t.released in
  Mutex.unlock t.lock;
  n

(* ------------------------------------------------------------------ *)
(* delegation to the embedded simulator                                *)
(* ------------------------------------------------------------------ *)

let take_transitions t = Fault_sim.take_transitions t.fs
let is_down t m = Fault_sim.is_down t.fs m
let epoch_of t m = Fault_sim.epoch_of t.fs m
let frame_clock t = Fault_sim.frame_clock t.fs
let held_frames t = Fault_sim.held_frames t.fs
let seed t = Fault_sim.seed t.fs

let digest t =
  Mutex.lock t.lock;
  let conn = Buffer.contents t.clog in
  Mutex.unlock t.lock;
  Fault_sim.digest t.fs ^ conn

(* ------------------------------------------------------------------ *)
(* substitution parity                                                 *)
(* ------------------------------------------------------------------ *)

(* drive a chaos engine and a bare Fault_sim from the same seed through
   the same synthetic frame sequence and render both decision logs: the
   digests must be equal (chaos reuses the simulator's streams and adds
   no randomness) and, being pure functions of (seed, sequence), each
   is byte-identical across runs.  This is the replayable half of the
   chaos gate — run-level digests over real sockets depend on
   retransmit timing, so the determinism evidence lives here. *)
let sim_parity ~seed ~n ?(profile = Fault_sim.default_lossy) ~frames () =
  if n < 2 then invalid_arg "Chaos.sim_parity: need >= 2 machines";
  let chaos = create ~seed ~n profile in
  let bare = Fault_sim.create ~seed ~n profile in
  for i = 0 to frames - 1 do
    let src = i mod n in
    let dest = (src + 1 + (i / n mod (n - 1))) mod n in
    let frame = Bytes.of_string (Printf.sprintf "parity-%06d" i) in
    ignore (on_send chaos ~src ~dest frame : bytes list);
    ignore (Fault_sim.on_send bare ~src ~dest frame : bytes list)
  done;
  (digest chaos, Fault_sim.digest bare)
