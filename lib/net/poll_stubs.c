/* poll(2) bindings for the Sock event loop.

   Unix.select caps the mesh at FD_SETSIZE descriptors (1024 on Linux),
   which PR 7 worked around with a hard 26-machine loopback ceiling.
   poll has no such limit; the ceiling becomes the process RLIMIT_NOFILE
   budget, exposed here too. */

#include <poll.h>
#include <errno.h>
#include <stdlib.h>
#include <sys/resource.h>

#include <caml/mlvalues.h>
#include <caml/memory.h>
#include <caml/alloc.h>
#include <caml/threads.h>

/* rmi_poll_readable : Unix.file_descr array -> int -> int list
   Waits up to [timeout_ms] for readability (or error/hangup, which a
   reader must also see to reap the dead connection) on any of [fds];
   returns the indices of the ready descriptors, ascending.  Interrupts
   and transient errors return the empty list — the caller's loop just
   comes around again. */
CAMLprim value rmi_poll_readable(value v_fds, value v_timeout_ms)
{
    CAMLparam2(v_fds, v_timeout_ms);
    CAMLlocal2(v_list, v_cell);

    int n = Wosize_val(v_fds);
    int timeout = Int_val(v_timeout_ms);
    struct pollfd *pfds = NULL;
    int ready = 0;

    if (n > 0) {
        pfds = malloc(n * sizeof(struct pollfd));
        if (pfds == NULL) CAMLreturn(Val_emptylist);
        for (int i = 0; i < n; i++) {
            pfds[i].fd = Int_val(Field(v_fds, i));
            pfds[i].events = POLLIN;
            pfds[i].revents = 0;
        }
        caml_release_runtime_system();
        ready = poll(pfds, n, timeout);
        caml_acquire_runtime_system();
    }

    v_list = Val_emptylist;
    if (ready > 0) {
        /* build the index list back-to-front so it comes out ascending */
        for (int i = n - 1; i >= 0; i--) {
            if (pfds[i].revents & (POLLIN | POLLHUP | POLLERR | POLLNVAL)) {
                v_cell = caml_alloc_small(2, Tag_cons);
                Field(v_cell, 0) = Val_int(i);
                Field(v_cell, 1) = v_list;
                v_list = v_cell;
            }
        }
    }
    free(pfds);
    CAMLreturn(v_list);
}

/* rmi_nofile_limit : unit -> int
   The soft RLIMIT_NOFILE ceiling, clamped into a sane int range;
   falls back to 1024 (the old FD_SETSIZE world) if getrlimit fails. */
CAMLprim value rmi_nofile_limit(value v_unit)
{
    CAMLparam1(v_unit);
    struct rlimit rl;
    long lim = 1024;
    if (getrlimit(RLIMIT_NOFILE, &rl) == 0 && rl.rlim_cur != RLIM_INFINITY) {
        lim = (long)rl.rlim_cur;
        if (lim > 1 << 20) lim = 1 << 20;
        if (lim < 64) lim = 64;
    } else if (getrlimit(RLIMIT_NOFILE, &rl) == 0) {
        lim = 1 << 20;
    }
    CAMLreturn(Val_long(lim));
}
