(** The [Sock] backend: a real Unix/TCP interconnect implementing
    {!Transport.S}.

    [n] machine endpoints in a full TCP mesh (one connection per
    unordered pair; the higher id initiates, a 4-byte hello names the
    connector).  A background event-loop thread multiplexes every
    hosted socket with [poll] (select's FD_SETSIZE would cap the mesh;
    see {!max_loopback_machines}): it accepts peers, reassembles the
    length-prefixed byte stream into frames, splits batch envelopes
    into slices and queues them on the owning endpoint's inbox, where
    the slice-receive family picks them up.

    Framing is a 4-byte big-endian length prefix per frame.  The
    zero-copy send path ships a pooled gapped writer without
    materializing the frame: the prefix is back-filled into the
    reserved {!Envelope.gap} immediately before the payload, and the
    prefix+payload leave in one contiguous [write].

    TCP already delivers reliably and in order {e while a connection
    lives}, so the backend is raw-like: [is_reliable] is [false] and
    {!Transport.S.idle} returns [Raw_transport].  Exactly-once across
    link and process failures is the {!Reliable} adapter's job,
    stacked above this backend.

    {b Link death and reconnection.}  A connection that EOFs, errors,
    or garbles its framing is killed: its unread in-flight share is
    reclaimed, the peer is marked [Down] and [Peer_confirmed_down]
    fires.  The side that originally initiated (higher id) then redials
    with capped exponential backoff and deterministic jitter until the
    link re-forms (or 30 s pass); the accepting side's conn re-forms
    when the fresh connect is promoted.  A fresh conn starts with an
    empty reassembly buffer — a frame half-written when the old
    connection died is discarded at the length-prefix boundary — and
    bumps the link generation ({!link_generation}).  A duplicate
    connect from an already-connected peer id replaces the older conn
    (the newest connection is the one the reconnecting initiator
    writes to).

    {b Chaos.}  {!Transport.S.set_faults} wraps the schedule in a
    {!Chaos} injector (empty connection plan); creation takes [?chaos]
    for a full injector with sever/stall actions.  Every outbound frame
    then passes through the injector — drops, duplicates, holds,
    corruption and kill/restart replay the Sim backend's seeded
    semantics over real sockets — and [self_epoch]/[faults] answer from
    the embedded simulator.

    Two modes:
    - {e loopback}: all [n] endpoints hosted in this process over
      127.0.0.1 ephemeral ports — real syscalls, one address space
      (the [transport_compare] gate and the conformance tests).
    - {e process}: only [self] is hosted; everything else is a peer
      address ([--listen]/[--peers] in [rmi-experiments proc]). *)

type t

(** Erase into a first-class transport. *)
val pack : t -> Transport.t

(** The loopback machine ceiling for this process: the largest [n]
    whose full mesh (wake pipe, [n] listeners, [n(n-1)] conn fds,
    formation-transient pending accepts) fits the RLIMIT_NOFILE budget
    with headroom, capped at 512. *)
val max_loopback_machines : unit -> int

(** [create_loopback ~n metrics] hosts all [n] endpoints on
    127.0.0.1 ephemeral ports and blocks until the mesh is complete.
    Raises [Invalid_argument] when [n] exceeds
    {!max_loopback_machines}. *)
val create_loopback :
  ?chaos:Chaos.t -> n:int -> Rmi_stats.Metrics.t -> Transport.t

(** {!create_loopback} returning the unpacked handle (tests use the
    diagnostic surface below; [pack] it for the runtime). *)
val create_loopback_t : ?chaos:Chaos.t -> n:int -> Rmi_stats.Metrics.t -> t

(** [create_process ~self ~addrs metrics] hosts endpoint [self] of
    [Array.length addrs] machines; [addrs.(i)] is machine [i]'s
    [(host, port)].  Binds [addrs.(self)] (or [?listen], e.g. to bind
    0.0.0.0 behind NAT), connects to every lower id (retrying while
    peers boot), accepts every higher id, and blocks until the mesh is
    complete (30 s timeout).

    [?epoch] (default 0) is the incarnation number this process stamps
    on its frames (visible through [self_epoch], used by the
    {!Reliable} adapter's envelopes).  Restart a killed server with a
    higher epoch so surviving peers fence its previous life's frames
    and reset their per-link duplicate-suppression state. *)
val create_process :
  ?chaos:Chaos.t ->
  ?epoch:int ->
  ?listen:string * int ->
  self:int ->
  addrs:(string * int) array ->
  Rmi_stats.Metrics.t ->
  Transport.t

(** {1 Diagnostic surface (unpacked handle)} *)

(** Install / read the chaos injector. *)
val set_chaos : t -> Chaos.t -> unit

val chaos : t -> Chaos.t option

(** How many times the (owner, peer) conn has been (re)registered:
    1 after mesh formation, +1 per reconnect or duplicate-connect
    replacement. *)
val link_generation : t -> owner:int -> peer:int -> int

(** Kill the TCP connection between [a] and [b] mid-stream (both
    hosted conn records if loopback).  Reconnection then re-forms it —
    the test hook behind the chaos [Sever] action. *)
val sever : t -> a:int -> b:int -> unit

(** The bound TCP port of a hosted endpoint's listener (tests dial it
    raw to probe the handshake paths). *)
val listen_port : t -> int -> int
