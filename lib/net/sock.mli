(** The [Sock] backend: a real Unix/TCP interconnect implementing
    {!Transport.S}.

    [n] machine endpoints in a full TCP mesh (one connection per
    unordered pair; the higher id initiates, a 4-byte hello names the
    connector).  A background event-loop thread multiplexes every
    hosted socket with [select]: it accepts peers, reassembles the
    length-prefixed byte stream into frames, splits batch envelopes
    into slices and queues them on the owning endpoint's inbox, where
    the slice-receive family picks them up.

    Framing is a 4-byte big-endian length prefix per frame.  The
    zero-copy send path ships a pooled gapped writer without
    materializing the frame: the prefix is back-filled into the
    reserved {!Envelope.gap} immediately before the payload, and the
    prefix+payload leave in one contiguous [write] — the scatter-gather
    path the PR 5 writers were shaped for, with the iovec collapsed to
    a single span because the gap makes header and payload adjacent.

    TCP already delivers reliably and in order, so the backend is
    raw-like: [is_reliable] is [false], {!Transport.S.idle} returns
    [Raw_transport], epochs are always 0, and a peer is [Down] exactly
    when its connection broke.  {!Transport.S.set_faults} raises — the
    seeded fault schedules exist to exercise the simulated physical
    layer, which a kernel socket does not expose.

    Two modes:
    - {e loopback}: all [n] endpoints hosted in this process over
      127.0.0.1 ephemeral ports — real syscalls, one address space
      (the [transport_compare] gate and the conformance tests).
    - {e process}: only [self] is hosted; everything else is a peer
      address ([--listen]/[--peers] in [rmi-experiments proc]). *)

type t

(** Erase into a first-class transport. *)
val pack : t -> Transport.t

(** [create_loopback ~n metrics] hosts all [n] endpoints on
    127.0.0.1 ephemeral ports and blocks until the mesh is complete. *)
val create_loopback : n:int -> Rmi_stats.Metrics.t -> Transport.t

(** [create_process ~self ~addrs metrics] hosts endpoint [self] of
    [Array.length addrs] machines; [addrs.(i)] is machine [i]'s
    [(host, port)].  Binds [addrs.(self)] (or [?listen], e.g. to bind
    0.0.0.0 behind NAT), connects to every lower id (retrying while
    peers boot), accepts every higher id, and blocks until the mesh is
    complete (30 s timeout). *)
val create_process :
  ?listen:string * int ->
  self:int ->
  addrs:(string * int) array ->
  Rmi_stats.Metrics.t ->
  Transport.t
