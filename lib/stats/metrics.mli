(** Runtime event counters for the RMI system.

    The paper's Tables 4, 6 and 8 report per-application statistics:
    reused objects, local/remote RPCs, megabytes allocated by
    deserialization, and cycle-table lookups.  A [Metrics.t] holds one
    atomic counter per statistic so that machines running in separate
    domains can update them concurrently. *)

type t

(** A point-in-time copy of all counters. *)
type snapshot = {
  remote_rpcs : int;      (** RMIs whose target lived on another machine *)
  local_rpcs : int;       (** RMIs whose target happened to be local *)
  reused_objs : int;      (** objects recycled by the reuse cache *)
  new_bytes : int;        (** bytes allocated by deserialization *)
  cycle_lookups : int;    (** handle-table probes during (de)serialization *)
  ser_invocations : int;  (** dynamic calls into per-class serializers *)
  msgs_sent : int;        (** network messages *)
  bytes_sent : int;       (** network payload bytes *)
  type_bytes : int;       (** bytes of wire type information *)
  allocs : int;           (** objects allocated by deserialization *)
  retries : int;          (** frames retransmitted by the reliable transport *)
  timeouts : int;         (** frames abandoned after exhausting retransmits *)
  dup_drops : int;        (** duplicate frames suppressed by at-most-once dedup *)
  acks_sent : int;        (** link-level acknowledgements sent *)
  crashes : int;          (** simulated process crashes observed *)
  restarts : int;         (** simulated process restarts observed *)
  heartbeats_sent : int;  (** failure-detector pings and pongs sent *)
  stale_drops : int;      (** frames fenced for carrying an old incarnation *)
  suspects : int;         (** peers demoted Alive -> Suspect by the detector *)
  peer_downs : int;       (** peers confirmed Down by the detector *)
  call_retries : int;     (** RPC-level request resends after transport gave up *)
  failovers : int;        (** calls retargeted from a primary to its replica *)
  breaker_fastfails : int;(** calls failed immediately by an open circuit breaker *)
  reply_cache_hits : int; (** retried requests served from the reply cache *)
  batches_sent : int;     (** envelopes that coalesced >= 2 logical messages *)
  batched_msgs : int;     (** logical messages that travelled inside a batch *)
  unbatched_msgs : int;   (** logical messages that travelled alone *)
  outstanding_hwm : int;  (** pipelining high-water mark: most async calls
                              simultaneously awaiting replies on one node *)
  batch_hist : int array; (** flush-size histogram; see {!hist_bucket_label} *)
  tier_promotions : int;  (** call sites promoted generic -> specialized *)
  tier_deopts : int;      (** specialized plans abandoned on Type_confusion *)
  plan_cache_hits : int;  (** plan-store lookups answered from cache *)
  plan_cache_misses : int;(** plan-store lookups that forced a compile *)
  bytes_copied : int;     (** payload bytes physically copied on the wire path *)
  pool_hits : int;        (** buffer acquisitions served from the free list *)
  pool_misses : int;      (** buffer acquisitions that allocated fresh storage *)
  arena_allocs : int;     (** Value nodes handed out by decode arenas *)
  arena_resets : int;     (** wholesale arena reclaims after dispatch *)
  arena_fallbacks : int;  (** arena requests that fell back to the GC heap *)
  dispatches : int;       (** requests executed by dispatch-pool workers *)
  queue_rejects : int;    (** requests refused because a node queue was full *)
  steals : int;           (** tasks a worker took from another worker's nodes *)
  queue_depth_hwm : int;  (** deepest any node request queue ever got *)
  lat_hist : int array;   (** log2-bucketed call-latency histogram (ns); see
                              {!lat_bucket} and {!lat_quantile} *)
  site_calls : (int * int) list;
      (** adaptive-dispatch invocation counts per call site, sorted by
          callsite id with zero entries elided (canonical form, so
          snapshots compare with [=]) *)
}

(** Number of batch-size histogram buckets ([batch_hist] length). *)
val hist_buckets : int

(** Bucket index a flush of [size] messages is counted under. *)
val hist_bucket : int -> int

(** Human-readable size range of a bucket, e.g. ["5-8"]. *)
val hist_bucket_label : int -> string

(** Number of latency-histogram buckets ([lat_hist] length).  Bucket [i]
    counts latencies in [[2^i, 2^(i+1))] nanoseconds, so per-domain
    histograms merge by element-wise addition. *)
val lat_buckets : int

(** Bucket index a latency of [ns] nanoseconds is counted under. *)
val lat_bucket : int -> int

(** Inclusive upper bound of latency bucket [i], in nanoseconds. *)
val lat_bucket_upper_ns : int -> float

(** [lat_quantile hist q] estimates the [q]-quantile (0 < q <= 1) of a
    latency histogram as the upper bound of the bucket where the
    cumulative count crosses [q * total], in nanoseconds; [0.] when the
    histogram is empty.  Monotone in [q], so p50 <= p99 <= p999. *)
val lat_quantile : int array -> float -> float

(** Total number of samples recorded in a latency histogram. *)
val lat_count : int array -> int

val create : unit -> t

val reset : t -> unit

(** Counter increments; [n] defaults to 1 (or the byte count). *)

val incr_remote_rpcs : t -> unit
val incr_local_rpcs : t -> unit
val add_reused_objs : t -> int -> unit
val add_new_bytes : t -> int -> unit
val add_cycle_lookups : t -> int -> unit
val incr_ser_invocations : t -> unit
val incr_msgs_sent : t -> unit
val add_bytes_sent : t -> int -> unit
val add_type_bytes : t -> int -> unit
val incr_allocs : t -> unit

(** Reliable-transport counters.  These never touch the logical-traffic
    counters above: [msgs_sent]/[bytes_sent] count each logical message
    once, so the lossless reliable path reports byte-identical traffic
    to the raw path. *)

val incr_retries : t -> unit
val incr_timeouts : t -> unit
val incr_dup_drops : t -> unit
val incr_acks_sent : t -> unit

(** Crash, failure-detector and failover counters (PR 3).  Like the
    reliability counters they never touch the logical-traffic counters:
    heartbeats and fenced frames are transport plumbing, not messages. *)

val incr_crashes : t -> unit
val incr_restarts : t -> unit
val incr_heartbeats_sent : t -> unit
val incr_stale_drops : t -> unit
val incr_suspects : t -> unit
val incr_peer_downs : t -> unit
val incr_call_retries : t -> unit
val incr_failovers : t -> unit
val incr_breaker_fastfails : t -> unit
val incr_reply_cache_hits : t -> unit

(** Batching and pipelining counters.  Like the reliability counters,
    these never touch [msgs_sent]/[bytes_sent]: a batch envelope counts
    as one message whose bytes are the sum of its logical payloads, so
    unbatched runs report exactly the paper-table traffic. *)

(** [record_batch t ~msgs] accounts one flushed envelope that carried
    [msgs] logical messages: updates the histogram and either
    [unbatched_msgs] (singleton) or [batches_sent]/[batched_msgs]. *)
val record_batch : t -> msgs:int -> unit

(** One logical message sent outside the batching path. *)
val incr_unbatched : t -> unit

(** [record_outstanding t depth] raises the outstanding-call
    high-water mark to [depth] if it is a new maximum. *)
val record_outstanding : t -> int -> unit

(** Tiered-specialization counters (PR 4).  Only the adaptive tier
    touches them, so ahead-of-time runs keep byte-identical output. *)

val incr_tier_promotions : t -> unit
val incr_tier_deopts : t -> unit
val incr_plan_cache_hits : t -> unit
val incr_plan_cache_misses : t -> unit

(** Zero-copy wire-path telemetry (PR 5).  [bytes_copied] charges every
    physical payload copy made while framing, batching or buffering a
    message — the quantity the zero-copy path minimizes — while the pool
    counters account writer/reader free-list reuse.  Like the transport
    counters they never touch [msgs_sent]/[bytes_sent]. *)

val add_bytes_copied : t -> int -> unit
val incr_pool_hits : t -> unit
val incr_pool_misses : t -> unit

(** Arena telemetry (PR 10): Value-node recycling on the decode path.
    [arena_allocs] counts every node an arena hands out (recycled or
    fresh), [arena_fallbacks] the subset that had to come off the GC
    heap (cold pool or shape mismatch), [arena_resets] the wholesale
    end-of-dispatch reclaims escape analysis licensed. *)

val incr_arena_allocs : t -> unit
val incr_arena_resets : t -> unit
val incr_arena_fallbacks : t -> unit

(** Dispatch-pool telemetry (PR 6).  Only the multi-domain runtime
    touches the counters, so single-domain runs keep byte-identical
    output; the latency histogram is recorded on every completed call
    but surfaced only by the load experiment. *)

val incr_dispatches : t -> unit
val incr_queue_rejects : t -> unit
val incr_steals : t -> unit

(** [record_queue_depth t depth] raises the queue-depth high-water mark
    to [depth] if it is a new maximum. *)
val record_queue_depth : t -> int -> unit

(** [record_latency_ns t ns] counts one completed call whose
    client-observed round trip took [ns] nanoseconds. *)
val record_latency_ns : t -> int -> unit

(** [record_site_call t ~callsite] counts one adaptive-tier dispatch at
    [callsite] and returns nothing; read back with {!site_call_count}. *)
val record_site_call : t -> callsite:int -> unit

(** Current invocation count for [callsite] (0 if never seen). *)
val site_call_count : t -> callsite:int -> int

val snapshot : t -> snapshot

val zero : snapshot

(** [diff later earlier] subtracts counter-wise. *)
val diff : snapshot -> snapshot -> snapshot

(** [merge a b] adds counter-wise; used to combine per-machine metrics. *)
val merge : snapshot -> snapshot -> snapshot

(** [strip_timing s] is [s] with the latency histogram zeroed — the one
    field whose contents depend on wall-clock timing rather than the
    seeded schedule.  Determinism tests compare
    [strip_timing a = strip_timing b] and check the (deterministic)
    sample count with [lat_count] separately. *)
val strip_timing : snapshot -> snapshot

val pp : Format.formatter -> snapshot -> unit
