type t = {
  remote_rpcs : int Atomic.t;
  local_rpcs : int Atomic.t;
  reused_objs : int Atomic.t;
  new_bytes : int Atomic.t;
  cycle_lookups : int Atomic.t;
  ser_invocations : int Atomic.t;
  msgs_sent : int Atomic.t;
  bytes_sent : int Atomic.t;
  type_bytes : int Atomic.t;
  allocs : int Atomic.t;
  retries : int Atomic.t;
  timeouts : int Atomic.t;
  dup_drops : int Atomic.t;
  acks_sent : int Atomic.t;
}

type snapshot = {
  remote_rpcs : int;
  local_rpcs : int;
  reused_objs : int;
  new_bytes : int;
  cycle_lookups : int;
  ser_invocations : int;
  msgs_sent : int;
  bytes_sent : int;
  type_bytes : int;
  allocs : int;
  retries : int;
  timeouts : int;
  dup_drops : int;
  acks_sent : int;
}

let create () : t =
  {
    remote_rpcs = Atomic.make 0;
    local_rpcs = Atomic.make 0;
    reused_objs = Atomic.make 0;
    new_bytes = Atomic.make 0;
    cycle_lookups = Atomic.make 0;
    ser_invocations = Atomic.make 0;
    msgs_sent = Atomic.make 0;
    bytes_sent = Atomic.make 0;
    type_bytes = Atomic.make 0;
    allocs = Atomic.make 0;
    retries = Atomic.make 0;
    timeouts = Atomic.make 0;
    dup_drops = Atomic.make 0;
    acks_sent = Atomic.make 0;
  }

let reset (t : t) =
  Atomic.set t.remote_rpcs 0;
  Atomic.set t.local_rpcs 0;
  Atomic.set t.reused_objs 0;
  Atomic.set t.new_bytes 0;
  Atomic.set t.cycle_lookups 0;
  Atomic.set t.ser_invocations 0;
  Atomic.set t.msgs_sent 0;
  Atomic.set t.bytes_sent 0;
  Atomic.set t.type_bytes 0;
  Atomic.set t.allocs 0;
  Atomic.set t.retries 0;
  Atomic.set t.timeouts 0;
  Atomic.set t.dup_drops 0;
  Atomic.set t.acks_sent 0

let add a n = ignore (Atomic.fetch_and_add a n)

let incr_remote_rpcs (t : t) = add t.remote_rpcs 1
let incr_local_rpcs (t : t) = add t.local_rpcs 1
let add_reused_objs (t : t) n = add t.reused_objs n
let add_new_bytes (t : t) n = add t.new_bytes n
let add_cycle_lookups (t : t) n = add t.cycle_lookups n
let incr_ser_invocations (t : t) = add t.ser_invocations 1
let incr_msgs_sent (t : t) = add t.msgs_sent 1
let add_bytes_sent (t : t) n = add t.bytes_sent n
let add_type_bytes (t : t) n = add t.type_bytes n
let incr_allocs (t : t) = add t.allocs 1
let incr_retries (t : t) = add t.retries 1
let incr_timeouts (t : t) = add t.timeouts 1
let incr_dup_drops (t : t) = add t.dup_drops 1
let incr_acks_sent (t : t) = add t.acks_sent 1

let snapshot (t : t) =
  {
    remote_rpcs = Atomic.get t.remote_rpcs;
    local_rpcs = Atomic.get t.local_rpcs;
    reused_objs = Atomic.get t.reused_objs;
    new_bytes = Atomic.get t.new_bytes;
    cycle_lookups = Atomic.get t.cycle_lookups;
    ser_invocations = Atomic.get t.ser_invocations;
    msgs_sent = Atomic.get t.msgs_sent;
    bytes_sent = Atomic.get t.bytes_sent;
    type_bytes = Atomic.get t.type_bytes;
    allocs = Atomic.get t.allocs;
    retries = Atomic.get t.retries;
    timeouts = Atomic.get t.timeouts;
    dup_drops = Atomic.get t.dup_drops;
    acks_sent = Atomic.get t.acks_sent;
  }

let zero =
  {
    remote_rpcs = 0;
    local_rpcs = 0;
    reused_objs = 0;
    new_bytes = 0;
    cycle_lookups = 0;
    ser_invocations = 0;
    msgs_sent = 0;
    bytes_sent = 0;
    type_bytes = 0;
    allocs = 0;
    retries = 0;
    timeouts = 0;
    dup_drops = 0;
    acks_sent = 0;
  }

let map2 f a b =
  {
    remote_rpcs = f a.remote_rpcs b.remote_rpcs;
    local_rpcs = f a.local_rpcs b.local_rpcs;
    reused_objs = f a.reused_objs b.reused_objs;
    new_bytes = f a.new_bytes b.new_bytes;
    cycle_lookups = f a.cycle_lookups b.cycle_lookups;
    ser_invocations = f a.ser_invocations b.ser_invocations;
    msgs_sent = f a.msgs_sent b.msgs_sent;
    bytes_sent = f a.bytes_sent b.bytes_sent;
    type_bytes = f a.type_bytes b.type_bytes;
    allocs = f a.allocs b.allocs;
    retries = f a.retries b.retries;
    timeouts = f a.timeouts b.timeouts;
    dup_drops = f a.dup_drops b.dup_drops;
    acks_sent = f a.acks_sent b.acks_sent;
  }

let diff later earlier = map2 ( - ) later earlier
let merge a b = map2 ( + ) a b

let pp ppf s =
  Format.fprintf ppf
    "@[<v>remote_rpcs=%d local_rpcs=%d reused_objs=%d new_bytes=%d@ \
     cycle_lookups=%d ser_invocations=%d msgs=%d bytes=%d type_bytes=%d \
     allocs=%d@ retries=%d timeouts=%d dup_drops=%d acks_sent=%d@]"
    s.remote_rpcs s.local_rpcs s.reused_objs s.new_bytes s.cycle_lookups
    s.ser_invocations s.msgs_sent s.bytes_sent s.type_bytes s.allocs s.retries
    s.timeouts s.dup_drops s.acks_sent
