(* batch-size histogram buckets: sizes 1,2,3,4,5-8,9-16,17-32,33+ *)
let hist_buckets = 8

let hist_bucket size =
  if size <= 4 then size - 1
  else if size <= 8 then 4
  else if size <= 16 then 5
  else if size <= 32 then 6
  else 7

let hist_bucket_label = function
  | 0 -> "1"
  | 1 -> "2"
  | 2 -> "3"
  | 3 -> "4"
  | 4 -> "5-8"
  | 5 -> "9-16"
  | 6 -> "17-32"
  | _ -> "33+"

(* latency histogram: log2 buckets over nanoseconds.  Bucket [i] counts
   latencies in [2^i, 2^(i+1)) ns; 48 buckets reach ~3.3 days, so no
   realistic RMI overflows the last bucket.  Power-of-two bucketing
   keeps recording one shift-loop plus one atomic add, and makes
   per-domain histograms mergeable by plain element-wise addition. *)
let lat_buckets = 48

let lat_bucket ns =
  if ns <= 1 then 0
  else begin
    (* floor(log2 ns) via bit length *)
    let rec bits acc v = if v = 0 then acc else bits (acc + 1) (v lsr 1) in
    min (lat_buckets - 1) (bits 0 ns - 1)
  end

(* inclusive upper bound of bucket [i], in nanoseconds *)
let lat_bucket_upper_ns i = Float.of_int (1 lsl (min 61 (i + 1)))

(* [lat_quantile hist q] estimates the [q]-quantile (0 < q <= 1) of the
   recorded latencies as the upper bound of the bucket where the
   cumulative count crosses [q * total], in nanoseconds.  0.0 when the
   histogram is empty.  Monotone in [q] by construction, so
   p50 <= p99 <= p999 always holds. *)
let lat_quantile hist q =
  let total = Array.fold_left ( + ) 0 hist in
  if total = 0 then 0.0
  else begin
    let target = max 1 (int_of_float (Float.ceil (q *. float_of_int total))) in
    let target = min target total in
    let rec walk i cum =
      if i >= Array.length hist then lat_bucket_upper_ns (Array.length hist - 1)
      else
        let cum = cum + hist.(i) in
        if cum >= target then lat_bucket_upper_ns i else walk (i + 1) cum
    in
    walk 0 0
  end

let lat_count hist = Array.fold_left ( + ) 0 hist

type t = {
  remote_rpcs : int Atomic.t;
  local_rpcs : int Atomic.t;
  reused_objs : int Atomic.t;
  new_bytes : int Atomic.t;
  cycle_lookups : int Atomic.t;
  ser_invocations : int Atomic.t;
  msgs_sent : int Atomic.t;
  bytes_sent : int Atomic.t;
  type_bytes : int Atomic.t;
  allocs : int Atomic.t;
  retries : int Atomic.t;
  timeouts : int Atomic.t;
  dup_drops : int Atomic.t;
  acks_sent : int Atomic.t;
  crashes : int Atomic.t;
  restarts : int Atomic.t;
  heartbeats_sent : int Atomic.t;
  stale_drops : int Atomic.t;
  suspects : int Atomic.t;
  peer_downs : int Atomic.t;
  call_retries : int Atomic.t;
  failovers : int Atomic.t;
  breaker_fastfails : int Atomic.t;
  reply_cache_hits : int Atomic.t;
  batches_sent : int Atomic.t;
  batched_msgs : int Atomic.t;
  unbatched_msgs : int Atomic.t;
  outstanding_hwm : int Atomic.t;
  batch_hist : int Atomic.t array;
  tier_promotions : int Atomic.t;
  tier_deopts : int Atomic.t;
  plan_cache_hits : int Atomic.t;
  plan_cache_misses : int Atomic.t;
  bytes_copied : int Atomic.t;
  arena_allocs : int Atomic.t;
  arena_resets : int Atomic.t;
  arena_fallbacks : int Atomic.t;
  pool_hits : int Atomic.t;
  pool_misses : int Atomic.t;
  dispatches : int Atomic.t;
  queue_rejects : int Atomic.t;
  steals : int Atomic.t;
  queue_depth_hwm : int Atomic.t;
  lat_hist : int Atomic.t array;
  (* per-call-site invocation counts (tiered dispatch); guarded by the
     mutex because sites appear dynamically *)
  site_calls : (int, int ref) Hashtbl.t;
  site_mutex : Mutex.t;
}

type snapshot = {
  remote_rpcs : int;
  local_rpcs : int;
  reused_objs : int;
  new_bytes : int;
  cycle_lookups : int;
  ser_invocations : int;
  msgs_sent : int;
  bytes_sent : int;
  type_bytes : int;
  allocs : int;
  retries : int;
  timeouts : int;
  dup_drops : int;
  acks_sent : int;
  crashes : int;
  restarts : int;
  heartbeats_sent : int;
  stale_drops : int;
  suspects : int;
  peer_downs : int;
  call_retries : int;
  failovers : int;
  breaker_fastfails : int;
  reply_cache_hits : int;
  batches_sent : int;
  batched_msgs : int;
  unbatched_msgs : int;
  outstanding_hwm : int;
  batch_hist : int array;
  tier_promotions : int;
  tier_deopts : int;
  plan_cache_hits : int;
  plan_cache_misses : int;
  bytes_copied : int;
  pool_hits : int;
  pool_misses : int;
  arena_allocs : int;
  arena_resets : int;
  arena_fallbacks : int;
  dispatches : int;
  queue_rejects : int;
  steals : int;
  queue_depth_hwm : int;
  lat_hist : int array;
  site_calls : (int * int) list;  (** sorted by site, zero entries elided *)
}

let create () : t =
  {
    remote_rpcs = Atomic.make 0;
    local_rpcs = Atomic.make 0;
    reused_objs = Atomic.make 0;
    new_bytes = Atomic.make 0;
    cycle_lookups = Atomic.make 0;
    ser_invocations = Atomic.make 0;
    msgs_sent = Atomic.make 0;
    bytes_sent = Atomic.make 0;
    type_bytes = Atomic.make 0;
    allocs = Atomic.make 0;
    retries = Atomic.make 0;
    timeouts = Atomic.make 0;
    dup_drops = Atomic.make 0;
    acks_sent = Atomic.make 0;
    crashes = Atomic.make 0;
    restarts = Atomic.make 0;
    heartbeats_sent = Atomic.make 0;
    stale_drops = Atomic.make 0;
    suspects = Atomic.make 0;
    peer_downs = Atomic.make 0;
    call_retries = Atomic.make 0;
    failovers = Atomic.make 0;
    breaker_fastfails = Atomic.make 0;
    reply_cache_hits = Atomic.make 0;
    batches_sent = Atomic.make 0;
    batched_msgs = Atomic.make 0;
    unbatched_msgs = Atomic.make 0;
    outstanding_hwm = Atomic.make 0;
    batch_hist = Array.init hist_buckets (fun _ -> Atomic.make 0);
    tier_promotions = Atomic.make 0;
    tier_deopts = Atomic.make 0;
    plan_cache_hits = Atomic.make 0;
    plan_cache_misses = Atomic.make 0;
    bytes_copied = Atomic.make 0;
    arena_allocs = Atomic.make 0;
    arena_resets = Atomic.make 0;
    arena_fallbacks = Atomic.make 0;
    pool_hits = Atomic.make 0;
    pool_misses = Atomic.make 0;
    dispatches = Atomic.make 0;
    queue_rejects = Atomic.make 0;
    steals = Atomic.make 0;
    queue_depth_hwm = Atomic.make 0;
    lat_hist = Array.init lat_buckets (fun _ -> Atomic.make 0);
    site_calls = Hashtbl.create 16;
    site_mutex = Mutex.create ();
  }

let reset (t : t) =
  Atomic.set t.remote_rpcs 0;
  Atomic.set t.local_rpcs 0;
  Atomic.set t.reused_objs 0;
  Atomic.set t.new_bytes 0;
  Atomic.set t.cycle_lookups 0;
  Atomic.set t.ser_invocations 0;
  Atomic.set t.msgs_sent 0;
  Atomic.set t.bytes_sent 0;
  Atomic.set t.type_bytes 0;
  Atomic.set t.allocs 0;
  Atomic.set t.retries 0;
  Atomic.set t.timeouts 0;
  Atomic.set t.dup_drops 0;
  Atomic.set t.acks_sent 0;
  Atomic.set t.crashes 0;
  Atomic.set t.restarts 0;
  Atomic.set t.heartbeats_sent 0;
  Atomic.set t.stale_drops 0;
  Atomic.set t.suspects 0;
  Atomic.set t.peer_downs 0;
  Atomic.set t.call_retries 0;
  Atomic.set t.failovers 0;
  Atomic.set t.breaker_fastfails 0;
  Atomic.set t.reply_cache_hits 0;
  Atomic.set t.batches_sent 0;
  Atomic.set t.batched_msgs 0;
  Atomic.set t.unbatched_msgs 0;
  Atomic.set t.outstanding_hwm 0;
  Array.iter (fun a -> Atomic.set a 0) t.batch_hist;
  Atomic.set t.tier_promotions 0;
  Atomic.set t.tier_deopts 0;
  Atomic.set t.plan_cache_hits 0;
  Atomic.set t.plan_cache_misses 0;
  Atomic.set t.bytes_copied 0;
  Atomic.set t.arena_allocs 0;
  Atomic.set t.arena_resets 0;
  Atomic.set t.arena_fallbacks 0;
  Atomic.set t.pool_hits 0;
  Atomic.set t.pool_misses 0;
  Atomic.set t.dispatches 0;
  Atomic.set t.queue_rejects 0;
  Atomic.set t.steals 0;
  Atomic.set t.queue_depth_hwm 0;
  Array.iter (fun a -> Atomic.set a 0) t.lat_hist;
  Mutex.lock t.site_mutex;
  Hashtbl.reset t.site_calls;
  Mutex.unlock t.site_mutex

let add a n = ignore (Atomic.fetch_and_add a n)

let incr_remote_rpcs (t : t) = add t.remote_rpcs 1
let incr_local_rpcs (t : t) = add t.local_rpcs 1
let add_reused_objs (t : t) n = add t.reused_objs n
let add_new_bytes (t : t) n = add t.new_bytes n
let add_cycle_lookups (t : t) n = add t.cycle_lookups n
let incr_ser_invocations (t : t) = add t.ser_invocations 1
let incr_msgs_sent (t : t) = add t.msgs_sent 1
let add_bytes_sent (t : t) n = add t.bytes_sent n
let add_type_bytes (t : t) n = add t.type_bytes n
let incr_allocs (t : t) = add t.allocs 1
let incr_retries (t : t) = add t.retries 1
let incr_timeouts (t : t) = add t.timeouts 1
let incr_dup_drops (t : t) = add t.dup_drops 1
let incr_acks_sent (t : t) = add t.acks_sent 1
let incr_crashes (t : t) = add t.crashes 1
let incr_restarts (t : t) = add t.restarts 1
let incr_heartbeats_sent (t : t) = add t.heartbeats_sent 1
let incr_stale_drops (t : t) = add t.stale_drops 1
let incr_suspects (t : t) = add t.suspects 1
let incr_peer_downs (t : t) = add t.peer_downs 1
let incr_call_retries (t : t) = add t.call_retries 1
let incr_failovers (t : t) = add t.failovers 1
let incr_breaker_fastfails (t : t) = add t.breaker_fastfails 1
let incr_reply_cache_hits (t : t) = add t.reply_cache_hits 1

let record_batch (t : t) ~msgs =
  if msgs >= 1 then begin
    add t.batch_hist.(hist_bucket msgs) 1;
    if msgs = 1 then add t.unbatched_msgs 1
    else begin
      add t.batches_sent 1;
      add t.batched_msgs msgs
    end
  end

let incr_unbatched (t : t) = add t.unbatched_msgs 1

let incr_tier_promotions (t : t) = add t.tier_promotions 1
let incr_tier_deopts (t : t) = add t.tier_deopts 1
let incr_plan_cache_hits (t : t) = add t.plan_cache_hits 1
let incr_plan_cache_misses (t : t) = add t.plan_cache_misses 1
let add_bytes_copied (t : t) n = add t.bytes_copied n
let incr_arena_allocs (t : t) = add t.arena_allocs 1
let incr_arena_resets (t : t) = add t.arena_resets 1
let incr_arena_fallbacks (t : t) = add t.arena_fallbacks 1
let incr_pool_hits (t : t) = add t.pool_hits 1
let incr_pool_misses (t : t) = add t.pool_misses 1
let incr_dispatches (t : t) = add t.dispatches 1
let incr_queue_rejects (t : t) = add t.queue_rejects 1
let incr_steals (t : t) = add t.steals 1

let record_queue_depth (t : t) depth =
  (* monotone max, CAS loop so concurrent domains never lose a peak *)
  let rec go () =
    let cur = Atomic.get t.queue_depth_hwm in
    if depth > cur && not (Atomic.compare_and_set t.queue_depth_hwm cur depth)
    then go ()
  in
  go ()

let record_latency_ns (t : t) ns = add t.lat_hist.(lat_bucket ns) 1

let record_site_call (t : t) ~callsite =
  Mutex.lock t.site_mutex;
  (match Hashtbl.find_opt t.site_calls callsite with
  | Some r -> incr r
  | None -> Hashtbl.add t.site_calls callsite (ref 1));
  Mutex.unlock t.site_mutex

let site_call_count (t : t) ~callsite =
  Mutex.lock t.site_mutex;
  let n =
    match Hashtbl.find_opt t.site_calls callsite with
    | Some r -> !r
    | None -> 0
  in
  Mutex.unlock t.site_mutex;
  n

let record_outstanding (t : t) depth =
  (* monotone max, CAS loop so concurrent domains never lose a peak *)
  let rec go () =
    let cur = Atomic.get t.outstanding_hwm in
    if depth > cur && not (Atomic.compare_and_set t.outstanding_hwm cur depth)
    then go ()
  in
  go ()

let snapshot (t : t) =
  {
    remote_rpcs = Atomic.get t.remote_rpcs;
    local_rpcs = Atomic.get t.local_rpcs;
    reused_objs = Atomic.get t.reused_objs;
    new_bytes = Atomic.get t.new_bytes;
    cycle_lookups = Atomic.get t.cycle_lookups;
    ser_invocations = Atomic.get t.ser_invocations;
    msgs_sent = Atomic.get t.msgs_sent;
    bytes_sent = Atomic.get t.bytes_sent;
    type_bytes = Atomic.get t.type_bytes;
    allocs = Atomic.get t.allocs;
    retries = Atomic.get t.retries;
    timeouts = Atomic.get t.timeouts;
    dup_drops = Atomic.get t.dup_drops;
    acks_sent = Atomic.get t.acks_sent;
    crashes = Atomic.get t.crashes;
    restarts = Atomic.get t.restarts;
    heartbeats_sent = Atomic.get t.heartbeats_sent;
    stale_drops = Atomic.get t.stale_drops;
    suspects = Atomic.get t.suspects;
    peer_downs = Atomic.get t.peer_downs;
    call_retries = Atomic.get t.call_retries;
    failovers = Atomic.get t.failovers;
    breaker_fastfails = Atomic.get t.breaker_fastfails;
    reply_cache_hits = Atomic.get t.reply_cache_hits;
    batches_sent = Atomic.get t.batches_sent;
    batched_msgs = Atomic.get t.batched_msgs;
    unbatched_msgs = Atomic.get t.unbatched_msgs;
    outstanding_hwm = Atomic.get t.outstanding_hwm;
    batch_hist = Array.map Atomic.get t.batch_hist;
    tier_promotions = Atomic.get t.tier_promotions;
    tier_deopts = Atomic.get t.tier_deopts;
    plan_cache_hits = Atomic.get t.plan_cache_hits;
    plan_cache_misses = Atomic.get t.plan_cache_misses;
    bytes_copied = Atomic.get t.bytes_copied;
    arena_allocs = Atomic.get t.arena_allocs;
    arena_resets = Atomic.get t.arena_resets;
    arena_fallbacks = Atomic.get t.arena_fallbacks;
    pool_hits = Atomic.get t.pool_hits;
    pool_misses = Atomic.get t.pool_misses;
    dispatches = Atomic.get t.dispatches;
    queue_rejects = Atomic.get t.queue_rejects;
    steals = Atomic.get t.steals;
    queue_depth_hwm = Atomic.get t.queue_depth_hwm;
    lat_hist = Array.map Atomic.get t.lat_hist;
    site_calls =
      (Mutex.lock t.site_mutex;
       let l =
         Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.site_calls []
       in
       Mutex.unlock t.site_mutex;
       List.sort compare (List.filter (fun (_, n) -> n <> 0) l));
  }

let zero =
  {
    remote_rpcs = 0;
    local_rpcs = 0;
    reused_objs = 0;
    new_bytes = 0;
    cycle_lookups = 0;
    ser_invocations = 0;
    msgs_sent = 0;
    bytes_sent = 0;
    type_bytes = 0;
    allocs = 0;
    retries = 0;
    timeouts = 0;
    dup_drops = 0;
    acks_sent = 0;
    crashes = 0;
    restarts = 0;
    heartbeats_sent = 0;
    stale_drops = 0;
    suspects = 0;
    peer_downs = 0;
    call_retries = 0;
    failovers = 0;
    breaker_fastfails = 0;
    reply_cache_hits = 0;
    batches_sent = 0;
    batched_msgs = 0;
    unbatched_msgs = 0;
    outstanding_hwm = 0;
    batch_hist = Array.make hist_buckets 0;
    tier_promotions = 0;
    tier_deopts = 0;
    plan_cache_hits = 0;
    plan_cache_misses = 0;
    bytes_copied = 0;
    arena_allocs = 0;
    arena_resets = 0;
    arena_fallbacks = 0;
    pool_hits = 0;
    pool_misses = 0;
    dispatches = 0;
    queue_rejects = 0;
    steals = 0;
    queue_depth_hwm = 0;
    lat_hist = Array.make lat_buckets 0;
    site_calls = [];
  }

(* keywise [f] over two sorted assoc lists, treating a missing key as 0;
   zero results are dropped so the canonical form stays comparable with
   structural equality *)
let assoc_map2 f a b =
  let tbl = Hashtbl.create 16 in
  List.iter (fun (k, _) -> Hashtbl.replace tbl k ()) a;
  List.iter (fun (k, _) -> Hashtbl.replace tbl k ()) b;
  let keys = Hashtbl.fold (fun k () acc -> k :: acc) tbl [] in
  let get l k = match List.assoc_opt k l with Some v -> v | None -> 0 in
  List.sort compare keys
  |> List.filter_map (fun k ->
         let v = f (get a k) (get b k) in
         if v = 0 then None else Some (k, v))

let map2 f a b =
  {
    remote_rpcs = f a.remote_rpcs b.remote_rpcs;
    local_rpcs = f a.local_rpcs b.local_rpcs;
    reused_objs = f a.reused_objs b.reused_objs;
    new_bytes = f a.new_bytes b.new_bytes;
    cycle_lookups = f a.cycle_lookups b.cycle_lookups;
    ser_invocations = f a.ser_invocations b.ser_invocations;
    msgs_sent = f a.msgs_sent b.msgs_sent;
    bytes_sent = f a.bytes_sent b.bytes_sent;
    type_bytes = f a.type_bytes b.type_bytes;
    allocs = f a.allocs b.allocs;
    retries = f a.retries b.retries;
    timeouts = f a.timeouts b.timeouts;
    dup_drops = f a.dup_drops b.dup_drops;
    acks_sent = f a.acks_sent b.acks_sent;
    crashes = f a.crashes b.crashes;
    restarts = f a.restarts b.restarts;
    heartbeats_sent = f a.heartbeats_sent b.heartbeats_sent;
    stale_drops = f a.stale_drops b.stale_drops;
    suspects = f a.suspects b.suspects;
    peer_downs = f a.peer_downs b.peer_downs;
    call_retries = f a.call_retries b.call_retries;
    failovers = f a.failovers b.failovers;
    breaker_fastfails = f a.breaker_fastfails b.breaker_fastfails;
    reply_cache_hits = f a.reply_cache_hits b.reply_cache_hits;
    batches_sent = f a.batches_sent b.batches_sent;
    batched_msgs = f a.batched_msgs b.batched_msgs;
    unbatched_msgs = f a.unbatched_msgs b.unbatched_msgs;
    outstanding_hwm = f a.outstanding_hwm b.outstanding_hwm;
    batch_hist = Array.map2 f a.batch_hist b.batch_hist;
    tier_promotions = f a.tier_promotions b.tier_promotions;
    tier_deopts = f a.tier_deopts b.tier_deopts;
    plan_cache_hits = f a.plan_cache_hits b.plan_cache_hits;
    plan_cache_misses = f a.plan_cache_misses b.plan_cache_misses;
    bytes_copied = f a.bytes_copied b.bytes_copied;
    arena_allocs = f a.arena_allocs b.arena_allocs;
    arena_resets = f a.arena_resets b.arena_resets;
    arena_fallbacks = f a.arena_fallbacks b.arena_fallbacks;
    pool_hits = f a.pool_hits b.pool_hits;
    pool_misses = f a.pool_misses b.pool_misses;
    dispatches = f a.dispatches b.dispatches;
    queue_rejects = f a.queue_rejects b.queue_rejects;
    steals = f a.steals b.steals;
    queue_depth_hwm = f a.queue_depth_hwm b.queue_depth_hwm;
    lat_hist = Array.map2 f a.lat_hist b.lat_hist;
    site_calls = assoc_map2 f a.site_calls b.site_calls;
  }

let diff later earlier = map2 ( - ) later earlier
let merge a b = map2 ( + ) a b

(* every counter in a snapshot is deterministic for a fixed seed —
   except the latency histogram, whose bucket placement depends on
   wall-clock timing.  [strip_timing] zeroes it so determinism tests
   can compare whole snapshots with [=]; the sample COUNT is still
   deterministic (one per settled call) and can be checked via
   [lat_count] separately. *)
let strip_timing s = { s with lat_hist = Array.make lat_buckets 0 }

let pp_batch_hist ppf hist =
  let any = Array.exists (fun c -> c > 0) hist in
  if any then begin
    Format.fprintf ppf "@ batch_hist=[";
    Array.iteri
      (fun i c ->
        if c > 0 then Format.fprintf ppf " %s:%d" (hist_bucket_label i) c)
      hist;
    Format.fprintf ppf " ]"
  end

let pp_robustness ppf s =
  (* crash/failover counters only appear once something failed, so
     fault-free paper-table output is unchanged *)
  if
    s.crashes + s.restarts + s.heartbeats_sent + s.stale_drops + s.suspects
    + s.peer_downs + s.call_retries + s.failovers + s.breaker_fastfails
    + s.reply_cache_hits > 0
  then
    Format.fprintf ppf
      "@ crashes=%d restarts=%d heartbeats=%d stale_drops=%d suspects=%d \
       peer_downs=%d@ call_retries=%d failovers=%d breaker_fastfails=%d \
       reply_cache_hits=%d"
      s.crashes s.restarts s.heartbeats_sent s.stale_drops s.suspects
      s.peer_downs s.call_retries s.failovers s.breaker_fastfails
      s.reply_cache_hits

let pp_tiers ppf s =
  (* tiering counters only appear once adaptive dispatch ran, so
     ahead-of-time paper-table output is unchanged *)
  if
    s.tier_promotions + s.tier_deopts + s.plan_cache_hits
    + s.plan_cache_misses > 0
    || s.site_calls <> []
  then begin
    Format.fprintf ppf
      "@ tier_promotions=%d tier_deopts=%d plan_cache_hits=%d \
       plan_cache_misses=%d"
      s.tier_promotions s.tier_deopts s.plan_cache_hits s.plan_cache_misses;
    if s.site_calls <> [] then begin
      Format.fprintf ppf "@ site_calls=[";
      List.iter (fun (cs, n) -> Format.fprintf ppf " cs%d:%d" cs n)
        s.site_calls;
      Format.fprintf ppf " ]"
    end
  end

let pp_wire ppf s =
  (* zero-copy telemetry only appears once the wire path ran, so
     serializer-only paper-table output is unchanged *)
  if s.bytes_copied + s.pool_hits + s.pool_misses > 0 then
    Format.fprintf ppf "@ bytes_copied=%d pool_hits=%d pool_misses=%d"
      s.bytes_copied s.pool_hits s.pool_misses

let pp_arena ppf s =
  (* arena telemetry only appears once arena decoding ran, so
     legacy-heap paper-table output is unchanged *)
  if s.arena_allocs + s.arena_resets + s.arena_fallbacks > 0 then
    Format.fprintf ppf "@ arena_allocs=%d arena_resets=%d arena_fallbacks=%d"
      s.arena_allocs s.arena_resets s.arena_fallbacks

let pp_load ppf s =
  (* dispatch-pool counters only appear once the multi-domain runtime
     ran, so single-domain paper-table output is unchanged.  The latency
     histogram records in every run but is only printed here: quantiles
     are timing-dependent, so surfacing them unconditionally would make
     paper-table output nondeterministic. *)
  if s.dispatches + s.queue_rejects + s.steals + s.queue_depth_hwm > 0 then begin
    Format.fprintf ppf
      "@ dispatches=%d queue_rejects=%d steals=%d queue_depth_hwm=%d"
      s.dispatches s.queue_rejects s.steals s.queue_depth_hwm;
    if lat_count s.lat_hist > 0 then
      Format.fprintf ppf "@ lat_p50=%.0fns lat_p99=%.0fns lat_p999=%.0fns"
        (lat_quantile s.lat_hist 0.5)
        (lat_quantile s.lat_hist 0.99)
        (lat_quantile s.lat_hist 0.999)
  end

let pp ppf s =
  Format.fprintf ppf
    "@[<v>remote_rpcs=%d local_rpcs=%d reused_objs=%d new_bytes=%d@ \
     cycle_lookups=%d ser_invocations=%d msgs=%d bytes=%d type_bytes=%d \
     allocs=%d@ retries=%d timeouts=%d dup_drops=%d acks_sent=%d@ \
     batches=%d batched_msgs=%d unbatched_msgs=%d outstanding_hwm=%d%a%a%a%a%a%a@]"
    s.remote_rpcs s.local_rpcs s.reused_objs s.new_bytes s.cycle_lookups
    s.ser_invocations s.msgs_sent s.bytes_sent s.type_bytes s.allocs s.retries
    s.timeouts s.dup_drops s.acks_sent s.batches_sent s.batched_msgs
    s.unbatched_msgs s.outstanding_hwm pp_batch_hist s.batch_hist
    pp_robustness s pp_tiers s pp_wire s pp_arena s pp_load s
