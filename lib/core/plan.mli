(** Call-site specific serialization plans — the compiler's output.

    The paper's backend emits inlined marshaler code per call site
    (Figures 6 and 13).  Here "generated code" is a [step] tree that a
    runtime executor walks in a tight loop: no per-object method-table
    dispatch, no wire type information for statically known classes,
    and the cycle table/reuse cache are compiled in or out per the
    analyses' verdicts.

    Layout invariant: [S_obj.fields] has one step per {e flat} field
    (inherited first), matching {!Jir.Program.all_fields} order. *)

(** Element kind of a flattened array-of-arrays. *)
type flat_elem = F_darr  (** double[][] *) | F_iarr  (** int[][] *)

type step =
  | S_bool
  | S_int
  | S_double
  | S_string
  | S_null  (** statically always-null reference: zero bytes on the wire *)
  | S_obj of { cls : Jir.Types.class_id; fields : step array }
      (** statically known class: 1 marker byte, then the fields inline *)
  | S_double_array  (** marker, length varint, raw payload *)
  | S_int_array
  | S_obj_array of { elem : step }  (** marker, length, element steps *)
  | S_flat_array of { felem : flat_elem }
      (** rectangular array-of-scalar-arrays flattened struct-of-arrays
          style: marker, rows, cols, then one contiguous row-major
          payload — one bounds check per matrix instead of one marker +
          length + bounds check per row.  The writer proves the shape
          (no null/shared/ragged rows) at serialization time and raises
          [Type_confusion] otherwise, deoptimizing through {!widen}
          like any other broken static promise *)
  | S_dyn
      (** type not statically unique (or inlining rejected): fall back
          to the dynamic, tag-carrying serializer *)
  | S_ref of int
      (** recursive reference into {!t.defs}: a statically-known class
          whose layout refers to itself (e.g. a linked list's [next]).
          The executor recurses through the definition table — the
          paper's direct (non-dispatched, untagged) recursive
          serializer call *)

type t = {
  callsite : Jir.Types.site;
  defs : step array;  (** definitions referenced by [S_ref] *)
  args : step array;
  ret : step option;  (** [None]: return ignored — reply is a bare ack *)
  cycle_args : bool;  (** runtime cycle table needed for the arguments *)
  cycle_ret : bool;
  reuse_args : bool array;  (** per-argument reuse cache at the callee *)
  reuse_ret : bool;  (** return-value reuse cache at the caller *)
  non_escaping : bool;
      (** escape analysis proved no argument outlives the served call:
          the whole decoded argument graph may be reclaimed wholesale
          (arena reset) once the reply has been serialized *)
  version : int;
      (** encoding version negotiated on the wire: 0 is the generic
          plan, 1 the ahead-of-time compiled plan, and each
          deoptimization ({!widen}) bumps it by one *)
  polluted : bool;
      (** at least one position has been widened after a runtime value
          broke the plan's static promise *)
}

(** Version number carried by {!generic} plans (always [0]). *)
val generic_version : int

(** A maximally pessimistic plan: every value dynamic, cycle detection
    on, no reuse — what a per-class (non-call-site) system would do. *)
val generic : callsite:Jir.Types.site -> nargs:int -> has_ret:bool -> t

(** A serialization position inside a plan. *)
type position = [ `Arg of int | `Ret ]

val pp_position : Format.formatter -> position -> unit

(** [widen t pos] is [t] with [pos] demoted to [S_dyn]: the dynamic
    serializer never raises [Type_confusion], so the repaired plan is
    guaranteed to make progress.  The cycle table is re-enabled and
    reuse disabled for that side (conservative: the dynamic encoding
    carries handles), [version] is bumped and [polluted] set.
    @raise Invalid_argument on an out-of-range argument index or
    widening [`Ret] of an ack-only plan. *)
val widen : t -> position -> t

(** Number of [step] nodes (diagnostic; the paper's inliner rejects
    oversized marshalers). *)
val size : t -> int

val step_size : step -> int

val pp_step : Format.formatter -> step -> unit
val pp : Format.formatter -> t -> unit
