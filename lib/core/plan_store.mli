(** Content-addressed cache of serialization plans, one entry per call
    site.

    The store decouples "which plan does this site use" from "when was
    it compiled": the runtime starts sites on {!Plan.generic}, asks the
    store for the specialized plan when a site turns hot, and publishes
    widened (deoptimized) plans back so every node — and a node
    restarted after a crash — re-learns the repaired encoding instead
    of re-hitting the same [Type_confusion].

    Entries are keyed by call site and guarded by a content hash of the
    program slice the plan was compiled from (caller body, callee body,
    class layouts).  If the slice changes — a method edited, a class
    relaid — the next {!get} notices the stale hash, drops every cached
    version and recompiles through the pass manager. *)

type t

(** How a {!get} was satisfied. *)
type outcome =
  | Hit  (** cached plan returned, hash still valid *)
  | Compiled  (** first request for this site: compiled and cached *)
  | Invalidated
      (** hash changed: stale versions dropped, plan recompiled *)

(** Where plans come from.  [src_hash site] is [None] when the source
    knows nothing about the site (the store then answers [None] too);
    [src_compile site] runs the compiler pipeline for one site. *)
type source = {
  src_hash : Jir.Types.site -> string option;
  src_compile : Jir.Types.site -> Plan.t option;
}

val create : source -> t

(** [get t ~site] returns the current latest plan for [site] together
    with how it was obtained, or [None] when the source cannot compile
    the site at all.

    Safe to call from concurrent domains: the cache probe runs under
    the store mutex but [src_compile] runs outside it, so one slow
    compile never serializes the other domains' lookups.  When two
    domains race to compile the same site, the first install wins and
    the loser adopts it as a [Hit] — plans the winner already widened
    are never clobbered. *)
val get : t -> site:Jir.Types.site -> (Plan.t * outcome) option

(** [version t ~site v] looks up one specific cached plan version
    (e.g. to decode a request tagged with an older encoding). *)
val version : t -> site:Jir.Types.site -> int -> Plan.t option

(** [publish t plan] records [plan] under [(plan.callsite,
    plan.version)] and makes it the site's latest when its version is
    the highest seen.  Used by the deoptimizer to share widened plans. *)
val publish : t -> Plan.t -> unit

(** Lifetime counters. *)

val hits : t -> int
val misses : t -> int
val invalidations : t -> int

(** [source_of_optimizer ?config opt] builds a source over an analyzed
    program: the hash covers the caller's and callee's method bodies
    plus every class layout (the records are mutable, so editing a
    method or class changes the hash and invalidates the entry), and
    compilation re-runs {!Optimizer.run} — through the pass manager —
    on the current state of the program. *)
val source_of_optimizer : ?config:Codegen.config -> Optimizer.t -> source
