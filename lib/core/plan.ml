type flat_elem = F_darr | F_iarr

type step =
  | S_bool
  | S_int
  | S_double
  | S_string
  | S_null
  | S_obj of { cls : Jir.Types.class_id; fields : step array }
  | S_double_array
  | S_int_array
  | S_obj_array of { elem : step }
  | S_flat_array of { felem : flat_elem }
  | S_dyn
  | S_ref of int

type t = {
  callsite : Jir.Types.site;
  defs : step array;
  args : step array;
  ret : step option;
  cycle_args : bool;
  cycle_ret : bool;
  reuse_args : bool array;
  reuse_ret : bool;
  non_escaping : bool;
  version : int;
  polluted : bool;
}

let generic_version = 0

let generic ~callsite ~nargs ~has_ret =
  {
    callsite;
    defs = [||];
    args = Array.make nargs S_dyn;
    ret = (if has_ret then Some S_dyn else None);
    cycle_args = true;
    cycle_ret = true;
    reuse_args = Array.make nargs false;
    reuse_ret = false;
    non_escaping = false;
    version = generic_version;
    polluted = false;
  }

type position = [ `Arg of int | `Ret ]

let pp_position ppf = function
  | `Arg i -> Format.fprintf ppf "arg%d" i
  | `Ret -> Format.pp_print_string ppf "ret"

let widen t (pos : position) =
  (* a widened position loses its static promises entirely: dynamic
     step, cycle table back on, reuse off — S_dyn never raises
     Type_confusion, so widening always makes forward progress *)
  match pos with
  | `Arg i ->
      if i < 0 || i >= Array.length t.args then
        invalid_arg "Plan.widen: argument index out of range";
      let args = Array.copy t.args in
      args.(i) <- S_dyn;
      let reuse_args = Array.copy t.reuse_args in
      reuse_args.(i) <- false;
      {
        t with
        args;
        reuse_args;
        cycle_args = true;
        version = t.version + 1;
        polluted = true;
      }
  | `Ret ->
      (match t.ret with
      | None -> invalid_arg "Plan.widen: no return position"
      | Some _ ->
          {
            t with
            ret = Some S_dyn;
            cycle_ret = true;
            reuse_ret = false;
            version = t.version + 1;
            polluted = true;
          })

let rec step_size = function
  | S_bool | S_int | S_double | S_string | S_null | S_double_array | S_int_array
  | S_dyn | S_ref _ ->
      1
  (* a flat step covers both levels of the matrix it fuses, so it costs
     what the S_obj_array/S_*_array pair it replaces would — inlining
     budgets are unchanged by flattening *)
  | S_flat_array _ -> 2
  | S_obj { fields; _ } ->
      Array.fold_left (fun acc s -> acc + step_size s) 1 fields
  | S_obj_array { elem } -> 1 + step_size elem

let size t =
  let args = Array.fold_left (fun acc s -> acc + step_size s) 0 t.args in
  match t.ret with Some r -> args + step_size r | None -> args

let rec pp_step ppf = function
  | S_bool -> Format.pp_print_string ppf "bool"
  | S_int -> Format.pp_print_string ppf "int"
  | S_double -> Format.pp_print_string ppf "double"
  | S_string -> Format.pp_print_string ppf "string"
  | S_null -> Format.pp_print_string ppf "null"
  | S_obj { cls; fields } ->
      Format.fprintf ppf "obj#%d{%a}" cls
        (Format.pp_print_seq
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
           pp_step)
        (Array.to_seq fields)
  | S_double_array -> Format.pp_print_string ppf "double[]"
  | S_int_array -> Format.pp_print_string ppf "int[]"
  | S_obj_array { elem } -> Format.fprintf ppf "%a[]" pp_step elem
  | S_flat_array { felem = F_darr } -> Format.pp_print_string ppf "flat double[][]"
  | S_flat_array { felem = F_iarr } -> Format.pp_print_string ppf "flat int[][]"
  | S_dyn -> Format.pp_print_string ppf "dyn"
  | S_ref d -> Format.fprintf ppf "rec#%d" d

let pp ppf t =
  Format.fprintf ppf
    "@[<v2>plan@%d (v%d%s):@ args=[%a]@ ret=%a@ cycle_args=%b cycle_ret=%b \
     reuse_args=[%s] reuse_ret=%b non_escaping=%b@]"
    t.callsite t.version
    (if t.polluted then ", polluted" else "")
    (Format.pp_print_seq
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
       pp_step)
    (Array.to_seq t.args)
    (fun ppf -> function
      | Some s -> pp_step ppf s
      | None -> Format.pp_print_string ppf "<ack>")
    t.ret t.cycle_args t.cycle_ret
    (String.concat ";"
       (Array.to_list (Array.map string_of_bool t.reuse_args)))
    t.reuse_ret t.non_escaping
