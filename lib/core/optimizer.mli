(** End-to-end compiler driver: typecheck, SSA-convert, run the heap
    analysis, and produce one {!Plan.t} plus analysis verdicts per
    remote call site. *)

type decision = {
  cs : Heap_analysis.callsite_info;
  plan : Plan.t;
  args_acyclic : bool;
  ret_acyclic : bool;
  arg_escape : Escape_analysis.verdict array;
  ret_escape : Escape_analysis.verdict;
}

type t = {
  prog : Jir.Program.t;  (** the program, now in SSA form *)
  heap : Heap_analysis.result;
  decisions : decision list;
  passes : Pass_manager.stat list;
      (** per-pass timing/size statistics, in pipeline order:
          typecheck, ssa, simplify, heap, cycle, escape, codegen *)
}

(** [run prog] mutates [prog] into SSA form.  With [~simplify:true] the
    scalar SSA cleanups ({!Rmi_ssa.Optim}) run before the analyses.
    The pipeline is staged through {!Pass_manager}, one named pass per
    stage; the recorded stats land in {!t.passes}.
    @raise Failure when the program does not typecheck. *)
val run : ?config:Codegen.config -> ?simplify:bool -> Jir.Program.t -> t

val decision_for : t -> Jir.Types.site -> decision option

(** Plan for a call site; falls back to {!Plan.generic} for unknown
    sites so a runtime can always proceed. *)
val plan_for_site : t -> Jir.Types.site -> nargs:int -> has_ret:bool -> Plan.t

(** Human-readable per-call-site analysis summary. *)
val report : t -> string
