type outcome = Hit | Compiled | Invalidated

type source = {
  src_hash : Jir.Types.site -> string option;
  src_compile : Jir.Types.site -> Plan.t option;
}

type entry = {
  mutable e_hash : string;
  e_plans : (int, Plan.t) Hashtbl.t;  (* version -> plan *)
  mutable e_latest : int;
}

type t = {
  source : source;
  entries : (Jir.Types.site, entry) Hashtbl.t;
  mutex : Mutex.t;  (* nodes may live in separate domains *)
  mutable n_hits : int;
  mutable n_misses : int;
  mutable n_invalidations : int;
}

let create source =
  {
    source;
    entries = Hashtbl.create 16;
    mutex = Mutex.create ();
    n_hits = 0;
    n_misses = 0;
    n_invalidations = 0;
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let fresh_entry hash (plan : Plan.t) =
  let e_plans = Hashtbl.create 4 in
  Hashtbl.replace e_plans plan.Plan.version plan;
  { e_hash = hash; e_plans; e_latest = plan.Plan.version }

(* under the lock: a cache probe only — never compiles *)
let probe t ~site ~hash =
  match Hashtbl.find_opt t.entries site with
  | Some e when e.e_hash = hash ->
      t.n_hits <- t.n_hits + 1;
      (match Hashtbl.find_opt e.e_plans e.e_latest with
      | Some plan -> `Hit plan
      | None -> `Broken)
  | Some _ -> `Stale
  | None -> `Miss

let get t ~site =
  match t.source.src_hash site with
  | None -> None
  | Some hash -> (
      match locked t (fun () -> probe t ~site ~hash) with
      | `Hit plan -> Some (plan, Hit)
      | `Broken -> None
      | `Stale | `Miss -> (
          (* compile OUTSIDE the lock: [src_compile] reruns the
             optimizer, and holding the mutex across it would serialize
             every concurrently-promoting domain behind one compile *)
          match t.source.src_compile site with
          | None -> None
          | Some plan ->
              locked t (fun () ->
                  (* double-check: another domain may have installed
                     the same hash while we compiled — count its entry
                     as our hit instead of clobbering plans it may
                     already have widened *)
                  match probe t ~site ~hash with
                  | `Hit plan' -> Some (plan', Hit)
                  | `Broken -> None
                  | (`Stale | `Miss) as miss ->
                      t.n_misses <- t.n_misses + 1;
                      let outcome =
                        match miss with
                        | `Miss -> Compiled
                        | `Stale ->
                            t.n_invalidations <- t.n_invalidations + 1;
                            Invalidated
                      in
                      (* stale versions are dropped wholesale: widened
                         descendants of an outdated plan are outdated
                         too *)
                      Hashtbl.replace t.entries site (fresh_entry hash plan);
                      Some (plan, outcome))))

let version t ~site v =
  locked t (fun () ->
      match Hashtbl.find_opt t.entries site with
      | None -> None
      | Some e -> Hashtbl.find_opt e.e_plans v)

let publish t (plan : Plan.t) =
  let site = plan.Plan.callsite in
  locked t (fun () ->
      match Hashtbl.find_opt t.entries site with
      | None ->
          let hash =
            match t.source.src_hash site with Some h -> h | None -> ""
          in
          Hashtbl.replace t.entries site (fresh_entry hash plan)
      | Some e ->
          Hashtbl.replace e.e_plans plan.Plan.version plan;
          if plan.Plan.version > e.e_latest then
            e.e_latest <- plan.Plan.version)

let hits t = locked t (fun () -> t.n_hits)
let misses t = locked t (fun () -> t.n_misses)
let invalidations t = locked t (fun () -> t.n_invalidations)

let source_of_optimizer ?config (opt : Optimizer.t) =
  let prog = opt.Optimizer.prog in
  let slice_hash site =
    match Optimizer.decision_for opt site with
    | None -> None
    | Some d ->
        let caller =
          Jir.Program.method_decl prog d.Optimizer.cs.Heap_analysis.caller
        in
        let callee =
          Jir.Program.method_decl prog d.Optimizer.cs.Heap_analysis.callee
        in
        (* the slice a plan depends on: both method bodies and every
           class layout (field order feeds S_obj steps).  The records
           are mutable, so editing them changes the digest. *)
        Some
          (Digest.string
             (Marshal.to_string
                (caller, callee, prog.Jir.Program.classes)
                []))
  in
  let compile site =
    let opt' = Optimizer.run ?config prog in
    match Optimizer.decision_for opt' site with
    | Some d -> Some d.Optimizer.plan
    | None -> None
  in
  { src_hash = slice_hash; src_compile = compile }
