(** Named compiler passes with per-pass timing and size statistics.

    The seed's [Optimizer.run] was one opaque function; the pass
    manager makes the pipeline explicit
    (typecheck -> ssa -> simplify -> heap -> cycle -> escape -> codegen)
    so each stage can be timed, sized and reported individually, and so
    the {!Plan_store} can re-run the same pipeline on demand when a hot
    call site needs a specialized plan compiled at runtime. *)

(** Statistics for one executed pass. *)
type stat = {
  pass_name : string;
  pass_ms : float;  (** wall-clock milliseconds spent in the pass *)
  pass_size : int;  (** pass-specific output measure (nodes, plans, ...) *)
  pass_note : string;  (** short free-form detail, may be [""] *)
}

type t

val create : unit -> t

(** [run t ~name ?size ?note f] executes [f ()], records a {!stat}
    named [name] whose size and note are computed from the result, and
    returns the result.  Exceptions from [f] propagate without
    recording a stat. *)
val run :
  t ->
  name:string ->
  ?size:('a -> int) ->
  ?note:('a -> string) ->
  (unit -> 'a) ->
  'a

(** Executed passes in execution order. *)
val stats : t -> stat list

val total_ms : t -> float

(** Render a per-pass timing/size table via {!Rmi_stats.Ascii_table}. *)
val render : stat list -> string
