type stat = {
  pass_name : string;
  pass_ms : float;
  pass_size : int;
  pass_note : string;
}

type t = { mutable rev_stats : stat list }

let create () = { rev_stats = [] }

let run t ~name ?(size = fun _ -> 0) ?(note = fun _ -> "") f =
  let t0 = Unix.gettimeofday () in
  let x = f () in
  let ms = (Unix.gettimeofday () -. t0) *. 1000. in
  t.rev_stats <-
    { pass_name = name; pass_ms = ms; pass_size = size x; pass_note = note x }
    :: t.rev_stats;
  x

let stats t = List.rev t.rev_stats

let total_ms t =
  List.fold_left (fun acc s -> acc +. s.pass_ms) 0. t.rev_stats

let render stats =
  let rows =
    List.map
      (fun s ->
        [
          s.pass_name;
          Printf.sprintf "%.3f" s.pass_ms;
          string_of_int s.pass_size;
          s.pass_note;
        ])
      stats
  in
  let total =
    List.fold_left (fun acc s -> acc +. s.pass_ms) 0. stats
  in
  let rows = rows @ [ [ "total"; Printf.sprintf "%.3f" total; ""; "" ] ] in
  Rmi_stats.Ascii_table.render
    ~headers:[ "pass"; "ms"; "size"; "notes" ]
    ~aligns:
      [
        Rmi_stats.Ascii_table.Left;
        Rmi_stats.Ascii_table.Right;
        Rmi_stats.Ascii_table.Right;
        Rmi_stats.Ascii_table.Left;
      ]
    rows
