open Jir

type decision = {
  cs : Heap_analysis.callsite_info;
  plan : Plan.t;
  args_acyclic : bool;
  ret_acyclic : bool;
  arg_escape : Escape_analysis.verdict array;
  ret_escape : Escape_analysis.verdict;
}

type t = {
  prog : Program.t;
  heap : Heap_analysis.result;
  decisions : decision list;
  passes : Pass_manager.stat list;
}

let run ?(config = Codegen.default_config) ?(simplify = false) prog =
  let pm = Pass_manager.create () in
  Pass_manager.run pm ~name:"typecheck"
    ~size:(fun () -> Array.length prog.Program.methods)
    (fun () -> Typecheck.check_exn prog);
  let converted =
    Pass_manager.run pm ~name:"ssa"
      ~size:(fun n -> n)
      ~note:(fun n -> Printf.sprintf "%d method(s) converted" n)
      (fun () ->
        Array.fold_left
          (fun acc m ->
            if Rmi_ssa.Ssa.is_ssa m then acc
            else begin
              Rmi_ssa.Ssa.convert_method m;
              acc + 1
            end)
          0 prog.Program.methods)
  in
  ignore converted;
  ignore
    (Pass_manager.run pm ~name:"simplify"
       ~size:(fun n -> n)
       ~note:(fun n ->
         if not simplify then "skipped"
         else Printf.sprintf "%d rewrite(s)" n)
       (fun () -> if simplify then Rmi_ssa.Optim.simplify prog else 0));
  let heap =
    Pass_manager.run pm ~name:"heap"
      ~size:(fun h -> List.length (Heap_analysis.callsites h))
      ~note:(fun h ->
        Printf.sprintf "fixpoint in %d pass(es)" (Heap_analysis.iterations h))
      (fun () -> Heap_analysis.analyze prog)
  in
  let css = Heap_analysis.callsites heap in
  let cycles =
    Pass_manager.run pm ~name:"cycle"
      ~size:List.length
      ~note:(fun l ->
        Printf.sprintf "%d acyclic arg list(s)"
          (List.length (List.filter fst l)))
      (fun () ->
        List.map
          (fun cs ->
            ( Cycle_analysis.args_verdict heap cs = Cycle_analysis.Acyclic,
              (not cs.Heap_analysis.has_dst)
              || Cycle_analysis.ret_verdict heap cs = Cycle_analysis.Acyclic ))
          css)
  in
  let escapes =
    Pass_manager.run pm ~name:"escape"
      ~size:List.length
      (fun () ->
        List.map
          (fun cs ->
            ( Escape_analysis.arg_verdicts heap cs,
              Escape_analysis.ret_verdict heap cs ))
          css)
  in
  let plans =
    Pass_manager.run pm ~name:"codegen"
      ~size:(fun l -> List.fold_left (fun acc p -> acc + Plan.size p) 0 l)
      ~note:(fun l -> Printf.sprintf "%d plan(s)" (List.length l))
      (fun () -> List.map (Codegen.plan_for ~config heap) css)
  in
  let rec zip css cycles escapes plans =
    match (css, cycles, escapes, plans) with
    | [], [], [], [] -> []
    | ( cs :: css,
        (args_acyclic, ret_acyclic) :: cycles,
        (arg_escape, ret_escape) :: escapes,
        plan :: plans ) ->
        { cs; plan; args_acyclic; ret_acyclic; arg_escape; ret_escape }
        :: zip css cycles escapes plans
    | _ -> assert false
  in
  let decisions = zip css cycles escapes plans in
  { prog; heap; decisions; passes = Pass_manager.stats pm }

let decision_for t site =
  List.find_opt (fun d -> d.cs.Heap_analysis.cs_site = site) t.decisions

let plan_for_site t site ~nargs ~has_ret =
  match decision_for t site with
  | Some d -> d.plan
  | None -> Plan.generic ~callsite:site ~nargs ~has_ret

let report t =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "RMI optimizer report: %d remote call site(s), heap fixpoint in %d pass(es)\n"
    (List.length t.decisions)
    (Heap_analysis.iterations t.heap);
  add "\n%s" (Pass_manager.render t.passes);
  List.iter
    (fun d ->
      let cs = d.cs in
      let caller = (Program.method_decl t.prog cs.caller).mname in
      let callee = (Program.method_decl t.prog cs.callee).mname in
      add "\ncallsite %d: %s -> %s%s\n" cs.cs_site caller callee
        (if cs.has_dst then "" else "  [return ignored -> ack-only reply]");
      add "  arguments : %s\n"
        (if Array.length cs.arg_sets = 0 then "(none)"
         else
           String.concat ", "
             (Array.to_list
                (Array.mapi
                   (fun i s ->
                     Printf.sprintf "arg%d{%s}" i
                       (String.concat ","
                          (List.map string_of_int
                             (Heap_analysis.Int_set.elements s))))
                   cs.arg_sets)));
      add "  cycles    : args %s, return %s\n"
        (if d.args_acyclic then "acyclic (cycle table removed)"
         else "may be cyclic (cycle table kept)")
        (if d.ret_acyclic then "acyclic" else "may be cyclic");
      Array.iteri
        (fun i v ->
          add "  reuse arg%d: %s\n" i
            (Format.asprintf "%a" Escape_analysis.pp_verdict v))
        d.arg_escape;
      if cs.has_dst then
        add "  reuse ret : %s\n"
          (Format.asprintf "%a" Escape_analysis.pp_verdict d.ret_escape);
      add "  plan      : %s\n" (Format.asprintf "%a" Plan.pp d.plan))
    t.decisions;
  Buffer.contents buf
