open Jir
module Int_set = Heap_analysis.Int_set

type config = { max_inline_depth : int; max_plan_size : int }

let default_config = { max_inline_depth = 8; max_plan_size = 256 }

(* Generation context: [defs] collects definitions for recursive steps
   ([Plan.S_ref]); [in_progress] tracks the node sets whose object step
   is currently being generated, so a recursive field (a linked list's
   [next]) becomes a reference to the enclosing definition instead of
   an infinite inline — the paper's direct recursive serializer call
   that needs no wire type information. *)
type genctx = {
  r : Heap_analysis.result;
  config : config;
  mutable rev_defs : Plan.step list;  (* reversed; placeholder = S_dyn *)
  mutable ndefs : int;
  mutable in_progress : (Int_set.t * int) list;
}

let node_types ctx set =
  Int_set.fold
    (fun n acc -> (Heap_graph.node (Heap_analysis.graph ctx.r) n).nty :: acc)
    set []

let uniform_type ctx set =
  match node_types ctx set with
  | [] -> None
  | t :: rest -> if List.for_all (Types.equal_ty t) rest then Some t else None

let alloc_def ctx =
  let d = ctx.ndefs in
  ctx.ndefs <- d + 1;
  ctx.rev_defs <- Plan.S_dyn :: ctx.rev_defs;
  d

let set_def ctx d step =
  ctx.rev_defs <-
    List.mapi
      (fun i s -> if ctx.ndefs - 1 - i = d then step else s)
      ctx.rev_defs

let rec step_of ctx ~depth ~path ty set =
  match ty with
  | Types.Tbool -> Plan.S_bool
  | Types.Tint -> Plan.S_int
  | Types.Tdouble -> Plan.S_double
  | Types.Tvoid -> Plan.S_null
  | Types.Tstring | Types.Tobject _ | Types.Tarray _ ->
      if Int_set.is_empty set then
        (* no allocation ever flows here: statically null — except for
           strings, which may be literals the analysis does not track *)
        (match ty with Types.Tstring -> Plan.S_string | _ -> Plan.S_null)
      else if not (Int_set.is_empty (Int_set.inter set path)) then
        (* recursive structure: refer back to the enclosing definition
           when it covers this set and agrees on the class *)
        recursive_step ctx set
      else if depth > ctx.config.max_inline_depth then Plan.S_dyn
      else begin
        match uniform_type ctx set with
        | None -> Plan.S_dyn
        | Some Types.Tstring -> Plan.S_string
        | Some (Types.Tobject cls) -> inline_object ctx ~depth ~path cls set
        | Some (Types.Tarray elem) -> inline_array ctx ~depth ~path elem set
        | Some (Types.Tvoid | Types.Tbool | Types.Tint | Types.Tdouble) ->
            (* a non-reference node type cannot occur in the graph *)
            Plan.S_dyn
      end

and recursive_step ctx set =
  let covering =
    List.find_opt (fun (s, _) -> Int_set.subset set s) ctx.in_progress
  in
  match covering with
  | Some (s, d) -> (
      match (uniform_type ctx set, uniform_type ctx s) with
      | Some (Types.Tobject c1), Some (Types.Tobject c2) when c1 = c2 ->
          Plan.S_ref d
      | _ -> Plan.S_dyn)
  | None -> Plan.S_dyn

and inline_object ctx ~depth ~path cls set =
  let prog = Heap_analysis.program ctx.r in
  let g = Heap_analysis.graph ctx.r in
  let d = alloc_def ctx in
  ctx.in_progress <- (set, d) :: ctx.in_progress;
  let path = Int_set.union path set in
  let flat = Program.all_fields prog cls in
  let fields =
    Array.mapi
      (fun i (_, fty) ->
        let tgts =
          Int_set.fold
            (fun n acc ->
              Int_set.union acc (Heap_graph.targets g n (Heap_graph.Field i)))
            set Int_set.empty
        in
        step_of ctx ~depth:(depth + 1) ~path fty tgts)
      flat
  in
  ctx.in_progress <- List.tl ctx.in_progress;
  let step = Plan.S_obj { cls; fields } in
  (* if a recursive reference was emitted, the definition must resolve *)
  let referenced =
    let rec refs = function
      | Plan.S_ref d' when d' = d -> true
      | Plan.S_obj { fields; _ } -> Array.exists refs fields
      | Plan.S_obj_array { elem } -> refs elem
      | _ -> false
    in
    Array.exists refs fields
  in
  set_def ctx d step;
  if referenced then Plan.S_ref d else step

and inline_array ctx ~depth ~path elem set =
  match elem with
  | Types.Tdouble -> Plan.S_double_array
  | Types.Tint -> Plan.S_int_array
  | Types.Tvoid -> Plan.S_dyn
  (* homogeneous array-of-scalar-arrays: decode into flat row-major
     storage, one bounds check per matrix.  Ragged/null/shared rows are
     a runtime shape violation the writer detects, deoptimizing the
     position to S_dyn through the widen machinery. *)
  | Types.Tarray Types.Tdouble -> Plan.S_flat_array { felem = Plan.F_darr }
  | Types.Tarray Types.Tint -> Plan.S_flat_array { felem = Plan.F_iarr }
  | Types.Tbool | Types.Tstring | Types.Tobject _ | Types.Tarray _ ->
      let g = Heap_analysis.graph ctx.r in
      let path = Int_set.union path set in
      let tgts =
        Int_set.fold
          (fun n acc -> Int_set.union acc (Heap_graph.targets g n Heap_graph.Elem))
          set Int_set.empty
      in
      Plan.S_obj_array
        { elem = step_of ctx ~depth:(depth + 1) ~path elem tgts }

let budgeted config step =
  if Plan.step_size step > config.max_plan_size then Plan.S_dyn else step

(* The flat encoding does not carry per-row handles, so it cannot
   preserve row identity through the runtime cycle table; on positions
   the cycle analysis could not prove acyclic, fall back to the boxed
   per-row encoding. *)
let rec deflatten = function
  | Plan.S_flat_array { felem = Plan.F_darr } ->
      Plan.S_obj_array { elem = Plan.S_double_array }
  | Plan.S_flat_array { felem = Plan.F_iarr } ->
      Plan.S_obj_array { elem = Plan.S_int_array }
  | Plan.S_obj { cls; fields } ->
      Plan.S_obj { cls; fields = Array.map deflatten fields }
  | Plan.S_obj_array { elem } -> Plan.S_obj_array { elem = deflatten elem }
  | ( Plan.S_bool | Plan.S_int | Plan.S_double | Plan.S_string | Plan.S_null
    | Plan.S_double_array | Plan.S_int_array | Plan.S_dyn | Plan.S_ref _ ) as s
    ->
      s

let make_ctx config r =
  { r; config; rev_defs = []; ndefs = 0; in_progress = [] }

let step_for ?(config = default_config) r ty set =
  let ctx = make_ctx config r in
  budgeted config (step_of ctx ~depth:0 ~path:Int_set.empty ty set)

let plan_for ?(config = default_config) r (cs : Heap_analysis.callsite_info) =
  let prog = Heap_analysis.program r in
  let callee = Program.method_decl prog cs.callee in
  let ctx = make_ctx config r in
  let args =
    Array.mapi
      (fun i set ->
        budgeted config
          (step_of ctx ~depth:0 ~path:Int_set.empty callee.params.(i) set))
      cs.arg_sets
  in
  let ret =
    if cs.has_dst then
      Some
        (budgeted config
           (step_of ctx ~depth:0 ~path:Int_set.empty callee.ret cs.ret_set))
    else None
  in
  let defs = Array.of_list (List.rev ctx.rev_defs) in
  let args_cyclic =
    match Cycle_analysis.args_verdict r cs with
    | Cycle_analysis.Acyclic -> false
    | Cycle_analysis.May_be_cyclic -> true
  in
  let ret_cyclic =
    cs.has_dst
    &&
    match Cycle_analysis.ret_verdict r cs with
    | Cycle_analysis.Acyclic -> false
    | Cycle_analysis.May_be_cyclic -> true
  in
  let reuse_args =
    Array.map Escape_analysis.is_reusable (Escape_analysis.arg_verdicts r cs)
  in
  let reuse_ret =
    cs.has_dst && Escape_analysis.is_reusable (Escape_analysis.ret_verdict r cs)
  in
  (* every argument provably does not outlive the call: the callee may
     reclaim the whole decoded argument graph after replying *)
  let non_escaping =
    Array.length reuse_args > 0 && Array.for_all Fun.id reuse_args
  in
  let args = if args_cyclic then Array.map deflatten args else args in
  let ret = if ret_cyclic then Option.map deflatten ret else ret in
  let defs =
    if args_cyclic || ret_cyclic then Array.map deflatten defs else defs
  in
  {
    Plan.callsite = cs.cs_site;
    defs;
    args;
    ret;
    cycle_args = args_cyclic;
    cycle_ret = ret_cyclic;
    reuse_args;
    reuse_ret;
    non_escaping;
    version = 1;
    polluted = false;
  }
