(* Front-end demo: a distributed program written as Java-like source
   text, compiled by the real pipeline (parse -> lower -> typecheck ->
   SSA -> heap/cycle/escape analyses -> plans), then *executed
   distributed*: machine 0 runs main, remote method bodies run on the
   machines that own their objects, and every RMI travels through the
   optimized serialization path.

   Run with: dune exec examples/source_frontend.exe *)

let source =
  {|
  class Vec { double[] xs; }

  remote class MathService {
    // the compiler proves: acyclic, argument reusable, result reusable
    Vec scale(Vec v) {
      Vec r = new Vec();
      r.xs = new double[v.xs.length];
      for (int i = 0; i < v.xs.length; i++) { r.xs[i] = v.xs[i] * 2.0; }
      return r;
    }
  }

  class Driver {
    static double main() {
      MathService s = new MathService();
      Vec v = new Vec();
      v.xs = new double[8];
      for (int i = 0; i < 8; i++) { v.xs[i] = i * 1.0; }
      double last = 0.0;
      for (int r = 0; r < 100; r++) {
        Vec w = s.scale(v);
        last = w.xs[7];
      }
      return last;
    }
  }
  |}

let () =
  print_endline "source:";
  print_endline source;
  let prog = Jfront.Lower.compile source in
  (* show what the compiler decided *)
  let opt = Rmi_core.Optimizer.run prog in
  print_endline "compiler verdicts:";
  print_endline (Rmi_core.Optimizer.report opt);
  (* and run it for real, under each configuration *)
  let entry = Jfront.Lower.method_named prog "Driver.main" in
  List.iter
    (fun config ->
      let r =
        Rmi.Distributed.run ~config ~mode:Rmi.Fabric.Sync prog
          ~entry []
      in
      Format.printf
        "%-22s main() = %a   reused %4d objs, %5d allocs, %5d cycle lookups, \
         %6d wire bytes@."
        config.Rmi.Config.name Jir.Interp.pp_value r.Rmi.Distributed.value
        r.Rmi.Distributed.stats.Rmi.Metrics.reused_objs
        r.Rmi.Distributed.stats.Rmi.Metrics.allocs
        r.Rmi.Distributed.stats.Rmi.Metrics.cycle_lookups
        r.Rmi.Distributed.stats.Rmi.Metrics.bytes_sent)
    Rmi.Config.all
