(* Crash, restart and failover: the robustness layer end to end.

   Act 1 kills the server mid-workload and restarts it with its durable
   reply cache intact: every retried call is served exactly once and
   the checksum matches a fault-free run.

   Act 2 kills a primary that never comes back: calls fail over to the
   replica registered for it and still succeed.

   Run with: dune exec examples/failover_demo.exe *)

let meta = Rmi.Internals.Class_meta.make [ ("Box", [ ("v", Jir.Types.Tint) ]) ]

let m_echo = 1

let box v =
  let b = Rmi.Value.new_obj ~cls:0 ~nfields:1 in
  b.Rmi.Value.fields.(0) <- Rmi.Value.Int v;
  Rmi.Value.Obj b

let echo_handler execs args =
  match args.(0) with
  | Rmi.Value.Obj o -> (
      match o.Rmi.Value.fields.(0) with
      | Rmi.Value.Int v ->
          incr execs;
          Some (Rmi.Value.Int (v + 1))
      | _ -> failwith "bad box")
  | _ -> failwith "bad arg"

(* a failure policy patient enough to ride through a restart outage *)
let patient =
  Rmi.Config.with_failover
    { Rmi.Config.default_failover with Rmi.Config.max_call_retries = 4 }
    (Rmi.Config.with_reliable Rmi.Config.class_)

let act1_durable_crash_restart () =
  Format.printf "--- act 1: durable crash + restart, exactly-once ---@.";
  let seed = 42 and calls = 40 in
  let sim = Rmi.Fault_sim.create ~seed ~n:2 Rmi.Fault_sim.lossless in
  Rmi.Fault_sim.set_crash_plan sim
    (Rmi.Fault_sim.seeded_crash_plan ~seed ~n:2 ~crashes:1
       ~durability:Rmi.Fault_sim.Durable ());
  let metrics = Rmi.Metrics.create () in
  let fabric =
    Rmi.Fabric.create ~mode:Rmi.Fabric.Sync ~faults:sim ~n:2 ~meta
      ~config:patient ~plans:(Hashtbl.create 4) ~metrics ()
  in
  let execs = ref 0 in
  Rmi.Node.export (Rmi.Fabric.node fabric 1) ~obj:0 ~meth:m_echo ~has_ret:true
    (echo_handler execs);
  let caller = Rmi.Fabric.node fabric 0 in
  let dest = Rmi.Remote_ref.make ~machine:1 ~obj:0 in
  let sum = ref 0 in
  Rmi.Fabric.run fabric (fun _ ->
      for i = 1 to calls do
        match
          Rmi.Node.call caller ~dest ~meth:m_echo ~callsite:1 ~has_ret:true
            [| box i |]
        with
        | Some (Rmi.Value.Int v) -> sum := !sum + v
        | _ -> Format.printf "call %d failed@." i
      done);
  let s = Rmi.Metrics.snapshot metrics in
  Format.printf
    "%d calls, checksum %d (fault-free arithmetic says %d)@.\
     handler ran %d times: exactly-once across the crash@.\
     crashes=%d restarts=%d rpc retries=%d reply-cache hits=%d@.@."
    calls !sum
    (calls * (calls + 3) / 2)
    !execs s.Rmi.Metrics.crashes s.Rmi.Metrics.restarts
    s.Rmi.Metrics.call_retries s.Rmi.Metrics.reply_cache_hits

let act2_failover_to_replica () =
  Format.printf "--- act 2: primary dies for good, replica takes over ---@.";
  let sim = Rmi.Fault_sim.create ~seed:7 ~n:3 Rmi.Fault_sim.lossless in
  Rmi.Fault_sim.set_crash_plan sim
    [
      {
        Rmi.Fault_sim.victim = 1;
        crash_at = 1;
        restart_after = None;
        durability = Rmi.Fault_sim.Durable;
      };
    ];
  let metrics = Rmi.Metrics.create () in
  let fabric =
    Rmi.Fabric.create ~mode:Rmi.Fabric.Sync ~faults:sim ~n:3 ~meta
      ~config:(Rmi.Config.with_reliable Rmi.Config.class_)
      ~plans:(Hashtbl.create 4) ~metrics ()
  in
  let registry = Rmi.Registry.create fabric in
  let execs = ref 0 in
  let service =
    Rmi.Registry.new_replicated registry ~primary:1 ~replica:2
      [ { Rmi.Registry.meth = m_echo; has_ret = true;
          handler = echo_handler execs } ]
  in
  let caller = Rmi.Fabric.node fabric 0 in
  Rmi.Fabric.run fabric (fun _ ->
      for i = 1 to 3 do
        match
          Rmi.Node.call caller ~dest:service ~meth:m_echo ~callsite:1
            ~has_ret:true [| box (i * 10) |]
        with
        | Some (Rmi.Value.Int v) -> Format.printf "call %d -> %d@." (i * 10) v
        | _ -> Format.printf "call %d failed@." (i * 10)
      done);
  let s = Rmi.Metrics.snapshot metrics in
  Format.printf
    "crashes=%d failovers=%d: the replica answered for the dead primary@."
    s.Rmi.Metrics.crashes s.Rmi.Metrics.failovers

let () =
  act1_durable_crash_restart ();
  act2_failover_to_replica ()
