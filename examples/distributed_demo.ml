(* Distributed whole-program execution with tracing: a Java-like source
   program whose remote objects spread over three machines, with nested
   RMIs, executed under the fully optimized configuration.

   Run with: dune exec examples/distributed_demo.exe *)

let source =
  {|
  class Grid { double[][] cells; }

  remote class Smoother {
    // one Jacobi-style smoothing sweep over the interior
    Grid sweep(Grid g) {
      int n = g.cells.length;
      Grid out = new Grid();
      out.cells = new double[n][n];
      for (int i = 1; i < n - 1; i++) {
        for (int j = 1; j < n - 1; j++) {
          out.cells[i][j] =
            (g.cells[i-1][j] + g.cells[i+1][j] +
             g.cells[i][j-1] + g.cells[i][j+1]) / 4.0;
        }
      }
      return out;
    }
  }

  remote class Pipeline {
    // two smoothing stages living on (potentially) different machines
    Grid both(Grid g) {
      Smoother s1 = new Smoother();
      Smoother s2 = new Smoother();
      return s2.sweep(s1.sweep(g));
    }
  }

  class Driver {
    static double main() {
      Grid g = new Grid();
      g.cells = new double[8][8];
      for (int i = 0; i < 8; i++) {
        for (int j = 0; j < 8; j++) { g.cells[i][j] = i * j * 1.0; }
      }
      Pipeline p = new Pipeline();
      double acc = 0.0;
      for (int r = 0; r < 20; r++) {
        Grid out = p.both(g);
        acc = acc + out.cells[4][4];
      }
      return acc;
    }
  }
  |}

let () =
  let prog = Jfront.Lower.compile source in
  let entry = Jfront.Lower.method_named prog "Driver.main" in
  Format.printf "running Driver.main on a 3-machine cluster...@.";
  let r =
    Rmi.Distributed.run ~config:Rmi.Config.site_reuse_cycle
      ~mode:Rmi.Fabric.Sync ~machines:3 prog ~entry []
  in
  Format.printf "main() = %a@." Jir.Interp.pp_value r.Rmi.Distributed.value;
  Format.printf
    "remote objects placed: %d; rpcs: %d remote + %d local; reused objs: %d; \
     cycle lookups: %d@."
    r.Rmi.Distributed.remote_objects
    r.Rmi.Distributed.stats.Rmi.Metrics.remote_rpcs
    r.Rmi.Distributed.stats.Rmi.Metrics.local_rpcs
    r.Rmi.Distributed.stats.Rmi.Metrics.reused_objs
    r.Rmi.Distributed.stats.Rmi.Metrics.cycle_lookups;
  (* sanity: the distributed result equals the interpreter's built-in
     RMI simulation *)
  let prog2 = Jfront.Lower.compile source in
  let oracle =
    Jir.Interp.run (Jir.Interp.create prog2)
      (Jfront.Lower.method_named prog2 "Driver.main")
      []
  in
  Format.printf "matches the interpreter oracle: %b@."
    (Jir.Interp.value_equal oracle r.Rmi.Distributed.value)
