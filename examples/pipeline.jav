// A two-stage smoothing pipeline across remote objects.  Execute it
// distributed with:
//
//   dune exec bin/main.exe -- run examples/pipeline.jav
//   dune exec bin/main.exe -- run examples/pipeline.jav --machines 4 --config class
//
// (see also `compile examples/pipeline.jav` for the analysis verdicts)

class Grid { double[][] cells; }

remote class Smoother {
  // one Jacobi-style smoothing sweep over the interior
  Grid sweep(Grid g) {
    int n = g.cells.length;
    Grid out = new Grid();
    out.cells = new double[n][n];
    for (int i = 1; i < n - 1; i++) {
      for (int j = 1; j < n - 1; j++) {
        out.cells[i][j] =
          (g.cells[i-1][j] + g.cells[i+1][j] +
           g.cells[i][j-1] + g.cells[i][j+1]) / 4.0;
      }
    }
    return out;
  }
}

remote class Pipeline {
  // two smoothing stages living on (potentially) different machines
  Grid both(Grid g) {
    Smoother s1 = new Smoother();
    Smoother s2 = new Smoother();
    return s2.sweep(s1.sweep(g));
  }
}

class Driver {
  static double main() {
    Grid g = new Grid();
    g.cells = new double[8][8];
    for (int i = 0; i < 8; i++) {
      for (int j = 0; j < 8; j++) { g.cells[i][j] = i * j * 1.0; }
    }
    Pipeline p = new Pipeline();
    double acc = 0.0;
    for (int r = 0; r < 20; r++) {
      Grid out = p.both(g);
      acc = acc + out.cells[4][4];
    }
    return acc;
  }
}
