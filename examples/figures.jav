// The paper's running examples, in the surface syntax that
// `rmi-experiments compile` accepts.  Try:
//
//   dune exec bin/main.exe -- compile examples/figures.jav
//
// and compare the printed verdicts with the paper:
//  - Driver.benchArray's call site: acyclic, reusable, ack-only (Fig 12/13)
//  - Driver.benchList's call site: may-be-cyclic (the admitted false
//    positive), reusable (Fig 14 / Table 1)
//  - Driver.benchEscape's call site: argument escapes via the static
//    (Fig 11)

class LinkedList {
  LinkedList next;
}

class Data { int payload; }
class Bar { Data d; }

remote class ArrayBench {
  void send(double[][] arr) { }
}

remote class ListBench {
  void send(LinkedList l) { }
}

remote class EscapeBench {
  static Data kept;
  void foo(Bar a) { EscapeBench.kept = a.d; }
}

class Driver {
  static void benchArray() {
    double[][] arr = new double[16][16];
    ArrayBench f = new ArrayBench();
    for (int i = 0; i < 100; i++) { f.send(arr); }
  }

  static void benchList() {
    LinkedList head = null;
    for (int i = 0; i < 100; i++) {
      LinkedList n = new LinkedList();
      n.next = head;
      head = n;
    }
    ListBench f = new ListBench();
    f.send(head);
  }

  static void benchEscape() {
    Bar b = new Bar();
    b.d = new Data();
    EscapeBench e = new EscapeBench();
    e.foo(b);
  }
}
