(* The paper's running example (Figures 12/13): shipping a 16x16
   double[][] over RMI, comparing all five optimization levels.

   Run with: dune exec examples/matrix_transfer.exe *)

let () =
  let params = { Rmi_apps.Array_bench.n = 16; repetitions = 500 } in
  Format.printf
    "Sending a %dx%d double[][] %d times under each configuration:@.@."
    params.n params.n params.repetitions;
  let model = Rmi.Costmodel.myrinet_2003 in
  List.iter
    (fun config ->
      let r =
        Rmi_apps.Array_bench.run ~config ~mode:Rmi.Fabric.Sync params
      in
      let s = r.Rmi_apps.Array_bench.stats in
      Format.printf
        "%-22s wall %.4fs  modeled %.4fs  wire %7d B  type info %5d B  cycle \
         lookups %6d  allocs %5d@."
        config.Rmi.Config.name r.Rmi_apps.Array_bench.wall_seconds
        (Rmi.Costmodel.modeled_seconds model s)
        s.Rmi.Metrics.bytes_sent s.Rmi.Metrics.type_bytes
        s.Rmi.Metrics.cycle_lookups s.Rmi.Metrics.allocs)
    Rmi.Config.all;
  (* show the generated Figure-13 plan *)
  let compiled = Rmi_apps.Array_bench.compiled () in
  let site = Rmi_apps.Array_bench.callsite () in
  match Rmi_core.Optimizer.decision_for compiled.Rmi_apps.App_common.opt site with
  | Some d ->
      Format.printf "@.generated call-site plan (paper Figure 13):@.%a@."
        Rmi_core.Plan.pp d.Rmi_core.Optimizer.plan
  | None -> ()
