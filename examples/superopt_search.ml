(* Distributed superoptimizer demo: find all 1- and 2-instruction
   sequences equivalent to a target, with candidates shipped over RMI
   exactly as in the paper's Section 5.3.

   Run with: dune exec examples/superopt_search.exe *)

module Isa = Rmi_apps.Superopt.Isa

let () =
  (* target: r0 = 0 (the classic zeroing idiom) *)
  let target = [| { Isa.op = Isa.Sub; rd = 0; rs1 = 0; rs2 = 0 } |] in
  let params =
    { Rmi_apps.Superopt.target; max_len = 1; max_candidates = max_int }
  in
  Format.printf "target: %a@." Isa.pp_prog target;
  let r =
    Rmi_apps.Superopt.run ~config:Rmi.Config.site_reuse_cycle
      ~mode:Rmi.Fabric.Sync params
  in
  Format.printf "tested %d candidate sequences over RMI@."
    r.Rmi_apps.Superopt.candidates_tested;
  Format.printf "equivalent sequences found (%d):@."
    (List.length r.Rmi_apps.Superopt.matches);
  List.iter
    (fun p -> Format.printf "  %a@." Isa.pp_prog p)
    r.Rmi_apps.Superopt.matches;
  let s = r.Rmi_apps.Superopt.stats in
  Format.printf
    "@.RMI statistics: %d remote, %d local rpcs; %d cycle lookups (the compiler \
     removed the rest); %d objects reused@."
    s.Rmi.Metrics.remote_rpcs s.Rmi.Metrics.local_rpcs
    s.Rmi.Metrics.cycle_lookups s.Rmi.Metrics.reused_objs
