(* Parallel webserver demo (paper Section 5.4): a master forwarding
   page requests to slaves over RMI, once per optimization level, on
   real OCaml domains (the paper's 2 CPUs).

   Run with: dune exec examples/webserver_demo.exe *)

let () =
  let params =
    { Rmi_apps.Webserver.pages = 32; page_bytes = 4096; requests = 2000 }
  in
  Format.printf "serving %d requests over %d pages of %d bytes:@.@."
    params.requests params.pages params.page_bytes;
  List.iter
    (fun config ->
      let r =
        Rmi_apps.Webserver.run ~config ~mode:Rmi.Fabric.Parallel params
      in
      let s = r.Rmi_apps.Webserver.stats in
      Format.printf
        "%-22s %8.2f us/page   reused objs %6d   new MBytes %6.2f   cycle \
         lookups %6d@."
        config.Rmi.Config.name r.Rmi_apps.Webserver.us_per_page
        s.Rmi.Metrics.reused_objs
        (float_of_int s.Rmi.Metrics.new_bytes /. 1048576.0)
        s.Rmi.Metrics.cycle_lookups)
    Rmi.Config.all
