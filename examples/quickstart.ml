(* Quickstart: the whole pipeline on a tiny program.

   1. Describe the distributed program in JIR (classes + the remote
      call sites).
   2. Run the optimizing compiler: heap analysis, cycle analysis,
      escape analysis, call-site plan generation.
   3. Boot a 2-machine cluster with the generated plans and make real
      RMI calls.

   Run with: dune exec examples/quickstart.exe *)

open Jir
module B = Builder
module Value = Rmi.Value
module Node = Rmi.Node
module Fabric = Rmi.Fabric

let () =
  (* -- 1. the program model ---------------------------------------- *)
  let b = B.create () in
  let point = B.declare_class b "Point" in
  let fx = B.add_field b point "x" Tdouble in
  let fy = B.add_field b point "y" Tdouble in
  let svc = B.declare_class b ~remote:true "GeometryService" in
  let mirror =
    B.declare_method b ~owner:svc ~name:"GeometryService.mirror"
      ~params:[ Tobject point ] ~ret:(Tobject point) ()
  in
  B.define b mirror (fun mb ->
      let p = B.param mb 0 in
      let x = B.load_field mb p fx in
      let y = B.load_field mb p fy in
      let q = B.alloc mb point in
      let nx = B.unop mb Instr.Neg (Var x) in
      let ny = B.unop mb Instr.Neg (Var y) in
      B.store_field mb q fx (Var nx);
      B.store_field mb q fy (Var ny);
      B.ret mb (Some (Var q)));
  let main = B.declare_method b ~name:"main" ~params:[] ~ret:Tvoid () in
  B.define b main (fun mb ->
      let s = B.alloc mb svc in
      let p = B.alloc mb point in
      B.store_field mb p fx (Double 1.5);
      B.store_field mb p fy (Double (-2.5));
      (match B.rcall mb (Var s) mirror [ Var p ] with
      | Some q ->
          let x = B.load_field mb q fx in
          ignore x
      | None -> assert false);
      B.ret mb None);
  let prog = B.finish b in

  (* -- 2. compile --------------------------------------------------- *)
  let compiled = Rmi_apps.App_common.compile prog in
  print_endline "Compiler analysis:";
  print_endline (Rmi_core.Optimizer.report compiled.opt);

  (* -- 3. run on the cluster --------------------------------------- *)
  let site =
    match Program.remote_callsites prog with
    | [ (_, s, _, _, _) ] -> s
    | _ -> assert false
  in
  let metrics = Rmi.Metrics.create () in
  let fabric =
    Fabric.create ~mode:Fabric.Sync ~n:2 ~meta:compiled.meta
      ~config:Rmi.Config.site_reuse_cycle ~plans:compiled.plans ~metrics
      ()
  in
  (* the service lives on machine 1 *)
  Node.export (Fabric.node fabric 1) ~obj:0 ~meth:mirror ~has_ret:true
    (fun args ->
      match args.(0) with
      | Value.Obj p ->
          let q = Value.new_obj ~cls:point ~nfields:2 in
          (q.Value.fields.(0) <-
            (match p.Value.fields.(0) with
            | Value.Double x -> Value.Double (-.x)
            | v -> v));
          (q.Value.fields.(1) <-
            (match p.Value.fields.(1) with
            | Value.Double y -> Value.Double (-.y)
            | v -> v));
          Some (Value.Obj q)
      | _ -> failwith "expected a Point");
  let caller = Fabric.node fabric 0 in
  let p = Value.new_obj ~cls:point ~nfields:2 in
  p.Value.fields.(0) <- Value.Double 1.5;
  p.Value.fields.(1) <- Value.Double (-2.5);
  let dest = Rmi.Remote_ref.make ~machine:1 ~obj:0 in
  (match
     Node.call caller ~dest ~meth:mirror ~callsite:site ~has_ret:true
       [| Value.Obj p |]
   with
  | Some q -> Format.printf "mirror(1.5, -2.5) = %a@." Value.pp q
  | None -> print_endline "no reply");

  (* -- 4. the same call, asynchronously ----------------------------- *)
  (* several calls go out before any reply is awaited; replies
     correlate by sequence number, so the order of awaits is free *)
  let futures =
    List.init 3 (fun _ ->
        Node.call_async caller ~dest ~meth:mirror ~callsite:site ~has_ret:true
          [| Value.Obj p |])
  in
  List.iteri
    (fun i result ->
      match result with
      | Some q -> Format.printf "future %d resolved: %a@." i Value.pp q
      | None -> Format.printf "future %d: no value@." i)
    (Rmi.Future.all futures);
  let s = Rmi.Metrics.snapshot metrics in
  Format.printf "metrics: %a@." Rmi.Metrics.pp s
