(* Heap-analysis tests reproducing the paper's Section 2 examples:
   Figure 2 (graph shape) and Figures 3/4 (remote-call cloning loop
   terminated by the (logical, physical) tuples). *)

open Jir
module HA = Rmi_core.Heap_analysis
module HG = Rmi_core.Heap_graph
module Int_set = HA.Int_set

let analyze prog =
  Rmi_ssa.Ssa.convert prog;
  HA.analyze prog

let fig2_graph_shape () =
  let fx = Fixtures.fig2 () in
  let r = analyze fx.f2_prog in
  let g = HA.graph r in
  (* five allocation sites: Foo, Bar, double[][][], double[][], double[] *)
  Alcotest.(check int) "five nodes" 5 (HG.num_nodes g);
  let foo_var = Fixtures.alloc_dst fx.f2_prog fx.f2_main fx.f2_foo_cls in
  let foo_set = HA.var_set r fx.f2_main foo_var in
  Alcotest.(check int) "foo points to one node" 1 (Int_set.cardinal foo_set);
  let foo_node = Int_set.choose foo_set in
  let bar_idx = Program.flat_index fx.f2_prog fx.f2_bar_fld in
  let a_idx = Program.flat_index fx.f2_prog fx.f2_a_fld in
  let bar_targets = HG.targets g foo_node (HG.Field bar_idx) in
  let a_targets = HG.targets g foo_node (HG.Field a_idx) in
  Alcotest.(check int) "one bar target" 1 (Int_set.cardinal bar_targets);
  Alcotest.(check int) "one array target" 1 (Int_set.cardinal a_targets);
  (* the array chain: a -> [] -> [] -> double[] and the nodes represent
     allocation sites, not the 2x3 actual arrays (paper's point) *)
  let a3 = Int_set.choose a_targets in
  let a2 = HG.targets g a3 HG.Elem in
  Alcotest.(check int) "double[][][] has one element site" 1 (Int_set.cardinal a2);
  let a1 = HG.targets g (Int_set.choose a2) HG.Elem in
  Alcotest.(check int) "double[][] has one element site" 1 (Int_set.cardinal a1);
  let leaf = HG.targets g (Int_set.choose a1) HG.Elem in
  Alcotest.(check int) "double[] is a leaf" 0 (Int_set.cardinal leaf);
  (* node types *)
  (match (HG.node g a3).nty with
  | Tarray (Tarray (Tarray Tdouble)) -> ()
  | ty -> Alcotest.failf "bad type %s" (Types.ty_to_string ty))

let fig3_terminates_with_tuples () =
  let fx = Fixtures.fig3 () in
  let r = analyze fx.f3_prog in
  let g = HA.graph r in
  (* the data-flow loop of Figure 3 must converge: nodes are bounded by
     physical-number dedup per callsite+direction (Figure 4's fix) *)
  Alcotest.(check bool) "bounded node count" true (HG.num_nodes g <= 8);
  Alcotest.(check bool) "few passes" true (HA.iterations r < 50);
  (* Figure 4's final state: t's set holds the original allocation (2)
     and a return-value clone (4), both with the same physical site *)
  match HA.callsite r fx.f3_site with
  | None -> Alcotest.fail "callsite not analyzed"
  | Some cs ->
      let arg0 = cs.HA.arg_sets.(0) in
      Alcotest.(check int) "t has exactly 2 allocation numbers" 2
        (Int_set.cardinal arg0);
      let physes =
        Int_set.elements arg0 |> List.map (fun n -> (HG.node g n).HG.phys)
      in
      (match physes with
      | [ p1; p2 ] -> Alcotest.(check int) "same physical site" p1 p2
      | _ -> assert false);
      (* the callee's formal got a distinct clone (paper's number 3) *)
      let formal = cs.HA.param_clone_sets.(0) in
      Alcotest.(check int) "one clone at the formal" 1 (Int_set.cardinal formal);
      Alcotest.(check bool) "clone is a fresh logical number" true
        (Int_set.disjoint formal arg0)

let clones_isolate_callee_stores () =
  (* mutation through the callee's formal must not pollute the caller's
     nodes in the approximation, mirroring deep-copy semantics *)
  let b = Builder.create () in
  let box = Builder.declare_class b "Box" in
  let payload = Builder.declare_class b "Payload" in
  let fld = Builder.add_field b box "p" (Tobject payload) in
  let svc = Builder.declare_class b ~remote:true "Svc" in
  let fill =
    Builder.declare_method b ~owner:svc ~name:"Svc.fill" ~params:[ Tobject box ]
      ~ret:Tvoid ()
  in
  Builder.define b fill (fun mb ->
      let fresh = Builder.alloc mb payload in
      Builder.store_field mb (Builder.param mb 0) fld (Var fresh));
  let caller = Builder.declare_method b ~name:"caller" ~params:[] ~ret:Tvoid () in
  Builder.define b caller (fun mb ->
      let s = Builder.alloc mb svc in
      let o = Builder.alloc mb box in
      Builder.rcall_ignore mb (Var s) fill [ Var o ];
      Builder.ret mb None);
  let prog = Builder.finish b in
  let r = analyze prog in
  let g = HA.graph r in
  let idx = Program.flat_index prog fld in
  (* caller-side box node: field p must stay empty (callee filled only
     the clone) *)
  let box_set = HA.var_set r caller (Fixtures.alloc_dst prog caller box) in
  Alcotest.(check bool) "caller box tracked" false (Int_set.is_empty box_set);
  Int_set.iter
    (fun n ->
      Alcotest.(check int) "caller box untouched" 0
        (Int_set.cardinal (HG.targets g n (HG.Field idx))))
    box_set;
  (* ...while the callee's clone did receive the payload edge *)
  let cs = List.hd (HA.callsites r) in
  let clone_set = cs.HA.param_clone_sets.(0) in
  Alcotest.(check bool) "clone has payload" true
    (Int_set.exists
       (fun n -> not (Int_set.is_empty (HG.targets g n (HG.Field idx))))
       clone_set)

let local_calls_share_nodes () =
  (* in contrast to the RMI case, a local call lets the callee's store
     show through *)
  let b = Builder.create () in
  let box = Builder.declare_class b "Box" in
  let payload = Builder.declare_class b "Payload" in
  let fld = Builder.add_field b box "p" (Tobject payload) in
  let fill =
    Builder.declare_method b ~name:"fill" ~params:[ Tobject box ] ~ret:Tvoid ()
  in
  Builder.define b fill (fun mb ->
      let fresh = Builder.alloc mb payload in
      Builder.store_field mb (Builder.param mb 0) fld (Var fresh));
  let caller = Builder.declare_method b ~name:"caller" ~params:[] ~ret:Tvoid () in
  Builder.define b caller (fun mb ->
      let o = Builder.alloc mb box in
      Builder.call_ignore mb fill [ Var o ];
      Builder.ret mb None);
  let prog = Builder.finish b in
  let r = analyze prog in
  let g = HA.graph r in
  let idx = Program.flat_index prog fld in
  let box_set = HA.var_set r caller (Fixtures.alloc_dst prog caller box) in
  let n = Int_set.choose box_set in
  Alcotest.(check int) "local store visible" 1
    (Int_set.cardinal (HG.targets g n (HG.Field idx)))

let statics_tracked () =
  let fx = Fixtures.fig11 () in
  let r = analyze fx.s_prog in
  (* the static Foo.d must point at (the clone of) the Data node *)
  let prog = fx.s_prog in
  let sid = (Program.static_decl prog 0).sid in
  let set = HA.static_set r sid in
  Alcotest.(check bool) "static set non-empty" false (Int_set.is_empty set)

let return_sets_flow () =
  let fx = Fixtures.returned_value () in
  let r = analyze fx.s_prog in
  match HA.callsite r fx.s_site with
  | None -> Alcotest.fail "no callsite"
  | Some cs ->
      Alcotest.(check bool) "callee returns a node" false
        (Int_set.is_empty cs.HA.ret_set);
      Alcotest.(check bool) "caller got a clone" false
        (Int_set.is_empty cs.HA.ret_clone_set);
      Alcotest.(check bool) "clone distinct from callee node" true
        (Int_set.disjoint cs.HA.ret_set cs.HA.ret_clone_set)

let requires_ssa () =
  let fx = Fixtures.fig2 () in
  (* not converted: analyze must refuse (the builder emits multiple
     assignments to the loop counter in general) *)
  let fx3 = Fixtures.fig3 () in
  ignore fx;
  try
    ignore (HA.analyze fx3.f3_prog);
    Alcotest.fail "expected Invalid_argument for non-SSA input"
  with Invalid_argument _ -> ()

let analysis_is_deterministic () =
  let run () =
    let fx = Fixtures.linked_list () in
    let r = analyze fx.s_prog in
    HG.num_nodes (HA.graph r)
  in
  Alcotest.(check int) "same node count" (run ()) (run ())

(* the paper's Section 2 argument, as an executable ablation: with the
   naive (Share) treatment of remote calls, the callee's store shows
   through into the caller's approximation — precisely the imprecision
   (and semantic wrongness) the (logical, physical) cloning fixes *)
let naive_semantics_pollutes_caller () =
  let build () =
    let b = Builder.create () in
    let box = Builder.declare_class b "Box" in
    let payload = Builder.declare_class b "Payload" in
    let fld = Builder.add_field b box "p" (Tobject payload) in
    let svc = Builder.declare_class b ~remote:true "Svc" in
    let fill =
      Builder.declare_method b ~owner:svc ~name:"Svc.fill"
        ~params:[ Tobject box ] ~ret:Tvoid ()
    in
    Builder.define b fill (fun mb ->
        let fresh = Builder.alloc mb payload in
        Builder.store_field mb (Builder.param mb 0) fld (Var fresh));
    let caller = Builder.declare_method b ~name:"caller" ~params:[] ~ret:Tvoid () in
    Builder.define b caller (fun mb ->
        let s = Builder.alloc mb svc in
        let o = Builder.alloc mb box in
        Builder.rcall_ignore mb (Var s) fill [ Var o ];
        Builder.ret mb None);
    let prog = Builder.finish b in
    Rmi_ssa.Ssa.convert prog;
    (prog, caller, box, fld)
  in
  let field_targets semantics =
    let prog, caller, box, fld = build () in
    let r = HA.analyze ~remote_semantics:semantics prog in
    let g = HA.graph r in
    let idx = Program.flat_index prog fld in
    let box_set = HA.var_set r caller (Fixtures.alloc_dst prog caller box) in
    Int_set.fold
      (fun n acc -> acc + Int_set.cardinal (HG.targets g n (HG.Field idx)))
      box_set 0
  in
  Alcotest.(check int) "clone semantics: caller stays clean" 0
    (field_targets `Clone);
  Alcotest.(check bool) "naive semantics: callee store leaks into caller" true
    (field_targets `Share > 0)

let naive_semantics_degrades_reuse () =
  (* the caller retains its argument in a static while the callee only
     reads it.  RMI's deep copy makes the callee's copy private, so
     under the correct Clone semantics the argument is reusable; the
     naive Share treatment aliases the formal with the caller's
     (static-reachable) object and reuse is lost — exactly the
     precision Section 2's cloning buys *)
  let build () =
    let b = Builder.create () in
    let box = Builder.declare_class b "Box" in
    let keep = Builder.declare_static b "keep" (Tobject box) in
    let svc = Builder.declare_class b ~remote:true "Svc" in
    let read =
      Builder.declare_method b ~owner:svc ~name:"Svc.read"
        ~params:[ Tobject box ] ~ret:Tvoid ()
    in
    Builder.define b read (fun mb -> Builder.ret mb None);
    let caller = Builder.declare_method b ~name:"caller" ~params:[] ~ret:Tvoid () in
    Builder.define b caller (fun mb ->
        let s = Builder.alloc mb svc in
        let o = Builder.alloc mb box in
        Builder.store_static mb keep (Var o);
        Builder.rcall_ignore mb (Var s) read [ Var o ];
        Builder.ret mb None);
    let prog = Builder.finish b in
    Rmi_ssa.Ssa.convert prog;
    prog
  in
  let verdict semantics =
    let r = HA.analyze ~remote_semantics:semantics (build ()) in
    let cs = List.hd (HA.callsites r) in
    (Rmi_core.Escape_analysis.arg_verdicts r cs).(0)
  in
  Alcotest.(check bool) "clone: callee copy is private, reusable" true
    (Rmi_core.Escape_analysis.is_reusable (verdict `Clone));
  Alcotest.(check bool) "naive: formal aliases the retained object" false
    (Rmi_core.Escape_analysis.is_reusable (verdict `Share))

let suite =
  [
    ( "heap.analysis",
      [
        Alcotest.test_case "figure 2 graph shape" `Quick fig2_graph_shape;
        Alcotest.test_case "figures 3/4 tuple termination" `Quick
          fig3_terminates_with_tuples;
        Alcotest.test_case "clones isolate callee stores" `Quick
          clones_isolate_callee_stores;
        Alcotest.test_case "local calls share nodes" `Quick local_calls_share_nodes;
        Alcotest.test_case "statics tracked" `Quick statics_tracked;
        Alcotest.test_case "return sets flow back" `Quick return_sets_flow;
        Alcotest.test_case "requires SSA input" `Quick requires_ssa;
        Alcotest.test_case "deterministic" `Quick analysis_is_deterministic;
      ] );
    ( "heap.naive-ablation",
      [
        Alcotest.test_case "naive semantics pollutes the caller" `Quick
          naive_semantics_pollutes_caller;
        Alcotest.test_case "naive semantics degrades reuse" `Quick
          naive_semantics_degrades_reuse;
      ] );
  ]
