(* Escape/reuse-analysis tests: Figures 10 and 11 plus the scenarios the
   paper's applications rely on (queued arguments escape, returned pages
   are reusable at the caller). *)

module HA = Rmi_core.Heap_analysis
module EA = Rmi_core.Escape_analysis

let analyze prog =
  Rmi_ssa.Ssa.convert prog;
  HA.analyze prog

let callsite_of r site =
  match HA.callsite r site with
  | Some cs -> cs
  | None -> Alcotest.fail "callsite not found"

let fig10_argument_reusable () =
  let fx = Fixtures.fig10 () in
  let r = analyze fx.s_prog in
  let cs = callsite_of r fx.s_site in
  match EA.arg_verdicts r cs with
  | [| v |] ->
      Alcotest.(check bool)
        (Format.asprintf "double[] arg reusable, got %a" EA.pp_verdict v)
        true (EA.is_reusable v)
  | _ -> Alcotest.fail "expected one argument"

let fig11_static_store_escapes () =
  let fx = Fixtures.fig11 () in
  let r = analyze fx.s_prog in
  let cs = callsite_of r fx.s_site in
  match EA.arg_verdicts r cs with
  | [| v |] -> Alcotest.(check bool) "Bar escapes via Data static" false (EA.is_reusable v)
  | _ -> Alcotest.fail "expected one argument"

let queued_argument_escapes () =
  (* the superoptimizer pattern: the callee pushes the received object
     into a queue (an array reachable from a static) *)
  let open Jir in
  let b = Builder.create () in
  let prog_cls = Builder.declare_class b "Prog" in
  let tester = Builder.declare_class b ~remote:true "Tester" in
  let queue = Builder.declare_static b "Tester.queue" (Tarray (Tobject prog_cls)) in
  let init = Builder.declare_method b ~name:"init" ~params:[] ~ret:Tvoid () in
  Builder.define b init (fun mb ->
      let q = Builder.alloc_array mb (Tobject prog_cls) (Int 16) in
      Builder.store_static mb queue (Var q);
      Builder.ret mb None);
  let accept =
    Builder.declare_method b ~owner:tester ~name:"Tester.accept"
      ~params:[ Tobject prog_cls ] ~ret:Tvoid ()
  in
  Builder.define b accept (fun mb ->
      let q = Builder.load_static mb queue in
      Builder.store_elem mb q (Int 0) (Var (Builder.param mb 0)));
  let producer = Builder.declare_method b ~name:"producer" ~params:[] ~ret:Tvoid () in
  Builder.define b producer (fun mb ->
      Builder.call_ignore mb init [];
      let t = Builder.alloc mb tester in
      let p = Builder.alloc mb prog_cls in
      Builder.rcall_ignore mb (Var t) accept [ Var p ];
      Builder.ret mb None);
  let fx = Fixtures.one_site (Builder.finish b) in
  let r = analyze fx.s_prog in
  let cs = callsite_of r fx.s_site in
  match EA.arg_verdicts r cs with
  | [| v |] -> Alcotest.(check bool) "queued arg escapes" false (EA.is_reusable v)
  | _ -> Alcotest.fail "expected one argument"

let returned_value_reusable_at_caller () =
  (* webserver pattern: page = server.get(); the caller only reads it *)
  let fx = Fixtures.returned_value () in
  let r = analyze fx.s_prog in
  let cs = callsite_of r fx.s_site in
  let v = EA.ret_verdict r cs in
  Alcotest.(check bool)
    (Format.asprintf "returned page reusable, got %a" EA.pp_verdict v)
    true (EA.is_reusable v)

let returned_value_stored_escapes () =
  (* caller stashes the result in a static: no reuse *)
  let open Jir in
  let b = Builder.create () in
  let page = Builder.declare_class b "Page" in
  let server = Builder.declare_class b ~remote:true "Server" in
  let last = Builder.declare_static b "last" (Tobject page) in
  let get =
    Builder.declare_method b ~owner:server ~name:"Server.get" ~params:[]
      ~ret:(Tobject page) ()
  in
  Builder.define b get (fun mb ->
      let p = Builder.alloc mb page in
      Builder.ret mb (Some (Var p)));
  let caller = Builder.declare_method b ~name:"caller" ~params:[] ~ret:Tvoid () in
  Builder.define b caller (fun mb ->
      let s = Builder.alloc mb server in
      (match Builder.rcall mb (Var s) get [] with
      | Some p -> Builder.store_static mb last (Var p)
      | None -> assert false);
      Builder.ret mb None);
  let fx = Fixtures.one_site (Builder.finish b) in
  let r = analyze fx.s_prog in
  let cs = callsite_of r fx.s_site in
  Alcotest.(check bool) "stored result escapes" false
    (EA.is_reusable (EA.ret_verdict r cs))

let argument_returned_escapes () =
  (* the callee echoes the argument back: it is part of the return
     value, so the argument objects cannot be recycled *)
  let fx = Fixtures.fig3 () in
  let r = analyze fx.f3_prog in
  let cs = callsite_of r fx.f3_site in
  match EA.arg_verdicts r cs with
  | [| v |] ->
      Alcotest.(check bool) "echoed argument escapes" false (EA.is_reusable v)
  | _ -> Alcotest.fail "expected one argument"

let linked_list_argument_reusable () =
  (* paper Table 1: reuse gives the big win on the linked list because
     the callee never captures it *)
  let fx = Fixtures.linked_list () in
  let r = analyze fx.s_prog in
  let cs = callsite_of r fx.s_site in
  match EA.arg_verdicts r cs with
  | [| v |] ->
      Alcotest.(check bool)
        (Format.asprintf "list reusable, got %a" EA.pp_verdict v)
        true (EA.is_reusable v)
  | _ -> Alcotest.fail "expected one argument"

let array_argument_reusable () =
  let fx = Fixtures.array2d () in
  let r = analyze fx.s_prog in
  let cs = callsite_of r fx.s_site in
  match EA.arg_verdicts r cs with
  | [| v |] -> Alcotest.(check bool) "array reusable" true (EA.is_reusable v)
  | _ -> Alcotest.fail "expected one argument"

let forwarded_rmi_escapes () =
  (* callee forwards the argument over another RMI: conservative escape *)
  let open Jir in
  let b = Builder.create () in
  let data = Builder.declare_class b "Data" in
  let sink = Builder.declare_class b ~remote:true "Sink" in
  let consume =
    Builder.declare_method b ~owner:sink ~name:"Sink.consume"
      ~params:[ Tobject data ] ~ret:Tvoid ()
  in
  Builder.define b consume (fun mb -> Builder.ret mb None);
  let relay = Builder.declare_class b ~remote:true "Relay" in
  let fwd =
    Builder.declare_method b ~owner:relay ~name:"Relay.forward"
      ~params:[ Tobject data ] ~ret:Tvoid ()
  in
  Builder.define b fwd (fun mb ->
      let s = Builder.alloc mb sink in
      Builder.rcall_ignore mb (Var s) consume [ Var (Builder.param mb 0) ]);
  let caller = Builder.declare_method b ~name:"caller" ~params:[] ~ret:Tvoid () in
  Builder.define b caller (fun mb ->
      let rl = Builder.alloc mb relay in
      let d = Builder.alloc mb data in
      Builder.rcall_ignore mb (Var rl) fwd [ Var d ];
      Builder.ret mb None);
  let prog = Builder.finish b in
  let r = analyze prog in
  (* find the caller->forward callsite *)
  let cs =
    List.find
      (fun (cs : HA.callsite_info) -> cs.callee = fwd)
      (HA.callsites r)
  in
  match EA.arg_verdicts r cs with
  | [| v |] -> Alcotest.(check bool) "forwarded arg escapes" false (EA.is_reusable v)
  | _ -> Alcotest.fail "expected one argument"

let suite =
  [
    ( "escape.analysis",
      [
        Alcotest.test_case "figure 10: argument reusable" `Quick
          fig10_argument_reusable;
        Alcotest.test_case "figure 11: static store escapes" `Quick
          fig11_static_store_escapes;
        Alcotest.test_case "queued argument escapes" `Quick queued_argument_escapes;
        Alcotest.test_case "returned value reusable at caller" `Quick
          returned_value_reusable_at_caller;
        Alcotest.test_case "stored return value escapes" `Quick
          returned_value_stored_escapes;
        Alcotest.test_case "echoed argument escapes" `Quick argument_returned_escapes;
        Alcotest.test_case "linked list reusable" `Quick linked_list_argument_reusable;
        Alcotest.test_case "2d array reusable" `Quick array_argument_reusable;
        Alcotest.test_case "forwarded-over-RMI escapes" `Quick forwarded_rmi_escapes;
      ] );
  ]
