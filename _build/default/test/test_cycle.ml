(* Cycle-analysis tests: Figures 8 and 9 (detection required), the
   acyclic array case (detection removable), and the paper's admitted
   false positive on linked lists. *)

module HA = Rmi_core.Heap_analysis
module CA = Rmi_core.Cycle_analysis

let analyze prog =
  Rmi_ssa.Ssa.convert prog;
  HA.analyze prog

let callsite_of r site =
  match HA.callsite r site with
  | Some cs -> cs
  | None -> Alcotest.fail "callsite not found"

let verdict = Alcotest.testable CA.pp_verdict ( = )

let fig8_aliased_args () =
  let fx = Fixtures.fig8 () in
  let r = analyze fx.s_prog in
  let cs = callsite_of r fx.s_site in
  Alcotest.check verdict "same object twice -> may be cyclic" CA.May_be_cyclic
    (CA.args_verdict r cs)

let fig9_self_reference () =
  let fx = Fixtures.fig9 () in
  let r = analyze fx.s_prog in
  let cs = callsite_of r fx.s_site in
  Alcotest.check verdict "self reference -> may be cyclic" CA.May_be_cyclic
    (CA.args_verdict r cs)

let linked_list_false_positive () =
  (* the paper's conclusion: linked lists are 'mistakenly identified as
     having cycles' because every cell comes from one allocation site *)
  let fx = Fixtures.linked_list () in
  let r = analyze fx.s_prog in
  let cs = callsite_of r fx.s_site in
  Alcotest.check verdict "linked list conservatively cyclic" CA.May_be_cyclic
    (CA.args_verdict r cs)

let array2d_acyclic () =
  let fx = Fixtures.array2d () in
  let r = analyze fx.s_prog in
  let cs = callsite_of r fx.s_site in
  Alcotest.check verdict "double[][] acyclic -> cycle table removed"
    CA.Acyclic (CA.args_verdict r cs)

let fig2_tree_acyclic () =
  (* direct use of the root traversal on the figure-2 graph *)
  let fx = Fixtures.fig2 () in
  let r = analyze fx.f2_prog in
  let foo_var = Fixtures.alloc_dst fx.f2_prog fx.f2_main fx.f2_foo_cls in
  let roots = [ HA.var_set r fx.f2_main foo_var ] in
  Alcotest.check verdict "figure 2 tree" CA.Acyclic
    (CA.of_roots (HA.graph r) roots)

let distinct_sites_not_cyclic () =
  (* two distinct objects passed as two args: no number repeats *)
  let open Jir in
  let b = Builder.create () in
  let base = Builder.declare_class b "Base" in
  let work = Builder.declare_class b ~remote:true "Work" in
  let bar =
    Builder.declare_method b ~owner:work ~name:"Work.bar"
      ~params:[ Tobject base; Tobject base ] ~ret:Tvoid ()
  in
  Builder.define b bar (fun mb -> Builder.ret mb None);
  let foo = Builder.declare_method b ~name:"foo" ~params:[] ~ret:Tvoid () in
  Builder.define b foo (fun mb ->
      let w = Builder.alloc mb work in
      let b1 = Builder.alloc mb base in
      let b2 = Builder.alloc mb base in
      Builder.rcall_ignore mb (Var w) bar [ Var b1; Var b2 ];
      Builder.ret mb None);
  let fx = Fixtures.one_site (Builder.finish b) in
  let r = analyze fx.s_prog in
  let cs = callsite_of r fx.s_site in
  Alcotest.check verdict "distinct objects" CA.Acyclic (CA.args_verdict r cs)

let shared_subobject_conservative () =
  (* DAG sharing (two holders pointing at one payload) is conservatively
     flagged: the seen-twice rule cannot tell sharing from cycles *)
  let open Jir in
  let b = Builder.create () in
  let payload = Builder.declare_class b "Payload" in
  let holder = Builder.declare_class b "Holder" in
  let fld = Builder.add_field b holder "p" (Tobject payload) in
  let work = Builder.declare_class b ~remote:true "Work" in
  let bar =
    Builder.declare_method b ~owner:work ~name:"Work.bar"
      ~params:[ Tobject holder; Tobject holder ] ~ret:Tvoid ()
  in
  Builder.define b bar (fun mb -> Builder.ret mb None);
  let foo = Builder.declare_method b ~name:"foo" ~params:[] ~ret:Tvoid () in
  Builder.define b foo (fun mb ->
      let w = Builder.alloc mb work in
      let p = Builder.alloc mb payload in
      let h1 = Builder.alloc mb holder in
      let h2 = Builder.alloc mb holder in
      Builder.store_field mb h1 fld (Var p);
      Builder.store_field mb h2 fld (Var p);
      Builder.rcall_ignore mb (Var w) bar [ Var h1; Var h2 ];
      Builder.ret mb None);
  let fx = Fixtures.one_site (Builder.finish b) in
  let r = analyze fx.s_prog in
  let cs = callsite_of r fx.s_site in
  Alcotest.check verdict "shared payload flagged" CA.May_be_cyclic
    (CA.args_verdict r cs)

let return_verdicts () =
  let fx = Fixtures.returned_value () in
  let r = analyze fx.s_prog in
  let cs = callsite_of r fx.s_site in
  Alcotest.check verdict "returned page acyclic" CA.Acyclic (CA.ret_verdict r cs)

let empty_roots_acyclic () =
  let g = Rmi_core.Heap_graph.create () in
  Alcotest.check verdict "nothing to serialize" CA.Acyclic (CA.of_roots g [])

let suite =
  [
    ( "cycle.analysis",
      [
        Alcotest.test_case "figure 8: aliased arguments" `Quick fig8_aliased_args;
        Alcotest.test_case "figure 9: self reference" `Quick fig9_self_reference;
        Alcotest.test_case "linked list false positive" `Quick
          linked_list_false_positive;
        Alcotest.test_case "2d array acyclic" `Quick array2d_acyclic;
        Alcotest.test_case "figure 2 tree acyclic" `Quick fig2_tree_acyclic;
        Alcotest.test_case "distinct sites acyclic" `Quick distinct_sites_not_cyclic;
        Alcotest.test_case "DAG sharing conservative" `Quick
          shared_subobject_conservative;
        Alcotest.test_case "return verdict" `Quick return_verdicts;
        Alcotest.test_case "empty roots" `Quick empty_roots_acyclic;
      ] );
  ]
