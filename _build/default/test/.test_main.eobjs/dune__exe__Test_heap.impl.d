test/test_heap.ml: Alcotest Array Builder Fixtures Jir List Program Rmi_core Rmi_ssa Types
