test/test_jir.ml: Alcotest Array Builder Fixtures Format Instr Interp Jir List Printf Program String Typecheck
