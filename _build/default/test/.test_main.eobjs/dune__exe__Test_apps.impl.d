test/test_apps.ml: Alcotest App_common Array Array_bench Escape_analysis Format Linked_list List Lu Optimizer Printf Rmi_apps Rmi_core Rmi_runtime Rmi_stats Seq Superopt Webserver
