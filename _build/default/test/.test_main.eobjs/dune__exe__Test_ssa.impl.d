test/test_ssa.ml: Alcotest Array Builder Fixtures Instr Interp Jir List Printf Program Rmi_ssa
