test/test_wire.ml: Alcotest Array Format Handle_table Int64 List Msgbuf Printf Protocol QCheck QCheck_alcotest Rmi_stats Rmi_wire String Typedesc
