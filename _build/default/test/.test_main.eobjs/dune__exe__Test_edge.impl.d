test/test_edge.ml: Alcotest Array Builder Instr Interp Jir Program QCheck QCheck_alcotest Rmi_core Rmi_serial Rmi_stats Rmi_wire Typecheck
