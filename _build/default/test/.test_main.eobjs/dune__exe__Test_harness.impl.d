test/test_harness.ml: Alcotest Float Fun List Printf Rmi_harness Rmi_runtime Rmi_stats String
