test/test_net.ml: Alcotest Bytes Cluster Costmodel Domain List Mailbox Option Printf Rmi_net Rmi_stats Unix
