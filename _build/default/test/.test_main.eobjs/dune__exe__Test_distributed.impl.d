test/test_distributed.ml: Alcotest Array Format Fun Jfront Jir List Printf QCheck QCheck_alcotest Rmi_runtime Rmi_serial Rmi_stats Test_soundness
