test/test_runtime.ml: Alcotest Array Config Fabric Format Hashtbl Jir List Node Printf Registry Remote_ref Rmi_core Rmi_runtime Rmi_serial Rmi_stats String Trace
