test/test_jfront.ml: Alcotest Array Jfront Jir List Printf QCheck QCheck_alcotest Rmi_core
