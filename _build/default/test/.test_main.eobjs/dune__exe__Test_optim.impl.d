test/test_optim.ml: Alcotest Array Builder Fixtures Format Fun Instr Interp Jir List Pretty Program QCheck QCheck_alcotest Rmi_core Rmi_ssa String Test_soundness Typecheck
