test/test_serial.ml: Alcotest Array Class_meta Codec Equality Format Introspect Jir List Printf QCheck QCheck_alcotest Rmi_core Rmi_serial Rmi_stats Rmi_wire Value
