test/test_internals.ml: Alcotest Array Builder Fixtures Format Instr Jir List Pretty Printf Program Rmi_core Rmi_runtime Rmi_ssa String Types
