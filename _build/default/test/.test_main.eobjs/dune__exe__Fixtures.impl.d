test/fixtures.ml: Array Builder Instr Jir List Printf Program Types
