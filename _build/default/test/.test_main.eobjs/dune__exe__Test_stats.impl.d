test/test_stats.ml: Alcotest Domain List Rmi_stats String
