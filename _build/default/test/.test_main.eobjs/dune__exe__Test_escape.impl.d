test/test_escape.ml: Alcotest Builder Fixtures Format Jir List Rmi_core Rmi_ssa
