test/test_faults.ml: Alcotest Array Bytes Config Fabric Hashtbl Jir Node Remote_ref Rmi_net Rmi_runtime Rmi_serial Rmi_stats String
