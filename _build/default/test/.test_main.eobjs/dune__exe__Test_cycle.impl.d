test/test_cycle.ml: Alcotest Builder Fixtures Jir Rmi_core Rmi_ssa
