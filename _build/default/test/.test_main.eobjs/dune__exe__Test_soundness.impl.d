test/test_soundness.ml: Array Builder Format Hashtbl Interp Jir List Printf Program QCheck QCheck_alcotest Rmi_core Rmi_ssa String Typecheck Types
