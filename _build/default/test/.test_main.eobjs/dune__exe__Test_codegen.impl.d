test/test_codegen.ml: Alcotest Array Builder Codegen Fixtures Format Heap_analysis Jir List Optimizer Plan Printf Rmi_core Rmi_ssa String
