(* Application tests: every workload must compute the right answer
   under every optimization configuration, and the runtime statistics
   must show the shapes the paper's tables report. *)

open Rmi_apps
module Config = Rmi_runtime.Config
module Fabric = Rmi_runtime.Fabric
module Metrics = Rmi_stats.Metrics

let mode = Fabric.Sync

(* --- linked list (Table 1) --- *)

let list_params = { Linked_list.elements = 20; repetitions = 10 }

let list_correct_all_configs () =
  List.iter
    (fun config ->
      let r = Linked_list.run ~config ~mode list_params in
      Alcotest.(check int)
        (Printf.sprintf "[%s] cells" config.Config.name)
        (list_params.elements * list_params.repetitions)
        r.Linked_list.cells_received)
    Config.all

let list_shape () =
  let run config = (Linked_list.run ~config ~mode list_params).Linked_list.stats in
  let s_class = run Config.class_ in
  let s_site = run Config.site in
  let s_cycle = run Config.site_cycle in
  let s_reuse = run Config.site_reuse in
  (* site sheds wire type information *)
  Alcotest.(check bool) "site < class type bytes" true
    (s_site.Metrics.type_bytes < s_class.Metrics.type_bytes);
  (* the list is conservatively cyclic: cycle elimination cannot help *)
  Alcotest.(check bool) "cycle lookups survive (false positive)" true
    (s_cycle.Metrics.cycle_lookups > 0);
  Alcotest.(check int) "cycle == site lookups" s_site.Metrics.cycle_lookups
    s_cycle.Metrics.cycle_lookups;
  (* reuse recycles all cells after the first repetition *)
  Alcotest.(check int) "reused cells"
    (list_params.elements * (list_params.repetitions - 1))
    s_reuse.Metrics.reused_objs;
  Alcotest.(check bool) "reuse cuts allocations" true
    (s_reuse.Metrics.allocs < s_site.Metrics.allocs);
  Alcotest.(check bool) "reuse cuts new bytes" true
    (s_reuse.Metrics.new_bytes < s_site.Metrics.new_bytes)

(* --- 2d array (Table 2) --- *)

let arr_params = { Array_bench.n = 8; repetitions = 10 }

let array_correct_all_configs () =
  let n = arr_params.Array_bench.n in
  let expected =
    float_of_int arr_params.Array_bench.repetitions
    *. (float_of_int ((n * n) * ((n * n) - 1)) /. 2.0)
  in
  List.iter
    (fun config ->
      let r = Array_bench.run ~config ~mode arr_params in
      Alcotest.(check (float 1e-6))
        (Printf.sprintf "[%s] sum" config.Config.name)
        expected r.Array_bench.sum_received)
    Config.all

let array_shape () =
  let run config = (Array_bench.run ~config ~mode arr_params).Array_bench.stats in
  let s_class = run Config.class_ in
  let s_site = run Config.site in
  let s_cycle = run Config.site_cycle in
  let s_full = run Config.site_reuse_cycle in
  Alcotest.(check bool) "site < class bytes on wire" true
    (s_site.Metrics.bytes_sent < s_class.Metrics.bytes_sent);
  Alcotest.(check bool) "site < class serializer calls" true
    (s_site.Metrics.ser_invocations < s_class.Metrics.ser_invocations);
  (* the array is provably acyclic: all lookups vanish *)
  Alcotest.(check int) "no cycle lookups" 0 s_cycle.Metrics.cycle_lookups;
  Alcotest.(check bool) "site still pays lookups" true
    (s_site.Metrics.cycle_lookups > 0);
  (* full opt: after the first repetition nothing is allocated *)
  Alcotest.(check int) "allocs = first rep only"
    (arr_params.Array_bench.n + 1)
    s_full.Metrics.allocs

(* --- LU (Tables 3 and 4) --- *)

let lu_params = { Lu.n = 64; block_size = 8 }

let lu_correct_all_configs () =
  List.iter
    (fun config ->
      let r = Lu.run ~config ~mode lu_params in
      Alcotest.(check bool)
        (Printf.sprintf "[%s] residual %g small" config.Config.name r.Lu.residual)
        true
        (r.Lu.residual < 1e-9))
    Config.all

let lu_sequential_sanity () =
  (* LU of a known 2x2: A = [[4,2],[2,3]] -> L21 = 0.5, U22 = 2 *)
  let a = [| [| 4.0; 2.0 |]; [| 2.0; 3.0 |] |] in
  Lu.lu_sequential a;
  Alcotest.(check (float 1e-12)) "u11" 4.0 a.(0).(0);
  Alcotest.(check (float 1e-12)) "u12" 2.0 a.(0).(1);
  Alcotest.(check (float 1e-12)) "l21" 0.5 a.(1).(0);
  Alcotest.(check (float 1e-12)) "u22" 2.0 a.(1).(1)

let lu_shape () =
  let run config = (Lu.run ~config ~mode lu_params).Lu.stats in
  let s_site = run Config.site in
  let s_cycle = run Config.site_cycle in
  let s_reuse = run Config.site_reuse in
  (* Table 4: local and remote rpcs both large (round-robin placement) *)
  Alcotest.(check bool) "local rpcs" true (s_site.Metrics.local_rpcs > 0);
  Alcotest.(check bool) "remote rpcs" true (s_site.Metrics.remote_rpcs > 0);
  let ratio =
    float_of_int s_site.Metrics.local_rpcs /. float_of_int s_site.Metrics.remote_rpcs
  in
  Alcotest.(check bool)
    (Printf.sprintf "roughly even split (%.2f)" ratio)
    true
    (ratio > 0.3 && ratio < 3.0);
  (* blocks are acyclic: lookups vanish entirely *)
  Alcotest.(check int) "cycle lookups removed" 0 s_cycle.Metrics.cycle_lookups;
  (* argument reuse slashes deserialization allocation (348 -> 87 MB in
     the paper); returns are not reusable so some allocation remains *)
  Alcotest.(check bool) "reused objects" true (s_reuse.Metrics.reused_objs > 0);
  Alcotest.(check bool) "new bytes reduced by > 2x" true
    (s_reuse.Metrics.new_bytes * 2 < s_site.Metrics.new_bytes);
  Alcotest.(check bool) "but not zero (returns still allocate)" true
    (s_reuse.Metrics.new_bytes > 0)

(* --- superoptimizer (Tables 5 and 6) --- *)

let so_params =
  { Superopt.default_params with max_len = 1; max_candidates = max_int }

let superopt_finds_known_equivalences () =
  let r = Superopt.run ~config:Config.site_reuse_cycle ~mode so_params in
  let has op =
    List.exists
      (fun p ->
        Array.length p = 1
        && p.(0).Superopt.Isa.op = op
        && p.(0).Superopt.Isa.rd = 0)
      r.Superopt.matches
  in
  (* r0 = r0 - r0 is also r0 = r0 ^ r0 and r0 = loadi 0 *)
  Alcotest.(check bool) "xor r0 r0 r0 found" true (has Superopt.Isa.Xor);
  Alcotest.(check bool) "sub r0 r0 r0 found" true (has Superopt.Isa.Sub);
  Alcotest.(check bool) "loadi r0 #0 found" true (has Superopt.Isa.Loadi);
  Alcotest.(check bool) "mov not matched" false (has Superopt.Isa.Mov)

let superopt_same_matches_all_configs () =
  let matches config =
    (Superopt.run ~config ~mode so_params).Superopt.matches
    |> List.map (Format.asprintf "%a" Superopt.Isa.pp_prog)
  in
  let baseline = matches Config.class_ in
  List.iter
    (fun config ->
      Alcotest.(check (list string))
        (Printf.sprintf "[%s] matches" config.Config.name)
        baseline (matches config))
    Config.all

let superopt_shape () =
  let run config = (Superopt.run ~config ~mode so_params).Superopt.stats in
  let s_site = run Config.site in
  let s_cycle = run Config.site_cycle in
  let s_reuse = run Config.site_reuse in
  (* Table 6: cycle elimination removes tens of lookups per candidate *)
  Alcotest.(check int) "cycle lookups removed" 0 s_cycle.Metrics.cycle_lookups;
  Alcotest.(check bool) "many lookups otherwise" true
    (s_site.Metrics.cycle_lookups > 10 * s_site.Metrics.remote_rpcs);
  (* the queue store defeats reuse: nothing is recycled *)
  Alcotest.(check int) "no reuse possible" 0 s_reuse.Metrics.reused_objs

let isa_executes () =
  let open Superopt.Isa in
  let regs = [| 5; 7; 9 |] in
  exec [| { op = Add; rd = 0; rs1 = 1; rs2 = 2 } |] regs;
  Alcotest.(check int) "add" 16 regs.(0);
  exec [| { op = Loadi; rd = 2; rs1 = 1; rs2 = 0 } |] regs;
  Alcotest.(check int) "loadi" 1 regs.(2);
  exec [| { op = Not; rd = 1; rs1 = 1; rs2 = 0 } |] regs;
  Alcotest.(check int) "not" (lnot 7) regs.(1)

let isa_identity_family () =
  (* classic single-instruction identities: and/or/mov on the same
     register all behave as the identity on r0 *)
  let open Superopt.Isa in
  let idish =
    [
      [| { op = Mov; rd = 0; rs1 = 0; rs2 = 0 } |];
      [| { op = And; rd = 0; rs1 = 0; rs2 = 0 } |];
      [| { op = Or; rd = 0; rs1 = 0; rs2 = 0 } |];
    ]
  in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          Alcotest.(check bool) "identity family" true (equivalent a b))
        idish)
    idish;
  (* shifting by r0 is not the identity in general *)
  Alcotest.(check bool) "shl not identity" false
    (equivalent (List.hd idish) [| { op = Shl; rd = 0; rs1 = 0; rs2 = 0 } |])

let isa_equivalence () =
  let open Superopt.Isa in
  let zero1 = [| { op = Sub; rd = 0; rs1 = 0; rs2 = 0 } |] in
  let zero2 = [| { op = Xor; rd = 0; rs1 = 0; rs2 = 0 } |] in
  let double = [| { op = Add; rd = 0; rs1 = 0; rs2 = 0 } |] in
  let shl1 =
    [|
      { op = Loadi; rd = 1; rs1 = 1; rs2 = 0 };
      { op = Shl; rd = 0; rs1 = 0; rs2 = 1 };
    |]
  in
  Alcotest.(check bool) "sub == xor (zeroing)" true (equivalent zero1 zero2);
  Alcotest.(check bool) "zero != double" false (equivalent zero1 double);
  (* x + x == x << 1, but shl1 clobbers r1 so they are NOT equivalent *)
  Alcotest.(check bool) "double != shl (clobbers r1)" false
    (equivalent double shl1)

let isa_enumeration_counts () =
  let open Superopt.Isa in
  let count l = Seq.length (enumerate ~max_len:l) in
  let singles = count 1 in
  (* 7 three-operand ops * 3 * 9, + 4 two-operand (mov/neg/not/ld) * 3 * 3,
     + loadi 3 * 4, + st 3 * 3 *)
  Alcotest.(check int) "single instructions"
    ((7 * 27) + (4 * 9) + 12 + 9)
    singles;
  Alcotest.(check int) "pairs" (singles + (singles * singles)) (count 2)

let isa_memory_semantics () =
  let open Superopt.Isa in
  (* st [r0], r1 ; ld r2, [r0] moves r1 into r2 through memory *)
  let regs = [| 0; 42; 7 |] in
  let mem = Array.make msize 0 in
  exec_mem
    [| { op = St; rd = 0; rs1 = 0; rs2 = 1 }; { op = Ld; rd = 2; rs1 = 0; rs2 = 0 } |]
    regs mem;
  Alcotest.(check int) "store+load roundtrip" 42 regs.(2);
  Alcotest.(check int) "memory written" 42 mem.(0);
  (* programs differing only in a memory side effect are NOT equivalent *)
  let store = [| { op = St; rd = 0; rs1 = 0; rs2 = 1 } |] in
  let nothing = [| { op = Mov; rd = 0; rs1 = 0; rs2 = 0 } |] in
  Alcotest.(check bool) "memory effects distinguish" false
    (equivalent store nothing);
  (* ...and a store is equivalent to itself *)
  Alcotest.(check bool) "store self-equivalent" true (equivalent store store)

(* --- webserver (Tables 7 and 8) --- *)

let web_params = { Webserver.pages = 8; page_bytes = 256; requests = 64 }

let web_correct_all_configs () =
  List.iter
    (fun config ->
      let r = Webserver.run ~config ~mode web_params in
      Alcotest.(check int)
        (Printf.sprintf "[%s] bytes served" config.Config.name)
        (web_params.page_bytes / 8 * 8 * web_params.requests)
        r.Webserver.bytes_served)
    Config.all

let web_shape () =
  let run config = (Webserver.run ~config ~mode web_params).Webserver.stats in
  let s_site = run Config.site in
  let s_cycle = run Config.site_cycle in
  let s_full = run Config.site_reuse_cycle in
  (* Table 8: both cycle-free directions -> zero lookups *)
  Alcotest.(check int) "no cycle lookups" 0 s_cycle.Metrics.cycle_lookups;
  Alcotest.(check bool) "lookups without elision" true
    (s_site.Metrics.cycle_lookups > 0);
  (* half local, half remote *)
  Alcotest.(check int) "even split" s_full.Metrics.local_rpcs
    s_full.Metrics.remote_rpcs;
  (* with reuse, allocation settles: only the first traversal of each
     (site, direction) allocates *)
  Alcotest.(check bool) "reuse recycles" true (s_full.Metrics.reused_objs > 0);
  Alcotest.(check bool) "allocation nearly vanishes" true
    (s_full.Metrics.allocs * 4 < s_site.Metrics.allocs)

(* --- analysis decisions match the paper's narrative --- *)

let analysis_decisions () =
  let decision compiled site =
    match Rmi_core.Optimizer.decision_for compiled.App_common.opt site with
    | Some d -> d
    | None -> Alcotest.fail "no decision"
  in
  let open Rmi_core in
  (* linked list: cyclic (false positive), reusable *)
  let d = decision (Linked_list.compiled ()) (Linked_list.callsite ()) in
  Alcotest.(check bool) "list may be cyclic" false d.Optimizer.args_acyclic;
  Alcotest.(check bool) "list reusable" true
    (Escape_analysis.is_reusable d.Optimizer.arg_escape.(0));
  (* 2d array: acyclic and reusable (Figure 13) *)
  let d = decision (Array_bench.compiled ()) (Array_bench.callsite ()) in
  Alcotest.(check bool) "array acyclic" true d.Optimizer.args_acyclic;
  Alcotest.(check bool) "array reusable" true
    (Escape_analysis.is_reusable d.Optimizer.arg_escape.(0));
  (* LU: acyclic, args reusable, return (stored into matrix) not *)
  let d = decision (Lu.compiled ()) (Lu.callsite ()) in
  Alcotest.(check bool) "lu acyclic" true d.Optimizer.args_acyclic;
  Array.iter
    (fun v ->
      Alcotest.(check bool) "lu arg reusable" true (Escape_analysis.is_reusable v))
    d.Optimizer.arg_escape;
  Alcotest.(check bool) "lu return not reusable" false
    (Escape_analysis.is_reusable d.Optimizer.ret_escape);
  (* superoptimizer: acyclic, queued argument not reusable *)
  let accept_site, _ = Superopt.callsites () in
  let d = decision (Superopt.compiled ()) accept_site in
  Alcotest.(check bool) "superopt acyclic" true d.Optimizer.args_acyclic;
  Alcotest.(check bool) "superopt arg escapes" false
    (Escape_analysis.is_reusable d.Optimizer.arg_escape.(0));
  (* webserver: both directions cycle-free and reusable *)
  let d = decision (Webserver.compiled ()) (Webserver.callsite ()) in
  Alcotest.(check bool) "web args acyclic" true d.Optimizer.args_acyclic;
  Alcotest.(check bool) "web ret acyclic" true d.Optimizer.ret_acyclic;
  Alcotest.(check bool) "web url reusable" true
    (Escape_analysis.is_reusable d.Optimizer.arg_escape.(0));
  Alcotest.(check bool) "web page reusable" true
    (Escape_analysis.is_reusable d.Optimizer.ret_escape)

(* --- beyond two machines --- *)

let four_machine_webserver () =
  let r =
    Webserver.run ~machines:4 ~config:Config.site_reuse_cycle ~mode web_params
  in
  Alcotest.(check int) "bytes served"
    (web_params.page_bytes / 8 * 8 * web_params.requests)
    r.Webserver.bytes_served;
  let s = r.Webserver.stats in
  (* 1/4 of the requests land on the master's own slave *)
  Alcotest.(check bool) "local < remote" true
    (s.Metrics.local_rpcs * 2 < s.Metrics.remote_rpcs)

let four_machine_lu () =
  let r = Lu.run ~machines:4 ~config:Config.site_reuse_cycle ~mode lu_params in
  Alcotest.(check bool)
    (Printf.sprintf "residual %g" r.Lu.residual)
    true (r.Lu.residual < 1e-9)

let three_machine_superopt () =
  let r =
    Superopt.run ~machines:3 ~config:Config.site_reuse_cycle ~mode so_params
  in
  let baseline = Superopt.run ~config:Config.site_reuse_cycle ~mode so_params in
  Alcotest.(check int) "same matches as 2 machines"
    (List.length baseline.Superopt.matches)
    (List.length r.Superopt.matches)

(* --- parallel-mode spot check --- *)

let parallel_spot_check () =
  let r =
    Array_bench.run ~config:Config.site_reuse_cycle ~mode:Fabric.Parallel
      arr_params
  in
  let n = arr_params.Array_bench.n in
  let expected =
    float_of_int arr_params.Array_bench.repetitions
    *. (float_of_int ((n * n) * ((n * n) - 1)) /. 2.0)
  in
  Alcotest.(check (float 1e-6)) "parallel sum" expected r.Array_bench.sum_received

let suite =
  [
    ( "apps.linked_list",
      [
        Alcotest.test_case "correct under all configs" `Quick list_correct_all_configs;
        Alcotest.test_case "statistic shape (Table 1)" `Quick list_shape;
      ] );
    ( "apps.array",
      [
        Alcotest.test_case "correct under all configs" `Quick array_correct_all_configs;
        Alcotest.test_case "statistic shape (Table 2)" `Quick array_shape;
      ] );
    ( "apps.lu",
      [
        Alcotest.test_case "sequential 2x2" `Quick lu_sequential_sanity;
        Alcotest.test_case "matches sequential under all configs" `Quick
          lu_correct_all_configs;
        Alcotest.test_case "statistic shape (Table 4)" `Quick lu_shape;
      ] );
    ( "apps.superopt",
      [
        Alcotest.test_case "isa executes" `Quick isa_executes;
        Alcotest.test_case "isa equivalence" `Quick isa_equivalence;
        Alcotest.test_case "isa identity family" `Quick isa_identity_family;
        Alcotest.test_case "enumeration counts" `Quick isa_enumeration_counts;
        Alcotest.test_case "memory semantics" `Quick isa_memory_semantics;
        Alcotest.test_case "finds known equivalences" `Quick
          superopt_finds_known_equivalences;
        Alcotest.test_case "same matches under all configs" `Quick
          superopt_same_matches_all_configs;
        Alcotest.test_case "statistic shape (Table 6)" `Quick superopt_shape;
      ] );
    ( "apps.webserver",
      [
        Alcotest.test_case "correct under all configs" `Quick web_correct_all_configs;
        Alcotest.test_case "statistic shape (Table 8)" `Quick web_shape;
      ] );
    ( "apps.analysis",
      [ Alcotest.test_case "verdicts match the paper" `Quick analysis_decisions ] );
    ( "apps.parallel",
      [ Alcotest.test_case "domain-mode spot check" `Quick parallel_spot_check ] );
    ( "apps.scaling",
      [
        Alcotest.test_case "webserver on 4 machines" `Quick four_machine_webserver;
        Alcotest.test_case "LU on 4 machines" `Quick four_machine_lu;
        Alcotest.test_case "superopt on 3 machines" `Quick three_machine_superopt;
      ] );
  ]
