(* Builder, typechecker and reference-interpreter tests, including the
   RMI deep-copy parameter semantics the analyses must respect. *)

open Jir
module B = Builder

let build_arith () =
  let b = B.create () in
  let add2 = B.declare_method b ~name:"add2" ~params:[ Tint; Tint ] ~ret:Tint () in
  B.define b add2 (fun mb ->
      let s = B.binop mb Instr.Add (Var (B.param mb 0)) (Var (B.param mb 1)) in
      B.ret mb (Some (Var s)));
  let main = B.declare_method b ~name:"main" ~params:[] ~ret:Tint () in
  B.define b main (fun mb ->
      match B.call mb add2 [ Int 40; Int 2 ] with
      | Some r -> B.ret mb (Some (Var r))
      | None -> assert false);
  (B.finish b, main)

let interp_arith () =
  let prog, main = build_arith () in
  Typecheck.check_exn prog;
  let st = Interp.create prog in
  match Interp.run st main [] with
  | Interp.Vint 42 -> ()
  | v -> Alcotest.failf "expected 42, got %a" Interp.pp_value v

let interp_loop () =
  (* sum 0..9 via the structured loop helper *)
  let b = B.create () in
  let main = B.declare_method b ~name:"main" ~params:[] ~ret:Tint () in
  B.define b main (fun mb ->
      let acc = B.fresh mb Tint in
      B.move mb acc (Int 0);
      B.loop_up mb ~from:(Int 0) ~limit:(Int 10) (fun i ->
          let s = B.binop mb Instr.Add (Var acc) (Var i) in
          B.move mb acc (Var s));
      B.ret mb (Some (Var acc)));
  let prog = B.finish b in
  Typecheck.check_exn prog;
  let st = Interp.create prog in
  match Interp.run st main [] with
  | Interp.Vint 45 -> ()
  | v -> Alcotest.failf "expected 45, got %a" Interp.pp_value v

let interp_branches () =
  let b = B.create () in
  let abs = B.declare_method b ~name:"abs" ~params:[ Tint ] ~ret:Tint () in
  B.define b abs (fun mb ->
      let x = B.param mb 0 in
      let neg = B.binop mb Instr.Lt (Var x) (Int 0) in
      let result = B.fresh mb Tint in
      B.if_ mb (Var neg)
        (fun () ->
          let n = B.unop mb Instr.Neg (Var x) in
          B.move mb result (Var n))
        (fun () -> B.move mb result (Var x));
      B.ret mb (Some (Var result)));
  let prog = B.finish b in
  Typecheck.check_exn prog;
  let st = Interp.create prog in
  List.iter
    (fun (input, expect) ->
      match Interp.run st abs [ Interp.Vint input ] with
      | Interp.Vint v -> Alcotest.(check int) (Printf.sprintf "abs %d" input) expect v
      | v -> Alcotest.failf "expected int, got %a" Interp.pp_value v)
    [ (5, 5); (-5, 5); (0, 0); (-1, 1) ]

let interp_objects_and_fields () =
  let b = B.create () in
  let point = B.declare_class b "Point" in
  let fx = B.add_field b point "x" Tint in
  let fy = B.add_field b point "y" Tint in
  let main = B.declare_method b ~name:"main" ~params:[] ~ret:Tint () in
  B.define b main (fun mb ->
      let p = B.alloc mb point in
      B.store_field mb p fx (Int 3);
      B.store_field mb p fy (Int 4);
      let x = B.load_field mb p fx in
      let y = B.load_field mb p fy in
      let s = B.binop mb Instr.Add (Var x) (Var y) in
      B.ret mb (Some (Var s)));
  let prog = B.finish b in
  Typecheck.check_exn prog;
  match Interp.run (Interp.create prog) main [] with
  | Interp.Vint 7 -> ()
  | v -> Alcotest.failf "expected 7, got %a" Interp.pp_value v

let interp_inherited_fields () =
  let b = B.create () in
  let base = B.declare_class b "Base" in
  let fb = B.add_field b base "b" Tint in
  let derived = B.declare_class b ~super:base "Derived" in
  let fd = B.add_field b derived "d" Tint in
  let main = B.declare_method b ~name:"main" ~params:[] ~ret:Tint () in
  B.define b main (fun mb ->
      let o = B.alloc mb derived in
      B.store_field mb o fb (Int 10);
      B.store_field mb o fd (Int 32);
      let x = B.load_field mb o fb in
      let y = B.load_field mb o fd in
      let s = B.binop mb Instr.Add (Var x) (Var y) in
      B.ret mb (Some (Var s)));
  let prog = B.finish b in
  Typecheck.check_exn prog;
  Alcotest.(check int) "flat layout"
    1
    (Program.flat_index prog fd);
  match Interp.run (Interp.create prog) main [] with
  | Interp.Vint 42 -> ()
  | v -> Alcotest.failf "expected 42, got %a" Interp.pp_value v

(* The key semantic test: a remote call mutating its parameter must not
   affect the caller's object (deep copy), while a local call does. *)
let rmi_deep_copy_semantics () =
  let b = B.create () in
  let box = B.declare_class b "Box" in
  let fv = B.add_field b box "v" Tint in
  let svc = B.declare_class b ~remote:true "Svc" in
  let mutate =
    B.declare_method b ~owner:svc ~name:"Svc.mutate" ~params:[ Tobject box ]
      ~ret:Tvoid ()
  in
  B.define b mutate (fun mb -> B.store_field mb (B.param mb 0) fv (Int 99));
  let mutate_local =
    B.declare_method b ~name:"mutate_local" ~params:[ Tobject box ] ~ret:Tvoid ()
  in
  B.define b mutate_local (fun mb -> B.store_field mb (B.param mb 0) fv (Int 99));
  let via_rmi = B.declare_method b ~name:"via_rmi" ~params:[] ~ret:Tint () in
  B.define b via_rmi (fun mb ->
      let s = B.alloc mb svc in
      let o = B.alloc mb box in
      B.store_field mb o fv (Int 1);
      B.rcall_ignore mb (Var s) mutate [ Var o ];
      let v = B.load_field mb o fv in
      B.ret mb (Some (Var v)));
  let via_local = B.declare_method b ~name:"via_local" ~params:[] ~ret:Tint () in
  B.define b via_local (fun mb ->
      let o = B.alloc mb box in
      B.store_field mb o fv (Int 1);
      B.call_ignore mb mutate_local [ Var o ];
      let v = B.load_field mb o fv in
      B.ret mb (Some (Var v)));
  let prog = B.finish b in
  Typecheck.check_exn prog;
  let st = Interp.create prog in
  (match Interp.run st via_rmi [] with
  | Interp.Vint 1 -> ()
  | v -> Alcotest.failf "RMI must not mutate caller object, got %a" Interp.pp_value v);
  (match Interp.run st via_local [] with
  | Interp.Vint 99 -> ()
  | v -> Alcotest.failf "local call must mutate, got %a" Interp.pp_value v);
  Alcotest.(check int) "one remote call" 1 (Interp.remote_calls st)

let rmi_return_is_copy () =
  let b = B.create () in
  let box = B.declare_class b "Box" in
  let fv = B.add_field b box "v" Tint in
  let holder = B.declare_static b "holder" (Tobject box) in
  let svc = B.declare_class b ~remote:true "Svc" in
  let give =
    B.declare_method b ~owner:svc ~name:"Svc.give" ~params:[] ~ret:(Tobject box) ()
  in
  B.define b give (fun mb ->
      let o = B.alloc mb box in
      B.store_field mb o fv (Int 7);
      B.store_static mb holder (Var o);
      B.ret mb (Some (Var o)));
  let main = B.declare_method b ~name:"main" ~params:[] ~ret:Tint () in
  B.define b main (fun mb ->
      let s = B.alloc mb svc in
      match B.rcall mb (Var s) give [] with
      | Some got ->
          (* mutating the received copy must not affect the callee's
             object stashed in the static *)
          B.store_field mb got fv (Int 1000);
          let h = B.load_static mb holder in
          let v = B.load_field mb h fv in
          B.ret mb (Some (Var v))
      | None -> assert false);
  let prog = B.finish b in
  Typecheck.check_exn prog;
  match Interp.run (Interp.create prog) main [] with
  | Interp.Vint 7 -> ()
  | v -> Alcotest.failf "expected callee copy untouched (7), got %a" Interp.pp_value v

let deep_copy_preserves_sharing () =
  let open Interp in
  (* build diamond: root -> [x; x] *)
  let x = Vobj { ocls = 0; ofields = [| Vint 5 |]; oid = 1; osite = 0 } in
  let root = Varr { aelem = Tobject 0; adata = [| x; x |]; aid = 2; asite = 1 } in
  match deep_copy root with
  | Varr { adata = [| Vobj a; Vobj b |]; _ } ->
      Alcotest.(check bool) "sharing preserved" true (a == b);
      Alcotest.(check bool) "copied, not aliased" true
        (match x with Vobj o -> not (o == a) | _ -> false)
  | v -> Alcotest.failf "unexpected copy %a" pp_value v

let deep_copy_preserves_cycles () =
  let open Interp in
  let o = { ocls = 0; ofields = [| Vnull |]; oid = 10; osite = 0 } in
  o.ofields.(0) <- Vobj o;
  match deep_copy (Vobj o) with
  | Vobj c ->
      (match c.ofields.(0) with
      | Vobj c' -> Alcotest.(check bool) "cycle preserved" true (c == c')
      | v -> Alcotest.failf "expected self reference, got %a" pp_value v);
      Alcotest.(check bool) "value_equal across cycle" true
        (value_equal (Vobj o) (Vobj c))
  | v -> Alcotest.failf "unexpected copy %a" pp_value v

let typecheck_rejects_bad_programs () =
  (* remote call to a method of a non-remote class *)
  let b = B.create () in
  let plain = B.declare_class b "Plain" in
  let m =
    B.declare_method b ~owner:plain ~name:"Plain.m" ~params:[] ~ret:Tvoid ()
  in
  B.define b m (fun mb -> B.ret mb None);
  let main = B.declare_method b ~name:"main" ~params:[] ~ret:Tvoid () in
  B.define b main (fun mb ->
      let o = B.alloc mb plain in
      B.rcall_ignore mb (Var o) m [];
      B.ret mb None);
  let prog = B.finish b in
  match Typecheck.check prog with
  | [] -> Alcotest.fail "expected a typecheck error"
  | errs ->
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "mentions non-remote" true
        (List.exists
           (fun (e : Typecheck.error) -> contains e.what "non-remote")
           errs)

let typecheck_rejects_arity () =
  let b = B.create () in
  let f = B.declare_method b ~name:"f" ~params:[ Tint ] ~ret:Tvoid () in
  B.define b f (fun mb -> B.ret mb None);
  let main = B.declare_method b ~name:"main" ~params:[] ~ret:Tvoid () in
  B.define b main (fun mb ->
      B.call_ignore mb f [];
      B.ret mb None);
  let prog = B.finish b in
  Alcotest.(check bool) "arity error" true (Typecheck.check prog <> [])

let typecheck_accepts_fixtures () =
  List.iter
    (fun (name, prog) ->
      match Typecheck.check prog with
      | [] -> ()
      | errs ->
          Alcotest.failf "%s: %s" name
            (String.concat "; "
               (List.map (fun e -> Format.asprintf "%a" Typecheck.pp_error e) errs)))
    [
      ("fig2", (Fixtures.fig2 ()).f2_prog);
      ("fig3", (Fixtures.fig3 ()).f3_prog);
      ("fig5", (Fixtures.fig5 ()).f5_prog);
      ("fig8", (Fixtures.fig8 ()).s_prog);
      ("fig9", (Fixtures.fig9 ()).s_prog);
      ("fig10", (Fixtures.fig10 ()).s_prog);
      ("fig11", (Fixtures.fig11 ()).s_prog);
      ("linked_list", (Fixtures.linked_list ()).s_prog);
      ("array2d", (Fixtures.array2d ()).s_prog);
      ("returned_value", (Fixtures.returned_value ()).s_prog);
    ]

let builder_rejects_double_define () =
  let b = B.create () in
  let f = B.declare_method b ~name:"f" ~params:[] ~ret:Tvoid () in
  B.define b f (fun mb -> B.ret mb None);
  try
    B.define b f (fun mb -> B.ret mb None);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let builder_implicit_return_on_open_blocks () =
  (* blocks left open (e.g. the unreachable join after an if whose
     branches both return) get a zero-value return implicitly *)
  let b = B.create () in
  let f = B.declare_method b ~name:"f" ~params:[] ~ret:Tint () in
  B.define b f (fun _ -> ());
  let prog = B.finish b in
  Typecheck.check_exn prog;
  match Interp.run (Interp.create prog) f [] with
  | Interp.Vint 0 -> ()
  | v -> Alcotest.failf "expected implicit 0, got %a" Interp.pp_value v

let step_limit_guards_infinite_loops () =
  let b = B.create () in
  let main = B.declare_method b ~name:"main" ~params:[] ~ret:Tvoid () in
  B.define b main (fun mb ->
      let l = B.new_block mb in
      B.jmp mb l;
      B.switch_to mb l;
      B.jmp mb l);
  let prog = B.finish b in
  let st = Interp.create ~step_limit:1000 prog in
  Alcotest.check_raises "step limit" Interp.Step_limit_exceeded (fun () ->
      ignore (Interp.run st main []))

let suite =
  [
    ( "jir.interp",
      [
        Alcotest.test_case "arith + local call" `Quick interp_arith;
        Alcotest.test_case "structured loop" `Quick interp_loop;
        Alcotest.test_case "branches" `Quick interp_branches;
        Alcotest.test_case "objects and fields" `Quick interp_objects_and_fields;
        Alcotest.test_case "inherited field layout" `Quick interp_inherited_fields;
        Alcotest.test_case "RMI deep-copy semantics" `Quick rmi_deep_copy_semantics;
        Alcotest.test_case "RMI return is a copy" `Quick rmi_return_is_copy;
        Alcotest.test_case "deep copy preserves sharing" `Quick deep_copy_preserves_sharing;
        Alcotest.test_case "deep copy preserves cycles" `Quick deep_copy_preserves_cycles;
        Alcotest.test_case "step limit" `Quick step_limit_guards_infinite_loops;
      ] );
    ( "jir.typecheck",
      [
        Alcotest.test_case "rejects remote call to plain class" `Quick
          typecheck_rejects_bad_programs;
        Alcotest.test_case "rejects arity mismatch" `Quick typecheck_rejects_arity;
        Alcotest.test_case "accepts all paper fixtures" `Quick typecheck_accepts_fixtures;
      ] );
    ( "jir.builder",
      [
        Alcotest.test_case "rejects double define" `Quick builder_rejects_double_define;
        Alcotest.test_case "implicit return for open blocks" `Quick
          builder_implicit_return_on_open_blocks;
      ] );
  ]
