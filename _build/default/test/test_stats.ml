(* Metrics and table-rendering tests. *)

module Metrics = Rmi_stats.Metrics
module Ascii_table = Rmi_stats.Ascii_table

let counters_accumulate () =
  let m = Metrics.create () in
  Metrics.incr_remote_rpcs m;
  Metrics.incr_remote_rpcs m;
  Metrics.incr_local_rpcs m;
  Metrics.add_reused_objs m 10;
  Metrics.add_new_bytes m 1024;
  Metrics.add_cycle_lookups m 3;
  Metrics.incr_ser_invocations m;
  Metrics.incr_msgs_sent m;
  Metrics.add_bytes_sent m 256;
  Metrics.add_type_bytes m 7;
  Metrics.incr_allocs m;
  let s = Metrics.snapshot m in
  Alcotest.(check int) "remote" 2 s.Metrics.remote_rpcs;
  Alcotest.(check int) "local" 1 s.Metrics.local_rpcs;
  Alcotest.(check int) "reused" 10 s.Metrics.reused_objs;
  Alcotest.(check int) "new bytes" 1024 s.Metrics.new_bytes;
  Alcotest.(check int) "cycle" 3 s.Metrics.cycle_lookups;
  Alcotest.(check int) "ser" 1 s.Metrics.ser_invocations;
  Alcotest.(check int) "msgs" 1 s.Metrics.msgs_sent;
  Alcotest.(check int) "bytes" 256 s.Metrics.bytes_sent;
  Alcotest.(check int) "type bytes" 7 s.Metrics.type_bytes;
  Alcotest.(check int) "allocs" 1 s.Metrics.allocs

let reset_zeroes () =
  let m = Metrics.create () in
  Metrics.add_bytes_sent m 100;
  Metrics.reset m;
  Alcotest.(check bool) "zero after reset" true (Metrics.snapshot m = Metrics.zero)

let diff_and_merge () =
  let m = Metrics.create () in
  Metrics.add_bytes_sent m 100;
  let s1 = Metrics.snapshot m in
  Metrics.add_bytes_sent m 50;
  Metrics.incr_allocs m;
  let s2 = Metrics.snapshot m in
  let d = Metrics.diff s2 s1 in
  Alcotest.(check int) "diff bytes" 50 d.Metrics.bytes_sent;
  Alcotest.(check int) "diff allocs" 1 d.Metrics.allocs;
  let merged = Metrics.merge s1 d in
  Alcotest.(check bool) "merge restores" true (merged = s2)

let concurrent_updates () =
  (* atomic counters must not lose updates across domains *)
  let m = Metrics.create () in
  let worker () =
    for _ = 1 to 10_000 do
      Metrics.incr_msgs_sent m
    done
  in
  let d = Domain.spawn worker in
  worker ();
  Domain.join d;
  Alcotest.(check int) "no lost updates" 20_000
    (Metrics.snapshot m).Metrics.msgs_sent

let table_renders_aligned () =
  let s =
    Ascii_table.render ~headers:[ "name"; "value" ]
      [ [ "alpha"; "1" ]; [ "b"; "20000" ] ]
  in
  let lines = String.split_on_char '\n' s in
  let widths = List.map String.length (List.filter (fun l -> l <> "") lines) in
  (match widths with
  | w :: rest -> List.iter (fun w' -> Alcotest.(check int) "equal widths" w w') rest
  | [] -> Alcotest.fail "no output");
  Alcotest.(check bool) "contains header" true
    (let rec has i =
       i + 4 <= String.length s && (String.sub s i 4 = "name" || has (i + 1))
     in
     has 0)

let table_rejects_ragged_rows () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Ascii_table.render ~headers:[ "a"; "b" ] [ [ "only-one" ] ]);
       false
     with Invalid_argument _ -> true)

let table_alignment_modes () =
  let s =
    Ascii_table.render ~headers:[ "l"; "r" ]
      ~aligns:[ Ascii_table.Left; Ascii_table.Right ]
      [ [ "x"; "1" ]; [ "yy"; "22" ] ]
  in
  (* right-aligned column pads on the left *)
  Alcotest.(check bool) "right aligned" true
    (let rec has i =
       i + 4 <= String.length s && (String.sub s i 4 = "|  1" || has (i + 1))
     in
     has 0)

let suite =
  [
    ( "stats.metrics",
      [
        Alcotest.test_case "counters accumulate" `Quick counters_accumulate;
        Alcotest.test_case "reset" `Quick reset_zeroes;
        Alcotest.test_case "diff/merge" `Quick diff_and_merge;
        Alcotest.test_case "concurrent updates" `Quick concurrent_updates;
      ] );
    ( "stats.table",
      [
        Alcotest.test_case "aligned output" `Quick table_renders_aligned;
        Alcotest.test_case "ragged rows rejected" `Quick table_rejects_ragged_rows;
        Alcotest.test_case "alignment modes" `Quick table_alignment_modes;
      ] );
  ]
