(* CFG, dominance and SSA-construction tests.  SSA conversion must also
   preserve program behaviour — checked by interpreting before/after. *)

open Jir
module B = Builder
module Cfg = Rmi_ssa.Cfg
module Dominance = Rmi_ssa.Dominance
module Liveness = Rmi_ssa.Liveness

(* diamond CFG: entry -> (then | else) -> join *)
let diamond_method () =
  let b = B.create () in
  let f = B.declare_method b ~name:"f" ~params:[ Tbool ] ~ret:Tint () in
  B.define b f (fun mb ->
      let x = B.fresh mb Tint in
      B.if_ mb
        (Var (B.param mb 0))
        (fun () -> B.move mb x (Int 1))
        (fun () -> B.move mb x (Int 2));
      B.ret mb (Some (Var x)));
  (B.finish b, f)

let cfg_shape () =
  let prog, f = diamond_method () in
  let m = Program.method_decl prog f in
  let cfg = Cfg.of_method m in
  Alcotest.(check int) "4 blocks" 4 cfg.Cfg.nblocks;
  Alcotest.(check (list int)) "entry succs" [ 1; 2 ] cfg.Cfg.succs.(0);
  Alcotest.(check (list int)) "join preds" [ 1; 2 ]
    (List.sort compare cfg.Cfg.preds.(3));
  Alcotest.(check bool) "all reachable" true
    (List.for_all (Cfg.is_reachable cfg) [ 0; 1; 2; 3 ])

let dominance_diamond () =
  let prog, f = diamond_method () in
  let m = Program.method_decl prog f in
  let cfg = Cfg.of_method m in
  let dom = Dominance.compute cfg in
  Alcotest.(check (option int)) "idom entry" None (Dominance.idom dom 0);
  Alcotest.(check (option int)) "idom then" (Some 0) (Dominance.idom dom 1);
  Alcotest.(check (option int)) "idom else" (Some 0) (Dominance.idom dom 2);
  Alcotest.(check (option int)) "idom join" (Some 0) (Dominance.idom dom 3);
  Alcotest.(check bool) "entry dominates all" true
    (List.for_all (Dominance.dominates dom 0) [ 0; 1; 2; 3 ]);
  Alcotest.(check bool) "then does not dominate join" false
    (Dominance.dominates dom 1 3);
  Alcotest.(check (list int)) "DF(then) = {join}" [ 3 ] (Dominance.frontier dom 1);
  Alcotest.(check (list int)) "DF(else) = {join}" [ 3 ] (Dominance.frontier dom 2)

let ssa_places_phi_at_join () =
  let prog, f = diamond_method () in
  let m = Program.method_decl prog f in
  Rmi_ssa.Ssa.convert_method m;
  Alcotest.(check bool) "is ssa" true (Rmi_ssa.Ssa.is_ssa m);
  let join = m.Program.blocks.(3) in
  Alcotest.(check int) "one phi at join" 1 (List.length join.Instr.phis);
  match join.Instr.phis with
  | [ { Instr.pargs; _ } ] ->
      Alcotest.(check int) "two phi inputs" 2 (List.length pargs)
  | _ -> assert false

let ssa_preserves_behaviour_diamond () =
  let run_with b =
    let prog, f = diamond_method () in
    let m = Program.method_decl prog f in
    if b then Rmi_ssa.Ssa.convert_method m;
    let st = Interp.create prog in
    ( Interp.run st f [ Interp.Vbool true ],
      Interp.run st f [ Interp.Vbool false ] )
  in
  let before = run_with false and after = run_with true in
  Alcotest.(check bool) "same results" true (before = after);
  match after with
  | Interp.Vint 1, Interp.Vint 2 -> ()
  | _ -> Alcotest.fail "unexpected values"

let loop_method () =
  let b = B.create () in
  let f = B.declare_method b ~name:"sum_to" ~params:[ Tint ] ~ret:Tint () in
  B.define b f (fun mb ->
      let acc = B.fresh mb Tint in
      B.move mb acc (Int 0);
      B.loop_up mb ~from:(Int 0) ~limit:(Var (B.param mb 0)) (fun i ->
          let s = B.binop mb Instr.Add (Var acc) (Var i) in
          B.move mb acc (Var s));
      B.ret mb (Some (Var acc)));
  (B.finish b, f)

let ssa_preserves_behaviour_loop () =
  let prog, f = loop_method () in
  let m = Program.method_decl prog f in
  let st = Interp.create prog in
  let before = Interp.run st f [ Interp.Vint 10 ] in
  Rmi_ssa.Ssa.convert_method m;
  Alcotest.(check bool) "is ssa" true (Rmi_ssa.Ssa.is_ssa m);
  let st2 = Interp.create prog in
  let after = Interp.run st2 f [ Interp.Vint 10 ] in
  (match (before, after) with
  | Interp.Vint 45, Interp.Vint 45 -> ()
  | _ -> Alcotest.fail "loop result changed");
  (* a loop header needs phis for both i and acc *)
  let has_phi =
    Array.exists (fun (b : Instr.block) -> b.phis <> []) m.Program.blocks
  in
  Alcotest.(check bool) "loop has phis" true has_phi

let ssa_idempotent_on_straightline () =
  let b = B.create () in
  let f = B.declare_method b ~name:"f" ~params:[ Tint ] ~ret:Tint () in
  B.define b f (fun mb ->
      let x = B.binop mb Instr.Add (Var (B.param mb 0)) (Int 1) in
      B.ret mb (Some (Var x)));
  let prog = B.finish b in
  let m = Program.method_decl prog f in
  Alcotest.(check bool) "already ssa" true (Rmi_ssa.Ssa.is_ssa m);
  Rmi_ssa.Ssa.convert_method m;
  Alcotest.(check bool) "no phis added" true
    (Array.for_all (fun (b : Instr.block) -> b.Instr.phis = []) m.Program.blocks)

let liveness_loop () =
  let prog, f = loop_method () in
  let m = Program.method_decl prog f in
  let cfg = Cfg.of_method m in
  let live = Liveness.compute cfg m in
  (* the accumulator must be live into the loop header (block 1) *)
  let header_live = Liveness.live_in live 1 in
  Alcotest.(check bool) "acc live into header" true
    (not (Liveness.Int_set.is_empty header_live))

let whole_program_conversion () =
  let fx = Fixtures.fig3 () in
  Rmi_ssa.Ssa.convert fx.f3_prog;
  Array.iter
    (fun m ->
      Alcotest.(check bool)
        (Printf.sprintf "%s in ssa" m.Program.mname)
        true (Rmi_ssa.Ssa.is_ssa m))
    fx.f3_prog.Program.methods

let ssa_preserves_rmi_program () =
  (* run the fig3 loop before and after conversion: both must terminate
     and perform the same number of remote calls *)
  let fx = Fixtures.fig3 ~iterations:5 () in
  let st = Interp.create fx.f3_prog in
  ignore (Interp.run st fx.f3_zoo []);
  let before = Interp.remote_calls st in
  Rmi_ssa.Ssa.convert fx.f3_prog;
  let st2 = Interp.create fx.f3_prog in
  ignore (Interp.run st2 fx.f3_zoo []);
  Alcotest.(check int) "same rmi count" before (Interp.remote_calls st2);
  Alcotest.(check int) "5 rmis" 5 before

let suite =
  [
    ( "ssa.cfg",
      [
        Alcotest.test_case "diamond shape" `Quick cfg_shape;
        Alcotest.test_case "dominance" `Quick dominance_diamond;
      ] );
    ( "ssa.construction",
      [
        Alcotest.test_case "phi at join" `Quick ssa_places_phi_at_join;
        Alcotest.test_case "behaviour preserved (diamond)" `Quick
          ssa_preserves_behaviour_diamond;
        Alcotest.test_case "behaviour preserved (loop)" `Quick
          ssa_preserves_behaviour_loop;
        Alcotest.test_case "no phis on straightline code" `Quick
          ssa_idempotent_on_straightline;
        Alcotest.test_case "whole-program conversion" `Quick whole_program_conversion;
        Alcotest.test_case "RMI program preserved" `Quick ssa_preserves_rmi_program;
      ] );
    ( "ssa.liveness",
      [ Alcotest.test_case "accumulator live into loop" `Quick liveness_loop ] );
  ]
