(* Coverage for the smaller public surfaces: pretty printers, program
   helpers, dominance on loopy CFGs, heap-graph utilities, and config
   lookup. *)

open Jir
module B = Builder
module HG = Rmi_core.Heap_graph
module Int_set = HG.Int_set

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* --- pretty printer --- *)

let pretty_prints_program () =
  let fx = Fixtures.fig5 () in
  let s = Format.asprintf "@[<v>%a@]" Pretty.pp_program fx.f5_prog in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("mentions " ^ needle) true (contains s needle))
    [ "class Base"; "class Derived1 extends Base"; "remote class Work";
      "rcall"; "new Derived2" ]

let pretty_prints_ssa_phis () =
  let fx = Fixtures.fig3 () in
  Rmi_ssa.Ssa.convert fx.f3_prog;
  let zoo = Program.method_decl fx.f3_prog fx.f3_zoo in
  let s = Pretty.method_to_string fx.f3_prog zoo in
  Alcotest.(check bool) "shows phi" true (contains s "phi(");
  Alcotest.(check bool) "shows callsite" true (contains s "callsite")

(* --- program helpers --- *)

let three_level_hierarchy () =
  let b = B.create () in
  let a = B.declare_class b "A" in
  let fa = B.add_field b a "fa" Tint in
  let b2 = B.declare_class b ~super:a "B" in
  let fb = B.add_field b b2 "fb" Tint in
  let c = B.declare_class b ~super:b2 "C" in
  let fc = B.add_field b c "fc" Tint in
  let m = B.declare_method b ~name:"noop" ~params:[] ~ret:Tvoid () in
  B.define b m (fun mb -> B.ret mb None);
  (B.finish b, a, b2, c, fa, fb, fc)

let flat_layout_three_levels () =
  let prog, _, _, c, fa, fb, fc = three_level_hierarchy () in
  Alcotest.(check int) "fa at 0" 0 (Program.flat_index prog fa);
  Alcotest.(check int) "fb at 1" 1 (Program.flat_index prog fb);
  Alcotest.(check int) "fc at 2" 2 (Program.flat_index prog fc);
  Alcotest.(check int) "C has 3 flat fields" 3
    (Array.length (Program.all_fields prog c))

let subclass_and_assignability () =
  let prog, a, b2, c, _, _, _ = three_level_hierarchy () in
  Alcotest.(check bool) "C <= A" true (Program.is_subclass prog ~sub:c ~super:a);
  Alcotest.(check bool) "A <= C fails" false
    (Program.is_subclass prog ~sub:a ~super:c);
  Alcotest.(check bool) "C assignable to B" true
    (Program.assignable prog ~src:(Tobject c) ~dst:(Tobject b2));
  (* arrays are invariant *)
  Alcotest.(check bool) "C[] not assignable to A[]" false
    (Program.assignable prog ~src:(Tarray (Tobject c)) ~dst:(Tarray (Tobject a)))

let find_field_through_chain () =
  let prog, _, _, c, _, _, _ = three_level_hierarchy () in
  (match Program.find_field prog c "fa" with
  | Some fld ->
      Alcotest.(check int) "fa declared by A" 0 fld.Types.fcls;
      Alcotest.(check int) "flat position" 0 (Program.flat_index prog fld)
  | None -> Alcotest.fail "fa not found");
  Alcotest.(check bool) "missing field" true
    (Program.find_field prog c "nope" = None)

let remote_method_listing () =
  let fx = Fixtures.fig8 () in
  let remotes = Program.remote_methods fx.s_prog in
  Alcotest.(check int) "one remote method" 1 (List.length remotes);
  Alcotest.(check string) "it is Work.bar" "Work.bar"
    (List.hd remotes).Program.mname

(* --- dominance on a loop --- *)

let dominance_on_loop () =
  let b = B.create () in
  let f = B.declare_method b ~name:"f" ~params:[ Tint ] ~ret:Tint () in
  B.define b f (fun mb ->
      let acc = B.fresh mb Tint in
      B.move mb acc (Int 0);
      B.loop_up mb ~from:(Int 0) ~limit:(Var (B.param mb 0)) (fun i ->
          let s = B.binop mb Instr.Add (Var acc) (Var i) in
          B.move mb acc (Var s));
      B.ret mb (Some (Var acc)));
  let prog = B.finish b in
  let m = Program.method_decl prog f in
  let cfg = Rmi_ssa.Cfg.of_method m in
  let dom = Rmi_ssa.Dominance.compute cfg in
  (* the loop header (block 1, target of the back edge) dominates the
     body and the exit *)
  let header = 1 in
  Alcotest.(check bool) "header has 2 preds" true
    (List.length cfg.Rmi_ssa.Cfg.preds.(header) = 2);
  Array.iteri
    (fun bi _ ->
      if Rmi_ssa.Cfg.is_reachable cfg bi && bi <> 0 then
        Alcotest.(check bool)
          (Printf.sprintf "entry dominates L%d" bi)
          true
          (Rmi_ssa.Dominance.dominates dom 0 bi))
    m.Program.blocks;
  (* the back-edge source is dominated by the header *)
  List.iter
    (fun p ->
      Alcotest.(check bool) "header dominates back-edge source" true
        (Rmi_ssa.Dominance.dominates dom header p || p = 0))
    cfg.Rmi_ssa.Cfg.preds.(header)

let is_ssa_detects_double_assign () =
  let b = B.create () in
  let f = B.declare_method b ~name:"f" ~params:[] ~ret:Tint () in
  B.define b f (fun mb ->
      let x = B.fresh mb Tint in
      B.move mb x (Int 1);
      B.move mb x (Int 2);
      B.ret mb (Some (Var x)));
  let prog = B.finish b in
  Alcotest.(check bool) "not ssa" false
    (Rmi_ssa.Ssa.is_ssa (Program.method_decl prog f))

(* --- heap graph utilities --- *)

let heap_graph_utilities () =
  let g = HG.create () in
  let a = HG.add_node g ~phys:0 ~ty:(Tobject 0) in
  let b = HG.add_node g ~phys:1 ~ty:(Tobject 0) in
  let c = HG.add_node g ~phys:2 ~ty:(Tobject 0) in
  Alcotest.(check bool) "edge added" true (HG.add_edge g ~src:a ~key:(HG.Field 0) ~dst:b);
  Alcotest.(check bool) "edge dedup" false (HG.add_edge g ~src:a ~key:(HG.Field 0) ~dst:b);
  ignore (HG.add_edge g ~src:b ~key:(HG.Field 0) ~dst:c);
  ignore (HG.add_edge g ~src:c ~key:(HG.Field 0) ~dst:a);
  (* reachability through the cycle terminates and is complete *)
  let r = HG.reachable g (Int_set.singleton a) in
  Alcotest.(check int) "all three reachable" 3 (Int_set.cardinal r);
  (* predecessors *)
  let preds = HG.predecessors_of_set g (Int_set.singleton b) in
  Alcotest.(check bool) "a precedes b" true (Int_set.mem a preds);
  Alcotest.(check bool) "c does not" false (Int_set.mem c preds);
  (* printing renders every node *)
  let s = Format.asprintf "@[<v>%a@]" HG.pp g in
  Alcotest.(check bool) "mentions node 2" true (contains s "node 2")

let heap_graph_dot_export () =
  let fx = Fixtures.array2d () in
  Rmi_ssa.Ssa.convert fx.s_prog;
  let r = Rmi_core.Heap_analysis.analyze fx.s_prog in
  let dot =
    HG.to_dot ~names:(Program.class_name fx.s_prog)
      (Rmi_core.Heap_analysis.graph r)
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("dot mentions " ^ needle) true (contains dot needle))
    [ "digraph heap"; "double[][]"; "ArrayBench"; "->" ]

let heap_graph_rejects_bad_nodes () =
  let g = HG.create () in
  Alcotest.(check bool) "bad node" true
    (try
       ignore (HG.node g 3);
       false
     with Invalid_argument _ -> true)

(* --- runtime config lookup --- *)

let config_lookup () =
  List.iter
    (fun (c : Rmi_runtime.Config.t) ->
      match Rmi_runtime.Config.find c.Rmi_runtime.Config.name with
      | Some c' -> Alcotest.(check string) "roundtrip" c.name c'.Rmi_runtime.Config.name
      | None -> Alcotest.failf "missing %s" c.name)
    Rmi_runtime.Config.all;
  Alcotest.(check bool) "unknown" true (Rmi_runtime.Config.find "nope" = None)

(* --- plan pretty printing --- *)

let plan_pretty () =
  let fx = Fixtures.linked_list () in
  Rmi_ssa.Ssa.convert fx.s_prog;
  let r = Rmi_core.Heap_analysis.analyze fx.s_prog in
  let cs = List.hd (Rmi_core.Heap_analysis.callsites r) in
  let plan = Rmi_core.Codegen.plan_for r cs in
  let s = Format.asprintf "%a" Rmi_core.Plan.pp plan in
  Alcotest.(check bool) "shows recursion" true (contains s "rec#");
  Alcotest.(check bool) "shows cycle flag" true (contains s "cycle_args=true")

let suite =
  [
    ( "internals.pretty",
      [
        Alcotest.test_case "program printer" `Quick pretty_prints_program;
        Alcotest.test_case "ssa phis printed" `Quick pretty_prints_ssa_phis;
        Alcotest.test_case "plan printer" `Quick plan_pretty;
      ] );
    ( "internals.program",
      [
        Alcotest.test_case "three-level flat layout" `Quick flat_layout_three_levels;
        Alcotest.test_case "subclassing and assignability" `Quick
          subclass_and_assignability;
        Alcotest.test_case "find_field through chain" `Quick find_field_through_chain;
        Alcotest.test_case "remote method listing" `Quick remote_method_listing;
      ] );
    ( "internals.ssa",
      [
        Alcotest.test_case "dominance on a loop" `Quick dominance_on_loop;
        Alcotest.test_case "is_ssa detects double assign" `Quick
          is_ssa_detects_double_assign;
      ] );
    ( "internals.heap_graph",
      [
        Alcotest.test_case "utilities" `Quick heap_graph_utilities;
        Alcotest.test_case "dot export" `Quick heap_graph_dot_export;
        Alcotest.test_case "bad node rejected" `Quick heap_graph_rejects_bad_nodes;
      ] );
    ( "internals.config",
      [ Alcotest.test_case "lookup" `Quick config_lookup ] );
  ]
