(** The numbers printed in the paper's Tables 1–8, transcribed for the
    paper-vs-measured rendering.  Dots in the paper's statistics tables
    are thousands separators (e.g. "545.192" local rpcs = 545,192). *)

(** Timing tables: [(config row label, seconds)] in paper row order.
    [table7_us_per_page] is µs per webpage retrieval. *)

val table1_seconds : (string * float) list
val table2_seconds : (string * float) list
val table3_seconds : (string * float) list
val table5_seconds : (string * float) list
val table7_us_per_page : (string * float) list

(** One row of a statistics table (Tables 4, 6, 8). *)
type stats_row = {
  cfg : string;
  reused_objs : int;
  local_rpcs : int;
  remote_rpcs : int;
  new_mbytes : float;
  cycle_lookups : int;
}

val table4_stats : stats_row list
val table6_stats : stats_row list
val table8_stats : stats_row list

val seconds_for : (string * float) list -> string -> float option

(** Gain over the table's ["class"] row, percent. *)
val gain_over_class : (string * float) list -> string -> float option
