lib/harness/experiment.mli: Paper_data Rmi_runtime Rmi_stats
