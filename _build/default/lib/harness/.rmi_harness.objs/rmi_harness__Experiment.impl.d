lib/harness/experiment.ml: Float Fun List Paper_data Printf Rmi_apps Rmi_net Rmi_runtime Rmi_stats String
