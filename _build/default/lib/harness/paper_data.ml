(* The numbers printed in the paper's Tables 1-8, used by the harness
   to show paper-vs-measured side by side.  Dots in the paper are
   thousands separators (e.g. "545.192" local rpcs = 545,192). *)

(* (config name, seconds) in paper row order *)
let table1_seconds =
  [
    ("class", 161.5); ("site", 140.4); ("site + cycle", 140.5);
    ("site + reuse", 91.5); ("site + reuse + cycle", 91.5);
  ]

let table2_seconds =
  [
    ("class", 130.5); ("site", 110.0); ("site + cycle", 97.5);
    ("site + reuse", 103.0); ("site + reuse + cycle", 91.5);
  ]

let table3_seconds =
  [
    ("class", 79.81); ("site", 69.23); ("site + cycle", 66.88);
    ("site + reuse", 67.28); ("site + reuse + cycle", 64.85);
  ]

let table5_seconds =
  [
    ("class", 400.03); ("site", 373.22); ("site + cycle", 322.52);
    ("site + reuse", 375.47); ("site + reuse + cycle", 322.06);
  ]

(* Table 7 is microseconds per webpage *)
let table7_us_per_page =
  [
    ("class", 47.7); ("site", 39.2); ("site + cycle", 30.9);
    ("site + reuse", 38.0); ("site + reuse + cycle", 29.7);
  ]

type stats_row = {
  cfg : string;
  reused_objs : int;
  local_rpcs : int;
  remote_rpcs : int;
  new_mbytes : float;
  cycle_lookups : int;
}

let table4_stats =
  [
    { cfg = "class"; reused_objs = 0; local_rpcs = 545_192; remote_rpcs = 538_006; new_mbytes = 348.14; cycle_lookups = 176_998 };
    { cfg = "site"; reused_objs = 0; local_rpcs = 545_192; remote_rpcs = 538_006; new_mbytes = 348.14; cycle_lookups = 176_866 };
    { cfg = "site + cycle"; reused_objs = 0; local_rpcs = 545_192; remote_rpcs = 538_006; new_mbytes = 348.14; cycle_lookups = 2 };
    { cfg = "site + reuse"; reused_objs = 132_645; local_rpcs = 545_192; remote_rpcs = 538_006; new_mbytes = 87.04; cycle_lookups = 176_866 };
    { cfg = "site + reuse + cycle"; reused_objs = 132_645; local_rpcs = 545_192; remote_rpcs = 538_006; new_mbytes = 87.04; cycle_lookups = 2 };
  ]

let table6_stats =
  [
    { cfg = "class"; reused_objs = 0; local_rpcs = 5_250_554; remote_rpcs = 5_250_570; new_mbytes = 1101.0; cycle_lookups = 52_499_065 };
    { cfg = "site"; reused_objs = 0; local_rpcs = 5_250_554; remote_rpcs = 5_250_570; new_mbytes = 1101.0; cycle_lookups = 52_499_082 };
    { cfg = "site + cycle"; reused_objs = 0; local_rpcs = 5_250_554; remote_rpcs = 5_250_570; new_mbytes = 1101.0; cycle_lookups = 17 };
    { cfg = "site + reuse"; reused_objs = 2; local_rpcs = 5_250_554; remote_rpcs = 5_250_570; new_mbytes = 1101.0; cycle_lookups = 52_499_082 };
    { cfg = "site + reuse + cycle"; reused_objs = 2; local_rpcs = 5_250_554; remote_rpcs = 5_250_570; new_mbytes = 1101.0; cycle_lookups = 17 };
  ]

let table8_stats =
  [
    { cfg = "class"; reused_objs = 0; local_rpcs = 500_007; remote_rpcs = 500_003; new_mbytes = 226.94; cycle_lookups = 5_000_004 };
    { cfg = "site"; reused_objs = 0; local_rpcs = 500_007; remote_rpcs = 500_003; new_mbytes = 165.90; cycle_lookups = 3_500_003 };
    { cfg = "site + cycle"; reused_objs = 0; local_rpcs = 500_007; remote_rpcs = 500_003; new_mbytes = 165.90; cycle_lookups = 3 };
    { cfg = "site + reuse"; reused_objs = 3_499_988; local_rpcs = 500_007; remote_rpcs = 500_003; new_mbytes = 0.0; cycle_lookups = 3_500_003 };
    { cfg = "site + reuse + cycle"; reused_objs = 3_499_988; local_rpcs = 500_007; remote_rpcs = 500_003; new_mbytes = 0.0; cycle_lookups = 3 };
  ]

let seconds_for table cfg = List.assoc_opt cfg table

(* paper gain over 'class' in percent, from the paper's own seconds *)
let gain_over_class table cfg =
  match (List.assoc_opt "class" table, List.assoc_opt cfg table) with
  | Some base, Some v -> Some (100.0 *. (base -. v) /. base)
  | _ -> None
