open Jir

type decision = {
  cs : Heap_analysis.callsite_info;
  plan : Plan.t;
  args_acyclic : bool;
  ret_acyclic : bool;
  arg_escape : Escape_analysis.verdict array;
  ret_escape : Escape_analysis.verdict;
}

type t = {
  prog : Program.t;
  heap : Heap_analysis.result;
  decisions : decision list;
}

let run ?(config = Codegen.default_config) ?(simplify = false) prog =
  Typecheck.check_exn prog;
  Array.iter
    (fun m -> if not (Rmi_ssa.Ssa.is_ssa m) then Rmi_ssa.Ssa.convert_method m)
    prog.Program.methods;
  if simplify then ignore (Rmi_ssa.Optim.simplify prog);
  let heap = Heap_analysis.analyze prog in
  let decisions =
    List.map
      (fun cs ->
        {
          cs;
          plan = Codegen.plan_for ~config heap cs;
          args_acyclic =
            Cycle_analysis.args_verdict heap cs = Cycle_analysis.Acyclic;
          ret_acyclic =
            (not cs.Heap_analysis.has_dst)
            || Cycle_analysis.ret_verdict heap cs = Cycle_analysis.Acyclic;
          arg_escape = Escape_analysis.arg_verdicts heap cs;
          ret_escape = Escape_analysis.ret_verdict heap cs;
        })
      (Heap_analysis.callsites heap)
  in
  { prog; heap; decisions }

let decision_for t site =
  List.find_opt (fun d -> d.cs.Heap_analysis.cs_site = site) t.decisions

let plan_for_site t site ~nargs ~has_ret =
  match decision_for t site with
  | Some d -> d.plan
  | None -> Plan.generic ~callsite:site ~nargs ~has_ret

let report t =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "RMI optimizer report: %d remote call site(s), heap fixpoint in %d pass(es)\n"
    (List.length t.decisions)
    (Heap_analysis.iterations t.heap);
  List.iter
    (fun d ->
      let cs = d.cs in
      let caller = (Program.method_decl t.prog cs.caller).mname in
      let callee = (Program.method_decl t.prog cs.callee).mname in
      add "\ncallsite %d: %s -> %s%s\n" cs.cs_site caller callee
        (if cs.has_dst then "" else "  [return ignored -> ack-only reply]");
      add "  arguments : %s\n"
        (if Array.length cs.arg_sets = 0 then "(none)"
         else
           String.concat ", "
             (Array.to_list
                (Array.mapi
                   (fun i s ->
                     Printf.sprintf "arg%d{%s}" i
                       (String.concat ","
                          (List.map string_of_int
                             (Heap_analysis.Int_set.elements s))))
                   cs.arg_sets)));
      add "  cycles    : args %s, return %s\n"
        (if d.args_acyclic then "acyclic (cycle table removed)"
         else "may be cyclic (cycle table kept)")
        (if d.ret_acyclic then "acyclic" else "may be cyclic");
      Array.iteri
        (fun i v ->
          add "  reuse arg%d: %s\n" i
            (Format.asprintf "%a" Escape_analysis.pp_verdict v))
        d.arg_escape;
      if cs.has_dst then
        add "  reuse ret : %s\n"
          (Format.asprintf "%a" Escape_analysis.pp_verdict d.ret_escape);
      add "  plan      : %s\n" (Format.asprintf "%a" Plan.pp d.plan))
    t.decisions;
  Buffer.contents buf
