(** The compile-time heap approximation (paper Section 2, Figure 2).

    Nodes are *allocation numbers*: one per allocation site plus the
    clones manufactured when a heap subgraph flows across a remote
    call.  Each node carries the paper's tuple — its [logical] id is
    the node index, its [phys] component is the originating allocation
    site, fixed across cloning, and used only to stop the cloning
    data-flow cycle (Figure 4).  Edges are labelled by field (flat
    layout index) or by the array-element pseudo-field ["[]"]. *)

module Int_set : Set.S with type elt = int

type field_key =
  | Field of int  (** flat field index, see {!Jir.Program.flat_index} *)
  | Elem  (** array element *)

type t

type node_info = {
  logical : int;
  phys : int;  (** originating allocation site (the tuple's 2nd member) *)
  nty : Jir.Types.ty;  (** [Tobject _], [Tarray _] or [Tstring] *)
}

val create : unit -> t

(** [add_node t ~phys ~ty] appends a fresh node (logical number =
    index). *)
val add_node : t -> phys:int -> ty:Jir.Types.ty -> int

val node : t -> int -> node_info
val num_nodes : t -> int

(** [add_edge t ~src ~key ~dst] returns [true] iff the edge was new. *)
val add_edge : t -> src:int -> key:field_key -> dst:int -> bool

(** [union_edges t ~src ~key dsts] adds many targets; [true] iff any
    was new. *)
val union_edges : t -> src:int -> key:field_key -> Int_set.t -> bool

val targets : t -> int -> field_key -> Int_set.t

(** All (key, targets) pairs out of a node. *)
val out_edges : t -> int -> (field_key * Int_set.t) list

(** Everything reachable from [roots] (inclusive). *)
val reachable : t -> Int_set.t -> Int_set.t

(** Nodes with an edge into any node of the given set. *)
val predecessors_of_set : t -> Int_set.t -> Int_set.t

val pp : Format.formatter -> t -> unit

(** Graphviz rendering of the heap approximation (the paper's Figure 2
    as a picture).  [names] maps class ids to names, [field_name]
    resolves labels; defaults print raw ids. *)
val to_dot :
  ?names:(Jir.Types.class_id -> string) ->
  ?field_name:(int -> string) ->
  t ->
  string
