(** Call-site marshaler generation (paper Section 3.1, Figures 6/13).

    Walks the heap graph from a call site's argument (and return) sets
    and emits an inlined {!Plan.step} wherever the analysis proves a
    unique concrete class; falls back to {!Plan.S_dyn} on type
    ambiguity, recursive types, or when the inlining budget is
    exceeded (the paper notes some inlinings are "rejected due to
    method size"). *)

type config = {
  max_inline_depth : int;  (** nesting depth of inlined objects *)
  max_plan_size : int;  (** per-value step budget before S_dyn fallback *)
}

val default_config : config

(** Step for one value given its static type and points-to set. *)
val step_for :
  ?config:config ->
  Heap_analysis.result ->
  Jir.Types.ty ->
  Heap_analysis.Int_set.t ->
  Plan.step

(** Full plan for a call site, combining the step generation with the
    cycle and escape verdicts. *)
val plan_for :
  ?config:config -> Heap_analysis.result -> Heap_analysis.callsite_info -> Plan.t
