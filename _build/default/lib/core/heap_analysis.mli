(** The paper's RMI-specific heap analysis (Section 2).

    A flow-insensitive allocation-site points-to fixpoint over the SSA
    form of every method:

    + every allocation site becomes a heap-graph node (its own
      physical number);
    + assignments/phis/local calls copy allocation-number sets;
    + field stores/loads add and follow labelled graph edges;
    + a {b remote} call clones the argument (and return-value) heap
      subgraphs to model RMI's deep-copy parameter semantics.  Cloning
      keys on the {e physical} allocation number per call site and
      direction, which is exactly the paper's (logical, physical) tuple
      trick of Figure 4: the first crossing clones, later crossings
      reuse the clone, so the data-flow loop of Figure 3 terminates.

    The program must already be in SSA form ({!Rmi_ssa.Ssa.convert});
    [analyze] checks this. *)

module Int_set = Heap_graph.Int_set

type callsite_info = {
  cs_site : Jir.Types.site;
  caller : Jir.Types.method_id;
  callee : Jir.Types.method_id;
  arg_operands : Jir.Instr.operand array;
  arg_sets : Int_set.t array;  (** caller-side points-to sets per argument *)
  param_clone_sets : Int_set.t array;  (** callee-side cloned roots *)
  ret_set : Int_set.t;  (** callee-side return set *)
  ret_clone_set : Int_set.t;  (** caller-side cloned return roots *)
  has_dst : bool;  (** false = the call site ignores the return value *)
}

(** How [Remote_call] edges are modelled (paper Section 2):
    [`Clone] is the paper's deep-copy transfer with (logical, physical)
    tuples; [`Share] is the naive treatment — remote formals alias the
    caller's nodes, exactly the "naive (but wrong) solution" the paper
    warns about.  [`Share] exists for the ablation tests/benches that
    reproduce that argument; everything else uses [`Clone]. *)
type remote_semantics = [ `Clone | `Share ]

type result

(** @raise Invalid_argument if some method is not in SSA form. *)
val analyze : ?remote_semantics:remote_semantics -> Jir.Program.t -> result

val graph : result -> Heap_graph.t
val program : result -> Jir.Program.t

(** Points-to set of a variable (SSA name) of a method. *)
val var_set : result -> Jir.Types.method_id -> Jir.Types.var -> Int_set.t

val static_set : result -> Jir.Types.static_id -> Int_set.t

(** Union of the sets of every [Ret] operand of the method. *)
val return_set : result -> Jir.Types.method_id -> Int_set.t

val callsites : result -> callsite_info list
val callsite : result -> Jir.Types.site -> callsite_info option

(** Set of a (possibly constant) operand as seen in [meth]. *)
val operand_set : result -> Jir.Types.method_id -> Jir.Instr.operand -> Int_set.t

(** Methods reachable from [mid] through {e local} calls, including
    [mid] itself — the unit escape analysis scans for stores. *)
val local_call_closure : result -> Jir.Types.method_id -> Jir.Types.method_id list

(** Number of fixpoint passes it took to stabilise (diagnostics). *)
val iterations : result -> int
