lib/core/heap_analysis.mli: Heap_graph Jir
