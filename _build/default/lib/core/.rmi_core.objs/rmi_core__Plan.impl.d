lib/core/plan.ml: Array Format Jir String
