lib/core/plan.mli: Format Jir
