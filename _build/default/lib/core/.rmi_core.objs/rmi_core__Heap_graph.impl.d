lib/core/heap_graph.ml: Array Buffer Format Int Jir List Map Printf Set String
