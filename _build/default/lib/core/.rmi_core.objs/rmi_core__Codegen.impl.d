lib/core/codegen.ml: Array Cycle_analysis Escape_analysis Heap_analysis Heap_graph Jir List Plan Program Types
