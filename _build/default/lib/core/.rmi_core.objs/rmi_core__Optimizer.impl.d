lib/core/optimizer.ml: Array Buffer Codegen Cycle_analysis Escape_analysis Format Heap_analysis Jir List Plan Printf Program Rmi_ssa String Typecheck
