lib/core/cycle_analysis.ml: Array Format Heap_analysis Heap_graph List
