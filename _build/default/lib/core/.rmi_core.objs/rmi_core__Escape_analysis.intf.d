lib/core/escape_analysis.mli: Format Heap_analysis
