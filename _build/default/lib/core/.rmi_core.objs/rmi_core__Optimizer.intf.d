lib/core/optimizer.mli: Codegen Escape_analysis Heap_analysis Jir Plan
