lib/core/escape_analysis.ml: Array Format Heap_analysis Heap_graph Instr Jir List Printf Program
