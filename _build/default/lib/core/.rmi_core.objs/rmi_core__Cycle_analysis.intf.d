lib/core/cycle_analysis.mli: Format Heap_analysis Heap_graph
