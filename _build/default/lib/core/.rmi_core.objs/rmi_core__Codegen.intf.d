lib/core/codegen.mli: Heap_analysis Jir Plan
