lib/core/heap_analysis.ml: Array Fun Hashtbl Heap_graph Instr Jir List Option Printf Program Rmi_ssa Types
