lib/core/heap_graph.mli: Format Jir Set
