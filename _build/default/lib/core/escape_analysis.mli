(** RMI-specific escape analysis (paper Section 3.3).

    Argument reuse is legal when the deserialized argument graph — and,
    recursively, everything it refers to — does not escape the remote
    method: then the next invocation may overwrite the same objects in
    place.  Return-value reuse is the symmetric property at the caller.

    A node set escapes its RMI when any node reachable from it
    + is reachable from a static variable (Figure 11),
    + is (part of) the method's return value,
    + is the source of a reference store executed by the method or a
      local callee (storing the argument into longer-lived state, e.g.
      the superoptimizer's work queue), or
    + is passed onward as the argument of another remote call.

    Following the paper, escape also propagates {e upward}: an object
    escapes if any object it refers to escapes, because recycling the
    parent would resurrect shared children. *)

type verdict = Reusable | Escapes of string
(** The payload names the first reason found, for the analysis report. *)

val pp_verdict : Format.formatter -> verdict -> unit
val is_reusable : verdict -> bool

(** [arg_verdicts r cs] one verdict per argument of the call site,
    judged in the callee's context ([param_clone_sets]).  Non-reference
    arguments are trivially [Reusable] but irrelevant. *)
val arg_verdicts : Heap_analysis.result -> Heap_analysis.callsite_info -> verdict array

(** Return-value reuse judged in the caller's context
    ([ret_clone_set]). Call sites that ignore the return value report
    [Reusable] vacuously. *)
val ret_verdict : Heap_analysis.result -> Heap_analysis.callsite_info -> verdict
