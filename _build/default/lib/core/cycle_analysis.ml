module Int_set = Heap_analysis.Int_set

type verdict = Acyclic | May_be_cyclic

let pp_verdict ppf = function
  | Acyclic -> Format.pp_print_string ppf "acyclic"
  | May_be_cyclic -> Format.pp_print_string ppf "may-be-cyclic"

(* The paper's rule, literally: walk the graphs rooted at the argument
   list; the moment an allocation number is encountered for the second
   time, give up and keep runtime cycle detection. *)
let of_roots graph roots =
  let seen = ref Int_set.empty in
  let cyclic = ref false in
  let rec visit n =
    if not !cyclic then
      if Int_set.mem n !seen then cyclic := true
      else begin
        seen := Int_set.add n !seen;
        List.iter
          (fun (_, tgts) -> Int_set.iter visit tgts)
          (Heap_graph.out_edges graph n)
      end
  in
  List.iter
    (fun root_set ->
      (* a root set with several possible allocation numbers is walked
         number by number; sharing across possibilities counts *)
      Int_set.iter visit root_set)
    roots;
  if !cyclic then May_be_cyclic else Acyclic

let args_verdict r (cs : Heap_analysis.callsite_info) =
  of_roots (Heap_analysis.graph r) (Array.to_list cs.arg_sets)

let ret_verdict r (cs : Heap_analysis.callsite_info) =
  of_roots (Heap_analysis.graph r) [ cs.ret_set ]
