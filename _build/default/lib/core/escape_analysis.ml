open Jir
module Int_set = Heap_analysis.Int_set

type verdict = Reusable | Escapes of string

let pp_verdict ppf = function
  | Reusable -> Format.pp_print_string ppf "reusable"
  | Escapes why -> Format.fprintf ppf "escapes (%s)" why

let is_reusable = function Reusable -> true | Escapes _ -> false

let static_reachable r =
  let prog = Heap_analysis.program r in
  let roots =
    Array.to_list prog.Program.statics
    |> List.fold_left
         (fun acc (s : Program.static_decl) ->
           Int_set.union acc (Heap_analysis.static_set r s.sid))
         Int_set.empty
  in
  Heap_graph.reachable (Heap_analysis.graph r) roots

(* Reference stores and outgoing remote-call arguments executed by any
   method in [mids] whose source set intersects [target]. *)
let escaping_use r mids target =
  let prog = Heap_analysis.program r in
  let hit = ref None in
  let check mid what op =
    if !hit = None then
      let set = Heap_analysis.operand_set r mid op in
      if not (Int_set.is_empty (Int_set.inter set target)) then
        hit :=
          Some
            (Printf.sprintf "%s in %s" what (Program.method_decl prog mid).mname)
  in
  List.iter
    (fun mid ->
      let m = Program.method_decl prog mid in
      Array.iter
        (fun (blk : Instr.block) ->
          List.iter
            (fun instr ->
              match instr with
              | Instr.Store_field { src; _ } -> check mid "stored into a field" src
              | Instr.Store_elem { src; _ } ->
                  check mid "stored into an array" src
              | Instr.Store_static { src; _ } ->
                  check mid "stored into a static" src
              | Instr.Remote_call { args; _ } ->
                  List.iter (check mid "forwarded over another RMI") args
              | _ -> ())
            blk.body)
        m.blocks)
    mids;
  !hit

let judge r ~context_methods ~returned_by ~roots =
  let g = Heap_analysis.graph r in
  let closure = Heap_graph.reachable g roots in
  if Int_set.is_empty roots then Reusable
  else if not (Int_set.is_empty (Int_set.inter closure (static_reachable r)))
  then Escapes "reachable from a static variable"
  else
    let ret_closure = Heap_graph.reachable g returned_by in
    if not (Int_set.is_empty (Int_set.inter closure ret_closure)) then
      Escapes "part of the return value"
    else
      match escaping_use r context_methods closure with
      | Some why -> Escapes why
      | None -> Reusable

let arg_verdicts r (cs : Heap_analysis.callsite_info) =
  let context_methods = Heap_analysis.local_call_closure r cs.callee in
  let returned_by = Heap_analysis.return_set r cs.callee in
  Array.map
    (fun clones -> judge r ~context_methods ~returned_by ~roots:clones)
    cs.param_clone_sets

let ret_verdict r (cs : Heap_analysis.callsite_info) =
  if not cs.has_dst then Reusable
  else
    let context_methods = Heap_analysis.local_call_closure r cs.caller in
    let returned_by = Heap_analysis.return_set r cs.caller in
    judge r ~context_methods ~returned_by ~roots:cs.ret_clone_set
