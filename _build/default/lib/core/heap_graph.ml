module Int_set = Set.Make (Int)

type field_key = Field of int | Elem

module Key_map = Map.Make (struct
  type t = field_key

  let compare a b =
    match (a, b) with
    | Field x, Field y -> compare x y
    | Elem, Elem -> 0
    | Field _, Elem -> -1
    | Elem, Field _ -> 1
end)

type node_info = { logical : int; phys : int; nty : Jir.Types.ty }

type node_state = { info : node_info; mutable edges : Int_set.t Key_map.t }

type t = { mutable nodes : node_state array; mutable count : int }

let create () = { nodes = [||]; count = 0 }

let grow t =
  let cap = Array.length t.nodes in
  if t.count >= cap then begin
    let ncap = max 16 (cap * 2) in
    let dummy =
      { info = { logical = -1; phys = -1; nty = Jir.Types.Tvoid }; edges = Key_map.empty }
    in
    let fresh = Array.make ncap dummy in
    Array.blit t.nodes 0 fresh 0 t.count;
    t.nodes <- fresh
  end

let add_node t ~phys ~ty =
  grow t;
  let logical = t.count in
  t.nodes.(logical) <- { info = { logical; phys; nty = ty }; edges = Key_map.empty };
  t.count <- logical + 1;
  logical

let state t n =
  if n < 0 || n >= t.count then
    invalid_arg (Printf.sprintf "Heap_graph: bad node %d" n);
  t.nodes.(n)

let node t n = (state t n).info
let num_nodes t = t.count

let add_edge t ~src ~key ~dst =
  let s = state t src in
  ignore (state t dst);
  let existing =
    match Key_map.find_opt key s.edges with Some set -> set | None -> Int_set.empty
  in
  if Int_set.mem dst existing then false
  else begin
    s.edges <- Key_map.add key (Int_set.add dst existing) s.edges;
    true
  end

let union_edges t ~src ~key dsts =
  Int_set.fold (fun d changed -> add_edge t ~src ~key ~dst:d || changed) dsts false

let targets t n key =
  match Key_map.find_opt key (state t n).edges with
  | Some set -> set
  | None -> Int_set.empty

let out_edges t n = Key_map.bindings (state t n).edges

let reachable t roots =
  let rec go visited frontier =
    if Int_set.is_empty frontier then visited
    else
      let next =
        Int_set.fold
          (fun n acc ->
            List.fold_left
              (fun acc (_, tgts) -> Int_set.union acc tgts)
              acc (out_edges t n))
          frontier Int_set.empty
      in
      let fresh = Int_set.diff next visited in
      go (Int_set.union visited fresh) fresh
  in
  go roots roots

let predecessors_of_set t set =
  let acc = ref Int_set.empty in
  for n = 0 to t.count - 1 do
    List.iter
      (fun (_, tgts) ->
        if not (Int_set.is_empty (Int_set.inter tgts set)) then
          acc := Int_set.add n !acc)
      (out_edges t n)
  done;
  !acc

let pp ppf t =
  for n = 0 to t.count - 1 do
    let s = t.nodes.(n) in
    Format.fprintf ppf "@[<h>node %d (phys %d, %s):" n s.info.phys
      (Jir.Types.ty_to_string s.info.nty);
    Key_map.iter
      (fun key tgts ->
        let kname = match key with Field i -> Printf.sprintf ".%d" i | Elem -> "[]" in
        Format.fprintf ppf " %s->{%s}" kname
          (String.concat ","
             (List.map string_of_int (Int_set.elements tgts))))
      s.edges;
    Format.fprintf ppf "@]@,"
  done

let to_dot ?(names = fun c -> Printf.sprintf "C%d" c)
    ?(field_name = fun i -> Printf.sprintf ".%d" i) t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "digraph heap {\n  node [shape=box, fontname=\"monospace\"];\n";
  for n = 0 to t.count - 1 do
    let info = (state t n).info in
    let tyname =
      Format.asprintf "%a" (Jir.Types.pp_ty ~names) info.nty
    in
    Buffer.add_string buf
      (Printf.sprintf "  n%d [label=\"Allocation %d\\n%s (site %d)\"];\n" n n
         tyname info.phys)
  done;
  for n = 0 to t.count - 1 do
    List.iter
      (fun (key, tgts) ->
        let label = match key with Field i -> field_name i | Elem -> "[]" in
        Int_set.iter
          (fun d ->
            Buffer.add_string buf
              (Printf.sprintf "  n%d -> n%d [label=\"%s\"];\n" n d label))
          tgts)
      (out_edges t n)
  done;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
