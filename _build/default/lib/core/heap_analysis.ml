open Jir
module Int_set = Heap_graph.Int_set

type callsite_info = {
  cs_site : Types.site;
  caller : Types.method_id;
  callee : Types.method_id;
  arg_operands : Instr.operand array;
  arg_sets : Int_set.t array;
  param_clone_sets : Int_set.t array;
  ret_set : Int_set.t;
  ret_clone_set : Int_set.t;
  has_dst : bool;
}

type remote_semantics = [ `Clone | `Share ]

type direction = Dir_args | Dir_ret

type state = {
  prog : Program.t;
  semantics : remote_semantics;
  graph : Heap_graph.t;
  site_node : int array;  (* site -> node, -1 if not yet created *)
  var_sets : Int_set.t array array;  (* method -> var -> set *)
  static_sets : Int_set.t array;
  ret_sets : Int_set.t array;  (* method -> set *)
  clone_maps : (Types.site * direction, (int, int) Hashtbl.t) Hashtbl.t;
  mutable changed : bool;
  mutable passes : int;
}

type result = { st : state; mutable cs : callsite_info list }

let node_for_site st site ty =
  if st.site_node.(site) >= 0 then st.site_node.(site)
  else begin
    let n = Heap_graph.add_node st.graph ~phys:site ~ty in
    st.site_node.(site) <- n;
    st.changed <- true;
    n
  end

let add_to_var st mid v set =
  let cur = st.var_sets.(mid).(v) in
  let merged = Int_set.union cur set in
  if not (Int_set.equal cur merged) then begin
    st.var_sets.(mid).(v) <- merged;
    st.changed <- true
  end

let add_to_static st sid set =
  let cur = st.static_sets.(sid) in
  let merged = Int_set.union cur set in
  if not (Int_set.equal cur merged) then begin
    st.static_sets.(sid) <- merged;
    st.changed <- true
  end

let add_to_ret st mid set =
  let cur = st.ret_sets.(mid) in
  let merged = Int_set.union cur set in
  if not (Int_set.equal cur merged) then begin
    st.ret_sets.(mid) <- merged;
    st.changed <- true
  end

let eval st mid = function
  | Instr.Var v -> st.var_sets.(mid).(v)
  | Instr.Null | Instr.Bool _ | Instr.Int _ | Instr.Double _ | Instr.Str _ ->
      Int_set.empty

let clone_map st site dir =
  match Hashtbl.find_opt st.clone_maps (site, dir) with
  | Some m -> m
  | None ->
      let m = Hashtbl.create 16 in
      Hashtbl.add st.clone_maps (site, dir) m;
      m

(* The RMI deep-copy transfer: clone the subgraph reachable from [set]
   into the per-(callsite, direction) clone space.  Physical numbers are
   preserved and deduplicate clones — the paper's termination trick. *)
let clone_set st map set =
  let clone_node n =
    let info = Heap_graph.node st.graph n in
    match Hashtbl.find_opt map info.phys with
    | Some c -> c
    | None ->
        let c = Heap_graph.add_node st.graph ~phys:info.phys ~ty:info.nty in
        Hashtbl.add map info.phys c;
        st.changed <- true;
        c
  in
  let r = Heap_graph.reachable st.graph set in
  (* first ensure all clones exist, then mirror the edges (idempotent;
     re-run every pass so clones track late-appearing edges) *)
  Int_set.iter (fun n -> ignore (clone_node n)) r;
  Int_set.iter
    (fun n ->
      let c = clone_node n in
      List.iter
        (fun (key, tgts) ->
          Int_set.iter
            (fun t ->
              let ct = clone_node t in
              if Heap_graph.add_edge st.graph ~src:c ~key ~dst:ct then
                st.changed <- true)
            tgts)
        (Heap_graph.out_edges st.graph n))
    r;
  Int_set.map (fun n -> clone_node n) set

let field_key st fld = Heap_graph.Field (Program.flat_index st.prog fld)

let transfer_instr st (m : Program.method_decl) instr =
  let mid = m.mid in
  let eval = eval st mid in
  match instr with
  | Instr.Alloc { dst; cls; site } ->
      add_to_var st mid dst (Int_set.singleton (node_for_site st site (Tobject cls)))
  | Instr.Alloc_array { dst; elem; site; _ } ->
      add_to_var st mid dst (Int_set.singleton (node_for_site st site (Tarray elem)))
  | Instr.New_str { dst; site; _ } ->
      add_to_var st mid dst (Int_set.singleton (node_for_site st site Tstring))
  | Instr.Move { dst; src } -> add_to_var st mid dst (eval src)
  | Instr.Unop _ | Instr.Binop _ | Instr.Array_length _ -> ()
  | Instr.Load_field { dst; obj; fld } ->
      let key = field_key st fld in
      Int_set.iter
        (fun n -> add_to_var st mid dst (Heap_graph.targets st.graph n key))
        st.var_sets.(mid).(obj)
  | Instr.Store_field { obj; fld; src } ->
      let key = field_key st fld in
      let srcs = eval src in
      Int_set.iter
        (fun n ->
          if Heap_graph.union_edges st.graph ~src:n ~key srcs then
            st.changed <- true)
        st.var_sets.(mid).(obj)
  | Instr.Load_static { dst; st = sid } -> add_to_var st mid dst st.static_sets.(sid)
  | Instr.Store_static { st = sid; src } -> add_to_static st sid (eval src)
  | Instr.Load_elem { dst; arr; _ } ->
      Int_set.iter
        (fun n -> add_to_var st mid dst (Heap_graph.targets st.graph n Heap_graph.Elem))
        st.var_sets.(mid).(arr)
  | Instr.Store_elem { arr; src; _ } ->
      let srcs = eval src in
      Int_set.iter
        (fun n ->
          if Heap_graph.union_edges st.graph ~src:n ~key:Heap_graph.Elem srcs then
            st.changed <- true)
        st.var_sets.(mid).(arr)
  | Instr.Call { dst; meth; args; _ } -> (
      List.iteri (fun i arg -> add_to_var st meth i (eval arg)) args;
      match dst with
      | Some d -> add_to_var st mid d st.ret_sets.(meth)
      | None -> ())
  | Instr.Remote_call { dst; meth; args; site; _ } -> (
      match st.semantics with
      | `Clone -> (
          (* arguments: deep-copy transfer into the callee's formals *)
          let amap = clone_map st site Dir_args in
          List.iteri
            (fun i arg ->
              let cloned = clone_set st amap (eval arg) in
              add_to_var st meth i cloned)
            args;
          (* return value: deep-copy transfer back into the caller *)
          match dst with
          | Some d ->
              let rmap = clone_map st site Dir_ret in
              let cloned = clone_set st rmap st.ret_sets.(meth) in
              add_to_var st mid d cloned
          | None -> ())
      | `Share -> (
          (* the paper's naive treatment: behave like a local call —
             wrong for RMI, kept for the Section 2 ablation *)
          List.iteri (fun i arg -> add_to_var st meth i (eval arg)) args;
          match dst with
          | Some d -> add_to_var st mid d st.ret_sets.(meth)
          | None -> ()))

let transfer_method st (m : Program.method_decl) =
  Array.iter
    (fun (blk : Instr.block) ->
      List.iter
        (fun (phi : Instr.phi) ->
          List.iter
            (fun (_, op) -> add_to_var st m.mid phi.pdst (eval st m.mid op))
            phi.pargs)
        blk.phis;
      List.iter (fun i -> transfer_instr st m i) blk.body;
      match blk.term with
      | Instr.Ret (Some op) -> add_to_ret st m.mid (eval st m.mid op)
      | Instr.Ret None | Instr.Jmp _ | Instr.Br _ -> ())
    m.blocks

let max_passes = 1000

let collect_callsites st =
  let acc = ref [] in
  Program.iter_instrs st.prog (fun m _ instr ->
      match instr with
      | Instr.Remote_call { dst; meth; args; site; _ } ->
          let arg_operands = Array.of_list args in
          let arg_sets = Array.map (eval st m.mid) arg_operands in
          let ret_set = st.ret_sets.(meth) in
          let param_clone_sets, ret_clone_set =
            match st.semantics with
            | `Clone ->
                let amap = clone_map st site Dir_args in
                let map_clones set =
                  Int_set.filter_map
                    (fun n ->
                      Hashtbl.find_opt amap (Heap_graph.node st.graph n).phys)
                    set
                in
                let rmap = clone_map st site Dir_ret in
                ( Array.map map_clones arg_sets,
                  Int_set.filter_map
                    (fun n ->
                      Hashtbl.find_opt rmap (Heap_graph.node st.graph n).phys)
                    ret_set )
            | `Share ->
                (* naive mode: formals alias the caller's nodes *)
                (Array.map Fun.id arg_sets, ret_set)
          in
          acc :=
            {
              cs_site = site;
              caller = m.mid;
              callee = meth;
              arg_operands;
              arg_sets;
              param_clone_sets;
              ret_set;
              ret_clone_set;
              has_dst = Option.is_some dst;
            }
            :: !acc
      | _ -> ());
  List.rev !acc

let analyze ?(remote_semantics = `Clone) prog =
  Array.iter
    (fun m ->
      if not (Rmi_ssa.Ssa.is_ssa m) then
        invalid_arg
          (Printf.sprintf "Heap_analysis.analyze: method %s is not in SSA form"
             m.Program.mname))
    prog.Program.methods;
  let st =
    {
      prog;
      semantics = remote_semantics;
      graph = Heap_graph.create ();
      site_node = Array.make (max 1 prog.num_sites) (-1);
      var_sets =
        Array.map
          (fun (m : Program.method_decl) ->
            Array.make (Array.length m.var_types) Int_set.empty)
          prog.methods;
      static_sets = Array.make (Array.length prog.statics) Int_set.empty;
      ret_sets = Array.make (Array.length prog.methods) Int_set.empty;
      clone_maps = Hashtbl.create 16;
      changed = true;
      passes = 0;
    }
  in
  while st.changed && st.passes < max_passes do
    st.changed <- false;
    st.passes <- st.passes + 1;
    Array.iter (transfer_method st) prog.methods
  done;
  if st.passes >= max_passes then
    failwith "Heap_analysis.analyze: fixpoint did not converge";
  { st; cs = collect_callsites st }

let graph r = r.st.graph
let program r = r.st.prog
let var_set r mid v = r.st.var_sets.(mid).(v)
let static_set r sid = r.st.static_sets.(sid)
let return_set r mid = r.st.ret_sets.(mid)
let callsites r = r.cs
let callsite r site = List.find_opt (fun c -> c.cs_site = site) r.cs
let operand_set r mid op = eval r.st mid op
let iterations r = r.st.passes

let local_call_closure r mid =
  let visited = Hashtbl.create 16 in
  let rec go mid =
    if not (Hashtbl.mem visited mid) then begin
      Hashtbl.add visited mid ();
      let m = Program.method_decl r.st.prog mid in
      Array.iter
        (fun (blk : Instr.block) ->
          List.iter
            (fun i ->
              match i with Instr.Call { meth; _ } -> go meth | _ -> ())
            blk.body)
        m.blocks
    end
  in
  go mid;
  Hashtbl.fold (fun k () acc -> k :: acc) visited []
