(** Static cycle detection over argument/return heap graphs
    (paper Section 3.2).

    The paper's conservative rule: traverse the heap graph rooted at
    the call's arguments, recording every allocation number
    encountered; if any number is seen twice the graph {e may} be
    cyclic and runtime cycle detection stays in.  This classifies true
    cycles (Figure 9), argument aliasing (Figure 8) {e and} DAG
    sharing as "may be cyclic" — and, as the paper's conclusion notes,
    also mis-classifies linked lists (one allocation site reached
    through itself) as cyclic. *)

type verdict = Acyclic | May_be_cyclic

val pp_verdict : Format.formatter -> verdict -> unit

(** [of_roots graph roots] applies the seen-twice rule to the subgraph
    reachable from the root list, in order (roots sharing a node count
    as a second encounter, as in Figure 8). *)
val of_roots : Heap_graph.t -> Heap_analysis.Int_set.t list -> verdict

(** Verdict for the argument list of a call site. *)
val args_verdict : Heap_analysis.result -> Heap_analysis.callsite_info -> verdict

(** Verdict for the return-value graph of a call site. *)
val ret_verdict : Heap_analysis.result -> Heap_analysis.callsite_info -> verdict
