(** Sun-RMI-style introspective serialization — the slowest baseline the
    paper mentions ("class specific serialization ... is better than
    dynamic introspection").

    Where the class-specific serializer ships a compact integer type
    id, this one ships the full class name (and, for the first
    occurrence in a stream, the field names) — mimicking Java
    serialization's class descriptors — and discovers the layout by
    looking the class up per object.  Used by the ablation benchmarks
    to quantify what per-class generation already buys before the
    paper's optimizations start. *)

type wctx
type rctx

val make_wctx : Class_meta.t -> Rmi_stats.Metrics.t -> wctx
val make_rctx : Class_meta.t -> Rmi_stats.Metrics.t -> rctx

val write : wctx -> Rmi_wire.Msgbuf.writer -> Value.t -> unit
val read : rctx -> Rmi_wire.Msgbuf.reader -> Value.t
