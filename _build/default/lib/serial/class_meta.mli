(** Runtime class metadata.

    The runtime needs, per class, its flat field layout (names and
    types, inherited fields first) and a compact wire type id.  Class
    ids equal JIR class ids so the compiler's plans index directly into
    this table; both cluster sides build it deterministically from the
    same source, so wire ids agree without a handshake. *)

type field = { fname : string; fty : Jir.Types.ty }

type cls = {
  cid : Jir.Types.class_id;
  cname : string;
  fields : field array;  (** flat layout: inherited first *)
}

type t

(** Derive the table (and wire-id registry) from a JIR program. *)
val of_program : Jir.Program.t -> t

(** Build a table by hand: [(name, flat fields)] in class-id order. *)
val make : (string * (string * Jir.Types.ty) list) list -> t

val cls : t -> Jir.Types.class_id -> cls
val num_classes : t -> int
val find : t -> string -> cls option

(** Wire type id of a class (equals its registration order). *)
val wire_id : t -> Jir.Types.class_id -> Rmi_wire.Typedesc.type_id

val of_wire_id : t -> Rmi_wire.Typedesc.type_id -> cls

(** Compact recursive encoding of an element/field type, used by the
    dynamic serializer for arrays of references. *)
val write_ty : t -> Rmi_wire.Msgbuf.writer -> Jir.Types.ty -> unit

val read_ty : t -> Rmi_wire.Msgbuf.reader -> Jir.Types.ty
