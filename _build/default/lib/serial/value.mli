(** Runtime values of the distributed object system.

    These are the values applications hand to the RMI runtime; they
    mirror the JIR type system (objects with flat field layout, typed
    arrays, immutable strings).  Every heap value carries a
    process-unique identity used by the serializer's cycle table.

    Double and int arrays use unboxed OCaml arrays so bulk
    (de)serialization can move whole slices — the payload path the
    paper's array benchmark exercises. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Double of float
  | Str of string
  | Obj of obj
  | Darr of darr  (** double[] *)
  | Iarr of iarr  (** int[] *)
  | Rarr of rarr  (** arrays of references or booleans *)

and obj = { cls : Jir.Types.class_id; fields : t array; oid : int }
and darr = { d : float array; did : int }
and iarr = { ia : int array; iid : int }
and rarr = { relem : Jir.Types.ty; ra : t array; rid : int }

(** Fresh identity; thread-safe. *)
val fresh_id : unit -> int

(** [new_obj ~cls ~nfields] with all fields [Null]. *)
val new_obj : cls:Jir.Types.class_id -> nfields:int -> obj

val new_darr : int -> darr
val new_iarr : int -> iarr
val new_rarr : Jir.Types.ty -> int -> rarr

(** Identity of a heap value ([None] for immediates). *)
val identity : t -> int option

(** Approximate heap footprint in bytes (object header 16 + 8 per
    field/element), the unit of the paper's "new MBytes" statistic. *)
val byte_size : t -> int

(** Number of heap nodes (objects, arrays, strings) in the graph,
    counting shared nodes once. *)
val count_nodes : t -> int

val pp : Format.formatter -> t -> unit
