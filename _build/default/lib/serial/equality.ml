let equal a b =
  let assumed = Hashtbl.create 32 in
  let rec go (a : Value.t) (b : Value.t) =
    match (a, b) with
    | Value.Null, Value.Null -> true
    | Value.Bool x, Value.Bool y -> x = y
    | Value.Int x, Value.Int y -> x = y
    | Value.Double x, Value.Double y -> Float.equal x y
    | Value.Str x, Value.Str y -> String.equal x y
    | Value.Obj x, Value.Obj y ->
        x.cls = y.cls
        && Array.length x.fields = Array.length y.fields
        && pairwise x.oid y.oid (fun () ->
               let ok = ref true in
               Array.iteri
                 (fun i f -> if !ok then ok := go f y.fields.(i))
                 x.fields;
               !ok)
    | Value.Darr x, Value.Darr y ->
        Array.length x.d = Array.length y.d
        && pairwise x.did y.did (fun () ->
               let ok = ref true in
               Array.iteri
                 (fun i f -> if !ok then ok := Float.equal f y.d.(i))
                 x.d;
               !ok)
    | Value.Iarr x, Value.Iarr y ->
        x.ia = y.ia || pairwise x.iid y.iid (fun () -> x.ia = y.ia)
    | Value.Rarr x, Value.Rarr y ->
        Array.length x.ra = Array.length y.ra
        && pairwise x.rid y.rid (fun () ->
               let ok = ref true in
               Array.iteri (fun i e -> if !ok then ok := go e y.ra.(i)) x.ra;
               !ok)
    | _ -> false
  and pairwise ida idb body =
    if Hashtbl.mem assumed (ida, idb) then true
    else begin
      Hashtbl.add assumed (ida, idb) ();
      body ()
    end
  in
  go a b

let check ~expected ~actual =
  if equal expected actual then Ok ()
  else
    Error
      (Format.asprintf "@[<v>values differ:@ expected %a@ actual   %a@]"
         Value.pp expected Value.pp actual)
