open Rmi_wire

type field = { fname : string; fty : Jir.Types.ty }
type cls = { cid : Jir.Types.class_id; cname : string; fields : field array }
type t = { classes : cls array; registry : Typedesc.registry }

let build classes =
  let registry = Typedesc.create () in
  Array.iter (fun c -> ignore (Typedesc.register registry c.cname)) classes;
  { classes; registry }

let of_program (p : Jir.Program.t) =
  build
    (Array.map
       (fun (c : Jir.Program.class_decl) ->
         let flat = Jir.Program.all_fields p c.cid in
         {
           cid = c.cid;
           cname = c.cname;
           fields = Array.map (fun (fname, fty) -> { fname; fty }) flat;
         })
       p.classes)

let make specs =
  build
    (Array.of_list
       (List.mapi
          (fun cid (cname, fields) ->
            {
              cid;
              cname;
              fields =
                Array.of_list
                  (List.map (fun (fname, fty) -> { fname; fty }) fields);
            })
          specs))

let cls t cid =
  if cid < 0 || cid >= Array.length t.classes then
    invalid_arg (Printf.sprintf "Class_meta.cls: bad class id %d" cid);
  t.classes.(cid)

let num_classes t = Array.length t.classes
let find t name = Array.find_opt (fun c -> String.equal c.cname name) t.classes

let wire_id t cid =
  match Typedesc.id_of_name t.registry (cls t cid).cname with
  | Some id -> id
  | None -> assert false

let of_wire_id t id =
  match Typedesc.name_of_id t.registry id with
  | Some name -> (
      match find t name with Some c -> c | None -> assert false)
  | None ->
      raise (Msgbuf.Underflow (Printf.sprintf "unknown wire type id %d" id))

let rec write_ty t w = function
  | Jir.Types.Tbool -> Msgbuf.write_u8 w 0
  | Jir.Types.Tint -> Msgbuf.write_u8 w 1
  | Jir.Types.Tdouble -> Msgbuf.write_u8 w 2
  | Jir.Types.Tstring -> Msgbuf.write_u8 w 3
  | Jir.Types.Tobject cid ->
      Msgbuf.write_u8 w 4;
      Msgbuf.write_uvarint w (wire_id t cid)
  | Jir.Types.Tarray elem ->
      Msgbuf.write_u8 w 5;
      write_ty t w elem
  | Jir.Types.Tvoid -> invalid_arg "Class_meta.write_ty: void"

let rec read_ty t r =
  match Msgbuf.read_u8 r with
  | 0 -> Jir.Types.Tbool
  | 1 -> Jir.Types.Tint
  | 2 -> Jir.Types.Tdouble
  | 3 -> Jir.Types.Tstring
  | 4 -> Jir.Types.Tobject (of_wire_id t (Msgbuf.read_uvarint r)).cid
  | 5 -> Jir.Types.Tarray (read_ty t r)
  | n -> raise (Msgbuf.Underflow (Printf.sprintf "bad type code %d" n))
