lib/serial/equality.mli: Value
