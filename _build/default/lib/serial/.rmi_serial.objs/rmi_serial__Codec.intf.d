lib/serial/codec.mli: Class_meta Rmi_core Rmi_stats Rmi_wire Value
