lib/serial/class_meta.mli: Jir Rmi_wire
