lib/serial/equality.ml: Array Float Format Hashtbl String Value
