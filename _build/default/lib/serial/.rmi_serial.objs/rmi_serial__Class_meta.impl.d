lib/serial/class_meta.ml: Array Jir List Msgbuf Printf Rmi_wire String Typedesc
