lib/serial/value.ml: Array Atomic Format Hashtbl Jir String
