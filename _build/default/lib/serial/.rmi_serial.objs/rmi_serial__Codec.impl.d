lib/serial/codec.ml: Array Class_meta Handle_table Hashtbl Jir Msgbuf Printf Rmi_core Rmi_stats Rmi_wire String Typedesc Value
