lib/serial/introspect.mli: Class_meta Rmi_stats Rmi_wire Value
