lib/serial/value.mli: Format Jir
