lib/serial/introspect.ml: Array Class_meta Handle_table Hashtbl List Msgbuf Printf Rmi_stats Rmi_wire String Value
