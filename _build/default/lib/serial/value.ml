type t =
  | Null
  | Bool of bool
  | Int of int
  | Double of float
  | Str of string
  | Obj of obj
  | Darr of darr
  | Iarr of iarr
  | Rarr of rarr

and obj = { cls : Jir.Types.class_id; fields : t array; oid : int }
and darr = { d : float array; did : int }
and iarr = { ia : int array; iid : int }
and rarr = { relem : Jir.Types.ty; ra : t array; rid : int }

let counter = Atomic.make 0
let fresh_id () = Atomic.fetch_and_add counter 1

let new_obj ~cls ~nfields = { cls; fields = Array.make nfields Null; oid = fresh_id () }
let new_darr n = { d = Array.make n 0.0; did = fresh_id () }
let new_iarr n = { ia = Array.make n 0; iid = fresh_id () }
let new_rarr relem n = { relem; ra = Array.make n Null; rid = fresh_id () }

let identity = function
  | Obj o -> Some o.oid
  | Darr a -> Some a.did
  | Iarr a -> Some a.iid
  | Rarr a -> Some a.rid
  | Str _ | Null | Bool _ | Int _ | Double _ -> None

let shallow_bytes = function
  | Null | Bool _ | Int _ | Double _ -> 0
  | Str s -> 16 + String.length s
  | Obj o -> 16 + (8 * Array.length o.fields)
  | Darr a -> 16 + (8 * Array.length a.d)
  | Iarr a -> 16 + (8 * Array.length a.ia)
  | Rarr a -> 16 + (8 * Array.length a.ra)

let fold_graph f acc v =
  (* visit each heap node once, immediates every time they appear *)
  let seen = Hashtbl.create 16 in
  let rec go acc v =
    match identity v with
    | Some id when Hashtbl.mem seen id -> acc
    | Some id ->
        Hashtbl.add seen id ();
        let acc = f acc v in
        (match v with
        | Obj o -> Array.fold_left go acc o.fields
        | Rarr a -> Array.fold_left go acc a.ra
        | Darr _ | Iarr _ | Str _ | Null | Bool _ | Int _ | Double _ -> acc)
    | None -> (
        match v with
        | Str _ -> f acc v
        | Null | Bool _ | Int _ | Double _ -> acc
        | Obj _ | Darr _ | Iarr _ | Rarr _ -> assert false)
  in
  go acc v

let byte_size v = fold_graph (fun acc v -> acc + shallow_bytes v) 0 v
let count_nodes v = fold_graph (fun acc _ -> acc + 1) 0 v

let pp ppf v =
  let seen = Hashtbl.create 16 in
  let rec go ppf v =
    match v with
    | Null -> Format.pp_print_string ppf "null"
    | Bool b -> Format.pp_print_bool ppf b
    | Int i -> Format.pp_print_int ppf i
    | Double f -> Format.fprintf ppf "%g" f
    | Str s -> Format.fprintf ppf "%S" s
    | Obj o ->
        if Hashtbl.mem seen o.oid then Format.fprintf ppf "<#%d>" o.oid
        else begin
          Hashtbl.add seen o.oid ();
          Format.fprintf ppf "obj@%d(cls %d){%a}" o.oid o.cls
            (Format.pp_print_seq
               ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
               go)
            (Array.to_seq o.fields)
        end
    | Darr a ->
        Format.fprintf ppf "double[%d]" (Array.length a.d)
    | Iarr a -> Format.fprintf ppf "int[%d]" (Array.length a.ia)
    | Rarr a ->
        if Hashtbl.mem seen a.rid then Format.fprintf ppf "<#%d>" a.rid
        else begin
          Hashtbl.add seen a.rid ();
          Format.fprintf ppf "[%a]"
            (Format.pp_print_seq
               ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
               go)
            (Array.to_seq a.ra)
        end
  in
  go ppf v
