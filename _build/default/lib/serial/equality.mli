(** Graph-aware structural equality on runtime values.

    Object identities are ignored; cycles and sharing must be
    isomorphic (two values are equal when corresponding nodes pair up
    consistently).  The static element type annotation of reference
    arrays is {e not} compared — the deserializer may reconstruct it
    less precisely than the source — only shapes and payloads are. *)

val equal : Value.t -> Value.t -> bool

(** Alcotest-style checker with a diff-ish failure message. *)
val check : expected:Value.t -> actual:Value.t -> (unit, string) result
