open Rmi_wire
module Metrics = Rmi_stats.Metrics

(* wire codes *)
let k_null = 0
let k_bool = 1
let k_int = 2
let k_double = 3
let k_string = 4
let k_object_desc = 5 (* full class descriptor follows *)
let k_object_ref = 6 (* back-reference to an already-sent descriptor *)
let k_darr = 7
let k_iarr = 8
let k_rarr = 9
let k_handle = 10

type wctx = {
  wmeta : Class_meta.t;
  wmetrics : Metrics.t;
  wcycle : int Handle_table.t;  (* object identity -> handle *)
  sent_descs : (int, int) Hashtbl.t;  (* class id -> descriptor index *)
}

type rctx = {
  rmeta : Class_meta.t;
  rmetrics : Metrics.t;
  mutable handles : Value.t list;  (* reversed *)
  mutable nhandles : int;
  mutable descs : Class_meta.cls list;  (* reversed *)
  mutable ndescs : int;
}

let make_wctx wmeta wmetrics =
  {
    wmeta;
    wmetrics;
    wcycle = Handle_table.create ~metrics:wmetrics ();
    sent_descs = Hashtbl.create 8;
  }

let make_rctx rmeta rmetrics =
  { rmeta; rmetrics; handles = []; nhandles = 0; descs = []; ndescs = 0 }

let add_handle rctx v =
  rctx.handles <- v :: rctx.handles;
  rctx.nhandles <- rctx.nhandles + 1;
  Metrics.add_cycle_lookups rctx.rmetrics 1

let handle rctx idx =
  Metrics.add_cycle_lookups rctx.rmetrics 1;
  if idx < 0 || idx >= rctx.nhandles then
    raise (Msgbuf.Underflow (Printf.sprintf "bad handle %d" idx));
  List.nth rctx.handles (rctx.nhandles - 1 - idx)

(* writes the full java-ish class descriptor: name plus field names —
   this verbosity is exactly what KaRMI/Manta removed *)
let write_class_info wctx w cls =
  let before = Msgbuf.length w in
  (match Hashtbl.find_opt wctx.sent_descs cls with
  | Some idx ->
      Msgbuf.write_u8 w k_object_ref;
      Msgbuf.write_uvarint w idx
  | None ->
      let c = Class_meta.cls wctx.wmeta cls in
      Hashtbl.add wctx.sent_descs cls (Hashtbl.length wctx.sent_descs);
      Msgbuf.write_u8 w k_object_desc;
      Msgbuf.write_string w c.Class_meta.cname;
      Msgbuf.write_uvarint w (Array.length c.Class_meta.fields);
      Array.iter
        (fun (f : Class_meta.field) -> Msgbuf.write_string w f.Class_meta.fname)
        c.Class_meta.fields);
  Metrics.add_type_bytes wctx.wmetrics (Msgbuf.length w - before)

let check_seen wctx v =
  match Value.identity v with
  | None -> None
  | Some id -> (
      match Handle_table.lookup wctx.wcycle id with
      | Some h -> Some h
      | None ->
          Handle_table.add wctx.wcycle id (Handle_table.next_handle wctx.wcycle);
          None)

let rec write wctx w (v : Value.t) =
  let seen_or body =
    match check_seen wctx v with
    | Some h ->
        Msgbuf.write_u8 w k_handle;
        Msgbuf.write_uvarint w h
    | None ->
        Metrics.incr_ser_invocations wctx.wmetrics;
        body ()
  in
  match v with
  | Value.Null -> Msgbuf.write_u8 w k_null
  | Value.Bool b ->
      Msgbuf.write_u8 w k_bool;
      Msgbuf.write_bool w b
  | Value.Int i ->
      Msgbuf.write_u8 w k_int;
      Msgbuf.write_varint w i
  | Value.Double f ->
      Msgbuf.write_u8 w k_double;
      Msgbuf.write_double w f
  | Value.Str s ->
      Msgbuf.write_u8 w k_string;
      Msgbuf.write_string w s
  | Value.Obj o ->
      seen_or (fun () ->
          (* introspection: locate the class, walk its field table *)
          write_class_info wctx w o.cls;
          Array.iter (write wctx w) o.fields)
  | Value.Darr a ->
      seen_or (fun () ->
          Msgbuf.write_u8 w k_darr;
          Msgbuf.write_uvarint w (Array.length a.d);
          Msgbuf.write_double_slice w a.d 0 (Array.length a.d))
  | Value.Iarr a ->
      seen_or (fun () ->
          Msgbuf.write_u8 w k_iarr;
          Msgbuf.write_uvarint w (Array.length a.ia);
          Msgbuf.write_int_slice w a.ia 0 (Array.length a.ia))
  | Value.Rarr a ->
      seen_or (fun () ->
          Msgbuf.write_u8 w k_rarr;
          let before = Msgbuf.length w in
          Class_meta.write_ty wctx.wmeta w a.relem;
          Metrics.add_type_bytes wctx.wmetrics (Msgbuf.length w - before);
          Msgbuf.write_uvarint w (Array.length a.ra);
          Array.iter (write wctx w) a.ra)

(* shallow per-node accounting: children are charged when visited *)
let charge_alloc rctx (v : Value.t) =
  Metrics.incr_allocs rctx.rmetrics;
  Metrics.add_new_bytes rctx.rmetrics
    (match v with
    | Value.Str s -> 16 + String.length s
    | Value.Obj o -> 16 + (8 * Array.length o.fields)
    | Value.Darr a -> 16 + (8 * Array.length a.d)
    | Value.Iarr a -> 16 + (8 * Array.length a.ia)
    | Value.Rarr a -> 16 + (8 * Array.length a.ra)
    | Value.Null | Value.Bool _ | Value.Int _ | Value.Double _ -> 0)

let checked_len r n ~unit what =
  (* division avoids overflow for hostile 63-bit lengths *)
  if n < 0 || n > Msgbuf.remaining r / unit then
    raise (Msgbuf.Underflow (Printf.sprintf "%s: bad length %d" what n));
  n

let rec read rctx r : Value.t =
  match Msgbuf.read_u8 r with
  | c when c = k_null -> Value.Null
  | c when c = k_bool -> Value.Bool (Msgbuf.read_bool r)
  | c when c = k_int -> Value.Int (Msgbuf.read_varint r)
  | c when c = k_double -> Value.Double (Msgbuf.read_double r)
  | c when c = k_string ->
      let v = Value.Str (Msgbuf.read_string r) in
      charge_alloc rctx v;
      v
  | c when c = k_handle -> handle rctx (Msgbuf.read_uvarint r)
  | c when c = k_object_desc || c = k_object_ref ->
      (* put the code back conceptually: re-dispatch into read_class *)
      let saved = c in
      let cls =
        if saved = k_object_ref then begin
          let idx = Msgbuf.read_uvarint r in
          if idx < 0 || idx >= rctx.ndescs then
            raise (Msgbuf.Underflow "bad class descriptor ref");
          List.nth rctx.descs (rctx.ndescs - 1 - idx)
        end
        else begin
          let name = Msgbuf.read_string r in
          let nfields = Msgbuf.read_uvarint r in
          for _ = 1 to nfields do
            ignore (Msgbuf.read_string r)
          done;
          match Class_meta.find rctx.rmeta name with
          | Some cmeta ->
              rctx.descs <- cmeta :: rctx.descs;
              rctx.ndescs <- rctx.ndescs + 1;
              cmeta
          | None -> raise (Msgbuf.Underflow "unknown class")
        end
      in
      let o =
        Value.new_obj ~cls:cls.Class_meta.cid
          ~nfields:(Array.length cls.Class_meta.fields)
      in
      charge_alloc rctx (Value.Obj o);
      add_handle rctx (Value.Obj o);
      for i = 0 to Array.length o.fields - 1 do
        o.fields.(i) <- read rctx r
      done;
      Value.Obj o
  | c when c = k_darr ->
      let n = checked_len r (Msgbuf.read_uvarint r) ~unit:8 "double[]" in
      let a = Value.new_darr n in
      charge_alloc rctx (Value.Darr a);
      add_handle rctx (Value.Darr a);
      Msgbuf.read_double_slice r a.d 0 n;
      Value.Darr a
  | c when c = k_iarr ->
      let n = checked_len r (Msgbuf.read_uvarint r) ~unit:1 "int[]" in
      let a = Value.new_iarr n in
      charge_alloc rctx (Value.Iarr a);
      add_handle rctx (Value.Iarr a);
      Msgbuf.read_int_slice r a.ia 0 n;
      Value.Iarr a
  | c when c = k_rarr ->
      let relem = Class_meta.read_ty rctx.rmeta r in
      let n = checked_len r (Msgbuf.read_uvarint r) ~unit:1 "object[]" in
      let a = Value.new_rarr relem n in
      charge_alloc rctx (Value.Rarr a);
      add_handle rctx (Value.Rarr a);
      for i = 0 to n - 1 do
        a.ra.(i) <- read rctx r
      done;
      Value.Rarr a
  | c -> raise (Msgbuf.Underflow (Printf.sprintf "bad introspect code %d" c))
