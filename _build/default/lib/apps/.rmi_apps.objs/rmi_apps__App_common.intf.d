lib/apps/app_common.mli: Hashtbl Jir Rmi_core Rmi_runtime Rmi_serial Rmi_stats
