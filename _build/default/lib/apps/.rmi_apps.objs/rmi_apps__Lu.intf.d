lib/apps/lu.mli: App_common Rmi_runtime Rmi_stats
