lib/apps/linked_list.mli: App_common Rmi_runtime Rmi_stats
