lib/apps/webserver.ml: App_common Array Builder Hashtbl Jfront Jir Lazy Program Rmi_runtime Rmi_serial Rmi_stats
