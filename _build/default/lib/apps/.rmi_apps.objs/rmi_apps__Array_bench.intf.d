lib/apps/array_bench.mli: App_common Rmi_runtime Rmi_stats
