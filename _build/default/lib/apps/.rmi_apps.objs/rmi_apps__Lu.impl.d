lib/apps/lu.ml: App_common Array Builder Float Jfront Jir Lazy Program Rmi_runtime Rmi_serial Rmi_stats
