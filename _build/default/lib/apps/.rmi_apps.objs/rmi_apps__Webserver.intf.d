lib/apps/webserver.mli: App_common Rmi_runtime Rmi_stats
