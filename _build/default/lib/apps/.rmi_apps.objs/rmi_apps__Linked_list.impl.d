lib/apps/linked_list.ml: App_common Array Atomic Builder Jfront Jir Lazy Program Rmi_runtime Rmi_serial Rmi_stats
