lib/apps/superopt.ml: App_common Array Builder Format Fun Hashtbl Jfront Jir Lazy List Program Rmi_runtime Rmi_serial Rmi_stats Seq String
