lib/apps/superopt.mli: App_common Format Rmi_runtime Rmi_stats Seq
