lib/apps/app_common.ml: Hashtbl Jir List Rmi_core Rmi_runtime Rmi_serial Rmi_stats Unix
