lib/ssa/liveness.ml: Array Cfg Int Jir List Set
