lib/ssa/cfg.ml: Array Jir List
