lib/ssa/ssa.ml: Array Cfg Dominance Hashtbl Instr Int Jir List Liveness Map Program
