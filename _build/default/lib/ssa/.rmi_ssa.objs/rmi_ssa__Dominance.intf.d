lib/ssa/dominance.mli: Cfg
