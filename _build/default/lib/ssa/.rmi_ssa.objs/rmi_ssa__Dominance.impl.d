lib/ssa/dominance.ml: Array Cfg List
