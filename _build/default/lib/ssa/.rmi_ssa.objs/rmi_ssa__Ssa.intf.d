lib/ssa/ssa.mli: Jir
