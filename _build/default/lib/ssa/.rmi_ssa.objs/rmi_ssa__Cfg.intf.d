lib/ssa/cfg.mli: Jir
