lib/ssa/optim.mli: Jir
