lib/ssa/liveness.mli: Cfg Jir Set
