lib/ssa/optim.ml: Array Cfg Hashtbl Instr Jir List Printf Program Ssa Types
