type t = {
  nblocks : int;
  succs : int list array;
  preds : int list array;
  rpo : int array;
  rpo_index : int array;
}

let of_method (m : Jir.Program.method_decl) =
  let nblocks = Array.length m.blocks in
  let succs =
    Array.map (fun (b : Jir.Instr.block) -> Jir.Instr.successors b.term) m.blocks
  in
  let preds = Array.make nblocks [] in
  Array.iteri
    (fun b ss -> List.iter (fun s -> preds.(s) <- b :: preds.(s)) ss)
    succs;
  Array.iteri (fun i l -> preds.(i) <- List.rev l) preds;
  (* postorder DFS from the entry *)
  let visited = Array.make nblocks false in
  let post = ref [] in
  let rec dfs b =
    if not visited.(b) then begin
      visited.(b) <- true;
      List.iter dfs succs.(b);
      post := b :: !post
    end
  in
  if nblocks > 0 then dfs 0;
  let rpo = Array.of_list !post in
  let rpo_index = Array.make nblocks (-1) in
  Array.iteri (fun i b -> rpo_index.(b) <- i) rpo;
  { nblocks; succs; preds; rpo; rpo_index }

let is_reachable t b = t.rpo_index.(b) >= 0
let entry _ = 0
