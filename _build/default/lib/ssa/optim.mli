(** Scalar SSA optimizations: constant folding, copy propagation,
    constant-branch pruning and dead pure-code elimination.

    These run after {!Ssa.convert_method} (single definitions are
    assumed; [simplify_method] refuses non-SSA input).  Semantics are
    preserved exactly: arithmetic folds mirror the interpreter
    (including shift masking), folds that would fault (division by
    zero) are left in place, and instructions that can fault at runtime
    (field/element loads, array allocations with possibly-negative
    lengths) are never removed.

    The paper's backend runs on an optimizing compiler (Manta); this
    pass stands in for the scalar cleanups such a compiler would give
    the marshaling code for free. *)

(** Number of rewrites applied (0 = already minimal).
    @raise Invalid_argument on non-SSA input. *)
val simplify_method : Jir.Program.method_decl -> int

(** Simplify every method to a fixpoint; total rewrites. *)
val simplify : Jir.Program.t -> int
