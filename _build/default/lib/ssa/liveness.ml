module Int_set = Set.Make (Int)

type t = {
  ins : Int_set.t array;
  outs : Int_set.t array;
  use : Int_set.t array;
  def : Int_set.t array;
}

let block_use_def (blk : Jir.Instr.block) =
  (* upward-exposed uses and definitions, instruction order *)
  let use = ref Int_set.empty and def = ref Int_set.empty in
  let note_uses vs =
    List.iter (fun v -> if not (Int_set.mem v !def) then use := Int_set.add v !use) vs
  in
  List.iter
    (fun i ->
      note_uses (Jir.Instr.uses_of_instr i);
      match Jir.Instr.def_of_instr i with
      | Some d -> def := Int_set.add d !def
      | None -> ())
    blk.body;
  note_uses (Jir.Instr.uses_of_terminator blk.term);
  (!use, !def)

let compute (cfg : Cfg.t) (m : Jir.Program.method_decl) =
  let n = cfg.nblocks in
  let use = Array.make n Int_set.empty and def = Array.make n Int_set.empty in
  Array.iteri
    (fun b blk ->
      let u, d = block_use_def blk in
      use.(b) <- u;
      def.(b) <- d)
    m.blocks;
  let ins = Array.make n Int_set.empty and outs = Array.make n Int_set.empty in
  let changed = ref true in
  while !changed do
    changed := false;
    (* iterate in postorder (reverse of rpo) for fast convergence *)
    for i = Array.length cfg.rpo - 1 downto 0 do
      let b = cfg.rpo.(i) in
      let out =
        List.fold_left
          (fun acc s -> Int_set.union acc ins.(s))
          Int_set.empty cfg.succs.(b)
      in
      let inn = Int_set.union use.(b) (Int_set.diff out def.(b)) in
      if not (Int_set.equal out outs.(b) && Int_set.equal inn ins.(b)) then begin
        outs.(b) <- out;
        ins.(b) <- inn;
        changed := true
      end
    done
  done;
  { ins; outs; use; def }

let live_in t b = t.ins.(b)
let live_out t b = t.outs.(b)
let uses t b = t.use.(b)
let defs t b = t.def.(b)
