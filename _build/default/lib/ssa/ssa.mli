(** Pruned SSA construction (Cytron et al. [6] with liveness pruning).

    Rewrites a method in place: phi nodes are inserted at the iterated
    dominance frontier of each variable's definition blocks (only where
    the variable is live-in), and every definition receives a fresh
    virtual register.  Variable [v]'s entry value (parameter or the
    implicit zero/null initialisation) keeps the original id [v], so
    parameter indices survive conversion — the heap analysis depends on
    that. *)

val convert_method : Jir.Program.method_decl -> unit

(** Converts every method of the program. Idempotent in effect but not
    meant to be run twice; use [is_ssa] to guard. *)
val convert : Jir.Program.t -> unit

(** Every variable has at most one definition (phi or instruction). *)
val is_ssa : Jir.Program.method_decl -> bool
