(** Per-block variable liveness (backward dataflow).

    Used to prune SSA phi placement: a phi for [v] at block [b] is only
    needed when [v] is live into [b]. *)

module Int_set : Set.S with type elt = int

type t

val compute : Cfg.t -> Jir.Program.method_decl -> t

val live_in : t -> int -> Int_set.t
val live_out : t -> int -> Int_set.t

(** Variables read (before any redefinition) / written by a block. *)
val uses : t -> int -> Int_set.t
val defs : t -> int -> Int_set.t
