(** Control-flow graph view of a JIR method. *)

type t = {
  nblocks : int;
  succs : int list array;
  preds : int list array;
  rpo : int array;  (** reachable blocks in reverse postorder from entry *)
  rpo_index : int array;  (** position in [rpo]; [-1] if unreachable *)
}

val of_method : Jir.Program.method_decl -> t

val is_reachable : t -> int -> bool

(** Entry block (always 0). *)
val entry : t -> int
