open Jir
open Instr

(* constant evaluation mirroring Interp exactly; None = cannot fold *)
let fold_binop op l r =
  match (op, l, r) with
  | Add, Int a, Int b -> Some (Int (a + b))
  | Sub, Int a, Int b -> Some (Int (a - b))
  | Mul, Int a, Int b -> Some (Int (a * b))
  | Div, Int a, Int b when b <> 0 -> Some (Int (a / b))
  | Rem, Int a, Int b when b <> 0 -> Some (Int (a mod b))
  | Band, Int a, Int b -> Some (Int (a land b))
  | Bor, Int a, Int b -> Some (Int (a lor b))
  | Bxor, Int a, Int b -> Some (Int (a lxor b))
  | Shl, Int a, Int b -> Some (Int (a lsl (b land 62)))
  | Shr, Int a, Int b -> Some (Int (a asr (b land 62)))
  | Add, Double a, Double b -> Some (Double (a +. b))
  | Sub, Double a, Double b -> Some (Double (a -. b))
  | Mul, Double a, Double b -> Some (Double (a *. b))
  | Div, Double a, Double b -> Some (Double (a /. b))
  | Lt, Int a, Int b -> Some (Bool (a < b))
  | Le, Int a, Int b -> Some (Bool (a <= b))
  | Gt, Int a, Int b -> Some (Bool (a > b))
  | Ge, Int a, Int b -> Some (Bool (a >= b))
  | Lt, Double a, Double b -> Some (Bool (a < b))
  | Le, Double a, Double b -> Some (Bool (a <= b))
  | Gt, Double a, Double b -> Some (Bool (a > b))
  | Ge, Double a, Double b -> Some (Bool (a >= b))
  | Eq, Int a, Int b -> Some (Bool (a = b))
  | Ne, Int a, Int b -> Some (Bool (a <> b))
  | Eq, Bool a, Bool b -> Some (Bool (a = b))
  | Ne, Bool a, Bool b -> Some (Bool (a <> b))
  | Eq, Double a, Double b -> Some (Bool (a = b))
  | Ne, Double a, Double b -> Some (Bool (a <> b))
  | Eq, Null, Null -> Some (Bool true)
  | Ne, Null, Null -> Some (Bool false)
  | _ -> None

let fold_unop op v =
  match (op, v) with
  | Neg, Int i -> Some (Int (-i))
  | Neg, Double f -> Some (Double (-.f))
  | Not, Bool b -> Some (Bool (not b))
  | I2d, Int i -> Some (Double (float_of_int i))
  | _ -> None

let is_const = function
  | Null | Bool _ | Int _ | Double _ | Str _ -> true
  | Var _ -> false

(* one rewrite round; returns the number of changes *)
let round (m : Program.method_decl) =
  let changes = ref 0 in
  (* 1. gather substitutions from single-definition SSA vars *)
  let subst : (Types.var, operand) Hashtbl.t = Hashtbl.create 16 in
  let note dst op = Hashtbl.replace subst dst op in
  Array.iter
    (fun (blk : block) ->
      List.iter
        (fun (phi : phi) ->
          (* a phi whose inputs are all the same operand is a copy *)
          match phi.pargs with
          | (_, first) :: rest when List.for_all (fun (_, o) -> o = first) rest
            ->
              note phi.pdst first
          | _ -> ())
        blk.phis;
      List.iter
        (fun instr ->
          match instr with
          | Move { dst; src } -> note dst src
          | Binop { dst; op; lhs; rhs } when is_const lhs && is_const rhs -> (
              match fold_binop op lhs rhs with
              | Some c -> note dst c
              | None -> ())
          | Unop { dst; op; src } when is_const src -> (
              match fold_unop op src with Some c -> note dst c | None -> ())
          | _ -> ())
        blk.body)
    m.blocks;
  (* resolve substitution chains (bounded by the table size) *)
  let rec resolve depth op =
    match op with
    | Var v when depth < Hashtbl.length subst + 1 -> (
        match Hashtbl.find_opt subst v with
        | Some op' when op' <> op -> resolve (depth + 1) op'
        | _ -> op)
    | _ -> op
  in
  let apply op =
    let op' = resolve 0 op in
    if op' <> op then incr changes;
    op'
  in
  (* 2. rewrite all uses *)
  Array.iter
    (fun (blk : block) ->
      blk.phis <-
        List.map
          (fun (phi : phi) ->
            { phi with pargs = List.map (fun (l, o) -> (l, apply o)) phi.pargs })
          blk.phis;
      blk.body <- List.map (map_uses apply) blk.body;
      blk.term <- map_uses_terminator apply blk.term)
    m.blocks;
  (* 3. prune constant branches *)
  Array.iter
    (fun (blk : block) ->
      match blk.term with
      | Br { cond = Bool true; ifso; _ } ->
          blk.term <- Jmp ifso;
          incr changes
      | Br { cond = Bool false; ifnot; _ } ->
          blk.term <- Jmp ifnot;
          incr changes
      | _ -> ())
    m.blocks;
  (* 3b. drop phi inputs from predecessors that no longer branch here *)
  let cfg = Cfg.of_method m in
  Array.iteri
    (fun bi (blk : block) ->
      blk.phis <-
        List.map
          (fun (phi : phi) ->
            let pargs =
              List.filter (fun (l, _) -> List.mem l cfg.Cfg.preds.(bi)) phi.pargs
            in
            if List.length pargs <> List.length phi.pargs then incr changes;
            { phi with pargs })
          blk.phis)
    m.blocks;
  (* 4. dead pure code elimination *)
  let used = Hashtbl.create 64 in
  let mark op = match op with Var v -> Hashtbl.replace used v () | _ -> () in
  Array.iter
    (fun (blk : block) ->
      List.iter
        (fun (phi : phi) -> List.iter (fun (_, o) -> mark o) phi.pargs)
        blk.phis;
      List.iter
        (fun i ->
          List.iter (fun v -> mark (Var v)) (uses_of_instr i))
        blk.body;
      List.iter (fun v -> mark (Var v)) (uses_of_terminator blk.term))
    m.blocks;
  let removable = function
    | Binop { dst; op = Div | Rem; rhs; _ } -> (
        (* integer division faults on zero: only remove when the divisor
           provably cannot be zero *)
        match rhs with
        | Int n when n <> 0 -> not (Hashtbl.mem used dst)
        | Double _ -> not (Hashtbl.mem used dst)
        | _ -> false)
    | Move { dst; _ } | Unop { dst; _ } | Binop { dst; _ }
    | Load_static { dst; _ } | New_str { dst; _ } | Alloc { dst; _ } ->
        not (Hashtbl.mem used dst)
    (* Array_length and the load instructions can fault (null/bounds):
       never removed *)
    | Alloc_array { dst; len = Int n; _ } when n >= 0 ->
        (* a provably non-faulting allocation *)
        not (Hashtbl.mem used dst)
    | _ -> false
  in
  Array.iter
    (fun (blk : block) ->
      let before = List.length blk.body in
      blk.body <- List.filter (fun i -> not (removable i)) blk.body;
      changes := !changes + (before - List.length blk.body);
      let phis_before = List.length blk.phis in
      blk.phis <-
        List.filter (fun (phi : phi) -> Hashtbl.mem used phi.pdst) blk.phis;
      changes := !changes + (phis_before - List.length blk.phis))
    m.blocks;
  !changes

let simplify_method (m : Program.method_decl) =
  if not (Ssa.is_ssa m) then
    invalid_arg
      (Printf.sprintf "Optim.simplify_method: %s is not in SSA form"
         m.Program.mname);
  let total = ref 0 in
  let rec go budget =
    if budget > 0 then begin
      let n = round m in
      total := !total + n;
      if n > 0 then go (budget - 1)
    end
  in
  go 10;
  !total

let simplify (p : Program.t) =
  Array.fold_left (fun acc m -> acc + simplify_method m) 0 p.methods
