open Jir

module Int_set = Liveness.Int_set
module Int_map = Map.Make (Int)

let convert_method (m : Program.method_decl) =
  let cfg = Cfg.of_method m in
  let dom = Dominance.compute cfg in
  let live = Liveness.compute cfg m in
  let n = cfg.nblocks in
  let nvars_orig = Array.length m.var_types in

  (* 1. definition sites per original variable (params define at entry) *)
  let def_blocks = Array.make nvars_orig Int_set.empty in
  Array.iteri
    (fun b (blk : Instr.block) ->
      List.iter
        (fun i ->
          match Instr.def_of_instr i with
          | Some d -> def_blocks.(d) <- Int_set.add b def_blocks.(d)
          | None -> ())
        blk.body)
    m.blocks;
  for p = 0 to Array.length m.params - 1 do
    def_blocks.(p) <- Int_set.add 0 def_blocks.(p)
  done;

  (* 2. phi placement at the iterated dominance frontier, pruned by
     liveness *)
  let phis_at = Array.make n Int_map.empty in
  (* block -> orig var -> unit (placed) *)
  for v = 0 to nvars_orig - 1 do
    let work = ref (Int_set.elements def_blocks.(v)) in
    let placed = ref Int_set.empty in
    let in_work = ref (Int_set.of_list !work) in
    while !work <> [] do
      match !work with
      | [] -> ()
      | b :: rest ->
          work := rest;
          List.iter
            (fun y ->
              if
                (not (Int_set.mem y !placed))
                && Cfg.is_reachable cfg y
                && Int_set.mem v (Liveness.live_in live y)
              then begin
                placed := Int_set.add y !placed;
                phis_at.(y) <- Int_map.add v () phis_at.(y);
                if not (Int_set.mem y !in_work) then begin
                  in_work := Int_set.add y !in_work;
                  work := y :: !work
                end
              end)
            (Dominance.frontier dom b)
    done
  done;

  (* 3. renaming over the dominator tree *)
  let var_tys = ref [] (* new vars, reversed *) in
  let next_var = ref nvars_orig in
  let fresh ty =
    let v = !next_var in
    incr next_var;
    var_tys := ty :: !var_tys;
    v
  in
  let stacks = Array.make nvars_orig [] in
  (* original id itself is the entry version *)
  for v = 0 to nvars_orig - 1 do
    stacks.(v) <- [ v ]
  done;
  let top v =
    if v < nvars_orig then match stacks.(v) with t :: _ -> t | [] -> v else v
  in
  (* per block: pending phi info (orig var, fresh dst, edge values) *)
  let phi_dst = Array.make n Int_map.empty in
  let phi_inputs : (int, (int * int * Instr.operand) list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  (* block -> list of (orig var, pred, operand) *)
  let record_phi_input b v pred op =
    let cell =
      match Hashtbl.find_opt phi_inputs b with
      | Some c -> c
      | None ->
          let c = ref [] in
          Hashtbl.add phi_inputs b c;
          c
    in
    (* replace a previous entry for the same (v, pred) — duplicate edges
       from one predecessor carry the same value *)
    cell := (v, pred, op) :: List.filter (fun (v', p', _) -> not (v' = v && p' = pred)) !cell
  in
  let rewrite_operand = function
    | Instr.Var v -> Instr.Var (top v)
    | op -> op
  in
  let rec rename b =
    let blk = m.blocks.(b) in
    let pushed = ref [] in
    (* phi definitions *)
    Int_map.iter
      (fun v () ->
        let d = fresh m.var_types.(v) in
        phi_dst.(b) <- Int_map.add v d phi_dst.(b);
        stacks.(v) <- d :: stacks.(v);
        pushed := v :: !pushed)
      phis_at.(b);
    (* body *)
    let new_body =
      List.map
        (fun i ->
          let i = Instr.map_uses rewrite_operand i in
          match Instr.def_of_instr i with
          | Some d when d < nvars_orig ->
              let nd = fresh m.var_types.(d) in
              stacks.(d) <- nd :: stacks.(d);
              pushed := d :: !pushed;
              Instr.map_def (fun _ -> nd) i
          | Some _ | None -> i)
        blk.body
    in
    blk.body <- new_body;
    blk.term <- Instr.map_uses_terminator rewrite_operand blk.term;
    (* feed phi inputs of successors *)
    List.iter
      (fun s ->
        Int_map.iter
          (fun v () -> record_phi_input s v b (Instr.Var (top v)))
          phis_at.(s))
      cfg.succs.(b);
    (* recurse over dominator-tree children *)
    List.iter rename (Dominance.children dom b);
    (* pop *)
    List.iter
      (fun v -> stacks.(v) <- List.tl stacks.(v))
      !pushed
  in
  if n > 0 then rename 0;

  (* 4. materialise phi nodes *)
  Array.iteri
    (fun b (blk : Instr.block) ->
      if not (Int_map.is_empty phis_at.(b)) then begin
        let inputs =
          match Hashtbl.find_opt phi_inputs b with Some c -> !c | None -> []
        in
        let phis =
          Int_map.fold
            (fun v () acc ->
              let pdst = Int_map.find v phi_dst.(b) in
              let pargs =
                List.filter_map
                  (fun (v', pred, op) -> if v' = v then Some (pred, op) else None)
                  inputs
              in
              { Instr.pdst; pargs } :: acc)
            phis_at.(b) []
        in
        blk.phis <- phis
      end)
    m.blocks;

  (* 5. extend the variable type table *)
  m.var_types <- Array.append m.var_types (Array.of_list (List.rev !var_tys))

let convert (p : Program.t) = Array.iter convert_method p.methods

let is_ssa (m : Program.method_decl) =
  let defined = Hashtbl.create 64 in
  let ok = ref true in
  let note d = if Hashtbl.mem defined d then ok := false else Hashtbl.add defined d () in
  Array.iter
    (fun (blk : Instr.block) ->
      List.iter (fun (phi : Instr.phi) -> note phi.pdst) blk.phis;
      List.iter
        (fun i -> match Instr.def_of_instr i with Some d -> note d | None -> ())
        blk.body)
    m.blocks;
  !ok
