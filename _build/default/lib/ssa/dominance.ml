type t = {
  cfg : Cfg.t;
  idoms : int array;  (* -1 = none/unreachable; entry maps to itself *)
  kids : int list array;
  frontiers : int list array;
}

let compute (cfg : Cfg.t) =
  let n = cfg.nblocks in
  let idoms = Array.make n (-1) in
  if n > 0 then begin
    idoms.(0) <- 0;
    (* intersect in reverse-postorder ranks: higher rpo index = later *)
    let rank b = cfg.rpo_index.(b) in
    let intersect a b =
      let a = ref a and b = ref b in
      while !a <> !b do
        while rank !a > rank !b do
          a := idoms.(!a)
        done;
        while rank !b > rank !a do
          b := idoms.(!b)
        done
      done;
      !a
    in
    let changed = ref true in
    while !changed do
      changed := false;
      Array.iter
        (fun b ->
          if b <> 0 then begin
            let processed_preds =
              List.filter
                (fun p -> Cfg.is_reachable cfg p && idoms.(p) >= 0)
                cfg.preds.(b)
            in
            match processed_preds with
            | [] -> ()
            | first :: rest ->
                let new_idom = List.fold_left intersect first rest in
                if idoms.(b) <> new_idom then begin
                  idoms.(b) <- new_idom;
                  changed := true
                end
          end)
        cfg.rpo
    done
  end;
  let kids = Array.make n [] in
  for b = n - 1 downto 1 do
    if Cfg.is_reachable cfg b && idoms.(b) >= 0 then
      kids.(idoms.(b)) <- b :: kids.(idoms.(b))
  done;
  let frontiers = Array.make n [] in
  for b = 0 to n - 1 do
    if Cfg.is_reachable cfg b && List.length cfg.preds.(b) >= 2 then
      List.iter
        (fun p ->
          if Cfg.is_reachable cfg p then begin
            let runner = ref p in
            while !runner <> idoms.(b) do
              if not (List.mem b frontiers.(!runner)) then
                frontiers.(!runner) <- b :: frontiers.(!runner);
              runner := idoms.(!runner)
            done
          end)
        cfg.preds.(b)
  done;
  { cfg; idoms; kids; frontiers }

let idom t b =
  if b = 0 || t.idoms.(b) < 0 then None else Some t.idoms.(b)

let dominates t a b =
  let rec up b = if b = a then true else if b = 0 then false else up t.idoms.(b) in
  Cfg.is_reachable t.cfg a && Cfg.is_reachable t.cfg b && up b

let children t b = t.kids.(b)
let frontier t b = t.frontiers.(b)
