(** Dominator tree and dominance frontiers.

    Immediate dominators via the iterative algorithm of Cooper, Harvey
    and Kennedy ("A Simple, Fast Dominance Algorithm"); frontiers via
    the standard two-predecessor walk.  Both are the ingredients of
    SSA construction (Cytron et al. [6], which the paper's heap
    analysis step 1 relies on). *)

type t

val compute : Cfg.t -> t

(** [idom t b] immediate dominator; [None] for the entry block and for
    unreachable blocks. *)
val idom : t -> int -> int option

(** [dominates t a b]: does [a] dominate [b] (reflexively)? *)
val dominates : t -> int -> int -> bool

(** Children in the dominator tree. *)
val children : t -> int -> int list

(** [frontier t b] dominance frontier of [b]. *)
val frontier : t -> int -> int list
