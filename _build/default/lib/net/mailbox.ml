type t = { q : bytes Queue.t; m : Mutex.t; c : Condition.t }

let create () = { q = Queue.create (); m = Mutex.create (); c = Condition.create () }

let send t msg =
  Mutex.lock t.m;
  Queue.push msg t.q;
  Condition.signal t.c;
  Mutex.unlock t.m

let try_recv t =
  Mutex.lock t.m;
  let msg = Queue.take_opt t.q in
  Mutex.unlock t.m;
  msg

let recv_blocking t =
  Mutex.lock t.m;
  while Queue.is_empty t.q do
    Condition.wait t.c t.m
  done;
  let msg = Queue.pop t.q in
  Mutex.unlock t.m;
  msg

let is_empty t =
  Mutex.lock t.m;
  let e = Queue.is_empty t.q in
  Mutex.unlock t.m;
  e

let length t =
  Mutex.lock t.m;
  let n = Queue.length t.q in
  Mutex.unlock t.m;
  n
