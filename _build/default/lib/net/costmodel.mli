(** Analytic cost model mapping runtime event counters to modeled
    seconds on the paper's testbed.

    The paper's hardware (1 GHz Pentium III, Myrinet + GM) no longer
    exists; absolute wall-clock numbers on a modern machine are
    incomparable.  The *shape* of the tables, however, is determined by
    which events each optimization removes — type bytes (call-site
    plans), hash probes (cycle elimination), allocations (reuse) — so
    the harness reports modeled seconds computed from the measured
    counters with Myrinet-era constants, alongside raw wall-clock.

    Constants are taken from the paper where stated: a tuned RMI costs
    about 40 µs end to end (Section 3.3), allocation+collection about
    0.1 µs per object. *)

type t = {
  per_message_us : float;  (** fixed per network message (half RTT) *)
  per_byte_us : float;  (** payload on a ~1 Gbit/s Myrinet *)
  per_cycle_lookup_us : float;  (** one hash-table probe/insert *)
  per_alloc_us : float;  (** object allocation + eventual collection *)
  per_ser_invocation_us : float;  (** dynamic dispatch into a serializer *)
  per_type_byte_us : float;  (** producing/parsing wire type info *)
  per_rpc_us : float;  (** fixed dispatch overhead per RMI *)
  per_local_rpc_us : float;  (** same-machine RMI (no network) *)
}

(** Constants calibrated to the paper's testbed. *)
val myrinet_2003 : t

val modeled_seconds : t -> Rmi_stats.Metrics.snapshot -> float

(** Per-component breakdown [(label, seconds)], largest first. *)
val breakdown : t -> Rmi_stats.Metrics.snapshot -> (string * float) list
