(** The simulated cluster interconnect.

    [n] machines, each with a mailbox.  [send] charges the message and
    payload bytes to the metrics — the counters the cost model turns
    into modeled seconds.  Receiving polls, like the paper's modified
    GM layer ("polling is performed instead of condition
    synchronization"). *)

type t

val create : n:int -> Rmi_stats.Metrics.t -> t

val size : t -> int
val metrics : t -> Rmi_stats.Metrics.t

(** [send t ~src ~dest msg]; self-sends are allowed (loopback). *)
val send : t -> src:int -> dest:int -> bytes -> unit

val try_recv : t -> self:int -> bytes option

(** Blocks until a message for [self] arrives. *)
val recv_blocking : t -> self:int -> bytes

(** Any message pending anywhere? (deadlock diagnostics) *)
val pending_anywhere : t -> bool

(** Fault injection for tests: the hook sees every message about to be
    delivered and may pass it through ([Some msg]), corrupt it
    ([Some other]) or drop it ([None]).  Metrics still count the
    original send. *)
val set_fault_hook : t -> (src:int -> dest:int -> bytes -> bytes option) -> unit

val clear_fault_hook : t -> unit
