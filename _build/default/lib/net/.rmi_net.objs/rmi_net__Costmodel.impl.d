lib/net/costmodel.ml: List Rmi_stats
