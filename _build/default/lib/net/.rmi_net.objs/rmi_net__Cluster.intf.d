lib/net/cluster.mli: Rmi_stats
