lib/net/mailbox.mli:
