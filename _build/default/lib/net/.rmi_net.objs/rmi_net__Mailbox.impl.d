lib/net/mailbox.ml: Condition Mutex Queue
