lib/net/cluster.ml: Array Bytes Mailbox Printf Rmi_stats
