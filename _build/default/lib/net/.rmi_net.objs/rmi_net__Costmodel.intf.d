lib/net/costmodel.mli: Rmi_stats
