type t = {
  per_message_us : float;
  per_byte_us : float;
  per_cycle_lookup_us : float;
  per_alloc_us : float;
  per_ser_invocation_us : float;
  per_type_byte_us : float;
  per_rpc_us : float;
  per_local_rpc_us : float;
}

let myrinet_2003 =
  {
    per_message_us = 18.0;  (* ~40 us RMI round trip = 2 messages + dispatch *)
    per_byte_us = 0.008;    (* ~125 MB/s sustained *)
    per_cycle_lookup_us = 0.055;  (* hash + insert on a 1 GHz P-III *)
    per_alloc_us = 0.1;     (* paper, Section 3.3 *)
    per_ser_invocation_us = 0.25;  (* vtable lookup + call + frame *)
    per_type_byte_us = 0.02;  (* emitting and re-parsing descriptors *)
    per_rpc_us = 2.0;       (* registry/skeleton dispatch *)
    per_local_rpc_us = 1.0; (* clone path, no wire *)
  }

let components c (s : Rmi_stats.Metrics.snapshot) =
  [
    ("messages", float_of_int s.msgs_sent *. c.per_message_us);
    ("payload bytes", float_of_int s.bytes_sent *. c.per_byte_us);
    ("cycle lookups", float_of_int s.cycle_lookups *. c.per_cycle_lookup_us);
    ("allocations", float_of_int s.allocs *. c.per_alloc_us);
    ("serializer calls", float_of_int s.ser_invocations *. c.per_ser_invocation_us);
    ("type info", float_of_int s.type_bytes *. c.per_type_byte_us);
    ("rpc dispatch", float_of_int s.remote_rpcs *. c.per_rpc_us);
    ("local rpcs", float_of_int s.local_rpcs *. c.per_local_rpc_us);
  ]

let modeled_seconds c s =
  List.fold_left (fun acc (_, us) -> acc +. us) 0.0 (components c s) /. 1e6

let breakdown c s =
  List.map (fun (l, us) -> (l, us /. 1e6)) (components c s)
  |> List.sort (fun (_, a) (_, b) -> compare b a)
