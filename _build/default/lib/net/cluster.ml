type t = {
  n : int;
  boxes : Mailbox.t array;
  metrics : Rmi_stats.Metrics.t;
  mutable fault : (src:int -> dest:int -> bytes -> bytes option) option;
}

let create ~n metrics =
  if n < 1 then invalid_arg "Cluster.create: need at least one machine";
  { n; boxes = Array.init n (fun _ -> Mailbox.create ()); metrics; fault = None }

let size t = t.n
let metrics t = t.metrics

let check t who =
  if who < 0 || who >= t.n then
    invalid_arg (Printf.sprintf "Cluster: bad machine id %d" who)

let send t ~src ~dest msg =
  check t src;
  check t dest;
  Rmi_stats.Metrics.incr_msgs_sent t.metrics;
  Rmi_stats.Metrics.add_bytes_sent t.metrics (Bytes.length msg);
  match t.fault with
  | None -> Mailbox.send t.boxes.(dest) msg
  | Some hook -> (
      match hook ~src ~dest msg with
      | Some delivered -> Mailbox.send t.boxes.(dest) delivered
      | None -> () (* dropped on the wire *))

let set_fault_hook t hook = t.fault <- Some hook
let clear_fault_hook t = t.fault <- None

let try_recv t ~self =
  check t self;
  Mailbox.try_recv t.boxes.(self)

let recv_blocking t ~self =
  check t self;
  Mailbox.recv_blocking t.boxes.(self)

let pending_anywhere t = Array.exists (fun b -> not (Mailbox.is_empty b)) t.boxes
