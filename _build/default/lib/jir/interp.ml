open Types
open Instr

type value =
  | Vnull
  | Vbool of bool
  | Vint of int
  | Vdouble of float
  | Vstr of string
  | Vobj of objv
  | Varr of arrv

and objv = { ocls : class_id; ofields : value array; oid : int; osite : site }
and arrv = { aelem : ty; adata : value array; aid : int; asite : site }

type remote_hook =
  site:site -> recv:value -> meth:method_id -> value list -> value option

type state = {
  prog : Program.t;
  statics : value array;
  mutable next_id : int;
  mutable steps : int;
  step_limit : int;
  mutable remote_calls : int;
  remote_hook : remote_hook option;
}

exception Runtime_error of string
exception Step_limit_exceeded

let err fmt = Printf.ksprintf (fun s -> raise (Runtime_error s)) fmt

let create ?(step_limit = 10_000_000) ?remote_hook prog =
  {
    prog;
    statics = Array.make (Array.length prog.Program.statics) Vnull;
    next_id = 0;
    steps = 0;
    step_limit;
    remote_calls = 0;
    remote_hook;
  }

let read_static st sid = st.statics.(sid)
let remote_calls st = st.remote_calls

let fresh_id st =
  let id = st.next_id in
  st.next_id <- id + 1;
  id

let default_value = function
  | Tvoid -> Vnull
  | Tbool -> Vbool false
  | Tint -> Vint 0
  | Tdouble -> Vdouble 0.0
  | Tstring | Tobject _ | Tarray _ -> Vnull

(* RMI cloning: deep copy preserving internal sharing and cycles. *)
let deep_copy_with st v =
  let seen = Hashtbl.create 16 in
  let rec go = function
    | (Vnull | Vbool _ | Vint _ | Vdouble _) as v -> v
    | Vstr s -> Vstr s (* immutable: safe to share the OCaml string *)
    | Vobj o -> (
        match Hashtbl.find_opt seen (`O o.oid) with
        | Some v -> v
        | None ->
            let copy =
              { ocls = o.ocls; ofields = Array.make (Array.length o.ofields) Vnull;
                oid = fresh_id st; osite = o.osite }
            in
            Hashtbl.add seen (`O o.oid) (Vobj copy);
            Array.iteri (fun i f -> copy.ofields.(i) <- go f) o.ofields;
            Vobj copy)
    | Varr a -> (
        match Hashtbl.find_opt seen (`A a.aid) with
        | Some v -> v
        | None ->
            let copy =
              { aelem = a.aelem; adata = Array.make (Array.length a.adata) Vnull;
                aid = fresh_id st; asite = a.asite }
            in
            Hashtbl.add seen (`A a.aid) (Varr copy);
            Array.iteri (fun i e -> copy.adata.(i) <- go e) a.adata;
            Varr copy)
  in
  go v

let deep_copy v =
  let st =
    {
      prog = { Program.classes = [||]; methods = [||]; statics = [||]; num_sites = 0 };
      statics = [||];
      next_id = 1_000_000;
      steps = 0;
      step_limit = max_int;
      remote_calls = 0;
      remote_hook = None;
    }
  in
  deep_copy_with st v

let as_int = function Vint i -> i | v -> err "expected int, got %s" (match v with Vnull -> "null" | _ -> "other")
let as_bool = function Vbool b -> b | _ -> err "expected bool"

let rec run_method st mid (args : value list) =
  let m = Program.method_decl st.prog mid in
  if List.length args <> Array.length m.params then
    err "%s: arity mismatch" m.mname;
  let vars = Array.make (Array.length m.var_types) Vnull in
  List.iteri (fun i a -> vars.(i) <- a) args;
  let eval_operand = function
    | Null -> Vnull
    | Bool b -> Vbool b
    | Int i -> Vint i
    | Double f -> Vdouble f
    | Str s -> Vstr s
    | Var v -> vars.(v)
  in
  let rec eval_binop op l r =
    match (op, l, r) with
    | Add, Vint a, Vint b -> Vint (a + b)
    | Sub, Vint a, Vint b -> Vint (a - b)
    | Mul, Vint a, Vint b -> Vint (a * b)
    | Div, Vint a, Vint b -> if b = 0 then err "division by zero" else Vint (a / b)
    | Rem, Vint a, Vint b -> if b = 0 then err "modulo by zero" else Vint (a mod b)
    | Band, Vint a, Vint b -> Vint (a land b)
    | Bor, Vint a, Vint b -> Vint (a lor b)
    | Bxor, Vint a, Vint b -> Vint (a lxor b)
    | Shl, Vint a, Vint b -> Vint (a lsl (b land 62))
    | Shr, Vint a, Vint b -> Vint (a asr (b land 62))
    | Add, Vdouble a, Vdouble b -> Vdouble (a +. b)
    | Sub, Vdouble a, Vdouble b -> Vdouble (a -. b)
    | Mul, Vdouble a, Vdouble b -> Vdouble (a *. b)
    | Div, Vdouble a, Vdouble b -> Vdouble (a /. b)
    | Lt, Vint a, Vint b -> Vbool (a < b)
    | Le, Vint a, Vint b -> Vbool (a <= b)
    | Gt, Vint a, Vint b -> Vbool (a > b)
    | Ge, Vint a, Vint b -> Vbool (a >= b)
    | Lt, Vdouble a, Vdouble b -> Vbool (a < b)
    | Le, Vdouble a, Vdouble b -> Vbool (a <= b)
    | Gt, Vdouble a, Vdouble b -> Vbool (a > b)
    | Ge, Vdouble a, Vdouble b -> Vbool (a >= b)
    | Eq, a, b -> Vbool (shallow_eq a b)
    | Ne, a, b -> Vbool (not (shallow_eq a b))
    | _ -> err "bad binop operands"
  and shallow_eq a b =
    match (a, b) with
    | Vnull, Vnull -> true
    | Vbool x, Vbool y -> x = y
    | Vint x, Vint y -> x = y
    | Vdouble x, Vdouble y -> x = y
    | Vstr x, Vstr y -> String.equal x y
    | Vobj x, Vobj y -> x.oid = y.oid
    | Varr x, Varr y -> x.aid = y.aid
    | _ -> false
  in
  let obj_of v what =
    match vars.(v) with
    | Vobj o -> o
    | Vnull -> err "null dereference in %s" what
    | _ -> err "non-object dereference in %s" what
  in
  let arr_of v what =
    match vars.(v) with
    | Varr a -> a
    | Vnull -> err "null array in %s" what
    | _ -> err "non-array value in %s" what
  in
  let exec_instr = function
    | Alloc { dst; cls; site } ->
        let nfields = Array.length (Program.all_fields st.prog cls) in
        let fields = Array.make nfields Vnull in
        Array.iteri
          (fun i (_, ty) -> fields.(i) <- default_value ty)
          (Program.all_fields st.prog cls);
        vars.(dst) <-
          Vobj { ocls = cls; ofields = fields; oid = fresh_id st; osite = site }
    | Alloc_array { dst; elem; len; site } ->
        let n = as_int (eval_operand len) in
        if n < 0 then err "negative array length %d" n;
        vars.(dst) <-
          Varr
            { aelem = elem; adata = Array.make n (default_value elem);
              aid = fresh_id st; asite = site }
    | New_str { dst; value; _ } -> vars.(dst) <- Vstr value
    | Move { dst; src } -> vars.(dst) <- eval_operand src
    | Unop { dst; op; src } -> (
        match (op, eval_operand src) with
        | Neg, Vint i -> vars.(dst) <- Vint (-i)
        | Neg, Vdouble f -> vars.(dst) <- Vdouble (-.f)
        | Not, Vbool b -> vars.(dst) <- Vbool (not b)
        | I2d, Vint i -> vars.(dst) <- Vdouble (float_of_int i)
        | _ -> err "bad unop operand")
    | Binop { dst; op; lhs; rhs } ->
        vars.(dst) <- eval_binop op (eval_operand lhs) (eval_operand rhs)
    | Load_field { dst; obj; fld } ->
        let o = obj_of obj "field load" in
        vars.(dst) <- o.ofields.(Program.flat_index st.prog fld)
    | Store_field { obj; fld; src } ->
        let o = obj_of obj "field store" in
        o.ofields.(Program.flat_index st.prog fld) <- eval_operand src
    | Load_static { dst; st = sid } -> vars.(dst) <- st.statics.(sid)
    | Store_static { st = sid; src } -> st.statics.(sid) <- eval_operand src
    | Load_elem { dst; arr; idx } ->
        let a = arr_of arr "element load" in
        let i = as_int (eval_operand idx) in
        if i < 0 || i >= Array.length a.adata then
          err "index %d out of bounds (len %d)" i (Array.length a.adata);
        vars.(dst) <- a.adata.(i)
    | Store_elem { arr; idx; src } ->
        let a = arr_of arr "element store" in
        let i = as_int (eval_operand idx) in
        if i < 0 || i >= Array.length a.adata then
          err "index %d out of bounds (len %d)" i (Array.length a.adata);
        a.adata.(i) <- eval_operand src
    | Array_length { dst; arr } ->
        vars.(dst) <- Vint (Array.length (arr_of arr "length").adata)
    | Call { dst; meth; args; _ } -> (
        let result = run_method st meth (List.map eval_operand args) in
        match dst with Some d -> vars.(d) <- result | None -> ())
    | Remote_call { dst; recv; meth; args; site } -> (
        st.remote_calls <- st.remote_calls + 1;
        match st.remote_hook with
        | Some hook -> (
            (* the external transport performs the copying *)
            let result =
              hook ~site ~recv:(eval_operand recv) ~meth
                (List.map eval_operand args)
            in
            match (dst, result) with
            | Some d, Some v -> vars.(d) <- v
            | Some _, None -> err "remote hook returned no value"
            | None, _ -> ())
        | None -> (
            (* built-in RMI semantics: deep-copy the arguments, run,
               deep-copy the return value back — sharing preserved
               within one direction *)
            let copied =
              List.map (fun a -> deep_copy_with st (eval_operand a)) args
            in
            let result = run_method st meth copied in
            match dst with
            | Some d -> vars.(d) <- deep_copy_with st result
            | None -> ()))
  in
  (* Blocks with phis: evaluate all phi inputs for the edge at once
     (parallel copy), then the body. *)
  let rec exec_block pred bi =
    st.steps <- st.steps + 1;
    if st.steps > st.step_limit then raise Step_limit_exceeded;
    let blk = m.blocks.(bi) in
    if blk.phis <> [] then begin
      let values =
        List.map
          (fun { pdst; pargs } ->
            match List.assoc_opt pred pargs with
            | Some op -> (pdst, eval_operand op)
            | None -> err "phi in L%d has no input for predecessor L%d" bi pred)
          blk.phis
      in
      List.iter (fun (d, v) -> vars.(d) <- v) values
    end;
    List.iter exec_instr blk.body;
    match blk.term with
    | Ret None -> Vnull
    | Ret (Some op) -> eval_operand op
    | Jmp l -> exec_block bi l
    | Br { cond; ifso; ifnot } ->
        if as_bool (eval_operand cond) then exec_block bi ifso
        else exec_block bi ifnot
  in
  exec_block (-1) 0

let run st mid args = run_method st mid args

(* Graph-isomorphism-ish equality: pairs of (id, id) already assumed
   equal break cycles. *)
let value_equal a b =
  let assumed = Hashtbl.create 16 in
  let rec go a b =
    match (a, b) with
    | Vnull, Vnull -> true
    | Vbool x, Vbool y -> x = y
    | Vint x, Vint y -> x = y
    | Vdouble x, Vdouble y -> Float.equal x y
    | Vstr x, Vstr y -> String.equal x y
    | Vobj x, Vobj y ->
        x.ocls = y.ocls
        && Array.length x.ofields = Array.length y.ofields
        &&
        if Hashtbl.mem assumed (x.oid, y.oid) then true
        else begin
          Hashtbl.add assumed (x.oid, y.oid) ();
          let ok = ref true in
          Array.iteri
            (fun i f -> if !ok then ok := go f y.ofields.(i))
            x.ofields;
          !ok
        end
    | Varr x, Varr y ->
        equal_ty x.aelem y.aelem
        && Array.length x.adata = Array.length y.adata
        &&
        if Hashtbl.mem assumed (x.aid, y.aid) then true
        else begin
          Hashtbl.add assumed (x.aid, y.aid) ();
          let ok = ref true in
          Array.iteri (fun i e -> if !ok then ok := go e y.adata.(i)) x.adata;
          !ok
        end
    | _ -> false
  in
  go a b

let pp_value ppf v =
  let seen = Hashtbl.create 16 in
  let rec go ppf = function
    | Vnull -> Format.pp_print_string ppf "null"
    | Vbool b -> Format.pp_print_bool ppf b
    | Vint i -> Format.pp_print_int ppf i
    | Vdouble f -> Format.fprintf ppf "%g" f
    | Vstr s -> Format.fprintf ppf "%S" s
    | Vobj o ->
        if Hashtbl.mem seen (`O o.oid) then Format.fprintf ppf "<obj#%d>" o.oid
        else begin
          Hashtbl.add seen (`O o.oid) ();
          Format.fprintf ppf "obj#%d{cls=%d; %a}" o.oid o.ocls
            (Format.pp_print_seq
               ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
               go)
            (Array.to_seq o.ofields)
        end
    | Varr a ->
        if Hashtbl.mem seen (`A a.aid) then Format.fprintf ppf "<arr#%d>" a.aid
        else begin
          Hashtbl.add seen (`A a.aid) ();
          Format.fprintf ppf "arr#%d[%a]" a.aid
            (Format.pp_print_seq
               ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
               go)
            (Array.to_seq a.adata)
        end
  in
  go ppf v
