open Types

type class_decl = {
  cid : class_id;
  cname : string;
  super : class_id option;
  own_fields : (string * ty) array;
  remote : bool;
}

type method_decl = {
  mid : method_id;
  mname : string;
  owner : class_id option;
  params : ty array;
  ret : ty;
  mutable var_types : ty array;
  mutable blocks : Instr.block array;
}

type static_decl = { sid : static_id; sname : string; sty : ty }

type t = {
  classes : class_decl array;
  methods : method_decl array;
  statics : static_decl array;
  num_sites : int;
}

let class_decl p cid =
  if cid < 0 || cid >= Array.length p.classes then
    invalid_arg (Printf.sprintf "Program.class_decl: bad class id %d" cid);
  p.classes.(cid)

let method_decl p mid =
  if mid < 0 || mid >= Array.length p.methods then
    invalid_arg (Printf.sprintf "Program.method_decl: bad method id %d" mid);
  p.methods.(mid)

let static_decl p sid =
  if sid < 0 || sid >= Array.length p.statics then
    invalid_arg (Printf.sprintf "Program.static_decl: bad static id %d" sid);
  p.statics.(sid)

let class_name p cid = (class_decl p cid).cname

let find_class p name =
  Array.find_opt (fun c -> String.equal c.cname name) p.classes

let find_method p name =
  Array.find_opt (fun m -> String.equal m.mname name) p.methods

let rec is_subclass p ~sub ~super =
  sub = super
  ||
  match (class_decl p sub).super with
  | Some parent -> is_subclass p ~sub:parent ~super
  | None -> false

let assignable p ~src ~dst =
  equal_ty src dst
  ||
  match (src, dst) with
  | Tobject c1, Tobject c2 -> is_subclass p ~sub:c1 ~super:c2
  | _, _ -> false

let rec ancestry p cid =
  let c = class_decl p cid in
  match c.super with Some s -> ancestry p s @ [ c ] | None -> [ c ]

let all_fields p cid =
  Array.concat (List.map (fun c -> c.own_fields) (ancestry p cid))

let fields_before p cid =
  (* number of inherited fields preceding [cid]'s own in the flat layout *)
  let rec go acc = function
    | None -> acc
    | Some s -> go (acc + Array.length (class_decl p s).own_fields) (class_decl p s).super
  in
  go 0 (class_decl p cid).super

let flat_index p { fcls; findex } =
  let c = class_decl p fcls in
  if findex < 0 || findex >= Array.length c.own_fields then
    invalid_arg
      (Printf.sprintf "Program.flat_index: field %d out of range for %s" findex
         c.cname);
  fields_before p fcls + findex

let field_ty p { fcls; findex } =
  let c = class_decl p fcls in
  if findex < 0 || findex >= Array.length c.own_fields then
    invalid_arg "Program.field_ty: bad field reference";
  snd c.own_fields.(findex)

let field_name p { fcls; findex } =
  let c = class_decl p fcls in
  if findex < 0 || findex >= Array.length c.own_fields then
    invalid_arg "Program.field_name: bad field reference";
  fst c.own_fields.(findex)

let find_field p cid name =
  let rec go cid =
    let c = class_decl p cid in
    let own =
      Array.to_list c.own_fields
      |> List.mapi (fun i (n, _) -> (i, n))
      |> List.find_opt (fun (_, n) -> String.equal n name)
    in
    match own with
    | Some (i, _) -> Some { fcls = cid; findex = i }
    | None -> ( match c.super with Some s -> go s | None -> None)
  in
  go cid

let remote_methods p =
  Array.to_list p.methods
  |> List.filter (fun m ->
         match m.owner with
         | Some cid -> (class_decl p cid).remote
         | None -> false)

let iter_instrs p f =
  Array.iter
    (fun m ->
      Array.iteri
        (fun bi (b : Instr.block) -> List.iter (fun i -> f m bi i) b.body)
        m.blocks)
    p.methods

let remote_callsites p =
  let acc = ref [] in
  iter_instrs p (fun m _ instr ->
      match instr with
      | Instr.Remote_call { dst; meth; args; site; _ } ->
          acc := (m, site, meth, Option.is_some dst, args) :: !acc
      | _ -> ());
  List.rev !acc
