(** Static validation of JIR programs.

    Checks class-hierarchy acyclicity, field/method/static reference
    validity, operand typing with subclass assignability, branch-target
    ranges, return typing, and that remote calls target methods of
    [remote] classes.  Run by tests and by the optimizer before any
    analysis. *)

type error = { where : string; what : string }

val pp_error : Format.formatter -> error -> unit

(** All problems found, empty when the program is well formed. *)
val check : Program.t -> error list

(** @raise Failure with a rendered error list if [check] is nonempty. *)
val check_exn : Program.t -> unit
