open Types

type binop =
  | Add | Sub | Mul | Div | Rem
  | Band | Bor | Bxor | Shl | Shr
  | Lt | Le | Gt | Ge | Eq | Ne

type unop = Neg | Not | I2d

type operand =
  | Null
  | Bool of bool
  | Int of int
  | Double of float
  | Str of string
  | Var of var

type instr =
  | Alloc of { dst : var; cls : class_id; site : site }
  | Alloc_array of { dst : var; elem : ty; len : operand; site : site }
  | New_str of { dst : var; value : string; site : site }
  | Move of { dst : var; src : operand }
  | Unop of { dst : var; op : unop; src : operand }
  | Binop of { dst : var; op : binop; lhs : operand; rhs : operand }
  | Load_field of { dst : var; obj : var; fld : field_ref }
  | Store_field of { obj : var; fld : field_ref; src : operand }
  | Load_static of { dst : var; st : static_id }
  | Store_static of { st : static_id; src : operand }
  | Load_elem of { dst : var; arr : var; idx : operand }
  | Store_elem of { arr : var; idx : operand; src : operand }
  | Array_length of { dst : var; arr : var }
  | Call of { dst : var option; meth : method_id; args : operand list; site : site }
  | Remote_call of {
      dst : var option;
      recv : operand;
      meth : method_id;
      args : operand list;
      site : site;
    }

type terminator =
  | Ret of operand option
  | Jmp of label
  | Br of { cond : operand; ifso : label; ifnot : label }

type phi = { pdst : var; pargs : (label * operand) list }

type block = {
  mutable phis : phi list;
  mutable body : instr list;
  mutable term : terminator;
}

let def_of_instr = function
  | Alloc { dst; _ }
  | Alloc_array { dst; _ }
  | New_str { dst; _ }
  | Move { dst; _ }
  | Unop { dst; _ }
  | Binop { dst; _ }
  | Load_field { dst; _ }
  | Load_static { dst; _ }
  | Load_elem { dst; _ }
  | Array_length { dst; _ } ->
      Some dst
  | Store_field _ | Store_static _ | Store_elem _ -> None
  | Call { dst; _ } | Remote_call { dst; _ } -> dst

let uses_of_operand = function
  | Var v -> [ v ]
  | Null | Bool _ | Int _ | Double _ | Str _ -> []

let uses_of_instr = function
  | Alloc _ | New_str _ | Load_static _ -> []
  | Alloc_array { len; _ } -> uses_of_operand len
  | Move { src; _ } | Unop { src; _ } -> uses_of_operand src
  | Binop { lhs; rhs; _ } -> uses_of_operand lhs @ uses_of_operand rhs
  | Load_field { obj; _ } -> [ obj ]
  | Store_field { obj; src; _ } -> obj :: uses_of_operand src
  | Store_static { src; _ } -> uses_of_operand src
  | Load_elem { arr; idx; _ } -> arr :: uses_of_operand idx
  | Store_elem { arr; idx; src; _ } ->
      (arr :: uses_of_operand idx) @ uses_of_operand src
  | Array_length { arr; _ } -> [ arr ]
  | Call { args; _ } -> List.concat_map uses_of_operand args
  | Remote_call { recv; args; _ } ->
      uses_of_operand recv @ List.concat_map uses_of_operand args

let uses_of_terminator = function
  | Ret (Some op) -> uses_of_operand op
  | Ret None | Jmp _ -> []
  | Br { cond; _ } -> uses_of_operand cond

let successors = function
  | Ret _ -> []
  | Jmp l -> [ l ]
  | Br { ifso; ifnot; _ } -> [ ifso; ifnot ]

let alloc_site = function
  | Alloc { site; _ } | Alloc_array { site; _ } | New_str { site; _ } -> Some site
  | Move _ | Unop _ | Binop _ | Load_field _ | Store_field _ | Load_static _
  | Store_static _ | Load_elem _ | Store_elem _ | Array_length _ | Call _
  | Remote_call _ ->
      None

(* [f] rewrites an operand; address variables are passed as [Var] and the
   result is required to be a [Var] again. *)
let as_var what = function
  | Var v -> v
  | Null | Bool _ | Int _ | Double _ | Str _ ->
      invalid_arg ("Instr.map_uses: address position rewritten to non-var: " ^ what)

let map_uses f instr =
  let fv what v = as_var what (f (Var v)) in
  match instr with
  | Alloc _ | New_str _ | Load_static _ -> instr
  | Alloc_array r -> Alloc_array { r with len = f r.len }
  | Move r -> Move { r with src = f r.src }
  | Unop r -> Unop { r with src = f r.src }
  | Binop r -> Binop { r with lhs = f r.lhs; rhs = f r.rhs }
  | Load_field r -> Load_field { r with obj = fv "load_field" r.obj }
  | Store_field r ->
      Store_field { r with obj = fv "store_field" r.obj; src = f r.src }
  | Store_static r -> Store_static { r with src = f r.src }
  | Load_elem r -> Load_elem { r with arr = fv "load_elem" r.arr; idx = f r.idx }
  | Store_elem r ->
      Store_elem { arr = fv "store_elem" r.arr; idx = f r.idx; src = f r.src }
  | Array_length r -> Array_length { r with arr = fv "array_length" r.arr }
  | Call r -> Call { r with args = List.map f r.args }
  | Remote_call r ->
      Remote_call { r with recv = f r.recv; args = List.map f r.args }

let map_def f instr =
  match instr with
  | Alloc r -> Alloc { r with dst = f r.dst }
  | Alloc_array r -> Alloc_array { r with dst = f r.dst }
  | New_str r -> New_str { r with dst = f r.dst }
  | Move r -> Move { r with dst = f r.dst }
  | Unop r -> Unop { r with dst = f r.dst }
  | Binop r -> Binop { r with dst = f r.dst }
  | Load_field r -> Load_field { r with dst = f r.dst }
  | Load_static r -> Load_static { r with dst = f r.dst }
  | Load_elem r -> Load_elem { r with dst = f r.dst }
  | Array_length r -> Array_length { r with dst = f r.dst }
  | Store_field _ | Store_static _ | Store_elem _ -> instr
  | Call r -> Call { r with dst = Option.map f r.dst }
  | Remote_call r -> Remote_call { r with dst = Option.map f r.dst }

let map_uses_terminator f = function
  | Ret (Some op) -> Ret (Some (f op))
  | Ret None as t -> t
  | Jmp _ as t -> t
  | Br r -> Br { r with cond = f r.cond }
