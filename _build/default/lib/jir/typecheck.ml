open Types
open Instr

type error = { where : string; what : string }

let pp_error ppf e = Format.fprintf ppf "%s: %s" e.where e.what

let check (p : Program.t) =
  let errors = ref [] in
  let report where what = errors := { where; what } :: !errors in

  (* class hierarchy: ids valid and acyclic *)
  Array.iter
    (fun (c : Program.class_decl) ->
      match c.super with
      | None -> ()
      | Some s ->
          if s < 0 || s >= Array.length p.classes then
            report c.cname (Printf.sprintf "bad superclass id %d" s)
          else begin
            (* cycle detection by chasing the chain with a step budget *)
            let rec chase seen cid =
              if List.mem cid seen then
                report c.cname "cyclic inheritance chain"
              else
                match (Program.class_decl p cid).super with
                | Some s -> chase (cid :: seen) s
                | None -> ()
            in
            chase [ c.cid ] s
          end)
    p.classes;

  let check_method (m : Program.method_decl) =
    let where_base = m.mname in
    let nvars = Array.length m.var_types in
    let nblocks = Array.length m.blocks in
    let where bi = Printf.sprintf "%s/L%d" where_base bi in
    if Array.length m.params > nvars then
      report where_base "fewer var types than parameters";
    Array.iteri
      (fun i pty ->
        if i < nvars && not (equal_ty m.var_types.(i) pty) then
          report where_base (Printf.sprintf "parameter %d type mismatch" i))
      m.params;
    let var_ty w v =
      if v < 0 || v >= nvars then begin
        report w (Printf.sprintf "variable v%d out of range" v);
        Tvoid
      end
      else m.var_types.(v)
    in
    let operand_ty w = function
      | Null -> None (* assignable to any reference type *)
      | Bool _ -> Some Tbool
      | Int _ -> Some Tint
      | Double _ -> Some Tdouble
      | Str _ -> Some Tstring
      | Var v -> Some (var_ty w v)
    in
    let check_assign w ~dst op =
      match operand_ty w op with
      | None ->
          if not (is_ref dst) then
            report w
              (Printf.sprintf "null assigned to non-reference type %s"
                 (ty_to_string dst))
      | Some src ->
          if not (Program.assignable p ~src ~dst) then
            report w
              (Printf.sprintf "type mismatch: %s not assignable to %s"
                 (ty_to_string src) (ty_to_string dst))
    in
    let check_label w l =
      if l < 0 || l >= nblocks then report w (Printf.sprintf "bad label L%d" l)
    in
    let check_field w fld =
      if fld.fcls < 0 || fld.fcls >= Array.length p.classes then begin
        report w (Printf.sprintf "bad field class id %d" fld.fcls);
        false
      end
      else if
        fld.findex < 0
        || fld.findex
           >= Array.length (Program.class_decl p fld.fcls).own_fields
      then begin
        report w
          (Printf.sprintf "bad field index %d in %s" fld.findex
             (Program.class_name p fld.fcls));
        false
      end
      else true
    in
    let check_instr w = function
      | Alloc { dst; cls; _ } ->
          if cls < 0 || cls >= Array.length p.classes then
            report w (Printf.sprintf "bad class id %d" cls)
          else if
            not (Program.assignable p ~src:(Tobject cls) ~dst:(var_ty w dst))
          then report w "allocation into incompatible variable"
      | Alloc_array { dst; elem; len; _ } ->
          check_assign w ~dst:Tint len;
          if not (Program.assignable p ~src:(Tarray elem) ~dst:(var_ty w dst))
          then report w "array allocation into incompatible variable"
      | New_str { dst; _ } ->
          if not (equal_ty (var_ty w dst) Tstring) then
            report w "string allocation into non-string variable"
      | Move { dst; src } -> check_assign w ~dst:(var_ty w dst) src
      | Unop { dst; op; src } -> (
          match op with
          | Neg -> (
              match operand_ty w src with
              | Some ((Tint | Tdouble) as ty) ->
                  if not (equal_ty (var_ty w dst) ty) then
                    report w "negation result into mismatched variable"
              | _ -> report w "negation of non-numeric operand")
          | Not ->
              check_assign w ~dst:Tbool src;
              check_assign w ~dst:(var_ty w dst) (Bool true)
          | I2d ->
              check_assign w ~dst:Tint src;
              if not (equal_ty (var_ty w dst) Tdouble) then
                report w "i2d result into non-double variable")
      | Binop { dst; op; lhs; rhs } -> (
          match op with
          | Add | Sub | Mul | Div | Rem | Band | Bor | Bxor | Shl | Shr -> (
              (* arithmetic works uniformly on int or double operands and
                 the result carries the operand type *)
              match (operand_ty w lhs, operand_ty w rhs) with
              | Some Tint, Some Tint ->
                  if not (equal_ty (var_ty w dst) Tint) then
                    report w "int arithmetic into non-int variable"
              | Some Tdouble, Some Tdouble ->
                  if not (equal_ty (var_ty w dst) Tdouble) then
                    report w "double arithmetic into non-double variable"
              | _ -> report w "arithmetic on non-numeric or mixed operands")
          | Lt | Le | Gt | Ge ->
              (match (operand_ty w lhs, operand_ty w rhs) with
              | Some Tint, Some Tint | Some Tdouble, Some Tdouble -> ()
              | _ -> report w "comparison on non-numeric or mixed operands");
              check_assign w ~dst:(var_ty w dst) (Bool true)
          | Eq | Ne -> check_assign w ~dst:(var_ty w dst) (Bool true))
      | Load_field { dst; obj; fld } ->
          if check_field w fld then begin
            (match var_ty w obj with
            | Tobject c ->
                if not (Program.is_subclass p ~sub:c ~super:fld.fcls) then
                  report w "field load from unrelated class"
            | ty ->
                report w
                  (Printf.sprintf "field load from non-object %s"
                     (ty_to_string ty)));
            let fty = Program.field_ty p fld in
            if not (Program.assignable p ~src:fty ~dst:(var_ty w dst)) then
              report w "field load into incompatible variable"
          end
      | Store_field { obj; fld; src } ->
          if check_field w fld then begin
            (match var_ty w obj with
            | Tobject c ->
                if not (Program.is_subclass p ~sub:c ~super:fld.fcls) then
                  report w "field store to unrelated class"
            | ty ->
                report w
                  (Printf.sprintf "field store to non-object %s"
                     (ty_to_string ty)));
            check_assign w ~dst:(Program.field_ty p fld) src
          end
      | Load_static { dst; st } ->
          if st < 0 || st >= Array.length p.statics then
            report w (Printf.sprintf "bad static id %d" st)
          else if
            not
              (Program.assignable p
                 ~src:(Program.static_decl p st).sty
                 ~dst:(var_ty w dst))
          then report w "static load into incompatible variable"
      | Store_static { st; src } ->
          if st < 0 || st >= Array.length p.statics then
            report w (Printf.sprintf "bad static id %d" st)
          else check_assign w ~dst:(Program.static_decl p st).sty src
      | Load_elem { dst; arr; idx } -> (
          check_assign w ~dst:Tint idx;
          match var_ty w arr with
          | Tarray elem ->
              if not (Program.assignable p ~src:elem ~dst:(var_ty w dst)) then
                report w "element load into incompatible variable"
          | ty ->
              report w
                (Printf.sprintf "element load from non-array %s"
                   (ty_to_string ty)))
      | Store_elem { arr; idx; src } -> (
          check_assign w ~dst:Tint idx;
          match var_ty w arr with
          | Tarray elem -> check_assign w ~dst:elem src
          | ty ->
              report w
                (Printf.sprintf "element store to non-array %s"
                   (ty_to_string ty)))
      | Array_length { dst; arr } -> (
          (match var_ty w arr with
          | Tarray _ -> ()
          | ty ->
              report w
                (Printf.sprintf "length of non-array %s" (ty_to_string ty)));
          if not (equal_ty (var_ty w dst) Tint) then
            report w "array length into non-int variable")
      | Call { dst; meth; args; _ } | Remote_call { dst; meth; args; _ } -> (
          if meth < 0 || meth >= Array.length p.methods then
            report w (Printf.sprintf "bad method id %d" meth)
          else begin
            let callee = Program.method_decl p meth in
            if List.length args <> Array.length callee.params then
              report w
                (Printf.sprintf "%s expects %d arguments, got %d" callee.mname
                   (Array.length callee.params) (List.length args))
            else
              List.iteri
                (fun i arg -> check_assign w ~dst:callee.params.(i) arg)
                args;
            match dst with
            | Some d ->
                if equal_ty callee.ret Tvoid then
                  report w "void call with a destination"
                else if
                  not (Program.assignable p ~src:callee.ret ~dst:(var_ty w d))
                then report w "call result into incompatible variable"
            | None -> ()
          end)
    in
    let check_remote_specifics w = function
      | Remote_call { meth; _ } when meth >= 0 && meth < Array.length p.methods
        -> (
          let callee = Program.method_decl p meth in
          match callee.owner with
          | Some cid when (Program.class_decl p cid).remote -> ()
          | Some cid ->
              report w
                (Printf.sprintf "remote call to method of non-remote class %s"
                   (Program.class_name p cid))
          | None -> report w "remote call to ownerless method")
      | _ -> ()
    in
    Array.iteri
      (fun bi (blk : block) ->
        let w = where bi in
        List.iter
          (fun i ->
            check_instr w i;
            check_remote_specifics w i)
          blk.body;
        match blk.term with
        | Ret None ->
            if not (equal_ty m.ret Tvoid) then
              report w "value-returning method falls through ret"
        | Ret (Some op) ->
            if equal_ty m.ret Tvoid then report w "void method returns a value"
            else check_assign w ~dst:m.ret op
        | Jmp l -> check_label w l
        | Br { cond; ifso; ifnot } ->
            check_assign w ~dst:Tbool cond;
            check_label w ifso;
            check_label w ifnot)
      m.blocks;
    if nblocks = 0 then report where_base "method has no blocks"
  in
  Array.iter check_method p.methods;
  List.rev !errors

let check_exn p =
  match check p with
  | [] -> ()
  | errs ->
      let msg =
        String.concat "\n"
          (List.map (fun e -> Format.asprintf "%a" pp_error e) errs)
      in
      failwith ("Typecheck failed:\n" ^ msg)
