lib/jir/builder.ml: Array Instr List Printf Program Types
