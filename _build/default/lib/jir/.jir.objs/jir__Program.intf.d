lib/jir/program.mli: Instr Types
