lib/jir/interp.ml: Array Float Format Hashtbl Instr List Printf Program String Types
