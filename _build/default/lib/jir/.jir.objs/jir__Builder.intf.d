lib/jir/builder.mli: Instr Program Types
