lib/jir/interp.mli: Format Program Types
