lib/jir/instr.mli: Types
