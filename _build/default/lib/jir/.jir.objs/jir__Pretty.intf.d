lib/jir/pretty.mli: Format Instr Program
