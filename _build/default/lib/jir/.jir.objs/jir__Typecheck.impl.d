lib/jir/typecheck.ml: Array Format Instr List Printf Program String Types
