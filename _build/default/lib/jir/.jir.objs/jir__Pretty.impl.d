lib/jir/pretty.ml: Array Format Instr List Printf Program Types
