lib/jir/types.ml: Format Printf
