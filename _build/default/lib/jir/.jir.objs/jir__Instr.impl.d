lib/jir/instr.ml: List Option Types
