lib/jir/typecheck.mli: Format Program
