lib/jir/types.mli: Format
