lib/jir/program.ml: Array Instr List Option Printf String Types
