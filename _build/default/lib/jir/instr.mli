(** JIR instructions, terminators and basic blocks. *)

open Types

type binop =
  | Add | Sub | Mul | Div | Rem
  | Band | Bor | Bxor | Shl | Shr
  | Lt | Le | Gt | Ge | Eq | Ne

type unop = Neg | Not | I2d  (** int to double widening (Java's implicit conversion) *)

type operand =
  | Null
  | Bool of bool
  | Int of int
  | Double of float
  | Str of string  (** interned literal; carries no allocation site *)
  | Var of var

type instr =
  | Alloc of { dst : var; cls : class_id; site : site }
      (** [new C()]; fields initialised to zero/null *)
  | Alloc_array of { dst : var; elem : ty; len : operand; site : site }
  | New_str of { dst : var; value : string; site : site }
      (** a string allocation that the analyses track as a heap node *)
  | Move of { dst : var; src : operand }
  | Unop of { dst : var; op : unop; src : operand }
  | Binop of { dst : var; op : binop; lhs : operand; rhs : operand }
  | Load_field of { dst : var; obj : var; fld : field_ref }
  | Store_field of { obj : var; fld : field_ref; src : operand }
  | Load_static of { dst : var; st : static_id }
  | Store_static of { st : static_id; src : operand }
  | Load_elem of { dst : var; arr : var; idx : operand }
  | Store_elem of { arr : var; idx : operand; src : operand }
  | Array_length of { dst : var; arr : var }
  | Call of { dst : var option; meth : method_id; args : operand list; site : site }
      (** direct (monomorphic) local call; receiver, if any, is [args]'s head *)
  | Remote_call of {
      dst : var option;
      recv : operand;  (** remote reference; not serialized as an argument *)
      meth : method_id;
      args : operand list;
      site : site;  (** the RMI call-site id the optimizer specializes for *)
    }

type terminator =
  | Ret of operand option
  | Jmp of label
  | Br of { cond : operand; ifso : label; ifnot : label }

(** SSA phi; empty before SSA construction. *)
type phi = { pdst : var; pargs : (label * operand) list }

type block = {
  mutable phis : phi list;
  mutable body : instr list;
  mutable term : terminator;
}

(** Variable defined by an instruction, if any. *)
val def_of_instr : instr -> var option

(** Variables read by an instruction (operands first, then address vars). *)
val uses_of_instr : instr -> var list

val uses_of_operand : operand -> var list
val uses_of_terminator : terminator -> var list
val successors : terminator -> label list

(** Allocation site carried by the instruction, if it allocates. *)
val alloc_site : instr -> site option

(** Rewrites every operand (including address vars wrapped as [Var])
    with [f]; used by the SSA renaming pass.  [f] must return [Var _]
    when given the address position of a load/store. *)
val map_uses : (operand -> operand) -> instr -> instr

val map_def : (var -> var) -> instr -> instr
val map_uses_terminator : (operand -> operand) -> terminator -> terminator
