(** Imperative construction API for JIR programs.

    Typical use: declare classes and method signatures first (so
    mutually recursive references resolve), then [define] each body,
    then [finish].  Bodies are written pre-SSA with mutable virtual
    registers; the SSA pass rewrites them.  Every allocation and every
    call receives a globally unique site number automatically. *)

open Types

type t
type mbuilder

val create : unit -> t

(** {1 Declarations} *)

val declare_class : t -> ?super:class_id -> ?remote:bool -> string -> class_id
val add_field : t -> class_id -> string -> ty -> field_ref
val declare_static : t -> string -> ty -> static_id

(** Signature-only declaration; the body comes later via [define]. *)
val declare_method :
  t -> ?owner:class_id -> name:string -> params:ty list -> ret:ty -> unit -> method_id

(** [define b mid f] builds [mid]'s body by running [f] on a fresh
    method builder positioned at the entry block.
    @raise Invalid_argument if [mid] was already defined. *)
val define : t -> method_id -> (mbuilder -> unit) -> unit

(** Validates that every declared method was defined and every block
    terminated, then freezes the program. *)
val finish : t -> Program.t

(** {1 Method-body construction} *)

val param : mbuilder -> int -> var
val fresh : mbuilder -> ty -> var

(** Low-level block plumbing (the structured helpers below suffice for
    most bodies). *)

val new_block : mbuilder -> label
val switch_to : mbuilder -> label -> unit
val current_label : mbuilder -> label

(** {2 Instruction emitters} *)

val alloc : mbuilder -> class_id -> var
val alloc_array : mbuilder -> ty -> Instr.operand -> var
val new_str : mbuilder -> string -> var
val move : mbuilder -> var -> Instr.operand -> unit
val binop : mbuilder -> Instr.binop -> Instr.operand -> Instr.operand -> var
val unop : mbuilder -> Instr.unop -> Instr.operand -> var
val load_field : mbuilder -> var -> field_ref -> var
val store_field : mbuilder -> var -> field_ref -> Instr.operand -> unit
val load_static : mbuilder -> static_id -> var
val store_static : mbuilder -> static_id -> Instr.operand -> unit
val load_elem : mbuilder -> var -> Instr.operand -> var
val store_elem : mbuilder -> var -> Instr.operand -> Instr.operand -> unit
val array_length : mbuilder -> var -> var

(** [call mb meth args] returns [Some dst] unless the callee is void. *)
val call : mbuilder -> method_id -> Instr.operand list -> var option

(** Invoke and discard the result (the paper's "return value ignored"
    call-site optimization keys off this). *)
val call_ignore : mbuilder -> method_id -> Instr.operand list -> unit

(** [rcall mb recv meth args] — remote method invocation. *)
val rcall : mbuilder -> Instr.operand -> method_id -> Instr.operand list -> var option

val rcall_ignore : mbuilder -> Instr.operand -> method_id -> Instr.operand list -> unit

(** {2 Terminators} *)

val ret : mbuilder -> Instr.operand option -> unit
val jmp : mbuilder -> label -> unit
val br : mbuilder -> Instr.operand -> label -> label -> unit

(** {2 Structured control flow} *)

(** [if_ mb cond then_ else_] leaves the builder at the join block. *)
val if_ : mbuilder -> Instr.operand -> (unit -> unit) -> (unit -> unit) -> unit

(** [loop_up mb ~from ~limit body] emits
    [for (i = from; i < limit; i++) body i]. *)
val loop_up : mbuilder -> from:Instr.operand -> limit:Instr.operand -> (var -> unit) -> unit

(** [while_ mb cond body] — [cond] emits the condition computation into
    the header block each time and returns the operand to branch on. *)
val while_ : mbuilder -> (unit -> Instr.operand) -> (unit -> unit) -> unit
