open Types

type pending_method = {
  mid : method_id;
  mname : string;
  owner : class_id option;
  params : ty array;
  ret : ty;
  mutable body : (ty array * Instr.block array) option;
}

type pending_class = {
  cid : class_id;
  cname : string;
  super : class_id option;
  mutable fields : (string * ty) list;  (* reversed *)
  remote : bool;
}

type t = {
  mutable classes : pending_class list;  (* reversed *)
  mutable methods : pending_method list;  (* reversed *)
  mutable statics : Program.static_decl list;  (* reversed *)
  mutable next_class : int;
  mutable next_method : int;
  mutable next_static : int;
  mutable next_site : int;
}

type pending_block = {
  blabel : label;
  mutable rev_body : Instr.instr list;
  mutable bterm : Instr.terminator option;
}

type mbuilder = {
  b : t;
  m : pending_method;
  mutable vars : ty list;  (* reversed; includes params *)
  mutable nvars : int;
  mutable blocks : pending_block list;  (* reversed *)
  mutable nblocks : int;
  mutable cur : pending_block;
}

let create () =
  {
    classes = [];
    methods = [];
    statics = [];
    next_class = 0;
    next_method = 0;
    next_static = 0;
    next_site = 0;
  }

let fresh_site b =
  let s = b.next_site in
  b.next_site <- s + 1;
  s

let declare_class b ?super ?(remote = false) cname =
  let cid = b.next_class in
  b.next_class <- cid + 1;
  b.classes <- { cid; cname; super; fields = []; remote } :: b.classes;
  cid

let find_pending_class b cid =
  match List.find_opt (fun c -> c.cid = cid) b.classes with
  | Some c -> c
  | None -> invalid_arg (Printf.sprintf "Builder: unknown class id %d" cid)

let add_field b cid name ty =
  let c = find_pending_class b cid in
  let findex = List.length c.fields in
  c.fields <- (name, ty) :: c.fields;
  { fcls = cid; findex }

let declare_static b sname sty =
  let sid = b.next_static in
  b.next_static <- sid + 1;
  b.statics <- { Program.sid; sname; sty } :: b.statics;
  sid

let declare_method b ?owner ~name ~params ~ret () =
  let mid = b.next_method in
  b.next_method <- mid + 1;
  b.methods <-
    { mid; mname = name; owner; params = Array.of_list params; ret; body = None }
    :: b.methods;
  mid

let find_pending_method b mid =
  match List.find_opt (fun m -> m.mid = mid) b.methods with
  | Some m -> m
  | None -> invalid_arg (Printf.sprintf "Builder: unknown method id %d" mid)

(* --- method building --- *)

let mk_block mb =
  let blk = { blabel = mb.nblocks; rev_body = []; bterm = None } in
  mb.nblocks <- mb.nblocks + 1;
  mb.blocks <- blk :: mb.blocks;
  blk

let param mb i =
  if i < 0 || i >= Array.length mb.m.params then
    invalid_arg
      (Printf.sprintf "Builder.param: %s has no parameter %d" mb.m.mname i);
  i

let fresh mb ty =
  let v = mb.nvars in
  mb.nvars <- v + 1;
  mb.vars <- ty :: mb.vars;
  v

let new_block mb = (mk_block mb).blabel

let find_block mb l =
  match List.find_opt (fun blk -> blk.blabel = l) mb.blocks with
  | Some blk -> blk
  | None -> invalid_arg (Printf.sprintf "Builder: unknown block %d" l)

let switch_to mb l = mb.cur <- find_block mb l
let current_label mb = mb.cur.blabel

let emit mb instr =
  if mb.cur.bterm <> None then
    invalid_arg
      (Printf.sprintf "Builder: emitting into terminated block %d of %s"
         mb.cur.blabel mb.m.mname);
  mb.cur.rev_body <- instr :: mb.cur.rev_body

let terminate mb term =
  if mb.cur.bterm <> None then
    invalid_arg
      (Printf.sprintf "Builder: block %d of %s already terminated" mb.cur.blabel
         mb.m.mname);
  mb.cur.bterm <- Some term

let alloc mb cls =
  let dst = fresh mb (Tobject cls) in
  emit mb (Instr.Alloc { dst; cls; site = fresh_site mb.b });
  dst

let alloc_array mb elem len =
  let dst = fresh mb (Tarray elem) in
  emit mb (Instr.Alloc_array { dst; elem; len; site = fresh_site mb.b });
  dst

let new_str mb value =
  let dst = fresh mb Tstring in
  emit mb (Instr.New_str { dst; value; site = fresh_site mb.b });
  dst

let move mb dst src = emit mb (Instr.Move { dst; src })

(* forward declaration: var_ty is defined below but needed for operand
   type inference *)
let rec operand_ty mb = function
  | Instr.Null -> invalid_arg "Builder: null has no inferable type"
  | Instr.Bool _ -> Tbool
  | Instr.Int _ -> Tint
  | Instr.Double _ -> Tdouble
  | Instr.Str _ -> Tstring
  | Instr.Var v -> var_ty mb v

and var_ty mb v =
  let vars = Array.of_list (List.rev mb.vars) in
  if v < 0 || v >= Array.length vars then
    invalid_arg (Printf.sprintf "Builder: unknown var %d" v);
  vars.(v)

let binop_result_ty mb op lhs =
  match (op : Instr.binop) with
  | Add | Sub | Mul | Div | Rem | Band | Bor | Bxor | Shl | Shr ->
      (* arithmetic result follows the operand type (int or double) *)
      operand_ty mb lhs
  | Lt | Le | Gt | Ge | Eq | Ne -> Tbool

let binop mb op lhs rhs =
  let dst = fresh mb (binop_result_ty mb op lhs) in
  emit mb (Instr.Binop { dst; op; lhs; rhs });
  dst

let unop mb op src =
  let dst =
    fresh mb
      (match op with
      | Instr.Neg -> operand_ty mb src
      | Instr.Not -> Tbool
      | Instr.I2d -> Tdouble)
  in
  emit mb (Instr.Unop { dst; op; src });
  dst

let field_ty_of mb fld =
  (* fields of pending classes; mirror Program.field_ty *)
  let c = find_pending_class mb.b fld.fcls in
  let fields = Array.of_list (List.rev c.fields) in
  if fld.findex < 0 || fld.findex >= Array.length fields then
    invalid_arg "Builder: bad field reference";
  snd fields.(fld.findex)

let load_field mb obj fld =
  let dst = fresh mb (field_ty_of mb fld) in
  emit mb (Instr.Load_field { dst; obj; fld });
  dst

let store_field mb obj fld src = emit mb (Instr.Store_field { obj; fld; src })

let static_ty_of mb st =
  match List.find_opt (fun (s : Program.static_decl) -> s.sid = st) mb.b.statics with
  | Some s -> s.sty
  | None -> invalid_arg (Printf.sprintf "Builder: unknown static %d" st)

let load_static mb st =
  let dst = fresh mb (static_ty_of mb st) in
  emit mb (Instr.Load_static { dst; st });
  dst

let store_static mb st src = emit mb (Instr.Store_static { st; src })

let load_elem mb arr idx =
  let elem =
    match var_ty mb arr with
    | Tarray t -> t
    | ty ->
        invalid_arg
          (Printf.sprintf "Builder.load_elem: var %d has non-array type %s" arr
             (ty_to_string ty))
  in
  let dst = fresh mb elem in
  emit mb (Instr.Load_elem { dst; arr; idx });
  dst

let store_elem mb arr idx src = emit mb (Instr.Store_elem { arr; idx; src })

let array_length mb arr =
  let dst = fresh mb Tint in
  emit mb (Instr.Array_length { dst; arr });
  dst

let call mb meth args =
  let callee = find_pending_method mb.b meth in
  let dst =
    match callee.ret with Tvoid -> None | ty -> Some (fresh mb ty)
  in
  emit mb (Instr.Call { dst; meth; args; site = fresh_site mb.b });
  dst

let call_ignore mb meth args =
  emit mb (Instr.Call { dst = None; meth; args; site = fresh_site mb.b })

let rcall mb recv meth args =
  let callee = find_pending_method mb.b meth in
  let dst =
    match callee.ret with Tvoid -> None | ty -> Some (fresh mb ty)
  in
  emit mb (Instr.Remote_call { dst; recv; meth; args; site = fresh_site mb.b });
  dst

let rcall_ignore mb recv meth args =
  emit mb (Instr.Remote_call { dst = None; recv; meth; args; site = fresh_site mb.b })

let ret mb op = terminate mb (Instr.Ret op)
let jmp mb l = terminate mb (Instr.Jmp l)
let br mb cond ifso ifnot = terminate mb (Instr.Br { cond; ifso; ifnot })

let if_ mb cond then_ else_ =
  let bthen = new_block mb in
  let belse = new_block mb in
  let bjoin = new_block mb in
  br mb cond bthen belse;
  switch_to mb bthen;
  then_ ();
  if mb.cur.bterm = None then jmp mb bjoin;
  switch_to mb belse;
  else_ ();
  if mb.cur.bterm = None then jmp mb bjoin;
  switch_to mb bjoin

let while_ mb cond body =
  let bhead = new_block mb in
  let bbody = new_block mb in
  let bexit = new_block mb in
  jmp mb bhead;
  switch_to mb bhead;
  let c = cond () in
  br mb c bbody bexit;
  switch_to mb bbody;
  body ();
  if mb.cur.bterm = None then jmp mb bhead;
  switch_to mb bexit

let loop_up mb ~from ~limit body =
  let i = fresh mb Tint in
  move mb i from;
  let cond () = Instr.Var (binop mb Instr.Lt (Var i) limit) in
  let step () =
    body i;
    if mb.cur.bterm = None then begin
      let next = binop mb Instr.Add (Var i) (Int 1) in
      move mb i (Var next)
    end
  in
  while_ mb cond step

let define b mid f =
  let m = find_pending_method b mid in
  if m.body <> None then
    invalid_arg (Printf.sprintf "Builder.define: %s already defined" m.mname);
  let dummy = { blabel = -1; rev_body = []; bterm = None } in
  let mb =
    {
      b;
      m;
      vars = List.rev (Array.to_list m.params);
      nvars = Array.length m.params;
      blocks = [];
      nblocks = 0;
      cur = dummy;
    }
  in
  let entry = mk_block mb in
  mb.cur <- entry;
  f mb;
  (* implicit return at the end of a void method's last open block *)
  if mb.cur.bterm = None && m.ret = Tvoid then ret mb None;
  (* structured-control-flow helpers can leave join blocks open when
     every branch returned; such blocks are unreachable, but they still
     need a well-typed terminator (the zero value of the return type,
     matching JIR's default-initialisation semantics) *)
  let implicit_term () =
    match m.ret with
    | Tvoid -> Instr.Ret None
    | Tbool -> Instr.Ret (Some (Instr.Bool false))
    | Tint -> Instr.Ret (Some (Instr.Int 0))
    | Tdouble -> Instr.Ret (Some (Instr.Double 0.0))
    | Tstring | Tobject _ | Tarray _ -> Instr.Ret (Some Instr.Null)
  in
  let blocks = Array.make mb.nblocks None in
  List.iter (fun blk -> blocks.(blk.blabel) <- Some blk) mb.blocks;
  let blocks =
    Array.map
      (fun slot ->
        match slot with
        | Some blk ->
            let term =
              match blk.bterm with Some term -> term | None -> implicit_term ()
            in
            { Instr.phis = []; body = List.rev blk.rev_body; term }
        | None -> assert false)
      blocks
  in
  m.body <- Some (Array.of_list (List.rev mb.vars), blocks)

let finish b =
  let classes =
    List.rev b.classes
    |> List.map (fun (c : pending_class) ->
           {
             Program.cid = c.cid;
             cname = c.cname;
             super = c.super;
             own_fields = Array.of_list (List.rev c.fields);
             remote = c.remote;
           })
    |> Array.of_list
  in
  let methods =
    List.rev b.methods
    |> List.map (fun (m : pending_method) ->
           match m.body with
           | Some (var_types, blocks) ->
               {
                 Program.mid = m.mid;
                 mname = m.mname;
                 owner = m.owner;
                 params = m.params;
                 ret = m.ret;
                 var_types;
                 blocks;
               }
           | None ->
               invalid_arg
                 (Printf.sprintf "Builder.finish: method %s never defined"
                    m.mname))
    |> Array.of_list
  in
  let statics = Array.of_list (List.rev b.statics) in
  { Program.classes; methods; statics; num_sites = b.next_site }
