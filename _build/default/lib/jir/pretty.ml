open Instr

let pp_operand ppf = function
  | Null -> Format.pp_print_string ppf "null"
  | Bool b -> Format.pp_print_bool ppf b
  | Int i -> Format.pp_print_int ppf i
  | Double f -> Format.fprintf ppf "%g" f
  | Str s -> Format.fprintf ppf "%S" s
  | Var v -> Format.fprintf ppf "v%d" v

let binop_name = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Rem -> "%"
  | Band -> "&" | Bor -> "|" | Bxor -> "^" | Shl -> "<<" | Shr -> ">>"
  | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">=" | Eq -> "==" | Ne -> "!="

let pp_ty p ppf ty = Types.pp_ty ~names:(Program.class_name p) ppf ty

let pp_args ppf args =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
    pp_operand ppf args

let pp_instr p ppf instr =
  let fld_name fld =
    Printf.sprintf "%s.%s" (Program.class_name p fld.Types.fcls)
      (Program.field_name p fld)
  in
  match instr with
  | Alloc { dst; cls; site } ->
      Format.fprintf ppf "v%d = new %s  // site %d" dst (Program.class_name p cls) site
  | Alloc_array { dst; elem; len; site } ->
      Format.fprintf ppf "v%d = new %a[%a]  // site %d" dst (pp_ty p) elem
        pp_operand len site
  | New_str { dst; value; site } ->
      Format.fprintf ppf "v%d = new String(%S)  // site %d" dst value site
  | Move { dst; src } -> Format.fprintf ppf "v%d = %a" dst pp_operand src
  | Unop { dst; op; src } ->
      Format.fprintf ppf "v%d = %s%a" dst
        (match op with Neg -> "-" | Not -> "!" | I2d -> "(double)")
        pp_operand src
  | Binop { dst; op; lhs; rhs } ->
      Format.fprintf ppf "v%d = %a %s %a" dst pp_operand lhs (binop_name op)
        pp_operand rhs
  | Load_field { dst; obj; fld } ->
      Format.fprintf ppf "v%d = v%d.%s" dst obj (fld_name fld)
  | Store_field { obj; fld; src } ->
      Format.fprintf ppf "v%d.%s = %a" obj (fld_name fld) pp_operand src
  | Load_static { dst; st } ->
      Format.fprintf ppf "v%d = static %s" dst (Program.static_decl p st).sname
  | Store_static { st; src } ->
      Format.fprintf ppf "static %s = %a" (Program.static_decl p st).sname
        pp_operand src
  | Load_elem { dst; arr; idx } ->
      Format.fprintf ppf "v%d = v%d[%a]" dst arr pp_operand idx
  | Store_elem { arr; idx; src } ->
      Format.fprintf ppf "v%d[%a] = %a" arr pp_operand idx pp_operand src
  | Array_length { dst; arr } -> Format.fprintf ppf "v%d = v%d.length" dst arr
  | Call { dst; meth; args; site } ->
      let name = (Program.method_decl p meth).mname in
      (match dst with
      | Some d -> Format.fprintf ppf "v%d = call %s(%a)  // site %d" d name pp_args args site
      | None -> Format.fprintf ppf "call %s(%a)  // site %d" name pp_args args site)
  | Remote_call { dst; recv; meth; args; site } ->
      let name = (Program.method_decl p meth).mname in
      (match dst with
      | Some d ->
          Format.fprintf ppf "v%d = rcall %a.%s(%a)  // callsite %d" d pp_operand
            recv name pp_args args site
      | None ->
          Format.fprintf ppf "rcall %a.%s(%a)  // callsite %d" pp_operand recv
            name pp_args args site)

let pp_terminator ppf = function
  | Ret None -> Format.pp_print_string ppf "ret"
  | Ret (Some op) -> Format.fprintf ppf "ret %a" pp_operand op
  | Jmp l -> Format.fprintf ppf "jmp L%d" l
  | Br { cond; ifso; ifnot } ->
      Format.fprintf ppf "br %a ? L%d : L%d" pp_operand cond ifso ifnot

let pp_phi ppf { pdst; pargs } =
  Format.fprintf ppf "v%d = phi(%a)" pdst
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf (l, op) -> Format.fprintf ppf "L%d: %a" l pp_operand op))
    pargs

let pp_method p ppf (m : Program.method_decl) =
  let owner =
    match m.owner with
    | Some cid -> Program.class_name p cid ^ "."
    | None -> ""
  in
  Format.fprintf ppf "@[<v2>%a %s%s(%a) {" (pp_ty p) m.ret owner m.mname
    (Format.pp_print_seq
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf (i, ty) -> Format.fprintf ppf "%a v%d" (pp_ty p) ty i))
    (Array.to_seq (Array.mapi (fun i ty -> (i, ty)) m.params));
  Array.iteri
    (fun bi (blk : block) ->
      Format.fprintf ppf "@,L%d:" bi;
      List.iter (fun phi -> Format.fprintf ppf "@,  %a" pp_phi phi) blk.phis;
      List.iter (fun i -> Format.fprintf ppf "@,  %a" (pp_instr p) i) blk.body;
      Format.fprintf ppf "@,  %a" pp_terminator blk.term)
    m.blocks;
  Format.fprintf ppf "@]@,}"

let pp_program ppf (p : Program.t) =
  Array.iter
    (fun (c : Program.class_decl) ->
      Format.fprintf ppf "@[<v2>%sclass %s%s {"
        (if c.remote then "remote " else "")
        c.cname
        (match c.super with
        | Some s -> " extends " ^ Program.class_name p s
        | None -> "");
      Array.iter
        (fun (n, ty) -> Format.fprintf ppf "@,%a %s;" (pp_ty p) ty n)
        c.own_fields;
      Format.fprintf ppf "@]@,}@,")
    p.classes;
  Array.iter (fun m -> Format.fprintf ppf "%a@," (pp_method p) m) p.methods

let method_to_string p m = Format.asprintf "@[<v>%a@]" (pp_method p) m
