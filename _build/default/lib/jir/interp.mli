(** Reference interpreter for JIR.

    Defines the observable semantics the compiler analyses must
    preserve — in particular the RMI parameter-passing rule: arguments
    and return values of [Remote_call] are passed by deep copy (with
    sharing and cycles preserved inside one call), exactly like RMI
    serialization followed by deserialization.  Local [Call]s pass
    references.  Tests execute programs here and compare observed heap
    shapes against the static heap analysis. *)

open Types

type value =
  | Vnull
  | Vbool of bool
  | Vint of int
  | Vdouble of float
  | Vstr of string
  | Vobj of objv
  | Varr of arrv

and objv = {
  ocls : class_id;
  ofields : value array;
  oid : int;
  osite : site;  (** allocation site that created this object *)
}

and arrv = { aelem : ty; adata : value array; aid : int; asite : site }

type state

(** External executor for [Remote_call] instructions.  When installed,
    the interpreter delegates every remote invocation to the hook
    instead of its built-in deep-copy simulation — this is how the
    distributed driver routes interpreted programs over the real RMI
    runtime.  The hook receives the call-site id, the receiver value,
    the callee and the (uncopied) argument values, and returns the
    result (already copied by whatever transport it used). *)
type remote_hook =
  site:site -> recv:value -> meth:method_id -> value list -> value option

exception Runtime_error of string
exception Step_limit_exceeded

(** [create prog] allocates interpreter state (statics zeroed). *)
val create : ?step_limit:int -> ?remote_hook:remote_hook -> Program.t -> state

val read_static : state -> static_id -> value

(** Number of [Remote_call]s executed so far. *)
val remote_calls : state -> int

(** [run state mid args] executes a method to completion.
    @raise Runtime_error on dynamic type errors or null dereference
    @raise Step_limit_exceeded when the step budget runs out *)
val run : state -> method_id -> value list -> value

(** Structural deep equality that tolerates (and requires isomorphic)
    cycles; object identities are ignored. *)
val value_equal : value -> value -> bool

(** Deep copy preserving internal sharing — the RMI cloning operation,
    exposed for tests. *)
val deep_copy : value -> value

val pp_value : Format.formatter -> value -> unit
