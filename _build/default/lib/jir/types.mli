(** Core identifiers and types of JIR, the small Java-like IR.

    JIR models exactly the language fragment the paper's analyses
    consume: classes with typed fields and single inheritance, static
    variables, methods made of basic blocks of three-address
    instructions, object/array allocation sites, and local vs. remote
    method calls (a class can be [remote] in the JavaParty sense). *)

type class_id = int
type method_id = int
type static_id = int

(** SSA-convertible virtual register; method-local. *)
type var = int

(** Basic-block index within a method; block 0 is the entry. *)
type label = int

(** Globally unique allocation-site number (paper Section 2, step 2). *)
type site = int

type ty =
  | Tvoid
  | Tbool
  | Tint
  | Tdouble
  | Tstring   (** immutable leaf object, as in Java *)
  | Tobject of class_id
  | Tarray of ty

(** Fields are addressed by declaring class and index therein. *)
type field_ref = { fcls : class_id; findex : int }

val equal_ty : ty -> ty -> bool

(** [is_ref ty] holds for object, array and string types ([Tnull]-able). *)
val is_ref : ty -> bool

val pp_ty : names:(class_id -> string) -> Format.formatter -> ty -> unit

(** [ty_to_string] with bare class ids; debugging aid. *)
val ty_to_string : ty -> string
