(** Whole-program representation: classes, statics and methods. *)

open Types

type class_decl = {
  cid : class_id;
  cname : string;
  super : class_id option;
  own_fields : (string * ty) array;  (** fields declared by this class *)
  remote : bool;  (** JavaParty [remote] class: methods invokable via RMI *)
}

type method_decl = {
  mid : method_id;
  mname : string;
  owner : class_id option;  (** [None] for free/static functions *)
  params : ty array;  (** parameter [i] is variable [i] *)
  ret : ty;
  mutable var_types : ty array;  (** types of all virtual registers *)
  mutable blocks : Instr.block array;  (** entry is block 0 *)
}

type static_decl = { sid : static_id; sname : string; sty : ty }

type t = {
  classes : class_decl array;
  methods : method_decl array;
  statics : static_decl array;
  num_sites : int;  (** allocation + call sites are numbered [0..num_sites-1] *)
}

val class_decl : t -> class_id -> class_decl
val method_decl : t -> method_id -> method_decl
val static_decl : t -> static_id -> static_decl

val class_name : t -> class_id -> string

val find_class : t -> string -> class_decl option
val find_method : t -> string -> method_decl option

(** [is_subclass p ~sub ~super] follows the [super] chain. *)
val is_subclass : t -> sub:class_id -> super:class_id -> bool

(** [assignable p ~src ~dst] value-level assignability: equal types,
    subclass upcast, or null-typed into any reference. *)
val assignable : t -> src:ty -> dst:ty -> bool

(** All fields of [cls] including inherited ones, in layout order
    (root class first).  Element [i] is the flat field index [i]. *)
val all_fields : t -> class_id -> (string * ty) array

(** Flat layout index of [fld] in instances of any subclass of
    [fld.fcls].  @raise Invalid_argument on a bogus reference. *)
val flat_index : t -> field_ref -> int

(** [field_ty p fld] declared type of the referenced field. *)
val field_ty : t -> field_ref -> ty

(** [field_name p fld]. *)
val field_name : t -> field_ref -> string

(** Resolve a field by name anywhere on [cls]'s inheritance chain. *)
val find_field : t -> class_id -> string -> field_ref option

(** Methods owned by remote classes — the RMI-invokable set. *)
val remote_methods : t -> method_decl list

(** Iterate over every instruction of every method. *)
val iter_instrs : t -> (method_decl -> label -> Instr.instr -> unit) -> unit

(** All remote call sites in the program as
    [(caller, site, callee, dst present, args)]. *)
val remote_callsites :
  t -> (method_decl * site * method_id * bool * Instr.operand list) list
