type class_id = int
type method_id = int
type static_id = int
type var = int
type label = int
type site = int

type ty =
  | Tvoid
  | Tbool
  | Tint
  | Tdouble
  | Tstring
  | Tobject of class_id
  | Tarray of ty

type field_ref = { fcls : class_id; findex : int }

let rec equal_ty a b =
  match (a, b) with
  | Tvoid, Tvoid | Tbool, Tbool | Tint, Tint | Tdouble, Tdouble | Tstring, Tstring
    ->
      true
  | Tobject c1, Tobject c2 -> c1 = c2
  | Tarray t1, Tarray t2 -> equal_ty t1 t2
  | (Tvoid | Tbool | Tint | Tdouble | Tstring | Tobject _ | Tarray _), _ -> false

let is_ref = function
  | Tobject _ | Tarray _ | Tstring -> true
  | Tvoid | Tbool | Tint | Tdouble -> false

let rec pp_ty ~names ppf = function
  | Tvoid -> Format.pp_print_string ppf "void"
  | Tbool -> Format.pp_print_string ppf "bool"
  | Tint -> Format.pp_print_string ppf "int"
  | Tdouble -> Format.pp_print_string ppf "double"
  | Tstring -> Format.pp_print_string ppf "String"
  | Tobject c -> Format.pp_print_string ppf (names c)
  | Tarray t -> Format.fprintf ppf "%a[]" (pp_ty ~names) t

let ty_to_string ty =
  Format.asprintf "%a" (pp_ty ~names:(fun c -> Printf.sprintf "C%d" c)) ty
