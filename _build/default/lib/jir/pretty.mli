(** Human-readable printing of JIR programs; used by tests, debugging
    and the optimizer's analysis report. *)

val pp_operand : Format.formatter -> Instr.operand -> unit
val pp_instr : Program.t -> Format.formatter -> Instr.instr -> unit
val pp_terminator : Format.formatter -> Instr.terminator -> unit
val pp_method : Program.t -> Format.formatter -> Program.method_decl -> unit
val pp_program : Format.formatter -> Program.t -> unit
val method_to_string : Program.t -> Program.method_decl -> string
