(** Cluster assembly: [n] machines sharing a class table, a compiler
    plan table and an optimization configuration.

    Two execution modes mirror the substitution documented in
    DESIGN.md:

    - [Sync]: everything on one thread.  A machine awaiting a reply
      pumps the other machines' queues directly — deterministic, used
      by tests and by the statistics tables.
    - [Parallel]: machines 1..n-1 are OCaml domains running serve
      loops; machine 0 is the caller's domain.  Real parallelism for
      wall-clock measurements (the paper's 2-CPU runs). *)

type mode = Sync | Parallel

type t

val create :
  ?mode:mode ->
  n:int ->
  meta:Rmi_serial.Class_meta.t ->
  config:Config.t ->
  plans:(int, Rmi_core.Plan.t) Hashtbl.t ->
  metrics:Rmi_stats.Metrics.t ->
  unit ->
  t

val mode : t -> mode
val size : t -> int
val node : t -> int -> Node.t
val metrics : t -> Rmi_stats.Metrics.t

(** Start worker domains (no-op in [Sync] mode). *)
val start : t -> unit

(** Shut workers down and join them (no-op in [Sync] mode).
    Idempotent. *)
val stop : t -> unit

(** [run fabric f] = [start]; [f fabric]; [stop] (also on exception). *)
val run : t -> (t -> 'a) -> 'a
