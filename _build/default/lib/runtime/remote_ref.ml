type t = { machine : int; obj : int }

let make ~machine ~obj = { machine; obj }
let pp ppf t = Format.fprintf ppf "remote(m%d,o%d)" t.machine t.obj
let equal a b = a.machine = b.machine && a.obj = b.obj
