(** Optimization configurations — the rows of every table in the
    paper's evaluation (Section 5's legend). *)

type serializer =
  | Class_specific
      (** per-class generated serializers (KaRMI/Manta state of the
          art): compact type ids, dynamic dispatch, cycle table always *)
  | Site_specific
      (** the paper's call-site specialized marshalers *)

type t = {
  name : string;  (** the paper's row label, e.g. "site + reuse" *)
  serializer : serializer;
  elide_cycle : bool;  (** honor the cycle analysis verdict (Sec. 3.2) *)
  reuse : bool;  (** honor the escape analysis verdict (Sec. 3.3) *)
}

val class_ : t
val site : t
val site_cycle : t
val site_reuse : t
val site_reuse_cycle : t

(** The five rows in paper order. *)
val all : t list

val find : string -> t option
val pp : Format.formatter -> t -> unit
