(** A reference to an object exported on some machine of the cluster —
    what a JavaParty [remote] instance handle compiles to. *)

type t = { machine : int; obj : int }

val make : machine:int -> obj:int -> t
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
