(** JavaParty-style remote object management.

    In JavaParty "the underlying details of remote object placement
    [and] remote thread allocation ... are hidden".  The registry hides
    them here: it hands out cluster-unique object ids, places new
    remote objects round-robin over the machines (JavaParty's default
    distribution — the reason half of LU's and the webserver's RPCs are
    local in Tables 4/8), and registers the method handlers on the
    owning machine. *)

type t

type method_spec = {
  meth : int;  (** method id (JIR method id for model-driven apps) *)
  has_ret : bool;
  handler : Node.handler;
}

val create : Fabric.t -> t

(** Machine that the next [new_remote] will place on. *)
val next_machine : t -> int

(** [new_remote t methods] allocates a fresh object id, picks the next
    machine round-robin, exports the handlers there, and returns the
    remote reference. *)
val new_remote : t -> method_spec list -> Remote_ref.t

(** Like [new_remote] with explicit placement. *)
val new_remote_on : t -> machine:int -> method_spec list -> Remote_ref.t

(** Number of objects exported so far. *)
val exported : t -> int
