lib/runtime/config.ml: Format List String
