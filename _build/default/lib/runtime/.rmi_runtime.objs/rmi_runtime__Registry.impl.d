lib/runtime/registry.ml: Fabric List Node Printf Remote_ref
