lib/runtime/fabric.ml: Array Domain Fun List Node Printf Rmi_net
