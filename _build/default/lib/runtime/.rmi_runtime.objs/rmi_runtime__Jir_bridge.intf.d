lib/runtime/jir_bridge.mli: Jir Rmi_serial
