lib/runtime/jir_bridge.ml: Array Atomic Hashtbl Jir Rmi_serial
