lib/runtime/node.mli: Config Hashtbl Remote_ref Rmi_core Rmi_net Rmi_serial Trace
