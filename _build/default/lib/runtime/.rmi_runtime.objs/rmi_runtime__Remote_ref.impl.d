lib/runtime/remote_ref.ml: Format
