lib/runtime/node.ml: Array Config Hashtbl Logs Msgbuf Mutex Option Printf Protocol Remote_ref Rmi_core Rmi_net Rmi_serial Rmi_stats Rmi_wire Trace Unix
