lib/runtime/distributed.ml: Array Config Fabric Hashtbl Jir Jir_bridge List Mutex Node Registry Remote_ref Rmi_core Rmi_serial Rmi_stats Unix
