lib/runtime/fabric.mli: Config Hashtbl Node Rmi_core Rmi_serial Rmi_stats
