lib/runtime/trace.ml: Buffer Format Hashtbl List Mutex Printf Rmi_stats Unix
