lib/runtime/remote_ref.mli: Format
