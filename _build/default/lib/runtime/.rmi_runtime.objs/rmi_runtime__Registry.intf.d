lib/runtime/registry.mli: Fabric Node Remote_ref
