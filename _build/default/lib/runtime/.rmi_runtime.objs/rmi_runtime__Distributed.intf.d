lib/runtime/distributed.mli: Config Fabric Jir Rmi_stats
