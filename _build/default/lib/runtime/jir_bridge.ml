module I = Jir.Interp
module V = Rmi_serial.Value

let to_runtime v =
  let seen : (int, V.t) Hashtbl.t = Hashtbl.create 16 in
  let rec go (v : I.value) : V.t =
    match v with
    | I.Vnull -> V.Null
    | I.Vbool b -> V.Bool b
    | I.Vint i -> V.Int i
    | I.Vdouble f -> V.Double f
    | I.Vstr s -> V.Str s
    | I.Vobj o -> (
        match Hashtbl.find_opt seen o.I.oid with
        | Some v -> v
        | None ->
            let target = V.new_obj ~cls:o.I.ocls ~nfields:(Array.length o.I.ofields) in
            Hashtbl.add seen o.I.oid (V.Obj target);
            Array.iteri (fun i f -> target.V.fields.(i) <- go f) o.I.ofields;
            V.Obj target)
    | I.Varr a -> (
        match Hashtbl.find_opt seen a.I.aid with
        | Some v -> v
        | None -> (
            match a.I.aelem with
            | Jir.Types.Tdouble ->
                let d = V.new_darr (Array.length a.I.adata) in
                Hashtbl.add seen a.I.aid (V.Darr d);
                Array.iteri
                  (fun i e ->
                    match e with
                    | I.Vdouble f -> d.V.d.(i) <- f
                    | _ -> invalid_arg "Jir_bridge: non-double in double[]")
                  a.I.adata;
                V.Darr d
            | Jir.Types.Tint ->
                let ia = V.new_iarr (Array.length a.I.adata) in
                Hashtbl.add seen a.I.aid (V.Iarr ia);
                Array.iteri
                  (fun i e ->
                    match e with
                    | I.Vint x -> ia.V.ia.(i) <- x
                    | _ -> invalid_arg "Jir_bridge: non-int in int[]")
                  a.I.adata;
                V.Iarr ia
            | elem ->
                let ra = V.new_rarr elem (Array.length a.I.adata) in
                Hashtbl.add seen a.I.aid (V.Rarr ra);
                Array.iteri (fun i e -> ra.V.ra.(i) <- go e) a.I.adata;
                V.Rarr ra))
  in
  go v

let id_counter = Atomic.make 2_000_000_000
let fresh_id () = Atomic.fetch_and_add id_counter 1

let of_runtime v =
  let seen : (int, I.value) Hashtbl.t = Hashtbl.create 16 in
  let rec go (v : V.t) : I.value =
    match v with
    | V.Null -> I.Vnull
    | V.Bool b -> I.Vbool b
    | V.Int i -> I.Vint i
    | V.Double f -> I.Vdouble f
    | V.Str s -> I.Vstr s
    | V.Obj o -> (
        match Hashtbl.find_opt seen o.V.oid with
        | Some v -> v
        | None ->
            let target =
              {
                I.ocls = o.V.cls;
                ofields = Array.make (Array.length o.V.fields) I.Vnull;
                oid = fresh_id ();
                osite = -1;
              }
            in
            Hashtbl.add seen o.V.oid (I.Vobj target);
            Array.iteri (fun i f -> target.I.ofields.(i) <- go f) o.V.fields;
            I.Vobj target)
    | V.Darr a ->
        I.Varr
          {
            I.aelem = Jir.Types.Tdouble;
            adata = Array.map (fun f -> I.Vdouble f) a.V.d;
            aid = fresh_id ();
            asite = -1;
          }
    | V.Iarr a ->
        I.Varr
          {
            I.aelem = Jir.Types.Tint;
            adata = Array.map (fun x -> I.Vint x) a.V.ia;
            aid = fresh_id ();
            asite = -1;
          }
    | V.Rarr a -> (
        match Hashtbl.find_opt seen a.V.rid with
        | Some v -> v
        | None ->
            let target =
              {
                I.aelem = a.V.relem;
                adata = Array.make (Array.length a.V.ra) I.Vnull;
                aid = fresh_id ();
                asite = -1;
              }
            in
            Hashtbl.add seen a.V.rid (I.Varr target);
            Array.iteri (fun i e -> target.I.adata.(i) <- go e) a.V.ra;
            I.Varr target)
  in
  go v
