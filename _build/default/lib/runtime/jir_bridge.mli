(** Conversion between interpreter values ({!Jir.Interp.value}) and
    runtime values ({!Rmi_serial.Value.t}).

    The distributed driver runs JIR method bodies in the interpreter on
    each machine while arguments and results travel through the real
    serializers; this bridge translates at the boundary.  Cycles and
    sharing are preserved in both directions.  Interpreter arrays of
    [double]/[int] map to the runtime's unboxed [Darr]/[Iarr]. *)

(** @raise Invalid_argument on values outside the common model. *)
val to_runtime : Jir.Interp.value -> Rmi_serial.Value.t

(** Objects created on the way back carry allocation site [-1] (their
    true site lives on the machine that built them). *)
val of_runtime : Rmi_serial.Value.t -> Jir.Interp.value
