(** Wire type descriptors.

    Sun RMI ships a full serialized class descriptor per object type;
    Manta-JavaParty (like KaRMI) hashes every type down to a single
    small integer.  A [registry] maps runtime class names to such
    compact ids and back, and both sides of the wire must agree —
    which they do here because the registry is built deterministically
    from the program's class table. *)

type type_id = int

(** Primitive/value tags written before dynamically-typed values. *)
type tag =
  | Tag_null
  | Tag_bool
  | Tag_int
  | Tag_double
  | Tag_string
  | Tag_object of type_id  (** instance of a registered class *)
  | Tag_obj_array of type_id
  | Tag_double_array
  | Tag_int_array
  | Tag_handle  (** back-reference to an already-serialized object *)

type registry

val create : unit -> registry

(** [register reg name] assigns the next id; idempotent per name. *)
val register : registry -> string -> type_id

val id_of_name : registry -> string -> type_id option
val name_of_id : registry -> type_id -> string option
val cardinal : registry -> int

(** Tag codecs.  [write_tag] also reports how many bytes of pure type
    information were emitted (for the harness's type-byte counter). *)
val write_tag : Msgbuf.writer -> tag -> int
val read_tag : Msgbuf.reader -> tag

val pp_tag : Format.formatter -> tag -> unit
