type 'v t = {
  table : (int, 'v) Hashtbl.t;
  metrics : Rmi_stats.Metrics.t option;
  mutable count : int;
}

let create ?metrics () = { table = Hashtbl.create 64; metrics; count = 0 }

let charge t =
  match t.metrics with
  | Some m -> Rmi_stats.Metrics.add_cycle_lookups m 1
  | None -> ()

let lookup t key =
  charge t;
  Hashtbl.find_opt t.table key

let add t key v =
  charge t;
  Hashtbl.replace t.table key v;
  t.count <- t.count + 1

let next_handle t = t.count
let size t = t.count

let reset t =
  Hashtbl.reset t.table;
  t.count <- 0
