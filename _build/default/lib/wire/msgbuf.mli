(** Growable byte buffers for building and reading RMI messages.

    A [writer] appends primitives in a compact little-endian format;
    a [reader] consumes them in the same order.  Integers use
    LEB128-style varints (with zigzag encoding for signed values) so
    that the small type tags and lengths that dominate RMI protocol
    traffic stay small on the wire — the compact encoding KaRMI [15]
    and the paper's Manta-JavaParty runtime use. *)

type writer
type reader

exception Underflow of string
(** Raised by read operations when the buffer is exhausted or a value
    is malformed. *)

(** {1 Writing} *)

val create_writer : ?initial_capacity:int -> unit -> writer

val clear : writer -> unit

(** Number of bytes written so far. *)
val length : writer -> int

val write_u8 : writer -> int -> unit
val write_bool : writer -> bool -> unit

(** Unsigned LEB128 varint; argument must be non-negative. *)
val write_uvarint : writer -> int -> unit

(** Zigzag-encoded signed varint; full [int] range. *)
val write_varint : writer -> int -> unit

(** 64-bit IEEE double, little endian. *)
val write_double : writer -> float -> unit

(** Length-prefixed UTF-8 bytes. *)
val write_string : writer -> string -> unit

(** [write_double_slice w a pos len] appends [len] doubles of [a]
    starting at [pos] without intermediate boxing. *)
val write_double_slice : writer -> float array -> int -> int -> unit

val write_int_slice : writer -> int array -> int -> int -> unit

(** Snapshot the written bytes. *)
val contents : writer -> bytes

(** Direct access to the underlying storage (first [length] bytes are
    valid); used by transports to avoid a copy. *)
val unsafe_storage : writer -> bytes

(** {1 Reading} *)

val reader_of_bytes : bytes -> reader

(** [reader_of_writer w] reads over [w]'s storage without copying. *)
val reader_of_writer : writer -> reader

(** Bytes remaining to be read. *)
val remaining : reader -> int

val read_u8 : reader -> int
val read_bool : reader -> bool
val read_uvarint : reader -> int
val read_varint : reader -> int
val read_double : reader -> float
val read_string : reader -> string

(** [read_double_slice r a pos len] fills [a.(pos..pos+len-1)]. *)
val read_double_slice : reader -> float array -> int -> int -> unit

val read_int_slice : reader -> int array -> int -> int -> unit
