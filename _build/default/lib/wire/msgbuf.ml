type writer = { mutable buf : bytes; mutable len : int }
type reader = { data : bytes; limit : int; mutable pos : int }

exception Underflow of string

let create_writer ?(initial_capacity = 256) () =
  { buf = Bytes.create (max 16 initial_capacity); len = 0 }

let clear w = w.len <- 0
let length w = w.len

let ensure w extra =
  let needed = w.len + extra in
  if needed > Bytes.length w.buf then begin
    let cap = ref (Bytes.length w.buf) in
    while !cap < needed do
      cap := !cap * 2
    done;
    let fresh = Bytes.create !cap in
    Bytes.blit w.buf 0 fresh 0 w.len;
    w.buf <- fresh
  end

let write_u8 w v =
  ensure w 1;
  Bytes.unsafe_set w.buf w.len (Char.unsafe_chr (v land 0xff));
  w.len <- w.len + 1

let write_bool w b = write_u8 w (if b then 1 else 0)

let write_uvarint w v =
  if v < 0 then invalid_arg "Msgbuf.write_uvarint: negative";
  let rec go v =
    if v < 0x80 then write_u8 w v
    else begin
      write_u8 w (0x80 lor (v land 0x7f));
      go (v lsr 7)
    end
  in
  go v

(* Signed varints use zigzag encoding computed in 64-bit arithmetic so
   the whole OCaml int range (including [min_int]) round-trips. Small
   non-negative values take the single-byte fast path. *)
let write_uvarint64 w v =
  let rec go v =
    if Int64.logand v (Int64.lognot 0x7fL) = 0L then write_u8 w (Int64.to_int v)
    else begin
      write_u8 w (0x80 lor (Int64.to_int (Int64.logand v 0x7fL)));
      go (Int64.shift_right_logical v 7)
    end
  in
  go v

let write_varint w v =
  if v >= 0 && v < 64 then write_u8 w (v lsl 1)
  else
    let v64 = Int64.of_int v in
    let zz = Int64.logxor (Int64.shift_left v64 1) (Int64.shift_right v64 63) in
    write_uvarint64 w zz

let write_double w f =
  ensure w 8;
  Bytes.set_int64_le w.buf w.len (Int64.bits_of_float f);
  w.len <- w.len + 8

let write_string w s =
  let n = String.length s in
  write_uvarint w n;
  ensure w n;
  Bytes.blit_string s 0 w.buf w.len n;
  w.len <- w.len + n

let write_double_slice w a pos len =
  if pos < 0 || len < 0 || pos + len > Array.length a then
    invalid_arg "Msgbuf.write_double_slice";
  ensure w (len * 8);
  for i = 0 to len - 1 do
    Bytes.set_int64_le w.buf (w.len + (i * 8))
      (Int64.bits_of_float (Array.unsafe_get a (pos + i)))
  done;
  w.len <- w.len + (len * 8)

let write_int_slice w a pos len =
  if pos < 0 || len < 0 || pos + len > Array.length a then
    invalid_arg "Msgbuf.write_int_slice";
  for i = pos to pos + len - 1 do
    write_varint w a.(i)
  done

let contents w = Bytes.sub w.buf 0 w.len
let unsafe_storage w = w.buf

let reader_of_bytes data = { data; limit = Bytes.length data; pos = 0 }
let reader_of_writer w = { data = w.buf; limit = w.len; pos = 0 }

let remaining r = r.limit - r.pos

(* overflow-safe bounds check: hostile lengths can be near max_int *)
let check r n what =
  if n < 0 || n > r.limit - r.pos then raise (Underflow what)

let read_u8 r =
  check r 1 "u8";
  let v = Char.code (Bytes.unsafe_get r.data r.pos) in
  r.pos <- r.pos + 1;
  v

let read_bool r =
  match read_u8 r with
  | 0 -> false
  | 1 -> true
  | n -> raise (Underflow (Printf.sprintf "bool: invalid byte %d" n))

let read_uvarint r =
  let rec go shift acc =
    if shift > 63 then raise (Underflow "uvarint: too long");
    let b = read_u8 r in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0

let read_uvarint64 r =
  let rec go shift acc =
    if shift > 63 then raise (Underflow "uvarint64: too long");
    let b = read_u8 r in
    let acc = Int64.logor acc (Int64.shift_left (Int64.of_int (b land 0x7f)) shift) in
    if b land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0L

let read_varint r =
  let zz = read_uvarint64 r in
  let v64 =
    Int64.logxor (Int64.shift_right_logical zz 1)
      (Int64.neg (Int64.logand zz 1L))
  in
  Int64.to_int v64

let read_double r =
  check r 8 "double";
  let v = Int64.float_of_bits (Bytes.get_int64_le r.data r.pos) in
  r.pos <- r.pos + 8;
  v

let read_string r =
  let n = read_uvarint r in
  check r n "string";
  let s = Bytes.sub_string r.data r.pos n in
  r.pos <- r.pos + n;
  s

let read_double_slice r a pos len =
  if pos < 0 || len < 0 || pos + len > Array.length a then
    invalid_arg "Msgbuf.read_double_slice";
  check r (len * 8) "double slice";
  for i = 0 to len - 1 do
    Array.unsafe_set a (pos + i)
      (Int64.float_of_bits (Bytes.get_int64_le r.data (r.pos + (i * 8))))
  done;
  r.pos <- r.pos + (len * 8)

let read_int_slice r a pos len =
  if pos < 0 || len < 0 || pos + len > Array.length a then
    invalid_arg "Msgbuf.read_int_slice";
  for i = pos to pos + len - 1 do
    a.(i) <- read_varint r
  done
