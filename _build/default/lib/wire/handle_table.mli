(** The serializer-side cycle-detection table.

    RMI serialization must detect when an object is reached a second
    time (a cycle or shared subgraph) and emit a back-reference handle
    instead of re-serializing it.  The paper's optimization 3.2 is
    precisely about *not* building this table when the compiler proves
    the argument graph acyclic — so the table's probe count is a
    first-class statistic ([Metrics.cycle_lookups]).

    Keys are unique object identities (each runtime object carries a
    per-process unique [int] id).  On the deserializer side the dual
    structure maps wire handles back to reconstructed objects. *)

type 'v t

(** [create metrics] builds an empty table that charges its probes to
    [metrics] (pass [None] to leave probes unaccounted, e.g. tests). *)
val create : ?metrics:Rmi_stats.Metrics.t -> unit -> 'v t

(** [lookup t key] probes the table, counting one cycle lookup. *)
val lookup : 'v t -> int -> 'v option

(** [add t key v] registers [key]; counts one cycle lookup (RMI adds
    every serialized object reference to the hash, per the paper). *)
val add : 'v t -> int -> 'v -> unit

(** [next_handle t] returns the wire handle the next added object will
    receive (a dense counter starting at 0). *)
val next_handle : 'v t -> int

val size : 'v t -> int
val reset : 'v t -> unit
