type type_id = int

type tag =
  | Tag_null
  | Tag_bool
  | Tag_int
  | Tag_double
  | Tag_string
  | Tag_object of type_id
  | Tag_obj_array of type_id
  | Tag_double_array
  | Tag_int_array
  | Tag_handle

type registry = {
  by_name : (string, type_id) Hashtbl.t;
  mutable by_id : string array;
  mutable next : int;
}

let create () = { by_name = Hashtbl.create 32; by_id = Array.make 32 ""; next = 0 }

let register reg name =
  match Hashtbl.find_opt reg.by_name name with
  | Some id -> id
  | None ->
      let id = reg.next in
      reg.next <- id + 1;
      if id >= Array.length reg.by_id then begin
        let fresh = Array.make (2 * Array.length reg.by_id) "" in
        Array.blit reg.by_id 0 fresh 0 (Array.length reg.by_id);
        reg.by_id <- fresh
      end;
      reg.by_id.(id) <- name;
      Hashtbl.replace reg.by_name name id;
      id

let id_of_name reg name = Hashtbl.find_opt reg.by_name name

let name_of_id reg id =
  if id >= 0 && id < reg.next then Some reg.by_id.(id) else None

let cardinal reg = reg.next

(* Tag byte values; class ids follow as a varint where applicable. *)
let k_null = 0
let k_bool = 1
let k_int = 2
let k_double = 3
let k_string = 4
let k_object = 5
let k_obj_array = 6
let k_double_array = 7
let k_int_array = 8
let k_handle = 9

let write_tag w tag =
  let before = Msgbuf.length w in
  (match tag with
  | Tag_null -> Msgbuf.write_u8 w k_null
  | Tag_bool -> Msgbuf.write_u8 w k_bool
  | Tag_int -> Msgbuf.write_u8 w k_int
  | Tag_double -> Msgbuf.write_u8 w k_double
  | Tag_string -> Msgbuf.write_u8 w k_string
  | Tag_object id ->
      Msgbuf.write_u8 w k_object;
      Msgbuf.write_uvarint w id
  | Tag_obj_array id ->
      Msgbuf.write_u8 w k_obj_array;
      Msgbuf.write_uvarint w id
  | Tag_double_array -> Msgbuf.write_u8 w k_double_array
  | Tag_int_array -> Msgbuf.write_u8 w k_int_array
  | Tag_handle -> Msgbuf.write_u8 w k_handle);
  Msgbuf.length w - before

let read_tag r =
  let b = Msgbuf.read_u8 r in
  if b = k_null then Tag_null
  else if b = k_bool then Tag_bool
  else if b = k_int then Tag_int
  else if b = k_double then Tag_double
  else if b = k_string then Tag_string
  else if b = k_object then Tag_object (Msgbuf.read_uvarint r)
  else if b = k_obj_array then Tag_obj_array (Msgbuf.read_uvarint r)
  else if b = k_double_array then Tag_double_array
  else if b = k_int_array then Tag_int_array
  else if b = k_handle then Tag_handle
  else raise (Msgbuf.Underflow (Printf.sprintf "unknown tag byte %d" b))

let pp_tag ppf = function
  | Tag_null -> Format.pp_print_string ppf "null"
  | Tag_bool -> Format.pp_print_string ppf "bool"
  | Tag_int -> Format.pp_print_string ppf "int"
  | Tag_double -> Format.pp_print_string ppf "double"
  | Tag_string -> Format.pp_print_string ppf "string"
  | Tag_object id -> Format.fprintf ppf "object#%d" id
  | Tag_obj_array id -> Format.fprintf ppf "object#%d[]" id
  | Tag_double_array -> Format.pp_print_string ppf "double[]"
  | Tag_int_array -> Format.pp_print_string ppf "int[]"
  | Tag_handle -> Format.pp_print_string ppf "handle"
