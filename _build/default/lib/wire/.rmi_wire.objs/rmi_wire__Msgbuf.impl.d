lib/wire/msgbuf.ml: Array Bytes Char Int64 Printf String
