lib/wire/msgbuf.mli:
