lib/wire/handle_table.ml: Hashtbl Rmi_stats
