lib/wire/protocol.mli: Format Msgbuf
