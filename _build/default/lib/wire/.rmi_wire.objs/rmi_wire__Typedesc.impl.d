lib/wire/typedesc.ml: Array Format Hashtbl Msgbuf Printf
