lib/wire/typedesc.mli: Format Msgbuf
