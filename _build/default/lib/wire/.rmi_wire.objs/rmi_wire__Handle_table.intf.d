lib/wire/handle_table.mli: Rmi_stats
