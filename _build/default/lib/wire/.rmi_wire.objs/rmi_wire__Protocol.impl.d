lib/wire/protocol.ml: Format Msgbuf Printf
