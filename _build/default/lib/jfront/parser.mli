(** Recursive-descent parser for the Java-like surface syntax.

    {v
    program  := class*
    class    := ["remote"] "class" ID ["extends" ID] "{" member* "}"
    member   := ["static"] type ID ";"                    field / static
              | ["static"] type ID "(" params ")" block   method
    type     := ("void"|"boolean"|"int"|"double"|"String"|ID) ("[" "]")*
    stmt     := type ID ["=" expr] ";"
              | lvalue "=" expr ";"  |  ID "++" ";"  |  expr ";"
              | "if" "(" expr ")" block ["else" block]
              | "while" "(" expr ")" block
              | "for" "(" init ";" expr ";" update ")" block
              | "return" [expr] ";"
    expr     := usual precedence; calls are [f(args)] or [recv.m(args)];
                allocation is [new C()] or [new t[e]] / [new t[e1][e2]];
                [arr.length] reads an array length.
    v} *)

exception Parse_error of string * int * int  (** message, line, column *)

(** @raise Parse_error @raise Lexer.Lex_error *)
val parse : string -> Ast.program
