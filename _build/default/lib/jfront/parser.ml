open Lexer

exception Parse_error of string * int * int

type state = { toks : Lexer.t array; mutable pos : int }

let cur st = st.toks.(st.pos)
let peek_tok st = (cur st).tok

let peek_tok_at st n =
  if st.pos + n < Array.length st.toks then Some st.toks.(st.pos + n).tok
  else None

let fail st msg =
  let { line; col; tok } = cur st in
  raise
    (Parse_error
       (Printf.sprintf "%s (found %s)" msg (token_to_string tok), line, col))

let advance st = if st.pos + 1 < Array.length st.toks then st.pos <- st.pos + 1

let expect st tok what =
  if peek_tok st = tok then advance st else fail st ("expected " ^ what)

let accept st tok =
  if peek_tok st = tok then begin
    advance st;
    true
  end
  else false

let ident st =
  match peek_tok st with
  | IDENT name ->
      advance st;
      name
  | _ -> fail st "expected an identifier"

(* --- types --- *)

let base_ty st =
  match peek_tok st with
  | KW_VOID -> advance st; Ast.Void
  | KW_BOOLEAN -> advance st; Ast.Bool
  | KW_INT -> advance st; Ast.Int
  | KW_DOUBLE -> advance st; Ast.Double
  | KW_STRING -> advance st; Ast.Str
  | IDENT name -> advance st; Ast.Named name
  | _ -> fail st "expected a type"

let rec array_suffix st ty =
  if peek_tok st = LBRACKET && peek_tok_at st 1 = Some RBRACKET then begin
    advance st;
    advance st;
    array_suffix st (Ast.Array ty)
  end
  else ty

let parse_ty st = array_suffix st (base_ty st)

(* does a type start here? used to disambiguate declarations from
   expression statements *)
let starts_decl st =
  match peek_tok st with
  | KW_VOID | KW_BOOLEAN | KW_INT | KW_DOUBLE | KW_STRING -> true
  | IDENT _ -> (
      (* ID ID ...  or  ID [ ] ...  *)
      match (peek_tok_at st 1, peek_tok_at st 2) with
      | Some (IDENT _), _ -> true
      | Some LBRACKET, Some RBRACKET -> true
      | _ -> false)
  | _ -> false

(* --- expressions --- *)

let rec parse_expr st = parse_or st

and parse_or st =
  let lhs = parse_and st in
  if accept st BARBAR then Ast.E_binop (Ast.Or, lhs, parse_or st) else lhs

and parse_and st =
  let lhs = parse_equality st in
  if accept st AMPAMP then Ast.E_binop (Ast.And, lhs, parse_and st) else lhs

and parse_equality st =
  let lhs = parse_relational st in
  match peek_tok st with
  | EQ ->
      advance st;
      Ast.E_binop (Ast.Eq, lhs, parse_relational st)
  | NE ->
      advance st;
      Ast.E_binop (Ast.Ne, lhs, parse_relational st)
  | _ -> lhs

and parse_relational st =
  let lhs = parse_additive st in
  match peek_tok st with
  | LT -> advance st; Ast.E_binop (Ast.Lt, lhs, parse_additive st)
  | LE -> advance st; Ast.E_binop (Ast.Le, lhs, parse_additive st)
  | GT -> advance st; Ast.E_binop (Ast.Gt, lhs, parse_additive st)
  | GE -> advance st; Ast.E_binop (Ast.Ge, lhs, parse_additive st)
  | _ -> lhs

and parse_additive st =
  let rec go lhs =
    match peek_tok st with
    | PLUS ->
        advance st;
        go (Ast.E_binop (Ast.Add, lhs, parse_multiplicative st))
    | MINUS ->
        advance st;
        go (Ast.E_binop (Ast.Sub, lhs, parse_multiplicative st))
    | _ -> lhs
  in
  go (parse_multiplicative st)

and parse_multiplicative st =
  let rec go lhs =
    match peek_tok st with
    | STAR ->
        advance st;
        go (Ast.E_binop (Ast.Mul, lhs, parse_unary st))
    | SLASH ->
        advance st;
        go (Ast.E_binop (Ast.Div, lhs, parse_unary st))
    | PERCENT ->
        advance st;
        go (Ast.E_binop (Ast.Rem, lhs, parse_unary st))
    | _ -> lhs
  in
  go (parse_unary st)

and parse_unary st =
  match peek_tok st with
  | MINUS ->
      advance st;
      Ast.E_unop (Ast.Neg, parse_unary st)
  | BANG ->
      advance st;
      Ast.E_unop (Ast.Not, parse_unary st)
  | _ -> parse_postfix st

and parse_postfix st =
  let rec go e =
    match peek_tok st with
    | DOT -> (
        advance st;
        let name = ident st in
        if peek_tok st = LPAREN then begin
          advance st;
          let args = parse_args st in
          go (Ast.E_call (Some e, name, args))
        end
        else go (Ast.E_field (e, name)))
    | LBRACKET ->
        advance st;
        let idx = parse_expr st in
        expect st RBRACKET "']'";
        go (Ast.E_index (e, idx))
    | _ -> e
  in
  go (parse_primary st)

and parse_args st =
  if accept st RPAREN then []
  else begin
    let rec go acc =
      let e = parse_expr st in
      if accept st COMMA then go (e :: acc)
      else begin
        expect st RPAREN "')'";
        List.rev (e :: acc)
      end
    in
    go []
  end

and parse_primary st =
  match peek_tok st with
  | INT_LIT i -> advance st; Ast.E_int i
  | DOUBLE_LIT f -> advance st; Ast.E_double f
  | STRING_LIT s -> advance st; Ast.E_string s
  | KW_TRUE -> advance st; Ast.E_bool true
  | KW_FALSE -> advance st; Ast.E_bool false
  | KW_NULL -> advance st; Ast.E_null
  | KW_NEW -> (
      advance st;
      let base = base_ty st in
      match peek_tok st with
      | LPAREN -> (
          advance st;
          expect st RPAREN "')'";
          match base with
          | Ast.Named name -> Ast.E_new name
          | _ -> fail st "only class types take 'new C()'")
      | LBRACKET ->
          (* new t[e] or new t[e1][e2]; trailing empty [] deepen the
             element type: new double[n][] is an array of double[] *)
          advance st;
          let d1 = parse_expr st in
          expect st RBRACKET "']'";
          let dims = ref [ d1 ] in
          let elem = ref base in
          let rec more () =
            if peek_tok st = LBRACKET then
              if peek_tok_at st 1 = Some RBRACKET then begin
                advance st;
                advance st;
                elem := Ast.Array !elem;
                more ()
              end
              else begin
                advance st;
                let d = parse_expr st in
                expect st RBRACKET "']'";
                dims := d :: !dims;
                more ()
              end
          in
          more ();
          Ast.E_new_array (!elem, List.rev !dims)
      | _ -> fail st "expected '(' or '[' after new")
  | LPAREN ->
      advance st;
      let e = parse_expr st in
      expect st RPAREN "')'";
      e
  | IDENT name ->
      advance st;
      if peek_tok st = LPAREN then begin
        advance st;
        let args = parse_args st in
        Ast.E_call (None, name, args)
      end
      else Ast.E_var name
  | _ -> fail st "expected an expression"

(* --- statements --- *)

let lvalue_of_expr st = function
  | Ast.E_var name -> Ast.L_var name
  | Ast.E_field (e, f) -> Ast.L_field (e, f)
  | Ast.E_index (e, i) -> Ast.L_index (e, i)
  | _ -> fail st "left-hand side is not assignable"

let rec parse_stmt st =
  match peek_tok st with
  | KW_IF ->
      advance st;
      expect st LPAREN "'('";
      let cond = parse_expr st in
      expect st RPAREN "')'";
      let then_ = parse_block st in
      let else_ =
        if accept st KW_ELSE then
          (* allow 'else if (...) {...}' without extra braces *)
          if peek_tok st = KW_IF then [ parse_stmt st ] else parse_block st
        else []
      in
      Ast.S_if (cond, then_, else_)
  | KW_WHILE ->
      advance st;
      expect st LPAREN "'('";
      let cond = parse_expr st in
      expect st RPAREN "')'";
      Ast.S_while (cond, parse_block st)
  | KW_FOR ->
      advance st;
      expect st LPAREN "'('";
      let init = parse_simple_stmt st in
      expect st SEMI "';'";
      let cond = parse_expr st in
      expect st SEMI "';'";
      let update = parse_simple_stmt st in
      expect st RPAREN "')'";
      Ast.S_for (init, cond, update, parse_block st)
  | KW_RETURN ->
      advance st;
      if accept st SEMI then Ast.S_return None
      else begin
        let e = parse_expr st in
        expect st SEMI "';'";
        Ast.S_return (Some e)
      end
  | _ ->
      let s = parse_simple_stmt st in
      expect st SEMI "';'";
      s

(* declaration / assignment / expression, without the trailing ';' *)
and parse_simple_stmt st =
  if starts_decl st then begin
    let ty = parse_ty st in
    let name = ident st in
    let init = if accept st ASSIGN then Some (parse_expr st) else None in
    Ast.S_decl (ty, name, init)
  end
  else begin
    let e = parse_expr st in
    match peek_tok st with
    | ASSIGN ->
        advance st;
        let rhs = parse_expr st in
        Ast.S_assign (lvalue_of_expr st e, rhs)
    | PLUSPLUS ->
        advance st;
        let lv = lvalue_of_expr st e in
        Ast.S_assign (lv, Ast.E_binop (Ast.Add, e, Ast.E_int 1))
    | _ -> Ast.S_expr e
  end

and parse_block st =
  expect st LBRACE "'{'";
  let rec go acc =
    if accept st RBRACE then List.rev acc else go (parse_stmt st :: acc)
  in
  go []

(* --- declarations --- *)

let parse_member st =
  let is_static = accept st KW_STATIC in
  let ty = parse_ty st in
  let name = ident st in
  if accept st SEMI then `Field (is_static, ty, name)
  else begin
    expect st LPAREN "'(' or ';'";
    let params =
      if accept st RPAREN then []
      else begin
        let rec go acc =
          let pty = parse_ty st in
          let pname = ident st in
          if accept st COMMA then go ((pty, pname) :: acc)
          else begin
            expect st RPAREN "')'";
            List.rev ((pty, pname) :: acc)
          end
        in
        go []
      end
    in
    let body = parse_block st in
    `Method
      { Ast.m_static = is_static; m_ret = ty; m_name = name; m_params = params;
        m_body = body }
  end

let parse_class st =
  let remote = accept st KW_REMOTE in
  expect st KW_CLASS "'class'";
  let name = ident st in
  let super = if accept st KW_EXTENDS then Some (ident st) else None in
  expect st LBRACE "'{'";
  let fields = ref [] and statics = ref [] and methods = ref [] in
  while not (accept st RBRACE) do
    match parse_member st with
    | `Field (false, ty, fname) -> fields := (ty, fname) :: !fields
    | `Field (true, ty, fname) -> statics := (ty, fname) :: !statics
    | `Method m -> methods := m :: !methods
  done;
  {
    Ast.c_remote = remote;
    c_name = name;
    c_super = super;
    c_fields = List.rev !fields;
    c_statics = List.rev !statics;
    c_methods = List.rev !methods;
  }

let parse src =
  let st = { toks = Array.of_list (Lexer.tokenize src); pos = 0 } in
  let rec go acc =
    if peek_tok st = EOF then { Ast.classes = List.rev acc }
    else go (parse_class st :: acc)
  in
  go []
