type ty =
  | Void
  | Bool
  | Int
  | Double
  | Str
  | Named of string
  | Array of ty

type binop =
  | Add | Sub | Mul | Div | Rem
  | Eq | Ne | Lt | Le | Gt | Ge
  | And | Or

type unop = Neg | Not

type expr =
  | E_int of int
  | E_double of float
  | E_bool of bool
  | E_string of string
  | E_null
  | E_var of string
  | E_field of expr * string
  | E_index of expr * expr
  | E_call of expr option * string * expr list
  | E_new of string
  | E_new_array of ty * expr list
  | E_binop of binop * expr * expr
  | E_unop of unop * expr

type lvalue =
  | L_var of string
  | L_field of expr * string
  | L_index of expr * expr

type stmt =
  | S_decl of ty * string * expr option
  | S_assign of lvalue * expr
  | S_expr of expr
  | S_if of expr * stmt list * stmt list
  | S_while of expr * stmt list
  | S_for of stmt * expr * stmt * stmt list
  | S_return of expr option

type method_decl = {
  m_static : bool;
  m_ret : ty;
  m_name : string;
  m_params : (ty * string) list;
  m_body : stmt list;
}

type class_decl = {
  c_remote : bool;
  c_name : string;
  c_super : string option;
  c_fields : (ty * string) list;
  c_statics : (ty * string) list;
  c_methods : method_decl list;
}

type program = { classes : class_decl list }
