lib/jfront/lower.mli: Jir
