lib/jfront/ast.mli:
