lib/jfront/pretty_ast.ml: Ast Buffer Format List String
