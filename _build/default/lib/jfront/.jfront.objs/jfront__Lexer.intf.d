lib/jfront/lexer.mli:
