lib/jfront/lower.ml: Array Ast Builder Format Hashtbl Instr Jir Lexer List Option Parser Printf Program String Typecheck Types
