lib/jfront/parser.mli: Ast
