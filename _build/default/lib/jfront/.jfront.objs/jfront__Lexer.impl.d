lib/jfront/lexer.ml: Buffer List Printf String
