lib/jfront/parser.ml: Array Ast Lexer List Printf
