lib/jfront/ast.ml:
