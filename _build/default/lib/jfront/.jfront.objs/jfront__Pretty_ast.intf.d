lib/jfront/pretty_ast.mli: Ast Format
