open Jir
module B = Builder

exception Compile_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Compile_error s)) fmt

(* --- symbol tables ---------------------------------------------------- *)

type field_info = { f_ref : Types.field_ref; f_ty : Types.ty }

type class_info = {
  ci_id : Types.class_id;
  ci_remote : bool;
  ci_super : string option;
  ci_fields : (string * field_info) list;  (* own fields *)
  ci_statics : (string * (Types.static_id * Types.ty)) list;
}

type method_info = {
  mi_id : Types.method_id;
  mi_owner : string;
  mi_name : string;  (* unqualified *)
  mi_static : bool;
  mi_remote : bool;
  mi_params : Types.ty list;  (* excluding implicit this *)
  mi_ret : Types.ty;
  mi_has_this : bool;
}

type env = {
  b : B.t;
  classes : (string, class_info) Hashtbl.t;
  methods : method_info list ref;
}

let class_info env name =
  match Hashtbl.find_opt env.classes name with
  | Some ci -> ci
  | None -> err "unknown class %s" name

let rec resolve_field env cname fname =
  let ci = class_info env cname in
  match List.assoc_opt fname ci.ci_fields with
  | Some fi -> Some fi
  | None -> (
      match ci.ci_super with
      | Some parent -> resolve_field env parent fname
      | None -> None)

let rec resolve_static env cname sname =
  let ci = class_info env cname in
  match List.assoc_opt sname ci.ci_statics with
  | Some s -> Some s
  | None -> (
      match ci.ci_super with
      | Some parent -> resolve_static env parent sname
      | None -> None)

let rec resolve_method env cname mname =
  let matches =
    List.filter
      (fun mi -> mi.mi_owner = cname && mi.mi_name = mname)
      !(env.methods)
  in
  match matches with
  | [ mi ] -> Some mi
  | _ :: _ -> err "ambiguous method %s.%s" cname mname
  | [] -> (
      match (class_info env cname).ci_super with
      | Some parent -> resolve_method env parent mname
      | None -> None)

let rec lower_ty env : Ast.ty -> Types.ty = function
  | Ast.Void -> Types.Tvoid
  | Ast.Bool -> Types.Tbool
  | Ast.Int -> Types.Tint
  | Ast.Double -> Types.Tdouble
  | Ast.Str -> Types.Tstring
  | Ast.Named name -> Types.Tobject (class_info env name).ci_id
  | Ast.Array t -> Types.Tarray (lower_ty env t)

(* --- method-body lowering --------------------------------------------- *)

type scope = { mutable bindings : (string * (Types.var * Types.ty)) list }

type mctx = {
  env : env;
  mb : B.mbuilder;
  owner : string;  (* owning class name *)
  this_var : Types.var option;
  ret_ty : Types.ty;
  scope : scope;
}

let lookup_var ctx name = List.assoc_opt name ctx.scope.bindings

let bind ctx name var ty =
  ctx.scope.bindings <- (name, (var, ty)) :: ctx.scope.bindings

let saved_scope ctx = ctx.scope.bindings
let restore_scope ctx saved = ctx.scope.bindings <- saved

let class_of_ty ctx what : Types.ty -> string = function
  | Types.Tobject cid ->
      (* reverse lookup: class ids are dense, find by id *)
      let found = ref None in
      Hashtbl.iter
        (fun name ci -> if ci.ci_id = cid then found := Some name)
        ctx.env.classes;
      (match !found with Some n -> n | None -> err "%s: unknown class id" what)
  | ty -> err "%s: expected an object, got %s" what (Types.ty_to_string ty)

(* materialize an operand as a variable (for address positions) *)
let as_var ctx (op, ty) what =
  match op with
  | Instr.Var v -> v
  | Instr.Null -> err "%s: null receiver" what
  | _ ->
      let v = B.fresh ctx.mb ty in
      B.move ctx.mb v op;
      v

let rec lower_expr ctx (e : Ast.expr) : Instr.operand * Types.ty =
  match e with
  | Ast.E_int i -> (Instr.Int i, Types.Tint)
  | Ast.E_double f -> (Instr.Double f, Types.Tdouble)
  | Ast.E_bool b -> (Instr.Bool b, Types.Tbool)
  | Ast.E_null -> (Instr.Null, Types.Tvoid) (* context gives the type *)
  | Ast.E_string s ->
      let v = B.new_str ctx.mb s in
      (Instr.Var v, Types.Tstring)
  | Ast.E_var name -> (
      match lookup_var ctx name with
      | Some (v, ty) -> (Instr.Var v, ty)
      | None -> (
          (* instance field of this? *)
          match instance_field ctx name with
          | Some (this, fi) ->
              let v = B.load_field ctx.mb this fi.f_ref in
              (Instr.Var v, fi.f_ty)
          | None -> (
              (* static of the owning class (or its ancestors)? *)
              match resolve_static ctx.env ctx.owner name with
              | Some (sid, ty) ->
                  let v = B.load_static ctx.mb sid in
                  (Instr.Var v, ty)
              | None -> err "unbound identifier %s in %s" name ctx.owner)))
  | Ast.E_field (Ast.E_var cls_name, sname)
    when lookup_var ctx cls_name = None && Hashtbl.mem ctx.env.classes cls_name
    -> (
      (* Class.static *)
      match resolve_static ctx.env cls_name sname with
      | Some (sid, ty) ->
          let v = B.load_static ctx.mb sid in
          (Instr.Var v, ty)
      | None -> err "class %s has no static %s" cls_name sname)
  | Ast.E_field (recv, fname) -> (
      let ((_, rty) as rv) = lower_expr ctx recv in
      match (rty, fname) with
      | Types.Tarray _, "length" ->
          let v = B.array_length ctx.mb (as_var ctx rv "length") in
          (Instr.Var v, Types.Tint)
      | _ -> (
          let cname = class_of_ty ctx ("field ." ^ fname) rty in
          match resolve_field ctx.env cname fname with
          | Some fi ->
              let v = B.load_field ctx.mb (as_var ctx rv ("." ^ fname)) fi.f_ref in
              (Instr.Var v, fi.f_ty)
          | None -> err "class %s has no field %s" cname fname))
  | Ast.E_index (arr, idx) -> (
      let ((_, aty) as av) = lower_expr ctx arr in
      let iop, ity = lower_expr ctx idx in
      if not (Types.equal_ty ity Types.Tint) then err "index must be int";
      match aty with
      | Types.Tarray elem ->
          let v = B.load_elem ctx.mb (as_var ctx av "index") iop in
          (Instr.Var v, elem)
      | ty -> err "indexing a non-array %s" (Types.ty_to_string ty))
  | Ast.E_new cname ->
      let ci = class_info ctx.env cname in
      (Instr.Var (B.alloc ctx.mb ci.ci_id), Types.Tobject ci.ci_id)
  | Ast.E_new_array (elem_ast, dims) -> lower_new_array ctx elem_ast dims
  | Ast.E_call (recv, name, args) -> (
      match lower_call ctx recv name args with
      | Some (v, ty) -> (Instr.Var v, ty)
      | None -> err "void call %s used as a value" name)
  | Ast.E_unop (op, e1) -> (
      let op1, ty1 = lower_expr ctx e1 in
      match op with
      | Ast.Neg ->
          if not (Types.equal_ty ty1 Types.Tint || Types.equal_ty ty1 Types.Tdouble)
          then err "negating a non-number";
          (Instr.Var (B.unop ctx.mb Instr.Neg op1), ty1)
      | Ast.Not ->
          if not (Types.equal_ty ty1 Types.Tbool) then err "'!' needs a boolean";
          (Instr.Var (B.unop ctx.mb Instr.Not op1), Types.Tbool))
  | Ast.E_binop (Ast.And, l, r) -> lower_short_circuit ctx ~is_and:true l r
  | Ast.E_binop (Ast.Or, l, r) -> lower_short_circuit ctx ~is_and:false l r
  | Ast.E_binop (op, l, r) -> (
      let lop, lty = lower_expr ctx l in
      let rop, rty = lower_expr ctx r in
      let jop =
        match op with
        | Ast.Add -> Instr.Add | Ast.Sub -> Instr.Sub | Ast.Mul -> Instr.Mul
        | Ast.Div -> Instr.Div | Ast.Rem -> Instr.Rem
        | Ast.Eq -> Instr.Eq | Ast.Ne -> Instr.Ne
        | Ast.Lt -> Instr.Lt | Ast.Le -> Instr.Le
        | Ast.Gt -> Instr.Gt | Ast.Ge -> Instr.Ge
        | Ast.And | Ast.Or -> assert false
      in
      (* Java's implicit numeric widening: int operands are promoted
         when mixed with double *)
      let promote (op1, ty1) other_ty =
        if Types.equal_ty ty1 Types.Tint && Types.equal_ty other_ty Types.Tdouble
        then (Instr.Var (B.unop ctx.mb Instr.I2d op1), Types.Tdouble)
        else (op1, ty1)
      in
      let lop, lty = promote (lop, lty) rty in
      let rop, rty = promote (rop, rty) lty in
      match op with
      | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Rem ->
          if not (Types.equal_ty lty rty) then
            err "mixed arithmetic operand types";
          (Instr.Var (B.binop ctx.mb jop lop rop), lty)
      | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
          ignore rty;
          (Instr.Var (B.binop ctx.mb jop lop rop), Types.Tbool)
      | Ast.And | Ast.Or -> assert false)

and instance_field ctx name =
  match ctx.this_var with
  | None -> None
  | Some this -> (
      match resolve_field ctx.env ctx.owner name with
      | Some fi -> Some (this, fi)
      | None -> None)

and lower_short_circuit ctx ~is_and l r =
  let lop, lty = lower_expr ctx l in
  if not (Types.equal_ty lty Types.Tbool) then err "'&&'/'||' need booleans";
  let result = B.fresh ctx.mb Types.Tbool in
  if is_and then
    B.if_ ctx.mb lop
      (fun () ->
        let rop, rty = lower_expr ctx r in
        if not (Types.equal_ty rty Types.Tbool) then err "'&&' needs booleans";
        B.move ctx.mb result rop)
      (fun () -> B.move ctx.mb result (Instr.Bool false))
  else
    B.if_ ctx.mb lop
      (fun () -> B.move ctx.mb result (Instr.Bool true))
      (fun () ->
        let rop, rty = lower_expr ctx r in
        if not (Types.equal_ty rty Types.Tbool) then err "'||' needs booleans";
        B.move ctx.mb result rop);
  (Instr.Var result, Types.Tbool)

and lower_new_array ctx elem_ast dims =
  let elem = lower_ty ctx.env elem_ast in
  match dims with
  | [ d ] ->
      let dop, dty = lower_expr ctx d in
      if not (Types.equal_ty dty Types.Tint) then err "array size must be int";
      (Instr.Var (B.alloc_array ctx.mb elem dop), Types.Tarray elem)
  | [ d1; d2 ] ->
      (* Java semantics: allocate the outer array and every inner one *)
      let d1op, _ = lower_expr ctx d1 in
      let d2op, _ = lower_expr ctx d2 in
      let d2v = B.fresh ctx.mb Types.Tint in
      B.move ctx.mb d2v d2op;
      let outer = B.alloc_array ctx.mb (Types.Tarray elem) d1op in
      B.loop_up ctx.mb ~from:(Instr.Int 0) ~limit:d1op (fun i ->
          let inner = B.alloc_array ctx.mb elem (Instr.Var d2v) in
          B.store_elem ctx.mb outer (Instr.Var i) (Instr.Var inner));
      (Instr.Var outer, Types.Tarray (Types.Tarray elem))
  | _ -> err "only one or two array dimensions are supported"

and lower_call ctx recv name args : (Types.var * Types.ty) option =
  let lowered_args = List.map (lower_expr ctx) args in
  let arg_ops = List.map fst lowered_args in
  let finish mi ~recv_op =
    let expected = List.length mi.mi_params in
    if List.length args <> expected then
      err "%s.%s expects %d argument(s), got %d" mi.mi_owner mi.mi_name expected
        (List.length args);
    if mi.mi_remote then begin
      match recv_op with
      | Some rop -> (
          match B.rcall ctx.mb rop mi.mi_id arg_ops with
          | Some v -> Some (v, mi.mi_ret)
          | None -> None)
      | None -> err "remote method %s.%s needs a receiver" mi.mi_owner mi.mi_name
    end
    else begin
      let full_args =
        if mi.mi_has_this then
          match recv_op with
          | Some rop -> rop :: arg_ops
          | None -> (
              match ctx.this_var with
              | Some this -> Instr.Var this :: arg_ops
              | None ->
                  err "instance method %s.%s called without a receiver"
                    mi.mi_owner mi.mi_name)
        else arg_ops
      in
      match B.call ctx.mb mi.mi_id full_args with
      | Some v -> Some (v, mi.mi_ret)
      | None -> None
    end
  in
  match recv with
  | Some (Ast.E_var cls_name)
    when lookup_var ctx cls_name = None && Hashtbl.mem ctx.env.classes cls_name
    -> (
      (* Class.staticMethod(args) *)
      match resolve_method ctx.env cls_name name with
      | Some mi when mi.mi_static -> finish mi ~recv_op:None
      | Some _ -> err "%s.%s is not static" cls_name name
      | None -> err "class %s has no method %s" cls_name name)
  | Some recv_expr -> (
      let ((rop, rty) as rv) = lower_expr ctx recv_expr in
      ignore rv;
      let cname = class_of_ty ctx ("call ." ^ name) rty in
      match resolve_method ctx.env cname name with
      | Some mi -> finish mi ~recv_op:(Some rop)
      | None -> err "class %s has no method %s" cname name)
  | None -> (
      match resolve_method ctx.env ctx.owner name with
      | Some mi -> finish mi ~recv_op:None
      | None -> err "no method %s in scope (class %s)" name ctx.owner)

(* null adapts to any reference type; otherwise the builder's type
   bookkeeping plus the final Typecheck.check validate the assignment *)
let assign_checked _ctx _what ~dst_ty:_ (op, _src_ty) = op

let rec lower_stmt ctx (s : Ast.stmt) =
  match s with
  | Ast.S_decl (ty_ast, name, init) ->
      let ty = lower_ty ctx.env ty_ast in
      let v = B.fresh ctx.mb ty in
      (match init with
      | Some e ->
          let rv = lower_expr ctx e in
          B.move ctx.mb v (assign_checked ctx name ~dst_ty:ty rv)
      | None ->
          (* definite initialisation, JIR-style zero value *)
          let zero =
            match ty with
            | Types.Tint -> Instr.Int 0
            | Types.Tdouble -> Instr.Double 0.0
            | Types.Tbool -> Instr.Bool false
            | _ -> Instr.Null
          in
          B.move ctx.mb v zero);
      bind ctx name v ty
  | Ast.S_assign (lv, e) -> (
      match lv with
      | Ast.L_var name -> (
          match lookup_var ctx name with
          | Some (v, ty) ->
              let rv = lower_expr ctx e in
              B.move ctx.mb v (assign_checked ctx name ~dst_ty:ty rv)
          | None -> (
              match instance_field ctx name with
              | Some (this, fi) ->
                  let rv = lower_expr ctx e in
                  B.store_field ctx.mb this fi.f_ref
                    (assign_checked ctx name ~dst_ty:fi.f_ty rv)
              | None -> (
                  match resolve_static ctx.env ctx.owner name with
                  | Some (sid, ty) ->
                      let rv = lower_expr ctx e in
                      B.store_static ctx.mb sid
                        (assign_checked ctx name ~dst_ty:ty rv)
                  | None -> err "unbound identifier %s" name)))
      | Ast.L_field (Ast.E_var cls_name, sname)
        when lookup_var ctx cls_name = None
             && Hashtbl.mem ctx.env.classes cls_name -> (
          match resolve_static ctx.env cls_name sname with
          | Some (sid, ty) ->
              let rv = lower_expr ctx e in
              B.store_static ctx.mb sid (assign_checked ctx sname ~dst_ty:ty rv)
          | None -> err "class %s has no static %s" cls_name sname)
      | Ast.L_field (recv, fname) -> (
          let ((_, rty) as rv) = lower_expr ctx recv in
          let cname = class_of_ty ctx ("store ." ^ fname) rty in
          match resolve_field ctx.env cname fname with
          | Some fi ->
              let obj = as_var ctx rv ("." ^ fname) in
              let value = lower_expr ctx e in
              B.store_field ctx.mb obj fi.f_ref
                (assign_checked ctx fname ~dst_ty:fi.f_ty value)
          | None -> err "class %s has no field %s" cname fname)
      | Ast.L_index (arr, idx) -> (
          let ((_, aty) as av) = lower_expr ctx arr in
          match aty with
          | Types.Tarray elem ->
              let arrv = as_var ctx av "store[]" in
              let iop, _ = lower_expr ctx idx in
              let value = lower_expr ctx e in
              B.store_elem ctx.mb arrv iop
                (assign_checked ctx "element" ~dst_ty:elem value)
          | ty -> err "indexing a non-array %s" (Types.ty_to_string ty)))
  | Ast.S_expr e -> (
      match e with
      | Ast.E_call (recv, name, args) -> ignore (lower_call ctx recv name args)
      | _ -> ignore (lower_expr ctx e))
  | Ast.S_if (cond, then_, else_) ->
      let cop, cty = lower_expr ctx cond in
      if not (Types.equal_ty cty Types.Tbool) then err "if needs a boolean";
      let saved = saved_scope ctx in
      B.if_ ctx.mb cop
        (fun () ->
          List.iter (lower_stmt ctx) then_;
          restore_scope ctx saved)
        (fun () ->
          List.iter (lower_stmt ctx) else_;
          restore_scope ctx saved)
  | Ast.S_while (cond, body) ->
      let saved = saved_scope ctx in
      B.while_ ctx.mb
        (fun () ->
          let cop, cty = lower_expr ctx cond in
          if not (Types.equal_ty cty Types.Tbool) then err "while needs a boolean";
          cop)
        (fun () ->
          List.iter (lower_stmt ctx) body;
          restore_scope ctx saved);
      restore_scope ctx saved
  | Ast.S_for (init, cond, update, body) ->
      let saved = saved_scope ctx in
      lower_stmt ctx init;
      B.while_ ctx.mb
        (fun () ->
          let cop, cty = lower_expr ctx cond in
          if not (Types.equal_ty cty Types.Tbool) then err "for needs a boolean";
          cop)
        (fun () ->
          let saved_body = saved_scope ctx in
          List.iter (lower_stmt ctx) body;
          restore_scope ctx saved_body;
          lower_stmt ctx update);
      restore_scope ctx saved
  | Ast.S_return None ->
      if not (Types.equal_ty ctx.ret_ty Types.Tvoid) then
        err "return without a value in a non-void method";
      B.ret ctx.mb None
  | Ast.S_return (Some e) ->
      if Types.equal_ty ctx.ret_ty Types.Tvoid then
        err "void method returns a value";
      let rv = lower_expr ctx e in
      B.ret ctx.mb (Some (assign_checked ctx "return" ~dst_ty:ctx.ret_ty rv))

(* --- program assembly -------------------------------------------------- *)

let compile src =
  let ast =
    try Parser.parse src with
    | Lexer.Lex_error (msg, l, c) -> err "%d:%d: %s" l c msg
    | Parser.Parse_error (msg, l, c) -> err "%d:%d: %s" l c msg
  in
  let b = B.create () in
  let env = { b; classes = Hashtbl.create 16; methods = ref [] } in
  (* pass 1a: class ids *)
  let supers = ref [] in
  List.iter
    (fun (c : Ast.class_decl) ->
      if Hashtbl.mem env.classes c.c_name then
        err "duplicate class %s" c.c_name;
      (* supers handled in 1b once all names are known; declare with the
         super resolved lazily via a second builder pass is impossible —
         the builder needs the super at declaration, so sort first *)
      supers := (c.c_name, c.c_super) :: !supers)
    ast.classes;
  (* topologically order classes by the extends chain *)
  let order = ref [] in
  let visiting = Hashtbl.create 8 in
  let rec visit name =
    if not (List.exists (fun (c : Ast.class_decl) -> c.Ast.c_name = name) ast.classes)
    then err "unknown superclass %s" name;
    if Hashtbl.mem visiting name then err "cyclic extends involving %s" name;
    if not (List.mem name !order) then begin
      Hashtbl.add visiting name ();
      (match List.assoc name !supers with Some s -> visit s | None -> ());
      Hashtbl.remove visiting name;
      order := !order @ [ name ]
    end
  in
  List.iter (fun (c : Ast.class_decl) -> visit c.Ast.c_name) ast.classes;
  (* pass 1b: declare classes, fields, statics *)
  List.iter
    (fun name ->
      let c =
        List.find (fun (c : Ast.class_decl) -> c.Ast.c_name = name) ast.classes
      in
      let super_id =
        Option.map (fun s -> (class_info env s).ci_id) c.Ast.c_super
      in
      let cid = B.declare_class b ?super:super_id ~remote:c.Ast.c_remote name in
      Hashtbl.replace env.classes name
        {
          ci_id = cid;
          ci_remote = c.Ast.c_remote;
          ci_super = c.Ast.c_super;
          ci_fields = [];
          ci_statics = [];
        })
    !order;
  (* fields and statics need lower_ty, which needs all classes known *)
  List.iter
    (fun (c : Ast.class_decl) ->
      let ci = class_info env c.Ast.c_name in
      let fields =
        List.map
          (fun (ty_ast, fname) ->
            let fty = lower_ty env ty_ast in
            let fref = B.add_field b ci.ci_id fname fty in
            (fname, { f_ref = fref; f_ty = fty }))
          c.Ast.c_fields
      in
      let statics =
        List.map
          (fun (ty_ast, sname) ->
            let sty = lower_ty env ty_ast in
            let sid = B.declare_static b (c.Ast.c_name ^ "." ^ sname) sty in
            (sname, (sid, sty)))
          c.Ast.c_statics
      in
      Hashtbl.replace env.classes c.Ast.c_name
        { ci with ci_fields = fields; ci_statics = statics })
    ast.classes;
  (* pass 2: method signatures *)
  List.iter
    (fun (c : Ast.class_decl) ->
      let ci = class_info env c.Ast.c_name in
      List.iter
        (fun (m : Ast.method_decl) ->
          let has_this = (not m.Ast.m_static) && not c.Ast.c_remote in
          let param_tys = List.map (fun (t, _) -> lower_ty env t) m.Ast.m_params in
          let full_params =
            if has_this then Types.Tobject ci.ci_id :: param_tys else param_tys
          in
          let mid =
            B.declare_method b ~owner:ci.ci_id
              ~name:(c.Ast.c_name ^ "." ^ m.Ast.m_name)
              ~params:full_params ~ret:(lower_ty env m.Ast.m_ret) ()
          in
          env.methods :=
            {
              mi_id = mid;
              mi_owner = c.Ast.c_name;
              mi_name = m.Ast.m_name;
              mi_static = m.Ast.m_static;
              mi_remote = c.Ast.c_remote && not m.Ast.m_static;
              mi_params = param_tys;
              mi_ret = lower_ty env m.Ast.m_ret;
              mi_has_this = has_this;
            }
            :: !(env.methods))
        c.Ast.c_methods)
    ast.classes;
  (* pass 3: bodies *)
  List.iter
    (fun (c : Ast.class_decl) ->
      List.iter
        (fun (m : Ast.method_decl) ->
          let mi =
            List.find
              (fun mi -> mi.mi_owner = c.Ast.c_name && mi.mi_name = m.Ast.m_name)
              !(env.methods)
          in
          B.define b mi.mi_id (fun mb ->
              let this_var = if mi.mi_has_this then Some 0 else None in
              let scope = { bindings = [] } in
              (if mi.mi_has_this then
                 let cid = (class_info env c.Ast.c_name).ci_id in
                 scope.bindings <- [ ("this", (0, Types.Tobject cid)) ]);
              let offset = if mi.mi_has_this then 1 else 0 in
              List.iteri
                (fun i (t, pname) ->
                  scope.bindings <-
                    (pname, (i + offset, lower_ty env t)) :: scope.bindings)
                m.Ast.m_params;
              let ctx =
                {
                  env;
                  mb;
                  owner = c.Ast.c_name;
                  this_var;
                  ret_ty = mi.mi_ret;
                  scope;
                }
              in
              List.iter (lower_stmt ctx) m.Ast.m_body))
        c.Ast.c_methods)
    ast.classes;
  let prog = B.finish b in
  (match Typecheck.check prog with
  | [] -> ()
  | errs ->
      err "internal: lowered program does not typecheck: %s"
        (String.concat "; "
           (List.map (fun e -> Format.asprintf "%a" Typecheck.pp_error e) errs)));
  prog

let compile_result src =
  match compile src with
  | prog -> Ok prog
  | exception Compile_error msg -> Error msg

let class_named prog name =
  match Program.find_class prog name with
  | Some c -> c.Program.cid
  | None -> raise (Compile_error ("no class " ^ name))

let method_named prog name =
  match Program.find_method prog name with
  | Some m -> m.Program.mid
  | None -> raise (Compile_error ("no method " ^ name))

let static_named prog name =
  match
    Array.find_opt
      (fun (s : Program.static_decl) -> String.equal s.sname name)
      prog.Program.statics
  with
  | Some s -> s.Program.sid
  | None -> raise (Compile_error ("no static " ^ name))
