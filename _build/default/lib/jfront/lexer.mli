(** Lexer for the Java-like surface syntax (see {!Parser} for the
    grammar).  Comments: [// ...] and [/* ... */]. *)

type token =
  | IDENT of string
  | INT_LIT of int
  | DOUBLE_LIT of float
  | STRING_LIT of string
  (* keywords *)
  | KW_CLASS | KW_REMOTE | KW_EXTENDS | KW_STATIC
  | KW_VOID | KW_BOOLEAN | KW_INT | KW_DOUBLE | KW_STRING
  | KW_IF | KW_ELSE | KW_WHILE | KW_FOR | KW_RETURN | KW_NEW
  | KW_TRUE | KW_FALSE | KW_NULL
  (* punctuation *)
  | LBRACE | RBRACE | LPAREN | RPAREN | LBRACKET | RBRACKET
  | SEMI | COMMA | DOT
  | ASSIGN  (** [=] *)
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | PLUSPLUS
  | EQ | NE | LT | LE | GT | GE
  | AMPAMP | BARBAR | BANG
  | EOF

type t = { tok : token; line : int; col : int }

exception Lex_error of string * int * int  (** message, line, column *)

(** Tokenize the whole input. @raise Lex_error *)
val tokenize : string -> t list

val token_to_string : token -> string
